// Reproduces Table 2: p-values of log-rank tests over the *uncertain*
// classified groupings. Paper shape: Basic stays significant even in
// the uncertain bucket; Standard and Premium are mostly not significant
// there (the uncertain split behaves like a random classifier).
// Confident groupings, reported alongside, are significant everywhere.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/report.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Table 2: log-rank p-values over uncertain classified groupings");
  auto stores = bench::SimulateStudyRegions();
  auto results = bench::RunAllSubgroups(stores, /*tune=*/false);

  std::printf("%-9s %-10s %16s %16s\n", "edition", "region",
              "uncertain p", "confident p");
  for (size_t e = 0; e < 3; ++e) {
    for (size_t region = 0; region < 3; ++region) {
      const auto& r = results[region * 3 + e];
      auto uncertain = core::LogRankOfClassifiedGroups(
          r.runs.front().outcomes, core::PredictionBucket::kUncertain);
      auto confident = core::LogRankOfClassifiedGroups(
          r.runs.front().outcomes, core::PredictionBucket::kConfident);
      std::printf("%-9s %-10s %16s %16s\n", r.subgroup_name.c_str(),
                  r.region_name.c_str(),
                  uncertain.ok()
                      ? core::FormatPValue(uncertain->p_value).c_str()
                      : "(empty group)",
                  confident.ok()
                      ? core::FormatPValue(confident->p_value).c_str()
                      : "(empty group)");
    }
  }
  std::printf("\n(p >= 0.05 means the uncertain split is no better than "
              "random at separating survival; the paper observes this for "
              "most Standard/Premium subgroups.)\n");
  return 0;
}
