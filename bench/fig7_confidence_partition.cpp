// Reproduces Figure 7: accuracy / precision / recall for all
// predictions, confident predictions, uncertain predictions, and the
// baseline, per subgroup, using the paper's confidence rule
// t = max(q, 1-q) over the predicted class probability (section 5.3).
//
// Paper shapes: confident > all > uncertain everywhere, confident
// reaching ~0.9 accuracy; Standard shows the least improvement because
// its balanced classes give a low threshold (nearly everything is
// "confident").

#include <cstdio>

#include "bench/bench_util.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Figure 7: confidence-partitioned scores (all/confident/uncertain)");
  auto stores = bench::SimulateStudyRegions();
  auto results = bench::RunAllSubgroups(stores, /*tune=*/false);

  std::printf("%-10s %-9s | %-17s | %-17s | %-17s | %-17s\n", "region",
              "edition", "all (a/p/r)", "confident (a/p/r)",
              "uncertain (a/p/r)", "baseline (a/p/r)");
  for (const auto& r : results) {
    auto fmt = [](const ml::ClassificationScores& s) {
      static thread_local char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f/%.2f/%.2f", s.accuracy,
                    s.precision, s.recall);
      return std::string(buf);
    };
    std::printf("%-10s %-9s | %-17s | %-17s | %-17s | %-17s\n",
                r.region_name.c_str(), r.subgroup_name.c_str(),
                fmt(r.forest_avg).c_str(), fmt(r.confident_avg).c_str(),
                fmt(r.uncertain_avg).c_str(), fmt(r.baseline_avg).c_str());
  }

  std::printf("\nconfidence thresholds t = max(q, 1-q) per subgroup "
              "(first repetition):\n");
  for (const auto& r : results) {
    std::printf("  %-10s %-9s q=%.2f t=%.2f\n", r.region_name.c_str(),
                r.subgroup_name.c_str(), r.positive_rate,
                r.runs.front().confidence_threshold);
  }
  return 0;
}
