// Reproduces Section 5.4 (Predictive Factors): gini feature importances
// of the random forest, individually and summed by feature family, plus
// the paper's n-gram experiment (character n-grams of names do not
// improve accuracy).
//
// Paper shape: subscription-history features first, name features
// second, creation-time features third.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "ml/metrics.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Section 5.4: predictive factors (gini importance)");
  auto stores = bench::SimulateStudyRegions();
  auto results = bench::RunAllSubgroups(stores, /*tune=*/false);

  // Aggregate family importances across all nine subgroups.
  std::vector<std::pair<std::string, double>> family_totals;
  for (const auto& r : results) {
    for (const auto& [family, value] : core::RankFeatureFamilies(r)) {
      bool found = false;
      for (auto& [name, total] : family_totals) {
        if (name == family) {
          total += value;
          found = true;
          break;
        }
      }
      if (!found) family_totals.emplace_back(family, value);
    }
  }
  std::sort(family_totals.begin(), family_totals.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("feature families, averaged over the 9 subgroups:\n");
  for (const auto& [family, total] : family_totals) {
    std::printf("  %-24s %.4f\n", family.c_str(),
                total / static_cast<double>(results.size()));
  }

  std::printf("\ntop 12 individual features (Region-1 / Basic):\n");
  const auto ranked = core::RankFeatureImportances(results[0]);
  for (size_t i = 0; i < std::min<size_t>(12, ranked.size()); ++i) {
    std::printf("  %2zu. %-28s %.4f\n", i + 1, ranked[i].first.c_str(),
                ranked[i].second);
  }

  // The n-gram experiment: add hashed character-bigram features of the
  // database name and compare accuracy on Region-1 / Basic.
  std::printf("\nn-gram experiment (Region-1 / Basic):\n");
  core::ExperimentConfig config = bench::PaperExperimentConfig(false);
  auto without = core::RunPredictionExperiment(
      stores[0], telemetry::Edition::kBasic, config);
  config.feature_config.include_name_ngrams = true;
  config.feature_config.name_ngram_buckets = 16;
  auto with = core::RunPredictionExperiment(
      stores[0], telemetry::Edition::kBasic, config);
  if (without.ok() && with.ok()) {
    std::printf("  without n-grams: %s\n",
                ml::ScoresToString(without->forest_avg).c_str());
    std::printf("  with n-grams:    %s\n",
                ml::ScoresToString(with->forest_avg).c_str());
    std::printf("  delta accuracy:  %+.3f (paper: no improvement)\n",
                with->forest_avg.accuracy - without->forest_avg.accuracy);
  }
  return 0;
}
