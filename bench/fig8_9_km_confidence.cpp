// Reproduces Figures 8 and 9: KM curves of the classified groupings
// restricted to confident predictions (Figure 8) and to uncertain
// predictions (Figure 9). Paper shapes: confident groupings separate
// cleanly; uncertain groupings hug each other (the classifier cannot
// tell those databases apart).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/report.h"
#include "survival/kaplan_meier.h"

using namespace cloudsurv;

namespace {

void PrintBucketPanel(const core::SubgroupExperimentResult& r,
                      core::PredictionBucket bucket, const char* label) {
  const auto groups =
      core::SplitOutcomesByPrediction(r.runs.front().outcomes, bucket);
  auto short_data = survival::SurvivalData::Make(groups.predicted_short);
  auto long_data = survival::SurvivalData::Make(groups.predicted_long);
  if (!short_data.ok() || !long_data.ok() || short_data->empty() ||
      long_data->empty()) {
    std::printf("%-10s %-9s %-10s: a classified group is empty\n",
                r.region_name.c_str(), r.subgroup_name.c_str(), label);
    return;
  }
  auto km_short = survival::KaplanMeierCurve::Fit(*short_data);
  auto km_long = survival::KaplanMeierCurve::Fit(*long_data);
  if (!km_short.ok() || !km_long.ok()) return;
  // Separation gap at the 30-day boundary summarizes the panel.
  const double gap =
      km_long->SurvivalAt(30.0) - km_short->SurvivalAt(30.0);
  std::printf("%-10s %-9s %-10s n=%4zu/%-4zu  S_long(30)=%.3f "
              "S_short(30)=%.3f  gap=%.3f\n",
              r.region_name.c_str(), r.subgroup_name.c_str(), label,
              short_data->size(), long_data->size(),
              km_long->SurvivalAt(30.0), km_short->SurvivalAt(30.0), gap);
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Figures 8 & 9: KM curves for confident / uncertain groupings");
  auto stores = bench::SimulateStudyRegions();
  auto results = bench::RunAllSubgroups(stores, /*tune=*/false);

  std::printf("Figure 8 (confident predictions):\n");
  for (const auto& r : results) {
    PrintBucketPanel(r, core::PredictionBucket::kConfident, "confident");
  }
  std::printf("\nFigure 9 (uncertain predictions):\n");
  for (const auto& r : results) {
    PrintBucketPanel(r, core::PredictionBucket::kUncertain, "uncertain");
  }

  // Full series for one representative panel of each figure.
  const auto& r = results[0];  // Region-1 / Basic
  for (auto [bucket, label] :
       {std::pair{core::PredictionBucket::kConfident, "confident"},
        std::pair{core::PredictionBucket::kUncertain, "uncertain"}}) {
    const auto groups =
        core::SplitOutcomesByPrediction(r.runs.front().outcomes, bucket);
    auto short_data = survival::SurvivalData::Make(groups.predicted_short);
    auto long_data = survival::SurvivalData::Make(groups.predicted_long);
    if (!short_data.ok() || !long_data.ok() || short_data->empty() ||
        long_data->empty()) {
      continue;
    }
    auto km_short = survival::KaplanMeierCurve::Fit(*short_data);
    auto km_long = survival::KaplanMeierCurve::Fit(*long_data);
    if (!km_short.ok() || !km_long.ok()) continue;
    std::printf("\n---- Region-1 / Basic, %s bucket ----\n", label);
    std::printf("%s", core::KmCurveSeriesMulti(
                          {{"pred-short", *km_short},
                           {"pred-long", *km_long}},
                          120, 10)
                          .c_str());
  }
  return 0;
}
