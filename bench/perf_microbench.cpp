// Google-benchmark microbenchmarks of the library's hot paths: region
// simulation, store finalization, KM fitting, log-rank testing, feature
// extraction, and random-forest training / inference.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "ml/gbdt.h"
#include "survival/cox.h"
#include "survival/random_survival_forest.h"
#include "core/cohort.h"
#include "features/features.h"
#include "ml/random_forest.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "survival/kaplan_meier.h"
#include "survival/logrank.h"

namespace cloudsurv {
namespace {

const telemetry::TelemetryStore& CachedStore() {
  static const telemetry::TelemetryStore* store = [] {
    auto config = simulator::MakeRegionPreset(1, 800, 3);
    auto s = simulator::SimulateRegion(*config);
    return new telemetry::TelemetryStore(std::move(s).value());
  }();
  return *store;
}

survival::SurvivalData RandomSurvival(size_t n) {
  Rng rng(n);
  std::vector<survival::Observation> obs(n);
  for (auto& o : obs) {
    o.duration = rng.Weibull(1.1, 20.0);
    o.observed = rng.Uniform() < 0.7;
  }
  return std::move(survival::SurvivalData::Make(std::move(obs))).value();
}

void BM_SimulateRegion(benchmark::State& state) {
  const size_t subs = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto config = simulator::MakeRegionPreset(1, subs, 3);
    auto store = simulator::SimulateRegion(*config);
    benchmark::DoNotOptimize(store->num_events());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(subs));
}
BENCHMARK(BM_SimulateRegion)->Arg(100)->Arg(400)->Arg(1600);

void BM_KaplanMeierFit(benchmark::State& state) {
  const auto data = RandomSurvival(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto km = survival::KaplanMeierCurve::Fit(data);
    benchmark::DoNotOptimize(km->steps().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KaplanMeierFit)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LogRankTest(benchmark::State& state) {
  const auto a = RandomSurvival(static_cast<size_t>(state.range(0)));
  const auto b = RandomSurvival(static_cast<size_t>(state.range(0)) + 1);
  for (auto _ : state) {
    auto result = survival::LogRankTest(a, b);
    benchmark::DoNotOptimize(result->p_value);
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_LogRankTest)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& store = CachedStore();
  auto cohort = core::BuildPredictionCohort(store, 2.0, 30.0);
  features::FeatureConfig config;
  size_t i = 0;
  for (auto _ : state) {
    const auto record =
        *store.FindDatabase(cohort->ids[i % cohort->ids.size()]);
    auto row = features::ExtractFeatures(store, record, config);
    benchmark::DoNotOptimize(row->size());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeatureExtraction);

void BM_BuildDataset(benchmark::State& state) {
  const auto& store = CachedStore();
  auto cohort = core::BuildPredictionCohort(store, 2.0, 30.0);
  features::FeatureConfig config;
  for (auto _ : state) {
    auto dataset =
        features::BuildDataset(store, cohort->ids, cohort->labels, config);
    benchmark::DoNotOptimize(dataset->num_rows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cohort->ids.size()));
}
BENCHMARK(BM_BuildDataset);

const ml::Dataset& CachedDataset() {
  static const ml::Dataset* dataset = [] {
    const auto& store = CachedStore();
    auto cohort = core::BuildPredictionCohort(store, 2.0, 30.0);
    features::FeatureConfig config;
    auto d =
        features::BuildDataset(store, cohort->ids, cohort->labels, config);
    return new ml::Dataset(std::move(d).value());
  }();
  return *dataset;
}

void BM_ForestFit(benchmark::State& state) {
  const auto& dataset = CachedDataset();
  ml::ForestParams params;
  params.num_trees = static_cast<int>(state.range(0));
  params.max_depth = 12;
  for (auto _ : state) {
    ml::RandomForestClassifier forest;
    auto status = forest.Fit(dataset, params, 5);
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.num_rows()));
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_ForestPredict(benchmark::State& state) {
  const auto& dataset = CachedDataset();
  ml::ForestParams params;
  params.num_trees = 60;
  params.max_depth = 12;
  static ml::RandomForestClassifier* forest = [&] {
    auto* f = new ml::RandomForestClassifier();
    (void)f->Fit(dataset, params, 5);
    return f;
  }();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(forest->Predict(dataset.row(i)));
    i = (i + 1) % dataset.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForestPredict);

void BM_GbdtFit(benchmark::State& state) {
  const auto& dataset = CachedDataset();
  ml::GbdtParams params;
  params.num_rounds = static_cast<int>(state.range(0));
  params.max_depth = 4;
  for (auto _ : state) {
    ml::GradientBoostedTreesClassifier model;
    auto status = model.Fit(dataset, params, 5);
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.num_rows()));
}
BENCHMARK(BM_GbdtFit)->Arg(20)->Arg(80)->Unit(benchmark::kMillisecond);

void BM_CoxFit(benchmark::State& state) {
  Rng rng(1);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<survival::CovariateObservation> data(n);
  for (auto& obs : data) {
    obs.covariates = {rng.Uniform(-1, 1), rng.Uniform(-1, 1),
                      rng.Uniform(-1, 1)};
    obs.duration = rng.Exponential(0.1 * std::exp(obs.covariates[0]));
    obs.observed = rng.Uniform() < 0.8;
  }
  for (auto _ : state) {
    auto model = survival::CoxModel::Fit(data, {"a", "b", "c"});
    benchmark::DoNotOptimize(model->log_likelihood());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoxFit)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_SurvivalForestFit(benchmark::State& state) {
  Rng rng(2);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<survival::CovariateObservation> data(n);
  for (auto& obs : data) {
    obs.covariates = {rng.Uniform(-1, 1), rng.Uniform(-1, 1),
                      rng.Uniform(-1, 1), rng.Uniform(-1, 1)};
    obs.duration = rng.Exponential(0.1 * std::exp(obs.covariates[0]));
    obs.observed = rng.Uniform() < 0.8;
  }
  survival::SurvivalForestParams params;
  params.num_trees = 40;
  params.max_depth = 6;
  for (auto _ : state) {
    survival::RandomSurvivalForest forest;
    auto status = forest.Fit(data, {"a", "b", "c", "d"}, params, 2);
    benchmark::DoNotOptimize(status.ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SurvivalForestFit)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_StoreCsvRoundTrip(benchmark::State& state) {
  const auto& store = CachedStore();
  for (auto _ : state) {
    const std::string csv = store.ExportCsv();
    auto imported = telemetry::TelemetryStore::ImportCsv(
        csv, "R", 0, {}, store.window_start(), store.window_end());
    benchmark::DoNotOptimize(imported->num_events());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(store.num_events()));
  state.SetLabel(std::to_string(store.num_events()) + " events");
}
BENCHMARK(BM_StoreCsvRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace cloudsurv

BENCHMARK_MAIN();
