// Online-serving throughput: replays one simulated region's event
// stream through the ScoringEngine at 1 thread and at N threads
// (CLOUDSURV_THREADS, default 8) and reports events/sec, scored
// databases/sec and per-assessment latency quantiles as JSON on stdout.
//
// The replay is the serve-sim loop: ingest in timestamp order, poll on
// a fixed simulated cadence (CLOUDSURV_FLUSH_DAYS, default 7), drain at
// end-of-stream. All scoring work — snapshot materialization and model
// inference — happens on the pool, so the multi-thread run exercises
// the engine's actual parallel path.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/service.h"
#include "serving/scoring_engine.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "telemetry/store.h"

namespace {

using namespace cloudsurv;

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

struct RunResult {
  double elapsed_s = 0.0;
  size_t scored = 0;
  serving::EngineMetrics metrics;
};

RunResult Replay(const telemetry::TelemetryStore& store,
                 const std::shared_ptr<const core::LongevityService>& model,
                 size_t threads, double flush_days) {
  serving::ScoringEngine::Options options;
  options.num_threads = threads;
  options.num_shards = 16;
  options.observe_days = model->options().observe_days;
  serving::ScoringEngine engine(serving::RegionContext::FromStore(store),
                                options);
  auto version = engine.registry().Publish("bench", model);
  if (!version.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 version.status().ToString().c_str());
    std::exit(1);
  }

  const auto flush_interval = static_cast<telemetry::Timestamp>(
      flush_days * static_cast<double>(telemetry::kSecondsPerDay));
  telemetry::Timestamp next_poll = store.window_start() + flush_interval;

  RunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (const telemetry::Event& event : store.events()) {
    while (event.timestamp > next_poll) {
      auto batch = engine.Poll(next_poll);
      if (!batch.ok()) {
        std::fprintf(stderr, "poll failed: %s\n",
                     batch.status().ToString().c_str());
        std::exit(1);
      }
      result.scored += batch->size();
      next_poll += flush_interval;
    }
    Status ingested = engine.Ingest(event);
    if (!ingested.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingested.ToString().c_str());
      std::exit(1);
    }
  }
  auto rest = engine.Drain();
  if (!rest.ok()) {
    std::fprintf(stderr, "drain failed: %s\n",
                 rest.status().ToString().c_str());
    std::exit(1);
  }
  result.scored += rest->size();
  const auto t1 = std::chrono::steady_clock::now();
  result.elapsed_s =
      std::chrono::duration<double>(t1 - t0).count();
  result.metrics = engine.Metrics();
  return result;
}

void PrintRun(const char* key, size_t threads, size_t num_events,
              const RunResult& run, bool trailing_comma) {
  std::printf(
      "  \"%s\": {\"threads\": %zu, \"elapsed_s\": %.3f, "
      "\"events_per_sec\": %.0f, \"scored\": %zu, "
      "\"scored_per_sec\": %.0f, \"p50_us\": %.0f, \"p99_us\": %.0f, "
      "\"confident_fraction\": %.4f}%s\n",
      key, threads, run.elapsed_s,
      static_cast<double>(num_events) / run.elapsed_s, run.scored,
      static_cast<double>(run.scored) / run.elapsed_s,
      run.metrics.scoring_p50_us, run.metrics.scoring_p99_us,
      run.metrics.confident_fraction(), trailing_comma ? "," : "");
}

}  // namespace

int main() {
  const size_t subs = EnvSize("CLOUDSURV_SUBS", 600);
  const size_t threads = EnvSize("CLOUDSURV_THREADS", 8);
  const double flush_days =
      static_cast<double>(EnvSize("CLOUDSURV_FLUSH_DAYS", 7));

  auto config = simulator::MakeRegionPreset(1, subs, 2017);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  auto store = simulator::SimulateRegion(*config);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }

  core::LongevityService::Options train_options;
  train_options.seed = 2017;
  auto trained = core::LongevityService::Train(*store, train_options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  auto model = std::make_shared<const core::LongevityService>(
      std::move(trained).value());

  const RunResult single = Replay(*store, model, 1, flush_days);
  const RunResult multi = Replay(*store, model, threads, flush_days);

  std::printf("{\n");
  std::printf("  \"num_events\": %zu,\n", store->num_events());
  std::printf("  \"num_databases\": %zu,\n", store->num_databases());
  std::printf("  \"flush_interval_days\": %.1f,\n", flush_days);
  PrintRun("single_thread", 1, store->num_events(), single, true);
  PrintRun("multi_thread", threads, store->num_events(), multi, true);
  std::printf("  \"speedup\": %.2f\n",
              single.elapsed_s / multi.elapsed_s);
  std::printf("}\n");
  bench::EmitRegistrySnapshot();
  return 0;
}
