// Reproduces Figure 1: Kaplan-Meier survival curve for singleton
// databases with a 2-day survival minimum, over the five-month window
// of Region-1. Paper shape: smooth decay, a visible drop near day 120
// (incentive offers expiring) and flattening around S ~ 0.3-0.4.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "core/report.h"
#include "survival/kaplan_meier.h"
#include "survival/nelson_aalen.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Figure 1: KM survival curve, singleton databases "
                     "(2-day minimum), Region-1");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  core::CohortFilter filter;  // 2-day survival minimum by default
  auto data = core::CohortSurvivalData(store, filter);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto km = survival::KaplanMeierCurve::Fit(*data);
  if (!km.ok()) {
    std::fprintf(stderr, "%s\n", km.status().ToString().c_str());
    return 1;
  }

  std::printf("population: %zu databases, %zu dropped, %zu censored\n\n",
              data->size(), data->num_events(), data->num_censored());
  std::printf("%s\n", core::KmCurveSeries(*km, 140, 5).c_str());
  std::printf("%s\n", core::KmCurveAsciiPlot(*km, 140, 14, 64).c_str());

  // The day-120 cliff, quantified via the smoothed Nelson-Aalen hazard.
  auto na = survival::NelsonAalenCurve::Fit(*data);
  if (na.ok()) {
    std::printf("hazard near incentive expiry (per day):\n");
    for (double day : {60.0, 100.0, 120.0, 135.0}) {
      std::printf("  day %5.0f: %.5f\n", day, na->SmoothedHazard(day, 3.0));
    }
  }
  std::printf("\ncheckpoints: S(30)=%.3f S(60)=%.3f S(90)=%.3f "
              "S(120)=%.3f S(130)=%.3f\n",
              km->SurvivalAt(30), km->SurvivalAt(60), km->SurvivalAt(90),
              km->SurvivalAt(120), km->SurvivalAt(130));
  return 0;
}
