// Serving-path robustness under deterministic fault plans: replays one
// simulated region's event stream through the ScoringEngine under a
// ladder of fault scenarios — no faults, output-neutral delays, the
// shard-stall + model-swap acceptance plan, and a deadline + load-shed
// configuration — and reports per-scenario throughput, latency
// quantiles, fallback/shed/retry rates and fault counts as JSON.
//
// Every scenario is seeded and count-scheduled, so two runs of this
// binary fire the identical fault sequence (timings vary; counts do
// not). Scale with CLOUDSURV_SUBS / CLOUDSURV_THREADS /
// CLOUDSURV_FLUSH_DAYS as with serving_throughput.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/service.h"
#include "fault/fault.h"
#include "serving/scoring_engine.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "telemetry/store.h"

namespace {

using namespace cloudsurv;

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

/// One fault scenario: a plan (possibly empty) plus the degradation
/// knobs that ride along with it.
struct Scenario {
  const char* key;
  const char* plan_text;          // "" -> no injector
  double deadline_us = 0.0;       // 0 -> no deadline
  size_t shed_high = 0;           // 0 -> no shedding
  size_t shed_low = 0;
};

struct RunResult {
  double elapsed_s = 0.0;
  uint64_t attempts = 0;
  uint64_t scored = 0;
  uint64_t faults_fired = 0;
  serving::EngineMetrics metrics;
};

RunResult Replay(const telemetry::TelemetryStore& store,
                 const std::shared_ptr<const core::LongevityService>& model,
                 size_t threads, double flush_days,
                 const Scenario& scenario) {
  std::unique_ptr<fault::FaultInjector> injector;
  if (scenario.plan_text[0] != '\0') {
    fault::FaultPlan plan;
    std::string error;
    if (!fault::FaultPlan::Parse(scenario.plan_text, &plan, &error)) {
      std::fprintf(stderr, "bad plan for %s: %s\n", scenario.key,
                   error.c_str());
      std::exit(1);
    }
    injector = std::make_unique<fault::FaultInjector>(std::move(plan));
  }

  serving::ScoringEngine::Options options;
  options.num_threads = threads;
  options.num_shards = 16;
  options.observe_days = model->options().observe_days;
  options.fault_injector = injector.get();
  options.batch_deadline_us = scenario.deadline_us;
  if (scenario.deadline_us > 0.0) options.assess_virtual_cost_us = 100.0;
  options.shed_high_watermark = scenario.shed_high;
  options.shed_low_watermark = scenario.shed_low;
  const bool degraded_modes = injector != nullptr ||
                              scenario.deadline_us > 0.0 ||
                              scenario.shed_high > 0;
  if (degraded_modes) {
    options.fallback_positive_rate = 0.5;
    options.fallback_seed =
        injector != nullptr ? injector->seed() : 2017;
  }
  serving::ScoringEngine engine(serving::RegionContext::FromStore(store),
                                options);
  auto version = engine.registry().Publish("bench", model);
  if (!version.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 version.status().ToString().c_str());
    std::exit(1);
  }

  const auto flush_interval = static_cast<telemetry::Timestamp>(
      flush_days * static_cast<double>(telemetry::kSecondsPerDay));
  telemetry::Timestamp next_poll = store.window_start() + flush_interval;

  RunResult result;
  const auto t0 = std::chrono::steady_clock::now();
  for (const telemetry::Event& event : store.events()) {
    while (event.timestamp > next_poll) {
      auto batch = engine.Poll(next_poll);
      if (!batch.ok()) {
        std::fprintf(stderr, "poll failed: %s\n",
                     batch.status().ToString().c_str());
        std::exit(1);
      }
      result.scored += batch->size();
      next_poll += flush_interval;
    }
    ++result.attempts;
    // Under a fault plan, rejections (shed, injected failures past the
    // retry budget) are part of the experiment — counted, not fatal.
    Status ingested = engine.Ingest(event);
    if (!ingested.ok() && !degraded_modes) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   ingested.ToString().c_str());
      std::exit(1);
    }
  }
  auto rest = engine.Drain();
  if (!rest.ok()) {
    std::fprintf(stderr, "drain failed: %s\n",
                 rest.status().ToString().c_str());
    std::exit(1);
  }
  result.scored += rest->size();
  const auto t1 = std::chrono::steady_clock::now();
  result.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
  result.metrics = engine.Metrics();
  if (injector != nullptr) result.faults_fired = injector->total_fired();

  // The no-silent-drop identity the fault layer guarantees; a bench
  // that violates it is reporting nonsense, so fail loudly.
  const serving::EngineMetrics& m = result.metrics;
  if (result.attempts != m.events_ingested + m.rejected_shed +
                             m.rejected_error + m.rejected_invalid) {
    std::fprintf(stderr,
                 "%s: ingest accounting violation (%llu attempts)\n",
                 scenario.key,
                 static_cast<unsigned long long>(result.attempts));
    std::exit(1);
  }
  if (m.databases_tracked != m.databases_scored + m.databases_fallback +
                                 m.databases_skipped +
                                 m.databases_cancelled) {
    std::fprintf(stderr, "%s: scoring accounting violation\n",
                 scenario.key);
    std::exit(1);
  }
  return result;
}

void PrintRun(const char* key, const RunResult& run, size_t num_events,
              bool trailing_comma) {
  const serving::EngineMetrics& m = run.metrics;
  const double shed_rate =
      run.attempts == 0
          ? 0.0
          : static_cast<double>(m.rejected_shed) /
                static_cast<double>(run.attempts);
  std::printf(
      "  \"%s\": {\"elapsed_s\": %.3f, \"events_per_sec\": %.0f, "
      "\"scored\": %llu, \"fallback\": %llu, \"skipped\": %llu, "
      "\"deadline_batches\": %llu, \"retries\": %llu, "
      "\"rejected_shed\": %llu, \"rejected_error\": %llu, "
      "\"shed_rate\": %.4f, \"faults_fired\": %llu, "
      "\"health_transitions\": %llu, \"p50_us\": %.0f, "
      "\"p99_us\": %.0f}%s\n",
      key, run.elapsed_s,
      static_cast<double>(num_events) / run.elapsed_s,
      static_cast<unsigned long long>(run.scored),
      static_cast<unsigned long long>(m.databases_fallback),
      static_cast<unsigned long long>(m.databases_skipped),
      static_cast<unsigned long long>(m.deadline_exceeded),
      static_cast<unsigned long long>(m.retries),
      static_cast<unsigned long long>(m.rejected_shed),
      static_cast<unsigned long long>(m.rejected_error), shed_rate,
      static_cast<unsigned long long>(run.faults_fired),
      static_cast<unsigned long long>(m.health_transitions),
      m.scoring_p50_us, m.scoring_p99_us, trailing_comma ? "," : "");
}

}  // namespace

int main() {
  const size_t subs = EnvSize("CLOUDSURV_SUBS", 600);
  const size_t threads = EnvSize("CLOUDSURV_THREADS", 8);
  const double flush_days =
      static_cast<double>(EnvSize("CLOUDSURV_FLUSH_DAYS", 7));

  auto config = simulator::MakeRegionPreset(1, subs, 2017);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  auto store = simulator::SimulateRegion(*config);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }

  core::LongevityService::Options train_options;
  train_options.seed = 2017;
  auto trained = core::LongevityService::Train(*store, train_options);
  if (!trained.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 trained.status().ToString().c_str());
    return 1;
  }
  auto model = std::make_shared<const core::LongevityService>(
      std::move(trained).value());

  const Scenario scenarios[] = {
      {"baseline", ""},
      {"neutral_delays",
       "seed 42\n"
       "fault pool.task delay every=50 delay_us=100\n"
       "fault ingest.shard stall every=500 delay_us=200\n"},
      {"shard_stall_model_swap",
       "seed 7\n"
       "fault ingest.shard stall shard=3 every=50 delay_us=300\n"
       "fault registry.swap swap_race every=2\n"
       "fault engine.snapshot io_fail every=5 count=6\n"},
      {"deadline_and_shedding",
       "seed 11\n"
       "fault engine.score delay every=40 delay_us=150\n",
       /*deadline_us=*/300.0, /*shed_high=*/800, /*shed_low=*/200},
  };

  std::printf("{\n");
  std::printf("  \"num_events\": %zu,\n", store->num_events());
  std::printf("  \"num_databases\": %zu,\n", store->num_databases());
  std::printf("  \"threads\": %zu,\n", threads);
  std::printf("  \"flush_interval_days\": %.1f,\n", flush_days);
  constexpr size_t kNumScenarios =
      sizeof(scenarios) / sizeof(scenarios[0]);
  for (size_t i = 0; i < kNumScenarios; ++i) {
    const RunResult run =
        Replay(*store, model, threads, flush_days, scenarios[i]);
    PrintRun(scenarios[i].key, run, store->num_events(),
             i + 1 < kNumScenarios);
  }
  std::printf("}\n");
  bench::EmitRegistrySnapshot();
  return 0;
}
