// Section 3.1's fragmentation argument, quantified: "Creating databases
// ... requires free resources to be found. Dropping databases also runs
// counter to some load-balancing/fragmentation policies." This bench
// replays a region's create/resize/drop stream against a first-fit
// cluster and compares (a) no partitioning, (b) classifier-guided
// churn-pool segregation, and (c) oracle segregation — measuring peak
// servers, packing overhead and capacity fragmentation.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/placement.h"
#include "core/provisioning.h"
#include "core/service.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Section 3.1: cluster fragmentation under first-fit placement");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  // Classifier plan from the deployable service (trained on Region-2 so
  // the placement region is out-of-sample).
  core::LongevityService::Options options;
  options.forest_params.num_trees = 60;
  options.forest_params.max_depth = 12;
  auto service = core::LongevityService::Train(stores[1], options);
  core::PoolAssignmentPlan classified_plan;
  if (service.ok()) {
    auto plan = service->PlanPlacements(store);
    if (plan.ok()) classified_plan = std::move(plan).value();
  }

  // Oracle plan.
  core::PoolAssignmentPlan oracle_plan;
  for (const auto& record : store.databases()) {
    const double life = record.ObservedLifespanDays(store.window_end());
    if (record.dropped_at.has_value() && life <= 30.0) {
      oracle_plan.pools[record.id] = core::Pool::kChurn;
    }
  }

  for (int capacity : {1000, 2000, 4000}) {
    std::printf("---- server capacity %d DTUs ----\n", capacity);
    core::ClusterConfig mixed;
    mixed.server_capacity_dtus = capacity;
    core::ClusterConfig segregated = mixed;
    segregated.segregate_churn_pool = true;

    struct Row {
      const char* name;
      const core::PoolAssignmentPlan* plan;
      const core::ClusterConfig* config;
    };
    const Row rows[] = {
        {"baseline (no pools)", &oracle_plan, &mixed},
        {"classified churn pool", &classified_plan, &segregated},
        {"oracle churn pool", &oracle_plan, &segregated},
    };
    std::printf("  %-22s %10s %10s %10s %10s\n", "policy", "peak-srv",
                "overhead", "frag", "rejected");
    for (const Row& row : rows) {
      auto report = core::SimulatePlacement(store, *row.plan, *row.config);
      if (!report.ok()) continue;
      std::printf("  %-22s %10zu %10.3f %10.3f %10zu\n", row.name,
                  report->peak_active_servers, report->packing_overhead,
                  report->mean_fragmentation, report->rejected);
    }
    std::printf("\n");
  }
  // Architecture-catalog deployment: the same region priced against
  // the built-in four-tier catalog (docs/provisioning.md), comparing
  // per-tier fragmentation under the naive and longevity policies.
  // Splitting the fleet costs packing (see the finding below) but the
  // dollar table in bench/provisioning_policy shows the interference
  // savings outweigh it.
  if (service.ok()) {
    std::vector<telemetry::DatabaseId> ids;
    for (const auto& record : store.databases()) ids.push_back(record.id);
    auto assessments = service->AssessMany(store, ids, {});
    if (assessments.ok()) {
      std::vector<core::PredictionOutcome> outcomes;
      for (size_t i = 0; i < ids.size(); ++i) {
        const auto& assessment = (*assessments)[i];
        if (!assessment.has_value()) continue;
        const auto record = store.databases()[i];
        core::PredictionOutcome outcome;
        outcome.id = record.id;
        outcome.predicted_label = assessment->predicted_label;
        outcome.confident = assessment->confident;
        outcome.duration_days =
            record.ObservedLifespanDays(store.window_end());
        outcome.observed = record.dropped_at.has_value() &&
                           *record.dropped_at <= store.window_end();
        outcomes.push_back(outcome);
      }
      const auto catalog = core::ArchitectureCatalog::Default();
      std::printf("---- architecture catalog deployment (14-day "
                  "rollouts) ----\n");
      std::printf("  %-12s %10s %10s %10s %10s\n", "policy", "node-days",
                  "frag", "sla-viol", "total-$");
      for (const char* name : {"naive", "longevity"}) {
        auto policy = core::MakePlacementPolicy(name);
        auto plan = policy->Assign(store, outcomes, catalog);
        if (!plan.ok()) continue;
        auto report = core::SimulateDeployment(store, *plan, catalog, {});
        if (!report.ok()) continue;
        std::printf("  %-12s %10.1f %10.3f %10zu %10.2f\n", name,
                    report->node_days, report->mean_fragmentation,
                    report->sla_violations, report->total_cost);
        for (const auto& usage : report->per_architecture) {
          if (usage.placements == 0) continue;
          std::printf("    %-12s placements=%-6zu node_days=%-8.1f "
                      "frag=%.3f\n",
                      usage.name.c_str(), usage.placements,
                      usage.node_days, usage.mean_fragmentation);
        }
      }
      std::printf("\n");
    }
  }

  std::printf("(overhead = servers open at the peak-fleet instant / the "
              "bin-packing lower bound for that occupancy; frag = mean "
              "wasted capacity share on active servers.)\n");
  std::printf("finding: pure first-fit packing does NOT improve under "
              "churn segregation — splitting the fleet costs statistical "
              "multiplexing. The measured wins of longevity partitioning "
              "are interference wins (disruptions, lifecycle/SLO "
              "contention: see provisioning_policy), matching the "
              "paper's motivation of noisy neighbours and update "
              "scheduling rather than raw packing.\n");
  return 0;
}
