// Ablation over the task definition: the paper focuses on x = 2
// observation days and y = 30 survival days but notes "we also
// experimented with different values for x and y" (section 5.1). This
// bench sweeps both and reports accuracy and class balance — more
// observation time helps, and boundaries far from the population's
// lifetime mass are easier.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/prediction.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Ablation: observation window x and boundary y");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  std::printf("Region-1 / Basic subgroup, forest accuracy per (x, y):\n\n");
  std::printf("%8s", "x \\ y");
  for (double y : {14.0, 30.0, 60.0}) std::printf("%14.0fd", y);
  std::printf("\n");

  for (double x : {1.0, 2.0, 4.0, 7.0}) {
    std::printf("%7.0fd", x);
    for (double y : {14.0, 30.0, 60.0}) {
      core::ExperimentConfig config = bench::PaperExperimentConfig(false);
      config.observe_days = x;
      config.long_threshold_days = y;
      config.num_repetitions = 2;
      auto result = core::RunPredictionExperiment(
          store, telemetry::Edition::kBasic, config);
      if (!result.ok()) {
        std::printf("%15s", "n/a");
        continue;
      }
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.3f (q=%.2f)",
                    result->forest_avg.accuracy, result->positive_rate);
      std::printf("%15s", cell);
    }
    std::printf("\n");
  }
  std::printf("\n(q = long-lived fraction of the cohort. Larger x gives "
              "the model more telemetry and drops more already-dead "
              "databases from the task; the paper's operating point is "
              "x=2, y=30.)\n");
  return 0;
}
