// Extension of the paper's "Factors" analysis: a Cox proportional-
// hazards regression of drop risk on interpretable covariates, plus
// parametric (exponential / Weibull) fits of the population lifetime.
// Where Section 5.4 ranks features by gini importance inside a forest,
// the Cox model quantifies each factor's multiplicative effect on the
// drop hazard with confidence intervals — the classical epidemiology
// companion to the KM analysis of Section 3.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "features/features.h"
#include "survival/cox.h"
#include "survival/parametric.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Cox regression of drop hazard on database factors");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  // Assemble covariates for every database in the 2-day-minimum cohort.
  const auto ids = core::SelectCohort(store, core::CohortFilter{});
  std::vector<survival::CovariateObservation> data;
  data.reserve(ids.size());
  for (auto id : ids) {
    const auto record = *store.FindDatabase(id);
    survival::CovariateObservation obs;
    obs.duration = record.ObservedLifespanDays(store.window_end());
    obs.observed = record.dropped_at.has_value();

    const auto creation = features::CreationTimeFeatures(store, record);
    const auto name = features::NameShapeFeatures(record.database_name);
    const auto history = features::SubscriptionHistoryFeatures(
        store, record,
        record.created_at + 2 * telemetry::kSecondsPerDay);
    const auto edition = record.initial_edition();
    obs.covariates = {
        edition == telemetry::Edition::kStandard ? 1.0 : 0.0,
        edition == telemetry::Edition::kPremium ? 1.0 : 0.0,
        creation[0] >= 6.0 ? 1.0 : 0.0,                    // weekend create
        (creation[4] >= 8.0 && creation[4] <= 18.0) ? 1.0 : 0.0,
        name[0] / 10.0,                                    // name length /10
        name[3],                                           // letters+digits
        std::min(history[1], 50.0) / 10.0,                 // prior dbs /10
        std::min(history[16], 60.0) / 30.0,  // min sibling lifespan /30
    };
    data.push_back(std::move(obs));
  }

  const std::vector<std::string> names = {
      "edition=Standard", "edition=Premium",  "created_weekend",
      "created_bizhours", "name_length/10",   "name_has_digits",
      "prior_dbs/10",     "sib_min_life/30d",
  };
  auto model = survival::CoxModel::Fit(data, names);
  if (!model.ok()) {
    std::fprintf(stderr, "Cox fit failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  std::printf("n=%zu databases, %d Newton iterations, converged=%s\n\n",
              data.size(), model->num_iterations(),
              model->converged() ? "yes" : "no");
  std::printf("%s\n", model->ToText().c_str());
  std::printf("concordance index: %.3f\n\n",
              model->ConcordanceIndex(data));

  std::printf("interpretation: HR > 1 raises drop risk (shorter life); "
              "Premium and automated naming raise risk, long-lived "
              "sibling history lowers it.\n\n");

  // Parametric population fits (Weibull shape < 1 = infant-mortality
  // churn pattern).
  auto survival_data = core::CohortSurvivalData(store, core::CohortFilter{});
  if (survival_data.ok()) {
    auto weibull = survival::FitWeibull(*survival_data);
    auto exponential = survival::FitExponential(*survival_data);
    if (weibull.ok() && exponential.ok()) {
      std::printf("parametric population fits (lifetimes >= 2 days):\n");
      std::printf("  exponential: rate=%.4f/day          AIC=%.0f\n",
                  exponential->rate, exponential->fit.aic);
      std::printf("  weibull:     shape=%.3f scale=%.1fd  AIC=%.0f %s\n",
                  weibull->shape, weibull->scale, weibull->fit.aic,
                  weibull->fit.aic < exponential->fit.aic
                      ? "(preferred by AIC)"
                      : "");
      std::printf("  shape %s 1: drop hazard %s with age\n",
                  weibull->shape < 1.0 ? "<" : ">",
                  weibull->shape < 1.0 ? "decreases" : "increases");
    }
  }
  return 0;
}
