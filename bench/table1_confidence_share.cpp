// Reproduces Table 1: percentage of confident vs uncertain predictions
// per (region, edition) subgroup. Paper shape: Standard is nearly all
// confident (balanced classes -> low threshold), Basic and Premium
// retain a substantial uncertain share.

#include <cstdio>

#include "bench/bench_util.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Table 1: confident vs uncertain prediction shares");
  auto stores = bench::SimulateStudyRegions();
  auto results = bench::RunAllSubgroups(stores, /*tune=*/false);

  std::printf("%-9s %-10s %11s %11s\n", "edition", "region", "confident",
              "uncertain");
  // Paper groups rows by edition, then region.
  for (size_t e = 0; e < 3; ++e) {
    for (size_t region = 0; region < 3; ++region) {
      const auto& r = results[region * 3 + e];
      std::printf("%-9s %-10s %10.0f%% %10.0f%%\n", r.subgroup_name.c_str(),
                  r.region_name.c_str(), r.confident_fraction_avg * 100.0,
                  (1.0 - r.confident_fraction_avg) * 100.0);
    }
  }

  std::printf("\nper-edition average confident share:\n");
  for (size_t e = 0; e < 3; ++e) {
    double total = 0.0;
    for (size_t region = 0; region < 3; ++region) {
      total += results[region * 3 + e].confident_fraction_avg;
    }
    std::printf("  %-9s %.1f%%\n", results[e].subgroup_name.c_str(),
                total / 3.0 * 100.0);
  }
  return 0;
}
