// Ablation: drop one feature family at a time and measure the accuracy
// cost on Region-1, per edition. Complements Section 5.4 — the family
// whose removal hurts most should match the gini-importance ranking
// (subscription history first).
//
// The cohort is extracted ONCE per edition through a compiled
// FeaturePlan; each family-drop then reuses that matrix via
// ml::Dataset::DropFeatures instead of re-extracting the whole cohort.
// Dropping a family's columns from the full matrix is exactly the
// matrix a config with that family disabled extracts (families write
// disjoint column ranges and never read each other), so the accuracies
// are identical to the old re-extract-per-toggle loop at a fraction of
// the cost. Each family's standalone extraction cost over the cohort
// is also timed (a single-family FeaturePlan sweep) and reported.
//
// Human-readable table -> stderr; one JSON document -> stdout with
// per-(edition, toggle) accuracies and per-family extraction cost.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "core/prediction.h"
#include "features/feature_plan.h"

using namespace cloudsurv;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

features::FeatureConfig SingleFamilyConfig(const std::string& family) {
  features::FeatureConfig config;
  config.include_creation_time = family == "creation_time";
  config.include_names = family == "names";
  config.include_size = family == "size";
  config.include_slo = family == "slo";
  config.include_subscription_type = family == "subscription_type";
  config.include_subscription_history = family == "subscription_history";
  return config;
}

}  // namespace

int main() {
  std::fprintf(stderr,
               "Ablation: feature families (Region-1); accuracies from one "
               "shared extraction pass per edition\n");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  const char* kFamilies[] = {"subscription_history", "names",
                             "creation_time",        "size",
                             "slo",                  "subscription_type"};

  std::printf("{\n");
  std::printf("  \"bench\": \"ablation_features\",\n");
  std::printf("  \"region\": \"%s\",\n", store.region_name().c_str());

  // Per-family standalone extraction cost over the whole-population
  // cohort: what each family alone costs per row, batch path.
  {
    auto cohort = core::BuildPredictionCohort(store, 2.0, 30.0,
                                              std::nullopt);
    if (!cohort.ok()) {
      std::fprintf(stderr, "cohort failed: %s\n",
                   cohort.status().ToString().c_str());
      return 1;
    }
    std::printf("  \"extraction_cost\": {\"cohort_rows\": %zu,\n",
                cohort->ids.size());
    std::printf("    \"per_family_ms\": {");
    bool first = true;
    for (const char* family : kFamilies) {
      auto plan = features::FeaturePlan::Compile(SingleFamilyConfig(family));
      if (!plan.ok()) {
        std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
        return 1;
      }
      std::vector<double> matrix(cohort->ids.size() * plan->num_features());
      const auto t0 = std::chrono::steady_clock::now();
      Status status =
          plan->ExtractBatch(store, cohort->ids, matrix.data());
      const double ms = MsSince(t0);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      std::printf("%s\"%s\": %.3f", first ? "" : ", ", family, ms);
      std::fprintf(stderr, "  extract %-22s %8.3f ms\n", family, ms);
      first = false;
    }
    std::printf("}},\n");
  }

  std::printf("  \"editions\": [\n");
  const auto& editions = bench::StudyEditions();
  for (size_t e = 0; e < editions.size(); ++e) {
    const telemetry::Edition edition = editions[e];
    std::fprintf(stderr, "---- %s ----\n",
                 telemetry::EditionToString(edition));

    core::ExperimentConfig config = bench::PaperExperimentConfig(false);
    features::FeatureConfig feature_config = config.feature_config;
    feature_config.observation_days = config.observe_days;

    // One cohort + one full extraction pass for this edition; every
    // family-drop below reuses the matrix.
    auto cohort = core::BuildPredictionCohort(
        store, config.observe_days, config.long_threshold_days, edition);
    if (!cohort.ok()) {
      std::fprintf(stderr, "cohort failed: %s\n",
                   cohort.status().ToString().c_str());
      return 1;
    }
    auto plan = features::FeaturePlan::Compile(feature_config);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto dataset = features::BuildDataset(store, cohort->ids, cohort->labels,
                                          *plan);
    const double extract_ms = MsSince(t0);
    if (!dataset.ok()) {
      std::fprintf(stderr, "extraction failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }

    std::printf("    {\"edition\": \"%s\", \"cohort_rows\": %zu, "
                "\"full_extract_ms\": %.3f, \"toggles\": [\n",
                telemetry::EditionToString(edition), cohort->ids.size(),
                extract_ms);

    double full_accuracy = 0.0;
    std::vector<std::pair<std::string, double>> entries;
    // Full feature set first, then each family dropped.
    {
      auto result = core::RunPredictionExperimentOnDataset(
          *dataset, *cohort, store.region_name(), edition, config);
      if (!result.ok()) {
        std::fprintf(stderr, "  (full feature set) failed: %s\n",
                     result.status().ToString().c_str());
      } else {
        full_accuracy = result->forest_avg.accuracy;
        entries.emplace_back("(full feature set)", full_accuracy);
      }
    }
    for (const char* family : kFamilies) {
      auto names = features::FeatureFamilyNames(feature_config, family);
      if (!names.ok()) {
        std::fprintf(stderr, "%s\n", names.status().ToString().c_str());
        return 1;
      }
      auto reduced = dataset->DropFeatures(*names);
      if (!reduced.ok()) {
        std::fprintf(stderr, "%s\n", reduced.status().ToString().c_str());
        return 1;
      }
      auto result = core::RunPredictionExperimentOnDataset(
          *reduced, *cohort, store.region_name(), edition, config);
      if (!result.ok()) {
        std::fprintf(stderr, "  - %-24s failed: %s\n", family,
                     result.status().ToString().c_str());
        continue;
      }
      entries.emplace_back(std::string("- ") + family,
                           result->forest_avg.accuracy);
    }
    for (size_t t = 0; t < entries.size(); ++t) {
      std::fprintf(stderr, "  %-26s acc=%.3f (%+.3f)\n",
                   entries[t].first.c_str(), entries[t].second,
                   entries[t].second - full_accuracy);
      std::printf("      {\"toggle\": \"%s\", \"accuracy\": %.4f, "
                  "\"delta_vs_full\": %.4f}%s\n",
                  entries[t].first.c_str(), entries[t].second,
                  entries[t].second - full_accuracy,
                  t + 1 < entries.size() ? "," : "");
    }
    std::printf("    ]}%s\n", e + 1 < editions.size() ? "," : "");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  bench::EmitRegistrySnapshot();
  return 0;
}
