// Ablation: drop one feature family at a time and measure the accuracy
// cost on Region-1, per edition. Complements Section 5.4 — the family
// whose removal hurts most should match the gini-importance ranking
// (subscription history first).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/prediction.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Ablation: feature families (Region-1)");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  struct Toggle {
    const char* name;
    void (*apply)(features::FeatureConfig*);
  };
  const Toggle kToggles[] = {
      {"(full feature set)", [](features::FeatureConfig*) {}},
      {"- subscription_history",
       [](features::FeatureConfig* c) {
         c->include_subscription_history = false;
       }},
      {"- names",
       [](features::FeatureConfig* c) { c->include_names = false; }},
      {"- creation_time",
       [](features::FeatureConfig* c) { c->include_creation_time = false; }},
      {"- size", [](features::FeatureConfig* c) { c->include_size = false; }},
      {"- slo", [](features::FeatureConfig* c) { c->include_slo = false; }},
      {"- subscription_type",
       [](features::FeatureConfig* c) {
         c->include_subscription_type = false;
       }},
  };

  for (telemetry::Edition edition : bench::StudyEditions()) {
    std::printf("---- %s ----\n", telemetry::EditionToString(edition));
    double full_accuracy = 0.0;
    for (const Toggle& toggle : kToggles) {
      core::ExperimentConfig config = bench::PaperExperimentConfig(false);
      toggle.apply(&config.feature_config);
      auto result = core::RunPredictionExperiment(store, edition, config);
      if (!result.ok()) {
        std::printf("  %-26s failed: %s\n", toggle.name,
                    result.status().ToString().c_str());
        continue;
      }
      if (full_accuracy == 0.0) full_accuracy = result->forest_avg.accuracy;
      std::printf("  %-26s acc=%.3f (%+.3f)\n", toggle.name,
                  result->forest_avg.accuracy,
                  result->forest_avg.accuracy - full_accuracy);
    }
  }
  return 0;
}
