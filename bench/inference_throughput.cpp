// Inference throughput: compiles a trained random forest into the flat
// SoA representation (ml/flat_forest.h), scores a synthetic matrix in
// batches through the legacy per-row path and the blocked flat path,
// and reports rows/sec plus p50/p99 per-batch latency for each batch
// size x thread count x traversal kernel (scalar, AVX2 when the
// build/CPU has it, and the quantized code path when the forest is
// quantizable), with the flat-vs-legacy speedup. Every flat prediction
// is checked bit-for-bit against the legacy output — any mismatch
// fails the bench (non-zero exit). Speedups are informational: on a
// single-core container the parallel sweep cannot demonstrate the
// multi-core acceptance number, so only bit-identity is load-bearing;
// tools/bench_check.py gates the speedup ratios against a committed
// baseline in CI.
//
// A startup-to-first-score axis persists the same forest both ways and
// measures the cold-start path each deployment shape pays: text load +
// Deserialize + Compile, versus opening the CSRV binary artifact
// (artifact/reader.h) with an mmap'ed cold page cache (best-effort
// eviction via posix_fadvise), a warm cache, and the buffered-read
// fallback — each timed through the first scored row.
//
// Scale knobs (environment): CLOUDSURV_BENCH_ROWS (default 32768),
// CLOUDSURV_BENCH_FEATURES (30), CLOUDSURV_BENCH_TREES (80),
// CLOUDSURV_BENCH_DEPTH (12), CLOUDSURV_BENCH_ITERS (5),
// CLOUDSURV_THREADS (8). Reports JSON on stdout.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if !defined(_WIN32)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "artifact/reader.h"
#include "artifact/writer.h"
#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/dataset.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "ml/simd/traversal.h"

namespace {

using namespace cloudsurv;

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

double Seconds(const std::chrono::steady_clock::time_point& t0,
               const std::chrono::steady_clock::time_point& t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

// Continuous features with a noisy linear label rule (same shape as the
// training bench) so the forest grows to real depth. `grid` > 0 snaps
// every value onto a grid of that many points — few distinct values per
// feature keeps the compiled cut tables within the uint8 code budget,
// exercising the narrowest quantized tier.
ml::Dataset SyntheticMatrix(size_t rows, size_t features, size_t grid,
                            uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(features);
  for (size_t f = 0; f < features; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  std::vector<std::vector<double>> matrix;
  std::vector<int> labels;
  matrix.reserve(rows);
  labels.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> row(features);
    double score = 0.0;
    for (size_t f = 0; f < features; ++f) {
      double v = rng.Normal(0.0, 1.0);
      if (grid > 0) {
        const double step = 6.0 / static_cast<double>(grid);
        v = std::max(-3.0, std::min(3.0, v));
        v = std::round(v / step) * step;
      }
      row[f] = v;
      if (f < 5) score += row[f] * (f % 2 == 0 ? 1.0 : -1.0);
    }
    labels.push_back(score + rng.Normal(0.0, 1.0) > 0.0 ? 1 : 0);
    matrix.push_back(std::move(row));
  }
  auto d = ml::Dataset::Make(names, std::move(matrix), std::move(labels));
  if (!d.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 d.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(d).value();
}

double PercentileUs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t index = static_cast<size_t>(
      p / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(index, samples.size() - 1)];
}

struct BatchStats {
  double rows_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
};

double MedianMs(std::vector<double> ms) { return PercentileUs(std::move(ms), 50.0); }

// Best-effort page-cache eviction so the next read of `path` faults in
// from disk. Returns false when the platform (or filesystem) cannot
// honour the advice; the "cold" number then degrades to warm and the
// JSON says so.
bool DropFileCache(const std::string& path) {
#if !defined(_WIN32)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return false;
#endif
}

BatchStats Summarize(const std::vector<double>& batch_seconds,
                     size_t total_rows) {
  BatchStats stats;
  double total_s = 0.0;
  std::vector<double> us;
  us.reserve(batch_seconds.size());
  for (double s : batch_seconds) {
    total_s += s;
    us.push_back(s * 1e6);
  }
  stats.rows_per_sec =
      total_s > 0.0 ? static_cast<double>(total_rows) / total_s : 0.0;
  stats.p50_us = PercentileUs(us, 50.0);
  stats.p99_us = PercentileUs(us, 99.0);
  return stats;
}

}  // namespace

int main() {
  const size_t rows = EnvSize("CLOUDSURV_BENCH_ROWS", 32768);
  const size_t features = EnvSize("CLOUDSURV_BENCH_FEATURES", 30);
  const size_t trees = EnvSize("CLOUDSURV_BENCH_TREES", 80);
  const int depth = static_cast<int>(EnvSize("CLOUDSURV_BENCH_DEPTH", 12));
  const size_t iters = EnvSize("CLOUDSURV_BENCH_ITERS", 5);
  const size_t max_threads = EnvSize("CLOUDSURV_THREADS", 8);
  const size_t grid = EnvSize("CLOUDSURV_BENCH_GRID", 0);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  const ml::Dataset data = SyntheticMatrix(rows, features, grid, 99);

  ml::ForestParams params;
  params.num_trees = static_cast<int>(trees);
  params.max_depth = depth;
  params.split_algorithm = ml::SplitAlgorithm::kHistogram;
  ml::RandomForestClassifier forest;
  if (Status fitted = forest.Fit(data, params, 99); !fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.ToString().c_str());
    return 1;
  }

  const auto c0 = std::chrono::steady_clock::now();
  auto compiled = ml::FlatForest::Compile(forest);
  const auto c1 = std::chrono::steady_clock::now();
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 compiled.status().ToString().c_str());
    return 1;
  }
  const ml::FlatForest& flat = *compiled;
  if (Status check = flat.SelfCheck(); !check.ok()) {
    std::fprintf(stderr, "self check failed: %s\n",
                 check.ToString().c_str());
    return 1;
  }

  // Reference predictions; every flat batch below must match exactly.
  auto reference = forest.PredictPositiveProba(data);
  if (!reference.ok()) {
    std::fprintf(stderr, "legacy predict failed: %s\n",
                 reference.status().ToString().c_str());
    return 1;
  }

  // --- Startup-to-first-score axis -------------------------------------
  // Persist the trained forest as (a) the text serialization a train box
  // writes and (b) a CSRV binary artifact, then measure load-to-first-
  // score for each deployment shape. The probe row's score must be
  // bit-identical to the legacy reference in every mode.
  const std::string scratch =
      (std::filesystem::temp_directory_path() / "cloudsurv_infer_bench")
          .string();
  const std::string text_path = scratch + ".txt";
  const std::string csrv_path = scratch + ".csrv";
  {
    std::ofstream out(text_path, std::ios::binary | std::ios::trunc);
    out << forest.Serialize();
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", text_path.c_str());
      return 1;
    }
  }
  {
    artifact::ArtifactWriter writer(artifact::PayloadKind::kFlatForest);
    if (Status s = flat.WriteTo(writer); !s.ok()) {
      std::fprintf(stderr, "artifact pack failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
    if (Status s = writer.WriteFile(csrv_path); !s.ok()) {
      std::fprintf(stderr, "artifact write failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  const size_t text_bytes = std::filesystem::file_size(text_path);
  const size_t artifact_bytes = std::filesystem::file_size(csrv_path);

  std::vector<std::vector<double>> probe_rows = {data.row(0)};
  auto probe_made = ml::Dataset::Make(data.feature_names(),
                                      std::move(probe_rows), {data.label(0)});
  if (!probe_made.ok()) return 1;
  const ml::Dataset probe = std::move(probe_made).value();
  const double first_ref = (*reference)[0];

  const auto score_probe = [&probe](const ml::FlatForest& f) -> double {
    auto out = f.PredictPositiveProbaBatch(probe);
    if (!out.ok()) {
      std::fprintf(stderr, "startup probe score failed: %s\n",
                   out.status().ToString().c_str());
      std::exit(1);
    }
    return (*out)[0];
  };

  std::vector<double> text_ms, cold_ms, warm_ms, buffered_ms;
  bool startup_identical = true;
  bool mmap_zero_copy = true;
  bool cold_cache_dropped = true;
  for (size_t it = 0; it < iters; ++it) {
    {  // Text model: read + Deserialize + Compile + first score.
      const auto t0 = std::chrono::steady_clock::now();
      std::ifstream in(text_path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      auto loaded = ml::RandomForestClassifier::Deserialize(buf.str());
      if (!loaded.ok()) return 1;
      auto recompiled = ml::FlatForest::Compile(*loaded);
      if (!recompiled.ok()) return 1;
      const double score = score_probe(*recompiled);
      const auto t1 = std::chrono::steady_clock::now();
      text_ms.push_back(Seconds(t0, t1) * 1e3);
      if (score != first_ref) startup_identical = false;
    }
    const auto artifact_run = [&](const artifact::ArtifactReader::Options&
                                      options,
                                  std::vector<double>& samples,
                                  bool expect_mapped) {
      const auto t0 = std::chrono::steady_clock::now();
      auto reader = artifact::ArtifactReader::Open(csrv_path, options);
      if (!reader.ok()) {
        std::fprintf(stderr, "artifact open failed: %s\n",
                     reader.status().ToString().c_str());
        std::exit(1);
      }
      auto view = ml::FlatForest::FromView(*reader);
      if (!view.ok()) {
        std::fprintf(stderr, "artifact view failed: %s\n",
                     view.status().ToString().c_str());
        std::exit(1);
      }
      const double score = score_probe(*view);
      const auto t1 = std::chrono::steady_clock::now();
      samples.push_back(Seconds(t0, t1) * 1e3);
      if (score != first_ref) startup_identical = false;
      if (expect_mapped && reader->mapped() && !view->zero_copy()) {
        mmap_zero_copy = false;
      }
    };
    artifact::ArtifactReader::Options mmap_options;  // prefer_mmap = true
    if (!DropFileCache(csrv_path)) cold_cache_dropped = false;
    artifact_run(mmap_options, cold_ms, /*expect_mapped=*/true);
    artifact_run(mmap_options, warm_ms, /*expect_mapped=*/true);
    artifact::ArtifactReader::Options buffered_options;
    buffered_options.prefer_mmap = false;
    artifact_run(buffered_options, buffered_ms, /*expect_mapped=*/false);
  }
  std::remove(text_path.c_str());
  std::remove(csrv_path.c_str());
  const double startup_text_ms = MedianMs(text_ms);
  const double startup_warm_ms = MedianMs(warm_ms);
  const double warm_speedup =
      startup_warm_ms > 0.0 ? startup_text_ms / startup_warm_ms : 0.0;

  // Pre-split the matrix into per-batch datasets (untimed copies).
  const std::vector<size_t> batch_sizes = {512, 4096,
                                           std::min<size_t>(rows, 16384)};
  bool bit_identical = true;
  size_t mismatches = 0;

  std::printf("{\n");
  std::printf(
      "  \"rows\": %zu, \"features\": %zu, \"trees\": %zu, "
      "\"depth\": %d, \"iterations\": %zu, \"cores\": %u,\n",
      rows, features, trees, depth, iters, cores);
  std::printf(
      "  \"compile\": {\"ms\": %.3f, \"nodes\": %zu, \"leaves\": %zu, "
      "\"memory_bytes\": %zu, \"quantized\": %s, \"code_bits\": %d, "
      "\"tuned_block_rows\": %zu, \"breadth_first\": %s},\n",
      Seconds(c0, c1) * 1e3, flat.num_nodes(), flat.num_leaves(),
      flat.memory_bytes(), flat.quantized() ? "true" : "false",
      flat.code_bits(), flat.tuned_block_rows(),
      flat.nodes_breadth_first() ? "true" : "false");
  std::printf(
      "  \"simd\": {\"avx2_compiled_in\": %s, \"avx2_available\": %s, "
      "\"force_scalar\": %s},\n",
      ml::simd::Avx2CompiledIn() ? "true" : "false",
      ml::simd::Avx2Supported() ? "true" : "false",
      ml::simd::ForceScalar() ? "true" : "false");
  std::printf(
      "  \"startup\": {\"iterations\": %zu, \"text_bytes\": %zu, "
      "\"artifact_bytes\": %zu,\n"
      "    \"text_load_compile_ms\": %.3f, \"artifact_mmap_cold_ms\": %.3f, "
      "\"artifact_mmap_warm_ms\": %.3f, \"artifact_buffered_ms\": %.3f,\n"
      "    \"mmap_zero_copy\": %s, \"cold_cache_dropped\": %s, "
      "\"warm_speedup_vs_text\": %.2f, \"first_score_identical\": %s},\n",
      iters, text_bytes, artifact_bytes, startup_text_ms, MedianMs(cold_ms),
      startup_warm_ms, MedianMs(buffered_ms),
      mmap_zero_copy ? "true" : "false",
      cold_cache_dropped ? "true" : "false", warm_speedup,
      startup_identical ? "true" : "false");

  // Flat-path configurations: the portable scalar kernel always runs;
  // the AVX2 kernel runs when the build and CPU both have it; the
  // quantized (integer-code) path runs when the forest is quantizable.
  // The quantized path ignores the traversal kind, so it is swept once
  // and labelled as its own kernel rather than crossed with the kinds.
  struct FlatConfig {
    ml::simd::TraversalKind kind;
    bool use_quantized;
    const char* label;
  };
  std::vector<FlatConfig> flat_configs;
  flat_configs.push_back(
      {ml::simd::TraversalKind::kScalar, false, "scalar"});
  if (ml::simd::Avx2Supported()) {
    flat_configs.push_back({ml::simd::TraversalKind::kAvx2, false, "avx2"});
  }
  if (flat.quantized()) {
    flat_configs.push_back(
        {ml::simd::TraversalKind::kScalar, true, "quantized"});
  }

  std::printf("  \"runs\": [\n");
  bool first_run = true;
  double best_speedup_4096 = 0.0;
  for (size_t batch_rows : batch_sizes) {
    std::vector<ml::Dataset> batches;
    for (size_t lo = 0; lo < rows; lo += batch_rows) {
      const size_t hi = std::min(rows, lo + batch_rows);
      std::vector<std::vector<double>> slice;
      std::vector<int> labels;
      slice.reserve(hi - lo);
      for (size_t i = lo; i < hi; ++i) {
        slice.push_back(data.row(i));
        labels.push_back(data.label(i));
      }
      auto d = ml::Dataset::Make(data.feature_names(), std::move(slice),
                                 std::move(labels));
      if (!d.ok()) return 1;
      batches.push_back(std::move(d).value());
    }

    // Legacy baseline: the allocation-lean per-row loop.
    std::vector<double> legacy_seconds;
    for (size_t it = 0; it < iters; ++it) {
      for (const auto& batch : batches) {
        const auto t0 = std::chrono::steady_clock::now();
        auto out = forest.PredictPositiveProba(batch);
        const auto t1 = std::chrono::steady_clock::now();
        if (!out.ok()) return 1;
        legacy_seconds.push_back(Seconds(t0, t1));
      }
    }
    const BatchStats legacy = Summarize(legacy_seconds, rows * iters);
    std::printf(
        "%s    {\"mode\": \"legacy\", \"batch_rows\": %zu, \"threads\": 1, "
        "\"rows_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f}",
        first_run ? "" : ",\n", batch_rows, legacy.rows_per_sec,
        legacy.p50_us, legacy.p99_us);
    first_run = false;

    // Flat path: thread sweep (1 = sequential, no pool) x traversal
    // kernel (scalar / AVX2 / quantized integer codes).
    std::vector<size_t> thread_sweep = {1};
    for (size_t t = 2; t <= max_threads; t *= 2) thread_sweep.push_back(t);
    for (const FlatConfig& cfg : flat_configs)
    for (size_t num_threads : thread_sweep) {
      ThreadPool pool(num_threads, /*max_queued=*/1024);
      ml::FlatForest::BatchOptions options;
      options.pool = num_threads > 1 ? &pool : nullptr;
      options.use_quantized = cfg.use_quantized;
      options.traversal = cfg.kind;

      std::vector<double> flat_seconds;
      for (size_t it = 0; it < iters; ++it) {
        size_t offset = 0;
        for (const auto& batch : batches) {
          const auto t0 = std::chrono::steady_clock::now();
          auto out = flat.PredictPositiveProbaBatch(batch, options);
          const auto t1 = std::chrono::steady_clock::now();
          if (!out.ok()) {
            std::fprintf(stderr, "flat predict failed: %s\n",
                         out.status().ToString().c_str());
            return 1;
          }
          flat_seconds.push_back(Seconds(t0, t1));
          if (it == 0) {
            for (size_t i = 0; i < out->size(); ++i) {
              if ((*out)[i] != (*reference)[offset + i]) {
                bit_identical = false;
                ++mismatches;
              }
            }
          }
          offset += batch.num_rows();
        }
      }
      const BatchStats stats = Summarize(flat_seconds, rows * iters);
      const double speedup = legacy.rows_per_sec > 0.0
                                 ? stats.rows_per_sec / legacy.rows_per_sec
                                 : 0.0;
      if (batch_rows >= 4096) {
        best_speedup_4096 = std::max(best_speedup_4096, speedup);
      }
      std::printf(
          ",\n    {\"mode\": \"flat\", \"batch_rows\": %zu, "
          "\"threads\": %zu, \"traversal\": \"%s\", \"quantized\": %s, "
          "\"rows_per_sec\": %.0f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
          "\"speedup_vs_legacy\": %.2f}",
          batch_rows, num_threads, cfg.label,
          cfg.use_quantized ? "true" : "false", stats.rows_per_sec,
          stats.p50_us, stats.p99_us, speedup);
    }
  }
  std::printf("\n  ],\n");
  std::printf("  \"bit_identical\": %s, \"mismatches\": %zu,\n",
              bit_identical ? "true" : "false", mismatches);
  std::printf("  \"multi_core\": %s,\n", cores > 1 ? "true" : "false");
  std::printf("  \"best_speedup_at_batch_4096\": %.2f\n",
              best_speedup_4096);
  std::printf("}\n");
  if (cores <= 1) {
    std::fprintf(stderr,
                 "single-core container: speedups are informational, "
                 "bit-identity is the pass/fail signal\n");
  }
  cloudsurv::bench::EmitRegistrySnapshot();
  return bit_identical && startup_identical ? 0 : 1;
}
