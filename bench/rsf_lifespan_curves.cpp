// Extension: random survival forest — instead of the paper's fixed
// "x=2/y=30" binary question, predict each database's full survival
// curve S(t | x) from day-2 features, answering every ">t days?"
// question at once. Compares ranking quality (concordance) against the
// Cox model and the induced 30-day classifier against the paper's
// random-forest numbers.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "features/features.h"
#include "survival/cox.h"
#include "survival/random_survival_forest.h"

using namespace cloudsurv;

namespace {

// Day-2 feature vector reduced to the covariates both models share.
survival::CovariateObservation MakeObservation(
    const telemetry::TelemetryStore& store,
    const telemetry::DatabaseRecord& record) {
  survival::CovariateObservation obs;
  obs.duration = record.ObservedLifespanDays(store.window_end());
  obs.observed = record.dropped_at.has_value();
  const auto creation = features::CreationTimeFeatures(store, record);
  const auto name = features::NameShapeFeatures(record.database_name);
  const auto history = features::SubscriptionHistoryFeatures(
      store, record, record.created_at + 2 * telemetry::kSecondsPerDay);
  const auto size = features::SizeFeatures(
      record, record.created_at + 2 * telemetry::kSecondsPerDay);
  obs.covariates = {
      static_cast<double>(record.initial_edition()),
      creation[0],            // day of week
      creation[4],            // hour
      name[0],                // name length
      name[3],                // letters+digits
      history[1],             // prior sibling count
      history[16],            // min sibling lifespan
      history[18],            // std sibling lifespan
      size[4],                // relative size change over 2 days
  };
  return obs;
}

const std::vector<std::string> kCovariateNames = {
    "edition",        "create_dow",     "create_hour",
    "name_length",    "name_digits",    "prior_dbs",
    "sib_min_life",   "sib_std_life",   "size_rel_change",
};

}  // namespace

int main() {
  bench::PrintHeader(
      "Extension: random survival forest - full lifespan curves");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  // Day-2 cohort (alive at x=2, like the paper's task, but with the
  // full censored duration as the target).
  std::vector<survival::CovariateObservation> train, test;
  size_t count = 0;
  for (const auto& record : store.databases()) {
    if (record.ObservedLifespanDays(store.window_end()) < 2.0) continue;
    auto obs = MakeObservation(store, record);
    ((count++ % 5 == 0) ? test : train).push_back(std::move(obs));
  }
  std::printf("cohort: %zu train / %zu test databases (alive at day 2)\n\n",
              train.size(), test.size());

  survival::SurvivalForestParams params;
  params.num_trees = 80;
  params.max_depth = 8;
  params.min_samples_leaf = 25;
  params.horizon_days = 150.0;
  params.grid_points = 76;
  survival::RandomSurvivalForest forest;
  if (!forest.Fit(train, kCovariateNames, params, 13).ok()) return 1;

  auto cox = survival::CoxModel::Fit(train, kCovariateNames);

  std::printf("ranking quality (test-set concordance index):\n");
  std::printf("  random survival forest: %.3f\n",
              forest.ConcordanceIndex(test));
  if (cox.ok()) {
    std::printf("  Cox proportional hazards: %.3f\n",
                cox->ConcordanceIndex(test));
  }

  // Induced 30-day classifier vs known outcomes.
  size_t correct = 0, total = 0;
  for (const auto& obs : test) {
    const bool known_long = obs.duration > 30.0;
    const bool known_short = obs.observed && obs.duration <= 30.0;
    if (!known_long && !known_short) continue;
    const bool predicted_long =
        forest.PredictSurvival(obs.covariates, 30.0) > 0.5;
    if (predicted_long == known_long) ++correct;
    ++total;
  }
  std::printf("\ninduced 30-day classifier accuracy: %.3f on %zu "
              "known-outcome databases (paper's dedicated binary forest: "
              "~0.80; one model here answers every horizon)\n",
              static_cast<double>(correct) / static_cast<double>(total),
              total);

  std::printf("\nsplit importances:\n");
  for (size_t f = 0; f < kCovariateNames.size(); ++f) {
    std::printf("  %-16s %.3f\n", kCovariateNames[f].c_str(),
                forest.feature_importances()[f]);
  }

  // Representative profiles: an automated churn-looking database vs a
  // human business-hours production database with long-lived siblings.
  survival::CovariateObservation churny;
  churny.covariates = {1.0, 6.0, 3.0, 22.0, 1.0, 20.0, 0.5, 0.2, 0.0};
  survival::CovariateObservation steady;
  steady.covariates = {1.0, 2.0, 10.0, 6.0, 0.0, 2.0, 45.0, 5.0, 0.15};
  std::printf("\npredicted survival curves:\n");
  std::printf("%6s %18s %18s\n", "day", "automated-churny",
              "human-production");
  for (double day : {2.0, 7.0, 14.0, 30.0, 60.0, 90.0, 120.0}) {
    std::printf("%6.0f %18.3f %18.3f\n", day,
                forest.PredictSurvival(churny.covariates, day),
                forest.PredictSurvival(steady.covariates, day));
  }
  std::printf("\npredicted median lifetimes: churny=%.0f days, "
              "production=%.0f days\n",
              forest.PredictMedian(churny.covariates),
              forest.PredictMedian(steady.covariates));
  return 0;
}
