// Feature extraction benchmark: per-row scalar ExtractFeatures against
// the compiled FeaturePlan batch path, on a synthetic store large
// enough (>= 100k databases by default) that the batch path's
// sibling-table sharing dominates: subscription sizes are skewed so a
// handful of subscriptions hold hundreds of databases each, which is
// exactly the regime where the scalar path's per-target re-scan of
// every sibling goes quadratic.
//
// Bit-identity is a hard gate, not a report: every batch matrix is
// memcmp'd against the scalar one and any mismatch exits non-zero.
//
// Emits one JSON document on stdout, gated in CI by
// tools/bench_check.py --baseline bench/baselines/feature_extraction.json:
//   - bit_identical must be true;
//   - num_databases must stay >= 100000;
//   - best_batch_speedup must stay >= 5.0 (absolute, machine-portable:
//     it is an algorithmic win, not a core-count win);
//   - per-thread-count speedups are checked against the baseline with
//     the usual relative tolerance.
//
// Scale: CLOUDSURV_BENCH_DBS databases (default 100000),
// CLOUDSURV_BENCH_ITERS timing repetitions (default 3).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "features/feature_plan.h"
#include "features/features.h"
#include "telemetry/civil_time.h"
#include "telemetry/events.h"
#include "telemetry/store.h"

using namespace cloudsurv;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

// Deterministic 32-bit stream (same LCG family the tests use).
struct Rng {
  uint64_t state = 0x20170101u;
  uint32_t Next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state >> 33);
  }
};

struct SyntheticStore {
  telemetry::TelemetryStore store;
  std::vector<telemetry::DatabaseId> cohort;  ///< Survived the window.
};

// Builds a store with `num_dbs` databases whose subscription sizes are
// skewed: ~20% of databases land in 32 "mega" subscriptions (hundreds
// of siblings each at the default scale), ~50% in mid-sized ones, the
// rest in a long tail. Roughly a third are dropped, some inside the
// 2-day observation window (those are excluded from the cohort, like
// BuildPredictionCohort would).
SyntheticStore BuildSyntheticStore(size_t num_dbs) {
  const telemetry::Timestamp window_start =
      telemetry::MakeTimestamp(2017, 1, 1);
  const telemetry::Timestamp window_end =
      telemetry::MakeTimestamp(2017, 5, 31);
  telemetry::HolidayCalendar holidays;
  holidays.AddHoliday(2017, 1, 2);
  telemetry::TelemetryStore store("BenchRegion", -480, holidays,
                                  window_start, window_end);
  auto day_ts = [window_start](double days) {
    return window_start + static_cast<telemetry::Timestamp>(
                              days * telemetry::kSecondsPerDay);
  };
  auto check = [](const Status& status) {
    if (!status.ok()) {
      std::fprintf(stderr, "store build failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
  };

  Rng rng;
  const size_t mid_subs = num_dbs / 50 + 1;
  std::vector<telemetry::DatabaseId> cohort;
  cohort.reserve(num_dbs);
  for (size_t i = 0; i < num_dbs; ++i) {
    const telemetry::DatabaseId id = static_cast<telemetry::DatabaseId>(i);
    const uint32_t bucket = rng.Next() % 100;
    telemetry::SubscriptionId sub;
    if (bucket < 20) {
      sub = rng.Next() % 32;  // mega subscriptions
    } else if (bucket < 70) {
      sub = 32 + rng.Next() % mid_subs;  // ~25 siblings each
    } else {
      sub = 32 + mid_subs + rng.Next() % (num_dbs / 2 + 1);  // long tail
    }
    const double create_day =
        static_cast<double>(rng.Next() % 120) +
        static_cast<double>(rng.Next() % 24) / 24.0;
    const bool censored = rng.Next() % 3 != 0;
    const double drop_day =
        censored ? -1.0
                 : create_day + 0.1 * static_cast<double>(rng.Next() % 300);

    telemetry::DatabaseCreatedPayload payload;
    payload.server_id = sub;
    payload.server_name = "srv" + std::to_string(i % 197);
    payload.database_name =
        (rng.Next() % 2 == 0 ? "app-db-" : "ci-") + std::to_string(rng.Next());
    payload.slo_index = static_cast<int>(rng.Next() % 4);
    payload.subscription_type =
        static_cast<telemetry::SubscriptionType>(rng.Next() % 6);
    check(store.Append(telemetry::MakeCreatedEvent(day_ts(create_day), id,
                                                   sub, std::move(payload))));
    if (drop_day >= 0.0) {
      check(store.Append(
          telemetry::MakeDroppedEvent(day_ts(drop_day), id, sub)));
    }
    // Telemetry inside the observation window for roughly half the
    // fleet (and strictly before the drop), so the size/SLO kernels do
    // real work.
    const double lifetime_end = drop_day >= 0.0 ? drop_day : 1e9;
    if (rng.Next() % 2 == 0) {
      const size_t samples = 1 + rng.Next() % 3;
      for (size_t s = 0; s < samples; ++s) {
        const double at = create_day + 0.3 + 0.5 * static_cast<double>(s);
        if (at >= lifetime_end) break;
        check(store.Append(telemetry::MakeSizeSampleEvent(
            day_ts(at), id, sub,
            static_cast<double>(1 + rng.Next() % 500))));
      }
    }
    if (rng.Next() % 8 == 0 && create_day + 1.0 < lifetime_end) {
      const int old_slo = static_cast<int>(rng.Next() % 4);
      check(store.Append(telemetry::MakeSloChangedEvent(
          day_ts(create_day + 1.0), id, sub, old_slo,
          static_cast<int>(rng.Next() % 4))));
    }
    // Survived the 2-day window -> extraction target (margin avoids
    // second-truncation ambiguity at the exact boundary).
    if (censored || drop_day - create_day >= 2.01) cohort.push_back(id);
  }
  check(store.Finalize());
  return SyntheticStore{std::move(store), std::move(cohort)};
}

}  // namespace

int main() {
  const size_t num_dbs = EnvSize("CLOUDSURV_BENCH_DBS", 100000);
  const size_t iterations = EnvSize("CLOUDSURV_BENCH_ITERS", 3);

  std::fprintf(stderr, "building synthetic store (%zu databases)...\n",
               num_dbs);
  SyntheticStore synth = BuildSyntheticStore(num_dbs);
  const auto& store = synth.store;
  const auto& cohort = synth.cohort;

  features::FeatureConfig config;
  auto plan = features::FeaturePlan::Compile(config);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  const size_t width = plan->num_features();
  const size_t rows = cohort.size();

  // Scalar reference: the exact per-row loop BuildDataset used to run.
  std::vector<double> scalar_matrix(rows * width);
  double scalar_ms = 0.0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < rows; ++i) {
      auto record = store.FindDatabase(cohort[i]);
      if (!record.ok()) {
        std::fprintf(stderr, "%s\n", record.status().ToString().c_str());
        return 1;
      }
      auto row = features::ExtractFeatures(store, *record, config);
      if (!row.ok()) {
        std::fprintf(stderr, "%s\n", row.status().ToString().c_str());
        return 1;
      }
      std::memcpy(scalar_matrix.data() + i * width, row->data(),
                  width * sizeof(double));
    }
    const double ms = MsSince(t0);
    if (iter == 0 || ms < scalar_ms) scalar_ms = ms;
  }

  struct Run {
    const char* mode;
    int threads;
    double ms = 0.0;
  };
  std::vector<Run> runs = {{"scalar", 1, scalar_ms},
                           {"batch", 1},
                           {"batch", 4}};
  std::vector<double> batch_matrix(rows * width);
  bool bit_identical = true;
  for (size_t r = 1; r < runs.size(); ++r) {
    std::optional<ThreadPool> pool;
    if (runs[r].threads > 1) {
      pool.emplace(static_cast<size_t>(runs[r].threads), 64);
    }
    for (size_t iter = 0; iter < iterations; ++iter) {
      std::fill(batch_matrix.begin(), batch_matrix.end(), 0.0);
      const auto t0 = std::chrono::steady_clock::now();
      Status status = plan->ExtractBatch(store, cohort, batch_matrix.data(),
                                         pool ? &*pool : nullptr);
      const double ms = MsSince(t0);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
      if (iter == 0 || ms < runs[r].ms) runs[r].ms = ms;
      if (std::memcmp(batch_matrix.data(), scalar_matrix.data(),
                      rows * width * sizeof(double)) != 0) {
        bit_identical = false;
      }
    }
  }
  if (!bit_identical) {
    std::fprintf(stderr,
                 "FATAL: batch extraction diverged from the scalar "
                 "reference\n");
    return 1;
  }

  double best_batch_speedup = 0.0;
  std::printf("{\n");
  std::printf("  \"bench\": \"feature_extraction\",\n");
  std::printf("  \"num_databases\": %zu, \"cohort_rows\": %zu, "
              "\"width\": %zu, \"iterations\": %zu,\n",
              num_dbs, rows, width, iterations);
  std::printf("  \"bit_identical\": %s,\n", bit_identical ? "true" : "false");
  std::printf("  \"runs\": [\n");
  for (size_t r = 0; r < runs.size(); ++r) {
    const double rows_per_sec =
        static_cast<double>(rows) / (runs[r].ms / 1e3);
    const double speedup = scalar_ms / runs[r].ms;
    if (r > 0 && speedup > best_batch_speedup) best_batch_speedup = speedup;
    std::printf("    {\"mode\": \"%s\", \"threads\": %d, \"ms\": %.3f, "
                "\"rows_per_sec\": %.0f, \"speedup_vs_scalar\": %.3f}%s\n",
                runs[r].mode, runs[r].threads, runs[r].ms, rows_per_sec,
                speedup, r + 1 < runs.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"best_batch_speedup\": %.3f\n", best_batch_speedup);
  std::printf("}\n");
  bench::EmitRegistrySnapshot();
  return 0;
}
