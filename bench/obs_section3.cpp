// Reproduces the Section 3.3 observations:
//   Observation 3.1 - a low percentage of subscriptions create only
//     ephemeral databases, yet those databases are a significant share
//     of the population; a large share of subscriptions mix ephemeral
//     with longer-lived databases.
//   Observation 3.2 - the survival function differs per edition.
//   Observation 3.3 - proportionally fewer Basic/Standard databases
//     change edition than Premium ones.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "core/report.h"
#include "survival/kaplan_meier.h"
#include "survival/logrank.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Section 3.3 observations, Regions 1-3");
  auto stores = bench::SimulateStudyRegions();

  std::printf("Observation 3.1 - ephemeral-only subscriptions\n");
  std::printf("%-10s %14s %16s %14s %12s\n", "region", "subscriptions",
              "ephemeral-only", "eph-db-share", "mixed-subs");
  for (const auto& store : stores) {
    const auto stats = core::ComputeSubscriptionUsageStats(store);
    std::printf("%-10s %14zu %15.1f%% %13.1f%% %12zu\n",
                store.region_name().c_str(), stats.num_subscriptions,
                stats.ephemeral_only_subscription_fraction() * 100.0,
                stats.ephemeral_database_fraction() * 100.0,
                stats.num_mixed);
  }

  std::printf("\nObservation 3.2 - per-edition survival at day 30/60\n");
  std::printf("%-10s %-9s %8s %8s %8s\n", "region", "edition", "n",
              "S(30)", "S(60)");
  for (const auto& store : stores) {
    for (telemetry::Edition edition : bench::StudyEditions()) {
      core::CohortFilter filter;
      filter.edition = edition;
      auto data = core::CohortSurvivalData(store, filter);
      if (!data.ok() || data->empty()) continue;
      auto km = survival::KaplanMeierCurve::Fit(*data);
      if (!km.ok()) continue;
      std::printf("%-10s %-9s %8zu %8.3f %8.3f\n",
                  store.region_name().c_str(),
                  telemetry::EditionToString(edition), data->size(),
                  km->SurvivalAt(30), km->SurvivalAt(60));
    }
  }

  // Pooled Basic-vs-Premium comparison, stratified by region so
  // between-region differences cannot masquerade as an edition effect.
  {
    std::vector<std::pair<survival::SurvivalData, survival::SurvivalData>>
        strata;
    for (const auto& store : stores) {
      core::CohortFilter basic_filter, premium_filter;
      basic_filter.edition = telemetry::Edition::kBasic;
      premium_filter.edition = telemetry::Edition::kPremium;
      auto basic = core::CohortSurvivalData(store, basic_filter);
      auto premium = core::CohortSurvivalData(store, premium_filter);
      if (basic.ok() && premium.ok()) {
        strata.emplace_back(*basic, *premium);
      }
    }
    auto stratified = survival::StratifiedLogRankTest(strata);
    if (stratified.ok()) {
      std::printf("\nBasic vs Premium, stratified by region: chi2=%.1f "
                  "p %s (Observation 3.2, all regions pooled)\n",
                  stratified->statistic,
                  core::FormatPValue(stratified->p_value).c_str());
    }
  }

  std::printf("\nObservation 3.3 - edition-change rates (2-day-min cohort)\n");
  std::printf("%-10s %-9s %10s %10s %8s\n", "region", "edition", "total",
              "changed", "rate");
  for (const auto& store : stores) {
    for (telemetry::Edition edition : bench::StudyEditions()) {
      core::CohortFilter filter;
      filter.edition = edition;
      const auto total = core::SelectCohort(store, filter);
      filter.changed_edition = true;
      const auto changed = core::SelectCohort(store, filter);
      std::printf("%-10s %-9s %10zu %10zu %7.1f%%\n",
                  store.region_name().c_str(),
                  telemetry::EditionToString(edition), total.size(),
                  changed.size(),
                  total.empty() ? 0.0
                                : 100.0 * static_cast<double>(changed.size()) /
                                      static_cast<double>(total.size()));
    }
  }
  return 0;
}
