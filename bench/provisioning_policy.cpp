// What-if replay of Section 3.1's longevity-guided resource
// provisioning, in two parts:
//
//  1. the pool-level interference replay (disruptions, wasted moves,
//     lifecycle/SLO contention) comparing no partitioning, the
//     classified plan, and a true-lifespan oracle — human-readable,
//     printed to stderr;
//  2. the architecture-catalog deployment replay: the naive /
//     longevity / oracle placement policies priced against the
//     built-in four-tier catalog (docs/provisioning.md), emitted as
//     JSON on stdout and gated in CI by tools/bench_check.py against
//     bench/baselines/provisioning_policy.json.
//
// The replay is deterministic in CLOUDSURV_SUBS, so the JSON document
// (costs included) is reproducible run to run.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/placement.h"
#include "core/provisioning.h"
#include "core/service.h"

using namespace cloudsurv;

int main() {
  std::fprintf(stderr,
               "Section 3.1: longevity-guided provisioning, what-if "
               "replay (policy x architecture)\n");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  // Deployable service trained on Region-2 so the planned region is
  // out-of-sample, then one batch assessment over every database —
  // the same path the `cloudsurv plan` verb takes.
  core::LongevityService::Options options;
  options.forest_params.num_trees = 60;
  options.forest_params.max_depth = 12;
  auto service = core::LongevityService::Train(stores[1], options);
  if (!service.ok()) {
    std::fprintf(stderr, "service training failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  std::vector<telemetry::DatabaseId> ids;
  ids.reserve(store.databases().size());
  for (const auto& record : store.databases()) ids.push_back(record.id);
  auto assessments = service->AssessMany(store, ids, {});
  if (!assessments.ok()) {
    std::fprintf(stderr, "assessment failed: %s\n",
                 assessments.status().ToString().c_str());
    return 1;
  }
  std::vector<core::PredictionOutcome> outcomes;
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto& assessment = (*assessments)[i];
    if (!assessment.has_value()) continue;
    const auto record = store.databases()[i];
    const double life = record.ObservedLifespanDays(store.window_end());
    core::PredictionOutcome outcome;
    outcome.id = record.id;
    outcome.predicted_label = assessment->predicted_label;
    outcome.positive_probability = assessment->positive_probability;
    outcome.confident = assessment->confident;
    outcome.duration_days = life;
    outcome.observed = record.dropped_at.has_value() &&
                       *record.dropped_at <= store.window_end();
    outcome.true_label = life > 30.0 ? 1 : 0;
    outcomes.push_back(outcome);
  }

  // Part 1: the pool-level interference replay (stderr).
  const core::PoolAssignmentPlan classified_plan =
      core::PlanFromPredictions(outcomes);
  core::PoolAssignmentPlan oracle_pool_plan;
  for (const auto& record : store.databases()) {
    const double life = record.ObservedLifespanDays(store.window_end());
    if (record.dropped_at.has_value() && life <= 30.0) {
      oracle_pool_plan.pools[record.id] = core::Pool::kChurn;
    } else if (life > 30.0) {
      oracle_pool_plan.pools[record.id] = core::Pool::kStable;
    }
  }
  core::ProvisioningPolicyConfig pool_policy;
  auto baseline = core::SimulateProvisioning(store, {}, pool_policy);
  auto classified =
      core::SimulateProvisioning(store, classified_plan, pool_policy);
  auto oracle = core::SimulateProvisioning(store, oracle_pool_plan,
                                           pool_policy);
  if (!baseline.ok() || !classified.ok() || !oracle.ok()) {
    std::fprintf(stderr, "pool replay failed\n");
    return 1;
  }
  std::fprintf(stderr, "%-22s %12s %12s %12s\n", "metric", "baseline",
               "classified", "oracle");
  auto row = [&](const char* name, auto get) {
    std::fprintf(stderr, "%-22s %12.0f %12.0f %12.0f\n", name,
                 static_cast<double>(get(*baseline)),
                 static_cast<double>(get(*classified)),
                 static_cast<double>(get(*oracle)));
  };
  row("disruptions", [](const auto& r) { return r.disruptions; });
  row("avoided disruptions",
      [](const auto& r) { return r.avoided_disruptions; });
  row("forced updates", [](const auto& r) { return r.forced_updates; });
  row("lb moves", [](const auto& r) { return r.moves; });
  row("wasted lb moves", [](const auto& r) { return r.wasted_moves; });
  row("contention score", [](const auto& r) { return r.contention_score; });

  // Part 2: the architecture-catalog deployment replay (JSON, stdout).
  const core::ArchitectureCatalog catalog =
      core::ArchitectureCatalog::Default();
  const core::DeploymentConfig deploy;  // 14-day rollouts, 45-day grace.
  struct PolicyRun {
    std::string policy;
    core::DeploymentReport report;
  };
  std::vector<PolicyRun> runs;
  for (const char* name : {"naive", "longevity", "oracle"}) {
    auto policy = core::MakePlacementPolicy(name);
    auto plan = policy->Assign(store, outcomes, catalog);
    if (!plan.ok()) {
      std::fprintf(stderr, "policy %s failed: %s\n", name,
                   plan.status().ToString().c_str());
      return 1;
    }
    auto report = core::SimulateDeployment(store, *plan, catalog, deploy);
    if (!report.ok()) {
      std::fprintf(stderr, "deployment replay (%s) failed: %s\n", name,
                   report.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "%-10s total=$%-11.2f infra=$%-11.2f ops=$%-9.2f "
                 "sla=%-5zu frag=%.3f\n",
                 name, report->total_cost, report->infra_cost,
                 report->ops_cost, report->sla_violations,
                 report->mean_fragmentation);
    runs.push_back({name, std::move(*report)});
  }

  const core::DeploymentReport& naive = runs[0].report;
  const core::DeploymentReport& longevity = runs[1].report;
  std::printf("{\n");
  std::printf("  \"bench\": \"provisioning_policy\",\n");
  std::printf("  \"subs\": %zu, \"databases\": %zu,\n",
              bench::RegionSubscriptions(), store.num_databases());
  std::printf("  \"maintenance_interval_days\": %.1f, \"grace_days\": "
              "%.1f,\n",
              deploy.maintenance_interval_days, deploy.stale_grace_days);
  std::printf("  \"catalog\": [");
  for (size_t a = 0; a < catalog.size(); ++a) {
    std::printf("%s\"%s\"", a > 0 ? ", " : "", catalog.at(a).name().c_str());
  }
  std::printf("],\n");
  std::printf("  \"policies\": [\n");
  for (size_t r = 0; r < runs.size(); ++r) {
    std::printf("    {\"policy\": \"%s\", \"report\": %s}%s\n",
                runs[r].policy.c_str(), runs[r].report.ToJson().c_str(),
                r + 1 < runs.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"ratios\": {\"naive_vs_longevity_cost\": %.4f, "
              "\"naive_vs_longevity_ops\": %.4f, "
              "\"naive_vs_longevity_sla\": %.4f}\n",
              longevity.total_cost > 0.0
                  ? naive.total_cost / longevity.total_cost
                  : 0.0,
              longevity.ops_cost > 0.0
                  ? naive.ops_cost / longevity.ops_cost
                  : 0.0,
              longevity.sla_violations > 0
                  ? static_cast<double>(naive.sla_violations) /
                        static_cast<double>(longevity.sla_violations)
                  : 0.0);
  std::printf("}\n");
  bench::EmitRegistrySnapshot();
  return 0;
}
