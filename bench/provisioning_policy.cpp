// What-if replay of Section 3.1's longevity-guided resource
// provisioning: place confidently-classified databases into churn /
// stable pools and replay the window, comparing operational costs
// against (a) no partitioning and (b) an oracle that knows true
// lifespans — the upper bound on what classification can buy.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/provisioning.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Section 3.1: longevity-guided provisioning, what-if replay");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  // Classifier-derived plan: pool assignments from confident test-set
  // predictions across all three edition subgroups.
  core::PoolAssignmentPlan classified_plan;
  for (telemetry::Edition edition : bench::StudyEditions()) {
    auto result = core::RunPredictionExperiment(
        store, edition, bench::PaperExperimentConfig(false));
    if (!result.ok()) continue;
    const auto plan = core::PlanFromPredictions(result->runs.front().outcomes);
    classified_plan.pools.insert(plan.pools.begin(), plan.pools.end());
  }

  // Oracle plan from true outcomes.
  core::PoolAssignmentPlan oracle_plan;
  for (const auto& record : store.databases()) {
    const double life = record.ObservedLifespanDays(store.window_end());
    if (record.dropped_at.has_value() && life <= 30.0) {
      oracle_plan.pools[record.id] = core::Pool::kChurn;
    } else if (life > 30.0) {
      oracle_plan.pools[record.id] = core::Pool::kStable;
    }
  }

  core::ProvisioningPolicyConfig policy;
  auto baseline = core::SimulateProvisioning(store, {}, policy);
  auto classified = core::SimulateProvisioning(store, classified_plan,
                                               policy);
  auto oracle = core::SimulateProvisioning(store, oracle_plan, policy);
  if (!baseline.ok() || !classified.ok() || !oracle.ok()) {
    std::fprintf(stderr, "replay failed\n");
    return 1;
  }

  std::printf("%-22s %12s %12s %12s\n", "metric", "baseline",
              "classified", "oracle");
  auto row = [&](const char* name, auto get) {
    std::printf("%-22s %12.0f %12.0f %12.0f\n", name,
                static_cast<double>(get(*baseline)),
                static_cast<double>(get(*classified)),
                static_cast<double>(get(*oracle)));
  };
  row("disruptions", [](const auto& r) { return r.disruptions; });
  row("avoided disruptions",
      [](const auto& r) { return r.avoided_disruptions; });
  row("forced updates", [](const auto& r) { return r.forced_updates; });
  row("lb moves", [](const auto& r) { return r.moves; });
  row("wasted lb moves", [](const auto& r) { return r.wasted_moves; });
  row("contention score", [](const auto& r) { return r.contention_score; });

  std::printf("\nplan sizes: classified=%zu databases placed, oracle=%zu "
              "(of %zu total)\n",
              classified_plan.pools.size(), oracle_plan.pools.size(),
              store.num_databases());
  std::printf("(the classified plan only places the ~20%% of databases "
              "that appear in a test split AND are confidently "
              "classified; production use would classify every database "
              "at day 2.)\n");
  return 0;
}
