// Reproduces Figure 5: whole-population accuracy / precision / recall
// of the tuned random forest vs. the weighted-random baseline, for the
// nine (region x edition) subgroups. Protocol per the paper
// (section 5.1): 80/20 split, grid search with 5-fold CV over the
// training set, 5 repetitions averaged.
//
// Paper shapes: forest accuracy ~0.80 everywhere vs baseline ~0.5;
// Basic recall highest (~0.9), Premium recall lowest (small, imbalanced
// population).

#include <cstdio>

#include "bench/bench_util.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Figure 5: whole-population scores, random forest vs baseline");
  auto stores = bench::SimulateStudyRegions();
  auto results = bench::RunAllSubgroups(stores, /*tune=*/true);

  std::printf("%-10s %-9s %6s %6s | %-24s | %-24s\n", "region", "edition",
              "n", "pos%", "random forest (acc/prec/rec)",
              "baseline (acc/prec/rec)");
  for (const auto& r : results) {
    std::printf("%-10s %-9s %6zu %5.0f%% |   %.2f / %.2f / %.2f       |"
                "   %.2f / %.2f / %.2f\n",
                r.region_name.c_str(), r.subgroup_name.c_str(),
                r.cohort_size, r.positive_rate * 100.0,
                r.forest_avg.accuracy, r.forest_avg.precision,
                r.forest_avg.recall, r.baseline_avg.accuracy,
                r.baseline_avg.precision, r.baseline_avg.recall);
  }

  // Per-edition averages, the way the paper summarizes section 5.2.
  std::printf("\nper-edition averages over regions:\n");
  for (size_t e = 0; e < 3; ++e) {
    std::vector<ml::ClassificationScores> forest, baseline;
    for (size_t i = e; i < results.size(); i += 3) {
      forest.push_back(results[i].forest_avg);
      baseline.push_back(results[i].baseline_avg);
    }
    const auto f = ml::AverageScores(forest);
    const auto b = ml::AverageScores(baseline);
    std::printf("  %-9s forest acc=%.2f prec=%.2f rec=%.2f | baseline "
                "acc=%.2f prec=%.2f rec=%.2f\n",
                results[e].subgroup_name.c_str(), f.accuracy, f.precision,
                f.recall, b.accuracy, b.precision, b.recall);
  }

  std::printf("\ntuned hyper-parameters per subgroup:\n");
  for (const auto& r : results) {
    std::printf("  %-10s %-9s %s (cv acc %.3f)\n", r.region_name.c_str(),
                r.subgroup_name.c_str(), r.tuned_params.ToString().c_str(),
                r.tuning_cv_score);
  }
  return 0;
}
