// Reproduces Figure 2 / Figure 6: KM curves of the test-set databases
// split by predicted class (short-lived vs long-lived) for the nine
// subgroups, with log-rank significance. Paper shapes: the two curves
// diverge strongly (p < 1e-7 everywhere for the forest); the baseline's
// split is not significant (p > 0.05).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/report.h"
#include "survival/kaplan_meier.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Figures 2 & 6: KM curves of classified groupings + log-rank");
  auto stores = bench::SimulateStudyRegions();
  auto results = bench::RunAllSubgroups(stores, /*tune=*/false);

  std::printf("%-10s %-9s %18s %18s\n", "region", "edition",
              "forest log-rank p", "baseline log-rank p");
  for (const auto& r : results) {
    const auto& run = r.runs.front();
    auto forest_p = core::LogRankOfClassifiedGroups(
        run.outcomes, core::PredictionBucket::kAll);
    auto baseline_p =
        core::LogRankOfBaselineGroups(run.outcomes,
                                      run.baseline_predictions);
    std::printf("%-10s %-9s %18s %18s\n", r.region_name.c_str(),
                r.subgroup_name.c_str(),
                forest_p.ok()
                    ? core::FormatPValue(forest_p->p_value).c_str()
                    : "n/a",
                baseline_p.ok()
                    ? core::FormatPValue(baseline_p->p_value).c_str()
                    : "n/a");
  }

  // Detailed curves for one representative panel per edition
  // (Region-1), like the columns of Figure 6. The ideal outcome: the
  // "pred-short" curve reaches zero by day 30, the "pred-long" curve
  // stays at 1.0 until day 31 (the dots of Figure 2).
  for (size_t e = 0; e < 3; ++e) {
    const auto& r = results[e];
    const auto groups = core::SplitOutcomesByPrediction(
        r.runs.front().outcomes, core::PredictionBucket::kAll);
    auto short_data = survival::SurvivalData::Make(groups.predicted_short);
    auto long_data = survival::SurvivalData::Make(groups.predicted_long);
    if (!short_data.ok() || !long_data.ok()) continue;
    auto km_short = survival::KaplanMeierCurve::Fit(*short_data);
    auto km_long = survival::KaplanMeierCurve::Fit(*long_data);
    if (!km_short.ok() || !km_long.ok()) continue;
    std::printf("\n---- %s / %s (n_short=%zu n_long=%zu) ----\n",
                r.region_name.c_str(), r.subgroup_name.c_str(),
                short_data->size(), long_data->size());
    std::printf("%s", core::KmCurveSeriesMulti(
                          {{"pred-short", *km_short},
                           {"pred-long", *km_long}},
                          120, 10)
                          .c_str());
    std::printf("pred-short S(30)=%.3f (ideal 0)   pred-long S(30)=%.3f "
                "(ideal 1)\n",
                km_short->SurvivalAt(30.0), km_long->SurvivalAt(30.0));
  }
  return 0;
}
