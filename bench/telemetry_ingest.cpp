// Telemetry ingest benchmark: streaming-generated events appended into
// the columnar TelemetryStore, against an in-bench emulation of the
// struct-of-vectors layout the store replaced.
//
// The streaming generator (RegionEventStream) produces each region's
// event log in time order, one partition per pull; the columnar run
// appends every partition through Reserve() + AppendEvents() — the
// exact path serve-sim and SimulateRegion use — then Finalize()s.
// The struct run replays the identical events into an owned-string
// AoS log plus per-database record structs, matching the pre-columnar
// store's memory shape (std::string names per record, per-record
// change/sample vectors, hash-map indexes).
//
// Emits one JSON document on stdout, gated in CI by
// tools/bench_check.py against bench/baselines/telemetry_ingest.json:
//   - columnar-vs-struct ingest events/sec ratio (machine-portable);
//   - bytes/database ceiling for the columnar store (accounting is
//     deterministic, so the ceiling transfers between machines);
//   - struct/columnar bytes ratio >= 3 (the capacity-model claim in
//     docs/telemetry.md);
//   - column_reallocs == 0 (Reserve() pre-sizes the arena).
//
// Scale: CLOUDSURV_SUBS subscriptions per region (default 1500),
// CLOUDSURV_BENCH_ITERS timing repetitions (default 3).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "simulator/region.h"
#include "simulator/stream.h"
#include "telemetry/events.h"
#include "telemetry/store.h"

using namespace cloudsurv;
using telemetry::Event;
using telemetry::EventKind;

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

size_t Iterations() {
  const char* env = std::getenv("CLOUDSURV_BENCH_ITERS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 3;
}

// The pre-columnar store's in-memory shape, reproduced for an honest
// bytes/database comparison: an AoS event log with owned payload
// strings, one record struct per database with its own name strings
// and change/sample vectors, and hash-map indexes.
struct StructRecord {
  telemetry::DatabaseId id = telemetry::kInvalidId;
  telemetry::SubscriptionId subscription_id = telemetry::kInvalidId;
  telemetry::ServerId server_id = telemetry::kInvalidId;
  std::string server_name;
  std::string database_name;
  telemetry::SubscriptionType subscription_type =
      telemetry::SubscriptionType::kPayAsYouGo;
  telemetry::Timestamp created_at = 0;
  telemetry::Timestamp dropped_at = 0;
  bool dropped = false;
  int initial_slo_index = 0;
  struct Change {
    telemetry::Timestamp at;
    int old_slo;
    int new_slo;
  };
  struct Sample {
    telemetry::Timestamp at;
    double size_mb;
  };
  std::vector<Change> slo_changes;
  std::vector<Sample> size_samples;
};

struct StructStore {
  std::vector<Event> events;
  std::unordered_map<telemetry::DatabaseId, StructRecord> records;
  std::unordered_map<telemetry::SubscriptionId,
                     std::vector<telemetry::DatabaseId>>
      by_subscription;

  void Append(const Event& event) {
    switch (event.kind()) {
      case EventKind::kDatabaseCreated: {
        const auto& p =
            std::get<telemetry::DatabaseCreatedPayload>(event.payload);
        StructRecord& rec = records[event.database_id];
        rec.id = event.database_id;
        rec.subscription_id = event.subscription_id;
        rec.server_id = p.server_id;
        rec.server_name = p.server_name;
        rec.database_name = p.database_name;
        rec.subscription_type = p.subscription_type;
        rec.created_at = event.timestamp;
        rec.initial_slo_index = p.slo_index;
        by_subscription[event.subscription_id].push_back(
            event.database_id);
        break;
      }
      case EventKind::kSloChanged: {
        const auto& p =
            std::get<telemetry::SloChangedPayload>(event.payload);
        records[event.database_id].slo_changes.push_back(
            {event.timestamp, p.old_slo_index, p.new_slo_index});
        break;
      }
      case EventKind::kSizeSample: {
        const auto& p =
            std::get<telemetry::SizeSamplePayload>(event.payload);
        records[event.database_id].size_samples.push_back(
            {event.timestamp, p.size_mb});
        break;
      }
      case EventKind::kDatabaseDropped: {
        StructRecord& rec = records[event.database_id];
        rec.dropped = true;
        rec.dropped_at = event.timestamp;
        break;
      }
    }
    events.push_back(event);
  }

  // Accounted bytes, same discipline as TelemetryStore::memory():
  // container capacities plus owned heap payloads.
  size_t ApproxBytes() const {
    size_t bytes = events.capacity() * sizeof(Event);
    for (const Event& event : events) {
      if (event.kind() == EventKind::kDatabaseCreated) {
        const auto& p =
            std::get<telemetry::DatabaseCreatedPayload>(event.payload);
        bytes += p.server_name.capacity() + p.database_name.capacity();
      }
    }
    bytes += records.bucket_count() *
             (sizeof(void*) + sizeof(std::pair<const telemetry::DatabaseId,
                                               StructRecord>));
    for (const auto& [id, rec] : records) {
      bytes += rec.server_name.capacity() + rec.database_name.capacity();
      bytes += rec.slo_changes.capacity() * sizeof(StructRecord::Change);
      bytes += rec.size_samples.capacity() * sizeof(StructRecord::Sample);
    }
    bytes += by_subscription.bucket_count() *
             (sizeof(void*) +
              sizeof(std::pair<const telemetry::SubscriptionId,
                               std::vector<telemetry::DatabaseId>>));
    for (const auto& [sub, dbs] : by_subscription) {
      bytes += dbs.capacity() * sizeof(telemetry::DatabaseId);
    }
    return bytes;
  }
};

}  // namespace

int main() {
  const size_t subs = bench::RegionSubscriptions();
  const size_t iterations = Iterations();

  auto config = simulator::MakeRegionPreset(1, subs, 2017);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }

  // Timed columnar ingest: pull partitions from the streaming
  // generator and append each through the bulk path. The generator's
  // cost is excluded by pre-materializing the partitions once.
  auto probe = simulator::RegionEventStream::Open(*config);
  if (!probe.ok()) {
    std::fprintf(stderr, "%s\n", probe.status().ToString().c_str());
    return 1;
  }
  std::vector<simulator::RegionEventStream::Partition> partitions;
  while (!probe->Done()) partitions.push_back(probe->NextPartition());
  size_t total_events = 0;
  for (const auto& part : partitions) total_events += part.events.size();

  double best_columnar_ms = 0.0;
  telemetry::TelemetryStore::MemoryStats columnar_memory;
  size_t num_databases = 0;
  double finalize_ms = 0.0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    telemetry::TelemetryStore store(
        config->name, config->utc_offset_minutes, config->holidays,
        config->window_start, config->window_end);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& part : partitions) {
      std::vector<Event> batch(part.events);
      store.Reserve(batch.size());
      Status appended = store.AppendEvents(std::move(batch));
      if (!appended.ok()) {
        std::fprintf(stderr, "append failed: %s\n",
                     appended.ToString().c_str());
        return 1;
      }
    }
    const double ingest_ms = MsSince(t0);
    const auto t1 = std::chrono::steady_clock::now();
    Status finalized = store.Finalize();
    if (!finalized.ok()) {
      std::fprintf(stderr, "finalize failed: %s\n",
                   finalized.ToString().c_str());
      return 1;
    }
    if (iter == 0 || ingest_ms < best_columnar_ms) {
      best_columnar_ms = ingest_ms;
      finalize_ms = MsSince(t1);
    }
    columnar_memory = store.memory();
    num_databases = store.num_databases();
  }

  // Timed struct-layout ingest over the identical event sequence.
  double best_struct_ms = 0.0;
  size_t struct_bytes = 0;
  for (size_t iter = 0; iter < iterations; ++iter) {
    StructStore aos;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& part : partitions) {
      for (const Event& event : part.events) aos.Append(event);
    }
    const double ingest_ms = MsSince(t0);
    if (iter == 0 || ingest_ms < best_struct_ms) {
      best_struct_ms = ingest_ms;
    }
    struct_bytes = aos.ApproxBytes();
  }

  const double columnar_eps =
      static_cast<double>(total_events) / (best_columnar_ms / 1e3);
  const double struct_eps =
      static_cast<double>(total_events) / (best_struct_ms / 1e3);
  const double columnar_bpd =
      static_cast<double>(columnar_memory.total_bytes) /
      static_cast<double>(num_databases);
  const double struct_bpd = static_cast<double>(struct_bytes) /
                            static_cast<double>(num_databases);

  std::printf("{\n");
  std::printf("  \"bench\": \"telemetry_ingest\",\n");
  std::printf("  \"subs\": %zu, \"databases\": %zu, \"events\": %zu, "
              "\"iterations\": %zu,\n",
              subs, num_databases, total_events, iterations);
  std::printf(
      "  \"columnar\": {\"ingest_events_per_sec\": %.0f, "
      "\"ingest_ms\": %.3f, \"finalize_ms\": %.3f,\n"
      "    \"total_bytes\": %zu, \"event_bytes\": %zu, "
      "\"record_bytes\": %zu, \"string_pool_bytes\": %zu, "
      "\"index_bytes\": %zu,\n"
      "    \"segments\": %zu, \"column_reallocs\": %llu, "
      "\"bytes_per_database\": %.1f},\n",
      columnar_eps, best_columnar_ms, finalize_ms,
      columnar_memory.total_bytes, columnar_memory.event_bytes,
      columnar_memory.record_bytes, columnar_memory.string_pool_bytes,
      columnar_memory.index_bytes, columnar_memory.num_segments,
      static_cast<unsigned long long>(columnar_memory.column_reallocs),
      columnar_bpd);
  std::printf("  \"struct_baseline\": {\"ingest_events_per_sec\": %.0f, "
              "\"ingest_ms\": %.3f, \"total_bytes\": %zu, "
              "\"bytes_per_database\": %.1f},\n",
              struct_eps, best_struct_ms, struct_bytes, struct_bpd);
  std::printf("  \"ratios\": {\"columnar_vs_struct_ingest\": %.3f, "
              "\"struct_vs_columnar_bytes\": %.2f}\n",
              columnar_eps / struct_eps, struct_bpd / columnar_bpd);
  std::printf("}\n");
  bench::EmitRegistrySnapshot();
  return 0;
}
