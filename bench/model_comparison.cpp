// Model-choice study backing Section 6's discussion: "There are many
// different statistical and machine learning techniques to perform the
// analysis... The goal of our work was not to compare different
// approaches." This bench does the comparison the paper skipped:
// random forest vs gradient-boosted trees vs the weighted-random
// baseline on the paper's task, plus permutation importance as a
// cross-check on the gini ranking of Section 5.4.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "features/features.h"
#include "ml/cross_validation.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "ml/permutation_importance.h"
#include "ml/random_forest.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Model comparison: random forest vs GBDT vs baseline");
  auto stores = bench::SimulateStudyRegions();

  std::printf("%-10s %-9s | %-8s %-8s %-8s | %-8s %-8s\n", "region",
              "edition", "forest", "gbdt", "baseline", "f-auc", "g-auc");
  for (const auto& store : stores) {
    for (telemetry::Edition edition : bench::StudyEditions()) {
      auto cohort = core::BuildPredictionCohort(store, 2.0, 30.0, edition);
      if (!cohort.ok()) continue;
      features::FeatureConfig feature_config;
      auto dataset = features::BuildDataset(store, cohort->ids,
                                            cohort->labels, feature_config);
      if (!dataset.ok()) continue;
      auto split = ml::TrainTestSplit(*dataset, 0.2, 17);
      if (!split.ok()) continue;
      auto train = dataset->Subset(split->train);
      auto test = dataset->Subset(split->test);
      if (!train.ok() || !test.ok()) continue;

      ml::RandomForestClassifier forest;
      ml::ForestParams fp;
      fp.num_trees = 80;
      fp.max_depth = 14;
      if (!forest.Fit(*train, fp, 17).ok()) continue;

      ml::GradientBoostedTreesClassifier gbdt;
      ml::GbdtParams gp;
      gp.num_rounds = 150;
      gp.max_depth = 5;
      gp.subsample = 0.8;
      if (!gbdt.Fit(*train, gp, 17).ok()) continue;

      ml::WeightedRandomClassifier baseline;
      if (!baseline.Fit(*train).ok()) continue;

      auto f_pred = forest.PredictBatch(*test);
      auto g_pred = gbdt.PredictBatch(*test);
      auto b_pred = baseline.PredictBatch(*test, 17);
      auto f_prob = forest.PredictPositiveProba(*test);
      auto g_prob = gbdt.PredictPositiveProba(*test);
      if (!f_pred.ok() || !g_pred.ok() || !b_pred.ok() || !f_prob.ok() ||
          !g_prob.ok()) {
        continue;
      }
      const double f_acc =
          ml::ComputeScores(test->labels(), *f_pred)->accuracy;
      const double g_acc =
          ml::ComputeScores(test->labels(), *g_pred)->accuracy;
      const double b_acc =
          ml::ComputeScores(test->labels(), *b_pred)->accuracy;
      const double f_auc = ml::RocAuc(test->labels(), *f_prob).value_or(0.5);
      const double g_auc = ml::RocAuc(test->labels(), *g_prob).value_or(0.5);
      std::printf("%-10s %-9s | %8.3f %8.3f %8.3f | %8.3f %8.3f\n",
                  store.region_name().c_str(),
                  telemetry::EditionToString(edition), f_acc, g_acc, b_acc,
                  f_auc, g_auc);
    }
  }

  // Permutation importance of the top gini features on Region-1/Basic:
  // does the ranking survive a necessity-based measure?
  std::printf("\npermutation importance (Region-1 / Basic, forest, "
              "3 shuffles, top gini features):\n");
  {
    const auto& store = stores[0];
    auto cohort = core::BuildPredictionCohort(store, 2.0, 30.0,
                                              telemetry::Edition::kBasic);
    features::FeatureConfig feature_config;
    auto dataset = features::BuildDataset(store, cohort->ids,
                                          cohort->labels, feature_config);
    auto split = ml::TrainTestSplit(*dataset, 0.25, 5);
    auto train = dataset->Subset(split->train);
    auto test = dataset->Subset(split->test);
    ml::RandomForestClassifier forest;
    ml::ForestParams fp;
    fp.num_trees = 60;
    fp.max_depth = 12;
    if (forest.Fit(*train, fp, 5).ok()) {
      ml::ModelScorer scorer = [&](const ml::Dataset& d)
          -> Result<double> {
        CLOUDSURV_ASSIGN_OR_RETURN(std::vector<int> preds,
                                   forest.PredictBatch(d));
        CLOUDSURV_ASSIGN_OR_RETURN(ml::ClassificationScores scores,
                                   ml::ComputeScores(d.labels(), preds));
        return scores.accuracy;
      };
      auto perm = ml::ComputePermutationImportance(*test, scorer, 3, 5);
      if (perm.ok()) {
        // Rank by permutation drop; print top 10.
        std::vector<std::pair<double, std::string>> ranked;
        for (size_t f = 0; f < dataset->num_features(); ++f) {
          ranked.emplace_back(perm->importances[f],
                              dataset->feature_names()[f]);
        }
        std::sort(ranked.rbegin(), ranked.rend());
        std::printf("  baseline accuracy %.3f\n", perm->baseline_score);
        for (size_t i = 0; i < 10 && i < ranked.size(); ++i) {
          std::printf("  %2zu. %-28s drop=%.4f\n", i + 1,
                      ranked[i].second.c_str(), ranked[i].first);
        }
        std::printf("  (correlated features share gini credit but show "
                    "small permutation drops individually — the "
                    "redundancy noted in EXPERIMENTS.md.)\n");
      }
    }
  }
  return 0;
}
