// Ablation: forest capacity. Sweeps the number of trees and the
// per-node feature-subsampling rule and reports test accuracy and OOB
// accuracy on Region-1 / Basic — the design choices behind the paper's
// model pick (random forests: accurate, fast, robust to feature count).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "features/features.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Ablation: forest size and feature subsampling");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  auto cohort = core::BuildPredictionCohort(store, 2.0, 30.0,
                                            telemetry::Edition::kBasic);
  if (!cohort.ok()) return 1;
  features::FeatureConfig feature_config;
  auto dataset = features::BuildDataset(store, cohort->ids, cohort->labels,
                                        feature_config);
  if (!dataset.ok()) return 1;
  auto split = ml::TrainTestSplit(*dataset, 0.2, 7);
  if (!split.ok()) return 1;
  auto train = dataset->Subset(split->train);
  auto test = dataset->Subset(split->test);
  if (!train.ok() || !test.ok()) return 1;
  std::printf("Region-1 / Basic: %zu train rows, %zu test rows, %zu "
              "features\n\n",
              train->num_rows(), test->num_rows(),
              dataset->num_features());

  std::printf("tree-count sweep (depth 14, sqrt features):\n");
  std::printf("  %6s %10s %10s\n", "trees", "test-acc", "oob-acc");
  for (int trees : {1, 5, 20, 60, 150, 300}) {
    ml::ForestParams params;
    params.num_trees = trees;
    params.max_depth = 14;
    ml::RandomForestClassifier forest;
    if (!forest.Fit(*train, params, 7).ok()) continue;
    auto preds = forest.PredictBatch(*test);
    if (!preds.ok()) continue;
    auto scores = ml::ComputeScores(test->labels(), *preds);
    if (!scores.ok()) continue;
    std::printf("  %6d %10.3f %10.3f\n", trees, scores->accuracy,
                forest.oob_accuracy());
  }

  std::printf("\nfeature-subsampling sweep (80 trees, depth 14):\n");
  std::printf("  %6s %10s %10s\n", "rule", "test-acc", "oob-acc");
  const std::pair<const char*, ml::MaxFeaturesRule> kRules[] = {
      {"sqrt", ml::MaxFeaturesRule::kSqrt},
      {"log2", ml::MaxFeaturesRule::kLog2},
      {"all", ml::MaxFeaturesRule::kAll},
  };
  for (const auto& [name, rule] : kRules) {
    ml::ForestParams params;
    params.num_trees = 80;
    params.max_depth = 14;
    params.max_features = rule;
    ml::RandomForestClassifier forest;
    if (!forest.Fit(*train, params, 7).ok()) continue;
    auto preds = forest.PredictBatch(*test);
    if (!preds.ok()) continue;
    auto scores = ml::ComputeScores(test->labels(), *preds);
    if (!scores.ok()) continue;
    std::printf("  %6s %10.3f %10.3f\n", name, scores->accuracy,
                forest.oob_accuracy());
  }

  // Class-weight ablation on the imbalanced Premium subgroup: the
  // paper attributes Premium's low recall to class imbalance
  // (section 5.2); balanced weights are the standard remedy.
  {
    auto premium = core::BuildPredictionCohort(store, 2.0, 30.0,
                                               telemetry::Edition::kPremium);
    if (premium.ok()) {
      auto pd = features::BuildDataset(store, premium->ids,
                                       premium->labels, feature_config);
      auto psplit = pd.ok() ? ml::TrainTestSplit(*pd, 0.2, 7)
                            : Result<ml::TrainTestIndices>(pd.status());
      if (pd.ok() && psplit.ok()) {
        auto ptrain = pd->Subset(psplit->train);
        auto ptest = pd->Subset(psplit->test);
        const double q = ptrain->ClassFraction(1);
        std::printf("\nclass-weight ablation (Premium, q=%.2f):\n", q);
        std::printf("  %-10s %10s %10s %10s\n", "weights", "acc", "prec",
                    "recall");
        for (bool balanced : {false, true}) {
          ml::ForestParams params;
          params.num_trees = 80;
          params.max_depth = 14;
          if (balanced) {
            params.class_weights = {1.0 / (1.0 - q), 1.0 / q};
          }
          ml::RandomForestClassifier forest;
          if (!forest.Fit(*ptrain, params, 7).ok()) continue;
          auto preds = forest.PredictBatch(*ptest);
          if (!preds.ok()) continue;
          auto scores = ml::ComputeScores(ptest->labels(), *preds);
          if (!scores.ok()) continue;
          std::printf("  %-10s %10.3f %10.3f %10.3f\n",
                      balanced ? "balanced" : "uniform", scores->accuracy,
                      scores->precision, scores->recall);
        }
      }
    }
  }

  std::printf("\ndepth sweep (80 trees, sqrt features):\n");
  std::printf("  %6s %10s %10s\n", "depth", "test-acc", "oob-acc");
  for (int depth : {2, 4, 8, 14, 20}) {
    ml::ForestParams params;
    params.num_trees = 80;
    params.max_depth = depth;
    ml::RandomForestClassifier forest;
    if (!forest.Fit(*train, params, 7).ok()) continue;
    auto preds = forest.PredictBatch(*test);
    if (!preds.ok()) continue;
    auto scores = ml::ComputeScores(test->labels(), *preds);
    if (!scores.ok()) continue;
    std::printf("  %6d %10.3f %10.3f\n", depth, scores->accuracy,
                forest.oob_accuracy());
  }
  return 0;
}
