// Extension: classification at birth. The paper predicts at x = 2 days;
// a provisioning controller would love a signal at creation time (x = 0)
// — before any size/SLO telemetry exists — using only the creation
// timestamp, names, subscription type and subscription history. This
// bench trains a three-class forest (ephemeral / short-lived /
// long-lived, the section 3.3 taxonomy) at birth and reports the
// confusion structure, plus the binary task at x=0 for comparison with
// Figure 5's x=2 numbers.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "features/features.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader("Extension: lifespan classification at creation time");
  auto stores = bench::SimulateStudyRegions();
  const auto& store = stores[0];

  // Three-class cohort: every database with a known lifespan class.
  std::vector<telemetry::DatabaseId> ids;
  std::vector<int> labels;
  size_t unknown = 0;
  for (const auto& record : store.databases()) {
    const core::LifespanClass cls =
        core::ClassifyLifespan(record, store.window_end());
    if (cls == core::LifespanClass::kUnknown) {
      ++unknown;
      continue;
    }
    // Features are extracted one second after creation; skip the
    // handful of databases dropped within that same second.
    if (record.dropped_at.has_value() &&
        *record.dropped_at <= record.created_at + 1) {
      continue;
    }
    ids.push_back(record.id);
    labels.push_back(static_cast<int>(cls));
  }

  // Features visible one second after creation: calendar, names,
  // subscription type and history. (Size/SLO features evaluate to
  // zeros/creation values at x=0 and are omitted.)
  features::FeatureConfig feature_config;
  feature_config.observation_days = 1.0 / 86400.0;
  feature_config.include_size = false;
  feature_config.include_slo = false;

  auto dataset =
      features::BuildDataset(store, ids, labels, feature_config, 3);
  if (!dataset.ok()) {
    std::fprintf(stderr, "%s\n", dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("cohort: %zu databases (%zu unknown excluded), %zu "
              "birth-visible features\n",
              ids.size(), unknown, dataset->num_features());
  const auto counts = dataset->ClassCounts();
  std::printf("class mix: ephemeral=%zu short=%zu long=%zu\n\n", counts[0],
              counts[1], counts[2]);

  auto split = ml::TrainTestSplit(*dataset, 0.2, 11);
  auto train = dataset->Subset(split->train);
  auto test = dataset->Subset(split->test);
  ml::RandomForestClassifier forest;
  ml::ForestParams params;
  params.num_trees = 100;
  params.max_depth = 14;
  if (!forest.Fit(*train, params, 11).ok()) return 1;
  auto preds = forest.PredictBatch(*test);
  if (!preds.ok()) return 1;

  auto confusion =
      ml::ComputeMulticlassConfusion(test->labels(), *preds, 3);
  if (!confusion.ok()) return 1;
  std::printf("%s\n",
              ml::MulticlassConfusionToText(
                  *confusion, {"ephemeral", "short", "long"})
                  .c_str());
  std::printf("3-class accuracy at birth: %.3f (majority-class "
              "baseline: %.3f)\n\n",
              confusion->accuracy(),
              static_cast<double>(
                  *std::max_element(counts.begin(), counts.end())) /
                  static_cast<double>(ids.size()));
  for (int cls = 0; cls < 3; ++cls) {
    auto scores = ml::OneVsRestScores(*confusion, cls);
    if (!scores.ok()) continue;
    static const char* kNames[] = {"ephemeral", "short", "long"};
    std::printf("  %-9s one-vs-rest precision=%.2f recall=%.2f\n",
                kNames[cls], scores->precision, scores->recall);
  }

  // The binary x=0 vs x=2 comparison on the paper's task.
  std::printf("\nbinary long-vs-short task, x=0 vs x=2 (Basic "
              "subgroup):\n");
  for (double x : {1.0 / 86400.0, 2.0}) {
    core::ExperimentConfig config = bench::PaperExperimentConfig(false);
    config.observe_days = x;
    config.feature_config.include_size = x >= 1.0;
    config.feature_config.include_slo = x >= 1.0;
    config.num_repetitions = 2;
    auto result = core::RunPredictionExperiment(
        store, telemetry::Edition::kBasic, config);
    if (!result.ok()) continue;
    std::printf("  x=%-4s accuracy=%.3f precision=%.3f recall=%.3f\n",
                x < 1.0 ? "0d" : "2d", result->forest_avg.accuracy,
                result->forest_avg.precision, result->forest_avg.recall);
  }
  std::printf("\n(the 2-day telemetry window buys a few accuracy points "
              "and — more importantly — removes the ephemeral class from "
              "the task entirely, which is why the paper predicts at "
              "x=2.)\n");
  return 0;
}
