#ifndef CLOUDSURV_BENCH_BENCH_UTIL_H_
#define CLOUDSURV_BENCH_BENCH_UTIL_H_

// Shared plumbing for the paper-reproduction binaries: simulate the
// three study regions and run the nine (region x edition) prediction
// experiments with a common configuration.
//
// Scale: CLOUDSURV_SUBS environment variable sets the number of
// subscriptions simulated per region (default 1500). Larger values
// sharpen every estimate at proportional runtime cost.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/prediction.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "telemetry/store.h"

namespace cloudsurv::bench {

inline size_t RegionSubscriptions() {
  const char* env = std::getenv("CLOUDSURV_SUBS");
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 1500;
}

/// Simulates the three study regions (deterministic).
inline std::vector<telemetry::TelemetryStore> SimulateStudyRegions(
    uint64_t seed = 2017) {
  std::vector<telemetry::TelemetryStore> stores;
  const size_t subs = RegionSubscriptions();
  for (int region = 1; region <= 3; ++region) {
    auto config = simulator::MakeRegionPreset(
        region, subs, seed + static_cast<uint64_t>(region));
    if (!config.ok()) {
      std::fprintf(stderr, "region config failed: %s\n",
                   config.status().ToString().c_str());
      std::exit(1);
    }
    auto store = simulator::SimulateRegion(*config);
    if (!store.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   store.status().ToString().c_str());
      std::exit(1);
    }
    stores.push_back(std::move(store).value());
  }
  return stores;
}

/// The experiment configuration used by the classification benches.
/// Grid-search tuning is enabled only where scores are the headline
/// output (Figure 5); the survival-curve benches use a fixed strong
/// configuration for speed.
inline core::ExperimentConfig PaperExperimentConfig(bool tune) {
  core::ExperimentConfig config;
  config.tune_with_grid_search = tune;
  config.default_params.num_trees = 80;
  config.default_params.max_depth = 14;
  config.num_repetitions = tune ? 5 : 3;
  config.cv_folds = 5;
  config.seed = 42;
  return config;
}

inline const std::vector<telemetry::Edition>& StudyEditions() {
  static const auto* kEditions = new std::vector<telemetry::Edition>{
      telemetry::Edition::kBasic, telemetry::Edition::kStandard,
      telemetry::Edition::kPremium};
  return *kEditions;
}

/// Runs the nine subgroup experiments. Exits with a diagnostic on any
/// failure (bench binaries are straight-line reproduction scripts).
inline std::vector<core::SubgroupExperimentResult> RunAllSubgroups(
    const std::vector<telemetry::TelemetryStore>& stores, bool tune) {
  std::vector<core::SubgroupExperimentResult> results;
  for (const auto& store : stores) {
    for (telemetry::Edition edition : StudyEditions()) {
      auto result = core::RunPredictionExperiment(
          store, edition, PaperExperimentConfig(tune));
      if (!result.ok()) {
        std::fprintf(stderr, "experiment %s/%s failed: %s\n",
                     store.region_name().c_str(),
                     telemetry::EditionToString(edition),
                     result.status().ToString().c_str());
        std::exit(1);
      }
      results.push_back(std::move(result).value());
    }
  }
  return results;
}

/// Observability snapshot hook shared by every bench: when
/// CLOUDSURV_METRICS_OUT names a file, the process-wide metrics
/// registry is written there as JSON (obs::ExportJson) so a bench run
/// leaves the registry state alongside its own results artifact. A
/// no-op when the variable is unset, so benches call it
/// unconditionally at exit.
inline void EmitRegistrySnapshot() {
  const char* path = std::getenv("CLOUDSURV_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') return;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for the metrics snapshot\n",
                 path);
    return;
  }
  out << obs::ExportJson(obs::Registry::Default());
  std::fprintf(stderr, "metrics snapshot written to %s\n", path);
}

inline void PrintHeader(const std::string& title) {
  std::printf("==========================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  (synthetic CloudSurv telemetry; compare shapes, not\n");
  std::printf("   absolute values - see EXPERIMENTS.md)\n");
  std::printf("==========================================================\n");
}

}  // namespace cloudsurv::bench

#endif  // CLOUDSURV_BENCH_BENCH_UTIL_H_
