// Ablation: the paper's adaptive confidence threshold t = max(q, 1-q)
// vs fixed thresholds. For each rule we report coverage (share of
// predictions deemed confident) and the accuracy on that confident
// subset — the operating points a provisioning policy can choose from
// (section 5.3 / 5.5).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/prediction.h"
#include "ml/metrics.h"

using namespace cloudsurv;

namespace {

// Re-buckets one run's outcomes under a different threshold.
void ScoreWithThreshold(const std::vector<core::PredictionOutcome>& outcomes,
                        double threshold, double* coverage,
                        double* confident_accuracy) {
  std::vector<int> y_true, y_pred;
  size_t confident = 0;
  for (const auto& o : outcomes) {
    const bool is_confident = o.positive_probability >= threshold ||
                              o.positive_probability <= 1.0 - threshold;
    if (!is_confident) continue;
    ++confident;
    y_true.push_back(o.true_label);
    y_pred.push_back(o.predicted_label);
  }
  *coverage =
      static_cast<double>(confident) / static_cast<double>(outcomes.size());
  if (y_true.empty()) {
    *confident_accuracy = 0.0;
    return;
  }
  auto scores = ml::ComputeScores(y_true, y_pred);
  *confident_accuracy = scores.ok() ? scores->accuracy : 0.0;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "Ablation: confidence threshold rule (coverage vs accuracy)");
  auto stores = bench::SimulateStudyRegions();

  for (telemetry::Edition edition : bench::StudyEditions()) {
    auto result = core::RunPredictionExperiment(
        stores[0], edition, bench::PaperExperimentConfig(false));
    if (!result.ok()) {
      std::printf("%s failed: %s\n", telemetry::EditionToString(edition),
                  result.status().ToString().c_str());
      continue;
    }
    const auto& run = result->runs.front();
    std::printf("---- Region-1 / %s (q=%.2f, all-accuracy=%.3f) ----\n",
                telemetry::EditionToString(edition), result->positive_rate,
                run.forest_scores.accuracy);
    std::printf("  %-22s %9s %9s\n", "rule", "coverage", "conf-acc");
    double coverage, accuracy;
    ScoreWithThreshold(run.outcomes, run.confidence_threshold, &coverage,
                       &accuracy);
    std::printf("  t=max(q,1-q) = %.2f    %8.0f%% %9.3f   <- paper's rule\n",
                run.confidence_threshold, coverage * 100.0, accuracy);
    for (double t : {0.6, 0.7, 0.8, 0.9, 0.95}) {
      ScoreWithThreshold(run.outcomes, t, &coverage, &accuracy);
      std::printf("  t=%.2f                %8.0f%% %9.3f\n", t,
                  coverage * 100.0, accuracy);
    }
  }
  std::printf("\n(higher thresholds trade coverage for confident-subset "
              "accuracy; the adaptive rule lands near the knee without "
              "tuning.)\n");
  return 0;
}
