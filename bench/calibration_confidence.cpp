// Supporting analysis for Section 5.3: the paper treats random-forest
// class probabilities as confidence levels (citing Zadrozny & Elkan on
// calibrated probability estimates). This bench measures how
// well-calibrated those probabilities actually are per edition
// subgroup — reliability diagram, Brier score and expected calibration
// error — and shows accuracy conditional on predicted probability,
// which is exactly why thresholding on it works.

#include <cstdio>

#include "bench/bench_util.h"
#include "ml/calibration.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Calibration of forest probabilities (supports section 5.3)");
  auto stores = bench::SimulateStudyRegions();

  for (telemetry::Edition edition : bench::StudyEditions()) {
    auto result = core::RunPredictionExperiment(
        stores[0], edition, bench::PaperExperimentConfig(false));
    if (!result.ok()) continue;

    // Pool outcomes from all repetitions for tighter bins.
    std::vector<int> y_true;
    std::vector<double> probs;
    for (const auto& run : result->runs) {
      for (const auto& o : run.outcomes) {
        y_true.push_back(o.true_label);
        probs.push_back(o.positive_probability);
      }
    }
    auto report = ml::ComputeCalibration(y_true, probs, 10);
    if (!report.ok()) continue;

    std::printf("---- Region-1 / %s (n=%zu predictions) ----\n",
                telemetry::EditionToString(edition), y_true.size());
    std::printf("%s", report->ToText().c_str());
    std::printf("(a perfectly calibrated model has mean_pred == observed "
                "in every bin; low ECE justifies using p as a "
                "confidence level.)\n\n");
  }
  return 0;
}
