// Reproduces Figure 3: KM curves for Basic, Standard and Premium
// databases, sub-categorized by whether they changed edition
// ("always" vs "changed"), for Regions 1-3. Paper shapes: Basic decays
// slowest, Premium fastest; "always" and "changed" curves differ; few
// Basic/Standard databases change edition, many Premium do (Obs 3.3).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cohort.h"
#include "core/report.h"
#include "survival/kaplan_meier.h"
#include "survival/logrank.h"

using namespace cloudsurv;

int main() {
  bench::PrintHeader(
      "Figure 3: KM curves by edition x always/changed, Regions 1-3");
  auto stores = bench::SimulateStudyRegions();

  for (const auto& store : stores) {
    std::printf("---- %s ----\n", store.region_name().c_str());
    std::vector<std::pair<std::string, survival::KaplanMeierCurve>> curves;
    std::vector<survival::SurvivalData> edition_groups;
    for (telemetry::Edition edition : bench::StudyEditions()) {
      core::CohortFilter all_filter;
      all_filter.edition = edition;
      auto all_data = core::CohortSurvivalData(store, all_filter);
      if (!all_data.ok()) continue;
      edition_groups.push_back(*all_data);

      for (bool changed : {false, true}) {
        core::CohortFilter filter = all_filter;
        filter.changed_edition = changed;
        auto data = core::CohortSurvivalData(store, filter);
        const char* suffix = changed ? "changed" : "always";
        if (!data.ok() || data->empty()) {
          std::printf("  %s-%s: empty group\n",
                      telemetry::EditionToString(edition), suffix);
          continue;
        }
        auto km = survival::KaplanMeierCurve::Fit(*data);
        if (!km.ok()) continue;
        std::printf("  %s-%s: n=%zu\n",
                    telemetry::EditionToString(edition), suffix,
                    data->size());
        curves.emplace_back(
            std::string(telemetry::EditionToString(edition)) + "-" + suffix,
            std::move(km).value());
      }
    }
    std::printf("\n%s\n",
                core::KmCurveSeriesMulti(curves, 140, 10).c_str());

    if (edition_groups.size() == 3) {
      auto logrank = survival::KSampleLogRankTest(edition_groups);
      if (logrank.ok()) {
        std::printf("3-sample log-rank across editions: chi2=%.1f df=%.0f "
                    "p %s  (Observation 3.2)\n\n",
                    logrank->statistic, logrank->degrees_of_freedom,
                    core::FormatPValue(logrank->p_value).c_str());
      }
    }
  }
  return 0;
}
