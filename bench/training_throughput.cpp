// Training throughput: times random-forest fits on a wide synthetic
// matrix with the exact (per-node sort) and histogram (pre-binned)
// split searches, checks that both forests make near-identical test
// predictions on simulated telemetry, and times grid-search tuning at
// one thread and at CLOUDSURV_THREADS threads. Reports everything as
// JSON on stdout.
//
// Scale knobs (environment): CLOUDSURV_BENCH_ROWS (default 50000),
// CLOUDSURV_BENCH_FEATURES (30), CLOUDSURV_BENCH_TREES (10),
// CLOUDSURV_BENCH_GRID_ROWS (4000), CLOUDSURV_SUBS (400, simulator
// agreement check), CLOUDSURV_THREADS (8). CI runs a small
// configuration; the defaults match the PR's acceptance measurement.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/cohort.h"
#include "features/features.h"
#include "ml/cross_validation.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"
#include "simulator/region.h"
#include "simulator/simulator.h"

namespace {

using namespace cloudsurv;

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return fallback;
}

double Seconds(const std::chrono::steady_clock::time_point& t0,
               const std::chrono::steady_clock::time_point& t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

// Continuous features; the label depends on a few of them through a
// noisy linear rule, so trees grow to real depth on every feature.
ml::Dataset SyntheticMatrix(size_t rows, size_t features, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> names;
  names.reserve(features);
  for (size_t f = 0; f < features; ++f) {
    names.push_back("f" + std::to_string(f));
  }
  std::vector<std::vector<double>> matrix;
  std::vector<int> labels;
  matrix.reserve(rows);
  labels.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<double> row(features);
    double score = 0.0;
    for (size_t f = 0; f < features; ++f) {
      row[f] = rng.Normal(0.0, 1.0);
      if (f < 5) score += row[f] * (f % 2 == 0 ? 1.0 : -1.0);
    }
    labels.push_back(score + rng.Normal(0.0, 1.0) > 0.0 ? 1 : 0);
    matrix.push_back(std::move(row));
  }
  auto d = ml::Dataset::Make(names, std::move(matrix), std::move(labels));
  if (!d.ok()) {
    std::fprintf(stderr, "dataset build failed: %s\n",
                 d.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(d).value();
}

struct FitTiming {
  double elapsed_s = 0.0;
  double oob = 0.0;
};

FitTiming TimeFit(const ml::Dataset& data, ml::SplitAlgorithm algorithm,
                  size_t trees, uint64_t seed) {
  ml::ForestParams params;
  params.num_trees = static_cast<int>(trees);
  params.max_depth = 12;
  params.num_threads = 1;
  params.split_algorithm = algorithm;
  ml::RandomForestClassifier forest;
  const auto t0 = std::chrono::steady_clock::now();
  Status fitted = forest.Fit(data, params, seed);
  const auto t1 = std::chrono::steady_clock::now();
  if (!fitted.ok()) {
    std::fprintf(stderr, "fit failed: %s\n", fitted.ToString().c_str());
    std::exit(1);
  }
  return {Seconds(t0, t1), forest.oob_accuracy()};
}

// Fraction of simulator test rows on which exact- and histogram-trained
// forests predict the same label.
double SimulatorAgreement(size_t subs, size_t trees, int depth,
                          double* accuracy_exact, double* accuracy_hist) {
  auto config = simulator::MakeRegionPreset(1, subs, 2017);
  if (!config.ok()) std::exit(1);
  auto store = simulator::SimulateRegion(*config);
  if (!store.ok()) std::exit(1);
  auto cohort = core::BuildPredictionCohort(*store, 2.0, 30.0,
                                            std::nullopt);
  if (!cohort.ok()) {
    std::fprintf(stderr, "cohort failed: %s\n",
                 cohort.status().ToString().c_str());
    std::exit(1);
  }
  features::FeatureConfig feature_config;
  auto dataset = features::BuildDataset(*store, cohort->ids,
                                        cohort->labels, feature_config);
  if (!dataset.ok()) {
    std::fprintf(stderr, "features failed: %s\n",
                 dataset.status().ToString().c_str());
    std::exit(1);
  }
  auto split = ml::TrainTestSplit(*dataset, 0.2, 7);
  if (!split.ok()) std::exit(1);

  ml::ForestParams exact;
  exact.num_trees = static_cast<int>(trees);
  exact.max_depth = depth;
  exact.num_threads = 1;
  exact.split_algorithm = ml::SplitAlgorithm::kExact;
  ml::ForestParams hist = exact;
  hist.split_algorithm = ml::SplitAlgorithm::kHistogram;

  ml::RandomForestClassifier fe, fh;
  if (!fe.FitOnRows(*dataset, split->train, exact, 7).ok()) std::exit(1);
  if (!fh.FitOnRows(*dataset, split->train, hist, 7).ok()) std::exit(1);
  auto pe = fe.PredictRows(*dataset, split->test);
  auto ph = fh.PredictRows(*dataset, split->test);
  if (!pe.ok() || !ph.ok()) std::exit(1);
  size_t agree = 0, correct_e = 0, correct_h = 0;
  for (size_t i = 0; i < pe->size(); ++i) {
    const int truth = dataset->label(split->test[i]);
    agree += (*pe)[i] == (*ph)[i] ? 1 : 0;
    correct_e += (*pe)[i] == truth ? 1 : 0;
    correct_h += (*ph)[i] == truth ? 1 : 0;
  }
  const double n = static_cast<double>(pe->size());
  *accuracy_exact = static_cast<double>(correct_e) / n;
  *accuracy_hist = static_cast<double>(correct_h) / n;
  return static_cast<double>(agree) / n;
}

}  // namespace

int main() {
  const size_t rows = EnvSize("CLOUDSURV_BENCH_ROWS", 50000);
  const size_t features = EnvSize("CLOUDSURV_BENCH_FEATURES", 30);
  const size_t trees = EnvSize("CLOUDSURV_BENCH_TREES", 10);
  const size_t grid_rows = EnvSize("CLOUDSURV_BENCH_GRID_ROWS", 4000);
  const size_t subs = EnvSize("CLOUDSURV_SUBS", 800);
  // 300 trees x depth 8 — depth 8 sits in DefaultForestGrid() and keeps
  // the two searches within ensemble-averaging reach of each other;
  // deeper trees amplify small split differences into diverging
  // subtrees (raise CLOUDSURV_BENCH_AGREE_DEPTH to observe it).
  const size_t agree_trees = EnvSize("CLOUDSURV_BENCH_AGREE_TREES", 300);
  const int agree_depth =
      static_cast<int>(EnvSize("CLOUDSURV_BENCH_AGREE_DEPTH", 8));
  const size_t threads = EnvSize("CLOUDSURV_THREADS", 8);

  const ml::Dataset data = SyntheticMatrix(rows, features, 99);

  const FitTiming exact =
      TimeFit(data, ml::SplitAlgorithm::kExact, trees, 99);
  const FitTiming hist =
      TimeFit(data, ml::SplitAlgorithm::kHistogram, trees, 99);

  // Grid search at 1 and N threads must agree bit-for-bit.
  const ml::Dataset grid_data = SyntheticMatrix(grid_rows, features, 100);
  std::vector<ml::ForestParams> grid;
  for (int depth : {8, 12}) {
    for (size_t min_leaf : {size_t{1}, size_t{5}}) {
      ml::ForestParams p;
      p.num_trees = 20;
      p.max_depth = depth;
      p.min_samples_leaf = min_leaf;
      grid.push_back(p);
    }
  }
  const auto g0 = std::chrono::steady_clock::now();
  auto grid_single = ml::GridSearchForest(grid_data, grid, 3, 100, 1);
  const auto g1 = std::chrono::steady_clock::now();
  auto grid_multi = ml::GridSearchForest(grid_data, grid, 3, 100,
                                         static_cast<int>(threads));
  const auto g2 = std::chrono::steady_clock::now();
  if (!grid_single.ok() || !grid_multi.ok()) {
    std::fprintf(stderr, "grid search failed\n");
    return 1;
  }
  bool grid_identical =
      grid_single->best_score == grid_multi->best_score &&
      grid_single->best_params.ToString() ==
          grid_multi->best_params.ToString();
  for (size_t i = 0; i < grid_single->all_scores.size(); ++i) {
    grid_identical = grid_identical &&
                     grid_single->all_scores[i].second ==
                         grid_multi->all_scores[i].second;
  }

  double accuracy_exact = 0.0, accuracy_hist = 0.0;
  const double agreement =
      SimulatorAgreement(subs, agree_trees, agree_depth,
                         &accuracy_exact, &accuracy_hist);

  const double rows_d = static_cast<double>(rows);
  const double trees_d = static_cast<double>(trees);
  std::printf("{\n");
  std::printf("  \"rows\": %zu, \"features\": %zu, \"trees\": %zu,\n",
              rows, features, trees);
  std::printf(
      "  \"exact\": {\"fit_s\": %.3f, \"rows_per_sec\": %.0f, "
      "\"tree_rows_per_sec\": %.0f, \"oob\": %.4f},\n",
      exact.elapsed_s, rows_d / exact.elapsed_s,
      rows_d * trees_d / exact.elapsed_s, exact.oob);
  std::printf(
      "  \"histogram\": {\"fit_s\": %.3f, \"rows_per_sec\": %.0f, "
      "\"tree_rows_per_sec\": %.0f, \"oob\": %.4f},\n",
      hist.elapsed_s, rows_d / hist.elapsed_s,
      rows_d * trees_d / hist.elapsed_s, hist.oob);
  std::printf("  \"speedup_exact_to_histogram\": %.2f,\n",
              exact.elapsed_s / hist.elapsed_s);
  std::printf(
      "  \"grid_search\": {\"rows\": %zu, \"cells\": %zu, \"folds\": 3, "
      "\"single_thread_s\": %.3f, \"multi_thread_s\": %.3f, "
      "\"threads\": %zu, \"speedup\": %.2f, \"identical\": %s},\n",
      grid_rows, grid.size(), Seconds(g0, g1), Seconds(g1, g2), threads,
      Seconds(g0, g1) / Seconds(g1, g2), grid_identical ? "true" : "false");
  std::printf(
      "  \"simulator_agreement\": {\"subscriptions\": %zu, "
      "\"trees\": %zu, \"depth\": %d, \"agreement\": %.4f, "
      "\"accuracy_exact\": %.4f, \"accuracy_histogram\": %.4f}\n",
      subs, agree_trees, agree_depth, agreement, accuracy_exact,
      accuracy_hist);
  std::printf("}\n");
  cloudsurv::bench::EmitRegistrySnapshot();
  return grid_identical ? 0 : 1;
}
