// Example: working with raw telemetry — export a simulated region to
// CSV, re-import it, and compute population statistics directly from
// the store API (the substrate every higher layer builds on).
//
//   ./build/examples/telemetry_explorer [output.csv]

#include <cstdio>
#include <fstream>
#include <iostream>

#include "core/cohort.h"
#include "simulator/simulator.h"
#include "stats/histogram.h"
#include "telemetry/store.h"

using namespace cloudsurv;

int main(int argc, char** argv) {
  auto config = simulator::MakeRegionPreset(1, 400, 31);
  simulator::SimulationSummary summary;
  auto store = simulator::SimulateRegion(*config, &summary);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }

  std::printf("subscriptions by archetype:\n");
  for (int a = 0; a < simulator::kNumArchetypes; ++a) {
    std::printf("  %-18s %5zu subscriptions, %6zu databases\n",
                simulator::ArchetypeToString(
                    static_cast<simulator::Archetype>(a)),
                summary.subscriptions_per_archetype[a],
                summary.databases_per_archetype[a]);
  }

  // Event-kind breakdown straight off the log.
  size_t kind_counts[4] = {0, 0, 0, 0};
  for (const auto& event : store->events()) {
    ++kind_counts[static_cast<int>(event.kind())];
  }
  std::printf("\nevent log: %zu events\n", store->num_events());
  for (int k = 0; k < 4; ++k) {
    std::printf("  %-16s %8zu\n",
                telemetry::EventKindToString(
                    static_cast<telemetry::EventKind>(k)),
                kind_counts[k]);
  }

  // Lifespan histogram of dropped databases.
  auto hist = stats::Histogram::Make(0.0, 150.0, 15);
  if (hist.ok()) {
    for (const auto& record : store->databases()) {
      if (record.dropped_at.has_value()) {
        hist->Add(record.ObservedLifespanDays(store->window_end()));
      }
    }
    std::printf("\nlifespan histogram of dropped databases (days):\n%s",
                hist->ToAsciiArt(40).c_str());
  }

  // CSV round trip.
  const std::string csv = store->ExportCsv();
  const char* path = argc > 1 ? argv[1] : "/tmp/cloudsurv_region1.csv";
  std::ofstream out(path);
  out << csv;
  out.close();
  std::printf("\nexported %zu bytes of CSV to %s\n", csv.size(), path);

  auto imported = telemetry::TelemetryStore::ImportCsv(
      csv, store->region_name(), store->utc_offset_minutes(),
      store->holidays(), store->window_start(), store->window_end());
  if (!imported.ok()) {
    std::cerr << "import failed: " << imported.status() << "\n";
    return 1;
  }
  std::printf("re-imported: %zu databases, %zu events — %s\n",
              imported->num_databases(), imported->num_events(),
              imported->ExportCsv() == csv ? "byte-identical round trip"
                                           : "MISMATCH");

  // Per-subscription drill-down for the busiest subscription.
  telemetry::SubscriptionId busiest = 0;
  size_t most = 0;
  for (auto sub : store->AllSubscriptions()) {
    const auto& dbs = store->DatabasesOfSubscription(sub);
    if (dbs.size() > most) {
      most = dbs.size();
      busiest = sub;
    }
  }
  std::printf("\nbusiest subscription %llu created %zu databases; first 5:\n",
              static_cast<unsigned long long>(busiest), most);
  size_t shown = 0;
  for (auto id : store->DatabasesOfSubscription(busiest)) {
    if (shown++ >= 5) break;
    const auto record = *store->FindDatabase(id);
    std::printf("  %-28s on %-18s %s, lived %.1f days\n",
                std::string(record.database_name).c_str(),
                std::string(record.server_name).c_str(),
                telemetry::EditionToString(record.initial_edition()),
                record.ObservedLifespanDays(store->window_end()));
  }
  return 0;
}
