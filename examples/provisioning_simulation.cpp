// Example: closing the loop of Section 3.1 — use confident lifespan
// predictions to drive tenant placement (churn / stable / general
// pools) and replay the window to quantify the operational savings.
//
//   ./build/examples/provisioning_simulation

#include <cstdio>
#include <iostream>

#include "core/prediction.h"
#include "core/provisioning.h"
#include "simulator/simulator.h"

using namespace cloudsurv;

int main() {
  auto config = simulator::MakeRegionPreset(3, 1200, 99);
  auto store = simulator::SimulateRegion(*config);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }

  // Classify every edition subgroup and keep only confident calls.
  core::ExperimentConfig experiment;
  experiment.tune_with_grid_search = false;
  experiment.default_params.num_trees = 80;
  experiment.default_params.max_depth = 14;
  experiment.num_repetitions = 1;
  experiment.seed = 4;

  core::PoolAssignmentPlan plan;
  size_t churn = 0, stable = 0;
  for (auto edition :
       {telemetry::Edition::kBasic, telemetry::Edition::kStandard,
        telemetry::Edition::kPremium}) {
    auto result = core::RunPredictionExperiment(*store, edition, experiment);
    if (!result.ok()) continue;
    const auto partial =
        core::PlanFromPredictions(result->runs.front().outcomes);
    for (const auto& [id, pool] : partial.pools) {
      plan.pools[id] = pool;
      (pool == core::Pool::kChurn ? churn : stable) += 1;
    }
  }
  std::printf("placement plan: %zu to churn pool, %zu to stable pool, "
              "rest stay general\n\n",
              churn, stable);

  // Replay with and without the plan under a few policy settings.
  for (double interval : {15.0, 30.0, 60.0}) {
    core::ProvisioningPolicyConfig policy;
    policy.maintenance_interval_days = interval;
    auto baseline = core::SimulateProvisioning(*store, {}, policy);
    auto guided = core::SimulateProvisioning(*store, plan, policy);
    if (!baseline.ok() || !guided.ok()) continue;
    std::printf("maintenance every %.0f days:\n", interval);
    std::printf("  baseline: %s\n", baseline->ToString().c_str());
    std::printf("  guided:   %s\n", guided->ToString().c_str());
    const double saved =
        static_cast<double>(baseline->disruptions - guided->disruptions) /
        static_cast<double>(baseline->disruptions) * 100.0;
    std::printf("  -> %.1f%% fewer tenant disruptions, %.0f%% less "
                "lifecycle/SLO contention\n\n",
                saved,
                (1.0 - guided->contention_score /
                           baseline->contention_score) *
                    100.0);
  }
  std::printf("(only ~a fifth of databases are placed here — those in "
              "the held-out test split with confident predictions; a "
              "production deployment classifies every database at day "
              "2, approaching the oracle numbers in "
              "bench/provisioning_policy.)\n");
  return 0;
}
