// Example: the observability layer end to end — register counters,
// gauges and histograms against the process-wide registry, instrument a
// small workload with ScopedTimer and TraceSpan, then export everything
// in both supported formats. Running any real pipeline (training, the
// scoring engine, the thread pool) populates the same registry; this
// example keeps the workload synthetic so the output is small and
// self-explanatory.
//
//   ./build/examples/metrics_dump

#include <cstdio>

#include "common/rng.h"
#include "obs/export.h"
#include "obs/metrics.h"

using namespace cloudsurv;

int main() {
  obs::Registry& registry = obs::Registry::Default();

  // 1. Resolve series once, up front. The returned pointers are stable
  //    for the life of the process; the hot loop below never touches
  //    the registry again.
  obs::Counter* requests = registry.GetCounter(
      "example_requests_total", "Requests handled by the demo loop",
      "requests");
  obs::Counter* cache_hits = registry.GetCounter(
      "example_cache_events_total", "Cache lookups by outcome", "events",
      {{"outcome", "hit"}});
  obs::Counter* cache_misses = registry.GetCounter(
      "example_cache_events_total", "Cache lookups by outcome", "events",
      {{"outcome", "miss"}});
  obs::Gauge* inflight = registry.GetGauge(
      "example_inflight_requests", "Requests currently being served");
  obs::Histogram* latency = registry.GetHistogram(
      "example_request_latency_us", "Per-request service time", "us");

  // 2. A synthetic request loop: each iteration burns a data-dependent
  //    amount of work so the latency histogram has real spread.
  Rng rng(7);
  double sink = 0.0;
  for (int i = 0; i < 2000; ++i) {
    inflight->Add(1.0);
    obs::ScopedTimer timer(latency);
    const int work = 1 + static_cast<int>(rng.Uniform() * 400.0);
    for (int j = 0; j < work * 50; ++j) sink += rng.Uniform();
    (rng.Uniform() < 0.8 ? cache_hits : cache_misses)->Increment();
    requests->Increment();
    timer.Stop();
    inflight->Add(-1.0);
  }

  // 3. A coarse phase timed as a trace span: the span registers (or
  //    reuses) the `example_report_phase_us` histogram by itself.
  {
    obs::TraceSpan span("example_report_phase");
    for (int j = 0; j < 100000; ++j) sink += rng.Uniform();
  }

  // 4. Export. Prometheus text is what `cloudsurv serve-sim
  //    --metrics-interval` dumps periodically; the JSON form is the
  //    repo's artifact convention (bench snapshots, --metrics-out).
  std::printf("--- Prometheus text exposition ---\n%s\n",
              obs::ExportPrometheusText(registry).c_str());
  std::printf("--- JSON snapshot ---\n%s",
              obs::ExportJson(registry).c_str());

  std::printf("(sink=%.1f, p50=%.0fus, p99=%.0fus over %llu requests)\n",
              sink, latency->Quantile(0.50), latency->Quantile(0.99),
              static_cast<unsigned long long>(latency->Count()));
  return 0;
}
