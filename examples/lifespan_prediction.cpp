// Example: the full lifespan-prediction pipeline of Section 4 — build
// the x=2/y=30 cohort, extract features, train a tuned random forest,
// partition predictions by confidence, and act only on confident ones.
//
//   ./build/examples/lifespan_prediction

#include <cstdio>
#include <iostream>

#include "core/cohort.h"
#include "core/prediction.h"
#include "core/report.h"
#include "simulator/simulator.h"

using namespace cloudsurv;

int main() {
  auto config = simulator::MakeRegionPreset(1, 1500, 23);
  auto store = simulator::SimulateRegion(*config);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }

  core::ExperimentConfig experiment;
  experiment.observe_days = 2.0;        // x: watch each database 2 days
  experiment.long_threshold_days = 30;  // y: predict survival past 30
  experiment.num_repetitions = 3;
  experiment.tune_with_grid_search = true;
  experiment.cv_folds = 5;
  experiment.seed = 1;

  for (auto edition :
       {telemetry::Edition::kBasic, telemetry::Edition::kStandard,
        telemetry::Edition::kPremium}) {
    auto result = core::RunPredictionExperiment(*store, edition, experiment);
    if (!result.ok()) {
      std::cerr << result.status() << "\n";
      continue;
    }
    std::printf("== %s (n=%zu, %.0f%% long-lived, tuned: %s) ==\n",
                result->subgroup_name.c_str(), result->cohort_size,
                result->positive_rate * 100.0,
                result->tuned_params.ToString().c_str());
    std::printf("  %s\n", core::ConfidenceComparisonRow(*result).c_str());

    // Inspect a few individual predictions the way a provisioning
    // service would consume them.
    std::printf("  sample predictions (first repetition):\n");
    int shown = 0;
    for (const auto& o : result->runs.front().outcomes) {
      if (shown >= 5) break;
      std::printf("    db %-6llu p(long)=%.2f -> %s%s | actually "
                  "%s after %.0f days\n",
                  static_cast<unsigned long long>(o.id),
                  o.positive_probability,
                  o.predicted_label == 1 ? "long " : "short",
                  o.confident ? " (confident)" : " (uncertain)",
                  o.observed ? "dropped" : "still alive",
                  o.duration_days);
      ++shown;
    }

    // Is the model's separation statistically significant?
    auto logrank = core::LogRankOfClassifiedGroups(
        result->runs.front().outcomes, core::PredictionBucket::kAll);
    if (logrank.ok()) {
      std::printf("  log-rank of predicted groups: p %s\n",
                  core::FormatPValue(logrank->p_value).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
