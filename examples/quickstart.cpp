// Quickstart: simulate a small region, study database survival, train a
// lifespan classifier, and inspect its quality — the whole library in
// one file.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "core/cohort.h"
#include "core/prediction.h"
#include "core/report.h"
#include "simulator/simulator.h"
#include "survival/kaplan_meier.h"
#include "survival/logrank.h"

using namespace cloudsurv;

int main() {
  // 1. Simulate five months of control-plane telemetry for a region.
  auto config = simulator::MakeRegionPreset(/*region_index=*/1,
                                            /*num_subscriptions=*/1200,
                                            /*seed=*/2017);
  if (!config.ok()) {
    std::cerr << config.status() << "\n";
    return 1;
  }
  simulator::SimulationSummary summary;
  auto store = simulator::SimulateRegion(*config, &summary);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }
  std::printf("simulated %zu subscriptions, %zu databases, %zu events\n",
              summary.num_subscriptions, summary.num_databases,
              summary.num_events);

  // 2. Kaplan-Meier survival of the 2-day-minimum population (Fig 1).
  core::CohortFilter filter;  // default: 2-day survival minimum
  auto data = core::CohortSurvivalData(*store, filter);
  if (!data.ok()) {
    std::cerr << data.status() << "\n";
    return 1;
  }
  auto km = survival::KaplanMeierCurve::Fit(*data);
  if (!km.ok()) {
    std::cerr << km.status() << "\n";
    return 1;
  }
  std::printf("\ncohort: %zu databases (%zu dropped, %zu censored)\n",
              data->size(), data->num_events(), data->num_censored());
  std::printf("S(30)=%.3f  S(60)=%.3f  S(120)=%.3f  S(130)=%.3f\n",
              km->SurvivalAt(30), km->SurvivalAt(60), km->SurvivalAt(120),
              km->SurvivalAt(130));
  std::cout << core::KmCurveAsciiPlot(*km, 140) << "\n";

  // 3. Class balance per edition (drives the prediction experiments).
  for (auto edition :
       {telemetry::Edition::kBasic, telemetry::Edition::kStandard,
        telemetry::Edition::kPremium}) {
    auto cohort = core::BuildPredictionCohort(*store, 2.0, 30.0, edition);
    if (!cohort.ok()) continue;
    size_t pos = 0;
    for (int l : cohort->labels) pos += static_cast<size_t>(l);
    std::printf("%-8s prediction cohort: n=%5zu  long-lived=%.2f\n",
                telemetry::EditionToString(edition), cohort->ids.size(),
                cohort->ids.empty()
                    ? 0.0
                    : static_cast<double>(pos) /
                          static_cast<double>(cohort->ids.size()));
  }

  // 4. Train and evaluate the random forest on the Basic subgroup
  //    (no grid search here to keep the quickstart fast).
  core::ExperimentConfig experiment;
  experiment.tune_with_grid_search = false;
  experiment.default_params.num_trees = 60;
  experiment.default_params.max_depth = 12;
  experiment.num_repetitions = 2;
  auto result = core::RunPredictionExperiment(
      *store, telemetry::Edition::kBasic, experiment);
  if (!result.ok()) {
    std::cerr << result.status() << "\n";
    return 1;
  }
  std::printf("\n%s\n",
              core::ScoreComparisonRow("Basic",
                                       result->forest_avg,
                                       result->baseline_avg)
                  .c_str());
  std::printf("%s\n", core::ConfidenceComparisonRow(*result).c_str());

  // 5. Are the classified groups statistically separated? (Fig 6)
  auto logrank = core::LogRankOfClassifiedGroups(
      result->runs[0].outcomes, core::PredictionBucket::kAll);
  if (logrank.ok()) {
    std::printf("log-rank of classified groups: chi2=%.1f p %s\n",
                logrank->statistic,
                core::FormatPValue(logrank->p_value).c_str());
  }

  // 6. Top predictive features (section 5.4).
  std::printf("\ntop features by gini importance:\n");
  auto ranked = core::RankFeatureImportances(*result);
  for (size_t i = 0; i < std::min<size_t>(8, ranked.size()); ++i) {
    std::printf("  %-28s %.4f\n", ranked[i].first.c_str(),
                ranked[i].second);
  }
  std::printf("\nfeature families:\n");
  for (const auto& [family, importance] :
       core::RankFeatureFamilies(*result)) {
    std::printf("  %-24s %.4f\n", family.c_str(), importance);
  }
  return 0;
}
