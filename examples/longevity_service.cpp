// Example: deploying the pipeline as a service — train on one region's
// history, persist the models, reload them, and score fresh databases
// from another region the way a provisioning controller would.
//
//   ./build/examples/longevity_service

#include <cstdio>
#include <iostream>

#include "core/service.h"
#include "simulator/simulator.h"

using namespace cloudsurv;

int main() {
  // 1. Train on historical telemetry.
  auto history_config = simulator::MakeRegionPreset(1, 1200, 55);
  auto history = simulator::SimulateRegion(*history_config);
  if (!history.ok()) {
    std::cerr << history.status() << "\n";
    return 1;
  }
  auto service = core::LongevityService::Train(*history);
  if (!service.ok()) {
    std::cerr << "training failed: " << service.status() << "\n";
    return 1;
  }
  std::printf("trained on %zu databases; per-edition models: "
              "Basic=%s Standard=%s Premium=%s\n",
              history->num_databases(),
              service->HasEditionModel(telemetry::Edition::kBasic) ? "yes"
                                                                   : "no",
              service->HasEditionModel(telemetry::Edition::kStandard)
                  ? "yes"
                  : "no",
              service->HasEditionModel(telemetry::Edition::kPremium)
                  ? "yes"
                  : "no");

  // 2. Persist and reload, as a controller restart would.
  const std::string blob = service->Save();
  auto reloaded = core::LongevityService::Load(blob);
  if (!reloaded.ok()) {
    std::cerr << "reload failed: " << reloaded.status() << "\n";
    return 1;
  }
  std::printf("persisted service: %zu bytes; reload OK\n\n", blob.size());

  // 3. Score live databases from a different region.
  auto live_config = simulator::MakeRegionPreset(2, 300, 66);
  auto live = simulator::SimulateRegion(*live_config);
  if (!live.ok()) {
    std::cerr << live.status() << "\n";
    return 1;
  }
  std::printf("%-26s %-8s %7s %-9s %-8s  actual\n", "database", "edition",
              "p(long)", "decision", "pool");
  int shown = 0;
  size_t agree = 0, scored = 0;
  for (const auto& record : live->databases()) {
    const double observed =
        record.ObservedLifespanDays(live->window_end());
    if (observed < 2.0) continue;
    auto assessment = reloaded->Assess(*live, record.id);
    if (!assessment.ok()) continue;
    ++scored;
    const bool actually_long = observed > 30.0;
    const bool label_known =
        actually_long || record.dropped_at.has_value();
    if (label_known &&
        (assessment->predicted_label == 1) == actually_long) {
      ++agree;
    }
    if (shown < 10) {
      std::printf("%-26s %-8s %7.2f %-9s %-8s  %s%.0fd\n",
                  std::string(record.database_name).c_str(),
                  telemetry::EditionToString(record.initial_edition()),
                  assessment->positive_probability,
                  assessment->confident
                      ? (assessment->predicted_label ? "long" : "short")
                      : "uncertain",
                  core::PoolToString(assessment->recommended_pool),
                  record.dropped_at ? "lived " : "alive ",
                  observed);
      ++shown;
    }
  }
  std::printf("\nscored %zu live databases; %.0f%% of known-outcome "
              "predictions correct (cross-region)\n",
              scored,
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(scored));

  // 4. Bulk placement plan for the live region.
  auto plan = reloaded->PlanPlacements(*live);
  if (plan.ok()) {
    size_t churn = 0, stable = 0;
    for (const auto& [id, pool] : plan->pools) {
      (pool == core::Pool::kChurn ? churn : stable) += 1;
    }
    std::printf("placement plan: %zu -> churn pool, %zu -> stable pool\n",
                churn, stable);
  }
  return 0;
}
