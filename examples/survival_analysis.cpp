// Example: survival analysis of a simulated region, the way Section 3
// of the paper studies Azure SQL DB — KM curves for subpopulations,
// life tables, hazard inspection, and log-rank comparisons.
//
//   ./build/examples/survival_analysis

#include <cstdio>
#include <iostream>

#include "core/cohort.h"
#include "core/report.h"
#include "simulator/simulator.h"
#include "survival/kaplan_meier.h"
#include "survival/life_table.h"
#include "survival/logrank.h"
#include "survival/nelson_aalen.h"

using namespace cloudsurv;

int main() {
  auto config = simulator::MakeRegionPreset(2, 1500, 7);
  auto store = simulator::SimulateRegion(*config);
  if (!store.ok()) {
    std::cerr << store.status() << "\n";
    return 1;
  }
  std::printf("region %s: %zu databases over %.0f days\n\n",
              store->region_name().c_str(), store->num_databases(),
              config->window_days());

  // --- KM curves per edition, with confidence intervals.
  for (auto edition :
       {telemetry::Edition::kBasic, telemetry::Edition::kStandard,
        telemetry::Edition::kPremium}) {
    core::CohortFilter filter;
    filter.edition = edition;
    auto data = core::CohortSurvivalData(*store, filter);
    if (!data.ok()) continue;
    auto km = survival::KaplanMeierCurve::Fit(*data);
    if (!km.ok()) continue;
    const auto median = km->MedianTime();
    std::printf("%-9s n=%5zu  S(30)=%.3f [%.3f median %s]  rmean(90)=%.1f\n",
                telemetry::EditionToString(edition), data->size(),
                km->SurvivalAt(30.0), km->SurvivalAt(60.0),
                median ? (std::to_string(*median) + "d").c_str() : "n/a",
                km->RestrictedMean(90.0));
  }

  // --- Log-rank: do Basic and Premium really differ?
  core::CohortFilter basic_filter, premium_filter;
  basic_filter.edition = telemetry::Edition::kBasic;
  premium_filter.edition = telemetry::Edition::kPremium;
  auto basic = core::CohortSurvivalData(*store, basic_filter);
  auto premium = core::CohortSurvivalData(*store, premium_filter);
  if (basic.ok() && premium.ok()) {
    for (auto [weighting, label] :
         {std::pair{survival::LogRankWeighting::kLogRank, "log-rank"},
          std::pair{survival::LogRankWeighting::kWilcoxon, "Wilcoxon"},
          std::pair{survival::LogRankWeighting::kPetoPeto, "Peto-Peto"}}) {
      auto test = survival::LogRankTest(*basic, *premium, weighting);
      if (!test.ok()) continue;
      std::printf("Basic vs Premium %-9s chi2=%7.1f  p %s\n", label,
                  test->statistic,
                  core::FormatPValue(test->p_value).c_str());
    }
  }

  // --- Weekly life table of the whole 2-day-minimum population.
  auto all = core::CohortSurvivalData(*store, core::CohortFilter{});
  if (all.ok()) {
    auto table = survival::LifeTable::Build(*all, 7.0, 140.0);
    if (table.ok()) {
      std::printf("\nweekly life table (first 10 rows):\n");
      std::string text = table->ToText();
      size_t pos = 0;
      for (int line = 0; line < 11 && pos != std::string::npos; ++line) {
        const size_t next = text.find('\n', pos);
        std::printf("%s\n", text.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
      }
    }

    // --- Where does drop hazard spike? (The incentive-expiry cliff.)
    auto na = survival::NelsonAalenCurve::Fit(*all);
    if (na.ok()) {
      std::printf("\nsmoothed hazard by day:\n");
      double peak_day = 0.0, peak_hazard = 0.0;
      for (double day = 5.0; day <= 140.0; day += 5.0) {
        const double h = na->SmoothedHazard(day, 2.5);
        if (h > peak_hazard && day > 50.0) {
          peak_hazard = h;
          peak_day = day;
        }
      }
      std::printf("  late-life hazard peaks near day %.0f "
                  "(%.4f/day) - incentive-expiry churn\n",
                  peak_day, peak_hazard);
    }
  }
  return 0;
}
