#include "core/service.h"
#include "gtest/gtest.h"
#include "ml/metrics.h"
#include "simulator/region.h"
#include "simulator/simulator.h"

namespace cloudsurv::core {
namespace {

using telemetry::TelemetryStore;

const TelemetryStore& HistoryStore() {
  static const TelemetryStore* store = [] {
    auto config = simulator::MakeRegionPreset(1, 900, 77);
    auto s = simulator::SimulateRegion(*config);
    EXPECT_TRUE(s.ok()) << s.status();
    return new TelemetryStore(std::move(s).value());
  }();
  return *store;
}

LongevityService::Options FastOptions() {
  LongevityService::Options options;
  options.forest_params.num_trees = 40;
  options.forest_params.max_depth = 10;
  options.seed = 3;
  return options;
}

const LongevityService& TrainedService() {
  static const LongevityService* service = [] {
    auto s = LongevityService::Train(HistoryStore(), FastOptions());
    EXPECT_TRUE(s.ok()) << s.status();
    return new LongevityService(std::move(s).value());
  }();
  return *service;
}

TEST(LongevityServiceTest, TrainsPerEditionModels) {
  const auto& service = TrainedService();
  // The simulated region has large Basic/Standard cohorts; Premium may
  // or may not clear the minimum, but the pooled fallback always
  // exists, so assessments never fail for a surviving database.
  EXPECT_TRUE(service.HasEditionModel(telemetry::Edition::kBasic));
  EXPECT_TRUE(service.HasEditionModel(telemetry::Edition::kStandard));
}

TEST(LongevityServiceTest, AssessmentsAreAccurate) {
  const auto& service = TrainedService();
  const auto& store = HistoryStore();
  // Score databases with known outcomes and compare.
  size_t correct = 0, total = 0;
  for (const auto& record : store.databases()) {
    const double observed =
        record.ObservedLifespanDays(store.window_end());
    if (observed < 2.0) continue;
    const bool dropped = record.dropped_at.has_value();
    int truth;
    if (observed > 30.0) {
      truth = 1;
    } else if (dropped) {
      truth = 0;
    } else {
      continue;  // unknown outcome
    }
    auto assessment = service.Assess(store, record.id);
    ASSERT_TRUE(assessment.ok()) << assessment.status();
    EXPECT_GE(assessment->positive_probability, 0.0);
    EXPECT_LE(assessment->positive_probability, 1.0);
    if (assessment->predicted_label == truth) ++correct;
    ++total;
  }
  ASSERT_GT(total, 1000u);
  // In-sample accuracy (trained on this store) should be high.
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
            0.8);
}

TEST(LongevityServiceTest, ConfidenceDrivesPoolRecommendation) {
  const auto& service = TrainedService();
  const auto& store = HistoryStore();
  size_t churn = 0, stable = 0, general = 0;
  for (const auto& record : store.databases()) {
    if (record.ObservedLifespanDays(store.window_end()) < 2.0) continue;
    auto assessment = service.Assess(store, record.id);
    if (!assessment.ok()) continue;
    switch (assessment->recommended_pool) {
      case Pool::kChurn:
        EXPECT_TRUE(assessment->confident);
        EXPECT_EQ(assessment->predicted_label, 0);
        ++churn;
        break;
      case Pool::kStable:
        EXPECT_TRUE(assessment->confident);
        EXPECT_EQ(assessment->predicted_label, 1);
        ++stable;
        break;
      case Pool::kGeneral:
        EXPECT_FALSE(assessment->confident);
        ++general;
        break;
    }
  }
  EXPECT_GT(churn, 0u);
  EXPECT_GT(stable, 0u);
  EXPECT_GT(general, 0u);
}

TEST(LongevityServiceTest, AssessRejectsYoungOrUnknownDatabases) {
  const auto& service = TrainedService();
  const auto& store = HistoryStore();
  EXPECT_FALSE(service.Assess(store, 99999999).ok());
  // Find a database that died before the observation window closed.
  for (const auto& record : store.databases()) {
    if (record.ObservedLifespanDays(store.window_end()) < 1.0 &&
        record.dropped_at.has_value()) {
      EXPECT_FALSE(service.Assess(store, record.id).ok());
      break;
    }
  }
}

TEST(LongevityServiceTest, PlanPlacementsCoversConfidentDatabases) {
  const auto& service = TrainedService();
  auto plan = service.PlanPlacements(HistoryStore());
  ASSERT_TRUE(plan.ok());
  EXPECT_GT(plan->pools.size(), 500u);
  for (const auto& [id, pool] : plan->pools) {
    EXPECT_NE(pool, Pool::kGeneral);  // only confident placements stored
  }
}

TEST(LongevityServiceTest, SaveLoadRoundTrip) {
  const auto& service = TrainedService();
  const std::string blob = service.Save();
  auto restored = LongevityService::Load(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  const auto& store = HistoryStore();
  size_t checked = 0;
  for (const auto& record : store.databases()) {
    if (record.ObservedLifespanDays(store.window_end()) < 2.0) continue;
    auto a = service.Assess(store, record.id);
    auto b = restored->Assess(store, record.id);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(a->positive_probability, b->positive_probability);
    EXPECT_EQ(a->recommended_pool, b->recommended_pool);
    if (++checked >= 200) break;
  }
  EXPECT_EQ(restored->Save(), blob);
}

TEST(LongevityServiceTest, LoadRejectsGarbage) {
  EXPECT_FALSE(LongevityService::Load("").ok());
  EXPECT_FALSE(LongevityService::Load("nonsense").ok());
  EXPECT_FALSE(
      LongevityService::Load("longevity_service v1\nobserve_days 2\n")
          .ok());  // no pooled model
}

TEST(LongevityServiceTest, LoadRejectsMalformedInput) {
  const std::string header = "longevity_service v1\n";

  // Truncated blob: declares more bytes than the text holds.
  EXPECT_FALSE(LongevityService::Load(header +
                                      "model pooled 0.8\n"
                                      "blob_bytes 100\nshort")
                   .ok());

  // Negative, overflowing, and non-numeric blob sizes.
  for (const char* size :
       {"-1", "-9999999999", "18446744073709551616", "12abc", "", "1e3"}) {
    const std::string text = header + "model pooled 0.8\nblob_bytes " +
                             size + "\n";
    EXPECT_FALSE(LongevityService::Load(text).ok()) << "size: " << size;
  }

  // Missing blob-size line entirely.
  EXPECT_FALSE(
      LongevityService::Load(header + "model pooled 0.8\n").ok());

  // Threshold outside [0, 1] or a model line with trailing tokens.
  EXPECT_FALSE(
      LongevityService::Load(header + "model pooled 1.5\nblob_bytes 0\n")
          .ok());
  EXPECT_FALSE(LongevityService::Load(
                   header + "model pooled 0.8 extra\nblob_bytes 0\n")
                   .ok());

  // Malformed option lines must not be silently skipped.
  EXPECT_FALSE(
      LongevityService::Load(header + "observe_days banana\n").ok());
  EXPECT_FALSE(
      LongevityService::Load(header + "observe_days 2.0 trailing\n").ok());
}

TEST(LongevityServiceTest, LoadRejectsDuplicateModelsAndTrailingGarbage) {
  // A real saved service, mutated: duplicating the pooled model block
  // must be rejected rather than last-one-wins.
  const std::string blob = TrainedService().Save();
  const std::string needle = "model pooled ";
  const size_t model_at = blob.find(needle);
  ASSERT_NE(model_at, std::string::npos);
  const std::string duplicated = blob + blob.substr(model_at);
  auto dup = LongevityService::Load(duplicated);
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find("duplicate"), std::string::npos)
      << dup.status().ToString();

  // Trailing garbage after the last blob is rejected, not ignored.
  EXPECT_FALSE(LongevityService::Load(blob + "garbage after blobs\n").ok());

  // A trailing newline alone stays acceptable (Save ends with one).
  EXPECT_TRUE(LongevityService::Load(blob + "\n").ok());
}

TEST(LongevityServiceTest, GeneralizesToAnotherRegion) {
  // Train on Region-1, assess Region-2: the service should still beat
  // coin flipping by a wide margin (the behaviour patterns transfer).
  auto config = simulator::MakeRegionPreset(2, 600, 123);
  auto other = simulator::SimulateRegion(*config);
  ASSERT_TRUE(other.ok());
  const auto& service = TrainedService();
  size_t correct = 0, total = 0;
  for (const auto& record : other->databases()) {
    const double observed =
        record.ObservedLifespanDays(other->window_end());
    if (observed < 2.0) continue;
    const bool dropped = record.dropped_at.has_value();
    int truth;
    if (observed > 30.0) {
      truth = 1;
    } else if (dropped) {
      truth = 0;
    } else {
      continue;
    }
    auto assessment = service.Assess(*other, record.id);
    if (!assessment.ok()) continue;
    if (assessment->predicted_label == truth) ++correct;
    ++total;
  }
  ASSERT_GT(total, 500u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
            0.7);
}

}  // namespace
}  // namespace cloudsurv::core
