#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"

namespace cloudsurv::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter]() {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAddBothWays) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0.0);
  gauge.Set(10.0);
  gauge.Add(5.0);
  gauge.Add(-12.0);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactly) {
  Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge]() {
      for (int i = 0; i < kPerThread; ++i) gauge.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(gauge.Value(), kThreads * kPerThread);
}

TEST(HistogramTest, EmptyHistogramHasZeroQuantiles) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(histogram.Sum(), 0.0);
  EXPECT_EQ(histogram.Mean(), 0.0);
  EXPECT_EQ(histogram.Quantile(0.0), 0.0);
  EXPECT_EQ(histogram.Quantile(0.5), 0.0);
  EXPECT_EQ(histogram.Quantile(0.99), 0.0);
  EXPECT_EQ(histogram.Quantile(1.0), 0.0);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketBound(1), 2.0);
  EXPECT_EQ(Histogram::BucketBound(10), 1024.0);
  EXPECT_TRUE(std::isinf(
      Histogram::BucketBound(Histogram::kNumFiniteBuckets)));
}

TEST(HistogramTest, SamplesLandInTheRightBuckets) {
  Histogram histogram;
  histogram.Observe(0.5);   // bucket 0 (le 1)
  histogram.Observe(1.0);   // bucket 0 (le bound inclusive)
  histogram.Observe(1.5);   // bucket 1 (le 2)
  histogram.Observe(100.0); // bucket 7 (le 128)
  histogram.Observe(-3.0);  // clamped to 0 -> bucket 0
  histogram.Observe(1e12);  // overflow bucket
  const auto counts = histogram.BucketCounts();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[7], 1u);
  EXPECT_EQ(counts[Histogram::kNumFiniteBuckets], 1u);
  EXPECT_EQ(histogram.Count(), 6u);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBracketed) {
  Histogram histogram;
  for (int i = 1; i <= 1000; ++i) {
    histogram.Observe(static_cast<double>(i));
  }
  const double p50 = histogram.Quantile(0.50);
  const double p90 = histogram.Quantile(0.90);
  const double p99 = histogram.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // The true p50 is 500; a log-bucket estimate must stay within the
  // bucket that holds it (256, 512].
  EXPECT_GT(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_GT(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(HistogramTest, ConcurrentObservationsCountExactly) {
  Histogram histogram;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Observe(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(histogram.Count(), kThreads * kPerThread);
  // Sum of t+1 over threads, kPerThread times each.
  EXPECT_DOUBLE_EQ(histogram.Sum(),
                   kPerThread * (kThreads * (kThreads + 1)) / 2.0);
}

TEST(RegistryTest, SameNameAndLabelsReturnsSameObject) {
  Registry registry;
  Counter* a = registry.GetCounter("cloudsurv_test_total", "help");
  Counter* b = registry.GetCounter("cloudsurv_test_total", "help");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, DifferentLabelsAreDistinctSeries) {
  Registry registry;
  Counter* a = registry.GetCounter("cloudsurv_test_total", "help", "",
                                   {{"shard", "0"}});
  Counter* b = registry.GetCounter("cloudsurv_test_total", "help", "",
                                   {{"shard", "1"}});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  a->Increment(3);
  b->Increment(7);
  EXPECT_EQ(a->Value(), 3u);
  EXPECT_EQ(b->Value(), 7u);
}

TEST(RegistryTest, LabelOrderDoesNotMatter) {
  Registry registry;
  Gauge* a = registry.GetGauge("cloudsurv_test_gauge", "help", "",
                               {{"a", "1"}, {"b", "2"}});
  Gauge* b = registry.GetGauge("cloudsurv_test_gauge", "help", "",
                               {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, TypeMismatchReturnsNull) {
  Registry registry;
  ASSERT_NE(registry.GetCounter("cloudsurv_test_metric", "help"), nullptr);
  EXPECT_EQ(registry.GetGauge("cloudsurv_test_metric", "help"), nullptr);
  EXPECT_EQ(registry.GetHistogram("cloudsurv_test_metric", "help"),
            nullptr);
}

TEST(RegistryTest, DefaultIsProcessWideSingleton) {
  EXPECT_EQ(&Registry::Default(), &Registry::Default());
}

TEST(ScopedTimerTest, RecordsIntoTheRightHistogram) {
  Registry registry;
  Histogram* target = registry.GetHistogram("cloudsurv_test_a_us", "help");
  Histogram* other = registry.GetHistogram("cloudsurv_test_b_us", "help");
  {
    ScopedTimer timer(target);
  }
  EXPECT_EQ(target->Count(), 1u);
  EXPECT_EQ(other->Count(), 0u);
}

TEST(ScopedTimerTest, StopDisarmsAndReturnsElapsed) {
  Registry registry;
  Histogram* target = registry.GetHistogram("cloudsurv_test_us", "help");
  ScopedTimer timer(target);
  const double elapsed = timer.Stop();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_EQ(timer.Stop(), 0.0);  // second Stop is a no-op
  EXPECT_EQ(target->Count(), 1u);  // destructor must not double-record
}

TEST(TraceSpanTest, CreatesAndFillsNamedHistogram) {
  Registry registry;
  { TraceSpan span("cloudsurv_test_span", &registry); }
  Histogram* histogram =
      registry.GetHistogram("cloudsurv_test_span_us", "any");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->Count(), 1u);
}

TEST(ExportTest, PrometheusGoldenOutput) {
  Registry registry;
  Counter* counter = registry.GetCounter("cloudsurv_test_events_total",
                                         "Events seen", "events",
                                         {{"shard", "0"}});
  counter->Increment(5);
  Gauge* gauge = registry.GetGauge("cloudsurv_test_depth", "Queue depth");
  gauge->Set(2.5);
  const std::string text = ExportPrometheusText(registry);
  EXPECT_EQ(text,
            "# HELP cloudsurv_test_depth Queue depth\n"
            "# TYPE cloudsurv_test_depth gauge\n"
            "cloudsurv_test_depth 2.5\n"
            "# HELP cloudsurv_test_events_total Events seen [events]\n"
            "# TYPE cloudsurv_test_events_total counter\n"
            "cloudsurv_test_events_total{shard=\"0\"} 5\n");
}

TEST(ExportTest, PrometheusHistogramExpansion) {
  Registry registry;
  Histogram* histogram =
      registry.GetHistogram("cloudsurv_test_latency_us", "Latency");
  histogram->Observe(1.0);
  histogram->Observe(3.0);
  const std::string text = ExportPrometheusText(registry);
  // Cumulative buckets: le="1" holds 1 sample, le="4" and later hold 2.
  EXPECT_NE(text.find("cloudsurv_test_latency_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudsurv_test_latency_us_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudsurv_test_latency_us_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudsurv_test_latency_us_sum 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudsurv_test_latency_us_count 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cloudsurv_test_latency_us histogram\n"),
            std::string::npos);
}

TEST(ExportTest, JsonGoldenOutput) {
  Registry registry;
  registry.GetCounter("cloudsurv_test_total", "help", "events",
                      {{"engine", "0"}})
      ->Increment(7);
  registry.GetHistogram("cloudsurv_test_us", "help")->Observe(2.0);
  const std::string json = ExportJson(registry);
  EXPECT_EQ(json,
            "{\n"
            "  \"metrics\": [\n"
            "    {\"name\": \"cloudsurv_test_total\", \"type\": "
            "\"counter\", \"labels\": {\"engine\": \"0\"}, "
            "\"value\": 7},\n"
            "    {\"name\": \"cloudsurv_test_us\", \"type\": "
            "\"histogram\", \"labels\": {}, \"count\": 1, \"sum\": 2, "
            "\"p50\": 1.5, \"p99\": 1.99}\n"
            "  ]\n"
            "}\n");
}

TEST(ExportTest, LabelValuesAreEscaped) {
  Registry registry;
  registry.GetCounter("cloudsurv_test_total", "help", "",
                      {{"path", "a\"b\\c"}});
  const std::string text = ExportPrometheusText(registry);
  EXPECT_NE(text.find("{path=\"a\\\"b\\\\c\"}"), std::string::npos);
}

}  // namespace
}  // namespace cloudsurv::obs
