// Unit tests for the columnar telemetry storage layer: string
// interning, segment sealing, bit-identity of the columnar accessors
// against an independent struct-of-vectors materialization of the same
// event log, CSV round-trips, streaming-vs-batch store identity and
// the Reserve() no-reallocation guarantee. See docs/telemetry.md.

#include <cstdio>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "gtest/gtest.h"
#include "simulator/simulator.h"
#include "simulator/stream.h"
#include "telemetry/columnar.h"
#include "telemetry/store.h"
#include "telemetry/types.h"
#include "tests/test_util.h"

namespace cloudsurv::telemetry {
namespace {

#define ASSERT_RESULT_OK(r) ASSERT_TRUE((r).ok()) << (r).status()

TEST(StringPoolTest, InterningRoundTrip) {
  columnar::StringPool pool;
  const uint32_t a = pool.Intern("server-001");
  const uint32_t b = pool.Intern("orders");
  const uint32_t a2 = pool.Intern("server-001");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.View(a), "server-001");
  EXPECT_EQ(pool.View(b), "orders");
  EXPECT_EQ(pool.Intern(""), pool.Intern(""));
  EXPECT_EQ(pool.View(pool.Intern("")), "");
}

TEST(StringPoolTest, ViewsStableAcrossChunkGrowthAndRehash) {
  columnar::StringPool pool;
  // Interned early; must stay valid after the pool grows past several
  // 256KB chunks and rehashes its bucket table many times.
  const uint32_t first = pool.Intern("pinned-name");
  const std::string_view pinned = pool.View(first);

  std::vector<uint32_t> ids;
  const std::string filler(1000, 'x');
  for (int i = 0; i < 2000; ++i) {
    ids.push_back(pool.Intern(filler + std::to_string(i)));
  }
  EXPECT_EQ(pool.size(), 2001u);
  EXPECT_EQ(pinned, "pinned-name");
  EXPECT_EQ(pool.View(first).data(), pinned.data());
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(pool.View(ids[i]), filler + std::to_string(i));
  }
  // Duplicate interns after growth still dedupe.
  EXPECT_EQ(pool.Intern("pinned-name"), first);
}

TEST(IdMapTest, InsertFindAndMissing) {
  columnar::IdMap map;
  for (uint64_t k = 0; k < 5000; ++k) {
    map.Insert(k * 2654435761u + 17, static_cast<uint32_t>(k));
  }
  EXPECT_EQ(map.size(), 5000u);
  for (uint64_t k = 0; k < 5000; ++k) {
    EXPECT_EQ(map.Find(k * 2654435761u + 17), static_cast<uint32_t>(k));
  }
  EXPECT_EQ(map.Find(999999999999ull), columnar::IdMap::kNotFound);
}

// ---------------------------------------------------------------------
// Segment sealing.

TelemetryStore MakeDayPartitionedStore() {
  HolidayCalendar holidays;
  TelemetryStore::Options options;
  options.partition_seconds = kSecondsPerDay;
  return TelemetryStore("SegTest", 0, holidays, MakeTimestamp(2017, 1, 1),
                        MakeTimestamp(2017, 3, 1), options);
}

TEST(SegmentTest, AppendsSealOnPartitionBoundaries) {
  TelemetryStore store = MakeDayPartitionedStore();
  const Timestamp t0 = store.window_start();
  // Ten days of events, a few per day -> nine sealed segments plus the
  // active one.
  for (int day = 0; day < 10; ++day) {
    const Timestamp ts = t0 + day * kSecondsPerDay + 3600;
    DatabaseCreatedPayload payload;
    payload.server_id = 7;
    payload.server_name = "srv";
    payload.database_name = "db" + std::to_string(day);
    payload.slo_index = 0;
    ASSERT_OK(store.Append(
        MakeCreatedEvent(ts, /*db=*/100 + day, /*sub=*/1, payload)));
    ASSERT_OK(store.Append(
        MakeSizeSampleEvent(ts + 60, 100 + day, 1, 10.0 + day)));
  }
  EXPECT_EQ(store.memory().num_segments, 9u);
  EXPECT_EQ(store.num_events(), 20u);
  EXPECT_TRUE(store.readable());

  // Sealed events replay in append order pre-Finalize.
  size_t i = 0;
  for (const Event& event : store.events()) {
    EXPECT_EQ(event.database_id, 100u + i / 2);
    ++i;
  }
  ASSERT_OK(store.Finalize());
  EXPECT_EQ(store.num_databases(), 10u);
}

TEST(SegmentTest, WideTimestampFallbackBeyondU32Span) {
  // A sealed segment stores timestamps as u32 deltas from its earliest
  // event; two databases more than u32 seconds apart inside one giant
  // partition force the wide_ts fallback. Per-record deltas stay tiny,
  // so only the event columns go wide. Values must round-trip exactly.
  HolidayCalendar holidays;
  TelemetryStore::Options options;
  options.partition_seconds = 1ll << 40;
  const Timestamp start = MakeTimestamp(2017, 1, 1);
  const Timestamp far = start + 5'000'000'000ll;  // > u32 seconds later
  TelemetryStore store("WideTest", 0, holidays, start, far + kSecondsPerDay,
                       options);
  DatabaseCreatedPayload payload;
  payload.server_id = 1;
  payload.server_name = "s";
  payload.database_name = "d";
  ASSERT_OK(store.Append(MakeCreatedEvent(start, 1, 1, payload)));
  ASSERT_OK(store.Append(MakeSizeSampleEvent(start + 60, 1, 1, 1.0)));
  ASSERT_OK(store.Append(MakeCreatedEvent(far, 2, 1, payload)));
  ASSERT_OK(store.Append(MakeSizeSampleEvent(far + 60, 2, 1, 2.0)));
  ASSERT_OK(store.Finalize());
  EXPECT_EQ(store.memory().num_segments, 1u);
  EXPECT_EQ(store.events()[2].timestamp, far);
  EXPECT_EQ(store.events()[3].timestamp, far + 60);
}

// ---------------------------------------------------------------------
// Bit-identity against an independent materialization.

/// Reference record assembled with plain structs from the raw event
/// log — the shape the pre-columnar store used. Everything the
/// columnar accessors return must match this bit for bit.
struct RefRecord {
  SubscriptionId sub = kInvalidId;
  ServerId server_id = kInvalidId;
  std::string server_name;
  std::string database_name;
  SubscriptionType type = SubscriptionType::kPayAsYouGo;
  Timestamp created_at = 0;
  std::optional<Timestamp> dropped_at;
  int initial_slo_index = 0;
  std::vector<SloChange> slo_changes;
  std::vector<SizeObservation> size_samples;
};

std::unordered_map<DatabaseId, RefRecord> Materialize(
    const std::vector<Event>& events) {
  std::unordered_map<DatabaseId, RefRecord> out;
  for (const Event& event : events) {
    switch (event.kind()) {
      case EventKind::kDatabaseCreated: {
        const auto& p = std::get<DatabaseCreatedPayload>(event.payload);
        RefRecord& rec = out[event.database_id];
        rec.sub = event.subscription_id;
        rec.server_id = p.server_id;
        rec.server_name = p.server_name;
        rec.database_name = p.database_name;
        rec.type = p.subscription_type;
        rec.created_at = event.timestamp;
        rec.initial_slo_index = p.slo_index;
        break;
      }
      case EventKind::kSloChanged: {
        const auto& p = std::get<SloChangedPayload>(event.payload);
        out[event.database_id].slo_changes.push_back(
            {event.timestamp, p.old_slo_index, p.new_slo_index});
        break;
      }
      case EventKind::kSizeSample: {
        const auto& p = std::get<SizeSamplePayload>(event.payload);
        out[event.database_id].size_samples.push_back(
            {event.timestamp, p.size_mb});
        break;
      }
      case EventKind::kDatabaseDropped:
        out[event.database_id].dropped_at = event.timestamp;
        break;
    }
  }
  return out;
}

void ExpectStoreMatchesReference(
    const TelemetryStore& store,
    const std::unordered_map<DatabaseId, RefRecord>& ref) {
  ASSERT_EQ(store.num_databases(), ref.size());
  for (const DatabaseRecord& rec : store.databases()) {
    auto it = ref.find(rec.id);
    ASSERT_NE(it, ref.end()) << "unknown database " << rec.id;
    const RefRecord& want = it->second;
    EXPECT_EQ(rec.subscription_id, want.sub);
    EXPECT_EQ(rec.server_id, want.server_id);
    EXPECT_EQ(rec.server_name, want.server_name);
    EXPECT_EQ(rec.database_name, want.database_name);
    EXPECT_EQ(rec.subscription_type, want.type);
    EXPECT_EQ(rec.created_at, want.created_at);
    EXPECT_EQ(rec.dropped_at, want.dropped_at);
    EXPECT_EQ(rec.initial_slo_index, want.initial_slo_index);
    ASSERT_EQ(rec.slo_changes.size(), want.slo_changes.size());
    for (size_t i = 0; i < want.slo_changes.size(); ++i) {
      EXPECT_EQ(rec.slo_changes[i].timestamp, want.slo_changes[i].timestamp);
      EXPECT_EQ(rec.slo_changes[i].old_slo_index,
                want.slo_changes[i].old_slo_index);
      EXPECT_EQ(rec.slo_changes[i].new_slo_index,
                want.slo_changes[i].new_slo_index);
    }
    ASSERT_EQ(rec.size_samples.size(), want.size_samples.size());
    for (size_t i = 0; i < want.size_samples.size(); ++i) {
      EXPECT_EQ(rec.size_samples[i].timestamp, want.size_samples[i].timestamp);
      // Bit-identity, not approximate equality.
      EXPECT_EQ(rec.size_samples[i].size_mb, want.size_samples[i].size_mb);
    }
  }
}

TEST(ColumnarIdentityTest, SimulatedRegionMatchesStructMaterialization) {
  auto config = simulator::MakeRegionPreset(2, /*num_subscriptions=*/80, 42);
  ASSERT_RESULT_OK(config);
  auto store = simulator::SimulateRegion(*config);
  ASSERT_RESULT_OK(store);

  std::vector<Event> raw;
  raw.reserve(store->num_events());
  for (const Event& event : store->events()) raw.push_back(event);
  ExpectStoreMatchesReference(*store, Materialize(raw));
}

TEST(ColumnarIdentityTest, OutOfOrderIngestMatchesOrderedIngest) {
  // The same events appended in sorted order (readable live path) and
  // in scrambled order (Finalize sort-and-replay path) must produce
  // identical stores.
  auto config = simulator::MakeRegionPreset(1, 40, 7);
  ASSERT_RESULT_OK(config);
  auto events = simulator::GenerateEventStream(*config);
  ASSERT_RESULT_OK(events);

  HolidayCalendar holidays = config->holidays;
  TelemetryStore ordered(config->name, config->utc_offset_minutes, holidays,
                         config->window_start, config->window_end);
  for (const Event& event : *events) ASSERT_OK(ordered.Append(event));
  EXPECT_TRUE(ordered.readable());
  ASSERT_OK(ordered.Finalize());

  // Deterministic scramble: stride the log.
  TelemetryStore scrambled(config->name, config->utc_offset_minutes, holidays,
                           config->window_start, config->window_end);
  const size_t n = events->size();
  for (size_t stride = 0; stride < 7; ++stride) {
    for (size_t i = stride; i < n; i += 7) {
      ASSERT_OK(scrambled.Append((*events)[i]));
    }
  }
  EXPECT_FALSE(scrambled.readable());
  ASSERT_OK(scrambled.Finalize());

  ASSERT_EQ(ordered.num_events(), scrambled.num_events());
  auto it = scrambled.events().begin();
  for (const Event& a : ordered.events()) {
    const Event b = *it;
    EXPECT_EQ(a.timestamp, b.timestamp);
    EXPECT_EQ(a.database_id, b.database_id);
    EXPECT_EQ(a.kind(), b.kind());
    ++it;
  }
  std::vector<Event> raw(events->begin(), events->end());
  ExpectStoreMatchesReference(scrambled, Materialize(raw));
}

// ---------------------------------------------------------------------
// CSV round-trip.

TEST(ColumnarCsvTest, ImportEquivalentToDirectIngest) {
  auto config = simulator::MakeRegionPreset(3, 50, 11);
  ASSERT_RESULT_OK(config);
  auto store = simulator::SimulateRegion(*config);
  ASSERT_RESULT_OK(store);

  const std::string csv = store->ExportCsv();
  auto imported = TelemetryStore::ImportCsv(
      csv, store->region_name(), store->utc_offset_minutes(),
      store->holidays(), store->window_start(), store->window_end());
  ASSERT_RESULT_OK(imported);
  EXPECT_TRUE(imported->finalized());
  ASSERT_EQ(imported->num_events(), store->num_events());
  ASSERT_EQ(imported->num_databases(), store->num_databases());

  // The CSV interchange format carries size samples at three decimal
  // places; quantize the reference the same way. Everything else must
  // survive the round trip bit for bit.
  std::vector<Event> raw;
  for (const Event& event : store->events()) raw.push_back(event);
  for (Event& event : raw) {
    if (event.kind() == EventKind::kSizeSample) {
      auto& p = std::get<SizeSamplePayload>(event.payload);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.3f", p.size_mb);
      p.size_mb = std::stod(buf);
    }
  }
  ExpectStoreMatchesReference(*imported, Materialize(raw));

  // A second export is a fixed point: byte-identical to the first.
  EXPECT_EQ(imported->ExportCsv(), csv);
}

// ---------------------------------------------------------------------
// Streaming generation vs batch simulation.

TEST(StreamingTest, PartitionedStreamRebuildsBatchStore) {
  auto config = simulator::MakeRegionPreset(1, 60, 2017);
  ASSERT_RESULT_OK(config);
  auto batch = simulator::SimulateRegion(*config);
  ASSERT_RESULT_OK(batch);

  auto stream = simulator::RegionEventStream::Open(*config);
  ASSERT_RESULT_OK(stream);
  TelemetryStore rebuilt(config->name, config->utc_offset_minutes,
                         config->holidays, config->window_start,
                         config->window_end);
  Timestamp last_end = config->window_start;
  while (!stream->Done()) {
    simulator::RegionEventStream::Partition part = stream->NextPartition();
    EXPECT_GE(part.begin, last_end - 1);  // partitions advance
    last_end = part.end;
    rebuilt.Reserve(part.events.size());
    ASSERT_OK(rebuilt.AppendEvents(std::move(part.events)));
    EXPECT_TRUE(rebuilt.readable());
  }
  ASSERT_OK(rebuilt.Finalize());

  ASSERT_EQ(rebuilt.num_events(), batch->num_events());
  ASSERT_EQ(rebuilt.num_databases(), batch->num_databases());
  auto it = rebuilt.events().begin();
  for (const Event& a : batch->events()) {
    const Event b = *it;
    EXPECT_EQ(a.timestamp, b.timestamp);
    EXPECT_EQ(a.database_id, b.database_id);
    EXPECT_EQ(a.subscription_id, b.subscription_id);
    EXPECT_EQ(a.kind(), b.kind());
    ++it;
  }
  std::vector<Event> raw;
  for (const Event& event : batch->events()) raw.push_back(event);
  ExpectStoreMatchesReference(rebuilt, Materialize(raw));
}

// ---------------------------------------------------------------------
// Reserve() and the no-reallocation guarantee.

TEST(ReserveTest, BulkAppendAfterReserveNeverReallocates) {
  auto config = simulator::MakeRegionPreset(2, 60, 5);
  ASSERT_RESULT_OK(config);
  auto events = simulator::GenerateEventStream(*config);
  ASSERT_RESULT_OK(events);

  TelemetryStore store(config->name, config->utc_offset_minutes,
                       config->holidays, config->window_start,
                       config->window_end);
  store.Reserve(events->size());
  ASSERT_OK(store.AppendEvents(std::move(*events)));
  EXPECT_EQ(store.memory().column_reallocs, 0u);
  ASSERT_OK(store.Finalize());
  EXPECT_EQ(store.memory().column_reallocs, 0u);
}

TEST(ReserveTest, MemoryStatsComponentsSumToTotal) {
  auto config = simulator::MakeRegionPreset(1, 40, 3);
  ASSERT_RESULT_OK(config);
  auto store = simulator::SimulateRegion(*config);
  ASSERT_RESULT_OK(store);
  const TelemetryStore::MemoryStats m = store->memory();
  EXPECT_EQ(m.total_bytes, m.event_bytes + m.record_bytes +
                               m.string_pool_bytes + m.index_bytes);
  EXPECT_GT(m.event_bytes, 0u);
  EXPECT_GT(m.record_bytes, 0u);
  EXPECT_GT(m.string_pool_bytes, 0u);
}

}  // namespace
}  // namespace cloudsurv::telemetry
