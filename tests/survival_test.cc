#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "survival/kaplan_meier.h"
#include "survival/life_table.h"
#include "survival/logrank.h"
#include "survival/nelson_aalen.h"
#include "survival/survival_data.h"

namespace cloudsurv::survival {
namespace {

SurvivalData MakeData(const std::vector<double>& durations,
                      const std::vector<bool>& observed) {
  auto d = SurvivalData::FromArrays(durations, observed);
  EXPECT_TRUE(d.ok()) << d.status();
  return *d;
}

TEST(SurvivalDataTest, ValidationAndCounts) {
  EXPECT_FALSE(SurvivalData::FromArrays({1.0, -1.0}, {true, true}).ok());
  EXPECT_FALSE(SurvivalData::FromArrays({1.0}, {true, false}).ok());
  EXPECT_FALSE(
      SurvivalData::FromArrays({std::nan("")}, {true}).ok());
  const SurvivalData d = MakeData({1, 2, 3}, {true, false, true});
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.num_events(), 2u);
  EXPECT_EQ(d.num_censored(), 1u);
  EXPECT_DOUBLE_EQ(d.max_duration(), 3.0);
}

TEST(KaplanMeierTest, NoCensoringMatchesEmpiricalSurvival) {
  // All events at 1, 2, 3, 4: S(t) steps down by 1/4 each time.
  const SurvivalData d = MakeData({1, 2, 3, 4}, {true, true, true, true});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  EXPECT_DOUBLE_EQ(km->SurvivalAt(0.5), 1.0);
  EXPECT_DOUBLE_EQ(km->SurvivalAt(1.0), 0.75);
  EXPECT_DOUBLE_EQ(km->SurvivalAt(2.5), 0.50);
  EXPECT_DOUBLE_EQ(km->SurvivalAt(3.0), 0.25);
  EXPECT_DOUBLE_EQ(km->SurvivalAt(10.0), 0.0);
}

TEST(KaplanMeierTest, ClassicTextbookExample) {
  // The standard worked example (e.g. Kleinbaum & Klein):
  // times 6,6,6,7,10 with censoring at 6(c),9(c),10(c),11(c).
  // Group: 6,6,6,6+,7,9+,10,10+,11+ — remission data subset.
  const SurvivalData d = MakeData({6, 6, 6, 6, 7, 9, 10, 10, 11},
                                  {true, true, true, false, true, false,
                                   true, false, false});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  // At t=6: n=9, d=3 -> S = 1 - 3/9 = 2/3.
  EXPECT_NEAR(km->SurvivalAt(6.0), 2.0 / 3.0, 1e-12);
  // At t=7: n=5 (9 - 3 events - 1 censored at 6), d=1 -> S = 2/3 * 4/5.
  EXPECT_NEAR(km->SurvivalAt(7.0), 2.0 / 3.0 * 4.0 / 5.0, 1e-12);
  // At t=10: n=3, d=1 -> S = 2/3 * 4/5 * 2/3.
  EXPECT_NEAR(km->SurvivalAt(10.5), 2.0 / 3.0 * 4.0 / 5.0 * 2.0 / 3.0,
              1e-12);
}

TEST(KaplanMeierTest, CensoredTailKeepsCurveAboveZero) {
  const SurvivalData d =
      MakeData({1, 2, 5, 5, 5}, {true, true, false, false, false});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  EXPECT_NEAR(km->SurvivalAt(100.0), 0.6, 1e-12);
}

TEST(KaplanMeierTest, EmptyDataRejected) {
  EXPECT_FALSE(KaplanMeierCurve::Fit(SurvivalData()).ok());
}

TEST(KaplanMeierTest, InvalidConfidenceRejected) {
  const SurvivalData d = MakeData({1}, {true});
  EXPECT_FALSE(KaplanMeierCurve::Fit(d, 0.0).ok());
  EXPECT_FALSE(KaplanMeierCurve::Fit(d, 1.0).ok());
}

TEST(KaplanMeierTest, GreenwoodErrorGrowsOverTime) {
  Rng rng(5);
  std::vector<double> t;
  std::vector<bool> e;
  for (int i = 0; i < 500; ++i) {
    t.push_back(rng.Exponential(0.1));
    e.push_back(true);
  }
  auto km = KaplanMeierCurve::Fit(MakeData(t, e));
  ASSERT_TRUE(km.ok());
  const auto& steps = km->steps();
  // Standard error starts near 0 and is larger mid-curve.
  EXPECT_LT(steps.front().std_error, steps[steps.size() / 2].std_error);
}

TEST(KaplanMeierTest, ConfidenceIntervalsBracketEstimate) {
  const SurvivalData d = MakeData({6, 6, 6, 6, 7, 9, 10, 10, 11},
                                  {true, true, true, false, true, false,
                                   true, false, false});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  for (const auto& step : km->steps()) {
    EXPECT_GE(step.ci_upper, step.survival - 1e-12);
    EXPECT_LE(step.ci_lower, step.survival + 1e-12);
    EXPECT_GE(step.ci_lower, 0.0);
    EXPECT_LE(step.ci_upper, 1.0);
  }
}

TEST(KaplanMeierTest, MedianAndPercentiles) {
  const SurvivalData d =
      MakeData({1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
               std::vector<bool>(10, true));
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  ASSERT_TRUE(km->MedianTime().has_value());
  EXPECT_DOUBLE_EQ(*km->MedianTime(), 5.0);
  EXPECT_DOUBLE_EQ(*km->PercentileTime(0.2), 2.0);
}

TEST(KaplanMeierTest, MedianUndefinedUnderHeavyCensoring) {
  const SurvivalData d =
      MakeData({1, 10, 10, 10}, {true, false, false, false});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  EXPECT_FALSE(km->MedianTime().has_value());
}

TEST(KaplanMeierTest, RestrictedMeanOfStepCurve) {
  // S=1 on [0,1), 0.5 on [1,2), 0 beyond 2.
  const SurvivalData d = MakeData({1, 2}, {true, true});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  EXPECT_DOUBLE_EQ(km->RestrictedMean(2.0), 1.5);
  EXPECT_DOUBLE_EQ(km->RestrictedMean(3.0), 1.5);
  EXPECT_DOUBLE_EQ(km->RestrictedMean(0.5), 0.5);
}

TEST(KaplanMeierTest, EvaluateGridMatchesSurvivalAt) {
  const SurvivalData d = MakeData({1, 2, 3}, {true, true, false});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  const auto grid = km->Evaluate(3.0, 7);
  ASSERT_EQ(grid.size(), 7u);
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid[i], km->SurvivalAt(3.0 * i / 6.0));
  }
}

TEST(KaplanMeierTest, ToTableContainsHeader) {
  const SurvivalData d = MakeData({1, 2}, {true, true});
  auto km = KaplanMeierCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  EXPECT_NE(km->ToTable().find("at_risk"), std::string::npos);
}

/// Property: without censoring, KM equals the empirical survival
/// function at every sample point. Parameterized over sample sizes.
class KmEmpiricalTest : public ::testing::TestWithParam<int> {};

TEST_P(KmEmpiricalTest, MatchesEmpiricalWithoutCensoring) {
  const int n = GetParam();
  Rng rng(42 + n);
  std::vector<double> t;
  for (int i = 0; i < n; ++i) t.push_back(rng.Weibull(1.3, 5.0));
  auto km = KaplanMeierCurve::Fit(MakeData(t, std::vector<bool>(n, true)));
  ASSERT_TRUE(km.ok());
  std::sort(t.begin(), t.end());
  for (int i = 0; i < n; ++i) {
    const double expected =
        static_cast<double>(n - i - 1) / static_cast<double>(n);
    EXPECT_NEAR(km->SurvivalAt(t[i]), expected, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, KmEmpiricalTest,
                         ::testing::Values(3, 10, 57, 200));

TEST(NelsonAalenTest, HandComputedHazard) {
  const SurvivalData d = MakeData({1, 2, 3}, {true, true, true});
  auto na = NelsonAalenCurve::Fit(d);
  ASSERT_TRUE(na.ok());
  EXPECT_NEAR(na->CumulativeHazardAt(1.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(na->CumulativeHazardAt(2.0), 1.0 / 3.0 + 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(na->CumulativeHazardAt(3.0), 1.0 / 3.0 + 1.0 / 2.0 + 1.0,
              1e-12);
  EXPECT_DOUBLE_EQ(na->CumulativeHazardAt(0.5), 0.0);
}

TEST(NelsonAalenTest, ExpMinusHazardApproximatesKm) {
  Rng rng(8);
  std::vector<double> t;
  std::vector<bool> e;
  for (int i = 0; i < 2000; ++i) {
    t.push_back(rng.Exponential(0.2));
    e.push_back(rng.Uniform() < 0.8);
  }
  const SurvivalData d = MakeData(t, e);
  auto km = KaplanMeierCurve::Fit(d);
  auto na = NelsonAalenCurve::Fit(d);
  ASSERT_TRUE(km.ok());
  ASSERT_TRUE(na.ok());
  for (double x : {1.0, 3.0, 5.0}) {
    EXPECT_NEAR(std::exp(-na->CumulativeHazardAt(x)), km->SurvivalAt(x),
                0.02);
  }
}

TEST(NelsonAalenTest, SmoothedHazardDetectsSpike) {
  // Flat exponential hazard plus a spike of deaths at t=120.
  Rng rng(9);
  std::vector<double> t;
  std::vector<bool> e;
  for (int i = 0; i < 3000; ++i) {
    t.push_back(rng.Uniform(0.0, 200.0));  // uniform deaths, low hazard
    e.push_back(true);
  }
  for (int i = 0; i < 600; ++i) {
    t.push_back(119.0 + rng.Uniform() * 2.0);
    e.push_back(true);
  }
  auto na = NelsonAalenCurve::Fit(MakeData(t, e));
  ASSERT_TRUE(na.ok());
  EXPECT_GT(na->SmoothedHazard(120.0, 2.0), 2.0 * na->SmoothedHazard(60.0, 2.0));
}

TEST(LogRankTest, IdenticalGroupsNotSignificant) {
  Rng rng(10);
  std::vector<double> ta, tb;
  std::vector<bool> ea, eb;
  for (int i = 0; i < 400; ++i) {
    ta.push_back(rng.Weibull(1.2, 10.0));
    ea.push_back(rng.Uniform() < 0.8);
    tb.push_back(rng.Weibull(1.2, 10.0));
    eb.push_back(rng.Uniform() < 0.8);
  }
  auto result = LogRankTest(MakeData(ta, ea), MakeData(tb, eb));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->p_value, 0.01);
  EXPECT_DOUBLE_EQ(result->degrees_of_freedom, 1.0);
}

TEST(LogRankTest, SeparatedGroupsHighlySignificant) {
  Rng rng(11);
  std::vector<double> ta, tb;
  for (int i = 0; i < 300; ++i) {
    ta.push_back(rng.Exponential(1.0));        // mean 1
    tb.push_back(rng.Exponential(1.0 / 5.0));  // mean 5
  }
  auto result = LogRankTest(MakeData(ta, std::vector<bool>(300, true)),
                            MakeData(tb, std::vector<bool>(300, true)));
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_value, 1e-7);
  EXPECT_GT(result->statistic, 30.0);
  EXPECT_TRUE(result->significant_at_05());
}

TEST(LogRankTest, HandComputedTwoSample) {
  // Group A: events at 1, 2; Group B: events at 3, 4.
  // Time 1: n=4 (2,2), d=1 in A. E_A = 1*2/4 = 0.5, V = (2*2*1*3)/(16*3)=0.25
  // Time 2: n=3 (1,2), d=1 in A. E_A = 1/3, V = (1*2*1*2)/(9*2) = 2/9
  // Time 3: n=2 (0,2), d=1 in B. E_A = 0, V = 0
  // Time 4: n=1, no variance.
  // O_A - E_A = 2 - 5/6 = 7/6; Var = 0.25 + 2/9 = 17/36.
  // Chi2 = (7/6)^2 / (17/36) = (49/36)*(36/17) = 49/17 = 2.882.
  auto result = LogRankTest(MakeData({1, 2}, {true, true}),
                            MakeData({3, 4}, {true, true}));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->statistic, 49.0 / 17.0, 1e-10);
  EXPECT_NEAR(result->observed[0], 2.0, 1e-12);
  EXPECT_NEAR(result->expected[0], 5.0 / 6.0, 1e-12);
}

TEST(LogRankTest, ObservedAndExpectedTotalsMatch) {
  Rng rng(12);
  std::vector<double> ta, tb;
  std::vector<bool> ea, eb;
  for (int i = 0; i < 200; ++i) {
    ta.push_back(rng.Exponential(0.5));
    ea.push_back(rng.Uniform() < 0.7);
    tb.push_back(rng.Exponential(0.3));
    eb.push_back(rng.Uniform() < 0.7);
  }
  auto result = LogRankTest(MakeData(ta, ea), MakeData(tb, eb));
  ASSERT_TRUE(result.ok());
  const double observed_total = result->observed[0] + result->observed[1];
  const double expected_total = result->expected[0] + result->expected[1];
  EXPECT_NEAR(observed_total, expected_total, 1e-9);
}

TEST(LogRankTest, RejectsDegenerateInputs) {
  const SurvivalData d = MakeData({1, 2}, {true, true});
  EXPECT_FALSE(KSampleLogRankTest({d}).ok());
  EXPECT_FALSE(LogRankTest(d, SurvivalData()).ok());
}

TEST(LogRankTest, ThreeSampleDetectsOneOutlierGroup) {
  Rng rng(13);
  std::vector<SurvivalData> groups;
  for (int g = 0; g < 3; ++g) {
    std::vector<double> t;
    const double scale = g == 2 ? 30.0 : 5.0;
    for (int i = 0; i < 200; ++i) t.push_back(rng.Weibull(1.0, scale));
    groups.push_back(MakeData(t, std::vector<bool>(200, true)));
  }
  auto result = KSampleLogRankTest(groups);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->degrees_of_freedom, 2.0);
  EXPECT_LT(result->p_value, 1e-7);
}

TEST(LogRankTest, WeightingVariantsAgreeOnProportionalHazards) {
  Rng rng(14);
  std::vector<double> ta, tb;
  for (int i = 0; i < 400; ++i) {
    ta.push_back(rng.Exponential(1.0));
    tb.push_back(rng.Exponential(0.5));
  }
  const SurvivalData a = MakeData(ta, std::vector<bool>(400, true));
  const SurvivalData b = MakeData(tb, std::vector<bool>(400, true));
  for (auto w : {LogRankWeighting::kLogRank, LogRankWeighting::kWilcoxon,
                 LogRankWeighting::kPetoPeto}) {
    auto result = LogRankTest(a, b, w);
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->p_value, 1e-6);
  }
}

TEST(StratifiedLogRankTest, SingleStratumMatchesPlainTest) {
  Rng rng(20);
  std::vector<double> ta, tb;
  std::vector<bool> ea, eb;
  for (int i = 0; i < 300; ++i) {
    ta.push_back(rng.Exponential(0.5));
    ea.push_back(rng.Uniform() < 0.8);
    tb.push_back(rng.Exponential(0.3));
    eb.push_back(rng.Uniform() < 0.8);
  }
  const SurvivalData a = MakeData(ta, ea);
  const SurvivalData b = MakeData(tb, eb);
  auto plain = LogRankTest(a, b);
  auto stratified = StratifiedLogRankTest({{a, b}});
  ASSERT_TRUE(plain.ok() && stratified.ok());
  EXPECT_NEAR(stratified->statistic, plain->statistic, 1e-9);
  EXPECT_NEAR(stratified->p_value, plain->p_value, 1e-9);
}

TEST(StratifiedLogRankTest, ControlsForConfoundedStrata) {
  // Two strata with very different baseline hazards but NO group
  // effect within either stratum. A pooled (unstratified) test can be
  // fooled when group sizes differ across strata; the stratified test
  // must stay insignificant.
  Rng rng(21);
  std::vector<std::pair<SurvivalData, SurvivalData>> strata;
  std::vector<double> pooled_a_t, pooled_b_t;
  std::vector<bool> pooled_a_e, pooled_b_e;
  for (int s = 0; s < 2; ++s) {
    const double rate = s == 0 ? 1.0 : 0.05;  // fast vs slow stratum
    // Group A over-represented in the fast stratum, B in the slow one.
    const int n_a = s == 0 ? 400 : 100;
    const int n_b = s == 0 ? 100 : 400;
    std::vector<double> ta, tb;
    for (int i = 0; i < n_a; ++i) ta.push_back(rng.Exponential(rate));
    for (int i = 0; i < n_b; ++i) tb.push_back(rng.Exponential(rate));
    pooled_a_t.insert(pooled_a_t.end(), ta.begin(), ta.end());
    pooled_b_t.insert(pooled_b_t.end(), tb.begin(), tb.end());
    pooled_a_e.insert(pooled_a_e.end(), ta.size(), true);
    pooled_b_e.insert(pooled_b_e.end(), tb.size(), true);
    strata.emplace_back(MakeData(ta, std::vector<bool>(ta.size(), true)),
                        MakeData(tb, std::vector<bool>(tb.size(), true)));
  }
  auto stratified = StratifiedLogRankTest(strata);
  ASSERT_TRUE(stratified.ok());
  EXPECT_GT(stratified->p_value, 0.01);  // no within-stratum effect

  // The naive pooled test is badly confounded (A looks short-lived).
  auto pooled = LogRankTest(MakeData(pooled_a_t, pooled_a_e),
                            MakeData(pooled_b_t, pooled_b_e));
  ASSERT_TRUE(pooled.ok());
  EXPECT_LT(pooled->p_value, 1e-7);
}

TEST(StratifiedLogRankTest, DetectsConsistentEffect) {
  Rng rng(22);
  std::vector<std::pair<SurvivalData, SurvivalData>> strata;
  for (int s = 0; s < 3; ++s) {
    const double base = 0.1 * (s + 1);
    std::vector<double> ta, tb;
    for (int i = 0; i < 200; ++i) {
      ta.push_back(rng.Exponential(base * 2.0));  // A dies faster
      tb.push_back(rng.Exponential(base));
    }
    strata.emplace_back(MakeData(ta, std::vector<bool>(200, true)),
                        MakeData(tb, std::vector<bool>(200, true)));
  }
  auto result = StratifiedLogRankTest(strata);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->p_value, 1e-7);
  EXPECT_GT(result->observed[0], result->expected[0]);
}

TEST(StratifiedLogRankTest, RejectsInvalidInputs) {
  EXPECT_FALSE(StratifiedLogRankTest({}).ok());
  const SurvivalData d = MakeData({1, 2}, {true, true});
  EXPECT_FALSE(StratifiedLogRankTest({{d, SurvivalData()}}).ok());
}

TEST(LifeTableTest, HandComputedRows) {
  // 10 subjects; 2 events in [0,10), 1 censored in [0,10).
  std::vector<double> t = {1, 5, 7, 12, 15, 15, 15, 15, 15, 15};
  std::vector<bool> e = {true, true, false, true, false, false,
                         false, false, false, false};
  auto table = LifeTable::Build(
      *SurvivalData::FromArrays(t, e), 10.0, 20.0);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows().size(), 2u);
  const LifeTableRow& r0 = table->rows()[0];
  EXPECT_EQ(r0.entering, 10u);
  EXPECT_EQ(r0.events, 2u);
  EXPECT_EQ(r0.censored, 1u);
  EXPECT_DOUBLE_EQ(r0.effective_at_risk, 9.5);
  EXPECT_NEAR(r0.conditional_survival, 1.0 - 2.0 / 9.5, 1e-12);
  const LifeTableRow& r1 = table->rows()[1];
  EXPECT_EQ(r1.entering, 7u);
  EXPECT_EQ(r1.events, 1u);
  // 6 censored in [10,20): one at 15 (x6)... all six 15s are censored.
  EXPECT_EQ(r1.censored, 6u);
}

TEST(LifeTableTest, SurvivalMonotone) {
  Rng rng(15);
  std::vector<double> t;
  std::vector<bool> e;
  for (int i = 0; i < 1000; ++i) {
    t.push_back(rng.Weibull(1.0, 20.0));
    e.push_back(rng.Uniform() < 0.7);
  }
  auto table =
      LifeTable::Build(*SurvivalData::FromArrays(t, e), 7.0, 140.0);
  ASSERT_TRUE(table.ok());
  double prev = 1.0;
  for (const auto& row : table->rows()) {
    EXPECT_LE(row.cumulative_survival, prev + 1e-12);
    prev = row.cumulative_survival;
  }
  EXPECT_NE(table->ToText().find("hazard"), std::string::npos);
}

TEST(LifeTableTest, RejectsInvalidArguments) {
  const SurvivalData d = *SurvivalData::FromArrays({1.0}, {true});
  EXPECT_FALSE(LifeTable::Build(d, 0.0, 10.0).ok());
  EXPECT_FALSE(LifeTable::Build(d, 1.0, 0.0).ok());
  EXPECT_FALSE(LifeTable::Build(SurvivalData(), 1.0, 10.0).ok());
}

TEST(LifeTableTest, AgreesWithKmRoughly) {
  Rng rng(16);
  std::vector<double> t;
  std::vector<bool> e;
  for (int i = 0; i < 3000; ++i) {
    t.push_back(rng.Weibull(1.2, 30.0));
    e.push_back(true);
  }
  const SurvivalData d = *SurvivalData::FromArrays(t, e);
  auto km = KaplanMeierCurve::Fit(d);
  auto table = LifeTable::Build(d, 5.0, 100.0);
  ASSERT_TRUE(km.ok());
  ASSERT_TRUE(table.ok());
  for (double x : {10.0, 30.0, 60.0}) {
    EXPECT_NEAR(table->SurvivalAt(x), km->SurvivalAt(x), 0.03);
  }
}

}  // namespace
}  // namespace cloudsurv::survival
