#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/decision_tree.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"

namespace cloudsurv::ml {
namespace {

Dataset RandomData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    rows.push_back({rng.Normal(label * 1.5, 1.0), rng.Uniform(),
                    rng.Uniform(-3.0, 3.0)});
    labels.push_back(label);
  }
  return *Dataset::Make({"a", "b", "c"}, std::move(rows),
                        std::move(labels));
}

TEST(TreeSerializationTest, ExactRoundTrip) {
  const Dataset d = RandomData(400, 1);
  DecisionTreeClassifier tree;
  TreeParams params;
  params.max_depth = 8;
  ASSERT_TRUE(tree.Fit(d, params, 1).ok());

  auto restored = DecisionTreeClassifier::Deserialize(tree.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_nodes(), tree.num_nodes());
  EXPECT_EQ(restored->depth(), tree.depth());
  EXPECT_EQ(restored->num_classes(), tree.num_classes());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    const auto p1 = tree.PredictProba(d.row(i));
    const auto p2 = restored->PredictProba(d.row(i));
    ASSERT_EQ(p1.size(), p2.size());
    for (size_t c = 0; c < p1.size(); ++c) {
      EXPECT_DOUBLE_EQ(p1[c], p2[c]);
    }
  }
  const auto& imp1 = tree.feature_importances();
  const auto& imp2 = restored->feature_importances();
  for (size_t f = 0; f < imp1.size(); ++f) {
    EXPECT_DOUBLE_EQ(imp1[f], imp2[f]);
  }
}

TEST(TreeSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(DecisionTreeClassifier::Deserialize("").ok());
  EXPECT_FALSE(DecisionTreeClassifier::Deserialize("not a tree").ok());
  EXPECT_FALSE(
      DecisionTreeClassifier::Deserialize("tree 2 3 1 1\n9 0.5 99 99 0\n")
          .ok());
}

TEST(ForestSerializationTest, ExactRoundTrip) {
  const Dataset d = RandomData(500, 2);
  RandomForestClassifier forest;
  ForestParams params;
  params.num_trees = 12;
  params.max_depth = 8;
  ASSERT_TRUE(forest.Fit(d, params, 2).ok());

  const std::string blob = forest.Serialize();
  auto restored = RandomForestClassifier::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_trees(), forest.num_trees());
  EXPECT_DOUBLE_EQ(restored->oob_accuracy(), forest.oob_accuracy());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(restored->PredictProba(d.row(i))[1],
                     forest.PredictProba(d.row(i))[1]);
  }
  // Serialization is stable (same blob twice).
  EXPECT_EQ(restored->Serialize(), blob);
}

TEST(ForestSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(RandomForestClassifier::Deserialize("").ok());
  EXPECT_FALSE(RandomForestClassifier::Deserialize(
                   "forest 2 2 3 0.5\nimportances 0 0 0\n")
                   .ok());  // missing trees
}

TEST(GbdtSerializationTest, ExactRoundTrip) {
  const Dataset d = RandomData(500, 3);
  GradientBoostedTreesClassifier model;
  GbdtParams params;
  params.num_rounds = 25;
  ASSERT_TRUE(model.Fit(d, params, 3).ok());

  const std::string blob = model.Serialize();
  auto restored = GradientBoostedTreesClassifier::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->num_trees(), model.num_trees());
  for (size_t i = 0; i < d.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(restored->PredictLogit(d.row(i)),
                     model.PredictLogit(d.row(i)));
  }
  EXPECT_EQ(restored->Serialize(), blob);
}

TEST(GbdtSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(GradientBoostedTreesClassifier::Deserialize("").ok());
  EXPECT_FALSE(GradientBoostedTreesClassifier::Deserialize(
                   "gbdt 1 3 0.0\nimportances 0 0 0\ngtree 1\n5 0 -1 -1 0\n")
                   .ok());  // feature index out of range
}

}  // namespace
}  // namespace cloudsurv::ml
