#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/binned_dataset.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace cloudsurv::ml {
namespace {

// Every feature takes values on a small grid (< 256 distinct values),
// so the binned view has one bin per distinct value and the histogram
// search evaluates exactly the candidate cuts the exact search does.
Dataset GridValuedData(int n, int grid_size, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const double x0 =
        static_cast<double>(rng.UniformInt(0, grid_size - 1)) / grid_size;
    const double x1 =
        static_cast<double>(rng.UniformInt(0, grid_size - 1)) / grid_size;
    const double x2 =
        static_cast<double>(rng.UniformInt(0, grid_size - 1)) / grid_size;
    rows.push_back({x0, x1, x2});
    labels.push_back((x0 + 0.3 * x1 > 0.6) ? 1 : 0);
  }
  auto d = Dataset::Make({"a", "b", "c"}, std::move(rows),
                         std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

// Continuous data with far more than 256 distinct values per feature.
Dataset ContinuousData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    rows.push_back({rng.Normal(label * 1.5, 1.0), rng.Normal(0.0, 1.0)});
    labels.push_back(label);
  }
  auto d = Dataset::Make({"x", "noise"}, std::move(rows),
                         std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(BinnedDatasetTest, OneBinPerDistinctValueWhenFewDistinct) {
  auto d = Dataset::Make({"x"}, {{1.0}, {2.0}, {2.0}, {5.0}, {1.0}},
                         {0, 1, 1, 0, 0});
  ASSERT_TRUE(d.ok());
  auto binned = BinnedDataset::FromDataset(*d);
  ASSERT_TRUE(binned.ok());
  EXPECT_EQ(binned->num_rows(), 5u);
  EXPECT_EQ(binned->num_features(), 1u);
  EXPECT_EQ(binned->num_bins(0), 3);  // distinct values {1, 2, 5}
  EXPECT_FALSE(binned->constant(0));
  // Codes follow value order.
  EXPECT_EQ(binned->code(0, 0), 0);
  EXPECT_EQ(binned->code(1, 0), 1);
  EXPECT_EQ(binned->code(3, 0), 2);
  EXPECT_EQ(binned->code(4, 0), 0);
}

TEST(BinnedDatasetTest, CodeThresholdInvariant) {
  const Dataset d = ContinuousData(2000, 41);
  auto binned = BinnedDataset::FromDataset(d, /*max_bins=*/16);
  ASSERT_TRUE(binned.ok());
  // value <= threshold(f, b)  <=>  code(row, f) <= b, for every row,
  // feature, and boundary.
  for (size_t f = 0; f < binned->num_features(); ++f) {
    ASSERT_LE(binned->num_bins(f), 16);
    for (size_t r = 0; r < d.num_rows(); ++r) {
      const double v = d.feature(r, f);
      const int code = binned->code(r, f);
      for (int b = 0; b + 1 < binned->num_bins(f); ++b) {
        EXPECT_EQ(v <= binned->threshold(f, b), code <= b)
            << "row " << r << " feature " << f << " boundary " << b;
      }
    }
  }
}

TEST(BinnedDatasetTest, QuantileBinsAreNonEmptyAndBalanced) {
  const Dataset d = ContinuousData(4096, 42);
  auto binned = BinnedDataset::FromDataset(d, /*max_bins=*/8);
  ASSERT_TRUE(binned.ok());
  for (size_t f = 0; f < binned->num_features(); ++f) {
    std::vector<size_t> counts(static_cast<size_t>(binned->num_bins(f)),
                               0);
    for (size_t r = 0; r < d.num_rows(); ++r) {
      counts[binned->code(r, f)]++;
    }
    for (size_t b = 0; b < counts.size(); ++b) {
      EXPECT_GT(counts[b], 0u) << "empty bin " << b << " feature " << f;
      // Quantile rule: no bin hoards the distribution.
      EXPECT_LT(counts[b], d.num_rows() / 2);
    }
  }
}

TEST(BinnedDatasetTest, ConstantFeatureHasSingleBin) {
  auto d = Dataset::Make({"c", "x"},
                         {{7.0, 1.0}, {7.0, 2.0}, {7.0, 3.0}}, {0, 1, 0});
  ASSERT_TRUE(d.ok());
  auto binned = BinnedDataset::FromDataset(*d);
  ASSERT_TRUE(binned.ok());
  EXPECT_TRUE(binned->constant(0));
  EXPECT_EQ(binned->num_bins(0), 1);
  EXPECT_FALSE(binned->constant(1));
}

TEST(BinnedDatasetTest, FromDatasetRowsMatchesMaterializedSubset) {
  const Dataset d = ContinuousData(500, 43);
  std::vector<size_t> rows;
  for (size_t i = 0; i < d.num_rows(); i += 3) rows.push_back(i);
  auto view = BinnedDataset::FromDatasetRows(d, rows, /*max_bins=*/32);
  ASSERT_TRUE(view.ok());
  auto subset = d.Subset(rows);
  ASSERT_TRUE(subset.ok());
  auto copy = BinnedDataset::FromDataset(*subset, /*max_bins=*/32);
  ASSERT_TRUE(copy.ok());
  ASSERT_EQ(view->num_rows(), copy->num_rows());
  for (size_t f = 0; f < view->num_features(); ++f) {
    ASSERT_EQ(view->num_bins(f), copy->num_bins(f));
    for (int b = 0; b + 1 < view->num_bins(f); ++b) {
      EXPECT_DOUBLE_EQ(view->threshold(f, b), copy->threshold(f, b));
    }
    for (size_t r = 0; r < view->num_rows(); ++r) {
      EXPECT_EQ(view->code(r, f), copy->code(r, f));
    }
  }
}

TEST(BinnedDatasetTest, RejectsInvalidInputs) {
  EXPECT_FALSE(BinnedDataset::FromDataset(Dataset()).ok());
  const Dataset d = ContinuousData(20, 44);
  EXPECT_FALSE(BinnedDataset::FromDataset(d, 1).ok());
  EXPECT_FALSE(BinnedDataset::FromDataset(d, 257).ok());
  EXPECT_FALSE(BinnedDataset::FromDatasetRows(d, {999}).ok());
  EXPECT_FALSE(BinnedDataset::FromMatrix(
                   4, 1, [](size_t r, size_t) {
                     return r == 2 ? std::nan("") : 1.0;
                   })
                   .ok());
}

// The two search paths choose the same partitions (same features, same
// row routing) but may serialize different real-valued thresholds deep
// in the tree: the exact search cuts at the midpoint of the node-local
// value gap, while the histogram search reuses the global bin boundary
// inside that gap. Both land in the same gap, so training rows route
// identically; this helper asserts that structural equivalence.
void ExpectStructurallyEqual(const DecisionTreeClassifier& exact,
                             const DecisionTreeClassifier& hist,
                             const Dataset& d) {
  EXPECT_EQ(exact.num_nodes(), hist.num_nodes());
  EXPECT_EQ(exact.depth(), hist.depth());
  const auto& ie = exact.feature_importances();
  const auto& ih = hist.feature_importances();
  ASSERT_EQ(ie.size(), ih.size());
  for (size_t f = 0; f < ie.size(); ++f) {
    EXPECT_DOUBLE_EQ(ie[f], ih[f]) << "feature " << f;
  }
  auto pe = exact.PredictBatch(d);
  auto ph = hist.PredictBatch(d);
  ASSERT_TRUE(pe.ok() && ph.ok());
  EXPECT_EQ(*pe, *ph);
}

TEST(HistogramEquivalenceTest, RootSplitSerializesIdentically) {
  // At the root every global distinct value is present in-node, so the
  // two searches agree on the threshold value too, not just the gap.
  const Dataset d = GridValuedData(600, 40, 49);
  TreeParams exact;
  exact.max_depth = 1;
  exact.split_algorithm = SplitAlgorithm::kExact;
  TreeParams hist = exact;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier te, th;
  ASSERT_TRUE(te.Fit(d, exact, 49).ok());
  ASSERT_TRUE(th.Fit(d, hist, 49).ok());
  EXPECT_EQ(te.Serialize(), th.Serialize());
}

TEST(HistogramEquivalenceTest, TreeMatchesExactOnFewDistinctValues) {
  const Dataset d = GridValuedData(600, 40, 50);
  TreeParams exact;
  exact.split_algorithm = SplitAlgorithm::kExact;
  TreeParams hist;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier te, th;
  ASSERT_TRUE(te.Fit(d, exact, 50).ok());
  ASSERT_TRUE(th.Fit(d, hist, 50).ok());
  ExpectStructurallyEqual(te, th, d);
}

TEST(HistogramEquivalenceTest, TreeMatchesExactWithFeatureSubsampling) {
  const Dataset d = GridValuedData(400, 25, 51);
  TreeParams exact;
  exact.split_algorithm = SplitAlgorithm::kExact;
  exact.max_features = 2;  // randomized feature draw, same rng stream
  TreeParams hist = exact;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier te, th;
  ASSERT_TRUE(te.Fit(d, exact, 51).ok());
  ASSERT_TRUE(th.Fit(d, hist, 51).ok());
  ExpectStructurallyEqual(te, th, d);
}

TEST(HistogramEquivalenceTest, ForestMatchesExactOnFewDistinctValues) {
  const Dataset d = GridValuedData(500, 30, 52);
  ForestParams exact;
  exact.num_trees = 12;
  exact.split_algorithm = SplitAlgorithm::kExact;
  ForestParams hist = exact;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  RandomForestClassifier fe, fh;
  ASSERT_TRUE(fe.Fit(d, exact, 52).ok());
  ASSERT_TRUE(fh.Fit(d, hist, 52).ok());
  // Bagging and per-tree seeds line up, so per-tree partitions — and
  // hence gini importances — are bit-equal. Rows outside a tree's
  // bootstrap sample (OOB, and some rows at predict time) can land in
  // a gap where the two thresholds differ, so those comparisons get a
  // small tolerance.
  EXPECT_EQ(fe.num_trees(), fh.num_trees());
  const auto& ie = fe.feature_importances();
  const auto& ih = fh.feature_importances();
  ASSERT_EQ(ie.size(), ih.size());
  for (size_t f = 0; f < ie.size(); ++f) {
    EXPECT_DOUBLE_EQ(ie[f], ih[f]);
  }
  EXPECT_NEAR(fe.oob_accuracy(), fh.oob_accuracy(), 0.01);
  auto pe = fe.PredictBatch(d);
  auto ph = fh.PredictBatch(d);
  ASSERT_TRUE(pe.ok() && ph.ok());
  size_t agree = 0;
  for (size_t i = 0; i < pe->size(); ++i) {
    agree += (*pe)[i] == (*ph)[i] ? 1 : 0;
  }
  EXPECT_GE(static_cast<double>(agree) / static_cast<double>(pe->size()),
            0.99);
}

TEST(HistogramEquivalenceTest, ClassWeightedSplitsMatchExact) {
  const Dataset d = GridValuedData(500, 30, 53);
  TreeParams exact;
  exact.split_algorithm = SplitAlgorithm::kExact;
  // Power-of-two weights make weighted gini float-exact on both paths.
  exact.class_weights = {4.0, 1.0};
  TreeParams hist = exact;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier te, th;
  ASSERT_TRUE(te.Fit(d, exact, 53).ok());
  ASSERT_TRUE(th.Fit(d, hist, 53).ok());
  ExpectStructurallyEqual(te, th, d);
  // And the weights actually bite: unweighted trees differ.
  TreeParams plain;
  plain.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier tp;
  ASSERT_TRUE(tp.Fit(d, plain, 53).ok());
  EXPECT_NE(tp.Serialize(), th.Serialize());
}

TEST(HistogramEquivalenceTest, AgreesWithExactOnContinuousData) {
  // > 256 distinct values per feature: quantile bins approximate the
  // exact cuts, so trees can differ, but predictions should rarely.
  const Dataset train = ContinuousData(3000, 54);
  const Dataset test = ContinuousData(3000, 55);
  ForestParams exact;
  exact.num_trees = 20;
  exact.max_depth = 10;
  exact.split_algorithm = SplitAlgorithm::kExact;
  ForestParams hist = exact;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  RandomForestClassifier fe, fh;
  ASSERT_TRUE(fe.Fit(train, exact, 54).ok());
  ASSERT_TRUE(fh.Fit(train, hist, 54).ok());
  auto pe = fe.PredictBatch(test);
  auto ph = fh.PredictBatch(test);
  ASSERT_TRUE(pe.ok() && ph.ok());
  size_t agree = 0;
  for (size_t i = 0; i < pe->size(); ++i) {
    agree += (*pe)[i] == (*ph)[i] ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(pe->size()),
            0.9);
}

TEST(HistogramDegenerateTest, SingleClassDataIsOneLeaf) {
  auto d = Dataset::Make({"x"}, {{1.0}, {2.0}, {3.0}, {4.0}},
                         {0, 0, 0, 0});
  ASSERT_TRUE(d.ok());
  TreeParams hist;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(*d, hist, 1).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Predict({2.5}), 0);
}

TEST(HistogramDegenerateTest, AllConstantFeaturesIsOneLeaf) {
  auto d = Dataset::Make({"c1", "c2"},
                         {{5.0, 9.0}, {5.0, 9.0}, {5.0, 9.0}, {5.0, 9.0}},
                         {0, 1, 1, 1});
  ASSERT_TRUE(d.ok());
  TreeParams hist;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(*d, hist, 1).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.Predict({5.0, 9.0}), 1);  // majority
}

TEST(HistogramDegenerateTest, ConstantFeatureNeverChosen) {
  Rng rng(56);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(0.0, 1.0);
    rows.push_back({3.14, x});
    labels.push_back(x > 0.5 ? 1 : 0);
  }
  auto d = Dataset::Make({"const", "signal"}, std::move(rows),
                         std::move(labels));
  ASSERT_TRUE(d.ok());
  TreeParams hist;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(*d, hist, 56).ok());
  const auto& imp = tree.feature_importances();
  EXPECT_DOUBLE_EQ(imp[0], 0.0);
  EXPECT_GT(imp[1], 0.0);
}

TEST(HistogramSerializationTest, BinnedForestRoundTrips) {
  const Dataset d = ContinuousData(400, 57);
  ForestParams hist;
  hist.num_trees = 8;
  hist.split_algorithm = SplitAlgorithm::kHistogram;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(d, hist, 57).ok());
  const std::string text = forest.Serialize();
  auto restored = RandomForestClassifier::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Serialize(), text);
  auto p1 = forest.PredictBatch(d);
  auto p2 = restored->PredictBatch(d);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST(FitOnRowsTest, ViewTrainingMatchesSubsetCopy) {
  const Dataset d = GridValuedData(400, 20, 58);
  std::vector<size_t> rows;
  for (size_t i = 0; i < d.num_rows(); ++i) {
    if (i % 4 != 0) rows.push_back(i);
  }
  ForestParams params;
  params.num_trees = 10;
  RandomForestClassifier on_view, on_copy;
  ASSERT_TRUE(on_view.FitOnRows(d, rows, params, 58).ok());
  auto subset = d.Subset(rows);
  ASSERT_TRUE(subset.ok());
  ASSERT_TRUE(on_copy.Fit(*subset, params, 58).ok());
  EXPECT_EQ(on_view.Serialize(), on_copy.Serialize());
}

TEST(FitOnRowsTest, PredictRowsMatchesBatchOnView) {
  const Dataset d = ContinuousData(300, 59);
  ForestParams params;
  params.num_trees = 6;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(d, params, 59).ok());
  std::vector<size_t> rows = {5, 17, 42, 99, 250};
  auto via_rows = forest.PredictRows(d, rows);
  ASSERT_TRUE(via_rows.ok());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*via_rows)[i], forest.Predict(d.row(rows[i])));
  }
  EXPECT_FALSE(forest.PredictRows(d, {999}).ok());
}

TEST(FitBinnedTest, RejectsInvalidArguments) {
  const Dataset d = ContinuousData(50, 60);
  auto binned = BinnedDataset::FromDataset(d);
  ASSERT_TRUE(binned.ok());
  DecisionTreeClassifier tree;
  std::vector<size_t> all(d.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  // Wrong label arity.
  EXPECT_FALSE(
      tree.FitBinned(*binned, {0, 1}, 2, all, TreeParams{}, 1).ok());
  // Position out of range.
  EXPECT_FALSE(
      tree.FitBinned(*binned, d.labels(), 2, {999}, TreeParams{}, 1).ok());
  // Bad params.
  TreeParams bad;
  bad.min_samples_leaf = 0;
  EXPECT_FALSE(tree.FitBinned(*binned, d.labels(), 2, all, bad, 1).ok());
}

}  // namespace
}  // namespace cloudsurv::ml
