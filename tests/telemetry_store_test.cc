#include "gtest/gtest.h"
#include "telemetry/store.h"
#include "telemetry/types.h"
#include "tests/test_util.h"

namespace cloudsurv::telemetry {
namespace {

using cloudsurv::testing::StoreBuilder;

TEST(SloLadderTest, LadderInvariants) {
  const auto& ladder = SloLadder();
  ASSERT_EQ(NumSlos(), 11);
  // DTUs strictly increase within each edition.
  for (Edition e : {Edition::kBasic, Edition::kStandard, Edition::kPremium}) {
    const auto slos = SlosOfEdition(e);
    ASSERT_FALSE(slos.empty());
    for (size_t i = 1; i < slos.size(); ++i) {
      EXPECT_LT(ladder[slos[i - 1]].dtus, ladder[slos[i]].dtus);
    }
  }
  EXPECT_EQ(ladder[CheapestSloOfEdition(Edition::kBasic)].name, "Basic");
  EXPECT_EQ(ladder[CheapestSloOfEdition(Edition::kStandard)].name, "S0");
  EXPECT_EQ(ladder[CheapestSloOfEdition(Edition::kPremium)].name, "P1");
  EXPECT_EQ(ladder[MostExpensiveSloOfEdition(Edition::kPremium)].name, "P15");
}

TEST(SloLadderTest, NameLookups) {
  EXPECT_EQ(SloIndexByName("S2"), 3);
  EXPECT_EQ(SloLadder()[SloIndexByName("P11")].dtus, 1750);
  EXPECT_EQ(SloIndexByName("Z9"), -1);
}

TEST(EditionTest, StringRoundTrip) {
  for (Edition e : {Edition::kBasic, Edition::kStandard, Edition::kPremium}) {
    Edition back;
    ASSERT_TRUE(EditionFromString(EditionToString(e), &back));
    EXPECT_EQ(back, e);
  }
  Edition ignored;
  EXPECT_FALSE(EditionFromString("Hyperscale", &ignored));
}

TEST(StoreTest, BasicLifecycleAssembly) {
  StoreBuilder b;
  const DatabaseId id = b.AddDatabase(/*sub=*/1, /*create_day=*/3.0,
                                      /*drop_day=*/40.0, "orders", "srv1",
                                      SloIndexByName("S1"));
  b.AddSizeSample(id, 1, 3.5, 100.0);
  b.AddSizeSample(id, 1, 4.0, 120.0);
  b.AddSloChange(id, 1, 10.0, SloIndexByName("S1"), SloIndexByName("S2"));
  TelemetryStore store = b.Finish();

  ASSERT_EQ(store.num_databases(), 1u);
  auto rec = store.FindDatabase(id);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec).database_name, "orders");
  EXPECT_EQ((*rec).initial_edition(), Edition::kStandard);
  EXPECT_TRUE((*rec).dropped_at.has_value());
  EXPECT_NEAR((*rec).ObservedLifespanDays(store.window_end()), 37.0, 1e-9);
  ASSERT_EQ((*rec).size_samples.size(), 2u);
  ASSERT_EQ((*rec).slo_changes.size(), 1u);
}

TEST(StoreTest, SloAtTimeAndEditionChange) {
  StoreBuilder b;
  const DatabaseId id =
      b.AddDatabase(1, 0.0, -1.0, "db", "s", SloIndexByName("P1"));
  b.AddSloChange(id, 1, 5.0, SloIndexByName("P1"), SloIndexByName("S3"));
  b.AddSloChange(id, 1, 8.0, SloIndexByName("S3"), SloIndexByName("P2"));
  TelemetryStore store = b.Finish();
  const DatabaseRecord rec = *store.FindDatabase(id);

  EXPECT_EQ(rec.SloIndexAt(b.DayTs(1.0)), SloIndexByName("P1"));
  EXPECT_EQ(rec.SloIndexAt(b.DayTs(6.0)), SloIndexByName("S3"));
  EXPECT_EQ(rec.SloIndexAt(b.DayTs(9.0)), SloIndexByName("P2"));
  EXPECT_EQ(rec.EditionAt(b.DayTs(6.0)), Edition::kStandard);
  EXPECT_TRUE(rec.ChangedEditionDuringLifetime());
  EXPECT_FALSE(rec.dropped_at.has_value());  // censored
}

TEST(StoreTest, WithinEditionChangeIsNotEditionChange) {
  StoreBuilder b;
  const DatabaseId id =
      b.AddDatabase(1, 0.0, 20.0, "db", "s", SloIndexByName("S0"));
  b.AddSloChange(id, 1, 5.0, SloIndexByName("S0"), SloIndexByName("S3"));
  TelemetryStore store = b.Finish();
  EXPECT_FALSE((*store.FindDatabase(id)).ChangedEditionDuringLifetime());
}

TEST(StoreTest, CensoredLifespanCapsAtWindowEnd) {
  StoreBuilder b;
  const DatabaseId id = b.AddDatabase(1, 100.0, -1.0);
  TelemetryStore store = b.Finish();
  EXPECT_NEAR(
      (*store.FindDatabase(id)).ObservedLifespanDays(store.window_end()),
      50.0, 1e-9);
}

TEST(StoreTest, RejectsDuplicateCreation) {
  telemetry::TelemetryStore raw("R", 0, {}, 0, 1000000);
  DatabaseCreatedPayload p;
  p.server_id = 0;
  p.slo_index = 0;
  ASSERT_TRUE(raw.Append(MakeCreatedEvent(10, 1, 1, p)).ok());
  ASSERT_TRUE(raw.Append(MakeCreatedEvent(20, 1, 1, p)).ok());
  EXPECT_FALSE(raw.Finalize().ok());
}

TEST(StoreTest, RejectsEventsWithoutCreation) {
  telemetry::TelemetryStore raw("R", 0, {}, 0, 1000000);
  ASSERT_TRUE(raw.Append(MakeDroppedEvent(10, 1, 1)).ok());
  EXPECT_FALSE(raw.Finalize().ok());
}

TEST(StoreTest, RejectsEventsAfterDrop) {
  telemetry::TelemetryStore raw("R", 0, {}, 0, 1000000);
  DatabaseCreatedPayload p;
  p.server_id = 0;
  p.slo_index = 0;
  ASSERT_TRUE(raw.Append(MakeCreatedEvent(10, 1, 1, p)).ok());
  ASSERT_TRUE(raw.Append(MakeDroppedEvent(100, 1, 1)).ok());
  ASSERT_TRUE(raw.Append(MakeSizeSampleEvent(200, 1, 1, 5.0)).ok());
  EXPECT_FALSE(raw.Finalize().ok());
}

TEST(StoreTest, RejectsDuplicateDrop) {
  telemetry::TelemetryStore raw("R", 0, {}, 0, 1000000);
  DatabaseCreatedPayload p;
  p.server_id = 0;
  p.slo_index = 0;
  ASSERT_TRUE(raw.Append(MakeCreatedEvent(10, 1, 1, p)).ok());
  ASSERT_TRUE(raw.Append(MakeDroppedEvent(100, 1, 1)).ok());
  ASSERT_TRUE(raw.Append(MakeDroppedEvent(150, 1, 1)).ok());
  EXPECT_FALSE(raw.Finalize().ok());
}

TEST(StoreTest, RejectsInvalidIds) {
  telemetry::TelemetryStore raw("R", 0, {}, 0, 1000000);
  DatabaseCreatedPayload p;
  EXPECT_FALSE(raw.Append(MakeCreatedEvent(10, kInvalidId, 1, p)).ok());
  EXPECT_FALSE(raw.Append(MakeCreatedEvent(10, 1, kInvalidId, p)).ok());
}

TEST(StoreTest, AppendAfterFinalizeFails) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 5.0);
  TelemetryStore store = b.Finish();
  EXPECT_FALSE(store.Append(MakeDroppedEvent(100, 9, 9)).ok());
  EXPECT_FALSE(store.Finalize().ok());  // double finalize
}

TEST(StoreTest, SubscriptionIndexOrderedByCreation) {
  StoreBuilder b;
  const DatabaseId late = b.AddDatabase(7, 50.0, -1.0);
  const DatabaseId early = b.AddDatabase(7, 10.0, 20.0);
  b.AddDatabase(8, 5.0, -1.0);
  TelemetryStore store = b.Finish();

  const auto& dbs = store.DatabasesOfSubscription(7);
  ASSERT_EQ(dbs.size(), 2u);
  EXPECT_EQ(dbs[0], early);
  EXPECT_EQ(dbs[1], late);
  EXPECT_TRUE(store.DatabasesOfSubscription(999).empty());
  EXPECT_EQ(store.AllSubscriptions().size(), 2u);
}

TEST(StoreTest, FindUnknownDatabaseIsNotFound) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 5.0);
  TelemetryStore store = b.Finish();
  EXPECT_FALSE(store.FindDatabase(12345).ok());
}

TEST(StoreTest, EventsSortedAfterFinalize) {
  StoreBuilder b;
  const DatabaseId id = b.AddDatabase(1, 5.0, 30.0);
  b.AddSizeSample(id, 1, 20.0, 9.0);
  b.AddSizeSample(id, 1, 6.0, 5.0);
  TelemetryStore store = b.Finish();
  const auto& events = store.events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].timestamp, events[i].timestamp);
  }
}

TEST(StoreCsvTest, ExportImportRoundTrip) {
  StoreBuilder b;
  const DatabaseId id = b.AddDatabase(3, 2.0, 45.0, "orders-db", "srv-a",
                                      SloIndexByName("P1"),
                                      SubscriptionType::kEnterpriseAgreement);
  b.AddSloChange(id, 3, 9.0, SloIndexByName("P1"), SloIndexByName("S3"));
  b.AddSizeSample(id, 3, 2.5, 123.456);
  b.AddDatabase(4, 7.0, -1.0, "testdb2");
  TelemetryStore store = b.Finish();

  const std::string csv = store.ExportCsv();
  auto imported = TelemetryStore::ImportCsv(
      csv, store.region_name(), store.utc_offset_minutes(), {},
      store.window_start(), store.window_end());
  ASSERT_TRUE(imported.ok()) << imported.status();
  ASSERT_EQ(imported->num_databases(), store.num_databases());
  ASSERT_EQ(imported->num_events(), store.num_events());
  const DatabaseRecord a = *store.FindDatabase(id);
  const DatabaseRecord c = *imported->FindDatabase(id);
  EXPECT_EQ(a.database_name, c.database_name);
  EXPECT_EQ(a.server_name, c.server_name);
  EXPECT_EQ(a.created_at, c.created_at);
  EXPECT_EQ(a.dropped_at, c.dropped_at);
  EXPECT_EQ(a.initial_slo_index, c.initial_slo_index);
  EXPECT_EQ(a.subscription_type, c.subscription_type);
  ASSERT_EQ(c.slo_changes.size(), 1u);
  ASSERT_EQ(c.size_samples.size(), 1u);
  EXPECT_NEAR(c.size_samples[0].size_mb, 123.456, 1e-3);
}

TEST(StoreCsvTest, ImportRejectsMalformedLines) {
  EXPECT_FALSE(TelemetryStore::ImportCsv("header\ngarbage", "R", 0, {}, 0,
                                         1000)
                   .ok());
  EXPECT_FALSE(TelemetryStore::ImportCsv(
                   "h\n2017-01-01T00:00:00,UnknownKind,1,1,x", "R", 0, {}, 0,
                   1000)
                   .ok());
}

}  // namespace
}  // namespace cloudsurv::telemetry
