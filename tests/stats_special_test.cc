#include <cmath>

#include "gtest/gtest.h"
#include "stats/special_functions.h"

namespace cloudsurv::stats {
namespace {

TEST(LogGammaTest, MatchesFactorials) {
  // Gamma(n) = (n-1)!
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(11.0), std::log(3628800.0), 1e-9);
}

TEST(LogGammaTest, HalfIntegerValues) {
  // Gamma(1/2) = sqrt(pi); Gamma(3/2) = sqrt(pi)/2.
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
  EXPECT_NEAR(LogGamma(1.5), std::log(std::sqrt(M_PI) / 2.0), 1e-10);
}

TEST(LogGammaTest, AgreesWithStdLgamma) {
  for (double x : {0.1, 0.7, 1.3, 2.5, 7.9, 42.0, 123.45}) {
    EXPECT_NEAR(LogGamma(x), std::lgamma(x), 1e-9) << "x=" << x;
  }
}

TEST(LogGammaTest, InvalidInputIsNaN) {
  EXPECT_TRUE(std::isnan(LogGamma(0.0)));
  EXPECT_TRUE(std::isnan(LogGamma(-1.5)));
}

TEST(RegularizedGammaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedGammaQ(2.0, 0.0), 1.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 1e9), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, PPlusQIsOne) {
  for (double a : {0.5, 1.0, 2.5, 10.0}) {
    for (double x : {0.1, 1.0, 3.0, 10.0, 30.0}) {
      EXPECT_NEAR(RegularizedGammaP(a, x) + RegularizedGammaQ(a, x), 1.0,
                  1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12);
  }
}

TEST(ErfTest, KnownValues) {
  EXPECT_NEAR(Erf(0.0), 0.0, 1e-14);
  EXPECT_NEAR(Erf(1.0), 0.8427007929497149, 1e-10);
  EXPECT_NEAR(Erf(-1.0), -0.8427007929497149, 1e-10);
  EXPECT_NEAR(Erf(2.0), 0.9953222650189527, 1e-10);
  EXPECT_NEAR(Erfc(1.0), 1.0 - 0.8427007929497149, 1e-10);
  EXPECT_NEAR(Erfc(-2.0), 1.9953222650189527, 1e-10);
}

TEST(ErfTest, AgreesWithStdErf) {
  for (double x = -3.0; x <= 3.0; x += 0.37) {
    EXPECT_NEAR(Erf(x), std::erf(x), 1e-10) << "x=" << x;
  }
}

TEST(ChiSquaredTest, SurvivalAtZeroIsOne) {
  EXPECT_DOUBLE_EQ(ChiSquaredSurvival(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ChiSquaredSurvival(-3.0, 2.0), 1.0);
}

TEST(ChiSquaredTest, ReferenceQuantiles) {
  // Classic critical values: P[X >= x] = 0.05.
  EXPECT_NEAR(ChiSquaredSurvival(3.841, 1.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquaredSurvival(5.991, 2.0), 0.05, 1e-3);
  EXPECT_NEAR(ChiSquaredSurvival(7.815, 3.0), 0.05, 1e-3);
  // P[X >= 6.635] = 0.01 at df=1.
  EXPECT_NEAR(ChiSquaredSurvival(6.635, 1.0), 0.01, 1e-3);
}

TEST(ChiSquaredTest, CdfComplementsSurvival) {
  for (double df : {1.0, 2.0, 5.0}) {
    for (double x : {0.5, 2.0, 10.0}) {
      EXPECT_NEAR(ChiSquaredCdf(x, df) + ChiSquaredSurvival(x, df), 1.0,
                  1e-12);
    }
  }
}

TEST(ChiSquaredTest, Df2IsExponential) {
  // With df=2 the chi-squared survival is exp(-x/2).
  for (double x : {0.1, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(ChiSquaredSurvival(x, 2.0), std::exp(-x / 2.0), 1e-10);
  }
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
  EXPECT_NEAR(NormalCdf(1.0), 0.8413447460685429, 1e-10);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963984540054, 1e-8);
  EXPECT_NEAR(NormalQuantile(0.8413447460685429), 1.0, 1e-8);
}

TEST(NormalQuantileTest, InvalidInputsAreNaN) {
  EXPECT_TRUE(std::isnan(NormalQuantile(0.0)));
  EXPECT_TRUE(std::isnan(NormalQuantile(1.0)));
  EXPECT_TRUE(std::isnan(NormalQuantile(-0.5)));
}

TEST(BetaTest, LogBetaMatchesGammaIdentity) {
  for (double a : {0.5, 1.0, 3.0}) {
    for (double b : {0.5, 2.0, 7.0}) {
      EXPECT_NEAR(LogBeta(a, b), LogGamma(a) + LogGamma(b) - LogGamma(a + b),
                  1e-12);
    }
  }
}

TEST(BetaTest, RegularizedBetaBoundaries) {
  EXPECT_DOUBLE_EQ(RegularizedBeta(0.0, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedBeta(1.0, 2.0, 3.0), 1.0);
}

TEST(BetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.3, 0.8}) {
    EXPECT_NEAR(RegularizedBeta(x, 1.0, 1.0), x, 1e-12);
  }
}

TEST(BetaTest, SymmetryRelation) {
  // I_x(a, b) = 1 - I_{1-x}(b, a).
  for (double x : {0.2, 0.5, 0.7}) {
    EXPECT_NEAR(RegularizedBeta(x, 2.5, 4.0),
                1.0 - RegularizedBeta(1.0 - x, 4.0, 2.5), 1e-10);
  }
}

/// Property sweep: the normal quantile inverts the normal CDF across
/// the unit interval.
class NormalRoundTripTest : public ::testing::TestWithParam<double> {};

TEST_P(NormalRoundTripTest, QuantileInvertsCdf) {
  const double p = GetParam();
  EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NormalRoundTripTest,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.25, 0.5,
                                           0.75, 0.9, 0.95, 0.99, 0.999));

/// Property sweep: P(a, x) is monotone in x for several shapes.
class GammaMonotoneTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaMonotoneTest, PIncreasesInX) {
  const double a = GetParam();
  double prev = 0.0;
  for (double x = 0.0; x < 20.0; x += 0.25) {
    const double p = RegularizedGammaP(a, x);
    EXPECT_GE(p, prev - 1e-14) << "a=" << a << " x=" << x;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GammaMonotoneTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.5, 10.0));

}  // namespace
}  // namespace cloudsurv::stats
