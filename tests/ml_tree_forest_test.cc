#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"

namespace cloudsurv::ml {
namespace {

// Axis-aligned separable data: label = x0 > 3.
Dataset ThresholdData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(0.0, 6.0);
    const double x1 = rng.Uniform(0.0, 1.0);  // noise feature
    rows.push_back({x0, x1});
    labels.push_back(x0 > 3.0 ? 1 : 0);
  }
  auto d = Dataset::Make({"signal", "noise"}, std::move(rows),
                         std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

// XOR of two thresholds: needs depth >= 2.
Dataset XorData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(0.0, 1.0);
    const double b = rng.Uniform(0.0, 1.0);
    rows.push_back({a, b});
    labels.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  auto d = Dataset::Make({"a", "b"}, std::move(rows), std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

// Noisy overlapping Gaussians; Bayes accuracy well below 1.
Dataset NoisyData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    rows.push_back({rng.Normal(label == 1 ? 1.0 : 0.0, 1.0),
                    rng.Normal(0.0, 1.0)});
    labels.push_back(label);
  }
  auto d = Dataset::Make({"x", "noise"}, std::move(rows), std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(DecisionTreeTest, LearnsAxisThresholdPerfectly) {
  const Dataset d = ThresholdData(500, 1);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(d, TreeParams{}, 1).ok());
  auto preds = tree.PredictBatch(d);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(d.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_DOUBLE_EQ(scores->accuracy, 1.0);
}

TEST(DecisionTreeTest, LearnsXorWithDepthTwo) {
  const Dataset d = XorData(800, 2);
  DecisionTreeClassifier tree;
  TreeParams params;
  params.max_depth = 4;
  ASSERT_TRUE(tree.Fit(d, params, 2).ok());
  auto preds = tree.PredictBatch(d);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(d.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->accuracy, 0.97);
}

TEST(DecisionTreeTest, DepthZeroIsMajorityLeaf) {
  const Dataset d = ThresholdData(100, 3);
  DecisionTreeClassifier tree;
  TreeParams params;
  params.max_depth = 0;
  ASSERT_TRUE(tree.Fit(d, params, 3).ok());
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.depth(), 0);
  const auto probs = tree.PredictProba({0.0, 0.0});
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-12);
}

TEST(DecisionTreeTest, RespectsMinSamplesLeaf) {
  const Dataset d = ThresholdData(60, 4);
  DecisionTreeClassifier tree;
  TreeParams params;
  params.min_samples_leaf = 25;
  ASSERT_TRUE(tree.Fit(d, params, 4).ok());
  // With 60 samples and min leaf 25, at most one split is possible.
  EXPECT_LE(tree.num_nodes(), 3u);
}

TEST(DecisionTreeTest, ImportancesConcentrateOnSignal) {
  const Dataset d = ThresholdData(1000, 5);
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(d, TreeParams{}, 5).ok());
  const auto& imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 0.9);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(DecisionTreeTest, ProbabilitiesSumToOne) {
  const Dataset d = NoisyData(400, 6);
  DecisionTreeClassifier tree;
  TreeParams params;
  params.max_depth = 3;
  ASSERT_TRUE(tree.Fit(d, params, 6).ok());
  for (size_t i = 0; i < 50; ++i) {
    const auto probs = tree.PredictProba(d.row(i));
    double total = 0.0;
    for (double p : probs) {
      EXPECT_GE(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(DecisionTreeTest, DeterministicForSeed) {
  const Dataset d = NoisyData(300, 7);
  TreeParams params;
  params.max_features = 1;  // randomized feature choice
  DecisionTreeClassifier t1, t2;
  ASSERT_TRUE(t1.Fit(d, params, 99).ok());
  ASSERT_TRUE(t2.Fit(d, params, 99).ok());
  EXPECT_EQ(t1.num_nodes(), t2.num_nodes());
  auto p1 = t1.PredictBatch(d);
  auto p2 = t2.PredictBatch(d);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*p1, *p2);
}

TEST(DecisionTreeTest, RejectsInvalidInputs) {
  DecisionTreeClassifier tree;
  EXPECT_FALSE(tree.Fit(Dataset(), TreeParams{}, 1).ok());
  const Dataset d = ThresholdData(10, 8);
  TreeParams bad;
  bad.min_samples_leaf = 0;
  EXPECT_FALSE(tree.Fit(d, bad, 1).ok());
  EXPECT_FALSE(tree.FitSubset(d, {999}, TreeParams{}, 1).ok());
  EXPECT_FALSE(tree.PredictBatch(d).ok());  // not fitted
}

TEST(DecisionTreeTest, MulticlassLeaves) {
  auto d = Dataset::Make({"x"},
                         {{0.0}, {0.1}, {1.0}, {1.1}, {2.0}, {2.1}},
                         {0, 0, 1, 1, 2, 2});
  ASSERT_TRUE(d.ok());
  DecisionTreeClassifier tree;
  ASSERT_TRUE(tree.Fit(*d, TreeParams{}, 1).ok());
  EXPECT_EQ(tree.Predict({0.05}), 0);
  EXPECT_EQ(tree.Predict({1.05}), 1);
  EXPECT_EQ(tree.Predict({2.05}), 2);
}

TEST(RandomForestTest, BeatsSingleTreeOnNoisyData) {
  const Dataset train = NoisyData(1500, 10);
  const Dataset test = NoisyData(1500, 11);
  ForestParams params;
  params.num_trees = 60;
  params.max_depth = 10;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(train, params, 10).ok());
  auto preds = forest.PredictBatch(test);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(test.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  // Bayes accuracy here is Phi(0.5) ~= 0.69.
  EXPECT_GT(scores->accuracy, 0.60);
}

TEST(RandomForestTest, PerfectOnSeparableData) {
  const Dataset d = ThresholdData(600, 12);
  ForestParams params;
  params.num_trees = 20;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(d, params, 12).ok());
  auto preds = forest.PredictBatch(d);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(d.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->accuracy, 0.99);
}

TEST(RandomForestTest, ProbabilitiesAreAverages) {
  const Dataset d = NoisyData(300, 13);
  ForestParams params;
  params.num_trees = 7;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(d, params, 13).ok());
  const auto row = d.row(0);
  std::vector<double> manual(2, 0.0);
  for (const auto& tree : forest.trees()) {
    const auto p = tree.PredictProba(row);
    manual[0] += p[0];
    manual[1] += p[1];
  }
  manual[0] /= 7.0;
  manual[1] /= 7.0;
  const auto probs = forest.PredictProba(row);
  EXPECT_NEAR(probs[0], manual[0], 1e-12);
  EXPECT_NEAR(probs[1], manual[1], 1e-12);
}

TEST(RandomForestTest, DeterministicAcrossThreadCounts) {
  const Dataset d = NoisyData(400, 14);
  ForestParams p1;
  p1.num_trees = 16;
  p1.num_threads = 1;
  ForestParams p4 = p1;
  p4.num_threads = 4;
  RandomForestClassifier f1, f4;
  ASSERT_TRUE(f1.Fit(d, p1, 77).ok());
  ASSERT_TRUE(f4.Fit(d, p4, 77).ok());
  auto r1 = f1.PredictPositiveProba(d);
  auto r4 = f4.PredictPositiveProba(d);
  ASSERT_TRUE(r1.ok() && r4.ok());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_DOUBLE_EQ((*r1)[i], (*r4)[i]);
  }
}

TEST(RandomForestTest, OobAccuracyTracksTestAccuracy) {
  const Dataset train = NoisyData(1200, 15);
  const Dataset test = NoisyData(1200, 16);
  ForestParams params;
  params.num_trees = 50;
  params.max_depth = 8;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(train, params, 15).ok());
  auto preds = forest.PredictBatch(test);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(test.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(forest.oob_accuracy(), scores->accuracy, 0.06);
}

TEST(RandomForestTest, ImportancesDetectSignalFeature) {
  const Dataset d = ThresholdData(800, 17);
  ForestParams params;
  params.num_trees = 30;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(d, params, 17).ok());
  const auto& imp = forest.feature_importances();
  EXPECT_GT(imp[0], imp[1] * 5.0);
}

TEST(RandomForestTest, MaxFeaturesRules) {
  const Dataset d = NoisyData(200, 18);
  for (auto rule : {MaxFeaturesRule::kSqrt, MaxFeaturesRule::kLog2,
                    MaxFeaturesRule::kAll}) {
    ForestParams params;
    params.num_trees = 5;
    params.max_features = rule;
    RandomForestClassifier forest;
    EXPECT_TRUE(forest.Fit(d, params, 18).ok());
    EXPECT_EQ(forest.num_trees(), 5u);
  }
}

TEST(RandomForestTest, RejectsInvalidInputsAndStates) {
  RandomForestClassifier forest;
  EXPECT_FALSE(forest.Fit(Dataset(), ForestParams{}, 1).ok());
  const Dataset d = NoisyData(50, 19);
  ForestParams bad;
  bad.num_trees = 0;
  EXPECT_FALSE(forest.Fit(d, bad, 1).ok());
  EXPECT_FALSE(forest.PredictBatch(d).ok());
  ForestParams ok;
  ok.num_trees = 3;
  ASSERT_TRUE(forest.Fit(d, ok, 1).ok());
  auto multi = Dataset::Make({"x", "noise"}, {{0.0, 0.0}}, {0}, 3);
  ASSERT_TRUE(multi.ok());
  RandomForestClassifier mf;
  ASSERT_TRUE(mf.Fit(*multi, ok, 1).ok());
  EXPECT_FALSE(mf.PredictPositiveProba(*multi).ok());  // not binary
}

TEST(RandomForestTest, NoBootstrapUsesAllRows) {
  const Dataset d = ThresholdData(300, 20);
  ForestParams params;
  params.num_trees = 5;
  params.bootstrap = false;
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(d, params, 20).ok());
  EXPECT_DOUBLE_EQ(forest.oob_accuracy(), 0.0);  // undefined w/o bootstrap
  auto preds = forest.PredictBatch(d);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(d.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->accuracy, 0.99);
}

// Imbalanced noisy data: 15% positive.
Dataset ImbalancedData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.15) ? 1 : 0;
    rows.push_back({rng.Normal(label * 1.2, 1.0), rng.Normal(0.0, 1.0)});
    labels.push_back(label);
  }
  return *Dataset::Make({"x", "noise"}, std::move(rows),
                        std::move(labels));
}

TEST(ClassWeightTest, BalancedWeightsRaiseMinorityRecall) {
  const Dataset train = ImbalancedData(3000, 30);
  const Dataset test = ImbalancedData(3000, 31);
  ForestParams plain;
  plain.num_trees = 40;
  plain.max_depth = 10;
  ForestParams balanced = plain;
  balanced.class_weights = {1.0 / 0.85, 1.0 / 0.15};

  RandomForestClassifier f_plain, f_balanced;
  ASSERT_TRUE(f_plain.Fit(train, plain, 30).ok());
  ASSERT_TRUE(f_balanced.Fit(train, balanced, 30).ok());
  auto p_plain = f_plain.PredictBatch(test);
  auto p_balanced = f_balanced.PredictBatch(test);
  ASSERT_TRUE(p_plain.ok() && p_balanced.ok());
  const auto s_plain = *ComputeScores(test.labels(), *p_plain);
  const auto s_balanced = *ComputeScores(test.labels(), *p_balanced);
  // Weighting trades precision for a substantial recall gain on the
  // minority class.
  EXPECT_GT(s_balanced.recall, s_plain.recall + 0.1);
  EXPECT_LT(s_balanced.precision, s_plain.precision);
}

TEST(ClassWeightTest, RejectsInvalidWeights) {
  const Dataset d = ImbalancedData(100, 32);
  DecisionTreeClassifier tree;
  TreeParams bad;
  bad.class_weights = {1.0};  // wrong arity for a binary problem
  EXPECT_FALSE(tree.Fit(d, bad, 1).ok());
  bad.class_weights = {1.0, 0.0};  // non-positive
  EXPECT_FALSE(tree.Fit(d, bad, 1).ok());
}

TEST(ClassWeightTest, UniformWeightsMatchUnweighted) {
  const Dataset d = NoisyData(400, 33);
  TreeParams plain;
  TreeParams uniform;
  uniform.class_weights = {1.0, 1.0};
  DecisionTreeClassifier t1, t2;
  ASSERT_TRUE(t1.Fit(d, plain, 5).ok());
  ASSERT_TRUE(t2.Fit(d, uniform, 5).ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(t1.Predict(d.row(i)), t2.Predict(d.row(i)));
  }
}

/// Property sweep: forest accuracy on the threshold task is high for a
/// range of tree counts.
class ForestSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(ForestSizeTest, AccurateForAnySize) {
  const Dataset train = ThresholdData(400, 21);
  const Dataset test = ThresholdData(400, 22);
  ForestParams params;
  params.num_trees = GetParam();
  RandomForestClassifier forest;
  ASSERT_TRUE(forest.Fit(train, params, 21).ok());
  auto preds = forest.PredictBatch(test);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(test.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->accuracy, 0.95) << "trees=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizeTest,
                         ::testing::Values(1, 5, 25, 100));

}  // namespace
}  // namespace cloudsurv::ml
