#include <string>
#include <vector>

#include "core/architecture.h"
#include "core/placement.h"
#include "core/provisioning.h"
#include "gtest/gtest.h"
#include "telemetry/types.h"
#include "tests/test_util.h"

namespace cloudsurv::core {
namespace {

using cloudsurv::testing::StoreBuilder;
using telemetry::SloIndexByName;

// ---------------------------------------------------------------------
// Catalog parsing.

TEST(ArchitectureCatalogTest, DefaultSpecParsesWithFourTiers) {
  const ArchitectureCatalog catalog = ArchitectureCatalog::Default();
  ASSERT_EQ(catalog.size(), 4u);
  EXPECT_EQ(catalog.at(0).name(), "churn-dense");
  EXPECT_EQ(catalog.at(1).name(), "general");
  EXPECT_EQ(catalog.at(2).name(), "durable");
  EXPECT_EQ(catalog.at(3).name(), "premium");
  EXPECT_EQ(catalog.default_index(), *catalog.IndexOfName("general"));
  EXPECT_EQ(catalog.at(catalog.default_index()).kind(),
            ArchitectureKind::kStandard);
  // The default tier must host the biggest SLO on the ladder (P15,
  // 4000 DTUs) so no database is ever unplaceable.
  EXPECT_GE(catalog.at(catalog.default_index()).node_capacity_dtus(), 4000);
  // Per-DTU-day ordering the policies rely on:
  // dense < durable < general < premium.
  const double dense = catalog.at(0).PricePerDtuDay();
  const double general = catalog.at(1).PricePerDtuDay();
  const double durable = catalog.at(2).PricePerDtuDay();
  const double premium = catalog.at(3).PricePerDtuDay();
  EXPECT_LT(dense, durable);
  EXPECT_LT(durable, general);
  EXPECT_LT(general, premium);
}

TEST(ArchitectureCatalogTest, NodePriceIsReplicasTimesResourceBill) {
  ASSERT_OK_AND_ASSIGN(
      const ArchitectureCatalog catalog,
      ArchitectureCatalog::Parse(
          "resource vcpu 2.0\n"
          "resource memory_gb 0.5\n"
          "resource storage_gb 0.01\n"
          "architecture solo kind=standard vcpus=4 memory_gb=16 "
          "storage_gb=100 capacity_dtus=1000\n"
          "architecture trio kind=replicated vcpus=4 memory_gb=16 "
          "storage_gb=100 capacity_dtus=1000 replicas=3\n"));
  // per replica: 4*2.0 + 16*0.5 + 100*0.01 = 8 + 8 + 1 = 17.
  EXPECT_DOUBLE_EQ(catalog.at(0).node_price_per_day(), 17.0);
  EXPECT_DOUBLE_EQ(catalog.at(1).node_price_per_day(), 51.0);
  EXPECT_DOUBLE_EQ(catalog.at(0).PricePerDtuDay(), 0.017);
  EXPECT_EQ(catalog.at(1).replicas(), 3);
}

TEST(ArchitectureCatalogTest, KindDefaultsAndOverrides) {
  ASSERT_OK_AND_ASSIGN(
      const ArchitectureCatalog catalog,
      ArchitectureCatalog::Parse(
          "resource vcpu 1.0\n"
          "resource memory_gb 1.0\n"
          "resource storage_gb 1.0\n"
          "architecture d kind=dense vcpus=1 capacity_dtus=100\n"
          "architecture s kind=standard vcpus=1 capacity_dtus=100\n"
          "architecture r kind=replicated vcpus=1 capacity_dtus=100\n"
          "architecture p kind=premium vcpus=1 capacity_dtus=100\n"
          "architecture tame kind=dense vcpus=1 capacity_dtus=100 "
          "defer_maintenance=false disruption_cost=10.0 attach_cost=1.5\n"));
  const Architecture& dense = catalog.at(0);
  const Architecture& standard = catalog.at(1);
  const Architecture& replicated = catalog.at(2);
  const Architecture& premium = catalog.at(3);
  EXPECT_TRUE(dense.defers_maintenance());
  EXPECT_FALSE(dense.transparent_maintenance());
  EXPECT_DOUBLE_EQ(dense.attach_cost(), 0.02);
  EXPECT_DOUBLE_EQ(dense.detach_cost(), 0.01);
  EXPECT_FALSE(standard.defers_maintenance());
  EXPECT_FALSE(standard.transparent_maintenance());
  EXPECT_DOUBLE_EQ(standard.attach_cost(), 0.05);
  // DisruptionCost scales with the tenant's DTUs: cost * dtus / 100.
  EXPECT_DOUBLE_EQ(standard.DisruptionCost(200), 5.0);
  EXPECT_TRUE(replicated.transparent_maintenance());
  EXPECT_DOUBLE_EQ(replicated.DisruptionCost(100), 0.50);
  EXPECT_TRUE(premium.transparent_maintenance());
  // Spec keys override the kind defaults.
  const Architecture& tame = catalog.at(4);
  EXPECT_FALSE(tame.defers_maintenance());
  EXPECT_DOUBLE_EQ(tame.DisruptionCost(100), 10.0);
  EXPECT_DOUBLE_EQ(tame.attach_cost(), 1.5);
}

TEST(ArchitectureCatalogTest, ParseErrorsNameTheLine) {
  const std::string preamble =
      "resource vcpu 1.0\n"
      "resource memory_gb 1.0\n"
      "resource storage_gb 1.0\n";
  struct Case {
    const char* line;
    const char* want_error;
  };
  const Case cases[] = {
      {"architecture a kind=standard vcpuz=1 capacity_dtus=10",
       "catalog line 4: unknown key 'vcpuz'"},
      {"architecture a kind=standard vcpus=abc capacity_dtus=10",
       "catalog line 4: bad value 'abc' for key 'vcpus'"},
      {"architecture a vcpus=1 capacity_dtus=10",
       "catalog line 4: architecture 'a' is missing kind=..."},
      {"deploy a kind=standard",
       "catalog line 4: unknown directive 'deploy'"},
      {"architecture a kind=standard vcpus=1",
       "capacity_dtus must be positive"},
  };
  for (const Case& c : cases) {
    auto result = ArchitectureCatalog::Parse(preamble + c.line + "\n");
    ASSERT_FALSE(result.ok()) << c.line;
    EXPECT_NE(result.status().message().find(c.want_error),
              std::string::npos)
        << "input: " << c.line << "\ngot: " << result.status().message();
  }

  auto dup = ArchitectureCatalog::Parse(
      preamble +
      "architecture a kind=standard vcpus=1 capacity_dtus=10\n"
      "architecture a kind=dense vcpus=1 capacity_dtus=10\n");
  ASSERT_FALSE(dup.ok());
  EXPECT_NE(dup.status().message().find(
                "catalog line 5: duplicate architecture 'a'"),
            std::string::npos)
      << dup.status().message();

  auto unpriced = ArchitectureCatalog::Parse(
      "resource vcpu 1.0\n"
      "architecture a kind=standard vcpus=1 capacity_dtus=10\n");
  ASSERT_FALSE(unpriced.ok());
  EXPECT_NE(unpriced.status().message().find("all three resource prices"),
            std::string::npos);

  auto no_standard = ArchitectureCatalog::Parse(
      preamble + "architecture a kind=dense vcpus=1 capacity_dtus=10\n");
  ASSERT_FALSE(no_standard.ok());
  EXPECT_NE(no_standard.status().message().find(
                "at least one kind=standard architecture"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Policy mapping (the section 5.3 confidence partition onto tiers).

ArchitectureCatalog TestCatalog() {
  auto parsed = ArchitectureCatalog::Parse(
      "resource vcpu 1.0\n"
      "resource memory_gb 1.0\n"
      "resource storage_gb 1.0\n"
      "architecture dense kind=dense vcpus=1 capacity_dtus=100\n"
      "architecture std kind=standard vcpus=1 capacity_dtus=4000\n"
      "architecture rep kind=replicated vcpus=1 capacity_dtus=4000\n");
  EXPECT_TRUE(parsed.ok());
  return std::move(*parsed);
}

PredictionOutcome MakeOutcome(telemetry::DatabaseId id, int predicted,
                              bool confident) {
  PredictionOutcome o;
  o.id = id;
  o.predicted_label = predicted;
  o.confident = confident;
  return o;
}

TEST(PlacementPolicyTest, EmptyOutcomeVectorYieldsDefaultOnlyPlan) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 10.0);
  auto store = b.Finish();
  const ArchitectureCatalog catalog = TestCatalog();
  for (const char* name : {"naive", "longevity", "oracle"}) {
    auto policy = MakePlacementPolicy(name);
    ASSERT_NE(policy, nullptr) << name;
    ASSERT_OK_AND_ASSIGN(const ArchitectureAssignmentPlan plan,
                         policy->Assign(store, {}, catalog));
    EXPECT_TRUE(plan.assignments.empty()) << name;
    EXPECT_EQ(plan.default_index, catalog.default_index()) << name;
    EXPECT_EQ(plan.ArchitectureOf(0), catalog.default_index()) << name;
  }
}

TEST(PlacementPolicyTest, AllUncertainPredictionsStayOnDefault) {
  StoreBuilder b;
  const auto a = b.AddDatabase(1, 0.0, 10.0);
  const auto c = b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  std::vector<PredictionOutcome> outcomes = {MakeOutcome(a, 0, false),
                                             MakeOutcome(c, 1, false)};
  auto policy = MakePlacementPolicy("longevity");
  ASSERT_OK_AND_ASSIGN(const ArchitectureAssignmentPlan plan,
                       policy->Assign(store, outcomes, TestCatalog()));
  EXPECT_TRUE(plan.assignments.empty());
}

TEST(PlacementPolicyTest, LongevityMapsConfidencePartitionOntoTiers) {
  StoreBuilder b;
  const auto short_db =
      b.AddDatabase(1, 0.0, 5.0, "a", "s", SloIndexByName("S2"));
  const auto long_premium =
      b.AddDatabase(1, 0.0, -1.0, "b", "s", SloIndexByName("P6"));
  const auto long_standard =
      b.AddDatabase(1, 0.0, -1.0, "c", "s", SloIndexByName("S3"));
  auto store = b.Finish();
  const ArchitectureCatalog catalog = TestCatalog();
  std::vector<PredictionOutcome> outcomes = {
      MakeOutcome(short_db, 0, true), MakeOutcome(long_premium, 1, true),
      MakeOutcome(long_standard, 1, true)};
  auto policy = MakePlacementPolicy("longevity");
  ASSERT_OK_AND_ASSIGN(const ArchitectureAssignmentPlan plan,
                       policy->Assign(store, outcomes, catalog));
  // Confident-short -> the dense churn tier.
  EXPECT_EQ(plan.ArchitectureOf(short_db),
            *catalog.IndexOfKind(ArchitectureKind::kDense));
  // Confident-long pays the durable premium only for Premium-edition
  // tenants (SLA-credit exposure justifies it).
  EXPECT_EQ(plan.ArchitectureOf(long_premium),
            *catalog.IndexOfKind(ArchitectureKind::kReplicated));
  EXPECT_EQ(plan.ArchitectureOf(long_standard), catalog.default_index());
}

TEST(PlacementPolicyTest, MissingTiersDegradeToDefault) {
  StoreBuilder b;
  const auto short_db = b.AddDatabase(1, 0.0, 5.0);
  const auto long_db =
      b.AddDatabase(1, 0.0, -1.0, "b", "s", SloIndexByName("P6"));
  auto store = b.Finish();
  // Standard-only catalog: nothing to segregate onto.
  ASSERT_OK_AND_ASSIGN(
      const ArchitectureCatalog catalog,
      ArchitectureCatalog::Parse(
          "resource vcpu 1.0\n"
          "resource memory_gb 1.0\n"
          "resource storage_gb 1.0\n"
          "architecture only kind=standard vcpus=1 capacity_dtus=4000\n"));
  std::vector<PredictionOutcome> outcomes = {MakeOutcome(short_db, 0, true),
                                             MakeOutcome(long_db, 1, true)};
  auto policy = MakePlacementPolicy("longevity");
  ASSERT_OK_AND_ASSIGN(const ArchitectureAssignmentPlan plan,
                       policy->Assign(store, outcomes, catalog));
  EXPECT_TRUE(plan.assignments.empty());
}

TEST(PlacementPolicyTest, OracleUsesTrueLifespansNotPredictions) {
  StoreBuilder b;
  const auto short_db =
      b.AddDatabase(1, 0.0, 10.0, "a", "s", SloIndexByName("S2"));
  const auto long_db =
      b.AddDatabase(1, 0.0, -1.0, "b", "s", SloIndexByName("P6"));
  auto store = b.Finish();
  const ArchitectureCatalog catalog = TestCatalog();
  // Predictions are deliberately inverted; the oracle must ignore them.
  PredictionOutcome s = MakeOutcome(short_db, 1, true);
  s.duration_days = 10.0;
  s.observed = true;
  PredictionOutcome l = MakeOutcome(long_db, 0, true);
  l.duration_days = 150.0;
  l.observed = false;  // censored, still long
  auto policy = MakePlacementPolicy("oracle", /*oracle_threshold_days=*/30.0);
  ASSERT_OK_AND_ASSIGN(const ArchitectureAssignmentPlan plan,
                       policy->Assign(store, {s, l}, catalog));
  EXPECT_EQ(plan.ArchitectureOf(short_db),
            *catalog.IndexOfKind(ArchitectureKind::kDense));
  EXPECT_EQ(plan.ArchitectureOf(long_db),
            *catalog.IndexOfKind(ArchitectureKind::kReplicated));
  EXPECT_EQ(MakePlacementPolicy("banana"), nullptr);
}

// ---------------------------------------------------------------------
// Deployment replay cost accounting.

TEST(SimulateDeploymentTest, HandComputedSingleTenantCost) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 10.0, "db", "s", SloIndexByName("S2"));  // 50 DTUs
  auto store = b.Finish();
  ASSERT_OK_AND_ASSIGN(
      const ArchitectureCatalog catalog,
      ArchitectureCatalog::Parse(
          "resource vcpu 1.0\n"
          "resource memory_gb 1.0\n"
          "resource storage_gb 1.0\n"
          "architecture solo kind=standard vcpus=1 memory_gb=1 "
          "storage_gb=1 capacity_dtus=100\n"));
  // Node price: 1+1+1 = $3/day. 10 active days -> $30 infra; one
  // attach (0.05) + one observed-drop detach (0.02) -> $0.07 ops.
  ArchitectureAssignmentPlan plan;
  ASSERT_OK_AND_ASSIGN(const DeploymentReport report,
                       SimulateDeployment(store, plan, catalog, {}));
  EXPECT_EQ(report.placements, 1u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.sla_violations, 0u);
  EXPECT_NEAR(report.node_days, 10.0, 1e-9);
  EXPECT_NEAR(report.infra_cost, 30.0, 1e-9);
  EXPECT_NEAR(report.ops_cost, 0.07, 1e-9);
  EXPECT_NEAR(report.total_cost, 30.07, 1e-9);
  // 50 of 100 DTUs occupied the whole active interval.
  EXPECT_NEAR(report.mean_fragmentation, 0.5, 1e-9);
  ASSERT_EQ(report.per_architecture.size(), 1u);
  EXPECT_EQ(report.per_architecture[0].nodes_used, 1u);
  EXPECT_EQ(report.per_architecture[0].peak_active_nodes, 1u);
}

TEST(SimulateDeploymentTest, MaintenanceContractsPerKind) {
  StoreBuilder b;
  // Three 50-DTU tenants alive days 0..100, one per tier.
  const auto on_dense =
      b.AddDatabase(1, 0.0, 100.0, "a", "s", SloIndexByName("S2"));
  const auto on_std =
      b.AddDatabase(1, 0.0, 100.0, "b", "s", SloIndexByName("S2"));
  const auto on_rep =
      b.AddDatabase(1, 0.0, 100.0, "c", "s", SloIndexByName("S2"));
  auto store = b.Finish();
  const ArchitectureCatalog catalog = TestCatalog();
  ArchitectureAssignmentPlan plan;
  plan.default_index = catalog.default_index();
  plan.assignments[on_dense] = *catalog.IndexOfKind(ArchitectureKind::kDense);
  plan.assignments[on_rep] =
      *catalog.IndexOfKind(ArchitectureKind::kReplicated);
  DeploymentConfig config;
  config.maintenance_interval_days = 30.0;
  config.stale_grace_days = 45.0;
  ASSERT_OK_AND_ASSIGN(const DeploymentReport report,
                       SimulateDeployment(store, plan, catalog, config));
  // Rollouts at days 30/60/90 land on all three tenants (day 120 is
  // after the day-100 drops):
  //  - std tenant: 3 disruptions, 3 SLA violations;
  //  - dense tenant: day 30 inside the 45-day grace (avoided), days
  //    60/90 force-update -> 2 disruptions;
  //  - replicated tenant: 3 transparent hits, no SLA violations.
  EXPECT_EQ(report.disruptions, 5u);
  EXPECT_EQ(report.avoided_disruptions, 1u);
  EXPECT_EQ(report.transparent_disruptions, 3u);
  EXPECT_EQ(report.sla_violations, 5u);
  EXPECT_EQ(report.moves, 0u);
  // Replicated ops: attach 0.30 + detach 0.05 + 3 hits x
  // DisruptionCost(50) = 3 x 0.25.
  const size_t rep_idx = *catalog.IndexOfKind(ArchitectureKind::kReplicated);
  EXPECT_NEAR(report.per_architecture[rep_idx].ops_cost, 1.10, 1e-9);
  (void)on_std;
}

TEST(SimulateDeploymentTest, MidLifeSloGrowthMovesAcrossTiers) {
  StoreBuilder b;
  // Starts at S3 (100 DTUs, fills a dense node exactly), grows to P1
  // (125 DTUs) at day 10: no dense node can ever host it, so it must
  // relocate to the default tier (tenant-visible move + spillover).
  const auto grower =
      b.AddDatabase(1, 0.0, 50.0, "grow", "s", SloIndexByName("S3"));
  b.AddSloChange(grower, 1, 10.0, SloIndexByName("S3"),
                 SloIndexByName("P1"));
  auto store = b.Finish();
  const ArchitectureCatalog catalog = TestCatalog();  // dense cap 100
  ArchitectureAssignmentPlan plan;
  plan.default_index = catalog.default_index();
  plan.assignments[grower] = *catalog.IndexOfKind(ArchitectureKind::kDense);
  ASSERT_OK_AND_ASSIGN(const DeploymentReport report,
                       SimulateDeployment(store, plan, catalog, {}));
  EXPECT_EQ(report.placements, 1u);
  EXPECT_EQ(report.moves, 1u);
  EXPECT_EQ(report.spillovers, 1u);
  EXPECT_EQ(report.rejected, 0u);
  // The resize-forced relocation is the only tenant-visible incident
  // beyond maintenance.
  EXPECT_GE(report.sla_violations, 1u);
  const size_t dense_idx = *catalog.IndexOfKind(ArchitectureKind::kDense);
  EXPECT_EQ(report.per_architecture[dense_idx].placements, 1u);
}

TEST(SimulateDeploymentTest, UnhostableSloIsRejectedEverywhere) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 10.0, "big", "s", SloIndexByName("P6"));  // 1000
  auto store = b.Finish();
  ASSERT_OK_AND_ASSIGN(
      const ArchitectureCatalog catalog,
      ArchitectureCatalog::Parse(
          "resource vcpu 1.0\n"
          "resource memory_gb 1.0\n"
          "resource storage_gb 1.0\n"
          "architecture tiny kind=standard vcpus=1 capacity_dtus=100\n"));
  ASSERT_OK_AND_ASSIGN(const DeploymentReport report,
                       SimulateDeployment(store, {}, catalog, {}));
  EXPECT_EQ(report.placements, 0u);
  EXPECT_EQ(report.rejected, 1u);
  EXPECT_EQ(report.sla_violations, 1u);
  EXPECT_NEAR(report.total_cost, 0.0, 1e-9);
}

TEST(SimulateDeploymentTest, RejectsInvalidPlanAndConfig) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, 10.0);
  auto store = b.Finish();
  const ArchitectureCatalog catalog = TestCatalog();

  ArchitectureAssignmentPlan bad_default;
  bad_default.default_index = catalog.size();
  EXPECT_FALSE(SimulateDeployment(store, bad_default, catalog, {}).ok());

  ArchitectureAssignmentPlan bad_assignment;
  bad_assignment.assignments[id] = catalog.size() + 3;
  EXPECT_FALSE(SimulateDeployment(store, bad_assignment, catalog, {}).ok());

  DeploymentConfig bad_config;
  bad_config.maintenance_interval_days = 0.0;
  EXPECT_FALSE(SimulateDeployment(store, {}, catalog, bad_config).ok());
}

}  // namespace
}  // namespace cloudsurv::core
