#include <algorithm>

#include "features/features.h"
#include "gtest/gtest.h"
#include "telemetry/types.h"
#include "tests/test_util.h"

namespace cloudsurv::features {
namespace {

using cloudsurv::testing::StoreBuilder;
using telemetry::SloIndexByName;

TEST(NameShapeTest, HumanStyleName) {
  const auto f = NameShapeFeatures("testtest");
  EXPECT_DOUBLE_EQ(f[0], 8.0);              // length
  EXPECT_DOUBLE_EQ(f[1], 3.0);              // distinct: t, e, s
  EXPECT_DOUBLE_EQ(f[2], 3.0 / 8.0);        // distinct rate
  EXPECT_DOUBLE_EQ(f[3], 0.0);              // no digits
  EXPECT_DOUBLE_EQ(f[4], 0.0);              // no mixed case
  EXPECT_DOUBLE_EQ(f[5], 0.0);              // no symbols
}

TEST(NameShapeTest, AutomatedStyleName) {
  const auto f = NameShapeFeatures("ci-a8f3e2d9c1");
  EXPECT_DOUBLE_EQ(f[0], 13.0);
  EXPECT_DOUBLE_EQ(f[1], 12.0);  // only 'c' repeats
  EXPECT_GT(f[2], 0.7);   // high distinct rate
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // letters + digits
  EXPECT_DOUBLE_EQ(f[5], 1.0);  // hyphen
}

TEST(NameShapeTest, MixedCaseDetected) {
  const auto f = NameShapeFeatures("MyDb");
  EXPECT_DOUBLE_EQ(f[4], 1.0);
}

TEST(NameShapeTest, EmptyNameIsAllZero) {
  const auto f = NameShapeFeatures("");
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NameNgramTest, CountsBigramsIntoBuckets) {
  const auto f = NameNgramFeatures("abc", 4);
  double total = 0.0;
  for (double v : f) total += v;
  EXPECT_DOUBLE_EQ(total, 2.0);  // "ab", "bc"
  EXPECT_EQ(f.size(), 4u);
  const auto empty = NameNgramFeatures("x", 4);
  for (double v : empty) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CreationTimeTest, LocalFieldsAndHoliday) {
  StoreBuilder b;
  // 2017-01-02T18:30 UTC = 2017-01-02 10:30 local (UTC-8) = holiday in
  // the test calendar.
  const double day = 1.0 + 18.5 / 24.0;
  b.AddDatabase(1, day, -1.0);
  auto store = b.Finish();
  const auto f = CreationTimeFeatures(store, store.databases()[0]);
  EXPECT_DOUBLE_EQ(f[0], 1.0);   // Monday
  EXPECT_DOUBLE_EQ(f[1], 2.0);   // day of month
  EXPECT_DOUBLE_EQ(f[2], 1.0);   // week of year
  EXPECT_DOUBLE_EQ(f[3], 1.0);   // January
  EXPECT_DOUBLE_EQ(f[4], 10.0);  // 10am local
  EXPECT_DOUBLE_EQ(f[5], 1.0);   // holiday
}

TEST(SizeFeaturesTest, OnlyObservationWindowCounts) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0);
  b.AddSizeSample(id, 1, 0.5, 100.0);
  b.AddSizeSample(id, 1, 1.0, 150.0);
  b.AddSizeSample(id, 1, 1.5, 200.0);
  b.AddSizeSample(id, 1, 10.0, 9999.0);  // beyond the 2-day window
  auto store = b.Finish();
  const auto f = SizeFeatures(store.databases()[0], b.DayTs(2.0));
  EXPECT_DOUBLE_EQ(f[0], 200.0);  // max
  EXPECT_DOUBLE_EQ(f[1], 100.0);  // min
  EXPECT_DOUBLE_EQ(f[2], 150.0);  // avg
  EXPECT_GT(f[3], 0.0);           // std
  EXPECT_DOUBLE_EQ(f[4], 1.0);    // (200-100)/100 relative change
}

TEST(SizeFeaturesTest, NoSamplesIsAllZero) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  const auto f = SizeFeatures(store.databases()[0], b.DayTs(2.0));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SloFeaturesTest, TracksChangesWithinWindowOnly) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0, "db", "s", SloIndexByName("S0"));
  b.AddSloChange(id, 1, 1.0, SloIndexByName("S0"), SloIndexByName("S2"));
  b.AddSloChange(id, 1, 1.5, SloIndexByName("S2"), SloIndexByName("P1"));
  b.AddSloChange(id, 1, 30.0, SloIndexByName("P1"), SloIndexByName("S0"));
  auto store = b.Finish();
  const auto f = SloFeatures(store.databases()[0], b.DayTs(2.0));
  EXPECT_DOUBLE_EQ(f[0], 2.0);  // changes in window
  EXPECT_DOUBLE_EQ(f[1], 1.0);  // one crossed editions (S2 -> P1)
  EXPECT_DOUBLE_EQ(f[2], 3.0);  // distinct SLOs: S0, S2, P1
  EXPECT_DOUBLE_EQ(f[3], 2.0);  // distinct editions
  EXPECT_DOUBLE_EQ(f[4], 2.0);  // Premium at prediction
  EXPECT_DOUBLE_EQ(f[5], static_cast<double>(SloIndexByName("P1")));
  EXPECT_DOUBLE_EQ(f[6], 1.0);  // edition delta (Premium - Standard)
  EXPECT_DOUBLE_EQ(f[8], 125.0);  // max DTUs
  EXPECT_DOUBLE_EQ(f[9], 10.0);   // min DTUs
}

TEST(SloFeaturesTest, NoChanges) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0, "db", "s", SloIndexByName("Basic"));
  auto store = b.Finish();
  const auto f = SloFeatures(store.databases()[0], b.DayTs(2.0));
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[2], 1.0);
  EXPECT_DOUBLE_EQ(f[8], 5.0);
  EXPECT_DOUBLE_EQ(f[10], 5.0);
}

TEST(SubscriptionTypeTest, OneHot) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0, "db", "s", 0,
                telemetry::SubscriptionType::kFreeTrial);
  auto store = b.Finish();
  const auto f = SubscriptionTypeFeatures(store.databases()[0]);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  for (size_t i = 1; i < f.size(); ++i) EXPECT_DOUBLE_EQ(f[i], 0.0);
}

TEST(SubscriptionHistoryTest, GroupsAndStats) {
  StoreBuilder b;
  // Target database created at day 50.
  // Sibling A: created day 10, dropped day 20 -> group 2 only.
  // Sibling B: created day 30, alive at 50 (dropped day 80, i.e. after
  //   Tp=52 -> still "alive at Tc") -> groups 1 and 2.
  // Sibling C: created day 51 (between Tc and Tp) -> group 3.
  // Sibling D: created day 60 -> invisible at Tp.
  const auto a = b.AddDatabase(5, 10.0, 20.0);
  b.AddSizeSample(a, 5, 11.0, 100.0);
  const auto bee = b.AddDatabase(5, 30.0, 80.0);
  b.AddSizeSample(bee, 5, 31.0, 300.0);
  b.AddDatabase(5, 51.0, -1.0);
  b.AddDatabase(5, 60.0, -1.0);
  const auto target = b.AddDatabase(5, 50.0, -1.0);
  auto store = b.Finish();

  const auto record = *store.FindDatabase(target);
  const auto f = SubscriptionHistoryFeatures(store, record, b.DayTs(52.0));
  ASSERT_EQ(f.size(), 19u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // group 1: sibling B
  EXPECT_DOUBLE_EQ(f[1], 2.0);  // group 2: A and B
  EXPECT_DOUBLE_EQ(f[2], 1.0);  // group 3: C
  // Group 1 size stats (only B, peak size 300).
  EXPECT_DOUBLE_EQ(f[3], 300.0);  // max
  EXPECT_DOUBLE_EQ(f[4], 300.0);  // min
  // Group 1 lifespan: B observed from day 30 to min(80, 52) = 22 days.
  EXPECT_NEAR(f[7], 22.0, 1e-9);   // max lifespan
  EXPECT_NEAR(f[9], 22.0, 1e-9);   // avg lifespan
  // Group 2 size stats: A peak 100, B peak 300.
  EXPECT_DOUBLE_EQ(f[11], 300.0);  // max
  EXPECT_DOUBLE_EQ(f[12], 100.0);  // min
  EXPECT_DOUBLE_EQ(f[13], 200.0);  // avg
  // Group 2 lifespans: A = 10 (dropped), B = 22 (censored at Tp).
  EXPECT_NEAR(f[15], 22.0, 1e-9);  // max
  EXPECT_NEAR(f[16], 10.0, 1e-9);  // min
}

TEST(SubscriptionHistoryTest, LonelyDatabaseIsAllZero) {
  StoreBuilder b;
  const auto id = b.AddDatabase(9, 5.0, -1.0);
  auto store = b.Finish();
  const auto f =
      SubscriptionHistoryFeatures(store, *store.FindDatabase(id),
                                  b.DayTs(7.0));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ExtractFeaturesTest, VectorMatchesNamesLayout) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0);
  b.AddSizeSample(id, 1, 0.5, 10.0);
  auto store = b.Finish();
  FeatureConfig config;
  auto features = ExtractFeatures(store, store.databases()[0], config);
  ASSERT_TRUE(features.ok()) << features.status();
  EXPECT_EQ(features->size(), FeatureNames(config).size());
}

TEST(ExtractFeaturesTest, ConfigTogglesChangeLayout) {
  FeatureConfig all;
  FeatureConfig minimal;
  minimal.include_names = false;
  minimal.include_subscription_history = false;
  EXPECT_GT(FeatureNames(all).size(), FeatureNames(minimal).size());
  FeatureConfig with_ngrams = all;
  with_ngrams.include_name_ngrams = true;
  EXPECT_EQ(FeatureNames(with_ngrams).size(),
            FeatureNames(all).size() + 8);
}

TEST(ExtractFeaturesTest, RejectsDatabaseDroppedInsideWindow) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 1.0);  // dropped after 1 day
  auto store = b.Finish();
  FeatureConfig config;  // 2-day observation
  auto features = ExtractFeatures(store, store.databases()[0], config);
  EXPECT_FALSE(features.ok());
}

TEST(ExtractFeaturesTest, RejectsInvalidObservationDays) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  FeatureConfig config;
  config.observation_days = 0.0;
  EXPECT_FALSE(ExtractFeatures(store, store.databases()[0], config).ok());
}

TEST(BuildDatasetTest, ParallelArraysAndLabels) {
  StoreBuilder b;
  const auto id1 = b.AddDatabase(1, 0.0, 40.0);
  const auto id2 = b.AddDatabase(1, 5.0, 15.0);
  auto store = b.Finish();
  FeatureConfig config;
  auto dataset = BuildDataset(store, {id1, id2}, {1, 0}, config);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->num_rows(), 2u);
  EXPECT_EQ(dataset->label(0), 1);
  EXPECT_EQ(dataset->label(1), 0);
  EXPECT_EQ(dataset->num_features(), FeatureNames(config).size());
  EXPECT_FALSE(BuildDataset(store, {id1}, {1, 0}, config).ok());
  EXPECT_FALSE(BuildDataset(store, {9999}, {1}, config).ok());
}

TEST(BuildDatasetTest, MulticlassLabels) {
  StoreBuilder b;
  const auto a = b.AddDatabase(1, 0.0, 40.0);
  const auto c = b.AddDatabase(1, 5.0, 15.0);
  const auto e = b.AddDatabase(1, 10.0, -1.0);
  auto store = b.Finish();
  FeatureConfig config;
  auto dataset = BuildDataset(store, {a, c, e}, {2, 1, 0}, config, 3);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->num_classes(), 3);
  // Labels above num_classes are rejected.
  EXPECT_FALSE(BuildDataset(store, {a}, {2}, config, 2).ok());
}

TEST(ExtractFeaturesTest, BirthHorizonSeesNoTelemetry) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0, "db", "s",
                                SloIndexByName("S0"));
  b.AddSizeSample(id, 1, 0.5, 100.0);
  b.AddSloChange(id, 1, 1.0, SloIndexByName("S0"), SloIndexByName("S1"));
  auto store = b.Finish();
  FeatureConfig config;
  config.observation_days = 1.0 / 86400.0;  // one second after creation
  auto features = ExtractFeatures(store, store.databases()[0], config);
  ASSERT_TRUE(features.ok()) << features.status();
  const auto names = FeatureNames(config);
  // Size features must be all zero (no samples visible yet) and the SLO
  // change at day 1 must be invisible.
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].rfind("size_", 0) == 0) {
      EXPECT_DOUBLE_EQ((*features)[i], 0.0) << names[i];
    }
    if (names[i] == "slo_num_changes") {
      EXPECT_DOUBLE_EQ((*features)[i], 0.0);
    }
  }
}

TEST(FeatureFamilyNamesTest, PartitionCoversAllFeatures) {
  FeatureConfig config;
  const auto all = FeatureNames(config);
  size_t total = 0;
  for (const char* family :
       {"creation_time", "names", "size", "slo", "subscription_type",
        "subscription_history"}) {
    auto names = FeatureFamilyNames(config, family);
    ASSERT_TRUE(names.ok()) << family;
    total += names->size();
    // Every family feature must exist in the full layout.
    for (const auto& n : *names) {
      EXPECT_NE(std::find(all.begin(), all.end(), n), all.end()) << n;
    }
  }
  EXPECT_EQ(total, all.size());
  EXPECT_FALSE(FeatureFamilyNames(config, "bogus").ok());
}

}  // namespace
}  // namespace cloudsurv::features
