#include <algorithm>
#include <cstring>
#include <vector>

#include "common/thread_pool.h"
#include "features/feature_plan.h"
#include "features/features.h"
#include "gtest/gtest.h"
#include "telemetry/types.h"
#include "tests/test_util.h"

namespace cloudsurv::features {
namespace {

using cloudsurv::testing::StoreBuilder;
using telemetry::SloIndexByName;

TEST(NameShapeTest, HumanStyleName) {
  const auto f = NameShapeFeatures("testtest");
  EXPECT_DOUBLE_EQ(f[0], 8.0);              // length
  EXPECT_DOUBLE_EQ(f[1], 3.0);              // distinct: t, e, s
  EXPECT_DOUBLE_EQ(f[2], 3.0 / 8.0);        // distinct rate
  EXPECT_DOUBLE_EQ(f[3], 0.0);              // no digits
  EXPECT_DOUBLE_EQ(f[4], 0.0);              // no mixed case
  EXPECT_DOUBLE_EQ(f[5], 0.0);              // no symbols
}

TEST(NameShapeTest, AutomatedStyleName) {
  const auto f = NameShapeFeatures("ci-a8f3e2d9c1");
  EXPECT_DOUBLE_EQ(f[0], 13.0);
  EXPECT_DOUBLE_EQ(f[1], 12.0);  // only 'c' repeats
  EXPECT_GT(f[2], 0.7);   // high distinct rate
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // letters + digits
  EXPECT_DOUBLE_EQ(f[5], 1.0);  // hyphen
}

TEST(NameShapeTest, MixedCaseDetected) {
  const auto f = NameShapeFeatures("MyDb");
  EXPECT_DOUBLE_EQ(f[4], 1.0);
}

TEST(NameShapeTest, EmptyNameIsAllZero) {
  const auto f = NameShapeFeatures("");
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NameNgramTest, CountsBigramsIntoBuckets) {
  const auto f = NameNgramFeatures("abc", 4);
  double total = 0.0;
  for (double v : f) total += v;
  EXPECT_DOUBLE_EQ(total, 2.0);  // "ab", "bc"
  EXPECT_EQ(f.size(), 4u);
  const auto empty = NameNgramFeatures("x", 4);
  for (double v : empty) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CreationTimeTest, LocalFieldsAndHoliday) {
  StoreBuilder b;
  // 2017-01-02T18:30 UTC = 2017-01-02 10:30 local (UTC-8) = holiday in
  // the test calendar.
  const double day = 1.0 + 18.5 / 24.0;
  b.AddDatabase(1, day, -1.0);
  auto store = b.Finish();
  const auto f = CreationTimeFeatures(store, store.databases()[0]);
  EXPECT_DOUBLE_EQ(f[0], 1.0);   // Monday
  EXPECT_DOUBLE_EQ(f[1], 2.0);   // day of month
  EXPECT_DOUBLE_EQ(f[2], 1.0);   // week of year
  EXPECT_DOUBLE_EQ(f[3], 1.0);   // January
  EXPECT_DOUBLE_EQ(f[4], 10.0);  // 10am local
  EXPECT_DOUBLE_EQ(f[5], 1.0);   // holiday
}

TEST(SizeFeaturesTest, OnlyObservationWindowCounts) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0);
  b.AddSizeSample(id, 1, 0.5, 100.0);
  b.AddSizeSample(id, 1, 1.0, 150.0);
  b.AddSizeSample(id, 1, 1.5, 200.0);
  b.AddSizeSample(id, 1, 10.0, 9999.0);  // beyond the 2-day window
  auto store = b.Finish();
  const auto f = SizeFeatures(store.databases()[0], b.DayTs(2.0));
  EXPECT_DOUBLE_EQ(f[0], 200.0);  // max
  EXPECT_DOUBLE_EQ(f[1], 100.0);  // min
  EXPECT_DOUBLE_EQ(f[2], 150.0);  // avg
  EXPECT_GT(f[3], 0.0);           // std
  EXPECT_DOUBLE_EQ(f[4], 1.0);    // (200-100)/100 relative change
}

TEST(SizeFeaturesTest, NoSamplesIsAllZero) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  const auto f = SizeFeatures(store.databases()[0], b.DayTs(2.0));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SloFeaturesTest, TracksChangesWithinWindowOnly) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0, "db", "s", SloIndexByName("S0"));
  b.AddSloChange(id, 1, 1.0, SloIndexByName("S0"), SloIndexByName("S2"));
  b.AddSloChange(id, 1, 1.5, SloIndexByName("S2"), SloIndexByName("P1"));
  b.AddSloChange(id, 1, 30.0, SloIndexByName("P1"), SloIndexByName("S0"));
  auto store = b.Finish();
  const auto f = SloFeatures(store.databases()[0], b.DayTs(2.0));
  EXPECT_DOUBLE_EQ(f[0], 2.0);  // changes in window
  EXPECT_DOUBLE_EQ(f[1], 1.0);  // one crossed editions (S2 -> P1)
  EXPECT_DOUBLE_EQ(f[2], 3.0);  // distinct SLOs: S0, S2, P1
  EXPECT_DOUBLE_EQ(f[3], 2.0);  // distinct editions
  EXPECT_DOUBLE_EQ(f[4], 2.0);  // Premium at prediction
  EXPECT_DOUBLE_EQ(f[5], static_cast<double>(SloIndexByName("P1")));
  EXPECT_DOUBLE_EQ(f[6], 1.0);  // edition delta (Premium - Standard)
  EXPECT_DOUBLE_EQ(f[8], 125.0);  // max DTUs
  EXPECT_DOUBLE_EQ(f[9], 10.0);   // min DTUs
}

TEST(SloFeaturesTest, NoChanges) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0, "db", "s", SloIndexByName("Basic"));
  auto store = b.Finish();
  const auto f = SloFeatures(store.databases()[0], b.DayTs(2.0));
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[2], 1.0);
  EXPECT_DOUBLE_EQ(f[8], 5.0);
  EXPECT_DOUBLE_EQ(f[10], 5.0);
}

TEST(SubscriptionTypeTest, OneHot) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0, "db", "s", 0,
                telemetry::SubscriptionType::kFreeTrial);
  auto store = b.Finish();
  const auto f = SubscriptionTypeFeatures(store.databases()[0]);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);
  for (size_t i = 1; i < f.size(); ++i) EXPECT_DOUBLE_EQ(f[i], 0.0);
}

TEST(SubscriptionHistoryTest, GroupsAndStats) {
  StoreBuilder b;
  // Target database created at day 50.
  // Sibling A: created day 10, dropped day 20 -> group 2 only.
  // Sibling B: created day 30, alive at 50 (dropped day 80, i.e. after
  //   Tp=52 -> still "alive at Tc") -> groups 1 and 2.
  // Sibling C: created day 51 (between Tc and Tp) -> group 3.
  // Sibling D: created day 60 -> invisible at Tp.
  const auto a = b.AddDatabase(5, 10.0, 20.0);
  b.AddSizeSample(a, 5, 11.0, 100.0);
  const auto bee = b.AddDatabase(5, 30.0, 80.0);
  b.AddSizeSample(bee, 5, 31.0, 300.0);
  b.AddDatabase(5, 51.0, -1.0);
  b.AddDatabase(5, 60.0, -1.0);
  const auto target = b.AddDatabase(5, 50.0, -1.0);
  auto store = b.Finish();

  const auto record = *store.FindDatabase(target);
  const auto f = SubscriptionHistoryFeatures(store, record, b.DayTs(52.0));
  ASSERT_EQ(f.size(), 19u);
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // group 1: sibling B
  EXPECT_DOUBLE_EQ(f[1], 2.0);  // group 2: A and B
  EXPECT_DOUBLE_EQ(f[2], 1.0);  // group 3: C
  // Group 1 size stats (only B, peak size 300).
  EXPECT_DOUBLE_EQ(f[3], 300.0);  // max
  EXPECT_DOUBLE_EQ(f[4], 300.0);  // min
  // Group 1 lifespan: B observed from day 30 to min(80, 52) = 22 days.
  EXPECT_NEAR(f[7], 22.0, 1e-9);   // max lifespan
  EXPECT_NEAR(f[9], 22.0, 1e-9);   // avg lifespan
  // Group 2 size stats: A peak 100, B peak 300.
  EXPECT_DOUBLE_EQ(f[11], 300.0);  // max
  EXPECT_DOUBLE_EQ(f[12], 100.0);  // min
  EXPECT_DOUBLE_EQ(f[13], 200.0);  // avg
  // Group 2 lifespans: A = 10 (dropped), B = 22 (censored at Tp).
  EXPECT_NEAR(f[15], 22.0, 1e-9);  // max
  EXPECT_NEAR(f[16], 10.0, 1e-9);  // min
}

TEST(SubscriptionHistoryTest, LonelyDatabaseIsAllZero) {
  StoreBuilder b;
  const auto id = b.AddDatabase(9, 5.0, -1.0);
  auto store = b.Finish();
  const auto f =
      SubscriptionHistoryFeatures(store, *store.FindDatabase(id),
                                  b.DayTs(7.0));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ExtractFeaturesTest, VectorMatchesNamesLayout) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0);
  b.AddSizeSample(id, 1, 0.5, 10.0);
  auto store = b.Finish();
  FeatureConfig config;
  auto features = ExtractFeatures(store, store.databases()[0], config);
  ASSERT_TRUE(features.ok()) << features.status();
  EXPECT_EQ(features->size(), FeatureNames(config).size());
}

TEST(ExtractFeaturesTest, ConfigTogglesChangeLayout) {
  FeatureConfig all;
  FeatureConfig minimal;
  minimal.include_names = false;
  minimal.include_subscription_history = false;
  EXPECT_GT(FeatureNames(all).size(), FeatureNames(minimal).size());
  FeatureConfig with_ngrams = all;
  with_ngrams.include_name_ngrams = true;
  EXPECT_EQ(FeatureNames(with_ngrams).size(),
            FeatureNames(all).size() + 8);
}

TEST(ExtractFeaturesTest, RejectsDatabaseDroppedInsideWindow) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 1.0);  // dropped after 1 day
  auto store = b.Finish();
  FeatureConfig config;  // 2-day observation
  auto features = ExtractFeatures(store, store.databases()[0], config);
  EXPECT_FALSE(features.ok());
}

TEST(ExtractFeaturesTest, RejectsInvalidObservationDays) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  FeatureConfig config;
  config.observation_days = 0.0;
  EXPECT_FALSE(ExtractFeatures(store, store.databases()[0], config).ok());
}

TEST(BuildDatasetTest, ParallelArraysAndLabels) {
  StoreBuilder b;
  const auto id1 = b.AddDatabase(1, 0.0, 40.0);
  const auto id2 = b.AddDatabase(1, 5.0, 15.0);
  auto store = b.Finish();
  FeatureConfig config;
  auto dataset = BuildDataset(store, {id1, id2}, {1, 0}, config);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->num_rows(), 2u);
  EXPECT_EQ(dataset->label(0), 1);
  EXPECT_EQ(dataset->label(1), 0);
  EXPECT_EQ(dataset->num_features(), FeatureNames(config).size());
  EXPECT_FALSE(BuildDataset(store, {id1}, {1, 0}, config).ok());
  EXPECT_FALSE(BuildDataset(store, {9999}, {1}, config).ok());
}

TEST(BuildDatasetTest, MulticlassLabels) {
  StoreBuilder b;
  const auto a = b.AddDatabase(1, 0.0, 40.0);
  const auto c = b.AddDatabase(1, 5.0, 15.0);
  const auto e = b.AddDatabase(1, 10.0, -1.0);
  auto store = b.Finish();
  FeatureConfig config;
  auto dataset = BuildDataset(store, {a, c, e}, {2, 1, 0}, config, 3);
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->num_classes(), 3);
  // Labels above num_classes are rejected.
  EXPECT_FALSE(BuildDataset(store, {a}, {2}, config, 2).ok());
}

TEST(ExtractFeaturesTest, BirthHorizonSeesNoTelemetry) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, -1.0, "db", "s",
                                SloIndexByName("S0"));
  b.AddSizeSample(id, 1, 0.5, 100.0);
  b.AddSloChange(id, 1, 1.0, SloIndexByName("S0"), SloIndexByName("S1"));
  auto store = b.Finish();
  FeatureConfig config;
  config.observation_days = 1.0 / 86400.0;  // one second after creation
  auto features = ExtractFeatures(store, store.databases()[0], config);
  ASSERT_TRUE(features.ok()) << features.status();
  const auto names = FeatureNames(config);
  // Size features must be all zero (no samples visible yet) and the SLO
  // change at day 1 must be invisible.
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i].rfind("size_", 0) == 0) {
      EXPECT_DOUBLE_EQ((*features)[i], 0.0) << names[i];
    }
    if (names[i] == "slo_num_changes") {
      EXPECT_DOUBLE_EQ((*features)[i], 0.0);
    }
  }
}

TEST(FeatureFamilyNamesTest, PartitionCoversAllFeatures) {
  FeatureConfig config;
  const auto all = FeatureNames(config);
  size_t total = 0;
  for (const char* family :
       {"creation_time", "names", "size", "slo", "subscription_type",
        "subscription_history"}) {
    auto names = FeatureFamilyNames(config, family);
    ASSERT_TRUE(names.ok()) << family;
    total += names->size();
    // Every family feature must exist in the full layout.
    for (const auto& n : *names) {
      EXPECT_NE(std::find(all.begin(), all.end(), n), all.end()) << n;
    }
  }
  EXPECT_EQ(total, all.size());
  EXPECT_FALSE(FeatureFamilyNames(config, "bogus").ok());
}

// ---------------------------------------------------------------------------
// FeaturePlan batch extraction: bit-identity against the scalar path.
// ---------------------------------------------------------------------------

// A store that exercises every sibling-table edge the batch path
// handles specially: a rich subscription with a creation tie, a sibling
// created exactly at the prediction boundary, a sibling dropped exactly
// at a target's creation time, plus a lonely database (empty sibling
// context), a single-database subscription, and an all-censored
// subscription. `eligible` collects ids that survive the default 2-day
// window; `dropped_in_window` is one id the scalar path rejects.
struct EdgeCaseStore {
  telemetry::TelemetryStore store;
  std::vector<telemetry::DatabaseId> eligible;
  telemetry::DatabaseId dropped_in_window = 0;
};

EdgeCaseStore MakeEdgeCaseStore() {
  StoreBuilder b;
  // Subscription 1: the rich one.
  const auto d0 = b.AddDatabase(1, 0.0, 40.0, "alpha-db", "srv1",
                                SloIndexByName("S0"),
                                telemetry::SubscriptionType::kPayAsYouGo);
  b.AddSizeSample(d0, 1, 0.5, 10.0);
  b.AddSizeSample(d0, 1, 1.0, 50.0);
  b.AddSizeSample(d0, 1, 1.8, 30.0);
  b.AddSloChange(d0, 1, 1.0, SloIndexByName("S0"), SloIndexByName("S2"));
  // Creation tie: same timestamp as d0.
  const auto d1 = b.AddDatabase(1, 0.0, -1.0, "MyDb9", "srv1",
                                SloIndexByName("S1"),
                                telemetry::SubscriptionType::kFreeTrial);
  // Dropped inside its own 2-day window: ineligible as a target, but a
  // visible group-3 sibling for d0.
  const auto d2 = b.AddDatabase(1, 1.0, 1.5, "tmp", "srv2");
  // Created exactly at d0's prediction time (Tp = day 2).
  const auto d3 = b.AddDatabase(1, 2.0, -1.0, "boundary", "srv2");
  // Dropped exactly at d4's creation time (Tc = day 5): excluded from
  // d4's group 1 but present in its group 2.
  const auto d5 = b.AddDatabase(1, 3.0, 5.0, "edge", "srv3");
  b.AddSizeSample(d5, 1, 3.5, 77.0);
  const auto d4 = b.AddDatabase(1, 5.0, 30.0, "late-db", "srv1",
                                SloIndexByName("S2"),
                                telemetry::SubscriptionType::kStudent);
  b.AddSizeSample(d4, 1, 5.5, 200.0);
  // Subscription 2: lonely database.
  const auto l0 = b.AddDatabase(2, 1.0, -1.0, "lonely", "srv9");
  // Subscription 3: all siblings censored.
  const auto c0 = b.AddDatabase(3, 0.0, -1.0, "cens-a", "srvA");
  b.AddSizeSample(c0, 3, 0.25, 5.0);
  const auto c1 = b.AddDatabase(3, 1.0, -1.0, "cens-b", "srvA");
  const auto c2 = b.AddDatabase(3, 4.0, -1.0, "cens-c", "srvB");
  // Subscription 4: single database, dropped well after the window.
  const auto s0 = b.AddDatabase(4, 2.0, 90.0, "solo", "srvS");
  return EdgeCaseStore{b.Finish(),
                       {d0, d1, d3, d4, d5, l0, c0, c1, c2, s0},
                       d2};
}

FeatureConfig ConfigFromMask(unsigned mask) {
  FeatureConfig config;
  config.include_creation_time = (mask & 1u) != 0;
  config.include_names = (mask & 2u) != 0;
  config.include_size = (mask & 4u) != 0;
  config.include_slo = (mask & 8u) != 0;
  config.include_subscription_type = (mask & 16u) != 0;
  config.include_subscription_history = (mask & 32u) != 0;
  config.include_name_ngrams = (mask & 64u) != 0;
  return config;
}

TEST(FeaturePlanTest, CompileLayoutMatchesFeatureNames) {
  for (unsigned mask = 0; mask < 128; ++mask) {
    const FeatureConfig config = ConfigFromMask(mask);
    auto plan = FeaturePlan::Compile(config);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_EQ(plan->num_features(), FeatureNames(config).size()) << mask;
    size_t sum = 0;
    for (size_t f = 0; f < kNumFeatureFamilies; ++f) {
      const auto& slot = plan->family(static_cast<FeatureFamily>(f));
      if (slot.enabled) {
        EXPECT_EQ(slot.offset, sum) << mask << " family " << f;
        sum += slot.width;
      } else {
        EXPECT_EQ(slot.width, 0u);
      }
    }
    EXPECT_EQ(sum, plan->num_features()) << mask;
  }
}

TEST(FeaturePlanTest, CompileRejectsInvalidObservationDays) {
  FeatureConfig config;
  config.observation_days = 0.0;
  const auto plan = FeaturePlan::Compile(config);
  ASSERT_FALSE(plan.ok());
  StoreBuilder b;
  b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  const auto scalar = ExtractFeatures(store, store.databases()[0], config);
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(plan.status().message(), scalar.status().message());
}

// The core acceptance test: every toggle combination, every edge-case
// target, EXPECT_EQ on raw doubles between the batch matrix and the
// scalar per-row extractor.
TEST(FeaturePlanTest, BatchBitIdenticalToScalarForAllToggles) {
  const EdgeCaseStore ecs = MakeEdgeCaseStore();
  for (unsigned mask = 0; mask < 128; ++mask) {
    const FeatureConfig config = ConfigFromMask(mask);
    auto plan = FeaturePlan::Compile(config);
    ASSERT_TRUE(plan.ok()) << plan.status();
    const size_t width = plan->num_features();
    std::vector<double> matrix(ecs.eligible.size() * width, -42.0);
    ASSERT_OK(plan->ExtractBatch(ecs.store, ecs.eligible, matrix.data()));
    for (size_t i = 0; i < ecs.eligible.size(); ++i) {
      auto record = ecs.store.FindDatabase(ecs.eligible[i]);
      ASSERT_TRUE(record.ok());
      auto scalar = ExtractFeatures(ecs.store, *record, config);
      ASSERT_TRUE(scalar.ok()) << scalar.status();
      ASSERT_EQ(scalar->size(), width);
      for (size_t c = 0; c < width; ++c) {
        EXPECT_EQ(matrix[i * width + c], (*scalar)[c])
            << "mask " << mask << " id " << ecs.eligible[i] << " col " << c;
      }
    }
  }
}

TEST(FeaturePlanTest, StrictModeReturnsScalarErrorsInIdsOrder) {
  const EdgeCaseStore ecs = MakeEdgeCaseStore();
  FeatureConfig config;
  auto plan = FeaturePlan::Compile(config);
  ASSERT_OK(plan.status());
  std::vector<double> matrix(3 * plan->num_features());

  // Unknown id: same message as FindDatabase.
  const std::vector<telemetry::DatabaseId> unknown = {ecs.eligible[0], 9999,
                                                      ecs.dropped_in_window};
  const Status unknown_status =
      plan->ExtractBatch(ecs.store, unknown, matrix.data());
  ASSERT_FALSE(unknown_status.ok());
  EXPECT_EQ(unknown_status.message(),
            ecs.store.FindDatabase(9999).status().message());

  // Dropped inside the window: same message as scalar ExtractFeatures,
  // and it is the FIRST failure in ids order that surfaces.
  const std::vector<telemetry::DatabaseId> dropped = {
      ecs.eligible[0], ecs.dropped_in_window, 9999};
  const Status dropped_status =
      plan->ExtractBatch(ecs.store, dropped, matrix.data());
  ASSERT_FALSE(dropped_status.ok());
  const auto scalar = ExtractFeatures(
      ecs.store, *ecs.store.FindDatabase(ecs.dropped_in_window), config);
  ASSERT_FALSE(scalar.ok());
  EXPECT_EQ(dropped_status.message(), scalar.status().message());
}

TEST(FeaturePlanTest, PartialMarksFailedRowsAndLeavesThemUntouched) {
  const EdgeCaseStore ecs = MakeEdgeCaseStore();
  FeatureConfig config;
  auto plan = FeaturePlan::Compile(config);
  ASSERT_OK(plan.status());
  const size_t width = plan->num_features();
  const std::vector<telemetry::DatabaseId> ids = {
      ecs.eligible[0], 9999, ecs.dropped_in_window, ecs.eligible[1]};
  std::vector<double> matrix(ids.size() * width, 7.5);
  std::vector<uint8_t> row_ok;
  ASSERT_OK(
      plan->ExtractBatchPartial(ecs.store, ids, matrix.data(), &row_ok));
  ASSERT_EQ(row_ok.size(), ids.size());
  EXPECT_EQ(row_ok[0], 1);
  EXPECT_EQ(row_ok[1], 0);
  EXPECT_EQ(row_ok[2], 0);
  EXPECT_EQ(row_ok[3], 1);
  // Failed rows keep the caller's sentinel fill.
  for (size_t c = 0; c < width; ++c) {
    EXPECT_EQ(matrix[1 * width + c], 7.5);
    EXPECT_EQ(matrix[2 * width + c], 7.5);
  }
  // Extracted rows are bit-identical to scalar.
  for (const size_t row : {size_t{0}, size_t{3}}) {
    auto scalar = ExtractFeatures(
        ecs.store, *ecs.store.FindDatabase(ids[row]), config);
    ASSERT_OK(scalar.status());
    for (size_t c = 0; c < width; ++c) {
      EXPECT_EQ(matrix[row * width + c], (*scalar)[c]) << row << "," << c;
    }
  }
}

TEST(FeaturePlanTest, ThreadPoolFanoutIsBitIdenticalToSerial) {
  // Large enough cohort to cross the fan-out threshold, with skewed
  // subscription sizes so chunk cuts land on real group boundaries.
  StoreBuilder b;
  std::vector<telemetry::DatabaseId> ids;
  uint64_t rng = 0x5EEDu;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(rng >> 33);
  };
  for (int i = 0; i < 400; ++i) {
    // Subscription sizes skew: a few big subscriptions, many small.
    const int sub = 1 + static_cast<int>(next() % 12 == 0 ? next() % 3
                                                          : 3 + next() % 20);
    const double create_day = static_cast<double>(next() % 80) / 2.0;
    const bool censored = next() % 3 == 0;
    const double drop_day =
        censored ? -1.0 : create_day + 2.0 + static_cast<double>(next() % 60);
    const auto id = b.AddDatabase(
        sub, create_day, drop_day, "db" + std::to_string(i),
        "srv" + std::to_string(i % 7),
        static_cast<int>(next() % 4),
        static_cast<telemetry::SubscriptionType>(next() % 6));
    if (next() % 2 == 0) {
      b.AddSizeSample(id, sub, create_day + 0.5,
                      static_cast<double>(1 + next() % 500));
    }
    ids.push_back(id);
  }
  auto store = b.Finish();

  FeatureConfig config;
  auto plan = FeaturePlan::Compile(config);
  ASSERT_OK(plan.status());
  const size_t width = plan->num_features();
  std::vector<double> serial(ids.size() * width, 0.0);
  std::vector<double> pooled(ids.size() * width, 0.0);
  ASSERT_OK(plan->ExtractBatch(store, ids, serial.data()));
  ThreadPool pool(4, 64);
  ASSERT_OK(plan->ExtractBatch(store, ids, pooled.data(), &pool));
  EXPECT_EQ(std::memcmp(serial.data(), pooled.data(),
                        serial.size() * sizeof(double)),
            0);
  // And both match the scalar reference row-by-row.
  for (size_t i = 0; i < ids.size(); ++i) {
    auto scalar = ExtractFeatures(store, *store.FindDatabase(ids[i]), config);
    ASSERT_OK(scalar.status());
    for (size_t c = 0; c < width; ++c) {
      EXPECT_EQ(serial[i * width + c], (*scalar)[c]) << i << "," << c;
    }
  }
}

TEST(FeaturePlanTest, PlanBuildDatasetMatchesConfigOverload) {
  const EdgeCaseStore ecs = MakeEdgeCaseStore();
  FeatureConfig config;
  std::vector<int> labels(ecs.eligible.size());
  for (size_t i = 0; i < labels.size(); ++i) labels[i] = i % 2 == 0 ? 1 : 0;
  auto via_config = BuildDataset(ecs.store, ecs.eligible, labels, config);
  ASSERT_OK(via_config.status());
  auto plan = FeaturePlan::Compile(config);
  ASSERT_OK(plan.status());
  auto via_plan = BuildDataset(ecs.store, ecs.eligible, labels, *plan);
  ASSERT_OK(via_plan.status());
  ASSERT_EQ(via_plan->num_rows(), via_config->num_rows());
  ASSERT_EQ(via_plan->num_features(), via_config->num_features());
  EXPECT_EQ(via_plan->feature_names(), via_config->feature_names());
  for (size_t i = 0; i < via_plan->num_rows(); ++i) {
    EXPECT_EQ(via_plan->label(i), via_config->label(i));
    for (size_t c = 0; c < via_plan->num_features(); ++c) {
      EXPECT_EQ(via_plan->row(i)[c], via_config->row(i)[c]) << i << "," << c;
    }
  }
}

TEST(FeaturePlanTest, SpanOverloadsMatchVectorOverloads) {
  const EdgeCaseStore ecs = MakeEdgeCaseStore();
  const auto record = *ecs.store.FindDatabase(ecs.eligible[0]);
  const telemetry::Timestamp tp = record.created_at + 2 * 86400;

  std::vector<double> buf(kNameShapeWidth);
  NameShapeFeaturesInto(record.database_name, buf);
  EXPECT_EQ(buf, NameShapeFeatures(record.database_name));

  buf.assign(kSizeWidth, 0.0);
  SizeFeaturesInto(record, tp, buf);
  EXPECT_EQ(buf, SizeFeatures(record, tp));

  buf.assign(kSloWidth, 0.0);
  SloFeaturesInto(record, tp, buf);
  EXPECT_EQ(buf, SloFeatures(record, tp));

  buf.assign(kSubscriptionTypeWidth, 0.0);
  SubscriptionTypeFeaturesInto(record, buf);
  EXPECT_EQ(buf, SubscriptionTypeFeatures(record));

  buf.assign(kCreationTimeWidth, 0.0);
  CreationTimeFeaturesInto(ecs.store, record, buf);
  EXPECT_EQ(buf, CreationTimeFeatures(ecs.store, record));

  buf.assign(kSubscriptionHistoryWidth, 0.0);
  SubscriptionHistoryFeaturesInto(ecs.store, record, tp, buf);
  EXPECT_EQ(buf, SubscriptionHistoryFeatures(ecs.store, record, tp));

  buf.assign(8, 0.0);
  NameNgramFeaturesInto(record.database_name, 8, buf);
  EXPECT_EQ(buf, NameNgramFeatures(record.database_name, 8));
}

}  // namespace
}  // namespace cloudsurv::features
