// CSRV artifact container tests: round-trip bit-identity for compiled
// forests and full service snapshots, mmap vs buffered agreement, and
// the corruption matrix (every section flipped, truncated tails, wrong
// magic/version, bad CRCs) — all rejected before any model is built.

#include "artifact/reader.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "artifact/format.h"
#include "artifact/writer.h"
#include "common/rng.h"
#include "core/service.h"
#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "ml/flat_forest.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "serving/model_registry.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "tests/test_util.h"

namespace cloudsurv {
namespace {

using artifact::ArtifactReader;
using artifact::ArtifactWriter;
using artifact::PayloadKind;
using artifact::SectionEntry;
using artifact::SectionId;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

ml::Dataset ContinuousData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    rows.push_back({rng.Normal(label * 1.5, 1.0), rng.Normal(0.0, 1.0),
                    rng.Normal(label * -0.7, 2.0)});
    labels.push_back(label);
  }
  auto d = ml::Dataset::Make({"x", "noise", "y"}, std::move(rows),
                             std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

ml::RandomForestClassifier FitForest(const ml::Dataset& data,
                                     ml::SplitAlgorithm algo) {
  ml::ForestParams params;
  params.num_trees = 15;
  params.max_depth = 7;
  params.num_threads = 1;
  params.split_algorithm = algo;
  ml::RandomForestClassifier forest;
  EXPECT_OK(forest.Fit(data, params, /*seed=*/17));
  return forest;
}

// Serializes `flat` into a standalone flat-forest artifact image.
std::string ForestImage(const ml::FlatForest& flat) {
  ArtifactWriter writer(PayloadKind::kFlatForest);
  EXPECT_OK(flat.WriteTo(writer));
  auto image = writer.Finish();
  EXPECT_OK(image.status());
  return *image;
}

// Every row's full distribution and positive probability must match
// the original forest exactly — EXPECT_EQ on doubles, no tolerance.
void ExpectForestBitIdentical(const ml::RandomForestClassifier& forest,
                              const ml::FlatForest& flat,
                              const ml::Dataset& data) {
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto legacy = forest.PredictProba(data.row(i));
    const auto got = flat.PredictProba(data.row(i));
    ASSERT_EQ(got.size(), legacy.size());
    for (size_t c = 0; c < legacy.size(); ++c) {
      EXPECT_EQ(got[c], legacy[c]) << "row " << i << " class " << c;
    }
    EXPECT_EQ(flat.PredictPositive(data.row(i)), legacy[1]) << "row " << i;
  }
}

TEST(ArtifactFormatTest, Crc32cKnownAnswer) {
  // RFC 3720 test vector: CRC32C of 32 zero bytes.
  const unsigned char zeros[32] = {};
  EXPECT_EQ(artifact::Crc32c(zeros, sizeof(zeros)), 0x8a9136aau);
  // Seed chaining must equal one-shot computation.
  const unsigned char bytes[] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const uint32_t once = artifact::Crc32c(bytes, sizeof(bytes));
  const uint32_t chained =
      artifact::Crc32c(bytes + 4, 5, artifact::Crc32c(bytes, 4));
  EXPECT_EQ(chained, once);
}

TEST(ArtifactWriterTest, EmptyWriterFails) {
  ArtifactWriter writer(PayloadKind::kFlatForest);
  EXPECT_FALSE(writer.Finish().ok());
}

TEST(ArtifactRoundTripTest, ExactTrainedForestBitIdentical) {
  const ml::Dataset data = ContinuousData(300, 11);
  const auto forest = FitForest(data, ml::SplitAlgorithm::kExact);
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest flat,
                       ml::FlatForest::Compile(forest));
  ASSERT_FALSE(flat.zero_copy());

  ASSERT_OK_AND_ASSIGN(ArtifactReader reader,
                       ArtifactReader::FromBuffer(ForestImage(flat)));
  EXPECT_EQ(reader.payload(), PayloadKind::kFlatForest);
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest restored,
                       ml::FlatForest::FromView(reader));
  EXPECT_TRUE(restored.zero_copy());
  EXPECT_OK(restored.SelfCheck());
  EXPECT_EQ(restored.num_trees(), flat.num_trees());
  EXPECT_EQ(restored.num_nodes(), flat.num_nodes());
  EXPECT_EQ(restored.quantized(), flat.quantized());
  ExpectForestBitIdentical(forest, restored, data);
}

TEST(ArtifactRoundTripTest, HistogramTrainedForestBitIdentical) {
  const ml::Dataset data = ContinuousData(300, 13);
  const auto forest = FitForest(data, ml::SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest flat,
                       ml::FlatForest::Compile(forest));
  ASSERT_TRUE(flat.quantized());

  ASSERT_OK_AND_ASSIGN(ArtifactReader reader,
                       ArtifactReader::FromBuffer(ForestImage(flat)));
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest restored,
                       ml::FlatForest::FromView(reader));
  ASSERT_TRUE(restored.quantized());
  EXPECT_EQ(restored.code_bits(), flat.code_bits());
  ExpectForestBitIdentical(forest, restored, data);

  // The quantized traversal must agree too (it binds the cut tables
  // straight from the artifact).
  ml::FlatForest::BatchOptions options;
  options.use_quantized = true;
  ASSERT_OK_AND_ASSIGN(const std::vector<double> quantized,
                       restored.PredictPositiveProbaBatch(data, options));
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(quantized[i], forest.PredictProba(data.row(i))[1])
        << "row " << i;
  }
}

TEST(ArtifactRoundTripTest, GbdtBitIdentical) {
  const ml::Dataset data = ContinuousData(300, 37);
  ml::GbdtParams params;
  params.num_rounds = 20;
  params.max_depth = 4;
  ml::GradientBoostedTreesClassifier gbdt;
  ASSERT_OK(gbdt.Fit(data, params, /*seed=*/41));
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest flat,
                       ml::FlatForest::Compile(gbdt));

  ASSERT_OK_AND_ASSIGN(ArtifactReader reader,
                       ArtifactReader::FromBuffer(ForestImage(flat)));
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest restored,
                       ml::FlatForest::FromView(reader));
  EXPECT_FALSE(restored.is_classifier());
  EXPECT_OK(restored.SelfCheck());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(restored.PredictPositive(data.row(i)),
              gbdt.PredictProbability(data.row(i)))
        << "row " << i;
  }
}

TEST(ArtifactRoundTripTest, MmapAndBufferedAgree) {
  const ml::Dataset data = ContinuousData(250, 19);
  const auto forest = FitForest(data, ml::SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest flat,
                       ml::FlatForest::Compile(forest));

  const std::string path = TempPath("agree.csrv");
  ArtifactWriter writer(PayloadKind::kFlatForest);
  ASSERT_OK(flat.WriteTo(writer));
  ASSERT_OK(writer.WriteFile(path));
  // The atomic publish must not leave its temp file behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  ArtifactReader::Options mapped_options;
  mapped_options.prefer_mmap = true;
  ASSERT_OK_AND_ASSIGN(ArtifactReader mapped,
                       ArtifactReader::Open(path, mapped_options));
  ArtifactReader::Options buffered_options;
  buffered_options.prefer_mmap = false;
  ASSERT_OK_AND_ASSIGN(ArtifactReader buffered,
                       ArtifactReader::Open(path, buffered_options));
#if !defined(_WIN32)
  EXPECT_TRUE(mapped.mapped());
#endif
  EXPECT_FALSE(buffered.mapped());

  ASSERT_OK_AND_ASSIGN(const ml::FlatForest from_map,
                       ml::FlatForest::FromView(mapped));
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest from_buf,
                       ml::FlatForest::FromView(buffered));
  EXPECT_TRUE(from_map.zero_copy());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const double want = forest.PredictProba(data.row(i))[1];
    EXPECT_EQ(from_map.PredictPositive(data.row(i)), want) << "row " << i;
    EXPECT_EQ(from_buf.PredictPositive(data.row(i)), want) << "row " << i;
  }
  std::remove(path.c_str());
}

TEST(ArtifactRoundTripTest, ViewOutlivesReaderViaBacking) {
  const ml::Dataset data = ContinuousData(150, 23);
  const auto forest = FitForest(data, ml::SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest flat,
                       ml::FlatForest::Compile(forest));
  const std::string path = TempPath("outlive.csrv");
  {
    ArtifactWriter writer(PayloadKind::kFlatForest);
    ASSERT_OK(flat.WriteTo(writer));
    ASSERT_OK(writer.WriteFile(path));
  }
  std::unique_ptr<ml::FlatForest> restored;
  {
    ASSERT_OK_AND_ASSIGN(ArtifactReader reader, ArtifactReader::Open(path));
    ASSERT_OK_AND_ASSIGN(ml::FlatForest from_view,
                         ml::FlatForest::FromView(reader));
    restored =
        std::make_unique<ml::FlatForest>(std::move(from_view));
  }  // Reader destroyed; the forest's backing reference pins the bytes.
  std::remove(path.c_str());  // POSIX keeps the mapping alive unlinked.
  ExpectForestBitIdentical(forest, *restored, data);

  // A copy of a view-backed forest must share the pin, not dangle.
  const ml::FlatForest copy = *restored;
  restored.reset();
  ExpectForestBitIdentical(forest, copy, data);
}

// --- Corruption matrix ------------------------------------------------

class ArtifactCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ml::Dataset data = ContinuousData(120, 29);
    const auto forest = FitForest(data, ml::SplitAlgorithm::kHistogram);
    ASSERT_OK_AND_ASSIGN(const ml::FlatForest flat,
                         ml::FlatForest::Compile(forest));
    image_ = ForestImage(flat);
    ASSERT_OK_AND_ASSIGN(ArtifactReader reader,
                         ArtifactReader::FromBuffer(image_));
    sections_ = reader.sections();
  }

  std::string image_;
  std::vector<SectionEntry> sections_;
};

TEST_F(ArtifactCorruptionTest, FlippedByteInEverySectionRejected) {
  for (const SectionEntry& entry : sections_) {
    ASSERT_GT(entry.size, 0u);
    std::string corrupt = image_;
    corrupt[entry.offset] ^= 0x40;
    auto reader = ArtifactReader::FromBuffer(std::move(corrupt));
    EXPECT_FALSE(reader.ok())
        << "flipping a byte of "
        << artifact::SectionIdName(static_cast<SectionId>(entry.id))
        << " was not detected";
    if (!reader.ok()) {
      EXPECT_NE(reader.status().message().find("CRC"), std::string::npos)
          << reader.status().ToString();
    }
  }
}

TEST_F(ArtifactCorruptionTest, TruncatedTailRejected) {
  for (const size_t keep :
       {image_.size() - 1, image_.size() / 2, sizeof(artifact::FileHeader),
        size_t{10}, size_t{0}}) {
    auto reader = ArtifactReader::FromBuffer(image_.substr(0, keep));
    EXPECT_FALSE(reader.ok()) << "kept " << keep << " bytes";
  }
}

TEST_F(ArtifactCorruptionTest, WrongMagicRejected) {
  std::string corrupt = image_;
  corrupt[0] = 'X';
  auto reader = ArtifactReader::FromBuffer(std::move(corrupt));
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);

  // A text model must sniff as non-artifact, not crash the reader.
  EXPECT_FALSE(
      artifact::HasArtifactMagic("longevity_service v1\n", 21));
}

TEST_F(ArtifactCorruptionTest, UnsupportedVersionRejected) {
  std::string corrupt = image_;
  // Patch format_version (bytes 4..7) and re-seal the header CRC so the
  // version check itself — not the checksum — does the rejecting.
  corrupt[4] = 99;
  const uint32_t crc = artifact::Crc32c(
      corrupt.data(), offsetof(artifact::FileHeader, header_crc));
  std::memcpy(corrupt.data() + offsetof(artifact::FileHeader, header_crc),
              &crc, sizeof(crc));
  auto reader = ArtifactReader::FromBuffer(std::move(corrupt));
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos)
      << reader.status().ToString();
}

TEST_F(ArtifactCorruptionTest, CorruptHeaderCrcRejected) {
  std::string corrupt = image_;
  corrupt[8] ^= 0x01;  // payload kind field; header CRC no longer matches
  auto reader = ArtifactReader::FromBuffer(std::move(corrupt));
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("CRC"), std::string::npos);
}

TEST_F(ArtifactCorruptionTest, CorruptSectionTableRejected) {
  ASSERT_OK_AND_ASSIGN(ArtifactReader reader,
                       ArtifactReader::FromBuffer(image_));
  artifact::FileHeader header;
  std::memcpy(&header, image_.data(), sizeof(header));
  std::string corrupt = image_;
  corrupt[header.table_offset + 4] ^= 0x10;
  auto bad = ArtifactReader::FromBuffer(std::move(corrupt));
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("table"), std::string::npos);
}

TEST_F(ArtifactCorruptionTest, MissingFileAndEmptyFileRejected) {
  EXPECT_FALSE(ArtifactReader::Open(TempPath("no_such.csrv")).ok());
  const std::string path = TempPath("empty.csrv");
  std::ofstream(path, std::ios::binary).close();
  EXPECT_FALSE(ArtifactReader::Open(path).ok());
  std::remove(path.c_str());
}

// --- Service snapshots ------------------------------------------------

const telemetry::TelemetryStore& SimStore() {
  static const telemetry::TelemetryStore* store = [] {
    auto config = simulator::MakeRegionPreset(1, /*num_subscriptions=*/120,
                                              /*seed=*/99);
    EXPECT_TRUE(config.ok());
    auto simulated = simulator::SimulateRegion(*config);
    EXPECT_TRUE(simulated.ok());
    return new telemetry::TelemetryStore(std::move(*simulated));
  }();
  return *store;
}

core::LongevityService TrainSmallService() {
  core::LongevityService::Options options;
  options.forest_params.num_trees = 10;
  options.forest_params.max_depth = 6;
  options.forest_params.num_threads = 1;
  options.min_cohort_size = 50;
  auto service = core::LongevityService::Train(SimStore(), options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return *service;
}

void ExpectServicesAssessIdentically(const core::LongevityService& want,
                                     const core::LongevityService& got) {
  size_t assessed = 0;
  for (const auto& record : SimStore().databases()) {
    auto w = want.Assess(SimStore(), record.id);
    auto g = got.Assess(SimStore(), record.id);
    ASSERT_EQ(w.ok(), g.ok()) << "db " << record.id;
    if (!w.ok()) continue;
    ++assessed;
    EXPECT_EQ(g->positive_probability, w->positive_probability)
        << "db " << record.id;
    EXPECT_EQ(g->predicted_label, w->predicted_label);
    EXPECT_EQ(g->confident, w->confident);
    EXPECT_EQ(g->confidence_threshold, w->confidence_threshold);
    EXPECT_EQ(g->recommended_pool, w->recommended_pool);
    EXPECT_EQ(g->model_name, w->model_name);
  }
  EXPECT_GT(assessed, 0u);
}

TEST(ServiceArtifactTest, SaveLoadBitIdenticalToOriginalAndText) {
  const core::LongevityService trained = TrainSmallService();
  const std::string path = TempPath("service.csrv");
  ASSERT_OK(trained.SaveArtifact(path));

  ASSERT_OK_AND_ASSIGN(const core::LongevityService from_artifact,
                       core::LongevityService::LoadArtifact(path));
  EXPECT_TRUE(from_artifact.inference_compiled());
  EXPECT_EQ(from_artifact.options().observe_days,
            trained.options().observe_days);
  EXPECT_EQ(from_artifact.options().long_threshold_days,
            trained.options().long_threshold_days);
  ExpectServicesAssessIdentically(trained, from_artifact);

  // Text and binary round trips must land on the same assessments.
  ASSERT_OK_AND_ASSIGN(const core::LongevityService from_text,
                       core::LongevityService::Load(trained.Save()));
  ExpectServicesAssessIdentically(from_text, from_artifact);
  std::remove(path.c_str());
}

TEST(ServiceArtifactTest, BufferedLoadMatchesMmapLoad) {
  const core::LongevityService trained = TrainSmallService();
  const std::string path = TempPath("service_buffered.csrv");
  ASSERT_OK(trained.SaveArtifact(path));
  ArtifactReader::Options buffered;
  buffered.prefer_mmap = false;
  ASSERT_OK_AND_ASSIGN(
      const core::LongevityService from_buffered,
      core::LongevityService::LoadArtifact(path, buffered));
  ASSERT_OK_AND_ASSIGN(const core::LongevityService from_mapped,
                       core::LongevityService::LoadArtifact(path));
  ExpectServicesAssessIdentically(from_mapped, from_buffered);
  std::remove(path.c_str());
}

TEST(ServiceArtifactTest, WrongPayloadKindRejected) {
  const ml::Dataset data = ContinuousData(120, 31);
  const auto forest = FitForest(data, ml::SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const ml::FlatForest flat,
                       ml::FlatForest::Compile(forest));
  const std::string path = TempPath("forest_only.csrv");
  ArtifactWriter writer(PayloadKind::kFlatForest);
  ASSERT_OK(flat.WriteTo(writer));
  ASSERT_OK(writer.WriteFile(path));
  auto service = core::LongevityService::LoadArtifact(path);
  ASSERT_FALSE(service.ok());
  EXPECT_NE(service.status().message().find("payload"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ServiceArtifactTest, CorruptServiceArtifactRejected) {
  const core::LongevityService trained = TrainSmallService();
  const std::string path = TempPath("service_corrupt.csrv");
  ASSERT_OK(trained.SaveArtifact(path));
  // Flip one byte in the middle of the file.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) / 2);
    char byte = 0;
    f.seekg(static_cast<std::streamoff>(size) / 2);
    f.read(&byte, 1);
    byte ^= 0x20;
    f.seekp(static_cast<std::streamoff>(size) / 2);
    f.write(&byte, 1);
  }
  EXPECT_FALSE(core::LongevityService::LoadArtifact(path).ok());
  std::remove(path.c_str());
}

// --- Registry integration (TSan-covered) ------------------------------

TEST(RegistryArtifactTest, PersistActiveAndPublishFromFile) {
  const core::LongevityService trained = TrainSmallService();
  serving::ModelRegistry registry;
  EXPECT_FALSE(registry.PersistActive(TempPath("none.csrv")).ok());

  auto initial = std::make_shared<core::LongevityService>(trained);
  ASSERT_TRUE(registry.Publish("v-initial", std::move(initial)).ok());
  const std::string path = TempPath("registry_active.csrv");
  ASSERT_OK(registry.PersistActive(path));

  ASSERT_OK_AND_ASSIGN(const uint64_t version,
                       registry.PublishFromFile("v-from-file", path));
  EXPECT_EQ(version, 2u);
  const auto model = registry.Current();
  ASSERT_NE(model, nullptr);
  EXPECT_TRUE(model->inference_compiled());
  ExpectServicesAssessIdentically(trained, *model);

  // A bad file must leave the active version untouched.
  EXPECT_FALSE(
      registry.PublishFromFile("v-bad", TempPath("missing.csrv")).ok());
  EXPECT_EQ(registry.current_version(), 2u);
  std::remove(path.c_str());
}

// Readers batch-score through snapshots bound to mmap'ed artifacts
// while a publisher hot-swaps fresh file-loaded versions in.
TEST(RegistryArtifactTest, HotSwapFromFileWhileScoring) {
  const core::LongevityService trained = TrainSmallService();
  const std::string path = TempPath("hotswap.csrv");
  ASSERT_OK(trained.SaveArtifact(path));

  serving::ModelRegistry registry;
  ASSERT_TRUE(registry.PublishFromFile("v0", path).ok());
  std::vector<telemetry::DatabaseId> ids;
  for (const auto& record : SimStore().databases()) {
    if (ids.size() >= 32) break;
    ids.push_back(record.id);
  }

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int i = 0; i < 8; ++i) {
      std::string name = "v";
      name += std::to_string(i + 1);
      auto version = registry.PublishFromFile(std::move(name), path);
      EXPECT_TRUE(version.ok()) << version.status().ToString();
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      int iterations = 0;
      while (!stop.load() && iterations < 100) {
        ++iterations;
        const auto model = registry.Current();
        ASSERT_NE(model, nullptr);
        auto batch = model->AssessMany(SimStore(), ids, /*block_rows=*/16);
        EXPECT_TRUE(batch.ok());
      }
    });
  }
  publisher.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(registry.num_versions(), 9u);
  std::remove(path.c_str());
}

TEST(ArtifactSniffTest, ClassifiesTextAndBinaryModels) {
  const std::string text_path = TempPath("model.txt");
  std::ofstream(text_path) << "longevity_service v1\n";
  ASSERT_OK_AND_ASSIGN(bool is_artifact,
                       artifact::FileHasArtifactMagic(text_path));
  EXPECT_FALSE(is_artifact);

  const core::LongevityService trained = TrainSmallService();
  const std::string bin_path = TempPath("model.csrv");
  ASSERT_OK(trained.SaveArtifact(bin_path));
  ASSERT_OK_AND_ASSIGN(is_artifact,
                       artifact::FileHasArtifactMagic(bin_path));
  EXPECT_TRUE(is_artifact);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

}  // namespace
}  // namespace cloudsurv
