#include "gtest/gtest.h"
#include "telemetry/civil_time.h"

namespace cloudsurv::telemetry {
namespace {

TEST(CivilTimeTest, EpochIsZero) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(MakeTimestamp(1970, 1, 1), 0);
}

TEST(CivilTimeTest, KnownDayNumbers) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
  EXPECT_EQ(DaysFromCivil(2017, 1, 1), 17167);
}

TEST(CivilTimeTest, RoundTripSweep) {
  // Every 13 days across four decades, including leap boundaries.
  for (int64_t day = DaysFromCivil(1995, 1, 1);
       day < DaysFromCivil(2035, 1, 1); day += 13) {
    int y, m, d;
    CivilFromDays(day, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), day);
    EXPECT_GE(m, 1);
    EXPECT_LE(m, 12);
    EXPECT_GE(d, 1);
    EXPECT_LE(d, DaysInMonth(y, m));
  }
}

TEST(CivilTimeTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2016));
  EXPECT_FALSE(IsLeapYear(2017));
  EXPECT_TRUE(IsLeapYear(2000));
  EXPECT_FALSE(IsLeapYear(1900));
  EXPECT_EQ(DaysInMonth(2016, 2), 29);
  EXPECT_EQ(DaysInMonth(2017, 2), 28);
  EXPECT_EQ(DaysInMonth(2017, 4), 30);
  EXPECT_EQ(DaysInMonth(2017, 12), 31);
}

TEST(CivilTimeTest, DayOfWeek) {
  // 1970-01-01 was a Thursday (=4 in 1..7 Mon..Sun).
  EXPECT_EQ(ToCivil(MakeTimestamp(1970, 1, 1)).day_of_week, 4);
  // 2017-01-01 was a Sunday.
  EXPECT_EQ(ToCivil(MakeTimestamp(2017, 1, 1)).day_of_week, 7);
  // 2017-01-02 was a Monday.
  EXPECT_EQ(ToCivil(MakeTimestamp(2017, 1, 2)).day_of_week, 1);
  // 2018-06-15 was a Friday.
  EXPECT_EQ(ToCivil(MakeTimestamp(2018, 6, 15)).day_of_week, 5);
}

TEST(CivilTimeTest, TimeOfDayFields) {
  const CivilDateTime c = ToCivil(MakeTimestamp(2017, 3, 14, 15, 9, 26));
  EXPECT_EQ(c.year, 2017);
  EXPECT_EQ(c.month, 3);
  EXPECT_EQ(c.day, 14);
  EXPECT_EQ(c.hour, 15);
  EXPECT_EQ(c.minute, 9);
  EXPECT_EQ(c.second, 26);
  EXPECT_EQ(c.day_of_year, 31 + 28 + 14);
  EXPECT_EQ(c.week_of_year, (31 + 28 + 14 - 1) / 7 + 1);
}

TEST(CivilTimeTest, WeekOfYearCapsAt52) {
  const CivilDateTime c = ToCivil(MakeTimestamp(2017, 12, 31));
  EXPECT_EQ(c.week_of_year, 52);
}

TEST(CivilTimeTest, UtcOffsetShiftsCivilFields) {
  const Timestamp ts = MakeTimestamp(2017, 1, 1, 2, 0, 0);  // 02:00 UTC
  // UTC-8: still New Year's Eve locally.
  const CivilDateTime pst = ToCivil(ts, -8 * 60);
  EXPECT_EQ(pst.year, 2016);
  EXPECT_EQ(pst.month, 12);
  EXPECT_EQ(pst.day, 31);
  EXPECT_EQ(pst.hour, 18);
  // UTC+8: already mid-morning of Jan 1.
  const CivilDateTime cst = ToCivil(ts, 8 * 60);
  EXPECT_EQ(cst.day, 1);
  EXPECT_EQ(cst.hour, 10);
}

TEST(CivilTimeTest, NegativeTimestampsWork) {
  const CivilDateTime c = ToCivil(MakeTimestamp(1969, 12, 31, 23, 0, 0));
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.hour, 23);
}

TEST(Iso8601Test, FormatKnownValue) {
  EXPECT_EQ(FormatIso8601(MakeTimestamp(2017, 5, 31, 8, 4, 2)),
            "2017-05-31T08:04:02");
}

TEST(Iso8601Test, ParseRoundTrip) {
  for (const char* text :
       {"2017-01-01T00:00:00", "2016-02-29T23:59:59", "1999-12-31T12:30:45"}) {
    auto ts = ParseIso8601(text);
    ASSERT_TRUE(ts.ok()) << text;
    EXPECT_EQ(FormatIso8601(*ts), text);
  }
}

TEST(Iso8601Test, ParseDateOnly) {
  auto ts = ParseIso8601("2017-03-04");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(*ts, MakeTimestamp(2017, 3, 4));
}

TEST(Iso8601Test, RejectsGarbage) {
  EXPECT_FALSE(ParseIso8601("not a date").ok());
  EXPECT_FALSE(ParseIso8601("2017-13-01T00:00:00").ok());
  EXPECT_FALSE(ParseIso8601("2017-02-29T00:00:00").ok());  // not a leap year
  EXPECT_FALSE(ParseIso8601("2017-01-01T25:00:00").ok());
}

TEST(HolidayCalendarTest, MembershipAndOffset) {
  HolidayCalendar cal;
  cal.AddHoliday(2017, 1, 2);
  cal.AddHoliday(2017, 5, 29);
  EXPECT_TRUE(cal.IsHolidayDate(2017, 1, 2));
  EXPECT_FALSE(cal.IsHolidayDate(2017, 1, 3));
  EXPECT_EQ(cal.size(), 2u);
  // 2017-01-03T02:00 UTC is still Jan 2 in UTC-8.
  EXPECT_TRUE(cal.IsHoliday(MakeTimestamp(2017, 1, 3, 2, 0, 0), -8 * 60));
  EXPECT_FALSE(cal.IsHoliday(MakeTimestamp(2017, 1, 3, 2, 0, 0), 0));
}

TEST(HolidayCalendarTest, DuplicatesIgnored) {
  HolidayCalendar cal;
  cal.AddHoliday(2017, 1, 2);
  cal.AddHoliday(2017, 1, 2);
  EXPECT_EQ(cal.size(), 1u);
}

/// Property sweep: ToCivil is consistent with MakeTimestamp for many
/// offsets.
class OffsetRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(OffsetRoundTripTest, LocalFieldsRebuildTimestamp) {
  const int offset = GetParam();
  for (Timestamp ts = MakeTimestamp(2017, 1, 1);
       ts < MakeTimestamp(2017, 1, 8); ts += 3571) {
    const CivilDateTime local = ToCivil(ts, offset);
    const Timestamp rebuilt =
        MakeTimestamp(local.year, local.month, local.day, local.hour,
                      local.minute, local.second) -
        static_cast<Timestamp>(offset) * 60;
    EXPECT_EQ(rebuilt, ts) << "offset=" << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, OffsetRoundTripTest,
                         ::testing::Values(-720, -480, -60, 0, 60, 330, 480,
                                           720));

}  // namespace
}  // namespace cloudsurv::telemetry
