#include "serving/scoring_engine.h"

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/fault.h"
#include "gtest/gtest.h"
#include "ml/baseline.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serving/event_ingest.h"
#include "serving/maturity_tracker.h"
#include "serving/model_registry.h"
#include "simulator/region.h"
#include "simulator/simulator.h"

namespace cloudsurv::serving {
namespace {

using core::LongevityService;
using telemetry::DatabaseId;
using telemetry::Event;
using telemetry::TelemetryStore;
using telemetry::Timestamp;

const TelemetryStore& Store() {
  static const TelemetryStore* store = [] {
    auto config = simulator::MakeRegionPreset(1, 400, 11);
    auto s = simulator::SimulateRegion(*config);
    EXPECT_TRUE(s.ok()) << s.status();
    return new TelemetryStore(std::move(s).value());
  }();
  return *store;
}

std::shared_ptr<const LongevityService> TrainService(uint64_t seed) {
  LongevityService::Options options;
  options.forest_params.num_trees = 30;
  options.forest_params.max_depth = 10;
  options.seed = seed;
  auto service = LongevityService::Train(Store(), options);
  EXPECT_TRUE(service.ok()) << service.status();
  return std::make_shared<const LongevityService>(std::move(service).value());
}

std::shared_ptr<const LongevityService> Service() {
  static const auto service = TrainService(3);
  return service;
}

/// Sequential ground truth: Assess() on the complete final store, one
/// database at a time, for every database the task is defined on.
std::map<DatabaseId, LongevityService::Assessment> BatchBaseline(
    const LongevityService& service) {
  std::map<DatabaseId, LongevityService::Assessment> out;
  for (const auto& record : Store().databases()) {
    auto assessment = service.Assess(Store(), record.id);
    if (assessment.ok()) out[record.id] = *assessment;
  }
  return out;
}

void ExpectMatchesBaseline(
    const std::vector<ScoredDatabase>& scored,
    const std::map<DatabaseId, LongevityService::Assessment>& baseline) {
  ASSERT_EQ(scored.size(), baseline.size());
  for (const ScoredDatabase& s : scored) {
    auto it = baseline.find(s.database_id);
    ASSERT_NE(it, baseline.end()) << "extra assessment " << s.database_id;
    const auto& want = it->second;
    EXPECT_EQ(s.assessment.predicted_label, want.predicted_label);
    EXPECT_EQ(s.assessment.positive_probability, want.positive_probability)
        << "db " << s.database_id;
    EXPECT_EQ(s.assessment.confident, want.confident);
    EXPECT_EQ(s.assessment.model_name, want.model_name);
  }
}

TEST(EventIngestBufferTest, RoutesSubscriptionsStably) {
  EventIngestBuffer buffer(8);
  EXPECT_EQ(buffer.ShardOf(42), buffer.ShardOf(42));
  ASSERT_TRUE(buffer.Ingest(telemetry::MakeSizeSampleEvent(1, 7, 42, 1.0))
                  .ok());
  ASSERT_TRUE(buffer.Ingest(telemetry::MakeSizeSampleEvent(2, 8, 42, 2.0))
                  .ok());
  EXPECT_EQ(buffer.pending_events(), 2u);
  auto shard = buffer.TakeShard(buffer.ShardOf(42));
  EXPECT_EQ(shard.size(), 2u);  // same subscription -> same shard
  EXPECT_EQ(buffer.pending_events(), 0u);
  EXPECT_EQ(buffer.events_ingested(), 2u);
  // Invalid ids are rejected at the edge.
  Event bad = telemetry::MakeSizeSampleEvent(3, telemetry::kInvalidId, 1, 0.0);
  EXPECT_FALSE(buffer.Ingest(bad).ok());
}

TEST(MaturityTrackerTest, PopsInMaturityOrderAndHonorsCancel) {
  MaturityTracker tracker;
  tracker.Add({10, 1, 300, 0});
  tracker.Add({11, 1, 100, 0});
  tracker.Add({12, 1, 200, 0});
  tracker.Add({12, 1, 999, 0});  // duplicate id: first add wins
  EXPECT_EQ(tracker.pending_count(), 3u);

  EXPECT_TRUE(tracker.Cancel(12, 150));    // dropped before maturity
  EXPECT_FALSE(tracker.Cancel(10, 300));   // at maturity: still scoreable
  EXPECT_FALSE(tracker.Cancel(777, 0));    // unknown id

  auto due = tracker.TakeDue(250);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].database_id, 11u);

  auto rest = tracker.TakeAll();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].database_id, 10u);
  EXPECT_EQ(tracker.pending_count(), 0u);
  EXPECT_EQ(tracker.total_added(), 3u);
  EXPECT_EQ(tracker.total_cancelled(), 1u);
}

TEST(ModelRegistryTest, VersionsHotSwapAndRollback) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.current_version(), 0u);
  EXPECT_FALSE(registry.Publish("null", nullptr).ok());

  auto v1_model = Service();
  auto v2_model = TrainService(99);
  auto v1 = registry.Publish("initial", v1_model);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, 1u);
  auto v2 = registry.Publish("retrain", v2_model);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);

  EXPECT_EQ(registry.Current(), v2_model);
  EXPECT_EQ(registry.current_version(), 2u);
  EXPECT_EQ(registry.num_versions(), 2u);

  ASSERT_TRUE(registry.Activate(1).ok());  // rollback
  EXPECT_EQ(registry.Current(), v1_model);
  auto active = registry.CurrentWithVersion();
  EXPECT_EQ(active.version, 1u);
  EXPECT_EQ(active.model, v1_model);

  EXPECT_FALSE(registry.Activate(0).ok());
  EXPECT_FALSE(registry.Activate(3).ok());
  auto entry = registry.Get(2);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->name, "retrain");
  EXPECT_FALSE(registry.Get(99).ok());
}

TEST(ScoringEngineTest, PollWithoutModelFails) {
  ScoringEngine::Options options;
  options.num_threads = 2;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  const Event& creation = Store().events().front();
  ASSERT_TRUE(engine.Ingest(creation).ok());
  auto result = engine.Drain();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ScoringEngineTest, MetricsWellDefinedBeforeAnyScoring) {
  ScoringEngine::Options options;
  options.num_threads = 2;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  // No samples recorded yet: quantiles must read as 0, not garbage.
  const EngineMetrics metrics = engine.Metrics();
  EXPECT_EQ(metrics.databases_scored, 0u);
  EXPECT_EQ(metrics.scoring_p50_us, 0.0);
  EXPECT_EQ(metrics.scoring_p99_us, 0.0);
  EXPECT_EQ(metrics.confident_fraction(), 0.0);
}

TEST(ScoringEngineTest, ExportsEngineSeriesToPrometheusText) {
  ScoringEngine::Options options;
  options.num_threads = 2;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  const std::string text =
      obs::ExportPrometheusText(obs::Registry::Default());
  EXPECT_NE(text.find("# TYPE cloudsurv_engine_polls_total counter"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE cloudsurv_engine_scoring_latency_us histogram"),
      std::string::npos);
  EXPECT_NE(text.find("cloudsurv_engine_databases_scored_total{engine="),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cloudsurv_ingest_pending_events gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE cloudsurv_pool_tasks_total counter"),
            std::string::npos);
}

TEST(ScoringEngineTest, MultiThreadedIngestMatchesBatchAssess) {
  auto service = Service();
  const auto baseline = BatchBaseline(*service);
  ASSERT_FALSE(baseline.empty());

  ScoringEngine::Options options;
  options.num_shards = 8;
  options.num_threads = 4;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  ASSERT_TRUE(engine.registry().Publish("v1", service).ok());

  // Four producers, partitioned by subscription so each database's
  // stream stays ordered within its producer.
  constexpr size_t kProducers = 4;
  std::vector<std::vector<Event>> partitions(kProducers);
  for (const Event& e : Store().events()) {
    partitions[e.subscription_id % kProducers].push_back(e);
  }
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&engine, &partitions, p]() {
      for (const Event& e : partitions[p]) {
        ASSERT_TRUE(engine.Ingest(e).ok());
      }
    });
  }
  for (auto& t : producers) t.join();

  auto scored = engine.Drain();
  ASSERT_TRUE(scored.ok()) << scored.status();
  ExpectMatchesBaseline(*scored, baseline);

  const EngineMetrics metrics = engine.Metrics();
  EXPECT_EQ(metrics.events_ingested, Store().num_events());
  EXPECT_EQ(metrics.events_flushed, Store().num_events());
  EXPECT_EQ(metrics.databases_scored, baseline.size());
  EXPECT_GE(metrics.scoring_p99_us, metrics.scoring_p50_us);
  EXPECT_GE(metrics.confident_fraction(), 0.0);
  EXPECT_LE(metrics.confident_fraction(), 1.0);
}

TEST(ScoringEngineTest, IncrementalDailyPollsMatchBatchAssess) {
  auto service = Service();
  const auto baseline = BatchBaseline(*service);

  ScoringEngine::Options options;
  options.num_shards = 4;
  options.num_threads = 2;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  ASSERT_TRUE(engine.registry().Publish("v1", service).ok());

  const Timestamp day = telemetry::kSecondsPerDay;
  Timestamp next_poll = Store().window_start() + day;
  std::vector<ScoredDatabase> scored;
  for (const Event& e : Store().events()) {
    // Strict '>' so events stamped exactly at the boundary are ingested
    // before the poll that may score databases maturing at it.
    while (e.timestamp > next_poll) {
      auto batch = engine.Poll(next_poll);
      ASSERT_TRUE(batch.ok()) << batch.status();
      for (auto& s : *batch) {
        // Nothing is scored before its observation window elapsed.
        EXPECT_LE(s.matured_at, next_poll);
        scored.push_back(std::move(s));
      }
      next_poll += day;
    }
    ASSERT_TRUE(engine.Ingest(e).ok());
  }
  auto rest = engine.Drain();
  ASSERT_TRUE(rest.ok()) << rest.status();
  for (auto& s : *rest) scored.push_back(std::move(s));

  ExpectMatchesBaseline(scored, baseline);
  EXPECT_GT(engine.Metrics().polls, 100u);  // five-month window, daily
}

TEST(ScoringEngineTest, HotSwapMidScoringNeverServesTornModel) {
  auto model_a = Service();
  auto model_b = TrainService(1234);
  const auto baseline_a = BatchBaseline(*model_a);
  const auto baseline_b = BatchBaseline(*model_b);

  ScoringEngine::Options options;
  options.num_shards = 8;
  options.num_threads = 4;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  ASSERT_TRUE(engine.registry().Publish("a-0", model_a).ok());

  std::atomic<bool> stop{false};
  std::thread swapper([&engine, &model_a, &model_b, &stop]() {
    uint64_t i = 0;
    while (!stop.load()) {
      auto version = engine.registry().Publish(
          "swap-" + std::to_string(i),
          (i % 2 == 0) ? model_b : model_a);
      ASSERT_TRUE(version.ok());
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const Timestamp week = 7 * telemetry::kSecondsPerDay;
  Timestamp next_poll = Store().window_start() + week;
  std::vector<ScoredDatabase> scored;
  for (const Event& e : Store().events()) {
    // Strict '>' so events stamped exactly at the boundary are ingested
    // before the poll that may score databases maturing at it.
    while (e.timestamp > next_poll) {
      auto batch = engine.Poll(next_poll);
      ASSERT_TRUE(batch.ok()) << batch.status();
      for (auto& s : *batch) scored.push_back(std::move(s));
      next_poll += week;
    }
    ASSERT_TRUE(engine.Ingest(e).ok());
  }
  auto rest = engine.Drain();
  ASSERT_TRUE(rest.ok()) << rest.status();
  for (auto& s : *rest) scored.push_back(std::move(s));
  stop = true;
  swapper.join();

  // Every assessment matches one model or the other exactly — never a
  // blend — and carries a version that really was published.
  const uint64_t versions = engine.registry().num_versions();
  ASSERT_EQ(scored.size(), baseline_a.size());
  for (const ScoredDatabase& s : scored) {
    ASSERT_GE(s.model_version, 1u);
    ASSERT_LE(s.model_version, versions);
    const auto& a = baseline_a.at(s.database_id);
    auto b_it = baseline_b.find(s.database_id);
    const bool matches_a =
        s.assessment.positive_probability == a.positive_probability &&
        s.assessment.predicted_label == a.predicted_label;
    const bool matches_b =
        b_it != baseline_b.end() &&
        s.assessment.positive_probability ==
            b_it->second.positive_probability &&
        s.assessment.predicted_label == b_it->second.predicted_label;
    EXPECT_TRUE(matches_a || matches_b)
        << "db " << s.database_id << " matches neither published model";
  }
}

fault::FaultPlan ParsePlan(const std::string& text) {
  fault::FaultPlan plan;
  std::string error;
  EXPECT_TRUE(fault::FaultPlan::Parse(text, &plan, &error)) << error;
  return plan;
}

/// The §4 weighted-random baseline, drawn exactly the way the engine's
/// FallbackScore draws it: forked per database id from the fallback
/// seed.
int FallbackBaselineLabel(uint64_t seed, double rate, DatabaseId id) {
  Rng rng = Rng(seed).Fork(id);
  return ml::WeightedRandomClassifier::FromPositiveRate(rate).Predict(rng);
}

TEST(ScoringEngineFaultTest, FallbackBitMatchesWeightedRandomBaseline) {
  ScoringEngine::Options options;
  options.num_shards = 8;
  options.num_threads = 4;
  options.fallback_positive_rate = 0.4;
  options.fallback_seed = 77;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  // No model is ever published: with fallback enabled the drain still
  // serves every tracked database instead of failing the poll.
  for (const Event& e : Store().events()) {
    ASSERT_TRUE(engine.Ingest(e).ok());
  }
  auto scored = engine.Drain();
  ASSERT_TRUE(scored.ok()) << scored.status();
  ASSERT_FALSE(scored->empty());

  for (const ScoredDatabase& s : *scored) {
    EXPECT_TRUE(s.fallback);
    EXPECT_EQ(s.model_version, 0u);
    EXPECT_FALSE(s.assessment.confident);
    EXPECT_EQ(s.assessment.positive_probability, 0.4);
    EXPECT_EQ(s.assessment.model_name, "weighted-random-fallback");
    // Bit-exact against the standalone baseline: the draw depends only
    // on (seed, database id), not on shard, order or thread count.
    EXPECT_EQ(s.assessment.predicted_label,
              FallbackBaselineLabel(77, 0.4, s.database_id))
        << "db " << s.database_id;
  }

  const EngineMetrics m = engine.Metrics();
  EXPECT_EQ(m.databases_fallback, scored->size());
  EXPECT_EQ(m.databases_scored, 0u);
  EXPECT_EQ(m.databases_tracked, m.databases_scored + m.databases_fallback +
                                     m.databases_skipped +
                                     m.databases_cancelled);
  // Fallback scoring dirties the cycle; clean polls recover.
  EXPECT_EQ(engine.health(), HealthState::kDegraded);
  for (size_t i = 0; i < options.recovery_polls; ++i) {
    ASSERT_TRUE(engine.Poll(Store().window_end()).ok());
  }
  EXPECT_EQ(engine.health(), HealthState::kHealthy);
  EXPECT_EQ(engine.Metrics().health_transitions, 2u);
}

TEST(ScoringEngineFaultTest, SheddingEngagesAndClearsAtWatermarks) {
  ScoringEngine::Options options;
  options.num_shards = 4;
  options.num_threads = 2;
  options.shed_high_watermark = 8;
  options.shed_low_watermark = 2;
  options.recovery_polls = 3;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);

  // Fill the backlog to the high watermark without polling.
  for (uint64_t i = 1; i <= 8; ++i) {
    ASSERT_TRUE(
        engine.Ingest(telemetry::MakeSizeSampleEvent(i, i, 100, 1.0)).ok());
  }
  EXPECT_EQ(engine.health(), HealthState::kHealthy);

  // The next ingest observes backlog >= high watermark: shedding
  // engages inline and the event is rejected with a reason.
  auto shed = engine.Ingest(telemetry::MakeSizeSampleEvent(9, 9, 101, 1.0));
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.health(), HealthState::kShedding);
  // While shedding, rejection is immediate (no watermark re-check).
  EXPECT_FALSE(
      engine.Ingest(telemetry::MakeSizeSampleEvent(10, 10, 102, 1.0)).ok());
  EXPECT_EQ(engine.Metrics().rejected_shed, 2u);

  // A poll drains the backlog below the low watermark: shedding clears
  // into degraded (never straight to healthy), ingest works again.
  ASSERT_TRUE(engine.Poll(200).ok());
  EXPECT_EQ(engine.health(), HealthState::kDegraded);
  EXPECT_TRUE(
      engine.Ingest(telemetry::MakeSizeSampleEvent(11, 11, 103, 1.0)).ok());

  // Clean polls age the degradation out.
  for (size_t i = 0; i < options.recovery_polls; ++i) {
    EXPECT_EQ(engine.health(), HealthState::kDegraded);
    ASSERT_TRUE(engine.Poll(300 + static_cast<Timestamp>(i)).ok());
  }
  EXPECT_EQ(engine.health(), HealthState::kHealthy);

  const EngineMetrics m = engine.Metrics();
  // healthy -> shedding -> degraded -> healthy.
  EXPECT_EQ(m.health_transitions, 3u);
  // Every rejected ingest carries a reason; nothing vanished silently.
  EXPECT_EQ(m.events_ingested, 9u);
  EXPECT_EQ(m.rejected_shed, 2u);
  EXPECT_EQ(m.rejected_error, 0u);
  EXPECT_EQ(m.rejected_invalid, 0u);
}

TEST(ScoringEngineFaultTest, DeadlinedBatchesFallBackWithFullAccounting) {
  auto service = Service();
  ScoringEngine::Options options;
  options.num_shards = 2;
  options.num_threads = 2;
  // Virtual-time deadline: each assessment costs 100 virtual us against
  // a 250us budget, so every shard batch scores at most three databases
  // with the forest and falls back for the rest.
  options.batch_deadline_us = 250.0;
  options.assess_virtual_cost_us = 100.0;
  options.fallback_positive_rate = 0.5;
  options.fallback_seed = 7;
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  ASSERT_TRUE(engine.registry().Publish("v1", service).ok());

  for (const Event& e : Store().events()) {
    ASSERT_TRUE(engine.Ingest(e).ok());
  }
  auto scored = engine.Drain();
  ASSERT_TRUE(scored.ok()) << scored.status();

  const EngineMetrics m = engine.Metrics();
  EXPECT_GE(m.deadline_exceeded, 1u);
  EXPECT_LE(m.deadline_exceeded, 2u);  // at most one per shard batch
  EXPECT_GT(m.databases_fallback, 0u);
  EXPECT_GT(m.databases_scored, 0u);
  EXPECT_LE(m.databases_scored, 6u);  // <= 3 forest scores per shard
  EXPECT_EQ(scored->size(), m.databases_scored + m.databases_fallback);
  EXPECT_EQ(m.databases_tracked, m.databases_scored + m.databases_fallback +
                                     m.databases_skipped +
                                     m.databases_cancelled);
  EXPECT_EQ(engine.health(), HealthState::kDegraded);

  for (const ScoredDatabase& s : *scored) {
    if (!s.fallback) continue;
    EXPECT_EQ(s.assessment.predicted_label,
              FallbackBaselineLabel(7, 0.5, s.database_id));
    EXPECT_FALSE(s.assessment.confident);
  }
}

TEST(ScoringEngineFaultTest, NoDeadlockUnderSwapRacePlanWithHotPublisher) {
  auto service = Service();
  const auto baseline = BatchBaseline(*service);

  // The acceptance plan: shard stalls plus model-swap races, with a
  // publisher hammering the registry (whose critical section is itself
  // stalled) while the driver polls.
  fault::FaultInjector injector(ParsePlan(
      "seed 11\n"
      "fault ingest.shard stall shard=1 every=200 delay_us=100\n"
      "fault registry.swap swap_race every=2\n"
      "fault registry.publish stall delay_us=200\n"
      "fault engine.snapshot io_fail every=7 count=4\n"));

  ScoringEngine::Options options;
  options.num_shards = 8;
  options.num_threads = 4;
  options.fault_injector = &injector;
  options.fallback_positive_rate = 0.3;
  options.fallback_seed = injector.seed();
  ScoringEngine engine(RegionContext::FromStore(Store()), options);
  ASSERT_TRUE(engine.registry().Publish("v1", service).ok());

  std::atomic<bool> stop{false};
  std::thread publisher([&engine, &service, &stop]() {
    uint64_t i = 0;
    while (!stop.load()) {
      ASSERT_TRUE(
          engine.registry().Publish("swap-" + std::to_string(i), service)
              .ok());
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const Timestamp week = 7 * telemetry::kSecondsPerDay;
  Timestamp next_poll = Store().window_start() + week;
  std::vector<ScoredDatabase> scored;
  for (const Event& e : Store().events()) {
    while (e.timestamp > next_poll) {
      auto batch = engine.Poll(next_poll);
      ASSERT_TRUE(batch.ok()) << batch.status();
      for (auto& s : *batch) scored.push_back(std::move(s));
      next_poll += week;
    }
    ASSERT_TRUE(engine.Ingest(e).ok());
  }
  auto rest = engine.Drain();
  ASSERT_TRUE(rest.ok()) << rest.status();
  for (auto& s : *rest) scored.push_back(std::move(s));
  stop = true;
  publisher.join();

  // swap_race every=2 fires constantly: some batches must have fallen
  // back, and the rest must bit-match the batch baseline (every
  // published version is the same model here).
  EXPECT_GT(injector.total_fired(), 0u);
  uint64_t fallback_count = 0;
  for (const ScoredDatabase& s : scored) {
    if (s.fallback) {
      ++fallback_count;
      EXPECT_EQ(s.assessment.predicted_label,
                FallbackBaselineLabel(injector.seed(), 0.3, s.database_id));
      EXPECT_EQ(s.model_version, 0u);
    } else {
      const auto& want = baseline.at(s.database_id);
      EXPECT_EQ(s.assessment.positive_probability,
                want.positive_probability);
      EXPECT_EQ(s.assessment.predicted_label, want.predicted_label);
    }
  }
  EXPECT_GT(fallback_count, 0u);

  // Zero dropped-without-reason: the returned assessments plus the
  // skip/cancel counters account for every tracked database.
  const EngineMetrics m = engine.Metrics();
  EXPECT_EQ(scored.size(), m.databases_scored + m.databases_fallback);
  EXPECT_EQ(m.databases_tracked, m.databases_scored + m.databases_fallback +
                                     m.databases_skipped +
                                     m.databases_cancelled);
}

TEST(ScoringEngineFaultTest, SameSeedPlanReplaysBitIdentically) {
  auto service = Service();
  const std::string spec =
      "seed 5\n"
      "fault registry.swap swap_race every=3\n"
      "fault engine.snapshot io_fail every=4 count=6\n";

  // One full replay: weekly polls over the event stream, then a drain.
  auto run = [&](fault::FaultInjector* injector) {
    ScoringEngine::Options options;
    options.num_shards = 8;
    options.num_threads = 4;
    options.fault_injector = injector;
    options.fallback_positive_rate = 0.35;
    options.fallback_seed = injector->seed();
    ScoringEngine engine(RegionContext::FromStore(Store()), options);
    EXPECT_TRUE(engine.registry().Publish("v1", service).ok());
    const Timestamp week = 7 * telemetry::kSecondsPerDay;
    Timestamp next_poll = Store().window_start() + week;
    std::vector<ScoredDatabase> scored;
    for (const Event& e : Store().events()) {
      while (e.timestamp > next_poll) {
        auto batch = engine.Poll(next_poll);
        EXPECT_TRUE(batch.ok()) << batch.status();
        for (auto& s : *batch) scored.push_back(std::move(s));
        next_poll += week;
      }
      EXPECT_TRUE(engine.Ingest(e).ok());
    }
    auto rest = engine.Drain();
    EXPECT_TRUE(rest.ok()) << rest.status();
    for (auto& s : *rest) scored.push_back(std::move(s));
    return scored;
  };

  fault::FaultInjector first(ParsePlan(spec));
  fault::FaultInjector second(ParsePlan(spec));
  const std::vector<ScoredDatabase> a = run(&first);
  const std::vector<ScoredDatabase> b = run(&second);

  // The plan is output-affecting (swap races force fallbacks, io_fail
  // burns snapshot retries), yet the two runs are bit-identical: same
  // fault log, same assessments, same fallback set.
  EXPECT_GT(first.total_fired(), 0u);
  EXPECT_EQ(first.LogToString(), second.LogToString());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].database_id, b[i].database_id);
    EXPECT_EQ(a[i].fallback, b[i].fallback);
    EXPECT_EQ(a[i].model_version, b[i].model_version);
    EXPECT_EQ(a[i].assessment.predicted_label,
              b[i].assessment.predicted_label);
    EXPECT_EQ(a[i].assessment.positive_probability,
              b[i].assessment.positive_probability)
        << "db " << a[i].database_id;
  }
}

}  // namespace
}  // namespace cloudsurv::serving
