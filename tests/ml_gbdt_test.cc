#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/gbdt.h"
#include "ml/metrics.h"
#include "ml/permutation_importance.h"
#include "ml/random_forest.h"

namespace cloudsurv::ml {
namespace {

Dataset ThresholdData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const double x0 = rng.Uniform(0.0, 6.0);
    rows.push_back({x0, rng.Uniform(0.0, 1.0)});
    labels.push_back(x0 > 3.0 ? 1 : 0);
  }
  return *Dataset::Make({"signal", "noise"}, std::move(rows),
                        std::move(labels));
}

Dataset XorData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const double a = rng.Uniform(0.0, 1.0);
    const double b = rng.Uniform(0.0, 1.0);
    rows.push_back({a, b});
    labels.push_back((a > 0.5) != (b > 0.5) ? 1 : 0);
  }
  return *Dataset::Make({"a", "b"}, std::move(rows), std::move(labels));
}

Dataset NoisyData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    rows.push_back({rng.Normal(label == 1 ? 1.0 : 0.0, 1.0),
                    rng.Normal(0.0, 1.0)});
    labels.push_back(label);
  }
  return *Dataset::Make({"x", "noise"}, std::move(rows), std::move(labels));
}

TEST(GbdtTest, LearnsThresholdTask) {
  const Dataset d = ThresholdData(800, 1);
  GradientBoostedTreesClassifier model;
  GbdtParams params;
  params.num_rounds = 60;
  ASSERT_TRUE(model.Fit(d, params, 1).ok());
  auto preds = model.PredictBatch(d);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(d.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->accuracy, 0.98);
}

TEST(GbdtTest, LearnsXor) {
  const Dataset d = XorData(1200, 2);
  GradientBoostedTreesClassifier model;
  GbdtParams params;
  params.num_rounds = 80;
  params.max_depth = 3;
  ASSERT_TRUE(model.Fit(d, params, 2).ok());
  auto preds = model.PredictBatch(d);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(d.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->accuracy, 0.95);
}

TEST(GbdtTest, TrainingLossDecreasesMonotonically) {
  const Dataset d = NoisyData(600, 3);
  GradientBoostedTreesClassifier model;
  GbdtParams params;
  params.num_rounds = 40;
  ASSERT_TRUE(model.Fit(d, params, 3).ok());
  const auto& loss = model.training_loss();
  ASSERT_EQ(loss.size(), 40u);
  for (size_t i = 1; i < loss.size(); ++i) {
    EXPECT_LE(loss[i], loss[i - 1] + 1e-9) << "round " << i;
  }
}

TEST(GbdtTest, ProbabilitiesInUnitIntervalAndCalibratedPrior) {
  // With zero rounds of meaningful structure (depth 0 trees would be
  // leaves), predictions should hover near the class prior.
  const Dataset d = NoisyData(2000, 4);
  GradientBoostedTreesClassifier model;
  GbdtParams params;
  params.num_rounds = 1;
  params.max_depth = 0;  // single-leaf tree: only the prior moves
  ASSERT_TRUE(model.Fit(d, params, 4).ok());
  const double p = model.PredictProbability(d.row(0));
  EXPECT_GT(p, 0.3);
  EXPECT_LT(p, 0.7);
  auto probs = model.PredictPositiveProba(d);
  ASSERT_TRUE(probs.ok());
  for (double v : *probs) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(GbdtTest, ImportancesFavorSignal) {
  const Dataset d = ThresholdData(1000, 5);
  GradientBoostedTreesClassifier model;
  ASSERT_TRUE(model.Fit(d, GbdtParams{}, 5).ok());
  const auto& imp = model.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 0.9);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(GbdtTest, SubsamplingStillLearns) {
  const Dataset d = ThresholdData(1000, 6);
  GradientBoostedTreesClassifier model;
  GbdtParams params;
  params.subsample = 0.5;
  params.num_rounds = 80;
  ASSERT_TRUE(model.Fit(d, params, 6).ok());
  auto preds = model.PredictBatch(d);
  ASSERT_TRUE(preds.ok());
  auto scores = ComputeScores(d.labels(), *preds);
  ASSERT_TRUE(scores.ok());
  EXPECT_GT(scores->accuracy, 0.95);
}

TEST(GbdtTest, DeterministicPerSeed) {
  const Dataset d = NoisyData(400, 7);
  GbdtParams params;
  params.num_rounds = 20;
  params.subsample = 0.7;
  GradientBoostedTreesClassifier m1, m2;
  ASSERT_TRUE(m1.Fit(d, params, 9).ok());
  ASSERT_TRUE(m2.Fit(d, params, 9).ok());
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(m1.PredictLogit(d.row(i)), m2.PredictLogit(d.row(i)));
  }
}

TEST(GbdtTest, RejectsInvalidInputs) {
  GradientBoostedTreesClassifier model;
  EXPECT_FALSE(model.Fit(Dataset(), GbdtParams{}, 1).ok());
  const Dataset d = NoisyData(50, 8);
  GbdtParams bad;
  bad.num_rounds = 0;
  EXPECT_FALSE(model.Fit(d, bad, 1).ok());
  bad = GbdtParams{};
  bad.subsample = 0.0;
  EXPECT_FALSE(model.Fit(d, bad, 1).ok());
  EXPECT_FALSE(model.PredictBatch(d).ok());  // not fitted
  auto multi = Dataset::Make({"x", "noise"}, {{0.0, 0.0}}, {0}, 3);
  EXPECT_FALSE(model.Fit(*multi, GbdtParams{}, 1).ok());
}

TEST(GbdtTest, ComparableToForestOnNoisyTask) {
  const Dataset train = NoisyData(2000, 10);
  const Dataset test = NoisyData(2000, 11);
  GradientBoostedTreesClassifier gbdt;
  GbdtParams gparams;
  gparams.num_rounds = 120;
  ASSERT_TRUE(gbdt.Fit(train, gparams, 10).ok());
  RandomForestClassifier forest;
  ForestParams fparams;
  fparams.num_trees = 80;
  ASSERT_TRUE(forest.Fit(train, fparams, 10).ok());
  auto gp = gbdt.PredictBatch(test);
  auto fp = forest.PredictBatch(test);
  ASSERT_TRUE(gp.ok() && fp.ok());
  const double ga = ComputeScores(test.labels(), *gp)->accuracy;
  const double fa = ComputeScores(test.labels(), *fp)->accuracy;
  // Both close to the Bayes limit; neither collapses.
  EXPECT_GT(ga, 0.60);
  EXPECT_GT(fa, 0.60);
  EXPECT_NEAR(ga, fa, 0.08);
}

TEST(PermutationImportanceTest, SignalOutranksNoise) {
  const Dataset train = ThresholdData(800, 12);
  const Dataset test = ThresholdData(800, 13);
  RandomForestClassifier forest;
  ForestParams params;
  params.num_trees = 25;
  ASSERT_TRUE(forest.Fit(train, params, 12).ok());

  ModelScorer scorer = [&](const Dataset& d) -> Result<double> {
    CLOUDSURV_ASSIGN_OR_RETURN(std::vector<int> preds,
                               forest.PredictBatch(d));
    CLOUDSURV_ASSIGN_OR_RETURN(ClassificationScores scores,
                               ComputeScores(d.labels(), preds));
    return scores.accuracy;
  };
  auto result = ComputePermutationImportance(test, scorer, 3, 99);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->baseline_score, 0.95);
  EXPECT_GT(result->importances[0], 0.3);   // signal feature essential
  EXPECT_NEAR(result->importances[1], 0.0, 0.03);  // noise feature inert
}

TEST(PermutationImportanceTest, RejectsInvalidInputs) {
  ModelScorer dummy = [](const Dataset&) -> Result<double> { return 1.0; };
  EXPECT_FALSE(ComputePermutationImportance(Dataset(), dummy, 3, 1).ok());
  const Dataset d = ThresholdData(20, 14);
  EXPECT_FALSE(ComputePermutationImportance(d, dummy, 0, 1).ok());
}

}  // namespace
}  // namespace cloudsurv::ml
