#include <algorithm>
#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/cross_validation.h"

namespace cloudsurv::ml {
namespace {

Dataset LabeledData(int n, double positive_fraction, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(positive_fraction) ? 1 : 0;
    rows.push_back({rng.Normal(label * 2.0, 1.0)});
    labels.push_back(label);
  }
  auto d = Dataset::Make({"x"}, std::move(rows), std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(TrainTestSplitTest, PartitionsAllRowsExactlyOnce) {
  const Dataset d = LabeledData(100, 0.4, 1);
  auto split = TrainTestSplit(d, 0.2, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size() + split->test.size(), 100u);
  std::set<size_t> all(split->train.begin(), split->train.end());
  all.insert(split->test.begin(), split->test.end());
  EXPECT_EQ(all.size(), 100u);
}

TEST(TrainTestSplitTest, TestFractionApproximatelyRespected) {
  const Dataset d = LabeledData(1000, 0.5, 2);
  auto split = TrainTestSplit(d, 0.2, 2);
  ASSERT_TRUE(split.ok());
  EXPECT_NEAR(static_cast<double>(split->test.size()) / 1000.0, 0.2, 0.01);
}

TEST(TrainTestSplitTest, StratificationPreservesClassBalance) {
  const Dataset d = LabeledData(2000, 0.3, 3);
  auto split = TrainTestSplit(d, 0.25, 3, /*stratified=*/true);
  ASSERT_TRUE(split.ok());
  auto rate = [&](const std::vector<size_t>& idx) {
    double pos = 0;
    for (size_t i : idx) pos += d.label(i);
    return pos / static_cast<double>(idx.size());
  };
  EXPECT_NEAR(rate(split->train), rate(split->test), 0.02);
}

TEST(TrainTestSplitTest, DifferentSeedsGiveDifferentSplits) {
  const Dataset d = LabeledData(200, 0.5, 4);
  auto s1 = TrainTestSplit(d, 0.3, 100);
  auto s2 = TrainTestSplit(d, 0.3, 200);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(s1->test, s2->test);
  auto s1_again = TrainTestSplit(d, 0.3, 100);
  ASSERT_TRUE(s1_again.ok());
  EXPECT_EQ(s1->test, s1_again->test);  // deterministic per seed
}

TEST(TrainTestSplitTest, RejectsBadFractions) {
  const Dataset d = LabeledData(10, 0.5, 5);
  EXPECT_FALSE(TrainTestSplit(d, 0.0, 1).ok());
  EXPECT_FALSE(TrainTestSplit(d, 1.0, 1).ok());
  EXPECT_FALSE(TrainTestSplit(Dataset(), 0.2, 1).ok());
}

TEST(KFoldTest, FoldsPartitionRows) {
  const Dataset d = LabeledData(103, 0.4, 6);
  auto folds = KFoldSplit(d, 5, 6);
  ASSERT_TRUE(folds.ok());
  ASSERT_EQ(folds->size(), 5u);
  std::set<size_t> validation_union;
  for (const Fold& fold : *folds) {
    EXPECT_EQ(fold.train.size() + fold.validation.size(), 103u);
    for (size_t i : fold.validation) {
      EXPECT_TRUE(validation_union.insert(i).second)
          << "row " << i << " in two validation folds";
    }
    // No overlap between train and validation inside one fold.
    std::set<size_t> train_set(fold.train.begin(), fold.train.end());
    for (size_t i : fold.validation) {
      EXPECT_EQ(train_set.count(i), 0u);
    }
  }
  EXPECT_EQ(validation_union.size(), 103u);
}

TEST(KFoldTest, StratifiedFoldsBalanceClasses) {
  const Dataset d = LabeledData(1000, 0.2, 7);
  auto folds = KFoldSplit(d, 5, 7);
  ASSERT_TRUE(folds.ok());
  for (const Fold& fold : *folds) {
    double pos = 0;
    for (size_t i : fold.validation) pos += d.label(i);
    EXPECT_NEAR(pos / static_cast<double>(fold.validation.size()), 0.2,
                0.05);
  }
}

TEST(KFoldTest, RejectsBadParameters) {
  const Dataset d = LabeledData(10, 0.5, 8);
  EXPECT_FALSE(KFoldSplit(d, 1, 1).ok());
  EXPECT_FALSE(KFoldSplit(d, 11, 1).ok());
}

TEST(CrossValidateTest, SeparableDataScoresHigh) {
  const Dataset d = LabeledData(400, 0.5, 9);
  ForestParams params;
  params.num_trees = 15;
  auto score = CrossValidateForest(d, params, 4, 9);
  ASSERT_TRUE(score.ok());
  // Two unit-variance Gaussians 2 sigma apart: Bayes ~0.84.
  EXPECT_GT(*score, 0.75);
  EXPECT_LE(*score, 1.0);
}

TEST(GridSearchTest, PicksBestCellAndReportsAll) {
  const Dataset d = LabeledData(300, 0.5, 10);
  std::vector<ForestParams> grid;
  ForestParams strong;
  strong.num_trees = 25;
  strong.max_depth = 8;
  ForestParams weak;
  weak.num_trees = 1;
  weak.max_depth = 0;  // majority class only
  grid.push_back(weak);
  grid.push_back(strong);
  auto result = GridSearchForest(d, grid, 3, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->all_scores.size(), 2u);
  EXPECT_EQ(result->best_params.num_trees, 25);
  EXPECT_GE(result->best_score, result->all_scores[0].second);
}

TEST(GridSearchTest, RejectsEmptyGrid) {
  const Dataset d = LabeledData(50, 0.5, 11);
  EXPECT_FALSE(GridSearchForest(d, {}, 3, 1).ok());
}

TEST(CrossValidateTest, ScoreIdenticalAcrossThreadCounts) {
  const Dataset d = LabeledData(300, 0.5, 12);
  ForestParams params;
  params.num_trees = 10;
  auto sequential = CrossValidateForest(d, params, 4, 12, /*num_threads=*/1);
  auto pooled = CrossValidateForest(d, params, 4, 12, /*num_threads=*/4);
  ASSERT_TRUE(sequential.ok() && pooled.ok());
  EXPECT_DOUBLE_EQ(*sequential, *pooled);
}

TEST(GridSearchTest, BitIdenticalAcrossThreadCounts) {
  const Dataset d = LabeledData(250, 0.5, 13);
  std::vector<ForestParams> grid;
  for (int depth : {2, 6, 10}) {
    ForestParams p;
    p.num_trees = 8;
    p.max_depth = depth;
    grid.push_back(p);
  }
  auto sequential = GridSearchForest(d, grid, 3, 13, /*num_threads=*/1);
  auto pooled = GridSearchForest(d, grid, 3, 13, /*num_threads=*/4);
  ASSERT_TRUE(sequential.ok() && pooled.ok());
  EXPECT_DOUBLE_EQ(sequential->best_score, pooled->best_score);
  EXPECT_EQ(sequential->best_params.ToString(),
            pooled->best_params.ToString());
  ASSERT_EQ(sequential->all_scores.size(), pooled->all_scores.size());
  for (size_t i = 0; i < sequential->all_scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(sequential->all_scores[i].second,
                     pooled->all_scores[i].second)
        << "cell " << i;
  }
}

TEST(GridSearchTest, PropagatesFoldErrorsFromPool) {
  const Dataset d = LabeledData(120, 0.5, 14);
  std::vector<ForestParams> grid;
  ForestParams good;
  good.num_trees = 5;
  ForestParams bad;
  bad.num_trees = 0;  // every fold Fit fails
  grid.push_back(good);
  grid.push_back(bad);
  auto sequential = GridSearchForest(d, grid, 3, 14, /*num_threads=*/1);
  auto pooled = GridSearchForest(d, grid, 3, 14, /*num_threads=*/4);
  EXPECT_FALSE(sequential.ok());
  EXPECT_FALSE(pooled.ok());
  // Deterministic error selection: the pool reports the same (first in
  // flattened order) failure the sequential path does.
  EXPECT_EQ(sequential.status().message(), pooled.status().message());
}

TEST(GridSearchTest, DefaultGridIsNonTrivial) {
  const auto grid = DefaultForestGrid();
  EXPECT_GE(grid.size(), 4u);
  for (const auto& p : grid) {
    EXPECT_GT(p.num_trees, 0);
    EXPECT_GT(p.max_depth, 0);
  }
}

}  // namespace
}  // namespace cloudsurv::ml
