#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"

namespace cloudsurv::stats {
namespace {

TEST(SummarizeTest, EmptyInputIsAllZero) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.variance, 0.0);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(SummarizeTest, SingleValue) {
  const Summary s = Summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.sum, 42.0);
}

TEST(SummarizeTest, HandComputedExample) {
  const Summary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample variance with n-1 = 7: sum of squared devs = 32.
  EXPECT_NEAR(s.variance, 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(SummarizeTest, NumericallyStableForLargeOffsets) {
  // Naive sum-of-squares would lose all precision here.
  const double base = 1e9;
  const Summary s = Summarize({base + 1, base + 2, base + 3});
  EXPECT_NEAR(s.variance, 1.0, 1e-6);
}

TEST(QuantileTest, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(QuantileTest, LinearInterpolation) {
  // Type-7 quantile of {1,2,3,4} at q=0.25 -> 1 + 0.75 = 1.75.
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0, 3.0, 4.0}, 0.25), 1.75);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
}

TEST(CorrelationTest, PerfectPositiveAndNegative) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(CorrelationTest, ConstantSideIsZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
}

TEST(CorrelationTest, MismatchedOrTinyInputsAreZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {1}), 0.0);
}

TEST(RunningStatsTest, MatchesBatchSummary) {
  Rng rng(3);
  std::vector<double> values;
  RunningStats acc;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Normal(10.0, 3.0);
    values.push_back(v);
    acc.Add(v);
  }
  const Summary batch = Summarize(values);
  EXPECT_EQ(acc.count(), batch.count);
  EXPECT_NEAR(acc.mean(), batch.mean, 1e-10);
  EXPECT_NEAR(acc.variance(), batch.variance, 1e-8);
  EXPECT_DOUBLE_EQ(acc.min(), batch.min);
  EXPECT_DOUBLE_EQ(acc.max(), batch.max);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  Rng rng(4);
  RunningStats left, right, all;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform(0.0, 5.0);
    (i < 80 ? left : right).Add(v);
    all.Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats a_copy = a;
  a.Merge(b);  // empty other: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.Merge(a);  // empty self: copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(HistogramTest, RejectsInvalidConstruction) {
  EXPECT_FALSE(Histogram::Make(1.0, 1.0, 4).ok());
  EXPECT_FALSE(Histogram::Make(2.0, 1.0, 4).ok());
  EXPECT_FALSE(Histogram::Make(0.0, 1.0, 0).ok());
}

TEST(HistogramTest, BinsAndOverflow) {
  auto h = Histogram::Make(0.0, 10.0, 5);
  ASSERT_TRUE(h.ok());
  h->AddAll({-1.0, 0.0, 1.9, 2.0, 9.9, 10.0, 25.0});
  EXPECT_EQ(h->underflow(), 1u);
  EXPECT_EQ(h->overflow(), 2u);
  EXPECT_EQ(h->total(), 7u);
  EXPECT_EQ(h->bin_count(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(h->bin_count(1), 1u);  // 2.0
  EXPECT_EQ(h->bin_count(4), 1u);  // 9.9
}

TEST(HistogramTest, BinEdgesAndFractions) {
  auto h = Histogram::Make(0.0, 10.0, 5);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h->bin_lower(2), 4.0);
  EXPECT_DOUBLE_EQ(h->bin_upper(2), 6.0);
  h->Add(4.5);
  h->Add(4.6);
  h->Add(0.5);
  EXPECT_NEAR(h->bin_fraction(2), 2.0 / 3.0, 1e-12);
}

TEST(HistogramTest, AsciiArtRendersOneLinePerBin) {
  auto h = Histogram::Make(0.0, 4.0, 4);
  ASSERT_TRUE(h.ok());
  h->AddAll({0.5, 1.5, 1.6, 3.5});
  const std::string art = h->ToAsciiArt(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find('#'), std::string::npos);
}

}  // namespace
}  // namespace cloudsurv::stats
