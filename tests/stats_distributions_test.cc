#include <cmath>
#include <memory>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "stats/distributions.h"

namespace cloudsurv::stats {
namespace {

// Shared sweep: every distribution must satisfy basic CDF/quantile/
// sampler coherence. Parameterized over factory functions.
using DistFactory = std::shared_ptr<const Distribution> (*)();

std::shared_ptr<const Distribution> MakeExp() {
  return std::make_shared<ExponentialDistribution>(0.5);
}
std::shared_ptr<const Distribution> MakeWeibullInfant() {
  return std::make_shared<WeibullDistribution>(0.8, 3.0);
}
std::shared_ptr<const Distribution> MakeWeibullWearout() {
  return std::make_shared<WeibullDistribution>(2.5, 10.0);
}
std::shared_ptr<const Distribution> MakeLogNormal() {
  return std::make_shared<LogNormalDistribution>(std::log(12.0), 0.75);
}
std::shared_ptr<const Distribution> MakeUniform() {
  return std::make_shared<UniformDistribution>(2.0, 8.0);
}
std::shared_ptr<const Distribution> MakeMixture() {
  auto m = MixtureDistribution::Make(
      {std::make_shared<WeibullDistribution>(1.0, 1.0),
       std::make_shared<LogNormalDistribution>(std::log(30.0), 0.5)},
      {0.4, 0.6});
  return std::make_shared<MixtureDistribution>(std::move(m).value());
}

class DistributionContractTest
    : public ::testing::TestWithParam<DistFactory> {};

TEST_P(DistributionContractTest, CdfIsMonotoneIn01) {
  auto dist = GetParam()();
  double prev = 0.0;
  for (double x = 0.0; x <= 100.0; x += 0.5) {
    const double c = dist->Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionContractTest, QuantileInvertsCdf) {
  auto dist = GetParam()();
  for (double p : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    const double x = dist->Quantile(p);
    EXPECT_NEAR(dist->Cdf(x), p, 1e-6) << "p=" << p;
  }
}

TEST_P(DistributionContractTest, SamplesMatchCdfByKsStatistic) {
  auto dist = GetParam()();
  Rng rng(99);
  std::vector<double> sample(4000);
  for (double& v : sample) v = dist->Sample(rng);
  // KS critical value at alpha=0.001 for n=4000 is ~0.031.
  EXPECT_LT(KolmogorovSmirnovStatistic(sample, *dist), 0.031);
}

TEST_P(DistributionContractTest, EmpiricalMeanMatches) {
  auto dist = GetParam()();
  Rng rng(7);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += dist->Sample(rng);
  const double mean = dist->Mean();
  EXPECT_NEAR(sum / n, mean, std::max(0.02 * mean, 0.05));
}

TEST_P(DistributionContractTest, PdfIntegratesToCdf) {
  auto dist = GetParam()();
  // Trapezoid integral of the PDF over [0, q99] should be ~0.99.
  const double hi = dist->Quantile(0.99);
  const int steps = 20000;
  double integral = 0.0;
  double prev_pdf = dist->Pdf(0.0);
  for (int i = 1; i <= steps; ++i) {
    const double x = hi * i / steps;
    const double pdf = dist->Pdf(x);
    integral += 0.5 * (pdf + prev_pdf) * (hi / steps);
    prev_pdf = pdf;
  }
  EXPECT_NEAR(integral, 0.99, 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistributionContractTest,
                         ::testing::Values(&MakeExp, &MakeWeibullInfant,
                                           &MakeWeibullWearout,
                                           &MakeLogNormal, &MakeUniform,
                                           &MakeMixture));

TEST(ExponentialTest, AnalyticForms) {
  ExponentialDistribution d(2.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.5);
  EXPECT_NEAR(d.Cdf(1.0), 1.0 - std::exp(-2.0), 1e-12);
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_NEAR(d.Quantile(0.5), std::log(2.0) / 2.0, 1e-12);
}

TEST(WeibullTest, Shape1IsExponential) {
  WeibullDistribution w(1.0, 2.0);
  ExponentialDistribution e(0.5);
  for (double x : {0.1, 1.0, 3.0, 7.0}) {
    EXPECT_NEAR(w.Cdf(x), e.Cdf(x), 1e-12);
  }
}

TEST(WeibullTest, MedianFormula) {
  WeibullDistribution w(2.0, 5.0);
  // median = scale * (ln 2)^{1/shape}
  EXPECT_NEAR(w.Quantile(0.5), 5.0 * std::sqrt(std::log(2.0)), 1e-10);
}

TEST(LogNormalTest, MedianIsExpMu) {
  LogNormalDistribution d(std::log(42.0), 0.9);
  EXPECT_NEAR(d.Quantile(0.5), 42.0, 1e-6);
  EXPECT_NEAR(d.Cdf(42.0), 0.5, 1e-12);
}

TEST(LogNormalTest, MeanFormula) {
  LogNormalDistribution d(1.0, 0.5);
  EXPECT_NEAR(d.Mean(), std::exp(1.0 + 0.125), 1e-12);
}

TEST(UniformTest, AnalyticForms) {
  UniformDistribution d(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 4.0);
  EXPECT_DOUBLE_EQ(d.Cdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(6.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Cdf(4.0), 0.5);
  EXPECT_DOUBLE_EQ(d.Pdf(5.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Pdf(7.0), 0.0);
}

TEST(MixtureTest, RejectsInvalidInputs) {
  auto c1 = std::make_shared<ExponentialDistribution>(1.0);
  EXPECT_FALSE(MixtureDistribution::Make({}, {}).ok());
  EXPECT_FALSE(MixtureDistribution::Make({c1}, {1.0, 2.0}).ok());
  EXPECT_FALSE(MixtureDistribution::Make({c1}, {-1.0}).ok());
  EXPECT_FALSE(MixtureDistribution::Make({c1}, {0.0}).ok());
  EXPECT_FALSE(MixtureDistribution::Make({nullptr}, {1.0}).ok());
}

TEST(MixtureTest, NormalizesWeights) {
  auto c1 = std::make_shared<ExponentialDistribution>(1.0);
  auto c2 = std::make_shared<ExponentialDistribution>(2.0);
  auto m = MixtureDistribution::Make({c1, c2}, {2.0, 6.0});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(m->weights()[1], 0.75, 1e-12);
}

TEST(MixtureTest, CdfIsWeightedSum) {
  auto c1 = std::make_shared<ExponentialDistribution>(1.0);
  auto c2 = std::make_shared<UniformDistribution>(0.0, 10.0);
  auto m = MixtureDistribution::Make({c1, c2}, {0.3, 0.7});
  ASSERT_TRUE(m.ok());
  for (double x : {0.5, 2.0, 5.0}) {
    EXPECT_NEAR(m->Cdf(x), 0.3 * c1->Cdf(x) + 0.7 * c2->Cdf(x), 1e-12);
  }
}

TEST(MixtureTest, MeanIsWeightedSum) {
  auto c1 = std::make_shared<ExponentialDistribution>(0.5);  // mean 2
  auto c2 = std::make_shared<UniformDistribution>(0.0, 8.0); // mean 4
  auto m = MixtureDistribution::Make({c1, c2}, {0.5, 0.5});
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->Mean(), 3.0, 1e-12);
}

TEST(KsStatisticTest, PerfectFitIsSmall) {
  UniformDistribution d(0.0, 1.0);
  // Evenly spread points have KS ~ 1/(2n).
  std::vector<double> sample;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    sample.push_back((i + 0.5) / n);
  }
  EXPECT_LT(KolmogorovSmirnovStatistic(sample, d), 0.006);
}

TEST(KsStatisticTest, GrossMismatchIsLarge) {
  UniformDistribution d(0.0, 1.0);
  std::vector<double> sample(50, 0.99);  // all mass at one point
  EXPECT_GT(KolmogorovSmirnovStatistic(sample, d), 0.9);
}

TEST(KsStatisticTest, EmptySampleIsZero) {
  UniformDistribution d(0.0, 1.0);
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovStatistic({}, d), 0.0);
}

}  // namespace
}  // namespace cloudsurv::stats
