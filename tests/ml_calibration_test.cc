#include "common/rng.h"
#include "gtest/gtest.h"
#include "ml/calibration.h"

namespace cloudsurv::ml {
namespace {

TEST(CalibrationTest, PerfectlyCalibratedPredictor) {
  // Labels drawn with probability equal to the prediction.
  Rng rng(1);
  std::vector<int> y;
  std::vector<double> p;
  for (int i = 0; i < 50000; ++i) {
    const double prob = rng.Uniform();
    p.push_back(prob);
    y.push_back(rng.Bernoulli(prob) ? 1 : 0);
  }
  auto report = ComputeCalibration(y, p, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->expected_calibration_error, 0.02);
  // Brier of a perfectly calibrated uniform predictor is E[p(1-p)] = 1/6.
  EXPECT_NEAR(report->brier_score, 1.0 / 6.0, 0.01);
  for (const auto& bin : report->bins) {
    if (bin.count < 100) continue;
    EXPECT_NEAR(bin.mean_predicted, bin.observed_rate, 0.05);
  }
}

TEST(CalibrationTest, OverconfidentPredictorHasHighEce) {
  // Predicts 0.95 for everything positive-ish; true rate 0.6.
  Rng rng(2);
  std::vector<int> y;
  std::vector<double> p;
  for (int i = 0; i < 10000; ++i) {
    p.push_back(0.95);
    y.push_back(rng.Bernoulli(0.6) ? 1 : 0);
  }
  auto report = ComputeCalibration(y, p, 10);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->expected_calibration_error, 0.35, 0.03);
  EXPECT_NEAR(report->max_calibration_error, 0.35, 0.03);
}

TEST(CalibrationTest, BrierScoreHandExamples) {
  auto perfect = ComputeCalibration({1, 0}, {1.0, 0.0}, 5);
  ASSERT_TRUE(perfect.ok());
  EXPECT_DOUBLE_EQ(perfect->brier_score, 0.0);
  auto worst = ComputeCalibration({1, 0}, {0.0, 1.0}, 5);
  ASSERT_TRUE(worst.ok());
  EXPECT_DOUBLE_EQ(worst->brier_score, 1.0);
  auto half = ComputeCalibration({1, 0}, {0.5, 0.5}, 5);
  ASSERT_TRUE(half.ok());
  EXPECT_DOUBLE_EQ(half->brier_score, 0.25);
}

TEST(CalibrationTest, BinEdgesAndAssignment) {
  auto report =
      ComputeCalibration({0, 1, 1}, {0.05, 0.55, 0.999}, 10);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->bins.size(), 10u);
  EXPECT_EQ(report->bins[0].count, 1u);
  EXPECT_EQ(report->bins[5].count, 1u);
  EXPECT_EQ(report->bins[9].count, 1u);  // p=1 lands in the last bin
  EXPECT_DOUBLE_EQ(report->bins[0].lower, 0.0);
  EXPECT_DOUBLE_EQ(report->bins[9].upper, 1.0);
}

TEST(CalibrationTest, RejectsInvalidInputs) {
  EXPECT_FALSE(ComputeCalibration({}, {}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({1}, {0.5, 0.5}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({2}, {0.5}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({1}, {1.5}, 10).ok());
  EXPECT_FALSE(ComputeCalibration({1}, {0.5}, 0).ok());
}

TEST(CalibrationTest, ToTextRendersBins) {
  auto report = ComputeCalibration({1, 0, 1, 0}, {0.9, 0.1, 0.8, 0.2}, 4);
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToText();
  EXPECT_NE(text.find("brier="), std::string::npos);
  EXPECT_NE(text.find("mean_pred"), std::string::npos);
}

/// Property sweep over bin counts: ECE is always within [0, 1] and the
/// bin counts always sum to n.
class CalibrationBinsTest : public ::testing::TestWithParam<int> {};

TEST_P(CalibrationBinsTest, InvariantsHold) {
  Rng rng(3);
  std::vector<int> y;
  std::vector<double> p;
  for (int i = 0; i < 2000; ++i) {
    p.push_back(rng.Uniform());
    y.push_back(rng.Bernoulli(0.4) ? 1 : 0);
  }
  auto report = ComputeCalibration(y, p, GetParam());
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->expected_calibration_error, 0.0);
  EXPECT_LE(report->expected_calibration_error, 1.0);
  EXPECT_LE(report->expected_calibration_error,
            report->max_calibration_error + 1e-12);
  size_t total = 0;
  for (const auto& bin : report->bins) total += bin.count;
  EXPECT_EQ(total, y.size());
}

INSTANTIATE_TEST_SUITE_P(Bins, CalibrationBinsTest,
                         ::testing::Values(1, 2, 5, 10, 20, 50));

}  // namespace
}  // namespace cloudsurv::ml
