#include <algorithm>

#include "core/provisioning.h"
#include "gtest/gtest.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "tests/test_util.h"

namespace cloudsurv::core {
namespace {

using cloudsurv::testing::StoreBuilder;

TEST(PlanFromPredictionsTest, OnlyConfidentPredictionsPlaced) {
  std::vector<PredictionOutcome> outcomes(3);
  outcomes[0].id = 1;
  outcomes[0].predicted_label = 0;
  outcomes[0].confident = true;
  outcomes[1].id = 2;
  outcomes[1].predicted_label = 1;
  outcomes[1].confident = true;
  outcomes[2].id = 3;
  outcomes[2].predicted_label = 1;
  outcomes[2].confident = false;
  const PoolAssignmentPlan plan = PlanFromPredictions(outcomes);
  EXPECT_EQ(plan.PoolOf(1), Pool::kChurn);
  EXPECT_EQ(plan.PoolOf(2), Pool::kStable);
  EXPECT_EQ(plan.PoolOf(3), Pool::kGeneral);  // uncertain stays default
  EXPECT_EQ(plan.PoolOf(999), Pool::kGeneral);
  EXPECT_STREQ(PoolToString(Pool::kChurn), "churn");
}

TEST(ProvisioningTest, MaintenanceDisruptionAccounting) {
  StoreBuilder b;
  // Lives 0..100: general pool -> hit by rollouts at days 30, 60, 90.
  const auto general_db = b.AddDatabase(1, 0.0, 100.0);
  // Lives 0..20: in churn pool, drops before grace -> rollouts avoided.
  const auto churn_short = b.AddDatabase(1, 0.0, 20.0);
  // Lives 0..100 in churn pool: avoided before grace (45), forced after.
  const auto churn_long = b.AddDatabase(1, 0.0, 100.0);
  auto store = b.Finish();

  PoolAssignmentPlan plan;
  plan.pools[churn_short] = Pool::kChurn;
  plan.pools[churn_long] = Pool::kChurn;
  ProvisioningPolicyConfig config;
  config.move_rate_per_30_days = 0.0;  // isolate maintenance accounting
  auto report = SimulateProvisioning(store, plan, config);
  ASSERT_TRUE(report.ok()) << report.status();

  // general_db: hit at 30/60/90 = 3 disruptions.
  // churn_long: rollout at 30 avoided; at 60/90 (past grace 45) forced
  //   -> 2 disruptions, 1 avoided, 1 forced update.
  // churn_short: no rollout lands inside its 20-day life (window
  //   rollouts are at absolute days 30/60/...), so nothing counted.
  EXPECT_EQ(report->disruptions, 5u);
  EXPECT_EQ(report->avoided_disruptions, 1u);
  EXPECT_EQ(report->forced_updates, 1u);
  (void)general_db;
}

TEST(ProvisioningTest, ChurnPoolIsNeverRebalanced) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, 100.0);
  auto store = b.Finish();
  PoolAssignmentPlan plan;
  plan.pools[id] = Pool::kChurn;
  ProvisioningPolicyConfig config;
  config.move_rate_per_30_days = 10.0;  // extreme rate
  auto report = SimulateProvisioning(store, plan, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->moves, 0u);
  EXPECT_EQ(report->wasted_moves, 0u);
}

TEST(ProvisioningTest, WastedMovesOnlyNearDrop) {
  StoreBuilder b;
  // Long-lived censored database: moves can never be wasted.
  b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  ProvisioningPolicyConfig config;
  config.move_rate_per_30_days = 5.0;
  auto report = SimulateProvisioning(store, {}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->moves, 0u);
  EXPECT_EQ(report->wasted_moves, 0u);
}

TEST(ProvisioningTest, ContentionDropsWhenChurnersSeparated) {
  StoreBuilder b;
  // A cluster of churners and one SLO-changing long-lived database on
  // the same days.
  for (int i = 0; i < 20; ++i) {
    b.AddDatabase(1, 10.0 + i * 0.01, 11.0 + i * 0.01);
  }
  const auto stable = b.AddDatabase(2, 0.0, -1.0, "app", "s",
                                    telemetry::SloIndexByName("S0"));
  b.AddSloChange(stable, 2, 10.5, telemetry::SloIndexByName("S0"),
                 telemetry::SloIndexByName("S1"));
  auto store = b.Finish();

  ProvisioningPolicyConfig config;
  config.move_rate_per_30_days = 0.0;
  auto baseline = SimulateProvisioning(store, {}, config);
  ASSERT_TRUE(baseline.ok());

  PoolAssignmentPlan plan;
  for (const auto& record : store.databases()) {
    if (record.id != stable) plan.pools[record.id] = Pool::kChurn;
  }
  plan.pools[stable] = Pool::kStable;
  auto guided = SimulateProvisioning(store, plan, config);
  ASSERT_TRUE(guided.ok());
  EXPECT_LT(guided->contention_score, baseline->contention_score);
  EXPECT_GT(baseline->contention_score, 0.0);
}

// Golden-text check: the exact report format is contract (quoted in
// docs and consumed by log scrapers).
TEST(ProvisioningTest, ReportGoldenToString) {
  ProvisioningReport r;
  r.num_databases = 3;
  r.disruptions = 5;
  r.avoided_disruptions = 1;
  r.forced_updates = 1;
  r.moves = 2;
  r.wasted_moves = 0;
  r.contention_score = 42.0;
  EXPECT_EQ(r.ToString(),
            "databases=3 disruptions=5 avoided=1 forced_updates=1 "
            "moves=2 wasted_moves=0 contention=42");
}

TEST(ProvisioningTest, RejectsInvalidConfig) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 10.0);
  auto store = b.Finish();
  ProvisioningPolicyConfig config;
  config.maintenance_interval_days = 0.0;
  EXPECT_FALSE(SimulateProvisioning(store, {}, config).ok());
}

TEST(ProvisioningTest, GuidedPolicyBeatsBaselineOnSimulatedRegion) {
  auto config = simulator::MakeRegionPreset(1, 400, 21);
  auto store = simulator::SimulateRegion(*config);
  ASSERT_TRUE(store.ok());

  // Oracle plan: place by true outcome (upper bound for what a
  // classifier-derived plan can achieve).
  PoolAssignmentPlan plan;
  for (const auto& record : store->databases()) {
    const double life = record.ObservedLifespanDays(store->window_end());
    const bool dropped = record.dropped_at.has_value();
    if (dropped && life <= 30.0) {
      plan.pools[record.id] = Pool::kChurn;
    } else if (life > 30.0) {
      plan.pools[record.id] = Pool::kStable;
    }
  }
  ProvisioningPolicyConfig policy;
  auto baseline = SimulateProvisioning(*store, {}, policy);
  auto guided = SimulateProvisioning(*store, plan, policy);
  ASSERT_TRUE(baseline.ok() && guided.ok());
  // Longevity-guided placement avoids disruptions and wastes fewer
  // load-balancer moves (section 3.1's claims).
  EXPECT_LT(guided->disruptions, baseline->disruptions);
  EXPECT_GT(guided->avoided_disruptions, 0u);
  EXPECT_LE(guided->wasted_moves, baseline->wasted_moves);
  EXPECT_LT(guided->contention_score, baseline->contention_score);
  EXPECT_NE(guided->ToString().find("disruptions="), std::string::npos);
}

}  // namespace
}  // namespace cloudsurv::core
