#!/bin/sh
# End-to-end smoke test of the cloudsurv CLI: simulate -> analyze ->
# train -> assess must all succeed and produce coherent artifacts.
set -e
CLI="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$CLI" simulate --region 2 --subs 200 --seed 5 --out "$WORK/region.csv"
test -s "$WORK/region.csv"

"$CLI" analyze --telemetry "$WORK/region.csv" --region 2 | tee "$WORK/analyze.txt"
grep -q "KM survival" "$WORK/analyze.txt"
grep -q "Weibull fit" "$WORK/analyze.txt"

"$CLI" train --telemetry "$WORK/region.csv" --region 2 --out "$WORK/svc.model"
test -s "$WORK/svc.model"

"$CLI" assess --telemetry "$WORK/region.csv" --region 2 \
  --model "$WORK/svc.model" --top 3 | tee "$WORK/assess.txt"
grep -q "assessed" "$WORK/assess.txt"

# plan: the cost/architecture what-if sweep. Text output must show the
# catalog and the policy tradeoff table; JSON output must be valid and
# carry one report per requested policy.
"$CLI" plan --telemetry "$WORK/region.csv" --region 2 \
  --model "$WORK/svc.model" | tee "$WORK/plan.txt"
grep -q "catalog:" "$WORK/plan.txt"
grep -q "churn-dense" "$WORK/plan.txt"
grep -q "total_cost" "$WORK/plan.txt"
grep -q "^naive " "$WORK/plan.txt"
grep -q "^longevity " "$WORK/plan.txt"
grep -q "^oracle " "$WORK/plan.txt"
grep -q "per-architecture (policy=longevity)" "$WORK/plan.txt"
"$CLI" plan --telemetry "$WORK/region.csv" --region 2 \
  --model "$WORK/svc.model" --policies naive,longevity --format json \
  --out "$WORK/plan.json"
python3 - "$WORK/plan.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert [p["policy"] for p in doc["policies"]] == ["naive", "longevity"]
assert all("total_cost" in p["report"] for p in doc["policies"])
assert len(doc["catalog"]) == 4, doc["catalog"]
EOF

# A custom catalog is honored; a malformed one is rejected with the
# offending line named, before any replay work happens.
cat > "$WORK/catalog.txt" <<'EOF'
resource vcpu 1.0
resource memory_gb 0.1
resource storage_gb 0.01
architecture lone kind=standard vcpus=8 memory_gb=64 storage_gb=2000 capacity_dtus=4000
EOF
"$CLI" plan --telemetry "$WORK/region.csv" --region 2 \
  --model "$WORK/svc.model" --catalog "$WORK/catalog.txt" \
  --policies naive | tee "$WORK/plan_custom.txt"
grep -q "lone" "$WORK/plan_custom.txt"
cat > "$WORK/catalog_bad.txt" <<'EOF'
resource vcpu 1.0
resource memory_gb 0.1
resource storage_gb 0.01
architecture broken kind=standard vcpuz=8 capacity_dtus=100
EOF
if "$CLI" plan --telemetry "$WORK/region.csv" --region 2 \
    --model "$WORK/svc.model" --catalog "$WORK/catalog_bad.txt" \
    > "$WORK/plan_bad.txt" 2>&1; then
  echo "expected rejection of malformed catalog" >&2
  exit 1
fi
grep -q "catalog line 4: unknown key 'vcpuz'" "$WORK/plan_bad.txt"

# plan flag validation mirrors serve-sim's strictness.
for bad in "--policies banana" "--policies naive,banana" \
           "--format banana" "--maintenance-interval 0" \
           "--grace-days bad"; do
  if "$CLI" plan --telemetry "$WORK/region.csv" --region 2 \
      --model "$WORK/svc.model" $bad > "$WORK/plan_flag.txt" 2>&1; then
    echo "expected rejection of '$bad'" >&2
    exit 1
  fi
  grep -q "InvalidArgument" "$WORK/plan_flag.txt" || {
    echo "expected InvalidArgument diagnostic for '$bad'" >&2
    exit 1
  }
done

# Binary artifact round trip: train -> pack -> inspect -> assess from
# the .csrv must produce byte-identical output to the text-model assess.
"$CLI" pack --model "$WORK/svc.model" --out "$WORK/svc.csrv" \
  | tee "$WORK/pack.txt"
grep -q "packed" "$WORK/pack.txt"
test -s "$WORK/svc.csrv"
"$CLI" inspect --model "$WORK/svc.csrv" | tee "$WORK/inspect.txt"
grep -q "CSRV format v1" "$WORK/inspect.txt"
grep -q "service_meta" "$WORK/inspect.txt"
grep -q "node_threshold" "$WORK/inspect.txt"
grep -q "slot 0: pooled" "$WORK/inspect.txt"
"$CLI" assess --telemetry "$WORK/region.csv" --region 2 \
  --model "$WORK/svc.csrv" --top 3 > "$WORK/assess_csrv.txt"
cmp "$WORK/assess.txt" "$WORK/assess_csrv.txt" || {
  echo "assess output differs between text model and .csrv artifact" >&2
  exit 1
}

# Kernel cross-check: assess through the forced-scalar traversal must
# be byte-identical to the auto-dispatched (possibly AVX2) run above.
"$CLI" assess --telemetry "$WORK/region.csv" --region 2 \
  --model "$WORK/svc.csrv" --top 3 --traversal scalar \
  > "$WORK/assess_scalar.txt"
cmp "$WORK/assess_csrv.txt" "$WORK/assess_scalar.txt" || {
  echo "assess output differs between traversal kernels" >&2
  exit 1
}

# serve-sim accepts a packed model and still verifies bit-identical.
"$CLI" serve-sim --region 2 --subs 200 --seed 5 \
  --model "$WORK/svc.csrv" | tee "$WORK/serve_packed.txt"
grep -q "serving model from" "$WORK/serve_packed.txt"
grep -q "IDENTICAL" "$WORK/serve_packed.txt"

# Corruption is rejected with a checksum diagnostic, not served.
cp "$WORK/svc.csrv" "$WORK/corrupt.csrv"
printf 'X' | dd of="$WORK/corrupt.csrv" bs=1 seek=2048 conv=notrunc 2>/dev/null
if "$CLI" inspect --model "$WORK/corrupt.csrv" > "$WORK/corrupt.txt" 2>&1; then
  echo "expected rejection of corrupt artifact" >&2
  exit 1
fi
grep -q "CRC" "$WORK/corrupt.txt"

# serve-sim with periodic metrics dumps: the output must contain valid
# Prometheus text exposition (HELP/TYPE + engine counters) and the
# --metrics-out JSON snapshot must be written and well-formed.
"$CLI" serve-sim --region 2 --subs 300 --seed 5 \
  --metrics-interval 90 --metrics-out "$WORK/metrics.json" \
  | tee "$WORK/serve.txt"
grep -q "IDENTICAL" "$WORK/serve.txt"
grep -q "# TYPE cloudsurv_engine_polls_total counter" "$WORK/serve.txt"
grep -q "# TYPE cloudsurv_engine_scoring_latency_us histogram" "$WORK/serve.txt"
grep -q "cloudsurv_engine_scoring_latency_us_bucket{engine=\"0\",le=\"+Inf\"}" \
  "$WORK/serve.txt"
grep -q "cloudsurv_ingest_events_total{shard=\"0\"}" "$WORK/serve.txt"
test -s "$WORK/metrics.json"
grep -q "\"metrics\": \[" "$WORK/metrics.json"
grep -q "\"name\": \"cloudsurv_engine_databases_scored_total\"" \
  "$WORK/metrics.json"

# serve-sim in both inference modes: the flat (compiled) and legacy
# (per-row) engines must each verify IDENTICAL against the sequential
# ground truth, and must agree with each other on the engine counters.
"$CLI" serve-sim --region 2 --subs 300 --seed 5 \
  --inference flat --block-rows 128 | tee "$WORK/serve_flat.txt"
grep -q "inference=flat" "$WORK/serve_flat.txt"
grep -q "IDENTICAL" "$WORK/serve_flat.txt"
"$CLI" serve-sim --region 2 --subs 300 --seed 5 \
  --inference legacy | tee "$WORK/serve_legacy.txt"
grep -q "inference=legacy" "$WORK/serve_legacy.txt"
grep -q "IDENTICAL" "$WORK/serve_legacy.txt"

# Forced-scalar traversal: the portable kernel must also verify
# IDENTICAL against the sequential ground truth, and the summary line
# must name the kernel that ran.
"$CLI" serve-sim --region 2 --subs 300 --seed 5 \
  --traversal scalar | tee "$WORK/serve_scalar.txt"
grep -q "traversal=scalar" "$WORK/serve_scalar.txt"
grep -q "IDENTICAL" "$WORK/serve_scalar.txt"
for line in "databases scored" "confident"; do
  flat_count=$(grep "$line" "$WORK/serve_flat.txt" | head -1)
  legacy_count=$(grep "$line" "$WORK/serve_legacy.txt" | head -1)
  if [ "$flat_count" != "$legacy_count" ]; then
    echo "flat/legacy mismatch on '$line':" >&2
    echo "  flat:   $flat_count" >&2
    echo "  legacy: $legacy_count" >&2
    exit 1
  fi
done

# serve-sim under an output-neutral fault plan: faults fire, the replay
# stays bit-identical to batch Assess, and the ingest/scoring accounting
# identities hold.
cat > "$WORK/plan_neutral.txt" <<'EOF'
seed 42
fault ingest.shard stall every=500 delay_us=200
fault pool.task delay every=250 delay_us=100
EOF
"$CLI" serve-sim --region 2 --subs 300 --seed 5 \
  --fault-plan "$WORK/plan_neutral.txt" | tee "$WORK/serve_faults.txt"
grep -q "fault plan" "$WORK/serve_faults.txt"
grep -q "faults fired" "$WORK/serve_faults.txt"
grep -q "IDENTICAL" "$WORK/serve_faults.txt"
grep -q "accounting.*OK" "$WORK/serve_faults.txt"

# serve-sim under an output-affecting plan (model-swap races + io
# failures): the run must still exit 0 with clean accounting — every
# rejected or degraded event is counted, nothing is dropped silently.
cat > "$WORK/plan_swap.txt" <<'EOF'
seed 7
fault registry.swap swap_race every=2 count=6
fault engine.snapshot io_fail every=5 count=3
EOF
"$CLI" serve-sim --region 2 --subs 300 --seed 5 \
  --fault-plan "$WORK/plan_swap.txt" | tee "$WORK/serve_swap.txt"
grep -q "advisory" "$WORK/serve_swap.txt"
grep -q "accounting.*OK" "$WORK/serve_swap.txt"

# Flag validation: zero/negative/garbage values are rejected up front
# with an InvalidArgument diagnostic, never a crash or a silent default.
for bad in "--threads 0" "--threads -3" "--shards banana" \
           "--flush-interval 0" "--flush-interval -2" \
           "--metrics-interval abc" "--deadline-us -1" "--shed-high -5" \
           "--inference banana" "--block-rows 0" "--traversal banana"; do
  if "$CLI" serve-sim --region 2 --subs 50 --seed 5 $bad \
      > "$WORK/bad.txt" 2>&1; then
    echo "expected rejection of '$bad'" >&2
    exit 1
  fi
  grep -q "InvalidArgument" "$WORK/bad.txt" || {
    echo "expected InvalidArgument diagnostic for '$bad'" >&2
    exit 1
  }
done

# A malformed fault plan names the offending line and exits non-zero.
printf 'fault nowhere delay delay_us=1\n' > "$WORK/plan_bad.txt"
if "$CLI" serve-sim --region 2 --subs 50 --seed 5 \
    --fault-plan "$WORK/plan_bad.txt" > "$WORK/badplan.txt" 2>&1; then
  echo "expected rejection of malformed fault plan" >&2
  exit 1
fi
grep -q "fault plan line 1" "$WORK/badplan.txt"

# Error paths exit non-zero.
if "$CLI" analyze --telemetry /nonexistent.csv 2>/dev/null; then
  echo "expected failure on missing telemetry" >&2
  exit 1
fi
if "$CLI" bogus-command 2>/dev/null; then
  echo "expected failure on unknown command" >&2
  exit 1
fi
echo "CLI smoke test OK"
