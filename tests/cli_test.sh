#!/bin/sh
# End-to-end smoke test of the cloudsurv CLI: simulate -> analyze ->
# train -> assess must all succeed and produce coherent artifacts.
set -e
CLI="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

"$CLI" simulate --region 2 --subs 200 --seed 5 --out "$WORK/region.csv"
test -s "$WORK/region.csv"

"$CLI" analyze --telemetry "$WORK/region.csv" --region 2 | tee "$WORK/analyze.txt"
grep -q "KM survival" "$WORK/analyze.txt"
grep -q "Weibull fit" "$WORK/analyze.txt"

"$CLI" train --telemetry "$WORK/region.csv" --region 2 --out "$WORK/svc.model"
test -s "$WORK/svc.model"

"$CLI" assess --telemetry "$WORK/region.csv" --region 2 \
  --model "$WORK/svc.model" --top 3 | tee "$WORK/assess.txt"
grep -q "assessed" "$WORK/assess.txt"

# serve-sim with periodic metrics dumps: the output must contain valid
# Prometheus text exposition (HELP/TYPE + engine counters) and the
# --metrics-out JSON snapshot must be written and well-formed.
"$CLI" serve-sim --region 2 --subs 300 --seed 5 \
  --metrics-interval 90 --metrics-out "$WORK/metrics.json" \
  | tee "$WORK/serve.txt"
grep -q "IDENTICAL" "$WORK/serve.txt"
grep -q "# TYPE cloudsurv_engine_polls_total counter" "$WORK/serve.txt"
grep -q "# TYPE cloudsurv_engine_scoring_latency_us histogram" "$WORK/serve.txt"
grep -q "cloudsurv_engine_scoring_latency_us_bucket{engine=\"0\",le=\"+Inf\"}" \
  "$WORK/serve.txt"
grep -q "cloudsurv_ingest_events_total{shard=\"0\"}" "$WORK/serve.txt"
test -s "$WORK/metrics.json"
grep -q "\"metrics\": \[" "$WORK/metrics.json"
grep -q "\"name\": \"cloudsurv_engine_databases_scored_total\"" \
  "$WORK/metrics.json"

# Error paths exit non-zero.
if "$CLI" analyze --telemetry /nonexistent.csv 2>/dev/null; then
  echo "expected failure on missing telemetry" >&2
  exit 1
fi
if "$CLI" bogus-command 2>/dev/null; then
  echo "expected failure on unknown command" >&2
  exit 1
fi
echo "CLI smoke test OK"
