#include <set>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "simulator/archetypes.h"
#include "simulator/name_generator.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "telemetry/civil_time.h"

namespace cloudsurv::simulator {
namespace {

using telemetry::Edition;
using telemetry::TelemetryStore;

TEST(NameGeneratorTest, StylesProduceDistinctShapes) {
  Rng rng(1);
  double automated_len_sum = 0.0;
  double human_len_sum = 0.0;
  double automated_distinct_sum = 0.0;
  double human_distinct_sum = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const std::string human =
        GenerateDatabaseName(NameStyle::kHumanWords, rng);
    const std::string automated =
        GenerateDatabaseName(NameStyle::kAutomatedSuffix, rng);
    std::set<char> hd(human.begin(), human.end());
    std::set<char> ad(automated.begin(), automated.end());
    human_len_sum += static_cast<double>(human.size());
    automated_len_sum += static_cast<double>(automated.size());
    human_distinct_sum += static_cast<double>(hd.size());
    automated_distinct_sum += static_cast<double>(ad.size());
    EXPECT_FALSE(human.empty());
    EXPECT_FALSE(automated.empty());
  }
  // Automated names are clearly longer and use more distinct
  // characters in absolute terms (random suffixes).
  EXPECT_GT(automated_len_sum / n, human_len_sum / n + 3.0);
  EXPECT_GT(automated_distinct_sum / n, human_distinct_sum / n + 2.0);
}

TEST(NameGeneratorTest, NamesAreCsvSafe) {
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    for (auto style :
         {NameStyle::kHumanWords, NameStyle::kAutomatedSuffix,
          NameStyle::kSemiAutomatedDated}) {
      const std::string name = GenerateDatabaseName(style, rng);
      EXPECT_EQ(name.find(','), std::string::npos);
      const std::string server = GenerateServerName(style, rng);
      EXPECT_EQ(server.find(','), std::string::npos);
    }
  }
}

TEST(NameGeneratorTest, PurposeBiasesWordChoice) {
  Rng rng(3);
  int scratch_hits = 0, keeper_hits = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const std::string scratch = GenerateDatabaseName(
        NameStyle::kHumanWords, rng, NamePurpose::kScratch);
    const std::string keeper = GenerateDatabaseName(
        NameStyle::kHumanWords, rng, NamePurpose::kKeeper);
    for (const char* w : {"test", "demo", "tmp", "scratch", "sandbox"}) {
      if (scratch.find(w) != std::string::npos) {
        ++scratch_hits;
        break;
      }
    }
    for (const char* w : {"prod", "main", "core", "live", "primary"}) {
      if (keeper.find(w) != std::string::npos) {
        ++keeper_hits;
        break;
      }
    }
  }
  EXPECT_GT(scratch_hits, n / 5);
  EXPECT_GT(keeper_hits, n / 5);
}

TEST(ArchetypeTest, ProfilesAreWellFormed) {
  for (int i = 0; i < kNumArchetypes; ++i) {
    const auto& p = GetArchetypeProfile(static_cast<Archetype>(i));
    EXPECT_EQ(p.kind, static_cast<Archetype>(i));
    EXPECT_GT(p.mean_databases, 0.0);
    double edition_total = 0.0;
    for (double w : p.edition_weights) {
      EXPECT_GE(w, 0.0);
      edition_total += w;
    }
    EXPECT_GT(edition_total, 0.0);
    for (const auto& dist : p.lifetime) {
      ASSERT_NE(dist, nullptr);
      EXPECT_GT(dist->Mean(), 0.0);
    }
    double sub_total = 0.0;
    for (double w : p.subscription_weights) sub_total += w;
    EXPECT_NEAR(sub_total, 1.0, 1e-9);
    EXPECT_STRNE(ArchetypeToString(static_cast<Archetype>(i)), "Unknown");
  }
}

TEST(ArchetypeTest, MixSamplesProportionally) {
  ArchetypeMix mix{};
  mix.weights[0] = 1.0;
  mix.weights[3] = 3.0;
  Rng rng(4);
  int zero = 0, three = 0;
  for (int i = 0; i < 4000; ++i) {
    const Archetype a = mix.Sample(rng);
    if (a == static_cast<Archetype>(0)) ++zero;
    if (a == static_cast<Archetype>(3)) ++three;
  }
  EXPECT_EQ(zero + three, 4000);
  EXPECT_NEAR(static_cast<double>(three) / 4000.0, 0.75, 0.03);
}

TEST(RegionTest, PresetsAreDistinct) {
  auto r1 = MakeRegionPreset(1, 100, 1);
  auto r2 = MakeRegionPreset(2, 100, 1);
  auto r3 = MakeRegionPreset(3, 100, 1);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1->name, "Region-1");
  EXPECT_NE(r1->utc_offset_minutes, r2->utc_offset_minutes);
  EXPECT_NE(r2->utc_offset_minutes, r3->utc_offset_minutes);
  EXPECT_GT(r1->holidays.size(), 0u);
  EXPECT_NEAR(r1->window_days(), 150.0, 1.0);
  // Mix weights still sum to ~1 after regional perturbation.
  for (const auto& r : {*r1, *r2, *r3}) {
    double total = 0.0;
    for (double w : r.mix.weights) total += w;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
  EXPECT_FALSE(MakeRegionPreset(0, 100, 1).ok());
  EXPECT_FALSE(MakeRegionPreset(4, 100, 1).ok());
  EXPECT_FALSE(MakeRegionPreset(1, 0, 1).ok());
}

class SimulatorTest : public ::testing::Test {
 protected:
  static const TelemetryStore& Store() {
    static const TelemetryStore* store = [] {
      auto config = MakeRegionPreset(1, 800, 42);
      auto s = SimulateRegion(*config, &Summary());
      EXPECT_TRUE(s.ok()) << s.status();
      return new TelemetryStore(std::move(s).value());
    }();
    return *store;
  }
  static SimulationSummary& Summary() {
    static SimulationSummary summary;
    return summary;
  }
};

TEST_F(SimulatorTest, ProducesFinalizedValidStore) {
  const TelemetryStore& store = Store();
  EXPECT_TRUE(store.finalized());
  EXPECT_GT(store.num_databases(), 2000u);
  EXPECT_GT(store.num_events(), store.num_databases() * 2);
  EXPECT_EQ(Summary().num_subscriptions, 800u);
  size_t db_total = 0;
  for (size_t c : Summary().databases_per_archetype) db_total += c;
  EXPECT_EQ(db_total, store.num_databases());
}

TEST_F(SimulatorTest, AllCreationsInsideWindow) {
  const TelemetryStore& store = Store();
  for (const auto& record : store.databases()) {
    EXPECT_GE(record.created_at, store.window_start());
    EXPECT_LT(record.created_at, store.window_end());
    if (record.dropped_at.has_value()) {
      EXPECT_LT(*record.dropped_at, store.window_end());
      EXPECT_GE(*record.dropped_at, record.created_at);
    }
  }
}

TEST_F(SimulatorTest, DeterministicForSeed) {
  auto config = MakeRegionPreset(1, 60, 7);
  auto s1 = SimulateRegion(*config);
  auto s2 = SimulateRegion(*config);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1->ExportCsv(), s2->ExportCsv());
  config->seed = 8;
  auto s3 = SimulateRegion(*config);
  ASSERT_TRUE(s3.ok());
  EXPECT_NE(s1->ExportCsv(), s3->ExportCsv());
}

TEST_F(SimulatorTest, AllEditionsPresentWithPremiumSmallest) {
  const TelemetryStore& store = Store();
  size_t counts[3] = {0, 0, 0};
  for (const auto& record : store.databases()) {
    ++counts[static_cast<int>(record.initial_edition())];
  }
  EXPECT_GT(counts[0], 0u);
  EXPECT_GT(counts[1], 0u);
  EXPECT_GT(counts[2], 0u);
  // The Premium population is significantly smaller (paper section 5.2).
  EXPECT_LT(counts[2], counts[0]);
  EXPECT_LT(counts[2], counts[1]);
}

TEST_F(SimulatorTest, WeekendScalersCrossEditionBoundary) {
  const TelemetryStore& store = Store();
  size_t premium_changed = 0;
  size_t premium_total = 0;
  size_t basic_changed = 0;
  size_t basic_total = 0;
  for (const auto& record : store.databases()) {
    const double life = record.ObservedLifespanDays(store.window_end());
    if (life <= 10.0) continue;  // weekend scaling needs a real lifetime
    if (record.initial_edition() == Edition::kPremium) {
      ++premium_total;
      if (record.ChangedEditionDuringLifetime()) ++premium_changed;
    } else if (record.initial_edition() == Edition::kBasic) {
      ++basic_total;
      if (record.ChangedEditionDuringLifetime()) ++basic_changed;
    }
  }
  ASSERT_GT(premium_total, 20u);
  ASSERT_GT(basic_total, 20u);
  // Observation 3.3: proportionally fewer Basic databases change
  // edition than Premium ones.
  const double premium_rate =
      static_cast<double>(premium_changed) / premium_total;
  const double basic_rate = static_cast<double>(basic_changed) / basic_total;
  EXPECT_GT(premium_rate, 2.0 * basic_rate);
  EXPECT_GT(premium_changed, 0u);
}

TEST_F(SimulatorTest, SloChangeEventsAreConsistentChains) {
  const TelemetryStore& store = Store();
  for (const auto& record : store.databases()) {
    int current = record.initial_slo_index;
    telemetry::Timestamp prev = record.created_at;
    for (const auto& change : record.slo_changes) {
      EXPECT_EQ(change.old_slo_index, current)
          << "db " << record.id << " has a broken SLO chain";
      EXPECT_GT(change.timestamp, prev);
      current = change.new_slo_index;
      prev = change.timestamp;
    }
  }
}

TEST_F(SimulatorTest, SizeSamplesArePositiveAndOrdered) {
  const TelemetryStore& store = Store();
  size_t with_samples = 0;
  for (const auto& record : store.databases()) {
    telemetry::Timestamp prev = record.created_at;
    for (const auto& sample : record.size_samples) {
      EXPECT_GT(sample.size_mb, 0.0);
      EXPECT_GE(sample.timestamp, prev);
      prev = sample.timestamp;
    }
    if (!record.size_samples.empty()) ++with_samples;
  }
  // The vast majority of databases get at least one size sample.
  EXPECT_GT(with_samples, store.num_databases() * 8 / 10);
}

TEST_F(SimulatorTest, CiBotSubscriptionsAreEphemeralOnly) {
  // Re-simulate with a CI-only mix: essentially all databases must be
  // ephemeral (Observation 3.1's frequent-cycling pattern).
  auto config = MakeRegionPreset(1, 50, 5);
  config->mix.weights.fill(0.0);
  config->mix.weights[static_cast<size_t>(Archetype::kCiEphemeralBot)] = 1.0;
  auto store = SimulateRegion(*config);
  ASSERT_TRUE(store.ok());
  size_t ephemeral = 0;
  for (const auto& record : store->databases()) {
    if (record.ObservedLifespanDays(store->window_end()) <= 2.0) {
      ++ephemeral;
    }
  }
  EXPECT_GT(static_cast<double>(ephemeral) / store->num_databases(), 0.97);
}

TEST_F(SimulatorTest, ProductionMixIsLongLived) {
  auto config = MakeRegionPreset(1, 50, 6);
  config->mix.weights.fill(0.0);
  config->mix.weights[static_cast<size_t>(Archetype::kProductionSteady)] =
      1.0;
  auto store = SimulateRegion(*config);
  ASSERT_TRUE(store.ok());
  size_t long_lived = 0;
  for (const auto& record : store->databases()) {
    if (record.ObservedLifespanDays(store->window_end()) > 30.0) {
      ++long_lived;
    }
  }
  // Production databases created early enough mostly exceed 30 days;
  // late creations are censored short, so expect a clear majority.
  EXPECT_GT(static_cast<double>(long_lived) / store->num_databases(), 0.55);
}

TEST_F(SimulatorTest, RejectsInvalidConfigs) {
  RegionConfig config;
  config.window_start = 100;
  config.window_end = 100;
  EXPECT_FALSE(SimulateRegion(config).ok());
  config.window_end = 200;
  config.num_subscriptions = 0;
  EXPECT_FALSE(SimulateRegion(config).ok());
}

}  // namespace
}  // namespace cloudsurv::simulator
