#include "core/prediction.h"
#include "core/report.h"
#include "gtest/gtest.h"
#include "simulator/region.h"
#include "simulator/simulator.h"

namespace cloudsurv::core {
namespace {

using telemetry::Edition;
using telemetry::TelemetryStore;

// One shared simulated region for all experiment tests (simulation and
// training are the expensive parts).
const TelemetryStore& SharedStore() {
  static const TelemetryStore* store = [] {
    auto config = simulator::MakeRegionPreset(1, 700, 11);
    auto s = simulator::SimulateRegion(*config);
    EXPECT_TRUE(s.ok()) << s.status();
    return new TelemetryStore(std::move(s).value());
  }();
  return *store;
}

ExperimentConfig FastConfig() {
  ExperimentConfig config;
  config.tune_with_grid_search = false;
  config.default_params.num_trees = 40;
  config.default_params.max_depth = 10;
  config.num_repetitions = 2;
  config.seed = 5;
  return config;
}

const SubgroupExperimentResult& SharedResult() {
  static const SubgroupExperimentResult* result = [] {
    auto r = RunPredictionExperiment(SharedStore(), Edition::kBasic,
                                     FastConfig());
    EXPECT_TRUE(r.ok()) << r.status();
    return new SubgroupExperimentResult(std::move(r).value());
  }();
  return *result;
}

TEST(PredictionExperimentTest, ProducesRequestedRepetitions) {
  const auto& result = SharedResult();
  EXPECT_EQ(result.runs.size(), 2u);
  EXPECT_EQ(result.subgroup_name, "Basic");
  EXPECT_GT(result.cohort_size, 100u);
  EXPECT_GT(result.positive_rate, 0.0);
  EXPECT_LT(result.positive_rate, 1.0);
}

TEST(PredictionExperimentTest, ForestBeatsBaseline) {
  const auto& result = SharedResult();
  EXPECT_GT(result.forest_avg.accuracy, result.baseline_avg.accuracy + 0.1);
  EXPECT_GT(result.forest_avg.precision, result.baseline_avg.precision);
  EXPECT_GT(result.forest_avg.recall, result.baseline_avg.recall);
}

TEST(PredictionExperimentTest, ConfidenceThresholdMatchesRule) {
  const auto& result = SharedResult();
  for (const RunResult& run : result.runs) {
    // t = max(q, 1-q) >= 0.5 by construction.
    EXPECT_GE(run.confidence_threshold, 0.5);
    EXPECT_LE(run.confidence_threshold, 1.0);
    for (const PredictionOutcome& o : run.outcomes) {
      const bool should_be_confident =
          o.positive_probability >= run.confidence_threshold ||
          o.positive_probability <= 1.0 - run.confidence_threshold;
      EXPECT_EQ(o.confident, should_be_confident);
      EXPECT_EQ(o.predicted_label, o.positive_probability > 0.5 ? 1 : 0);
    }
  }
}

TEST(PredictionExperimentTest, ConfidentBeatsUncertain) {
  const auto& result = SharedResult();
  EXPECT_GT(result.confident_avg.accuracy, result.uncertain_avg.accuracy);
  EXPECT_GE(result.forest_avg.accuracy, result.uncertain_avg.accuracy);
  EXPECT_GT(result.confident_fraction_avg, 0.2);
  EXPECT_LT(result.confident_fraction_avg, 1.0);
}

TEST(PredictionExperimentTest, ImportancesAlignWithFeatureNames) {
  const auto& result = SharedResult();
  ASSERT_EQ(result.feature_names.size(),
            result.feature_importances_avg.size());
  double total = 0.0;
  for (double v : result.feature_importances_avg) {
    EXPECT_GE(v, 0.0);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(PredictionExperimentTest, RankingsAreSortedDescending) {
  const auto& result = SharedResult();
  const auto features = RankFeatureImportances(result);
  for (size_t i = 1; i < features.size(); ++i) {
    EXPECT_GE(features[i - 1].second, features[i].second);
  }
  const auto families = RankFeatureFamilies(result);
  ASSERT_GE(families.size(), 5u);
  for (size_t i = 1; i < families.size(); ++i) {
    EXPECT_GE(families[i - 1].second, families[i].second);
  }
}

TEST(PredictionExperimentTest, SubscriptionHistoryIsTopFamily) {
  // The paper's headline section 5.4 finding.
  const auto families = RankFeatureFamilies(SharedResult());
  EXPECT_EQ(families[0].first, "subscription_history");
}

TEST(PredictionExperimentTest, ClassifiedGroupsAreSeparated) {
  const auto& result = SharedResult();
  auto logrank = LogRankOfClassifiedGroups(result.runs[0].outcomes,
                                           PredictionBucket::kAll);
  ASSERT_TRUE(logrank.ok()) << logrank.status();
  EXPECT_LT(logrank->p_value, 1e-7);
  auto confident = LogRankOfClassifiedGroups(result.runs[0].outcomes,
                                             PredictionBucket::kConfident);
  ASSERT_TRUE(confident.ok());
  EXPECT_LT(confident->p_value, 1e-7);
}

TEST(PredictionExperimentTest, BaselineGroupsAreNotSeparated) {
  const auto& result = SharedResult();
  auto logrank = LogRankOfBaselineGroups(result.runs[0].outcomes,
                                         result.runs[0].baseline_predictions);
  ASSERT_TRUE(logrank.ok()) << logrank.status();
  // A weighted random classifier cannot separate survival curves.
  EXPECT_GT(logrank->p_value, 0.001);
}

TEST(PredictionExperimentTest, SplitOutcomesFiltersBuckets) {
  const auto& outcomes = SharedResult().runs[0].outcomes;
  const auto all = SplitOutcomesByPrediction(outcomes,
                                             PredictionBucket::kAll);
  const auto confident =
      SplitOutcomesByPrediction(outcomes, PredictionBucket::kConfident);
  const auto uncertain =
      SplitOutcomesByPrediction(outcomes, PredictionBucket::kUncertain);
  EXPECT_EQ(all.predicted_short.size() + all.predicted_long.size(),
            outcomes.size());
  EXPECT_EQ(confident.predicted_short.size() +
                confident.predicted_long.size() +
                uncertain.predicted_short.size() +
                uncertain.predicted_long.size(),
            outcomes.size());
}

TEST(PredictionExperimentTest, DeterministicForSeed) {
  auto r1 = RunPredictionExperiment(SharedStore(), Edition::kStandard,
                                    FastConfig());
  auto r2 = RunPredictionExperiment(SharedStore(), Edition::kStandard,
                                    FastConfig());
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->forest_avg.accuracy, r2->forest_avg.accuracy);
  EXPECT_DOUBLE_EQ(r1->confident_fraction_avg, r2->confident_fraction_avg);
}

TEST(PredictionExperimentTest, GridSearchPathWorks) {
  ExperimentConfig config = FastConfig();
  config.tune_with_grid_search = true;
  config.cv_folds = 3;
  config.num_repetitions = 1;
  ml::ForestParams cell;
  cell.num_trees = 20;
  cell.max_depth = 8;
  config.grid = {cell};
  auto result =
      RunPredictionExperiment(SharedStore(), Edition::kBasic, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tuned_params.num_trees, 20);
  EXPECT_GT(result->tuning_cv_score, 0.5);
}

TEST(PredictionExperimentTest, RejectsInvalidConfig) {
  ExperimentConfig config = FastConfig();
  config.num_repetitions = 0;
  EXPECT_FALSE(
      RunPredictionExperiment(SharedStore(), Edition::kBasic, config).ok());
}

TEST(ReportTest, KmSeriesAndPlots) {
  const auto& outcomes = SharedResult().runs[0].outcomes;
  auto groups = SplitOutcomesByPrediction(outcomes, PredictionBucket::kAll);
  auto data = survival::SurvivalData::Make(groups.predicted_long);
  ASSERT_TRUE(data.ok());
  auto km = survival::KaplanMeierCurve::Fit(*data);
  ASSERT_TRUE(km.ok());
  const std::string series = KmCurveSeries(*km, 100, 10);
  EXPECT_NE(series.find("day\tS(t)"), std::string::npos);
  EXPECT_EQ(std::count(series.begin(), series.end(), '\n'), 12);
  const std::string multi = KmCurveSeriesMulti({{"long", *km}}, 50, 25);
  EXPECT_NE(multi.find("long"), std::string::npos);
  const std::string plot = KmCurveAsciiPlot(*km, 100);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(ReportTest, PValueFormatting) {
  EXPECT_EQ(FormatPValue(1e-9), "< 0.0000001");
  EXPECT_EQ(FormatPValue(0.925429), "0.925429");
  EXPECT_EQ(FormatPValue(0.05), "0.050000");
}

TEST(ReportTest, RowsMentionScores) {
  const auto& result = SharedResult();
  const std::string row = ScoreComparisonRow("Basic", result.forest_avg,
                                             result.baseline_avg);
  EXPECT_NE(row.find("forest"), std::string::npos);
  EXPECT_NE(row.find("baseline"), std::string::npos);
  const std::string confidence = ConfidenceComparisonRow(result);
  EXPECT_NE(confidence.find("confident"), std::string::npos);
  EXPECT_NE(confidence.find("%"), std::string::npos);
}

}  // namespace
}  // namespace cloudsurv::core
