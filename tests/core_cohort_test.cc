#include "core/cohort.h"
#include "gtest/gtest.h"
#include "telemetry/types.h"
#include "tests/test_util.h"

namespace cloudsurv::core {
namespace {

using cloudsurv::testing::StoreBuilder;
using telemetry::Edition;
using telemetry::SloIndexByName;

TEST(ClassifyLifespanTest, DroppedDatabases) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 1.0);    // 1 day -> ephemeral
  b.AddDatabase(1, 0.0, 2.0);    // exactly 2 -> ephemeral (T <= 2)
  b.AddDatabase(1, 0.0, 15.0);   // short-lived
  b.AddDatabase(1, 0.0, 30.0);   // exactly 30 -> short-lived (T <= 30)
  b.AddDatabase(1, 0.0, 90.0);   // long-lived
  auto store = b.Finish();
  const auto& dbs = store.databases();
  EXPECT_EQ(ClassifyLifespan(dbs[0], store.window_end()),
            LifespanClass::kEphemeral);
  EXPECT_EQ(ClassifyLifespan(dbs[1], store.window_end()),
            LifespanClass::kEphemeral);
  EXPECT_EQ(ClassifyLifespan(dbs[2], store.window_end()),
            LifespanClass::kShortLived);
  EXPECT_EQ(ClassifyLifespan(dbs[3], store.window_end()),
            LifespanClass::kShortLived);
  EXPECT_EQ(ClassifyLifespan(dbs[4], store.window_end()),
            LifespanClass::kLongLived);
}

TEST(ClassifyLifespanTest, CensoredDatabases) {
  StoreBuilder b;
  b.AddDatabase(1, 10.0, -1.0);   // observed 140 days -> long-lived
  b.AddDatabase(1, 130.0, -1.0);  // observed 20 days -> unknown
  b.AddDatabase(1, 149.5, -1.0);  // observed 0.5 days -> unknown
  auto store = b.Finish();
  const auto& dbs = store.databases();
  EXPECT_EQ(ClassifyLifespan(dbs[0], store.window_end()),
            LifespanClass::kLongLived);
  EXPECT_EQ(ClassifyLifespan(dbs[1], store.window_end()),
            LifespanClass::kUnknown);
  EXPECT_EQ(ClassifyLifespan(dbs[2], store.window_end()),
            LifespanClass::kUnknown);
}

TEST(ClassifyLifespanTest, CustomThresholds) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 5.0);
  auto store = b.Finish();
  EXPECT_EQ(ClassifyLifespan(store.databases()[0], store.window_end(),
                             /*ephemeral=*/6.0, /*long=*/60.0),
            LifespanClass::kEphemeral);
  EXPECT_EQ(ClassifyLifespan(store.databases()[0], store.window_end(),
                             /*ephemeral=*/1.0, /*long=*/4.0),
            LifespanClass::kLongLived);
  EXPECT_STREQ(LifespanClassToString(LifespanClass::kShortLived),
               "short-lived");
}

TEST(SelectCohortTest, MinSurvivalFilter) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 1.0);
  const auto keep1 = b.AddDatabase(1, 0.0, 10.0);
  const auto keep2 = b.AddDatabase(1, 0.0, -1.0);
  auto store = b.Finish();
  CohortFilter filter;  // default 2-day minimum
  const auto ids = SelectCohort(store, filter);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], keep1);
  EXPECT_EQ(ids[1], keep2);
}

TEST(SelectCohortTest, EditionAndChangeFilters) {
  StoreBuilder b;
  const auto premium =
      b.AddDatabase(1, 0.0, 50.0, "p", "s", SloIndexByName("P1"));
  b.AddSloChange(premium, 1, 10.0, SloIndexByName("P1"),
                 SloIndexByName("S3"));
  b.AddDatabase(1, 0.0, 50.0, "b", "s", SloIndexByName("Basic"));
  auto store = b.Finish();

  CohortFilter premium_filter;
  premium_filter.edition = Edition::kPremium;
  EXPECT_EQ(SelectCohort(store, premium_filter).size(), 1u);

  CohortFilter changed_filter;
  changed_filter.changed_edition = true;
  const auto changed = SelectCohort(store, changed_filter);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], premium);

  CohortFilter always_filter;
  always_filter.changed_edition = false;
  EXPECT_EQ(SelectCohort(store, always_filter).size(), 1u);
}

TEST(CohortSurvivalDataTest, DurationsAndCensoring) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 40.0);
  b.AddDatabase(1, 100.0, -1.0);  // censored at 50 observed days
  auto store = b.Finish();
  auto data = CohortSurvivalData(store, CohortFilter{});
  ASSERT_TRUE(data.ok());
  ASSERT_EQ(data->size(), 2u);
  EXPECT_EQ(data->num_events(), 1u);
  EXPECT_EQ(data->num_censored(), 1u);
}

TEST(PredictionCohortTest, LabelsAndExclusions) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 1.0);            // dead before x=2: not in task
  const auto short_db = b.AddDatabase(1, 0.0, 20.0);   // label 0
  const auto long_db = b.AddDatabase(1, 0.0, 50.0);    // label 1
  const auto censored_long = b.AddDatabase(1, 10.0, -1.0);  // 140 obs -> 1
  b.AddDatabase(1, 140.0, -1.0);         // censored at 10 days: unknown
  auto store = b.Finish();

  auto cohort = BuildPredictionCohort(store, 2.0, 30.0);
  ASSERT_TRUE(cohort.ok());
  ASSERT_EQ(cohort->ids.size(), 3u);
  EXPECT_EQ(cohort->num_unknown_excluded, 1u);
  auto label_of = [&](telemetry::DatabaseId id) {
    for (size_t i = 0; i < cohort->ids.size(); ++i) {
      if (cohort->ids[i] == id) return cohort->labels[i];
    }
    return -1;
  };
  EXPECT_EQ(label_of(short_db), 0);
  EXPECT_EQ(label_of(long_db), 1);
  EXPECT_EQ(label_of(censored_long), 1);
}

TEST(PredictionCohortTest, BoundaryExactly30DaysIsShort) {
  StoreBuilder b;
  const auto id = b.AddDatabase(1, 0.0, 30.0);
  auto store = b.Finish();
  auto cohort = BuildPredictionCohort(store, 2.0, 30.0);
  ASSERT_TRUE(cohort.ok());
  ASSERT_EQ(cohort->ids.size(), 1u);
  EXPECT_EQ(cohort->ids[0], id);
  EXPECT_EQ(cohort->labels[0], 0);  // "more than y days" is strict
}

TEST(PredictionCohortTest, EditionRestriction) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 50.0, "p", "s", SloIndexByName("P2"));
  b.AddDatabase(1, 0.0, 50.0, "b", "s", SloIndexByName("Basic"));
  auto store = b.Finish();
  auto cohort =
      BuildPredictionCohort(store, 2.0, 30.0, Edition::kPremium);
  ASSERT_TRUE(cohort.ok());
  EXPECT_EQ(cohort->ids.size(), 1u);
}

TEST(PredictionCohortTest, RejectsInvalidThresholds) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 50.0);
  auto store = b.Finish();
  EXPECT_FALSE(BuildPredictionCohort(store, 0.0, 30.0).ok());
  EXPECT_FALSE(BuildPredictionCohort(store, 30.0, 30.0).ok());
}

TEST(SubscriptionUsageTest, EphemeralOnlyAndMixed) {
  StoreBuilder b;
  // Subscription 1: only ephemeral databases.
  b.AddDatabase(1, 0.0, 0.5);
  b.AddDatabase(1, 1.0, 2.0);
  // Subscription 2: mixed.
  b.AddDatabase(2, 0.0, 1.0);
  b.AddDatabase(2, 0.0, 50.0);
  // Subscription 3: only long-lived.
  b.AddDatabase(3, 0.0, 100.0);
  auto store = b.Finish();

  const SubscriptionUsageStats stats = ComputeSubscriptionUsageStats(store);
  EXPECT_EQ(stats.num_subscriptions, 3u);
  EXPECT_EQ(stats.num_ephemeral_only, 1u);
  EXPECT_EQ(stats.num_mixed, 1u);
  EXPECT_EQ(stats.num_databases, 5u);
  EXPECT_EQ(stats.num_ephemeral_databases, 3u);
  EXPECT_NEAR(stats.ephemeral_only_subscription_fraction(), 1.0 / 3.0,
              1e-12);
  EXPECT_NEAR(stats.ephemeral_database_fraction(), 0.6, 1e-12);
}

TEST(EphemeralCyclerTest, DetectsCyclersFromHistory) {
  StoreBuilder b;
  // Subscription 1: four ephemeral drops by day 20 -> cycler.
  b.AddDatabase(1, 1.0, 1.5);
  b.AddDatabase(1, 3.0, 4.0);
  b.AddDatabase(1, 6.0, 7.5);
  b.AddDatabase(1, 10.0, 11.0);
  // Subscription 2: ephemeral drops but also a long-lived database ->
  // disqualified.
  b.AddDatabase(2, 1.0, 1.5);
  b.AddDatabase(2, 2.0, 3.0);
  b.AddDatabase(2, 4.0, 4.5);
  b.AddDatabase(2, 5.0, 60.0);
  // Subscription 3: only two resolved ephemerals -> below threshold.
  b.AddDatabase(3, 1.0, 1.5);
  b.AddDatabase(3, 3.0, 4.0);
  auto store = b.Finish();

  const auto cyclers =
      IdentifyEphemeralCyclers(store, b.DayTs(20.0), /*min_databases=*/3);
  ASSERT_EQ(cyclers.size(), 1u);
  EXPECT_EQ(cyclers[0], 1u);
}

TEST(EphemeralCyclerTest, UsesOnlyHistoryVisibleAtAsOf) {
  StoreBuilder b;
  // Three ephemeral drops early, then a long-lived database at day 30.
  b.AddDatabase(4, 1.0, 1.5);
  b.AddDatabase(4, 3.0, 4.0);
  b.AddDatabase(4, 6.0, 7.0);
  b.AddDatabase(4, 30.0, 120.0);
  auto store = b.Finish();
  // At day 10 the subscription looks like a cycler...
  EXPECT_EQ(IdentifyEphemeralCyclers(store, b.DayTs(10.0), 3).size(), 1u);
  // ...but by day 40 the long-lived database disqualifies it.
  EXPECT_TRUE(IdentifyEphemeralCyclers(store, b.DayTs(40.0), 3).empty());
}

TEST(EphemeralCyclerTest, PendingDatabasesDoNotCount) {
  StoreBuilder b;
  // Two resolved ephemerals plus one database alive for 1 day (pending:
  // could still become long-lived).
  b.AddDatabase(5, 1.0, 1.5);
  b.AddDatabase(5, 3.0, 4.0);
  b.AddDatabase(5, 9.5, -1.0);
  auto store = b.Finish();
  EXPECT_TRUE(IdentifyEphemeralCyclers(store, b.DayTs(10.0), 3).empty());
  EXPECT_EQ(IdentifyEphemeralCyclers(store, b.DayTs(10.0), 2).size(), 1u);
}

TEST(SubscriptionUsageTest, EmptyStoreIsZero) {
  telemetry::TelemetryStore store("R", 0, {}, 0, 1000);
  ASSERT_TRUE(store.Finalize().ok());
  const SubscriptionUsageStats stats = ComputeSubscriptionUsageStats(store);
  EXPECT_EQ(stats.num_subscriptions, 0u);
  EXPECT_DOUBLE_EQ(stats.ephemeral_only_subscription_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(stats.ephemeral_database_fraction(), 0.0);
}

}  // namespace
}  // namespace cloudsurv::core
