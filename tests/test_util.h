#ifndef CLOUDSURV_TESTS_TEST_UTIL_H_
#define CLOUDSURV_TESTS_TEST_UTIL_H_

#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "telemetry/civil_time.h"
#include "telemetry/events.h"
#include "telemetry/store.h"

namespace cloudsurv::testing {

/// gtest helpers for Status / Result.
#define ASSERT_OK(expr)                                  \
  do {                                                   \
    const auto& _s = (expr);                             \
    ASSERT_TRUE(_s.ok()) << _s.ToString();               \
  } while (false)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    const auto& _s = (expr);                             \
    EXPECT_TRUE(_s.ok()) << _s.ToString();               \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                  \
  auto CLOUDSURV_CONCAT_(_res_, __LINE__) = (expr);      \
  ASSERT_TRUE(CLOUDSURV_CONCAT_(_res_, __LINE__).ok())   \
      << CLOUDSURV_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(CLOUDSURV_CONCAT_(_res_, __LINE__)).value();

/// A small hand-built telemetry store builder for feature / cohort unit
/// tests. All timestamps are days relative to the window start
/// (2017-01-01 UTC); the window spans 150 days.
class StoreBuilder {
 public:
  StoreBuilder() = default;

  telemetry::Timestamp DayTs(double days) const {
    return window_start_ +
           static_cast<telemetry::Timestamp>(
               days * telemetry::kSecondsPerDay);
  }

  /// Adds a database created at day `create_day`; dropped at `drop_day`
  /// unless drop_day < 0 (censored). Returns the database id.
  telemetry::DatabaseId AddDatabase(
      telemetry::SubscriptionId sub, double create_day, double drop_day,
      const std::string& db_name = "testdb",
      const std::string& server_name = "srv",
      int slo_index = 0,
      telemetry::SubscriptionType type =
          telemetry::SubscriptionType::kPayAsYouGo) {
    const telemetry::DatabaseId id = next_id_++;
    telemetry::DatabaseCreatedPayload payload;
    payload.server_id = sub;  // one server per subscription is fine here
    payload.server_name = server_name;
    payload.database_name = db_name;
    payload.slo_index = slo_index;
    payload.subscription_type = type;
    EXPECT_OK(store_.Append(telemetry::MakeCreatedEvent(
        DayTs(create_day), id, sub, std::move(payload))));
    if (drop_day >= 0.0) {
      EXPECT_OK(store_.Append(
          telemetry::MakeDroppedEvent(DayTs(drop_day), id, sub)));
    }
    return id;
  }

  void AddSloChange(telemetry::DatabaseId id, telemetry::SubscriptionId sub,
                    double day, int old_slo, int new_slo) {
    EXPECT_OK(store_.Append(telemetry::MakeSloChangedEvent(
        DayTs(day), id, sub, old_slo, new_slo)));
  }

  void AddSizeSample(telemetry::DatabaseId id, telemetry::SubscriptionId sub,
                     double day, double size_mb) {
    EXPECT_OK(store_.Append(
        telemetry::MakeSizeSampleEvent(DayTs(day), id, sub, size_mb)));
  }

  /// Finalizes and returns the store. Call once.
  telemetry::TelemetryStore Finish() {
    EXPECT_OK(store_.Finalize());
    return std::move(store_);
  }

  telemetry::Timestamp window_start() const { return window_start_; }
  telemetry::Timestamp window_end() const { return window_end_; }

 private:
  telemetry::TelemetryStore MakeStore() {
    telemetry::HolidayCalendar holidays;
    holidays.AddHoliday(2017, 1, 2);
    return telemetry::TelemetryStore("TestRegion", -480, holidays,
                                     window_start_, window_end_);
  }

  telemetry::Timestamp window_start_ =
      telemetry::MakeTimestamp(2017, 1, 1);
  telemetry::Timestamp window_end_ =
      telemetry::MakeTimestamp(2017, 5, 31);
  telemetry::DatabaseId next_id_ = 0;
  telemetry::TelemetryStore store_ = MakeStore();
};

}  // namespace cloudsurv::testing

#endif  // CLOUDSURV_TESTS_TEST_UTIL_H_
