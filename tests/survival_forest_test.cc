#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "survival/random_survival_forest.h"

namespace cloudsurv::survival {
namespace {

// Proportional-hazards data: baseline exponential, hazard scaled by
// exp(beta . x), fixed-horizon censoring.
std::vector<CovariateObservation> SimulatePh(size_t n, double beta,
                                             double baseline_rate,
                                             double censor, uint64_t seed) {
  Rng rng(seed);
  std::vector<CovariateObservation> data(n);
  for (auto& obs : data) {
    obs.covariates = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    const double rate = baseline_rate * std::exp(beta * obs.covariates[0]);
    const double t = rng.Exponential(rate);
    obs.duration = std::min(t, censor);
    obs.observed = t < censor;
  }
  return data;
}

SurvivalForestParams FastParams() {
  SurvivalForestParams params;
  params.num_trees = 40;
  params.max_depth = 6;
  params.min_samples_leaf = 20;
  params.horizon_days = 60.0;
  params.grid_points = 61;
  return params;
}

TEST(SurvivalForestTest, LearnsRiskOrdering) {
  const auto train = SimulatePh(2500, 1.2, 0.1, 60.0, 1);
  const auto test = SimulatePh(800, 1.2, 0.1, 60.0, 2);
  RandomSurvivalForest forest;
  ASSERT_TRUE(forest.Fit(train, {"signal", "noise"}, FastParams(), 1).ok());
  EXPECT_GT(forest.ConcordanceIndex(test), 0.63);
  // High-risk covariates predict lower survival at every horizon.
  for (double t : {5.0, 15.0, 30.0}) {
    EXPECT_LT(forest.PredictSurvival({1.0, 0.0}, t),
              forest.PredictSurvival({-1.0, 0.0}, t));
  }
}

TEST(SurvivalForestTest, CurvesAreValidSurvivalFunctions) {
  const auto data = SimulatePh(1500, 0.8, 0.08, 60.0, 3);
  RandomSurvivalForest forest;
  ASSERT_TRUE(forest.Fit(data, {"x", "noise"}, FastParams(), 3).ok());
  for (double x : {-1.0, 0.0, 1.0}) {
    const auto curve = forest.PredictCurve({x, 0.3});
    double prev = 1.0 + 1e-12;
    for (double s : curve) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, prev);
      prev = s;
    }
    EXPECT_NEAR(curve.front(), 1.0, 0.05);
  }
}

TEST(SurvivalForestTest, MedianTracksHazard) {
  const auto data = SimulatePh(3000, 1.5, 0.1, 60.0, 4);
  RandomSurvivalForest forest;
  ASSERT_TRUE(forest.Fit(data, {"x", "noise"}, FastParams(), 4).ok());
  const double median_high_risk = forest.PredictMedian({1.0, 0.0});
  const double median_low_risk = forest.PredictMedian({-1.0, 0.0});
  EXPECT_LT(median_high_risk, median_low_risk);
  // Analytic medians: ln2 / (0.1 e^{±1.5}) = 1.5 days vs 31 days.
  EXPECT_LT(median_high_risk, 10.0);
  EXPECT_GT(median_low_risk, 15.0);
}

TEST(SurvivalForestTest, MarginalCurveMatchesPopulationKm) {
  // With a null covariate effect, predictions should approximate the
  // population survival.
  const auto data = SimulatePh(3000, 0.0, 0.05, 60.0, 5);
  RandomSurvivalForest forest;
  ASSERT_TRUE(forest.Fit(data, {"x", "noise"}, FastParams(), 5).ok());
  // Exponential(0.05): S(10) = exp(-0.5) = 0.607, S(30) = exp(-1.5) =
  // 0.223.
  EXPECT_NEAR(forest.PredictSurvival({0.0, 0.0}, 10.0),
              std::exp(-0.5), 0.08);
  EXPECT_NEAR(forest.PredictSurvival({0.0, 0.0}, 30.0),
              std::exp(-1.5), 0.08);
}

TEST(SurvivalForestTest, ImportancesFindTheSignal) {
  const auto data = SimulatePh(2500, 1.5, 0.1, 60.0, 6);
  RandomSurvivalForest forest;
  ASSERT_TRUE(forest.Fit(data, {"signal", "noise"}, FastParams(), 6).ok());
  const auto& imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 3.0 * imp[1]);
  EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
}

TEST(SurvivalForestTest, DeterministicPerSeed) {
  const auto data = SimulatePh(800, 1.0, 0.1, 60.0, 7);
  RandomSurvivalForest f1, f2;
  ASSERT_TRUE(f1.Fit(data, {"x", "noise"}, FastParams(), 9).ok());
  ASSERT_TRUE(f2.Fit(data, {"x", "noise"}, FastParams(), 9).ok());
  for (double x : {-0.5, 0.0, 0.5}) {
    EXPECT_DOUBLE_EQ(f1.PredictMortality({x, 0.1}),
                     f2.PredictMortality({x, 0.1}));
  }
}

TEST(SurvivalForestTest, RejectsInvalidInputs) {
  RandomSurvivalForest forest;
  const auto data = SimulatePh(100, 1.0, 0.1, 60.0, 8);
  EXPECT_FALSE(forest.Fit(data, {}, FastParams(), 1).ok());
  SurvivalForestParams bad = FastParams();
  bad.num_trees = 0;
  EXPECT_FALSE(forest.Fit(data, {"x", "noise"}, bad, 1).ok());
  bad = FastParams();
  bad.grid_points = 1;
  EXPECT_FALSE(forest.Fit(data, {"x", "noise"}, bad, 1).ok());
  std::vector<CovariateObservation> censored_only(100);
  for (auto& o : censored_only) o = {10.0, false, {0.0, 0.0}};
  EXPECT_FALSE(forest.Fit(censored_only, {"x", "noise"}, FastParams(), 1)
                   .ok());
  std::vector<CovariateObservation> tiny(5);
  for (auto& o : tiny) o = {10.0, true, {0.0, 0.0}};
  EXPECT_FALSE(forest.Fit(tiny, {"x", "noise"}, FastParams(), 1).ok());
}

TEST(SurvivalForestTest, InducedBinaryClassifierIsAccurate) {
  // Threshold the predicted S(30) at the cohort prior to recover a
  // binary ">30 days" classifier and check its accuracy.
  const auto train = SimulatePh(2500, 1.5, 0.05, 90.0, 10);
  const auto test = SimulatePh(1000, 1.5, 0.05, 90.0, 11);
  SurvivalForestParams params = FastParams();
  params.horizon_days = 90.0;
  RandomSurvivalForest forest;
  ASSERT_TRUE(forest.Fit(train, {"x", "noise"}, params, 10).ok());
  size_t correct = 0, total = 0;
  for (const auto& obs : test) {
    const bool known_long = obs.duration > 30.0;
    const bool known_short = obs.observed && obs.duration <= 30.0;
    if (!known_long && !known_short) continue;
    const bool predicted_long =
        forest.PredictSurvival(obs.covariates, 30.0) > 0.5;
    if (predicted_long == known_long) ++correct;
    ++total;
  }
  ASSERT_GT(total, 500u);
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(total),
            0.7);
}

}  // namespace
}  // namespace cloudsurv::survival
