#include "fault/fault.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace cloudsurv::fault {
namespace {

FaultPlan MustParse(const std::string& text) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(text, &plan, &error)) << error;
  return plan;
}

std::string ParseError(const std::string& text) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse(text, &plan, &error)) << "parsed: " << text;
  return error;
}

TEST(FaultPlanParseTest, ParsesSeedRulesAndComments) {
  const FaultPlan plan = MustParse(
      "# header comment\n"
      "seed 42\n"
      "\n"
      "fault pool.task delay every=100 delay_us=2000  # trailing\n"
      "fault ingest.shard stall shard=3 from=10 until=20 delay_us=500\n"
      "fault engine.snapshot io_fail every=7 count=2\n"
      "fault registry.swap swap_race every=3\n"
      "fault engine.clock clock_skew skew_s=-3600 from=5\n");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.rules.size(), 5u);

  EXPECT_EQ(plan.rules[0].site, Site::kPoolTask);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.rules[0].every, 100u);
  EXPECT_EQ(plan.rules[0].delay_us, 2000.0);

  EXPECT_EQ(plan.rules[1].site, Site::kIngestShard);
  EXPECT_EQ(plan.rules[1].kind, FaultKind::kStall);
  EXPECT_EQ(plan.rules[1].shard, 3);
  EXPECT_EQ(plan.rules[1].from, 10u);
  EXPECT_EQ(plan.rules[1].until, 20u);

  EXPECT_EQ(plan.rules[2].kind, FaultKind::kIoFail);
  EXPECT_EQ(plan.rules[2].count, 2u);
  EXPECT_EQ(plan.rules[3].kind, FaultKind::kSwapRace);
  EXPECT_EQ(plan.rules[4].kind, FaultKind::kClockSkew);
  EXPECT_EQ(plan.rules[4].skew_s, -3600);
}

TEST(FaultPlanParseTest, RoundTripsThroughToString) {
  const std::string text =
      "seed 7\n"
      "fault pool.task delay every=100 delay_us=2000\n"
      "fault ingest.shard stall from=10 until=20 shard=3 delay_us=500\n"
      "fault engine.snapshot alloc_fail every=7 count=2\n"
      "fault engine.clock clock_skew from=5 skew_s=-3600\n";
  const FaultPlan plan = MustParse(text);
  const FaultPlan reparsed = MustParse(plan.ToString());
  EXPECT_EQ(plan.ToString(), reparsed.ToString());
  EXPECT_EQ(plan.seed, reparsed.seed);
  EXPECT_EQ(plan.rules.size(), reparsed.rules.size());
}

TEST(FaultPlanParseTest, RejectsMalformedSpecsWithLineDiagnostics) {
  EXPECT_NE(ParseError("bogus line\n").find("line 1"), std::string::npos);
  EXPECT_NE(ParseError("seed\n").find("seed"), std::string::npos);
  EXPECT_NE(ParseError("seed -1\n").find("seed"), std::string::npos);
  EXPECT_NE(ParseError("fault nowhere delay delay_us=1\n")
                .find("unknown site"),
            std::string::npos);
  EXPECT_NE(ParseError("fault pool.task explode\n")
                .find("unknown fault kind"),
            std::string::npos);
  // Kind/site compatibility is validated.
  EXPECT_NE(ParseError("fault pool.task swap_race\n")
                .find("not injectable"),
            std::string::npos);
  EXPECT_NE(ParseError("fault pool.task clock_skew skew_s=5\n")
                .find("not injectable"),
            std::string::npos);
  EXPECT_NE(ParseError("fault ingest.shard clock_skew skew_s=5\n")
                .find("not injectable"),
            std::string::npos);
  // Required values.
  EXPECT_NE(ParseError("fault pool.task delay\n").find("delay_us"),
            std::string::npos);
  EXPECT_NE(ParseError("fault engine.clock clock_skew\n").find("skew_s"),
            std::string::npos);
  // Bad values.
  EXPECT_NE(ParseError("fault pool.task delay delay_us=-5\n")
                .find("invalid value"),
            std::string::npos);
  EXPECT_NE(ParseError("fault pool.task delay every=0 delay_us=1\n")
                .find("invalid value"),
            std::string::npos);
  EXPECT_NE(ParseError("fault pool.task delay every=abc delay_us=1\n")
                .find("invalid value"),
            std::string::npos);
  EXPECT_NE(
      ParseError("fault pool.task delay from=9 until=3 delay_us=1\n")
          .find("until"),
      std::string::npos);
  EXPECT_NE(ParseError("fault pool.task delay nonsense=1 delay_us=1\n")
                .find("unknown key"),
            std::string::npos);
  EXPECT_NE(ParseError("fault pool.task delay delayus 5\n")
                .find("key=value"),
            std::string::npos);
}

TEST(FaultPlanTest, NameRoundTripsForEverySiteAndKind) {
  for (size_t i = 0; i < kNumSites; ++i) {
    const Site site = static_cast<Site>(i);
    Site back;
    ASSERT_TRUE(SiteFromString(SiteToString(site), &back))
        << SiteToString(site);
    EXPECT_EQ(back, site);
  }
  for (size_t i = 0; i < kNumFaultKinds; ++i) {
    const FaultKind kind = static_cast<FaultKind>(i);
    FaultKind back;
    ASSERT_TRUE(FaultKindFromString(FaultKindToString(kind), &back))
        << FaultKindToString(kind);
    EXPECT_EQ(back, kind);
  }
}

TEST(FaultPlanTest, OutputNeutralityClassification) {
  EXPECT_TRUE(MustParse("fault pool.task delay delay_us=5\n")
                  .output_neutral());
  EXPECT_TRUE(MustParse("fault ingest.shard stall delay_us=5\n")
                  .output_neutral());
  // Clock running behind only postpones scoring — neutral.
  EXPECT_TRUE(MustParse("fault engine.clock clock_skew skew_s=-60\n")
                  .output_neutral());
  // Clock running ahead can score before ingestion completes.
  EXPECT_FALSE(MustParse("fault engine.clock clock_skew skew_s=60\n")
                   .output_neutral());
  EXPECT_FALSE(MustParse("fault ingest.shard alloc_fail\n")
                   .output_neutral());
  EXPECT_FALSE(MustParse("fault engine.snapshot io_fail\n")
                   .output_neutral());
  EXPECT_FALSE(MustParse("fault registry.swap swap_race\n")
                   .output_neutral());
}

TEST(FaultInjectorTest, FiresExactlyOnScheduledHits) {
  // every=3 from=2 until=11 count=3 -> hits 2, 5, 8 (11 would be the
  // fourth match but count stops at 3; 11 is also outside until).
  FaultInjector injector(MustParse(
      "fault pool.task delay every=3 from=2 until=11 count=3 "
      "delay_us=5\n"));
  std::vector<uint64_t> fired;
  for (uint64_t hit = 0; hit < 20; ++hit) {
    if (injector.Evaluate(Site::kPoolTask).fired()) fired.push_back(hit);
  }
  EXPECT_EQ(fired, (std::vector<uint64_t>{2, 5, 8}));
  EXPECT_EQ(injector.total_fired(), 3u);

  const std::vector<FaultEvent> events = injector.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].hit, 2u);
  EXPECT_EQ(events[1].hit, 5u);
  EXPECT_EQ(events[2].hit, 8u);
  EXPECT_EQ(events[0].delay_us, 5.0);
}

TEST(FaultInjectorTest, ShardKeysHaveIndependentCounters) {
  FaultInjector injector(MustParse(
      "fault ingest.shard stall shard=2 from=1 count=1 delay_us=9\n"));
  // Shard 0 advances well past hit 1 without firing anything.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(injector.Evaluate(Site::kIngestShard, 0).fired());
  }
  // Shard 2's own counter reaches hit 1 on its second evaluation.
  EXPECT_FALSE(injector.Evaluate(Site::kIngestShard, 2).fired());
  const Outcome outcome = injector.Evaluate(Site::kIngestShard, 2);
  EXPECT_EQ(outcome.stall_us, 9.0);
  EXPECT_EQ(injector.total_fired(), 1u);
}

TEST(FaultInjectorTest, EachKindMapsToItsOutcomeField) {
  FaultInjector injector(MustParse(
      "fault ingest.shard delay count=1 delay_us=3\n"
      "fault ingest.shard stall count=1 delay_us=4\n"
      "fault ingest.shard alloc_fail from=1 count=1\n"
      "fault engine.snapshot io_fail count=1\n"
      "fault registry.swap swap_race count=1\n"
      "fault engine.clock clock_skew count=1 skew_s=-7\n"));
  // Hit 0 at ingest.shard: delay and stall stack in one outcome.
  const Outcome both = injector.Evaluate(Site::kIngestShard, 0);
  EXPECT_EQ(both.delay_us, 3.0);
  EXPECT_EQ(both.stall_us, 4.0);
  EXPECT_FALSE(both.fail);

  const Outcome alloc = injector.Evaluate(Site::kIngestShard, 0);
  EXPECT_TRUE(alloc.fail);
  EXPECT_FALSE(alloc.io);

  const Outcome io = injector.Evaluate(Site::kSnapshotBuild, 1);
  EXPECT_TRUE(io.fail);
  EXPECT_TRUE(io.io);

  EXPECT_TRUE(injector.Evaluate(Site::kRegistrySwap, 0).swap_race);
  EXPECT_EQ(injector.Evaluate(Site::kEngineClock).skew_s, -7);

  // Sites without rules short-circuit to an empty outcome.
  EXPECT_FALSE(injector.Evaluate(Site::kPoolTask).fired());
}

TEST(FaultInjectorTest, SameSeedSamePlanReplaysBitIdentically) {
  const std::string spec =
      "seed 13\n"
      "fault ingest.shard stall shard=1 every=4 delay_us=50\n"
      "fault ingest.shard io_fail every=7 count=5\n"
      "fault engine.snapshot alloc_fail every=3 count=4\n"
      "fault registry.swap swap_race every=2\n";
  FaultInjector a(MustParse(spec));
  FaultInjector b(MustParse(spec));
  EXPECT_EQ(a.seed(), 13u);

  // Same evaluation sequence (multi-shard, interleaved sites) on both.
  auto drive = [](FaultInjector& injector) {
    for (int round = 0; round < 40; ++round) {
      for (int64_t shard = 0; shard < 4; ++shard) {
        injector.Evaluate(Site::kIngestShard, shard);
      }
      if (round % 5 == 0) {
        injector.Evaluate(Site::kSnapshotBuild, round % 3);
        injector.Evaluate(Site::kRegistrySwap, round % 2);
      }
    }
  };
  drive(a);
  drive(b);
  EXPECT_GT(a.total_fired(), 0u);
  EXPECT_EQ(a.total_fired(), b.total_fired());
  EXPECT_EQ(a.LogToString(), b.LogToString());
}

TEST(FaultInjectorTest, SortedLogIsSchedulingIndependent) {
  // Shard-keyed hits issued from racing threads: which thread observes
  // a given (shard, hit) varies, but the fired set must not.
  const std::string spec =
      "fault ingest.shard stall every=3 delay_us=1\n"
      "fault ingest.shard alloc_fail every=5 from=2\n";
  auto drive_threaded = [&spec](size_t num_threads) {
    FaultInjector injector(MustParse(spec));
    std::vector<std::thread> threads;
    for (size_t t = 0; t < num_threads; ++t) {
      // Each shard's hit sequence is driven by exactly one thread, the
      // way the engine's per-shard batches do it.
      threads.emplace_back([&injector, t]() {
        for (int i = 0; i < 30; ++i) {
          injector.Evaluate(Site::kIngestShard,
                            static_cast<int64_t>(t));
        }
      });
    }
    for (auto& t : threads) t.join();
    return injector.LogToString();
  };
  const std::string once = drive_threaded(4);
  const std::string twice = drive_threaded(4);
  EXPECT_EQ(once, twice);
  EXPECT_FALSE(once.empty());
}

}  // namespace
}  // namespace cloudsurv::fault
