#include <cmath>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "survival/cox.h"
#include "survival/parametric.h"
#include "survival/survival_data.h"

namespace cloudsurv::survival {
namespace {

// Synthetic proportional-hazards data: exponential baseline hazard h0,
// individual hazard h0 * exp(beta . x), censoring at a fixed horizon.
std::vector<CovariateObservation> SimulatePh(
    size_t n, const std::vector<double>& beta, double baseline_rate,
    double censor_horizon, uint64_t seed) {
  Rng rng(seed);
  std::vector<CovariateObservation> data(n);
  for (auto& obs : data) {
    obs.covariates.resize(beta.size());
    double eta = 0.0;
    for (size_t k = 0; k < beta.size(); ++k) {
      obs.covariates[k] = rng.Uniform(-1.0, 1.0);
      eta += beta[k] * obs.covariates[k];
    }
    const double rate = baseline_rate * std::exp(eta);
    const double t = rng.Exponential(rate);
    if (t < censor_horizon) {
      obs.duration = t;
      obs.observed = true;
    } else {
      obs.duration = censor_horizon;
      obs.observed = false;
    }
  }
  return data;
}

TEST(CoxModelTest, RecoversKnownCoefficients) {
  const std::vector<double> true_beta = {0.8, -0.5};
  const auto data = SimulatePh(4000, true_beta, 0.1, 30.0, 1);
  auto model = CoxModel::Fit(data, {"x1", "x2"});
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_TRUE(model->converged());
  EXPECT_NEAR(model->coefficients()[0].beta, 0.8, 0.12);
  EXPECT_NEAR(model->coefficients()[1].beta, -0.5, 0.12);
  EXPECT_NEAR(model->coefficients()[0].hazard_ratio, std::exp(0.8), 0.3);
}

TEST(CoxModelTest, SignificanceOfRealVsNoiseCovariate) {
  // x1 has a strong effect, x2 none.
  const auto data = SimulatePh(2000, {1.0, 0.0}, 0.1, 30.0, 2);
  auto model = CoxModel::Fit(data, {"signal", "noise"});
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->coefficients()[0].p_value, 1e-6);
  EXPECT_GT(model->coefficients()[1].p_value, 0.01);
  EXPECT_LT(model->likelihood_ratio_p_value(), 1e-7);
  EXPECT_GT(model->likelihood_ratio_statistic(), 50.0);
}

TEST(CoxModelTest, NullEffectGivesNearZeroBeta) {
  const auto data = SimulatePh(2000, {0.0}, 0.2, 20.0, 3);
  auto model = CoxModel::Fit(data, {"x"});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients()[0].beta, 0.0, 0.1);
  EXPECT_GT(model->likelihood_ratio_p_value(), 0.01);
}

TEST(CoxModelTest, HandComputedTwoSubjectExample) {
  // Subjects: (t=1, event, x=1), (t=2, event, x=0).
  // Partial likelihood: at t=1 risk set {1,2}: e^b/(e^b+1); at t=2: 1.
  // Maximum is at b -> +inf; with ridge the optimum is finite but the
  // sign must be positive and the likelihood must improve on null.
  std::vector<CovariateObservation> data(2);
  data[0] = {1.0, true, {1.0}};
  data[1] = {2.0, true, {0.0}};
  CoxOptions options;
  options.ridge = 0.1;  // strong ridge keeps the optimum finite
  auto model = CoxModel::Fit(data, {"x"}, options);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GT(model->coefficients()[0].beta, 0.0);
  EXPECT_GE(model->log_likelihood(), model->null_log_likelihood());
}

TEST(CoxModelTest, ConcordanceReflectsModelQuality) {
  const auto data = SimulatePh(1500, {1.2}, 0.1, 30.0, 4);
  auto model = CoxModel::Fit(data, {"x"});
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->ConcordanceIndex(data), 0.65);
  // A null model on pure-noise data stays near 0.5.
  const auto noise = SimulatePh(1500, {0.0}, 0.1, 30.0, 5);
  auto null_model = CoxModel::Fit(noise, {"x"});
  ASSERT_TRUE(null_model.ok());
  EXPECT_NEAR(null_model->ConcordanceIndex(noise), 0.5, 0.05);
}

TEST(CoxModelTest, BaselineHazardAndSurvivalPrediction) {
  const auto data = SimulatePh(3000, {0.7}, 0.1, 40.0, 6);
  auto model = CoxModel::Fit(data, {"x"});
  ASSERT_TRUE(model.ok());
  // H0 is nondecreasing; survival decreasing in time and in risk.
  EXPECT_LE(model->BaselineCumulativeHazard(5.0),
            model->BaselineCumulativeHazard(20.0));
  EXPECT_GT(model->PredictSurvival(5.0, {0.0}),
            model->PredictSurvival(20.0, {0.0}));
  EXPECT_GT(model->PredictSurvival(10.0, {-1.0}),
            model->PredictSurvival(10.0, {1.0}));
  EXPECT_DOUBLE_EQ(model->BaselineCumulativeHazard(0.0), 0.0);
  // With exponential baseline rate 0.1, H0(t) ~ 0.1 t.
  EXPECT_NEAR(model->BaselineCumulativeHazard(10.0), 1.0, 0.3);
}

TEST(CoxModelTest, RejectsInvalidInputs) {
  std::vector<CovariateObservation> data(2);
  data[0] = {1.0, true, {1.0}};
  data[1] = {2.0, false, {0.0}};
  EXPECT_FALSE(CoxModel::Fit({}, {"x"}).ok());
  EXPECT_FALSE(CoxModel::Fit(data, {}).ok());
  EXPECT_FALSE(CoxModel::Fit(data, {"x", "y"}).ok());  // length mismatch
  std::vector<CovariateObservation> censored_only(3);
  for (auto& o : censored_only) o = {1.0, false, {0.5}};
  EXPECT_FALSE(CoxModel::Fit(censored_only, {"x"}).ok());
  std::vector<CovariateObservation> bad_duration(2);
  bad_duration[0] = {-1.0, true, {0.0}};
  bad_duration[1] = {1.0, true, {0.0}};
  EXPECT_FALSE(CoxModel::Fit(bad_duration, {"x"}).ok());
}

TEST(CoxModelTest, ToTextListsCovariates) {
  const auto data = SimulatePh(500, {0.5}, 0.1, 30.0, 7);
  auto model = CoxModel::Fit(data, {"volume"});
  ASSERT_TRUE(model.ok());
  EXPECT_NE(model->ToText().find("volume"), std::string::npos);
  EXPECT_NE(model->ToText().find("HR"), std::string::npos);
}

TEST(ExponentialFitTest, ClosedFormWithoutCensoring) {
  // Events at 1, 2, 3: rate = 3 / 6 = 0.5.
  auto data = SurvivalData::FromArrays({1, 2, 3}, {true, true, true});
  auto fit = FitExponential(*data);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->rate, 0.5, 1e-12);
  EXPECT_EQ(fit->fit.num_parameters, 1);
}

TEST(ExponentialFitTest, CensoringLowersRate) {
  auto with_censor = SurvivalData::FromArrays({1, 2, 3, 10},
                                              {true, true, true, false});
  auto fit = FitExponential(*with_censor);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->rate, 3.0 / 16.0, 1e-12);
}

TEST(ExponentialFitTest, RecoversRateFromSamples) {
  Rng rng(8);
  std::vector<double> t;
  std::vector<bool> e;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.Exponential(0.25);
    if (x < 15.0) {
      t.push_back(x);
      e.push_back(true);
    } else {
      t.push_back(15.0);
      e.push_back(false);
    }
  }
  auto fit = FitExponential(*SurvivalData::FromArrays(t, e));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->rate, 0.25, 0.02);
}

TEST(WeibullFitTest, RecoversParameters) {
  Rng rng(9);
  for (double true_shape : {0.7, 1.0, 2.0}) {
    std::vector<double> t;
    std::vector<bool> e;
    for (int i = 0; i < 4000; ++i) {
      t.push_back(rng.Weibull(true_shape, 10.0));
      e.push_back(true);
    }
    auto fit = FitWeibull(*SurvivalData::FromArrays(t, e));
    ASSERT_TRUE(fit.ok()) << fit.status();
    EXPECT_NEAR(fit->shape, true_shape, 0.1 * true_shape)
        << "true shape " << true_shape;
    EXPECT_NEAR(fit->scale, 10.0, 1.0);
    EXPECT_TRUE(fit->fit.converged);
  }
}

TEST(WeibullFitTest, HandlesCensoring) {
  Rng rng(10);
  std::vector<double> t;
  std::vector<bool> e;
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.Weibull(1.5, 8.0);
    if (x < 10.0) {
      t.push_back(x);
      e.push_back(true);
    } else {
      t.push_back(10.0);
      e.push_back(false);
    }
  }
  auto fit = FitWeibull(*SurvivalData::FromArrays(t, e));
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->shape, 1.5, 0.15);
  EXPECT_NEAR(fit->scale, 8.0, 0.8);
}

TEST(WeibullFitTest, AicPrefersTrueFamily) {
  Rng rng(11);
  std::vector<double> t;
  std::vector<bool> e;
  // Strongly non-exponential Weibull data.
  for (int i = 0; i < 3000; ++i) {
    t.push_back(rng.Weibull(3.0, 5.0));
    e.push_back(true);
  }
  auto data = SurvivalData::FromArrays(t, e);
  auto weibull = FitWeibull(*data);
  auto exponential = FitExponential(*data);
  ASSERT_TRUE(weibull.ok() && exponential.ok());
  EXPECT_LT(weibull->fit.aic, exponential->fit.aic);
}

TEST(WeibullFitTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(FitWeibull(SurvivalData()).ok());
  auto censored_only = SurvivalData::FromArrays({1.0, 2.0}, {false, false});
  EXPECT_FALSE(FitWeibull(*censored_only).ok());
  EXPECT_FALSE(FitExponential(*censored_only).ok());
}

TEST(CensoredLogLikelihoodTest, MatchesManualComputation) {
  auto data = SurvivalData::FromArrays({1.0, 2.0}, {true, false});
  stats::ExponentialDistribution dist(0.5);
  // ll = ln(0.5 e^{-0.5}) + ln(e^{-1.0}).
  const double expected = std::log(0.5) - 0.5 - 1.0;
  EXPECT_NEAR(CensoredLogLikelihood(*data, dist), expected, 1e-12);
}

}  // namespace
}  // namespace cloudsurv::survival
