// End-to-end integration test: simulate a region, run the full study
// pipeline, and assert the paper-shaped findings hold (orderings and
// significance, not absolute numbers).

#include "core/cohort.h"
#include "core/prediction.h"
#include "gtest/gtest.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "survival/kaplan_meier.h"
#include "survival/logrank.h"

namespace cloudsurv {
namespace {

using core::CohortFilter;
using telemetry::Edition;
using telemetry::TelemetryStore;

const TelemetryStore& Region1() {
  static const TelemetryStore* store = [] {
    auto config = simulator::MakeRegionPreset(1, 1500, 2017);
    auto s = simulator::SimulateRegion(*config);
    EXPECT_TRUE(s.ok()) << s.status();
    return new TelemetryStore(std::move(s).value());
  }();
  return *store;
}

TEST(IntegrationTest, Observation31EphemeralOnlySubscriptions) {
  const auto stats = core::ComputeSubscriptionUsageStats(Region1());
  // "A low percentage of all subscriptions create only ephemeral
  // databases" — low but present...
  EXPECT_GT(stats.ephemeral_only_subscription_fraction(), 0.005);
  EXPECT_LT(stats.ephemeral_only_subscription_fraction(), 0.20);
  // ...yet "these databases represent a significant percentage of the
  // total population".
  EXPECT_GT(stats.ephemeral_database_fraction(), 0.10);
  // And many subscriptions create both ephemeral and longer databases.
  EXPECT_GT(stats.num_mixed, 0u);
}

TEST(IntegrationTest, Figure1KmShape) {
  auto data = core::CohortSurvivalData(Region1(), CohortFilter{});
  ASSERT_TRUE(data.ok());
  auto km = survival::KaplanMeierCurve::Fit(*data);
  ASSERT_TRUE(km.ok());
  // Monotone decay with substantial mass surviving past 30 days and a
  // visible drop near day 120 (incentive expiry).
  EXPECT_GT(km->SurvivalAt(30.0), 0.40);
  EXPECT_LT(km->SurvivalAt(30.0), 0.80);
  EXPECT_GT(km->SurvivalAt(130.0), 0.10);
  const double before_cliff = km->SurvivalAt(115.0);
  const double after_cliff = km->SurvivalAt(125.0);
  const double drop_rate_cliff = before_cliff - after_cliff;
  const double drop_rate_plateau =
      km->SurvivalAt(95.0) - km->SurvivalAt(105.0);
  EXPECT_GT(drop_rate_cliff, 2.0 * drop_rate_plateau);
}

TEST(IntegrationTest, Observation32EditionsDifferSignificantly) {
  std::vector<survival::SurvivalData> groups;
  for (Edition e :
       {Edition::kBasic, Edition::kStandard, Edition::kPremium}) {
    CohortFilter filter;
    filter.edition = e;
    auto data = core::CohortSurvivalData(Region1(), filter);
    ASSERT_TRUE(data.ok());
    groups.push_back(*data);
  }
  auto logrank = survival::KSampleLogRankTest(groups);
  ASSERT_TRUE(logrank.ok()) << logrank.status();
  EXPECT_LT(logrank->p_value, 1e-7);

  // Basic decays more slowly than Premium (Figure 3 narrative).
  auto km_basic = survival::KaplanMeierCurve::Fit(groups[0]);
  auto km_premium = survival::KaplanMeierCurve::Fit(groups[2]);
  ASSERT_TRUE(km_basic.ok() && km_premium.ok());
  EXPECT_GT(km_basic->SurvivalAt(30.0), km_premium->SurvivalAt(30.0));
  EXPECT_GT(km_basic->SurvivalAt(60.0), km_premium->SurvivalAt(60.0));
}

TEST(IntegrationTest, Observation33EditionChangeRates) {
  auto changed_rate = [&](Edition e) {
    CohortFilter filter;
    filter.edition = e;
    const auto all = core::SelectCohort(Region1(), filter);
    filter.changed_edition = true;
    const auto changed = core::SelectCohort(Region1(), filter);
    return static_cast<double>(changed.size()) /
           static_cast<double>(all.size());
  };
  const double basic = changed_rate(Edition::kBasic);
  const double standard = changed_rate(Edition::kStandard);
  const double premium = changed_rate(Edition::kPremium);
  EXPECT_GT(premium, 3.0 * basic);
  EXPECT_GT(premium, 3.0 * standard);
  EXPECT_GT(premium, 0.05);
}

TEST(IntegrationTest, ClassBalanceOrderingAcrossEditions) {
  auto positive_rate = [&](Edition e) {
    auto cohort = core::BuildPredictionCohort(Region1(), 2.0, 30.0, e);
    EXPECT_TRUE(cohort.ok());
    double pos = 0;
    for (int l : cohort->labels) pos += l;
    return pos / static_cast<double>(cohort->labels.size());
  };
  const double basic = positive_rate(Edition::kBasic);
  const double standard = positive_rate(Edition::kStandard);
  const double premium = positive_rate(Edition::kPremium);
  // Paper section 5.2: Basic skews long-lived, Premium is the most
  // imbalanced toward short-lived, Standard sits in between.
  EXPECT_GT(basic, standard);
  EXPECT_GT(standard, premium);
  EXPECT_GT(basic, 0.55);
  EXPECT_LT(premium, 0.50);
}

TEST(IntegrationTest, CsvRoundTripPreservesEverything) {
  const TelemetryStore& store = Region1();
  const std::string csv = store.ExportCsv();
  auto imported = TelemetryStore::ImportCsv(
      csv, store.region_name(), store.utc_offset_minutes(),
      store.holidays(), store.window_start(), store.window_end());
  ASSERT_TRUE(imported.ok()) << imported.status();
  ASSERT_EQ(imported->num_databases(), store.num_databases());
  EXPECT_EQ(imported->ExportCsv(), csv);
}

TEST(IntegrationTest, FullPredictionPipelineMatchesPaperShape) {
  core::ExperimentConfig config;
  config.tune_with_grid_search = false;
  config.default_params.num_trees = 80;
  config.default_params.max_depth = 14;
  config.num_repetitions = 3;
  config.seed = 99;

  auto result = core::RunPredictionExperiment(Region1(), Edition::kBasic,
                                              config);
  ASSERT_TRUE(result.ok()) << result.status();
  // Substantial improvement over the weighted-random baseline.
  EXPECT_GT(result->forest_avg.accuracy, 0.70);
  EXPECT_GT(result->forest_avg.accuracy,
            result->baseline_avg.accuracy + 0.15);
  // Confident predictions are better and cover a usable share.
  EXPECT_GT(result->confident_avg.accuracy, result->forest_avg.accuracy);
  EXPECT_GT(result->confident_fraction_avg, 0.40);
  // Statistically significant separation of predicted classes.
  auto logrank = core::LogRankOfClassifiedGroups(
      result->runs[0].outcomes, core::PredictionBucket::kAll);
  ASSERT_TRUE(logrank.ok());
  EXPECT_LT(logrank->p_value, 1e-7);
  // Section 5.4 family ordering: subscription history on top.
  const auto families = core::RankFeatureFamilies(*result);
  EXPECT_EQ(families[0].first, "subscription_history");
}

}  // namespace
}  // namespace cloudsurv
