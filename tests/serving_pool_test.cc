#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "gtest/gtest.h"

namespace cloudsurv {
namespace {

using namespace std::chrono_literals;

/// Lets a test hold the pool's only worker hostage until released.
class Gate {
 public:
  void WaitUntilEntered() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_cv_.wait(lock, [this]() { return entered_; });
  }
  void Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    entered_ = true;
    entered_cv_.notify_all();
    released_cv_.wait(lock, [this]() { return released_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    released_cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable entered_cv_;
  std::condition_variable released_cv_;
  bool entered_ = false;
  bool released_ = false;
};

TEST(ThreadPoolTest, RunsSubmittedTasksAndWaits) {
  ThreadPool pool(3, 16);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Enqueue([&counter]() { ++counter; }));
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(pool.tasks_executed(), 50u);
  EXPECT_EQ(pool.tasks_failed(), 0u);
}

TEST(ThreadPoolTest, SubmitReturnsResultThroughFuture) {
  ThreadPool pool(2, 4);
  auto future = pool.Submit([]() { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  ThreadPool pool(1, 2);
  Gate gate;
  // Occupy the only worker...
  ASSERT_TRUE(pool.Enqueue([&gate]() { gate.Enter(); }));
  gate.WaitUntilEntered();
  // ...and fill the queue to capacity.
  std::atomic<int> done{0};
  ASSERT_TRUE(pool.Enqueue([&done]() { ++done; }));
  ASSERT_TRUE(pool.Enqueue([&done]() { ++done; }));
  EXPECT_EQ(pool.queue_depth(), 2u);

  // Non-blocking submission sheds load instead of growing the queue.
  EXPECT_FALSE(pool.TryEnqueue([&done]() { ++done; }));

  // Blocking submission parks until the worker frees a slot.
  std::atomic<bool> enqueued{false};
  std::thread producer([&pool, &done, &enqueued]() {
    ASSERT_TRUE(pool.Enqueue([&done]() { ++done; }));
    enqueued = true;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(enqueued.load());  // still blocked: queue is full

  gate.Release();
  producer.join();
  EXPECT_TRUE(enqueued.load());
  pool.Wait();
  EXPECT_EQ(done.load(), 3);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2, 4);
  auto future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(
      {
        try {
          future.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom");
          throw;
        }
      },
      std::runtime_error);
  // The pool survives the exception and keeps serving.
  auto ok = pool.Submit([]() { return 1; });
  EXPECT_EQ(ok.get(), 1);
}

TEST(ThreadPoolTest, EnqueuedExceptionIsContained) {
  ThreadPool pool(1, 4);
  ASSERT_TRUE(pool.Enqueue([]() { throw std::runtime_error("swallowed"); }));
  pool.Wait();
  EXPECT_EQ(pool.tasks_failed(), 1u);
  EXPECT_EQ(pool.tasks_executed(), 1u);
  std::atomic<int> counter{0};
  ASSERT_TRUE(pool.Enqueue([&counter]() { ++counter; }));
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ShutdownDrainsQueueAndRejectsNewWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2, 32);
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(pool.Enqueue([&counter]() {
        std::this_thread::sleep_for(1ms);
        ++counter;
      }));
    }
    pool.Shutdown();
    // Every task accepted before shutdown ran to completion.
    EXPECT_EQ(counter.load(), 20);
    EXPECT_FALSE(pool.Enqueue([&counter]() { ++counter; }));
    EXPECT_FALSE(pool.TryEnqueue([&counter]() { ++counter; }));
    auto rejected = pool.Submit([]() { return 0; });
    EXPECT_THROW(rejected.get(), std::runtime_error);
    pool.Shutdown();  // idempotent
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4, 8);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(pool.Enqueue([&counter]() { ++counter; }));
    }
  }  // ~ThreadPool
  EXPECT_EQ(counter.load(), 8);
}

}  // namespace
}  // namespace cloudsurv
