// Cross-cutting randomized property tests: simulator invariants across
// regions/seeds/scales, telemetry round trips on randomized stores, and
// end-to-end coherence of derived statistics.

#include <set>

#include "common/rng.h"
#include "core/cohort.h"
#include "gtest/gtest.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "survival/kaplan_meier.h"
#include "telemetry/store.h"

namespace cloudsurv {
namespace {

using telemetry::TelemetryStore;

/// Sweep: (region_index, seed) combinations; each simulated store must
/// satisfy the full invariant battery.
class SimulatorSweepTest
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(SimulatorSweepTest, InvariantsHold) {
  const auto [region, seed] = GetParam();
  auto config = simulator::MakeRegionPreset(region, 250, seed);
  ASSERT_TRUE(config.ok());
  auto store = simulator::SimulateRegion(*config);
  ASSERT_TRUE(store.ok()) << store.status();

  // 1. Every lifecycle is valid (Finalize already checked; re-verify
  //    the derived records).
  for (const auto& record : store->databases()) {
    EXPECT_GE(record.created_at, store->window_start());
    EXPECT_LT(record.created_at, store->window_end());
    if (record.dropped_at) {
      EXPECT_GE(*record.dropped_at, record.created_at);
      EXPECT_LT(*record.dropped_at, store->window_end());
    }
    int slo = record.initial_slo_index;
    for (const auto& change : record.slo_changes) {
      EXPECT_EQ(change.old_slo_index, slo);
      slo = change.new_slo_index;
      EXPECT_GE(slo, 0);
      EXPECT_LT(slo, telemetry::NumSlos());
    }
    for (const auto& sample : record.size_samples) {
      EXPECT_GT(sample.size_mb, 0.0);
      EXPECT_GE(sample.timestamp, record.created_at);
    }
  }

  // 2. Per-subscription index is consistent and creation-ordered.
  size_t indexed = 0;
  for (auto sub : store->AllSubscriptions()) {
    telemetry::Timestamp prev = store->window_start();
    for (auto id : store->DatabasesOfSubscription(sub)) {
      auto record = store->FindDatabase(id);
      ASSERT_TRUE(record.ok());
      EXPECT_EQ((*record).subscription_id, sub);
      EXPECT_GE((*record).created_at, prev);
      prev = (*record).created_at;
      ++indexed;
    }
  }
  EXPECT_EQ(indexed, store->num_databases());

  // 3. CSV round trip is exact.
  const std::string csv = store->ExportCsv();
  auto imported = TelemetryStore::ImportCsv(
      csv, store->region_name(), store->utc_offset_minutes(),
      store->holidays(), store->window_start(), store->window_end());
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(imported->ExportCsv(), csv);

  // 4. KM on any cohort is a valid survival function.
  auto data = core::CohortSurvivalData(*store, core::CohortFilter{});
  ASSERT_TRUE(data.ok());
  if (!data->empty()) {
    auto km = survival::KaplanMeierCurve::Fit(*data);
    ASSERT_TRUE(km.ok());
    double prev_s = 1.0;
    for (const auto& step : km->steps()) {
      EXPECT_LE(step.survival, prev_s + 1e-12);
      EXPECT_GE(step.survival, 0.0);
      EXPECT_GE(step.at_risk, step.events);
      prev_s = step.survival;
    }
  }

  // 5. Prediction cohorts partition consistently: every database is
  //    (a) dead before x, (b) label-known, or (c) excluded-unknown.
  auto cohort = core::BuildPredictionCohort(*store, 2.0, 30.0);
  ASSERT_TRUE(cohort.ok());
  size_t dead_before_x = 0;
  for (const auto& record : store->databases()) {
    if (record.ObservedLifespanDays(store->window_end()) < 2.0) {
      ++dead_before_x;
    }
  }
  EXPECT_EQ(dead_before_x + cohort->ids.size() +
                cohort->num_unknown_excluded,
            store->num_databases());
}

INSTANTIATE_TEST_SUITE_P(
    RegionsAndSeeds, SimulatorSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(uint64_t{1}, uint64_t{99},
                                         uint64_t{424242})));

/// Randomized hand-built stores: fuzz the store with arbitrary valid
/// record shapes and confirm CSV round trips and lifecycle queries.
class StoreFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreFuzzTest, RandomValidStoresRoundTrip) {
  Rng rng(GetParam());
  const telemetry::Timestamp start = telemetry::MakeTimestamp(2017, 1, 1);
  const telemetry::Timestamp end = telemetry::MakeTimestamp(2017, 5, 31);
  TelemetryStore store("fuzz", 0, {}, start, end);

  const int num_dbs = 40;
  for (int db = 0; db < num_dbs; ++db) {
    const auto sub =
        static_cast<telemetry::SubscriptionId>(rng.UniformInt(0, 7));
    // Leave at least a day of headroom so drop times always fit.
    const telemetry::Timestamp created =
        start + rng.UniformInt(0, end - start - telemetry::kSecondsPerDay);
    telemetry::DatabaseCreatedPayload payload;
    payload.server_id = sub;
    payload.server_name = "srv" + std::to_string(sub);
    payload.database_name = "db" + std::to_string(db);
    payload.slo_index =
        static_cast<int>(rng.UniformInt(0, telemetry::NumSlos() - 1));
    payload.subscription_type = static_cast<telemetry::SubscriptionType>(
        rng.UniformInt(0, telemetry::kNumSubscriptionTypes - 1));
    ASSERT_TRUE(store
                    .Append(telemetry::MakeCreatedEvent(
                        created, static_cast<telemetry::DatabaseId>(db),
                        sub, payload))
                    .ok());

    const bool dropped = rng.Bernoulli(0.6);
    const telemetry::Timestamp last =
        dropped ? created + rng.UniformInt(1, end - created - 1) : end;
    // Events strictly inside (created, last).
    int current = payload.slo_index;
    const int extra = static_cast<int>(rng.UniformInt(0, 5));
    telemetry::Timestamp cursor = created;
    for (int e = 0; e < extra && cursor + 2 < last; ++e) {
      cursor += rng.UniformInt(1, std::max<int64_t>(1, (last - cursor) / 2));
      if (cursor >= last) break;
      if (rng.Bernoulli(0.5)) {
        const int next = static_cast<int>(
            rng.UniformInt(0, telemetry::NumSlos() - 1));
        if (next != current) {
          ASSERT_TRUE(store
                          .Append(telemetry::MakeSloChangedEvent(
                              cursor,
                              static_cast<telemetry::DatabaseId>(db), sub,
                              current, next))
                          .ok());
          current = next;
        }
      } else {
        ASSERT_TRUE(store
                        .Append(telemetry::MakeSizeSampleEvent(
                            cursor,
                            static_cast<telemetry::DatabaseId>(db), sub,
                            rng.Uniform(1.0, 5000.0)))
                        .ok());
      }
    }
    if (dropped) {
      ASSERT_TRUE(store
                      .Append(telemetry::MakeDroppedEvent(
                          last, static_cast<telemetry::DatabaseId>(db),
                          sub))
                      .ok());
    }
  }
  ASSERT_TRUE(store.Finalize().ok());
  EXPECT_EQ(store.num_databases(), static_cast<size_t>(num_dbs));

  const std::string csv = store.ExportCsv();
  auto imported =
      TelemetryStore::ImportCsv(csv, "fuzz", 0, {}, start, end);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(imported->ExportCsv(), csv);

  // SloIndexAt is consistent with the change chain everywhere.
  for (const auto& record : store.databases()) {
    EXPECT_EQ(record.SloIndexAt(record.created_at),
              record.initial_slo_index);
    for (const auto& change : record.slo_changes) {
      EXPECT_EQ(record.SloIndexAt(change.timestamp),
                change.new_slo_index);
      EXPECT_EQ(record.SloIndexAt(change.timestamp - 1),
                change.old_slo_index);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreFuzzTest,
                         ::testing::Values(uint64_t{7}, uint64_t{77},
                                           uint64_t{777}, uint64_t{7777},
                                           uint64_t{77777}));

}  // namespace
}  // namespace cloudsurv
