#include "ml/flat_forest.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/service.h"
#include "gtest/gtest.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "serving/model_registry.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "tests/test_util.h"

namespace cloudsurv::ml {
namespace {

// Continuous data with far more than 256 distinct values per feature:
// an exact-split forest trained on it can exceed the uint8 cut budget.
Dataset ContinuousData(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    rows.push_back({rng.Normal(label * 1.5, 1.0), rng.Normal(0.0, 1.0),
                    rng.Normal(label * -0.7, 2.0)});
    labels.push_back(label);
  }
  auto d = Dataset::Make({"x", "noise", "y"}, std::move(rows),
                         std::move(labels));
  EXPECT_TRUE(d.ok());
  return *d;
}

RandomForestClassifier FitForest(const Dataset& data, SplitAlgorithm algo,
                                 std::vector<double> class_weights = {}) {
  ForestParams params;
  params.num_trees = 20;
  params.max_depth = 8;
  params.num_threads = 1;
  params.split_algorithm = algo;
  params.class_weights = std::move(class_weights);
  RandomForestClassifier forest;
  EXPECT_OK(forest.Fit(data, params, /*seed=*/17));
  return forest;
}

// Row-major copy of a dataset's feature matrix for the pointer API.
std::vector<double> DenseRows(const Dataset& data) {
  std::vector<double> dense;
  dense.reserve(data.num_rows() * data.num_features());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto& row = data.row(i);
    dense.insert(dense.end(), row.begin(), row.end());
  }
  return dense;
}

// Asserts that every batch entry point reproduces the legacy per-row
// predictions bit-for-bit under the given options.
void ExpectBitIdentical(const RandomForestClassifier& forest,
                        const FlatForest& flat, const Dataset& data,
                        const FlatForest::BatchOptions& options) {
  // Per-row distributions.
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto legacy = forest.PredictProba(data.row(i));
    const auto got = flat.PredictProba(data.row(i));
    ASSERT_EQ(got.size(), legacy.size());
    for (size_t c = 0; c < legacy.size(); ++c) {
      EXPECT_EQ(got[c], legacy[c]) << "row " << i << " class " << c;
    }
    EXPECT_EQ(flat.PredictPositive(data.row(i)), legacy[1]) << "row " << i;
  }

  // Blocked batch over the dense matrix.
  const std::vector<double> dense = DenseRows(data);
  std::vector<double> out(data.num_rows() * flat.out_dim(), -1.0);
  ASSERT_OK(flat.PredictProbaBatch(dense.data(), data.num_rows(), out.data(),
                                   options));
  for (size_t i = 0; i < data.num_rows(); ++i) {
    const auto legacy = forest.PredictProba(data.row(i));
    for (size_t c = 0; c < legacy.size(); ++c) {
      EXPECT_EQ(out[i * flat.out_dim() + c], legacy[c])
          << "row " << i << " class " << c;
    }
  }

  // Dataset-level positive-probability and label batches.
  ASSERT_OK_AND_ASSIGN(const std::vector<double> positives,
                       flat.PredictPositiveProbaBatch(data, options));
  ASSERT_OK_AND_ASSIGN(const std::vector<double> legacy_positives,
                       forest.PredictPositiveProba(data));
  ASSERT_EQ(positives.size(), legacy_positives.size());
  for (size_t i = 0; i < positives.size(); ++i) {
    EXPECT_EQ(positives[i], legacy_positives[i]) << "row " << i;
  }

  ASSERT_OK_AND_ASSIGN(const std::vector<int> labels,
                       flat.PredictBatch(data, options));
  ASSERT_OK_AND_ASSIGN(const std::vector<int> legacy_labels,
                       forest.PredictBatch(data));
  EXPECT_EQ(labels, legacy_labels);
}

TEST(FlatForestTest, CompileInvariantsAndSelfCheck) {
  const Dataset data = ContinuousData(300, 3);
  const auto forest = FitForest(data, SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));

  EXPECT_TRUE(flat.compiled());
  EXPECT_TRUE(flat.is_classifier());
  EXPECT_EQ(flat.num_trees(), forest.num_trees());
  EXPECT_EQ(flat.num_classes(), forest.num_classes());
  EXPECT_EQ(flat.num_features(), 3u);
  EXPECT_EQ(flat.out_dim(), 2u);
  EXPECT_GT(flat.num_nodes(), flat.num_trees());
  EXPECT_GT(flat.num_leaves(), 0u);
  EXPECT_GT(flat.memory_bytes(), 0u);
  EXPECT_OK(flat.SelfCheck());
  // Histogram training draws thresholds from <= 256 bins per feature;
  // node-local refinement can widen the codes to uint16, but the
  // quantized traversal must stay available.
  EXPECT_TRUE(flat.quantized());
  EXPECT_TRUE(flat.code_bits() == 8 || flat.code_bits() == 16);
}

TEST(FlatForestTest, CompileRejectsUnfittedForest) {
  RandomForestClassifier unfitted;
  EXPECT_FALSE(FlatForest::Compile(unfitted).ok());

  GradientBoostedTreesClassifier unfitted_gbdt;
  EXPECT_FALSE(FlatForest::Compile(unfitted_gbdt).ok());
}

TEST(FlatForestTest, UncompiledBatchFails) {
  const FlatForest flat;
  const Dataset data = ContinuousData(10, 5);
  EXPECT_FALSE(flat.PredictPositiveProbaBatch(data).ok());
}

TEST(FlatForestTest, FeatureCountMismatchFails) {
  const Dataset train = ContinuousData(200, 7);
  const auto forest = FitForest(train, SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));

  auto narrow = Dataset::Make({"x"}, {{1.0}, {2.0}}, {0, 1});
  ASSERT_TRUE(narrow.ok());
  EXPECT_FALSE(flat.PredictPositiveProbaBatch(*narrow).ok());
}

TEST(FlatForestTest, BitIdenticalToExactTrainedForest) {
  const Dataset data = ContinuousData(400, 11);
  const auto forest = FitForest(data, SplitAlgorithm::kExact);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  EXPECT_OK(flat.SelfCheck());

  ThreadPool pool(4, /*max_queued=*/64);
  for (const size_t block_rows : {7u, 64u, 4096u}) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      FlatForest::BatchOptions options;
      options.block_rows = block_rows;
      options.pool = p;
      ExpectBitIdentical(forest, flat, data, options);
    }
  }
}

TEST(FlatForestTest, BitIdenticalToHistogramTrainedForest) {
  const Dataset data = ContinuousData(400, 13);
  const auto forest = FitForest(data, SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  ASSERT_TRUE(flat.quantized());
  EXPECT_OK(flat.SelfCheck());

  ThreadPool pool(4, /*max_queued=*/64);
  for (const bool use_quantized : {true, false}) {
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      FlatForest::BatchOptions options;
      options.block_rows = 32;
      options.pool = p;
      options.use_quantized = use_quantized;
      ExpectBitIdentical(forest, flat, data, options);
    }
  }
}

TEST(FlatForestTest, WideCodesStayQuantizedAndBitIdentical) {
  // A deep histogram forest mints node-local refined thresholds far
  // beyond the 255-cut uint8 budget; the uint16 tier must pick it up.
  const Dataset data = ContinuousData(2000, 43);
  ForestParams params;
  params.num_trees = 30;
  params.max_depth = 12;
  params.num_threads = 1;
  params.split_algorithm = SplitAlgorithm::kHistogram;
  RandomForestClassifier forest;
  ASSERT_OK(forest.Fit(data, params, /*seed=*/47));

  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  EXPECT_OK(flat.SelfCheck());
  ASSERT_TRUE(flat.quantized());
  EXPECT_EQ(flat.code_bits(), 16);
  FlatForest::BatchOptions options;
  options.use_quantized = true;
  ExpectBitIdentical(forest, flat, data, options);
}

TEST(FlatForestTest, SingleLeafTrees) {
  // max_depth = 0 forces every tree to a single root leaf holding the
  // (bootstrap-sample) class prior.
  const Dataset data = ContinuousData(100, 19);
  ForestParams params;
  params.num_trees = 5;
  params.max_depth = 0;
  params.num_threads = 1;
  RandomForestClassifier forest;
  ASSERT_OK(forest.Fit(data, params, /*seed=*/23));

  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  EXPECT_OK(flat.SelfCheck());
  EXPECT_EQ(flat.num_nodes(), 5u);
  EXPECT_EQ(flat.num_leaves(), 5u);
  ExpectBitIdentical(forest, flat, data, FlatForest::BatchOptions());
}

TEST(FlatForestTest, ClassWeightedLeaves) {
  const Dataset data = ContinuousData(300, 29);
  const auto forest =
      FitForest(data, SplitAlgorithm::kHistogram, /*class_weights=*/{1.0, 2.5});
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  EXPECT_OK(flat.SelfCheck());
  ExpectBitIdentical(forest, flat, data, FlatForest::BatchOptions());
}

TEST(FlatForestTest, SerializeRoundTripCompilesIdentically) {
  const Dataset data = ContinuousData(300, 31);
  const auto forest = FitForest(data, SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const auto restored,
                       RandomForestClassifier::Deserialize(forest.Serialize()));
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(restored));
  EXPECT_OK(flat.SelfCheck());
  // The restored forest's compiled form must still match the *original*
  // forest's predictions exactly — serialization is an exact round trip.
  ExpectBitIdentical(forest, flat, data, FlatForest::BatchOptions());
}

TEST(FlatForestTest, GbdtBitIdentity) {
  const Dataset data = ContinuousData(400, 37);
  GbdtParams params;
  params.num_rounds = 30;
  params.max_depth = 4;
  GradientBoostedTreesClassifier gbdt;
  ASSERT_OK(gbdt.Fit(data, params, /*seed=*/41));

  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(gbdt));
  EXPECT_OK(flat.SelfCheck());
  EXPECT_FALSE(flat.is_classifier());
  EXPECT_EQ(flat.out_dim(), 1u);
  EXPECT_TRUE(flat.quantized());  // Histogram-trained by default.

  for (size_t i = 0; i < data.num_rows(); ++i) {
    EXPECT_EQ(flat.PredictPositive(data.row(i)),
              gbdt.PredictProbability(data.row(i)))
        << "row " << i;
  }

  ThreadPool pool(4, /*max_queued=*/64);
  for (const bool use_quantized : {false, true}) {
    FlatForest::BatchOptions options;
    options.block_rows = 50;
    options.pool = &pool;
    options.use_quantized = use_quantized;
    ASSERT_OK_AND_ASSIGN(const std::vector<double> positives,
                         flat.PredictPositiveProbaBatch(data, options));
    ASSERT_OK_AND_ASSIGN(const std::vector<double> legacy,
                         gbdt.PredictPositiveProba(data));
    ASSERT_EQ(positives.size(), legacy.size());
    for (size_t i = 0; i < positives.size(); ++i) {
      EXPECT_EQ(positives[i], legacy[i]) << "row " << i;
    }

    ASSERT_OK_AND_ASSIGN(const std::vector<int> labels,
                         flat.PredictBatch(data, options));
    ASSERT_OK_AND_ASSIGN(const std::vector<int> legacy_labels,
                         gbdt.PredictBatch(data));
    EXPECT_EQ(labels, legacy_labels);
  }
}

// --- Traversal kernels (ml/simd/) ------------------------------------

// Kinds the current build/CPU can execute; kAvx2 is included only when
// the AVX2 translation unit is linked and the CPU reports support.
std::vector<simd::TraversalKind> AvailableKinds() {
  std::vector<simd::TraversalKind> kinds = {simd::TraversalKind::kAuto,
                                            simd::TraversalKind::kScalar};
  if (simd::Avx2Supported()) kinds.push_back(simd::TraversalKind::kAvx2);
  return kinds;
}

TEST(FlatForestTest, BreadthFirstLayoutAndTunedBlockRows) {
  const Dataset data = ContinuousData(300, 59);
  const auto forest = FitForest(data, SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));

  // Compile() must emit every tree in breadth-first node order and
  // autotune a sane default block size.
  EXPECT_TRUE(flat.nodes_breadth_first());
  EXPECT_GE(flat.tuned_block_rows(), 64u);
  EXPECT_LE(flat.tuned_block_rows(), 8192u);
  EXPECT_EQ(flat.tuned_block_rows() % 8, 0u);
}

// Every (kernel, block size) combination must reproduce the legacy
// predictions bit for bit, sequentially and across a thread pool.
class TraversalKernelTest
    : public ::testing::TestWithParam<
          std::tuple<simd::TraversalKind, size_t>> {};

TEST_P(TraversalKernelTest, BitIdenticalAtEveryBlockSizeAndThreadCount) {
  const auto [kind, block_rows] = GetParam();
  if (kind == simd::TraversalKind::kAvx2 && !simd::Avx2Supported()) {
    GTEST_SKIP() << "no AVX2 kernel on this build/CPU";
  }
  const Dataset data = ContinuousData(400, 61);
  const auto forest = FitForest(data, SplitAlgorithm::kHistogram);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));

  ThreadPool pool(4, /*max_queued=*/64);
  for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
    FlatForest::BatchOptions options;
    options.block_rows = block_rows;  // 0 = the autotuned size.
    options.traversal = kind;
    options.pool = p;
    ExpectBitIdentical(forest, flat, data, options);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, TraversalKernelTest,
    ::testing::Combine(::testing::Values(simd::TraversalKind::kAuto,
                                         simd::TraversalKind::kScalar,
                                         simd::TraversalKind::kAvx2),
                       ::testing::Values<size_t>(0, 7, 64, 512, 4096)),
    [](const auto& info) {
      return std::string(simd::KindName(std::get<0>(info.param))) + "_block" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FlatForestTest, EmptySingleRowAndRaggedTailBatches) {
  // The AVX2 kernel walks four rows per step; every n % 4 residue (and
  // the empty batch) must come out bit-identical to the legacy path.
  const Dataset data = ContinuousData(64, 67);
  const auto forest = FitForest(data, SplitAlgorithm::kExact);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  const std::vector<double> dense = DenseRows(data);
  const size_t od = flat.out_dim();

  for (const simd::TraversalKind kind : AvailableKinds()) {
    FlatForest::BatchOptions options;
    options.traversal = kind;

    std::vector<double> empty_out(od, -1.0);
    ASSERT_OK(flat.PredictProbaBatch(dense.data(), 0, empty_out.data(),
                                     options));
    EXPECT_EQ(empty_out[0], -1.0);  // n == 0 must not touch the output.

    for (const size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 9u, 31u}) {
      std::vector<double> out(n * od, -1.0);
      ASSERT_OK(flat.PredictProbaBatch(dense.data(), n, out.data(), options));
      for (size_t i = 0; i < n; ++i) {
        const auto legacy = forest.PredictProba(data.row(i));
        for (size_t c = 0; c < od; ++c) {
          EXPECT_EQ(out[i * od + c], legacy[c])
              << "kind " << simd::KindName(kind) << " n " << n << " row "
              << i;
        }
      }
    }
  }
}

TEST(FlatForestTest, WideCodesAcrossTraversalKinds) {
  // uint16 quantized codes must stay bit-identical whether the batch
  // runs the code traversal or any of the double kernels.
  const Dataset data = ContinuousData(2000, 43);
  ForestParams params;
  params.num_trees = 30;
  params.max_depth = 12;
  params.num_threads = 1;
  params.split_algorithm = SplitAlgorithm::kHistogram;
  RandomForestClassifier forest;
  ASSERT_OK(forest.Fit(data, params, /*seed=*/47));
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  ASSERT_EQ(flat.code_bits(), 16);

  for (const simd::TraversalKind kind : AvailableKinds()) {
    for (const bool use_quantized : {false, true}) {
      FlatForest::BatchOptions options;
      options.traversal = kind;
      options.use_quantized = use_quantized;
      options.block_rows = 256;
      ExpectBitIdentical(forest, flat, data, options);
    }
  }
}

TEST(FlatForestTest, GbdtKernelBitIdentity) {
  // The regressor path exercises the kernels' scalar-leaf vector
  // accumulation (out_dim == 1) plus the base-score seeding.
  const Dataset data = ContinuousData(401, 71);  // Odd n: ragged tail.
  GbdtParams params;
  params.num_rounds = 25;
  params.max_depth = 4;
  GradientBoostedTreesClassifier gbdt;
  ASSERT_OK(gbdt.Fit(data, params, /*seed=*/73));
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(gbdt));
  EXPECT_TRUE(flat.nodes_breadth_first());

  ASSERT_OK_AND_ASSIGN(const std::vector<double> legacy,
                       gbdt.PredictPositiveProba(data));
  for (const simd::TraversalKind kind : AvailableKinds()) {
    FlatForest::BatchOptions options;
    options.traversal = kind;
    options.block_rows = 37;
    ASSERT_OK_AND_ASSIGN(const std::vector<double> positives,
                         flat.PredictPositiveProbaBatch(data, options));
    ASSERT_EQ(positives.size(), legacy.size());
    for (size_t i = 0; i < positives.size(); ++i) {
      EXPECT_EQ(positives[i], legacy[i])
          << "kind " << simd::KindName(kind) << " row " << i;
    }
  }
}

TEST(FlatForestTest, ExplicitAvx2RequestMatchesAvailability) {
  const Dataset data = ContinuousData(50, 79);
  const auto forest = FitForest(data, SplitAlgorithm::kExact);
  ASSERT_OK_AND_ASSIGN(const FlatForest flat, FlatForest::Compile(forest));
  const std::vector<double> dense = DenseRows(data);
  std::vector<double> out(data.num_rows() * flat.out_dim());

  FlatForest::BatchOptions options;
  options.traversal = simd::TraversalKind::kAvx2;
  const Status status = flat.PredictProbaBatch(dense.data(), data.num_rows(),
                                               out.data(), options);
  if (simd::Avx2Supported()) {
    EXPECT_OK(status);
  } else {
    // An explicit kAvx2 request must fail loudly, not silently
    // downgrade to the scalar kernel — even for an empty batch.
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(flat.PredictProbaBatch(dense.data(), 0, out.data(), options)
                  .code(),
              StatusCode::kInvalidArgument);
  }
}

TEST(FlatForestTest, ForceScalarEnvRoutesAutoToScalar) {
  ASSERT_EQ(::setenv("CLOUDSURV_FORCE_SCALAR", "1", /*overwrite=*/1), 0);
  EXPECT_EQ(simd::Resolve(simd::TraversalKind::kAuto),
            simd::TraversalKind::kScalar);
  // Explicit kinds are unaffected by the env override.
  EXPECT_EQ(simd::Resolve(simd::TraversalKind::kAvx2),
            simd::TraversalKind::kAvx2);
  ASSERT_EQ(::setenv("CLOUDSURV_FORCE_SCALAR", "0", /*overwrite=*/1), 0);
  if (simd::Avx2Supported()) {
    EXPECT_EQ(simd::Resolve(simd::TraversalKind::kAuto),
              simd::TraversalKind::kAvx2);
  }
  ::unsetenv("CLOUDSURV_FORCE_SCALAR");
}

// --- Service / registry integration ----------------------------------

// One small simulated region shared across the service tests (training
// is the slow part; the store itself is cheap to keep alive).
const telemetry::TelemetryStore& SimStore() {
  static const telemetry::TelemetryStore* store = [] {
    auto config = simulator::MakeRegionPreset(1, /*num_subscriptions=*/120,
                                              /*seed=*/99);
    EXPECT_TRUE(config.ok());
    auto simulated = simulator::SimulateRegion(*config);
    EXPECT_TRUE(simulated.ok());
    return new telemetry::TelemetryStore(std::move(*simulated));
  }();
  return *store;
}

core::LongevityService TrainSmallService() {
  core::LongevityService::Options options;
  options.forest_params.num_trees = 10;
  options.forest_params.max_depth = 6;
  options.forest_params.num_threads = 1;
  options.min_cohort_size = 50;
  auto service = core::LongevityService::Train(SimStore(), options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return *service;
}

std::vector<telemetry::DatabaseId> SomeIds(size_t limit) {
  std::vector<telemetry::DatabaseId> ids;
  for (const auto& record : SimStore().databases()) {
    if (ids.size() >= limit) break;
    ids.push_back(record.id);
  }
  return ids;
}

TEST(FlatForestServiceTest, CompiledAssessMatchesLegacyAssess) {
  const core::LongevityService legacy = TrainSmallService();
  core::LongevityService compiled = legacy;
  ASSERT_OK(compiled.CompileForInference());
  ASSERT_TRUE(compiled.inference_compiled());

  size_t assessed = 0;
  for (const auto& record : SimStore().databases()) {
    auto want = legacy.Assess(SimStore(), record.id);
    auto got = compiled.Assess(SimStore(), record.id);
    ASSERT_EQ(want.ok(), got.ok()) << "db " << record.id;
    if (!want.ok()) continue;
    ++assessed;
    EXPECT_EQ(got->positive_probability, want->positive_probability)
        << "db " << record.id;
    EXPECT_EQ(got->predicted_label, want->predicted_label);
    EXPECT_EQ(got->confident, want->confident);
    EXPECT_EQ(got->model_name, want->model_name);
  }
  EXPECT_GT(assessed, 0u);
}

TEST(FlatForestServiceTest, AssessManyMatchesPerIdAssess) {
  core::LongevityService service = TrainSmallService();
  ASSERT_OK(service.CompileForInference());

  std::vector<telemetry::DatabaseId> ids = SomeIds(200);
  ids.push_back(telemetry::DatabaseId{9999999});  // Unknown -> nullopt.
  ASSERT_OK_AND_ASSIGN(const auto batch,
                       service.AssessMany(SimStore(), ids, /*block_rows=*/16));
  ASSERT_EQ(batch.size(), ids.size());
  EXPECT_FALSE(batch.back().has_value());

  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    auto single = service.Assess(SimStore(), ids[i]);
    ASSERT_EQ(single.ok(), batch[i].has_value()) << "db " << ids[i];
    if (!single.ok()) continue;
    EXPECT_EQ(batch[i]->positive_probability, single->positive_probability)
        << "db " << ids[i];
    EXPECT_EQ(batch[i]->predicted_label, single->predicted_label);
    EXPECT_EQ(batch[i]->confident, single->confident);
    EXPECT_EQ(batch[i]->recommended_pool, single->recommended_pool);
    EXPECT_EQ(batch[i]->model_name, single->model_name);
  }
}

// TSan-covered: readers batch-score through compiled snapshots while a
// publisher hot-swaps freshly compiled versions into the registry.
TEST(FlatForestConcurrencyTest, BatchScoringDuringRegistryHotSwap) {
  const core::LongevityService trained = TrainSmallService();
  serving::ModelRegistry registry;
  {
    auto initial = std::make_shared<core::LongevityService>(trained);
    ASSERT_TRUE(registry.Publish("v-initial", std::move(initial)).ok());
  }
  const std::vector<telemetry::DatabaseId> ids = SomeIds(48);

  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    for (int i = 0; i < 10; ++i) {
      auto copy = std::make_shared<core::LongevityService>(trained);
      auto version =
          registry.Publish("v" + std::to_string(i), std::move(copy));
      EXPECT_TRUE(version.ok());
    }
    stop.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      int iterations = 0;
      while (!stop.load() && iterations < 200) {
        ++iterations;
        const auto model = registry.Current();
        ASSERT_NE(model, nullptr);
        EXPECT_TRUE(model->inference_compiled());
        auto batch = model->AssessMany(SimStore(), ids, /*block_rows=*/16);
        EXPECT_TRUE(batch.ok());
        if (batch.ok()) {
          EXPECT_EQ(batch->size(), ids.size());
        }
      }
    });
  }
  publisher.join();
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(registry.num_versions(), 11u);
}

}  // namespace
}  // namespace cloudsurv::ml
