#include <cmath>

#include "gtest/gtest.h"
#include "ml/baseline.h"
#include "ml/dataset.h"
#include "ml/metrics.h"

namespace cloudsurv::ml {
namespace {

Dataset TinyDataset() {
  auto d = Dataset::Make({"a", "b"},
                         {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}, {7.0, 8.0}},
                         {0, 1, 1, 0});
  EXPECT_TRUE(d.ok());
  return *d;
}

TEST(DatasetTest, MakeValidation) {
  EXPECT_FALSE(Dataset::Make({"a"}, {{1.0}}, {0, 1}).ok());        // sizes
  EXPECT_FALSE(Dataset::Make({"a"}, {{1.0, 2.0}}, {0}).ok());      // row width
  EXPECT_FALSE(Dataset::Make({"a"}, {{1.0}}, {-1}).ok());          // label
  EXPECT_FALSE(Dataset::Make({"a"}, {{1.0}}, {5}, 2).ok());        // range
  EXPECT_FALSE(Dataset::Make({"a", "a"}, {{1.0, 2.0}}, {0}).ok()); // dup name
  EXPECT_FALSE(
      Dataset::Make({"a"}, {{std::nan("")}}, {0}).ok());           // finite
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset d = TinyDataset();
  EXPECT_EQ(d.num_rows(), 4u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_DOUBLE_EQ(d.feature(2, 1), 6.0);
  EXPECT_EQ(d.label(1), 1);
  EXPECT_EQ(d.FeatureIndex("b"), 1);
  EXPECT_EQ(d.FeatureIndex("missing"), -1);
}

TEST(DatasetTest, ClassCountsAndFraction) {
  const Dataset d = TinyDataset();
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_DOUBLE_EQ(d.ClassFraction(1), 0.5);
  EXPECT_DOUBLE_EQ(d.ClassFraction(7), 0.0);
}

TEST(DatasetTest, SubsetPreservesOrderAndAllowsDuplicates) {
  const Dataset d = TinyDataset();
  auto s = d.Subset({3, 0, 0});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(s->feature(0, 0), 7.0);
  EXPECT_DOUBLE_EQ(s->feature(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(s->feature(2, 0), 1.0);
  EXPECT_FALSE(d.Subset({99}).ok());
}

TEST(DatasetTest, DropFeatures) {
  const Dataset d = TinyDataset();
  auto s = d.DropFeatures({"a"});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_features(), 1u);
  EXPECT_EQ(s->feature_names()[0], "b");
  EXPECT_DOUBLE_EQ(s->feature(0, 0), 2.0);
  EXPECT_EQ(s->labels(), d.labels());
  EXPECT_FALSE(d.DropFeatures({"nope"}).ok());
}

TEST(DatasetTest, InferredNumClasses) {
  auto d = Dataset::Make({"x"}, {{0.0}, {1.0}, {2.0}}, {0, 2, 1});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_classes(), 3);
}

TEST(MetricsTest, ConfusionMatrixHandExample) {
  //            pred: 1  1  0  0  1  0
  //            true: 1  0  0  1  1  0
  auto cm = ComputeConfusionMatrix({1, 0, 0, 1, 1, 0}, {1, 1, 0, 0, 1, 0});
  ASSERT_TRUE(cm.ok());
  EXPECT_EQ(cm->true_positive, 2u);
  EXPECT_EQ(cm->false_positive, 1u);
  EXPECT_EQ(cm->true_negative, 2u);
  EXPECT_EQ(cm->false_negative, 1u);
  const ClassificationScores s = ScoresFromConfusion(*cm);
  EXPECT_NEAR(s.accuracy, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(s.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.recall, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.f1, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(s.support, 6u);
}

TEST(MetricsTest, RejectsBadInputs) {
  EXPECT_FALSE(ComputeConfusionMatrix({1}, {1, 0}).ok());
  EXPECT_FALSE(ComputeConfusionMatrix({}, {}).ok());
  EXPECT_FALSE(ComputeConfusionMatrix({2}, {1}).ok());
}

TEST(MetricsTest, DegenerateScoresAreZeroNotNan) {
  // Nothing predicted positive -> precision 0; no actual positives ->
  // recall 0.
  auto s1 = ComputeScores({1, 1}, {0, 0});
  ASSERT_TRUE(s1.ok());
  EXPECT_DOUBLE_EQ(s1->precision, 0.0);
  EXPECT_DOUBLE_EQ(s1->recall, 0.0);
  EXPECT_DOUBLE_EQ(s1->f1, 0.0);
  auto s2 = ComputeScores({0, 0}, {0, 0});
  ASSERT_TRUE(s2.ok());
  EXPECT_DOUBLE_EQ(s2->accuracy, 1.0);
  EXPECT_DOUBLE_EQ(s2->recall, 0.0);
}

TEST(MetricsTest, AverageScores) {
  ClassificationScores a{0.8, 0.6, 0.4, 0.48, 100};
  ClassificationScores b{0.6, 0.8, 0.6, 0.69, 200};
  const ClassificationScores avg = AverageScores({a, b});
  EXPECT_NEAR(avg.accuracy, 0.7, 1e-12);
  EXPECT_NEAR(avg.precision, 0.7, 1e-12);
  EXPECT_NEAR(avg.recall, 0.5, 1e-12);
  EXPECT_EQ(avg.support, 150u);
  EXPECT_EQ(AverageScores({}).support, 0u);
}

TEST(MetricsTest, RocAucPerfectAndRandom) {
  auto perfect = RocAuc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9});
  ASSERT_TRUE(perfect.ok());
  EXPECT_DOUBLE_EQ(*perfect, 1.0);
  auto inverted = RocAuc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1});
  ASSERT_TRUE(inverted.ok());
  EXPECT_DOUBLE_EQ(*inverted, 0.0);
  auto ties = RocAuc({0, 1}, {0.5, 0.5});
  ASSERT_TRUE(ties.ok());
  EXPECT_DOUBLE_EQ(*ties, 0.5);
}

TEST(MetricsTest, RocAucHandExample) {
  // scores: neg 0.1, pos 0.4, neg 0.35, pos 0.8 -> one inversion pair of 4.
  auto auc = RocAuc({0, 1, 0, 1}, {0.1, 0.4, 0.35, 0.8});
  ASSERT_TRUE(auc.ok());
  EXPECT_DOUBLE_EQ(*auc, 1.0);  // 0.4 > 0.35: actually separable
  auto auc2 = RocAuc({0, 1, 0, 1}, {0.1, 0.3, 0.35, 0.8});
  ASSERT_TRUE(auc2.ok());
  EXPECT_DOUBLE_EQ(*auc2, 0.75);  // one of four pairs inverted
}

TEST(MetricsTest, RocAucRejectsSingleClass) {
  EXPECT_FALSE(RocAuc({1, 1}, {0.5, 0.6}).ok());
  EXPECT_FALSE(RocAuc({0, 1}, {0.5}).ok());
}

TEST(MetricsTest, ScoresToStringMentionsAllFields) {
  ClassificationScores s{0.9, 0.8, 0.7, 0.75, 42};
  const std::string text = ScoresToString(s);
  EXPECT_NE(text.find("accuracy=0.900"), std::string::npos);
  EXPECT_NE(text.find("n=42"), std::string::npos);
}

TEST(MulticlassMetricsTest, ConfusionHandExample) {
  //          truth: 0 0 1 1 2 2 2
  //          pred:  0 1 1 1 2 0 2
  auto confusion = ComputeMulticlassConfusion({0, 0, 1, 1, 2, 2, 2},
                                              {0, 1, 1, 1, 2, 0, 2});
  ASSERT_TRUE(confusion.ok());
  EXPECT_EQ(confusion->num_classes(), 3u);
  EXPECT_EQ(confusion->counts[0][0], 1u);
  EXPECT_EQ(confusion->counts[0][1], 1u);
  EXPECT_EQ(confusion->counts[1][1], 2u);
  EXPECT_EQ(confusion->counts[2][0], 1u);
  EXPECT_EQ(confusion->counts[2][2], 2u);
  EXPECT_NEAR(confusion->accuracy(), 5.0 / 7.0, 1e-12);
}

TEST(MulticlassMetricsTest, OneVsRestMatchesBinaryReduction) {
  auto confusion = ComputeMulticlassConfusion({0, 0, 1, 1, 2, 2, 2},
                                              {0, 1, 1, 1, 2, 0, 2});
  ASSERT_TRUE(confusion.ok());
  // Class 1: TP=2 (both 1s predicted 1), FP=1 (a 0 predicted 1), FN=0.
  auto scores = OneVsRestScores(*confusion, 1);
  ASSERT_TRUE(scores.ok());
  EXPECT_NEAR(scores->precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(scores->recall, 1.0);
  EXPECT_FALSE(OneVsRestScores(*confusion, 5).ok());
}

TEST(MulticlassMetricsTest, RejectsInvalidInputs) {
  EXPECT_FALSE(ComputeMulticlassConfusion({}, {}).ok());
  EXPECT_FALSE(ComputeMulticlassConfusion({0}, {0, 1}).ok());
  EXPECT_FALSE(ComputeMulticlassConfusion({-1}, {0}).ok());
  EXPECT_FALSE(ComputeMulticlassConfusion({3}, {0}, 2).ok());
}

TEST(MulticlassMetricsTest, TextRenderingUsesClassNames) {
  auto confusion = ComputeMulticlassConfusion({0, 1}, {0, 1});
  ASSERT_TRUE(confusion.ok());
  const std::string text =
      MulticlassConfusionToText(*confusion, {"eph", "long"});
  EXPECT_NE(text.find("eph"), std::string::npos);
  EXPECT_NE(text.find("long"), std::string::npos);
}

TEST(BaselineTest, LearnsPositiveRate) {
  auto d = Dataset::Make({"x"}, {{0.0}, {0.0}, {0.0}, {0.0}},
                         {1, 1, 1, 0});
  ASSERT_TRUE(d.ok());
  WeightedRandomClassifier baseline;
  ASSERT_TRUE(baseline.Fit(*d).ok());
  EXPECT_DOUBLE_EQ(baseline.positive_rate(), 0.75);
}

TEST(BaselineTest, PredictionsFollowRate) {
  std::vector<std::vector<double>> rows(4000, {0.0});
  std::vector<int> labels(4000, 0);
  for (int i = 0; i < 1200; ++i) labels[i] = 1;  // 30% positive
  auto d = Dataset::Make({"x"}, rows, labels);
  ASSERT_TRUE(d.ok());
  WeightedRandomClassifier baseline;
  ASSERT_TRUE(baseline.Fit(*d).ok());
  auto preds = baseline.PredictBatch(*d, 77);
  ASSERT_TRUE(preds.ok());
  int pos = 0;
  for (int p : *preds) pos += p;
  EXPECT_NEAR(static_cast<double>(pos) / 4000.0, 0.3, 0.03);
}

TEST(BaselineTest, RequiresBinaryAndFit) {
  auto multi = Dataset::Make({"x"}, {{0.0}, {0.0}, {0.0}}, {0, 1, 2});
  ASSERT_TRUE(multi.ok());
  WeightedRandomClassifier baseline;
  EXPECT_FALSE(baseline.Fit(*multi).ok());
  EXPECT_FALSE(baseline.PredictBatch(*multi, 1).ok());
  EXPECT_FALSE(baseline.Fit(Dataset()).ok());
}

}  // namespace
}  // namespace cloudsurv::ml
