#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/string_util.h"
#include "gtest/gtest.h"

namespace cloudsurv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
  EXPECT_FALSE(Status::InvalidArgument("bad").ok());
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::NotFound("missing row").ToString(),
            "NotFound: missing row");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r{Status::OK()};
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> Doubled(Result<int> in) {
  CLOUDSURV_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  Result<int> err = Doubled(Status::OutOfRange("x"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsIndependentOfParentConsumption) {
  Rng a(9);
  Rng fork_before = a.Fork(5);
  a.Uniform();
  a.Uniform();
  Rng fork_after = a.Fork(5);
  // Forks depend only on (seed, salt), not on how much the parent drew.
  EXPECT_DOUBLE_EQ(fork_before.Uniform(), fork_after.Uniform());
}

TEST(RngTest, ForksWithDifferentSaltsDiffer) {
  Rng a(9);
  Rng f1 = a.Fork(1);
  Rng f2 = a.Fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.UniformInt(0, 1 << 30) == f2.UniformInt(0, 1 << 30)) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 3));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BernoulliRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  const auto parts = SplitString("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitSingleField) {
  const auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ","), "x,y,z");
  EXPECT_EQ(SplitString(JoinStrings(parts, "|"), '|'), parts);
}

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("AbC-123"), "abc-123");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("cloudsurv", "cloud"));
  EXPECT_FALSE(StartsWith("cloud", "cloudsurv"));
  EXPECT_TRUE(EndsWith("table.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "table.csv"));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace cloudsurv
