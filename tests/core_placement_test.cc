#include "core/placement.h"
#include "gtest/gtest.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "telemetry/types.h"
#include "tests/test_util.h"

namespace cloudsurv::core {
namespace {

using cloudsurv::testing::StoreBuilder;
using telemetry::SloIndexByName;

TEST(PlacementTest, SingleDatabaseUsesOneServer) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 50.0, "db", "s", SloIndexByName("S2"));  // 50 DTUs
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 100;
  auto report = SimulatePlacement(store, {}, config);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->placements, 1u);
  EXPECT_EQ(report->servers_used, 1u);
  EXPECT_EQ(report->peak_active_servers, 1u);
  EXPECT_EQ(report->peak_occupied_dtus, 50);
  EXPECT_EQ(report->rejected, 0u);
}

TEST(PlacementTest, FirstFitPacksConcurrentTenants) {
  StoreBuilder b;
  // Four concurrent 50-DTU databases on 100-DTU servers: 2 servers.
  for (int i = 0; i < 4; ++i) {
    b.AddDatabase(1, 0.0 + i * 0.01, 50.0, "db", "s",
                  SloIndexByName("S2"));
  }
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 100;
  auto report = SimulatePlacement(store, {}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->peak_active_servers, 2u);
  EXPECT_EQ(report->peak_occupied_dtus, 200);
  EXPECT_DOUBLE_EQ(report->packing_overhead, 1.0);
}

TEST(PlacementTest, SequentialTenantsReuseServers) {
  StoreBuilder b;
  // Non-overlapping lifetimes: one server suffices.
  b.AddDatabase(1, 0.0, 10.0, "a", "s", SloIndexByName("S3"));   // 100
  b.AddDatabase(1, 20.0, 30.0, "b", "s", SloIndexByName("S3"));  // 100
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 100;
  auto report = SimulatePlacement(store, {}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->servers_used, 1u);
  EXPECT_EQ(report->peak_active_servers, 1u);
}

TEST(PlacementTest, OversizedTenantRejected) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 10.0, "big", "s", SloIndexByName("P15"));  // 4000
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 2000;
  auto report = SimulatePlacement(store, {}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->rejected, 1u);
  EXPECT_EQ(report->placements, 0u);
}

TEST(PlacementTest, SloGrowthBeyondCapacityForcesMove) {
  StoreBuilder b;
  // Two 50-DTU tenants share a 100-DTU server; one grows to 100 and
  // must move to a new server.
  const auto grower =
      b.AddDatabase(1, 0.0, 50.0, "grow", "s", SloIndexByName("S2"));
  b.AddDatabase(1, 0.001, 50.0, "stay", "s", SloIndexByName("S2"));
  b.AddSloChange(grower, 1, 10.0, SloIndexByName("S2"),
                 SloIndexByName("S3"));
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 100;
  auto report = SimulatePlacement(store, {}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->servers_used, 2u);
  EXPECT_EQ(report->peak_occupied_dtus, 150);
}

TEST(PlacementTest, FragmentationBoundedInUnitInterval) {
  auto config = simulator::MakeRegionPreset(1, 300, 9);
  auto store = simulator::SimulateRegion(*config);
  ASSERT_TRUE(store.ok());
  ClusterConfig cluster;
  auto report = SimulatePlacement(*store, {}, cluster);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->mean_fragmentation, 0.0);
  EXPECT_LE(report->mean_fragmentation, 1.0);
  EXPECT_GE(report->packing_overhead, 1.0);
  EXPECT_GT(report->placements, 1000u);
  EXPECT_NE(report->ToString().find("packing_overhead"),
            std::string::npos);
}

TEST(PlacementTest, SegregationDoesNotLoseTenants) {
  auto config = simulator::MakeRegionPreset(1, 300, 10);
  auto store = simulator::SimulateRegion(*config);
  ASSERT_TRUE(store.ok());

  // Oracle plan: true short-lived dropped databases to the churn pool.
  PoolAssignmentPlan plan;
  for (const auto& record : store->databases()) {
    const double life = record.ObservedLifespanDays(store->window_end());
    if (record.dropped_at.has_value() && life <= 30.0) {
      plan.pools[record.id] = Pool::kChurn;
    }
  }
  ClusterConfig mixed;
  ClusterConfig segregated;
  segregated.segregate_churn_pool = true;
  auto base = SimulatePlacement(*store, plan, mixed);
  auto seg = SimulatePlacement(*store, plan, segregated);
  ASSERT_TRUE(base.ok() && seg.ok());
  EXPECT_EQ(base->placements, seg->placements);
  EXPECT_EQ(base->rejected, seg->rejected);
  // Same workload, same total demand.
  EXPECT_EQ(base->peak_occupied_dtus, seg->peak_occupied_dtus);
}

TEST(PlacementTest, GrowthBeyondServerCapacityIsRejectedNotCorrupted) {
  StoreBuilder b;
  const auto id =
      b.AddDatabase(1, 0.0, 50.0, "big", "s", SloIndexByName("P6"));
  b.AddSloChange(id, 1, 10.0, SloIndexByName("P6"), SloIndexByName("P11"));
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 1000;  // P6 fits (1000), P11 (1750) not
  auto report = SimulatePlacement(store, {}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->placements, 1u);
  EXPECT_EQ(report->rejected, 1u);
  // Invariant: open servers always bound the occupancy.
  EXPECT_GE(report->packing_overhead, 1.0);
  EXPECT_LE(report->peak_occupied_dtus,
            static_cast<int64_t>(report->peak_active_servers) * 1000);
}

TEST(PlacementTest, ZeroLifetimeDatabaseDoesNotLeak) {
  StoreBuilder b;
  // Created and dropped in the same second, then a later tenant.
  b.AddDatabase(1, 1.0, 1.0, "flash", "s", SloIndexByName("S3"));
  b.AddDatabase(1, 50.0, 60.0, "later", "s", SloIndexByName("S3"));
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 100;
  auto report = SimulatePlacement(store, {}, config);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->placements, 2u);
  // If the flash tenant leaked, both would be live at day 50 and the
  // peak would be 2 servers; correct handling needs only 1 at a time.
  EXPECT_EQ(report->peak_active_servers, 1u);
}

// Golden-text checks: ToString()/ToJson() are scraped by scripts and
// quoted in docs/provisioning.md, so the exact format is contract.
TEST(PlacementTest, PlacementReportGoldenToString) {
  PlacementReport r;
  r.placements = 10;
  r.rejected = 1;
  r.servers_used = 4;
  r.peak_active_servers = 3;
  r.peak_occupied_dtus = 250;
  r.packing_overhead = 1.25;
  r.mean_fragmentation = 0.125;
  EXPECT_EQ(r.ToString(),
            "placements=10 rejected=1 servers_used=4 peak_active=3 "
            "peak_dtus=250 packing_overhead=1.250 "
            "mean_fragmentation=0.125");
}

TEST(PlacementTest, DeploymentReportGoldenToStringAndJson) {
  DeploymentReport r;
  r.num_databases = 5;
  r.placements = 4;
  r.rejected = 1;
  r.moves = 2;
  r.spillovers = 1;
  r.disruptions = 3;
  r.avoided_disruptions = 2;
  r.transparent_disruptions = 1;
  r.sla_violations = 6;
  r.node_days = 12.5;
  r.infra_cost = 100.0;
  r.ops_cost = 2.25;
  r.total_cost = 102.25;
  r.mean_fragmentation = 0.25;
  ArchitectureUsage u;
  u.name = "general";
  u.placements = 4;
  u.nodes_used = 2;
  u.peak_active_nodes = 1;
  u.node_days = 12.5;
  u.infra_cost = 100.0;
  u.ops_cost = 2.25;
  u.mean_fragmentation = 0.25;
  r.per_architecture.push_back(u);
  EXPECT_EQ(r.ToString(),
            "databases=5 placements=4 rejected=1 moves=2 spillovers=1 "
            "disruptions=3 avoided=2 transparent=1 sla_violations=6 "
            "node_days=12.5 infra_cost=100.00 ops_cost=2.25 "
            "total_cost=102.25 mean_fragmentation=0.250");
  EXPECT_EQ(r.ToJson(),
            "{\"num_databases\": 5, \"placements\": 4, \"rejected\": 1, "
            "\"moves\": 2, \"spillovers\": 1, \"disruptions\": 3, "
            "\"avoided_disruptions\": 2, \"transparent_disruptions\": 1, "
            "\"sla_violations\": 6, \"node_days\": 12.500, "
            "\"infra_cost\": 100.00, \"ops_cost\": 2.25, "
            "\"total_cost\": 102.25, \"mean_fragmentation\": 0.2500, "
            "\"per_architecture\": [{\"name\": \"general\", "
            "\"placements\": 4, \"nodes_used\": 2, "
            "\"peak_active_nodes\": 1, \"node_days\": 12.500, "
            "\"infra_cost\": 100.00, \"ops_cost\": 2.25, "
            "\"mean_fragmentation\": 0.2500}]}");
}

TEST(PlacementTest, RejectsInvalidConfig) {
  StoreBuilder b;
  b.AddDatabase(1, 0.0, 10.0);
  auto store = b.Finish();
  ClusterConfig config;
  config.server_capacity_dtus = 0;
  EXPECT_FALSE(SimulatePlacement(store, {}, config).ok());
}

}  // namespace
}  // namespace cloudsurv::core
