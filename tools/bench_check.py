#!/usr/bin/env python3
"""Gate a benchmark JSON document against a committed baseline.

Usage:
    python3 tools/bench_check.py --current out.json \
        [--baseline bench/baselines/inference_throughput.json] \
        [--max-regression 0.20]

The benchmark format is auto-detected from the document's "bench"
field; documents without one are the original inference format.

inference_throughput: absolute rows/sec numbers do not transfer
between machines, so the check compares *ratios*: each flat
configuration's speedup_vs_legacy is measured against the same
configuration in the committed baseline, and the build fails if any
configuration lost more than --max-regression (default 20%) of its
baseline speedup. Correctness gates are absolute: bit_identical and
startup.first_score_identical must both hold.

telemetry_ingest: the columnar-vs-struct ingest ratio must not lose
more than --max-regression vs the baseline ratio; the columnar
bytes/database (deterministic accounting, machine-portable) must stay
under the baseline value plus the same tolerance; and two absolute
gates from the capacity model in docs/telemetry.md: the struct layout
must cost >= 3x the columnar bytes/database, and column_reallocs must
be zero (Reserve() pre-sizes segment arenas).

feature_extraction: bit-identity of the batch matrix against the
scalar reference, a 100k-database scale floor, and an absolute 5x
best-batch-speedup floor (the win is algorithmic, so it transfers
between machines); per-(mode, threads) speedups are additionally held
to the committed baseline within --max-regression.

provisioning_policy: the deployment replay is fully deterministic (no
timing numbers), so the gates are dominance gates, not tolerance
bands. Absolute: the longevity policy must beat naive on total dollar
cost while holding SLA violations no worse (the paper's section 3.1
claim, priced); every policy must place every database (rejected ==
0). Relative: the naive/longevity cost and ops advantages must not
lose more than --max-regression vs the committed baseline ratios.

Coverage rules:
  - scalar rows must be present in the current output;
  - avx2 rows must be present iff the current host reports
    simd.avx2_available (a silent fallback to scalar would otherwise
    pass the regression check while benching the wrong kernel);
  - baseline rows with no matching current row fail the check unless
    the kernel is legitimately unavailable on the current host
    (avx2 without AVX2, quantized when the forest did not quantize).

Only the Python standard library is used.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        sys.exit(f"bench_check: cannot load {path}: {exc}")


def flat_runs(doc):
    """Index flat runs by (batch_rows, threads, traversal)."""
    out = {}
    for run in doc.get("runs", []):
        if run.get("mode") != "flat":
            continue
        key = (run["batch_rows"], run["threads"],
               run.get("traversal", "scalar"))
        out[key] = run
    return out


def check_telemetry(current, baseline, max_regression):
    """Gates for the telemetry_ingest format. Returns (failures, summary)."""
    failures = []
    cur_col = current.get("columnar", {})
    base_col = baseline.get("columnar", {})
    cur_ratios = current.get("ratios", {})
    base_ratios = baseline.get("ratios", {})

    # Absolute gates from the capacity model: never waived.
    bytes_ratio = cur_ratios.get("struct_vs_columnar_bytes", 0.0)
    if bytes_ratio < 3.0:
        failures.append(
            f"struct_vs_columnar_bytes is {bytes_ratio:.2f}, below the "
            "3x capacity-model floor (docs/telemetry.md)")
    reallocs = cur_col.get("column_reallocs", -1)
    if reallocs != 0:
        failures.append(
            f"column_reallocs is {reallocs} (Reserve() should pre-size "
            "segment arenas so bulk ingest never reallocates mid-segment)")

    # Ingest speed: ratio-of-ratios, machine-portable.
    base_ingest = base_ratios.get("columnar_vs_struct_ingest", 0.0)
    cur_ingest = cur_ratios.get("columnar_vs_struct_ingest", 0.0)
    if base_ingest > 0.0:
        floor = base_ingest * (1.0 - max_regression)
        if cur_ingest < floor:
            failures.append(
                f"ingest ratio regression: columnar_vs_struct_ingest "
                f"{cur_ingest:.3f} vs baseline {base_ingest:.3f} "
                f"(floor {floor:.3f})")

    # Memory footprint ceiling: accounting is deterministic, so the
    # baseline value transfers between machines; the tolerance only
    # absorbs allocator-driven capacity jitter.
    base_bpd = base_col.get("bytes_per_database", 0.0)
    cur_bpd = cur_col.get("bytes_per_database", 0.0)
    if base_bpd > 0.0:
        ceiling = base_bpd * (1.0 + max_regression)
        if cur_bpd > ceiling:
            failures.append(
                f"bytes_per_database grew to {cur_bpd:.1f} vs baseline "
                f"{base_bpd:.1f} (ceiling {ceiling:.1f})")

    summary = (f"telemetry_ingest: {cur_bpd:.1f} bytes/database "
               f"({bytes_ratio:.2f}x under struct layout), ingest ratio "
               f"{cur_ingest:.3f}")
    return failures, summary


def policy_reports(doc):
    """Index deployment reports by policy name."""
    out = {}
    for entry in doc.get("policies", []):
        name = entry.get("policy")
        if name:
            out[name] = entry.get("report", {})
    return out


def check_provisioning(current, baseline, max_regression):
    """Gates for the provisioning_policy format. Returns (failures, summary)."""
    failures = []
    reports = policy_reports(current)
    for required in ("naive", "longevity", "oracle"):
        if required not in reports:
            failures.append(f"policy '{required}' missing from current run")
    if failures:
        return failures, "provisioning_policy: incomplete run"

    naive = reports["naive"]
    longevity = reports["longevity"]

    # Absolute dominance gates: never waived. The longevity policy must
    # be cheaper than naive at no-worse SLA, and nothing may be
    # unplaceable under any policy (the default tier hosts every SLO).
    if longevity.get("total_cost", 0.0) >= naive.get("total_cost", 0.0):
        failures.append(
            f"longevity total_cost {longevity.get('total_cost')} does not "
            f"beat naive {naive.get('total_cost')}")
    if longevity.get("sla_violations", 0) > naive.get("sla_violations", 0):
        failures.append(
            f"longevity sla_violations {longevity.get('sla_violations')} "
            f"exceed naive {naive.get('sla_violations')}")
    for name, report in sorted(reports.items()):
        if report.get("rejected", 0) != 0:
            failures.append(
                f"policy '{name}' rejected {report.get('rejected')} "
                "databases (default tier must host every SLO)")

    # Relative gates: the measured advantage must not shrink by more
    # than the tolerance vs the committed baseline.
    cur_ratios = current.get("ratios", {})
    base_ratios = baseline.get("ratios", {})
    for key in ("naive_vs_longevity_cost", "naive_vs_longevity_ops"):
        base_value = base_ratios.get(key, 0.0)
        cur_value = cur_ratios.get(key, 0.0)
        if base_value <= 0.0:
            continue
        floor = base_value * (1.0 - max_regression)
        if cur_value < floor:
            failures.append(
                f"advantage regression: {key} {cur_value:.4f} vs baseline "
                f"{base_value:.4f} (floor {floor:.4f})")

    cost_ratio = cur_ratios.get("naive_vs_longevity_cost", 0.0)
    summary = (f"provisioning_policy: longevity "
               f"${longevity.get('total_cost', 0.0):.0f} vs naive "
               f"${naive.get('total_cost', 0.0):.0f} "
               f"({cost_ratio:.3f}x advantage), sla "
               f"{longevity.get('sla_violations', 0)} vs "
               f"{naive.get('sla_violations', 0)}")
    return failures, summary


def feature_runs(doc):
    """Index feature-extraction runs by (mode, threads)."""
    out = {}
    for run in doc.get("runs", []):
        out[(run.get("mode"), run.get("threads"))] = run
    return out


def check_features(current, baseline, max_regression):
    """Gates for the feature_extraction format. Returns (failures, summary).

    Absolute gates, never waived: the batch matrix must be bit-identical
    to the scalar reference; the run must cover at least 100k databases
    (the scale the docs/features.md claim is made at); and the best
    batch speedup must stay >= 5x. The speedup floor is absolute rather
    than host-relative because the win is algorithmic (sibling tables
    built once per subscription instead of re-scanned per target), so it
    holds at any core count. Relative: each (mode, threads) speedup is
    held to the committed baseline within --max-regression.
    """
    failures = []
    if not current.get("bit_identical", False):
        failures.append("bit_identical is false (batch extraction diverged "
                        "from the scalar reference)")
    num_dbs = current.get("num_databases", 0)
    if num_dbs < 100000:
        failures.append(
            f"num_databases is {num_dbs}, below the 100000-database floor "
            "the speedup claim is made at (set CLOUDSURV_BENCH_DBS)")
    best = current.get("best_batch_speedup", 0.0)
    if best < 5.0:
        failures.append(
            f"best_batch_speedup is {best:.2f}x, below the absolute 5x "
            "floor (docs/features.md)")

    cur_runs = feature_runs(current)
    for key, base_run in sorted(feature_runs(baseline).items()):
        mode, threads = key
        if mode == "scalar":
            continue
        cur_run = cur_runs.get(key)
        if cur_run is None:
            failures.append(f"baseline config {key} missing from current run")
            continue
        base_speedup = base_run.get("speedup_vs_scalar", 0.0)
        if base_speedup <= 0.0:
            continue
        floor = base_speedup * (1.0 - max_regression)
        cur_speedup = cur_run.get("speedup_vs_scalar", 0.0)
        if cur_speedup < floor:
            failures.append(
                f"speedup regression at mode={mode} threads={threads}: "
                f"{cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x)")

    summary = (f"feature_extraction: best batch speedup {best:.2f}x over "
               f"scalar at {num_dbs} databases, bit-identical")
    return failures, summary


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", required=True,
                    help="bench JSON produced by this run")
    ap.add_argument("--baseline",
                    default="bench/baselines/inference_throughput.json",
                    help="committed baseline JSON")
    ap.add_argument("--max-regression", type=float, default=0.20,
                    help="maximum allowed fractional speedup loss vs "
                         "baseline (default 0.20)")
    args = ap.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    failures = []
    notes = []

    kind = current.get("bench", "inference_throughput")
    base_kind = baseline.get("bench", "inference_throughput")
    if kind != base_kind:
        sys.exit(f"bench_check: current is '{kind}' but baseline is "
                 f"'{base_kind}' — wrong --baseline?")

    if kind in ("telemetry_ingest", "provisioning_policy",
                "feature_extraction"):
        check = {"telemetry_ingest": check_telemetry,
                 "provisioning_policy": check_provisioning,
                 "feature_extraction": check_features}[kind]
        failures, summary = check(current, baseline, args.max_regression)
        if failures:
            for failure in failures:
                print(f"bench_check: FAIL: {failure}", file=sys.stderr)
            sys.exit(1)
        print(f"bench_check: OK ({summary})")
        return

    # Correctness gates: absolute, never waived.
    if not current.get("bit_identical", False):
        failures.append(
            f"bit_identical is false ({current.get('mismatches', '?')} "
            "mismatching predictions vs the legacy path)")
    startup = current.get("startup", {})
    if not startup.get("first_score_identical", False):
        failures.append("startup.first_score_identical is false "
                        "(artifact round-trip changed a score)")

    simd = current.get("simd", {})
    avx2_available = bool(simd.get("avx2_available", False))
    forced_scalar = bool(simd.get("force_scalar", False))
    quantized = bool(current.get("compile", {}).get("quantized", False))

    cur_flat = flat_runs(current)
    base_flat = flat_runs(baseline)

    # Coverage: the sweep must have exercised every kernel this host has.
    kinds_seen = {k[2] for k in cur_flat}
    if "scalar" not in kinds_seen:
        failures.append("no scalar flat runs in current output")
    if avx2_available and not forced_scalar and "avx2" not in kinds_seen:
        failures.append("host reports AVX2 but no avx2 runs were benched")
    if not avx2_available and "avx2" in kinds_seen:
        failures.append("avx2 runs present but simd.avx2_available is "
                        "false — output is inconsistent")

    # Ratio regression per configuration.
    for key, base_run in sorted(base_flat.items()):
        batch_rows, threads, traversal = key
        cur_run = cur_flat.get(key)
        if cur_run is None:
            if traversal == "avx2" and not avx2_available:
                notes.append(f"skip {key}: AVX2 unavailable on this host")
                continue
            if traversal == "quantized" and not quantized:
                notes.append(f"skip {key}: forest did not quantize")
                continue
            failures.append(f"baseline config {key} missing from current "
                            "run")
            continue
        base_speedup = base_run.get("speedup_vs_legacy", 0.0)
        cur_speedup = cur_run.get("speedup_vs_legacy", 0.0)
        if base_speedup <= 0.0:
            notes.append(f"skip {key}: baseline speedup is {base_speedup}")
            continue
        floor = base_speedup * (1.0 - args.max_regression)
        if cur_speedup < floor:
            failures.append(
                f"speedup regression at batch_rows={batch_rows} "
                f"threads={threads} traversal={traversal}: "
                f"{cur_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(floor {floor:.2f}x)")

    for note in notes:
        print(f"bench_check: {note}")
    if failures:
        for failure in failures:
            print(f"bench_check: FAIL: {failure}", file=sys.stderr)
        sys.exit(1)
    best = current.get("best_speedup_at_batch_4096", 0.0)
    print(f"bench_check: OK ({len(base_flat)} baseline configs checked, "
          f"best speedup at batch>=4096: {best:.2f}x)")


if __name__ == "__main__":
    main()
