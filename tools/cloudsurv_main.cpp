// cloudsurv — command-line front end for the library.
//
//   cloudsurv simulate  --region 1 --subs 1500 --seed 7 --out region.csv
//   cloudsurv analyze   --telemetry region.csv [--region 1]
//   cloudsurv train     --telemetry region.csv --out service.model
//   cloudsurv pack      --model service.model --out service.csrv
//   cloudsurv inspect   --model service.csrv
//   cloudsurv assess    --telemetry region.csv --model service.model [--top 20]
//   cloudsurv serve-sim --region 1 --subs 800 --seed 7 --threads 8
//                       --shards 16 --flush-interval 1 [--fault-plan plan.txt]
//   cloudsurv serve-sim --stream --regions 3 --subs 100000 --seed 7
//                       [--partition-days 7] [--verify full|sample|off]
//                       [--verify-sample K]
//
// The CSV format is TelemetryStore::ExportCsv()'s; `analyze` prints the
// survival study (Figure 1 / Observations 3.1-3.3 style), `train`
// builds a LongevityService, `pack` compiles a model into the CSRV
// binary artifact (mmap-able, checksummed — see docs/artifacts.md),
// `inspect` prints an artifact's section table, `assess` scores
// databases and recommends pool placements, and `serve-sim` replays a
// simulated region's event stream through the online ScoringEngine and
// verifies the streamed assessments against the sequential batch path.
// Every command taking --model sniffs the file format: both the text
// form (train's output) and a packed .csrv are accepted.

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>

#include "artifact/format.h"
#include "artifact/reader.h"
#include "common/string_util.h"
#include "core/architecture.h"
#include "core/cohort.h"
#include "core/placement.h"
#include "core/report.h"
#include "core/service.h"
#include "fault/fault.h"
#include "ml/simd/traversal.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "serving/scoring_engine.h"
#include "simulator/region.h"
#include "simulator/simulator.h"
#include "simulator/stream.h"
#include "telemetry/columnar.h"
#include "survival/kaplan_meier.h"
#include "survival/parametric.h"

using namespace cloudsurv;

namespace {

struct Args {
  int region = 1;
  size_t subs = 1500;
  uint64_t seed = 7;
  std::string telemetry_path;
  std::string model_path;
  std::string out_path;
  int top = 20;
  int threads = 8;
  int shards = 16;
  double flush_interval_days = 1.0;
  /// Simulated days between metrics-registry dumps (0 = off).
  double metrics_interval_days = 0.0;
  std::string metrics_out_path;
  std::string split = "histogram";
  /// serve-sim fault-injection & degradation knobs.
  std::string fault_plan_path;
  double deadline_us = 0.0;
  int64_t shed_high = 0;
  int64_t shed_low = 0;
  /// serve-sim inference path: "flat" (compiled SoA forest) or
  /// "legacy" (per-row tree walks).
  std::string inference = "flat";
  /// Rows per traversal block; 0 (the default, not settable via flag)
  /// uses the compiled forest's autotuned size.
  int64_t block_rows = 0;
  /// Traversal kernel for batch scoring: auto, scalar, or avx2.
  std::string traversal = "auto";
  /// serve-sim streaming mode: generate each region's event log with
  /// RegionEventStream instead of materializing it, interleaving
  /// partition pulls across --regions engines.
  bool stream = false;
  int regions = 1;
  double partition_days = 7.0;
  /// Post-replay verification against batch Assess: "full" re-checks
  /// every streamed assessment, "sample" checks --verify-sample of
  /// them per region, "off" skips (the 10M-database setting).
  std::string verify = "full";
  int64_t verify_sample = 2000;
  /// plan: architecture-catalog what-if knobs (docs/provisioning.md).
  std::string catalog_path;
  std::string policies = "naive,longevity,oracle";
  std::string format = "text";
  double maintenance_interval_days = 14.0;
  double grace_days = 45.0;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: cloudsurv <simulate|analyze|train|pack|inspect|assess|"
      "plan|serve-sim> [options]\n"
      "  simulate  --region N --subs N --seed S --out FILE\n"
      "  analyze   --telemetry FILE [--region N]\n"
      "  train     --telemetry FILE --out FILE [--seed S] [--threads N]\n"
      "            [--split exact|histogram]\n"
      "  pack      --model FILE --out FILE.csrv\n"
      "  inspect   --model FILE.csrv\n"
      "  assess    --telemetry FILE --model FILE [--top N]\n"
      "            [--traversal auto|scalar|avx2]\n"
      "  plan      --telemetry FILE --model FILE [--region N]\n"
      "            [--catalog FILE] [--policies LIST] [--format text|json]\n"
      "            [--maintenance-interval DAYS] [--grace-days DAYS]\n"
      "            [--out FILE]\n"
      "  serve-sim --region N --subs N --seed S [--threads N]\n"
      "            [--model FILE] [--shards N] [--flush-interval DAYS]\n"
      "            [--metrics-interval DAYS] [--metrics-out FILE]\n"
      "            [--fault-plan FILE] [--deadline-us US]\n"
      "            [--shed-high N] [--shed-low N]\n"
      "            [--inference flat|legacy] [--block-rows N]\n"
      "            [--traversal auto|scalar|avx2]\n"
      "            [--stream] [--regions N] [--partition-days D]\n"
      "            [--verify full|sample|off] [--verify-sample K]\n"
      "plan replays the region against an architecture catalog under\n"
      "each requested policy (--policies, comma-separated subset of\n"
      "naive,longevity,oracle) and reports dollar-cost / fragmentation /\n"
      "SLA tradeoffs; --catalog loads a text catalog spec (built-in\n"
      "four-tier catalog otherwise) — see docs/provisioning.md.\n"
      "--stream generates events with the streaming simulator (no\n"
      "materialized history) and drives one scoring engine per region,\n"
      "interleaving weekly partitions; incompatible with fault flags.\n"
      "--model accepts both the text format written by train and the\n"
      "CSRV binary artifact written by pack (detected by file magic).\n");
  return 2;
}

// Strict numeric flag parsing: the whole token must parse and satisfy
// the bound, otherwise a Status-style diagnostic is printed and the
// process exits with usage. No more atoi() silently turning garbage
// into 0.
bool ParseInt64Flag(const char* flag, const char* text, int64_t min_value,
                    int64_t* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "InvalidArgument: %s expects an integer, got '%s'\n",
                 flag, text);
    return false;
  }
  if (value < min_value) {
    std::fprintf(stderr,
                 "InvalidArgument: %s must be >= %lld, got '%s'\n", flag,
                 static_cast<long long>(min_value), text);
    return false;
  }
  *out = static_cast<int64_t>(value);
  return true;
}

bool ParseUint64Flag(const char* flag, const char* text, uint64_t* out) {
  if (text[0] == '-') {
    std::fprintf(stderr,
                 "InvalidArgument: %s must be non-negative, got '%s'\n",
                 flag, text);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "InvalidArgument: %s expects an integer, got '%s'\n",
                 flag, text);
    return false;
  }
  *out = static_cast<uint64_t>(value);
  return true;
}

bool ParseDoubleFlag(const char* flag, const char* text, double min_value,
                     bool exclusive, double* out) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !std::isfinite(value)) {
    std::fprintf(stderr,
                 "InvalidArgument: %s expects a number, got '%s'\n", flag,
                 text);
    return false;
  }
  if (exclusive ? value <= min_value : value < min_value) {
    std::fprintf(stderr, "InvalidArgument: %s must be %s %g, got '%s'\n",
                 flag, exclusive ? ">" : ">=", min_value, text);
    return false;
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 2; i < argc; ++i) {
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--region") == 0) {
      const char* v = need_value("--region");
      if (v == nullptr) return false;
      int64_t region = 0;
      if (!ParseInt64Flag("--region", v, 1, &region)) return false;
      args->region = static_cast<int>(region);
    } else if (std::strcmp(argv[i], "--subs") == 0) {
      const char* v = need_value("--subs");
      if (v == nullptr) return false;
      int64_t subs = 0;
      if (!ParseInt64Flag("--subs", v, 1, &subs)) return false;
      args->subs = static_cast<size_t>(subs);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      const char* v = need_value("--seed");
      if (v == nullptr) return false;
      if (!ParseUint64Flag("--seed", v, &args->seed)) return false;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      const char* v = need_value("--telemetry");
      if (v == nullptr) return false;
      args->telemetry_path = v;
    } else if (std::strcmp(argv[i], "--model") == 0) {
      const char* v = need_value("--model");
      if (v == nullptr) return false;
      args->model_path = v;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      const char* v = need_value("--out");
      if (v == nullptr) return false;
      args->out_path = v;
    } else if (std::strcmp(argv[i], "--top") == 0) {
      const char* v = need_value("--top");
      if (v == nullptr) return false;
      int64_t top = 0;
      if (!ParseInt64Flag("--top", v, 0, &top)) return false;
      args->top = static_cast<int>(top);
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      const char* v = need_value("--threads");
      if (v == nullptr) return false;
      int64_t threads = 0;
      if (!ParseInt64Flag("--threads", v, 1, &threads)) return false;
      args->threads = static_cast<int>(threads);
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      const char* v = need_value("--shards");
      if (v == nullptr) return false;
      int64_t shards = 0;
      if (!ParseInt64Flag("--shards", v, 1, &shards)) return false;
      args->shards = static_cast<int>(shards);
    } else if (std::strcmp(argv[i], "--flush-interval") == 0) {
      const char* v = need_value("--flush-interval");
      if (v == nullptr) return false;
      if (!ParseDoubleFlag("--flush-interval", v, 0.0, true,
                           &args->flush_interval_days)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--metrics-interval") == 0) {
      const char* v = need_value("--metrics-interval");
      if (v == nullptr) return false;
      if (!ParseDoubleFlag("--metrics-interval", v, 0.0, false,
                           &args->metrics_interval_days)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--fault-plan") == 0) {
      const char* v = need_value("--fault-plan");
      if (v == nullptr) return false;
      args->fault_plan_path = v;
    } else if (std::strcmp(argv[i], "--deadline-us") == 0) {
      const char* v = need_value("--deadline-us");
      if (v == nullptr) return false;
      if (!ParseDoubleFlag("--deadline-us", v, 0.0, false,
                           &args->deadline_us)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--shed-high") == 0) {
      const char* v = need_value("--shed-high");
      if (v == nullptr) return false;
      if (!ParseInt64Flag("--shed-high", v, 0, &args->shed_high)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--shed-low") == 0) {
      const char* v = need_value("--shed-low");
      if (v == nullptr) return false;
      if (!ParseInt64Flag("--shed-low", v, 0, &args->shed_low)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--inference") == 0) {
      const char* v = need_value("--inference");
      if (v == nullptr) return false;
      args->inference = v;
      if (args->inference != "flat" && args->inference != "legacy") {
        std::fprintf(stderr,
                     "InvalidArgument: --inference must be flat or "
                     "legacy, got '%s'\n",
                     v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--block-rows") == 0) {
      const char* v = need_value("--block-rows");
      if (v == nullptr) return false;
      if (!ParseInt64Flag("--block-rows", v, 1, &args->block_rows)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--traversal") == 0) {
      const char* v = need_value("--traversal");
      if (v == nullptr) return false;
      args->traversal = v;
      ml::simd::TraversalKind kind;
      if (!ml::simd::ParseKind(args->traversal, &kind)) {
        std::fprintf(stderr,
                     "InvalidArgument: --traversal must be auto, scalar "
                     "or avx2, got '%s'\n",
                     v);
        return false;
      }
      // Fail the explicit request up front — scoring would reject it
      // batch by batch anyway, and a flag typo on a non-AVX2 host
      // should not masquerade as a slow run.
      if (kind == ml::simd::TraversalKind::kAvx2 &&
          !ml::simd::Avx2Supported()) {
        std::fprintf(stderr,
                     "InvalidArgument: --traversal avx2 requested but "
                     "this build/CPU has no AVX2 kernel\n");
        return false;
      }
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      args->stream = true;
    } else if (std::strcmp(argv[i], "--regions") == 0) {
      const char* v = need_value("--regions");
      if (v == nullptr) return false;
      int64_t regions = 0;
      if (!ParseInt64Flag("--regions", v, 1, &regions)) return false;
      args->regions = static_cast<int>(regions);
    } else if (std::strcmp(argv[i], "--partition-days") == 0) {
      const char* v = need_value("--partition-days");
      if (v == nullptr) return false;
      if (!ParseDoubleFlag("--partition-days", v, 0.0, true,
                           &args->partition_days)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      const char* v = need_value("--verify");
      if (v == nullptr) return false;
      args->verify = v;
      if (args->verify != "full" && args->verify != "sample" &&
          args->verify != "off") {
        std::fprintf(stderr,
                     "InvalidArgument: --verify must be full, sample or "
                     "off, got '%s'\n",
                     v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--verify-sample") == 0) {
      const char* v = need_value("--verify-sample");
      if (v == nullptr) return false;
      if (!ParseInt64Flag("--verify-sample", v, 1,
                          &args->verify_sample)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      const char* v = need_value("--metrics-out");
      if (v == nullptr) return false;
      args->metrics_out_path = v;
    } else if (std::strcmp(argv[i], "--catalog") == 0) {
      const char* v = need_value("--catalog");
      if (v == nullptr) return false;
      args->catalog_path = v;
    } else if (std::strcmp(argv[i], "--policies") == 0) {
      const char* v = need_value("--policies");
      if (v == nullptr) return false;
      args->policies = v;
      for (const std::string& name : SplitString(args->policies, ',')) {
        if (name != "naive" && name != "longevity" && name != "oracle") {
          std::fprintf(stderr,
                       "InvalidArgument: --policies must be a "
                       "comma-separated subset of naive,longevity,oracle, "
                       "got '%s'\n",
                       name.c_str());
          return false;
        }
      }
    } else if (std::strcmp(argv[i], "--format") == 0) {
      const char* v = need_value("--format");
      if (v == nullptr) return false;
      args->format = v;
      if (args->format != "text" && args->format != "json") {
        std::fprintf(stderr,
                     "InvalidArgument: --format must be text or json, "
                     "got '%s'\n",
                     v);
        return false;
      }
    } else if (std::strcmp(argv[i], "--maintenance-interval") == 0) {
      const char* v = need_value("--maintenance-interval");
      if (v == nullptr) return false;
      if (!ParseDoubleFlag("--maintenance-interval", v, 0.0, true,
                           &args->maintenance_interval_days)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--grace-days") == 0) {
      const char* v = need_value("--grace-days");
      if (v == nullptr) return false;
      if (!ParseDoubleFlag("--grace-days", v, 0.0, true,
                           &args->grace_days)) {
        return false;
      }
    } else if (std::strcmp(argv[i], "--split") == 0) {
      const char* v = need_value("--split");
      if (v == nullptr) return false;
      args->split = v;
      if (args->split != "exact" && args->split != "histogram") {
        std::fprintf(stderr, "--split must be exact or histogram\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IOError("cannot open " + path + " for writing");
  }
  out << content;
  return out ? Status::OK() : Status::IOError("write failed: " + path);
}

// Args::traversal is validated at parse time, so this cannot fail.
ml::simd::TraversalKind TraversalKindFromArgs(const Args& args) {
  ml::simd::TraversalKind kind = ml::simd::TraversalKind::kAuto;
  ml::simd::ParseKind(args.traversal, &kind);
  return kind;
}

// One --model flag, two formats: sniff the file magic and route to the
// CSRV artifact loader (zero-copy mmap) or the text loader. An
// artifact-loaded service arrives already compiled for inference; a
// text-loaded one is compiled by the caller (registry publish) or
// served through the legacy path.
Result<core::LongevityService> LoadServiceModel(const std::string& path) {
  CLOUDSURV_ASSIGN_OR_RETURN(const bool is_artifact,
                             artifact::FileHasArtifactMagic(path));
  if (is_artifact) {
    return core::LongevityService::LoadArtifact(path);
  }
  CLOUDSURV_ASSIGN_OR_RETURN(std::string text, ReadFile(path));
  return core::LongevityService::Load(text);
}

// Loads telemetry from CSV, using the region preset's calendar metadata.
Result<telemetry::TelemetryStore> LoadTelemetry(const Args& args) {
  CLOUDSURV_ASSIGN_OR_RETURN(std::string csv,
                             ReadFile(args.telemetry_path));
  CLOUDSURV_ASSIGN_OR_RETURN(
      simulator::RegionConfig config,
      simulator::MakeRegionPreset(args.region, 1, args.seed));
  return telemetry::TelemetryStore::ImportCsv(
      csv, config.name, config.utc_offset_minutes, config.holidays,
      config.window_start, config.window_end);
}

int CmdSimulate(const Args& args) {
  if (args.out_path.empty()) {
    std::fprintf(stderr, "simulate requires --out\n");
    return 2;
  }
  auto config =
      simulator::MakeRegionPreset(args.region, args.subs, args.seed);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  simulator::SimulationSummary summary;
  auto store = simulator::SimulateRegion(*config, &summary);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  Status written = WriteFile(args.out_path, store->ExportCsv());
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu events (%zu databases, %zu subscriptions) to %s\n",
              summary.num_events, summary.num_databases,
              summary.num_subscriptions, args.out_path.c_str());
  return 0;
}

int CmdAnalyze(const Args& args) {
  if (args.telemetry_path.empty()) {
    std::fprintf(stderr, "analyze requires --telemetry\n");
    return 2;
  }
  auto store = LoadTelemetry(args);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("region %s: %zu databases, %zu events\n",
              store->region_name().c_str(), store->num_databases(),
              store->num_events());

  const auto usage = core::ComputeSubscriptionUsageStats(*store);
  std::printf("subscriptions: %zu (%.1f%% ephemeral-only, %zu mixed); "
              "%.1f%% of databases are ephemeral\n",
              usage.num_subscriptions,
              usage.ephemeral_only_subscription_fraction() * 100.0,
              usage.num_mixed,
              usage.ephemeral_database_fraction() * 100.0);

  auto data = core::CohortSurvivalData(*store, core::CohortFilter{});
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  auto km = survival::KaplanMeierCurve::Fit(*data);
  if (!km.ok()) {
    std::fprintf(stderr, "%s\n", km.status().ToString().c_str());
    return 1;
  }
  std::printf("\nKM survival (2-day-minimum cohort, n=%zu, %zu dropped):\n",
              data->size(), data->num_events());
  std::printf("%s\n", core::KmCurveAsciiPlot(*km, 140, 12, 60).c_str());
  std::printf("S(30)=%.3f S(60)=%.3f S(90)=%.3f S(120)=%.3f\n",
              km->SurvivalAt(30), km->SurvivalAt(60), km->SurvivalAt(90),
              km->SurvivalAt(120));

  auto weibull = survival::FitWeibull(*data);
  if (weibull.ok()) {
    std::printf("Weibull fit: shape=%.3f scale=%.1f days "
                "(shape < 1 means churn risk decays with age)\n",
                weibull->shape, weibull->scale);
  }
  for (auto edition :
       {telemetry::Edition::kBasic, telemetry::Edition::kStandard,
        telemetry::Edition::kPremium}) {
    core::CohortFilter filter;
    filter.edition = edition;
    auto edition_data = core::CohortSurvivalData(*store, filter);
    if (!edition_data.ok() || edition_data->empty()) continue;
    auto edition_km = survival::KaplanMeierCurve::Fit(*edition_data);
    if (!edition_km.ok()) continue;
    std::printf("%-9s n=%6zu S(30)=%.3f\n",
                telemetry::EditionToString(edition), edition_data->size(),
                edition_km->SurvivalAt(30.0));
  }
  return 0;
}

int CmdTrain(const Args& args) {
  if (args.telemetry_path.empty() || args.out_path.empty()) {
    std::fprintf(stderr, "train requires --telemetry and --out\n");
    return 2;
  }
  auto store = LoadTelemetry(args);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  core::LongevityService::Options options;
  options.seed = args.seed;
  options.forest_params.num_threads = std::max(0, args.threads);
  options.forest_params.split_algorithm =
      args.split == "exact" ? ml::SplitAlgorithm::kExact
                            : ml::SplitAlgorithm::kHistogram;
  auto service = core::LongevityService::Train(*store, options);
  if (!service.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  Status written = WriteFile(args.out_path, service->Save());
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("trained on %zu databases; model written to %s\n",
              store->num_databases(), args.out_path.c_str());
  return 0;
}

// Compiles a model file (text or an existing artifact) into the CSRV
// binary artifact and verifies the written file by re-opening it.
int CmdPack(const Args& args) {
  if (args.model_path.empty() || args.out_path.empty()) {
    std::fprintf(stderr,
                 "pack requires --model FILE and --out FILE.csrv\n");
    return 2;
  }
  auto service = LoadServiceModel(args.model_path);
  if (!service.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }
  Status written = service->SaveArtifact(args.out_path);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  // Read the artifact back through the full validation chain so a pack
  // that "succeeded" but produced an unreadable file fails loudly here,
  // not at serve time.
  auto reader = artifact::ArtifactReader::Open(args.out_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "packed file failed verification: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }
  std::printf("packed %s -> %s (%zu bytes, %zu sections, format v%u)\n",
              args.model_path.c_str(), args.out_path.c_str(),
              reader->file_size(), reader->sections().size(),
              reader->format_version());
  return 0;
}

// Prints an artifact's header and section table — the on-disk truth an
// operator checks before rolling back to a persisted model version.
int CmdInspect(const Args& args) {
  if (args.model_path.empty()) {
    std::fprintf(stderr, "inspect requires --model FILE.csrv\n");
    return 2;
  }
  auto reader = artifact::ArtifactReader::Open(args.model_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s\n", reader.status().ToString().c_str());
    return 1;
  }
  const char* payload_name =
      reader->payload() == artifact::PayloadKind::kService
          ? "service"
          : reader->payload() == artifact::PayloadKind::kFlatForest
                ? "flat_forest"
                : "unknown";
  std::printf("%s: CSRV format v%u, payload %s, %zu bytes, %zu sections, "
              "%s\n",
              args.model_path.c_str(), reader->format_version(),
              payload_name, reader->file_size(),
              reader->sections().size(),
              reader->mapped() ? "mmap" : "buffered");
  std::printf("%-16s %5s %10s %10s %10s %5s %10s\n", "section", "slot",
              "offset", "bytes", "count", "elem", "crc32c");
  for (const artifact::SectionEntry& entry : reader->sections()) {
    std::printf("%-16s %5u %10llu %10llu %10llu %5u 0x%08x\n",
                artifact::SectionIdName(
                    static_cast<artifact::SectionId>(entry.id)),
                entry.index,
                static_cast<unsigned long long>(entry.offset),
                static_cast<unsigned long long>(entry.size),
                static_cast<unsigned long long>(entry.count),
                entry.elem_size, entry.crc);
  }
  if (reader->payload() == artifact::PayloadKind::kService) {
    auto meta = reader->Struct<artifact::ServiceMeta>(
        artifact::SectionId::kServiceMeta, 0);
    if (meta.ok()) {
      std::printf("service: observe_days=%g long_threshold_days=%g "
                  "models=%u\n",
                  meta->observe_days, meta->long_threshold_days,
                  meta->num_models);
    }
    for (const artifact::SectionEntry& entry : reader->sections()) {
      if (entry.id !=
          static_cast<uint32_t>(artifact::SectionId::kModelEntry)) {
        continue;
      }
      auto model = reader->Struct<artifact::ModelEntry>(
          artifact::SectionId::kModelEntry, entry.index);
      if (!model.ok()) continue;
      const uint32_t name_len =
          std::min<uint32_t>(model->name_len, artifact::kMaxModelNameLen);
      std::printf("  slot %u: %-10.*s threshold=%.17g\n", model->slot,
                  static_cast<int>(name_len), model->name,
                  model->threshold);
    }
  }
  return 0;
}

int CmdAssess(const Args& args) {
  if (args.telemetry_path.empty() || args.model_path.empty()) {
    std::fprintf(stderr, "assess requires --telemetry and --model\n");
    return 2;
  }
  auto store = LoadTelemetry(args);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  auto service = LoadServiceModel(args.model_path);
  if (!service.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  // One blocked batch over the whole store instead of a per-record
  // Assess loop: the compiled forest streams every extractable row
  // through the selected traversal kernel (bit-identical to per-record
  // scoring; a text-format model without a compiled forest takes the
  // legacy per-row path inside AssessMany).
  std::vector<telemetry::DatabaseId> ids;
  ids.reserve(store->databases().size());
  for (const auto& record : store->databases()) ids.push_back(record.id);
  ml::FlatForest::BatchOptions batch;
  batch.block_rows = static_cast<size_t>(args.block_rows);
  batch.traversal = TraversalKindFromArgs(args);
  auto assessments = service->AssessMany(*store, ids, batch);
  if (!assessments.ok()) {
    std::fprintf(stderr, "assessment failed: %s\n",
                 assessments.status().ToString().c_str());
    return 1;
  }

  std::printf("%-10s %-26s %-8s %7s %-9s %-8s\n", "database", "name",
              "edition", "p(long)", "decision", "pool");
  int shown = 0;
  size_t churn = 0, stable = 0, general = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto& record = store->databases()[i];
    const auto& assessment = (*assessments)[i];
    if (!assessment.has_value()) continue;
    switch (assessment->recommended_pool) {
      case core::Pool::kChurn:
        ++churn;
        break;
      case core::Pool::kStable:
        ++stable;
        break;
      case core::Pool::kGeneral:
        ++general;
        break;
    }
    if (shown < args.top) {
      std::printf("%-10llu %-26s %-8s %7.2f %-9s %-8s\n",
                  static_cast<unsigned long long>(record.id),
                  std::string(record.database_name).c_str(),
                  telemetry::EditionToString(record.initial_edition()),
                  assessment->positive_probability,
                  assessment->confident
                      ? (assessment->predicted_label ? "long" : "short")
                      : "uncertain",
                  core::PoolToString(assessment->recommended_pool));
      ++shown;
    }
  }
  std::printf("\nassessed %zu databases: %zu -> churn, %zu -> stable, "
              "%zu stay general\n",
              churn + stable + general, churn, stable, general);
  return 0;
}

// plan: the cost- and architecture-aware what-if sweep. Scores the
// region with the model, maps predictions onto catalog architectures
// under each requested policy, and prices each plan with the
// deployment replay (docs/provisioning.md has the cost model and a
// worked example).
int CmdPlan(const Args& args) {
  if (args.telemetry_path.empty() || args.model_path.empty()) {
    std::fprintf(stderr, "plan requires --telemetry and --model\n");
    return 2;
  }
  auto store = LoadTelemetry(args);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  auto service = LoadServiceModel(args.model_path);
  if (!service.ok()) {
    std::fprintf(stderr, "model load failed: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  core::ArchitectureCatalog catalog = core::ArchitectureCatalog::Default();
  if (!args.catalog_path.empty()) {
    auto spec_text = ReadFile(args.catalog_path);
    if (!spec_text.ok()) {
      std::fprintf(stderr, "%s\n", spec_text.status().ToString().c_str());
      return 1;
    }
    auto parsed = core::ArchitectureCatalog::Parse(*spec_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.catalog_path.c_str(),
                   parsed.status().ToString().c_str());
      return 1;
    }
    catalog = std::move(*parsed);
  }

  // Score every database once; the per-policy sweeps reuse the same
  // prediction outcomes (with true lifespans attached for the oracle).
  std::vector<telemetry::DatabaseId> ids;
  ids.reserve(store->databases().size());
  for (const auto& record : store->databases()) ids.push_back(record.id);
  ml::FlatForest::BatchOptions batch;
  batch.block_rows = static_cast<size_t>(args.block_rows);
  batch.traversal = TraversalKindFromArgs(args);
  auto assessments = service->AssessMany(*store, ids, batch);
  if (!assessments.ok()) {
    std::fprintf(stderr, "assessment failed: %s\n",
                 assessments.status().ToString().c_str());
    return 1;
  }
  std::vector<core::PredictionOutcome> outcomes;
  outcomes.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const auto& assessment = (*assessments)[i];
    if (!assessment.has_value()) continue;
    const auto record = store->databases()[i];
    const telemetry::Timestamp end =
        record.dropped_at.has_value()
            ? std::min(*record.dropped_at, store->window_end())
            : store->window_end();
    core::PredictionOutcome outcome;
    outcome.id = record.id;
    outcome.predicted_label = assessment->predicted_label;
    outcome.positive_probability = assessment->positive_probability;
    outcome.confident = assessment->confident;
    outcome.duration_days = static_cast<double>(end - record.created_at) /
                            static_cast<double>(telemetry::kSecondsPerDay);
    outcome.observed = record.dropped_at.has_value() &&
                       *record.dropped_at <= store->window_end();
    outcome.true_label = outcome.duration_days > 30.0 ? 1 : 0;
    outcomes.push_back(outcome);
  }

  core::DeploymentConfig deploy;
  deploy.maintenance_interval_days = args.maintenance_interval_days;
  deploy.stale_grace_days = args.grace_days;

  struct PolicyRun {
    std::string policy;
    core::DeploymentReport report;
  };
  std::vector<PolicyRun> runs;
  for (const std::string& name : SplitString(args.policies, ',')) {
    std::unique_ptr<core::PlacementPolicy> policy =
        core::MakePlacementPolicy(name);
    // Names were validated at flag-parse time.
    auto plan = policy->Assign(*store, outcomes, catalog);
    if (!plan.ok()) {
      std::fprintf(stderr, "policy %s failed: %s\n", name.c_str(),
                   plan.status().ToString().c_str());
      return 1;
    }
    auto report = core::SimulateDeployment(*store, *plan, catalog, deploy);
    if (!report.ok()) {
      std::fprintf(stderr, "deployment replay (%s) failed: %s\n",
                   name.c_str(), report.status().ToString().c_str());
      return 1;
    }
    runs.push_back({name, std::move(*report)});
  }

  std::string out;
  if (args.format == "json") {
    out = "{\"region\": \"" + store->region_name() + "\"";
    out += ", \"num_databases\": " + std::to_string(store->num_databases());
    out += ", \"maintenance_interval_days\": " +
           FormatDouble(deploy.maintenance_interval_days, 2);
    out += ", \"grace_days\": " + FormatDouble(deploy.stale_grace_days, 2);
    out += ", \"catalog\": [";
    for (size_t a = 0; a < catalog.size(); ++a) {
      if (a > 0) out += ", ";
      out += "\"" + catalog.at(a).name() + "\"";
    }
    out += "], \"policies\": [";
    for (size_t r = 0; r < runs.size(); ++r) {
      if (r > 0) out += ", ";
      out += "{\"policy\": \"" + runs[r].policy + "\", \"report\": " +
             runs[r].report.ToJson() + "}";
    }
    out += "]}\n";
  } else {
    char line[512];
    std::snprintf(line, sizeof(line),
                  "plan: region %s, %zu databases, maintenance every %s "
                  "days, churn grace %s days\ncatalog:\n",
                  store->region_name().c_str(), store->num_databases(),
                  FormatDouble(deploy.maintenance_interval_days, 1).c_str(),
                  FormatDouble(deploy.stale_grace_days, 1).c_str());
    out += line;
    for (size_t a = 0; a < catalog.size(); ++a) {
      const core::Architecture& arch = catalog.at(a);
      std::snprintf(line, sizeof(line),
                    "  %-12s kind=%-10s %5d DTUs/node x%d  $%s/node-day  "
                    "($%s/DTU-day)\n",
                    arch.name().c_str(),
                    core::ArchitectureKindToString(arch.kind()),
                    arch.node_capacity_dtus(), arch.replicas(),
                    FormatDouble(arch.node_price_per_day(), 2).c_str(),
                    FormatDouble(arch.PricePerDtuDay(), 4).c_str());
      out += line;
    }
    std::snprintf(line, sizeof(line),
                  "\n%-10s %12s %12s %10s %9s %9s %9s %6s %5s %6s\n",
                  "policy", "total_cost", "infra_cost", "ops_cost",
                  "sla_viol", "disrupt", "avoided", "moves", "rej",
                  "frag");
    out += line;
    for (const PolicyRun& run : runs) {
      const core::DeploymentReport& r = run.report;
      std::snprintf(line, sizeof(line),
                    "%-10s %12s %12s %10s %9zu %9zu %9zu %6zu %5zu %6s\n",
                    run.policy.c_str(),
                    FormatDouble(r.total_cost, 2).c_str(),
                    FormatDouble(r.infra_cost, 2).c_str(),
                    FormatDouble(r.ops_cost, 2).c_str(), r.sla_violations,
                    r.disruptions, r.avoided_disruptions, r.moves,
                    r.rejected,
                    FormatDouble(r.mean_fragmentation, 3).c_str());
      out += line;
    }
    for (const PolicyRun& run : runs) {
      std::snprintf(line, sizeof(line), "\nper-architecture (policy=%s):\n",
                    run.policy.c_str());
      out += line;
      for (const core::ArchitectureUsage& u : run.report.per_architecture) {
        std::snprintf(line, sizeof(line),
                      "  %-12s placements=%-6zu peak_nodes=%-4zu "
                      "node_days=%-8s infra=$%-10s ops=$%-8s frag=%s\n",
                      u.name.c_str(), u.placements, u.peak_active_nodes,
                      FormatDouble(u.node_days, 1).c_str(),
                      FormatDouble(u.infra_cost, 2).c_str(),
                      FormatDouble(u.ops_cost, 2).c_str(),
                      FormatDouble(u.mean_fragmentation, 3).c_str());
        out += line;
      }
    }
  }

  if (!args.out_path.empty()) {
    Status written = WriteFile(args.out_path, out);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s report for %zu policies to %s\n",
                args.format.c_str(), runs.size(), args.out_path.c_str());
  } else {
    std::fputs(out.c_str(), stdout);
  }
  return 0;
}

// Streaming serve-sim: one RegionEventStream + ScoringEngine per
// region, partitions interleaved round-robin so every region is live
// at once — the multi-region "serve the planet from one box" setting.
// Events are generated in time order and never materialized as a full
// history; each engine's per-shard columnar stores are the only copy
// of the telemetry. Verification (optional) batch-simulates each
// region afterwards and cross-checks streamed assessments.
int CmdServeSimStream(const Args& args) {
  if (!args.fault_plan_path.empty() || args.deadline_us > 0.0 ||
      args.shed_high > 0) {
    std::fprintf(stderr,
                 "InvalidArgument: --stream does not compose with "
                 "--fault-plan/--deadline-us/--shed-high\n");
    return 2;
  }

  // Model: load from --model, else auto-train on a compact batch
  // simulation — the streaming replay itself never materializes a
  // trainable history.
  std::shared_ptr<core::LongevityService> model;
  if (!args.model_path.empty()) {
    auto loaded = LoadServiceModel(args.model_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    model = std::make_shared<core::LongevityService>(
        std::move(loaded).value());
    std::printf("serving model from %s%s\n", args.model_path.c_str(),
                model->inference_compiled() ? " (compiled artifact)" : "");
  } else {
    const size_t train_subs = std::min<size_t>(args.subs, 600);
    auto train_config =
        simulator::MakeRegionPreset(1, train_subs, args.seed);
    if (!train_config.ok()) {
      std::fprintf(stderr, "%s\n",
                   train_config.status().ToString().c_str());
      return 1;
    }
    auto train_store = simulator::SimulateRegion(*train_config);
    if (!train_store.ok()) {
      std::fprintf(stderr, "%s\n",
                   train_store.status().ToString().c_str());
      return 1;
    }
    core::LongevityService::Options train_options;
    train_options.seed = args.seed;
    auto trained =
        core::LongevityService::Train(*train_store, train_options);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.status().ToString().c_str());
      return 1;
    }
    model = std::make_shared<core::LongevityService>(
        std::move(trained).value());
    std::printf("auto-trained on %zu databases "
                "(batch sim, %zu subscriptions)\n",
                train_store->num_databases(), train_subs);
  }
  // Verification ground truth stays on the legacy per-row path (copy
  // taken before publish compiles the flat layout).
  const auto ground_truth =
      std::make_shared<const core::LongevityService>(*model);
  const bool use_flat = args.inference == "flat";

  simulator::StreamOptions stream_options;
  stream_options.partition_seconds = static_cast<int64_t>(
      args.partition_days *
      static_cast<double>(telemetry::kSecondsPerDay));

  struct RegionRun {
    simulator::RegionConfig config;
    std::optional<simulator::RegionEventStream> stream;
    std::unique_ptr<serving::ScoringEngine> engine;
    std::vector<serving::ScoredDatabase> streamed;
    uint64_t events = 0;
  };
  std::vector<RegionRun> runs;
  runs.reserve(static_cast<size_t>(args.regions));
  for (int r = 1; r <= args.regions; ++r) {
    // Presets cycle 1-2-3; past three regions each copy still gets a
    // distinct seed (and a distinct name) so populations differ.
    auto config = simulator::MakeRegionPreset(
        ((r - 1) % 3) + 1, args.subs,
        args.seed + static_cast<uint64_t>(r - 1));
    if (!config.ok()) {
      std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
      return 1;
    }
    if (args.regions > 3) config->name += "-" + std::to_string(r);
    RegionRun run;
    run.config = *config;
    auto stream =
        simulator::RegionEventStream::Open(run.config, stream_options);
    if (!stream.ok()) {
      std::fprintf(stderr, "%s\n", stream.status().ToString().c_str());
      return 1;
    }
    run.stream.emplace(std::move(*stream));

    serving::RegionContext ctx;
    ctx.region_name = run.config.name;
    ctx.utc_offset_minutes = run.config.utc_offset_minutes;
    ctx.holidays = run.config.holidays;
    ctx.window_start = run.config.window_start;
    ctx.window_end = run.config.window_end;
    serving::ScoringEngine::Options options;
    options.num_threads = static_cast<size_t>(std::max(1, args.threads));
    options.num_shards = static_cast<size_t>(std::max(1, args.shards));
    options.observe_days = model->options().observe_days;
    options.inference_block_rows = static_cast<size_t>(args.block_rows);
    options.inference_traversal = TraversalKindFromArgs(args);
    run.engine = std::make_unique<serving::ScoringEngine>(ctx, options);
    auto version =
        run.engine->registry().Publish("serve-sim-stream", model,
                                       use_flat);
    if (!version.ok()) {
      std::fprintf(stderr, "%s\n", version.status().ToString().c_str());
      return 1;
    }
    runs.push_back(std::move(run));
  }

  std::printf("stream serve-sim: regions=%d subs/region=%zu "
              "partition_days=%.1f threads=%d shards=%d inference=%s\n",
              args.regions, args.subs, args.partition_days, args.threads,
              args.shards, args.inference.c_str());

  // Round-robin partition pulls: every engine ingests its next time
  // slice, then polls at the slice boundary. Ordered ingest keeps each
  // shard's live store readable, so scoring runs directly off the
  // columnar state (no snapshot copies).
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t total_events = 0;
  bool active = true;
  while (active) {
    active = false;
    for (RegionRun& run : runs) {
      if (run.stream->Done()) continue;
      active = true;
      simulator::RegionEventStream::Partition part =
          run.stream->NextPartition();
      run.events += part.events.size();
      total_events += part.events.size();
      for (telemetry::Event& event : part.events) {
        Status ingested = run.engine->Ingest(std::move(event));
        if (!ingested.ok()) {
          std::fprintf(stderr, "ingest failed (%s): %s\n",
                       run.config.name.c_str(),
                       ingested.ToString().c_str());
          return 1;
        }
      }
      auto batch = run.engine->Poll(part.end);
      if (!batch.ok()) {
        std::fprintf(stderr, "poll failed (%s): %s\n",
                     run.config.name.c_str(),
                     batch.status().ToString().c_str());
        return 1;
      }
      run.streamed.insert(run.streamed.end(),
                          std::make_move_iterator(batch->begin()),
                          std::make_move_iterator(batch->end()));
    }
  }
  for (RegionRun& run : runs) {
    auto rest = run.engine->Drain();
    if (!rest.ok()) {
      std::fprintf(stderr, "drain failed (%s): %s\n",
                   run.config.name.c_str(),
                   rest.status().ToString().c_str());
      return 1;
    }
    run.streamed.insert(run.streamed.end(),
                        std::make_move_iterator(rest->begin()),
                        std::make_move_iterator(rest->end()));
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  uint64_t total_dbs = 0;
  for (const RegionRun& run : runs) {
    const serving::EngineMetrics m = run.engine->Metrics();
    const simulator::RegionEventStream::Stats stats =
        run.stream->stats();
    total_dbs += m.databases_tracked;
    std::printf(
        "  %-12s %9llu events %8llu scored  direct_reads=%llu "
        "snapshots=%llu  peak_pending=%zu creation_index=%.1fMB\n",
        run.config.name.c_str(),
        static_cast<unsigned long long>(run.events),
        static_cast<unsigned long long>(m.databases_scored),
        static_cast<unsigned long long>(m.direct_read_batches),
        static_cast<unsigned long long>(m.snapshots_built),
        stats.peak_pending_events,
        static_cast<double>(stats.creation_index_bytes) / 1e6);
  }
  const double resident_bytes =
      telemetry::columnar::GlobalMetrics().resident_bytes->Value();
  std::printf("totals: %llu events, %llu databases in %.1fs "
              "(%.0f events/sec); telemetry resident %.1f MB "
              "(%.1f bytes/database)\n",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_dbs), wall_s,
              static_cast<double>(total_events) / std::max(1e-9, wall_s),
              resident_bytes / 1e6,
              total_dbs == 0
                  ? 0.0
                  : resident_bytes / static_cast<double>(total_dbs));

  if (!args.metrics_out_path.empty()) {
    Status written = WriteFile(args.metrics_out_path,
                               obs::ExportJson(obs::Registry::Default()));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }
  if (args.verify == "off") return 0;

  // Verification: batch-simulate each region (bit-identical stream by
  // construction) and cross-check streamed assessments against the
  // sequential legacy path. One region's batch store is alive at a
  // time.
  size_t total_mismatches = 0;
  for (RegionRun& run : runs) {
    auto batch_store = simulator::SimulateRegion(run.config);
    if (!batch_store.ok()) {
      std::fprintf(stderr, "%s\n",
                   batch_store.status().ToString().c_str());
      return 1;
    }
    size_t mismatches = 0;
    size_t checked = 0;
    if (args.verify == "full") {
      std::unordered_map<telemetry::DatabaseId,
                         core::LongevityService::Assessment>
          batch;
      for (const auto& record : batch_store->databases()) {
        auto assessment = ground_truth->Assess(*batch_store, record.id);
        if (assessment.ok()) batch.emplace(record.id, *assessment);
      }
      if (run.streamed.size() != batch.size()) {
        std::fprintf(stderr,
                     "coverage mismatch (%s): streamed %zu vs batch "
                     "%zu\n",
                     run.config.name.c_str(), run.streamed.size(),
                     batch.size());
        ++mismatches;
      }
      for (const serving::ScoredDatabase& s : run.streamed) {
        ++checked;
        auto it = batch.find(s.database_id);
        if (it == batch.end() ||
            it->second.predicted_label !=
                s.assessment.predicted_label ||
            it->second.positive_probability !=
                s.assessment.positive_probability ||
            it->second.confident != s.assessment.confident) {
          ++mismatches;
        }
      }
    } else {
      // Deterministic stride sample of the streamed assessments.
      const size_t want = static_cast<size_t>(args.verify_sample);
      const size_t stride =
          std::max<size_t>(1, run.streamed.size() / want);
      for (size_t i = 0; i < run.streamed.size(); i += stride) {
        const serving::ScoredDatabase& s = run.streamed[i];
        ++checked;
        auto assessment =
            ground_truth->Assess(*batch_store, s.database_id);
        if (!assessment.ok() ||
            assessment->predicted_label !=
                s.assessment.predicted_label ||
            assessment->positive_probability !=
                s.assessment.positive_probability ||
            assessment->confident != s.assessment.confident) {
          ++mismatches;
        }
      }
    }
    std::printf("verify %-12s checked %zu of %zu streamed -> %s\n",
                run.config.name.c_str(), checked, run.streamed.size(),
                mismatches == 0 ? "IDENTICAL" : "DIVERGED");
    total_mismatches += mismatches;
  }
  return total_mismatches == 0 ? 0 : 1;
}

// Replays a simulated region's event stream through the online
// ScoringEngine, then cross-checks every streamed assessment against
// the sequential batch path (LongevityService::Assess on the final
// store). Exit code 1 on any divergence.
int CmdServeSim(const Args& args) {
  if (args.stream) return CmdServeSimStream(args);
  // Optional deterministic fault plan: parse it first so a bad spec
  // fails fast, before any simulation or training work happens.
  std::unique_ptr<fault::FaultInjector> injector;
  fault::FaultPlan plan;
  if (!args.fault_plan_path.empty()) {
    auto text = ReadFile(args.fault_plan_path);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    std::string parse_error;
    if (!fault::FaultPlan::Parse(*text, &plan, &parse_error)) {
      std::fprintf(stderr, "InvalidArgument: %s\n", parse_error.c_str());
      return 2;
    }
    injector = std::make_unique<fault::FaultInjector>(plan);
    std::printf("fault plan %s: %zu rules, seed %llu, %s\n",
                args.fault_plan_path.c_str(), plan.rules.size(),
                static_cast<unsigned long long>(plan.seed),
                plan.output_neutral() ? "output-neutral"
                                      : "output-affecting");
  }

  auto config =
      simulator::MakeRegionPreset(args.region, args.subs, args.seed);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  auto store = simulator::SimulateRegion(*config);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }
  std::printf("simulated %s: %zu databases, %zu events\n",
              store->region_name().c_str(), store->num_databases(),
              store->num_events());

  std::shared_ptr<core::LongevityService> model;
  if (!args.model_path.empty()) {
    // Serve a pre-trained model (text or .csrv) instead of training
    // in-process — the pack half of the train -> pack -> serve split.
    auto loaded = LoadServiceModel(args.model_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "model load failed: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    model = std::make_shared<core::LongevityService>(
        std::move(loaded).value());
    std::printf("serving model from %s%s\n", args.model_path.c_str(),
                model->inference_compiled() ? " (compiled artifact)" : "");
  } else {
    core::LongevityService::Options train_options;
    train_options.seed = args.seed;
    auto trained = core::LongevityService::Train(*store, train_options);
    if (!trained.ok()) {
      std::fprintf(stderr, "training failed: %s\n",
                   trained.status().ToString().c_str());
      return 1;
    }
    model = std::make_shared<core::LongevityService>(
        std::move(trained).value());
  }
  // Ground truth stays on the legacy per-row path: a copy taken BEFORE
  // the flat layout is compiled at publish time, so the strict
  // comparison below genuinely crosses flat-streamed assessments
  // against legacy-batch ones.
  const auto ground_truth =
      std::make_shared<const core::LongevityService>(*model);

  const bool faults_active = injector != nullptr || args.shed_high > 0 ||
                             args.deadline_us > 0.0;
  const bool use_flat = args.inference == "flat";

  serving::ScoringEngine::Options options;
  options.num_threads = static_cast<size_t>(std::max(1, args.threads));
  options.num_shards = static_cast<size_t>(std::max(1, args.shards));
  options.observe_days = model->options().observe_days;
  options.inference_block_rows = static_cast<size_t>(args.block_rows);
  options.inference_traversal = TraversalKindFromArgs(args);
  if (faults_active) {
    options.fault_injector = injector.get();
    options.batch_deadline_us = args.deadline_us;
    // Charge a nominal virtual cost per assessment so a deadline binds
    // even without injected scoring delays (see docs/operations.md).
    if (args.deadline_us > 0.0) options.assess_virtual_cost_us = 100.0;
    options.shed_high_watermark = static_cast<size_t>(args.shed_high);
    options.shed_low_watermark = static_cast<size_t>(args.shed_low);
    // Degraded mode serves the paper's §4 weighted-random baseline at
    // the training cohort's positive rate (0.5 if the cohort is
    // unavailable) instead of failing the poll.
    double positive_rate = 0.5;
    auto cohort = core::BuildPredictionCohort(
        *store, model->options().observe_days,
        model->options().long_threshold_days);
    if (cohort.ok() && !cohort->labels.empty()) {
      size_t positives = 0;
      for (int label : cohort->labels) positives += label == 1 ? 1 : 0;
      positive_rate = static_cast<double>(positives) /
                      static_cast<double>(cohort->labels.size());
    }
    options.fallback_positive_rate = positive_rate;
    options.fallback_seed = plan.seed;
  }
  serving::ScoringEngine engine(
      serving::RegionContext::FromStore(*store), options);
  auto version =
      engine.registry().Publish("serve-sim-initial", model, use_flat);
  if (!version.ok()) {
    std::fprintf(stderr, "%s\n", version.status().ToString().c_str());
    return 1;
  }

  const auto flush_interval = static_cast<telemetry::Timestamp>(
      std::max(0.01, args.flush_interval_days) *
      static_cast<double>(telemetry::kSecondsPerDay));
  telemetry::Timestamp next_poll = store->window_start() + flush_interval;

  // Periodic observability dumps: every --metrics-interval simulated
  // days, the process-wide registry is written to stdout in Prometheus
  // text exposition format, delimited so a scraper (or a test) can cut
  // the stream into snapshots.
  const bool dump_metrics = args.metrics_interval_days > 0.0;
  const auto metrics_interval = static_cast<telemetry::Timestamp>(
      std::max(0.01, args.metrics_interval_days) *
      static_cast<double>(telemetry::kSecondsPerDay));
  telemetry::Timestamp next_metrics =
      store->window_start() + metrics_interval;
  auto dump_registry = [](telemetry::Timestamp at) {
    std::printf("# --- metrics dump t=%lld ---\n%s# --- end dump ---\n",
                static_cast<long long>(at),
                obs::ExportPrometheusText(obs::Registry::Default())
                    .c_str());
  };

  std::vector<serving::ScoredDatabase> streamed;
  uint64_t ingest_attempts = 0;
  uint64_t ingest_rejected = 0;
  for (const telemetry::Event& event : store->events()) {
    // Strict '>' so events stamped exactly at the boundary are ingested
    // before the poll that may score databases maturing at it.
    while (event.timestamp > next_poll) {
      auto batch = engine.Poll(next_poll);
      if (!batch.ok()) {
        std::fprintf(stderr, "poll failed: %s\n",
                     batch.status().ToString().c_str());
        return 1;
      }
      streamed.insert(streamed.end(), batch->begin(), batch->end());
      next_poll += flush_interval;
    }
    while (dump_metrics && event.timestamp > next_metrics) {
      dump_registry(next_metrics);
      next_metrics += metrics_interval;
    }
    ++ingest_attempts;
    Status ingested = engine.Ingest(event);
    if (!ingested.ok()) {
      if (!faults_active) {
        std::fprintf(stderr, "ingest failed: %s\n",
                     ingested.ToString().c_str());
        return 1;
      }
      // Under a fault plan, rejections are part of the experiment: the
      // engine already counted the reason; keep replaying.
      ++ingest_rejected;
    }
  }
  auto rest = engine.Drain();
  if (!rest.ok()) {
    std::fprintf(stderr, "drain failed: %s\n",
                 rest.status().ToString().c_str());
    return 1;
  }
  streamed.insert(streamed.end(), rest->begin(), rest->end());

  // Final registry state: one Prometheus dump at end-of-stream, and a
  // JSON snapshot to --metrics-out (the bench-artifact format).
  if (dump_metrics) dump_registry(store->window_end());
  if (!args.metrics_out_path.empty()) {
    Status written =
        WriteFile(args.metrics_out_path,
                  obs::ExportJson(obs::Registry::Default()));
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
  }

  // Sequential ground truth over the complete store.
  std::unordered_map<telemetry::DatabaseId,
                     core::LongevityService::Assessment>
      batch;
  for (const auto& record : store->databases()) {
    auto assessment = ground_truth->Assess(*store, record.id);
    if (assessment.ok()) batch.emplace(record.id, *assessment);
  }

  // Strict bit-identity vs the batch path is only claimable when
  // nothing in the run can change outputs: no faults at all, or a plan
  // whose every rule is output-neutral with shedding and deadlines off.
  const bool strict =
      !faults_active ||
      (injector != nullptr && plan.output_neutral() &&
       args.shed_high == 0 && args.deadline_us == 0.0);
  size_t mismatches = 0;
  size_t fallback_served = 0;
  for (const serving::ScoredDatabase& s : streamed) {
    if (s.fallback) {
      // Fallback assessments intentionally diverge from the forest;
      // they are accounted, not compared.
      ++fallback_served;
      continue;
    }
    auto it = batch.find(s.database_id);
    if (it == batch.end() ||
        it->second.predicted_label != s.assessment.predicted_label ||
        it->second.positive_probability !=
            s.assessment.positive_probability ||
        it->second.confident != s.assessment.confident) {
      ++mismatches;
    }
  }
  if (strict && streamed.size() != batch.size()) {
    std::fprintf(stderr,
                 "coverage mismatch: streamed %zu vs batch %zu\n",
                 streamed.size(), batch.size());
    ++mismatches;
  }

  const serving::EngineMetrics metrics = engine.Metrics();
  char block_desc[32];
  if (args.block_rows == 0) {
    std::snprintf(block_desc, sizeof(block_desc), "auto");
  } else {
    std::snprintf(block_desc, sizeof(block_desc), "%lld",
                  static_cast<long long>(args.block_rows));
  }
  std::printf(
      "serve-sim: threads=%zu shards=%zu flush_interval_days=%.2f "
      "inference=%s block_rows=%s traversal=%s\n",
      options.num_threads, options.num_shards,
      std::max(0.01, args.flush_interval_days), args.inference.c_str(),
      block_desc,
      ml::simd::KindName(ml::simd::Resolve(TraversalKindFromArgs(args))));
  std::printf(
      "  events ingested   %llu\n"
      "  polls             %llu\n"
      "  snapshots built   %llu\n"
      "  databases scored  %llu (%llu skipped, %llu cancelled early)\n"
      "  confident         %.1f%%\n"
      "  scoring latency   p50=%.0fus p99=%.0fus\n",
      static_cast<unsigned long long>(metrics.events_ingested),
      static_cast<unsigned long long>(metrics.polls),
      static_cast<unsigned long long>(metrics.snapshots_built),
      static_cast<unsigned long long>(metrics.databases_scored),
      static_cast<unsigned long long>(metrics.databases_skipped),
      static_cast<unsigned long long>(metrics.databases_cancelled),
      metrics.confident_fraction() * 100.0, metrics.scoring_p50_us,
      metrics.scoring_p99_us);

  bool accounting_ok = true;
  if (faults_active) {
    std::printf(
        "fault report:\n"
        "  faults fired      %llu\n"
        "  fallback scored   %llu\n"
        "  deadline batches  %llu\n"
        "  retries           %llu\n"
        "  rejected          shed=%llu error=%llu invalid=%llu\n"
        "  health            %s (%llu transitions)\n",
        static_cast<unsigned long long>(
            injector != nullptr ? injector->total_fired() : 0),
        static_cast<unsigned long long>(metrics.databases_fallback),
        static_cast<unsigned long long>(metrics.deadline_exceeded),
        static_cast<unsigned long long>(metrics.retries),
        static_cast<unsigned long long>(metrics.rejected_shed),
        static_cast<unsigned long long>(metrics.rejected_error),
        static_cast<unsigned long long>(metrics.rejected_invalid),
        serving::HealthStateToString(engine.health()),
        static_cast<unsigned long long>(metrics.health_transitions));
    if (injector != nullptr && injector->total_fired() > 0 &&
        injector->total_fired() <= 40) {
      std::printf("%s", injector->LogToString().c_str());
    }

    // "Zero dropped-without-reason": every ingest attempt is either
    // ingested or rejected with a counted reason, and every tracked
    // database is scored, fallback-scored, skipped or cancelled (the
    // drain leaves nothing pending).
    const uint64_t rejected_total = metrics.rejected_shed +
                                    metrics.rejected_error +
                                    metrics.rejected_invalid;
    if (metrics.events_ingested + rejected_total != ingest_attempts) {
      std::fprintf(stderr,
                   "accounting violation: %llu attempts != %llu ingested "
                   "+ %llu rejected\n",
                   static_cast<unsigned long long>(ingest_attempts),
                   static_cast<unsigned long long>(metrics.events_ingested),
                   static_cast<unsigned long long>(rejected_total));
      accounting_ok = false;
    }
    const uint64_t accounted =
        metrics.databases_scored + metrics.databases_fallback +
        metrics.databases_skipped + metrics.databases_cancelled;
    if (accounted != metrics.databases_tracked) {
      std::fprintf(stderr,
                   "accounting violation: %llu tracked != %llu scored + "
                   "fallback + skipped + cancelled\n",
                   static_cast<unsigned long long>(
                       metrics.databases_tracked),
                   static_cast<unsigned long long>(accounted));
      accounting_ok = false;
    }
    std::printf("accounting (%llu attempts, %llu tracked): %s\n",
                static_cast<unsigned long long>(ingest_attempts),
                static_cast<unsigned long long>(metrics.databases_tracked),
                accounting_ok ? "OK" : "VIOLATION");
    if (ingest_rejected > 0) {
      std::printf("  (%llu ingest attempts rejected during replay)\n",
                  static_cast<unsigned long long>(ingest_rejected));
    }
  }

  std::printf("verification vs sequential Assess: %zu streamed "
              "(%zu fallback), %zu mismatches -> %s%s\n",
              streamed.size(), fallback_served, mismatches,
              mismatches == 0 ? "IDENTICAL" : "DIVERGED",
              strict ? "" : " (advisory: configuration may affect outputs)");
  if (!accounting_ok) return 1;
  if (strict && mismatches != 0) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage();
  const std::string command = argv[1];
  if (command == "simulate") return CmdSimulate(args);
  if (command == "analyze") return CmdAnalyze(args);
  if (command == "train") return CmdTrain(args);
  if (command == "pack") return CmdPack(args);
  if (command == "inspect") return CmdInspect(args);
  if (command == "assess") return CmdAssess(args);
  if (command == "plan") return CmdPlan(args);
  if (command == "serve-sim") return CmdServeSim(args);
  std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
  return Usage();
}
