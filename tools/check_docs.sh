#!/bin/sh
# Docs <-> code consistency check for the metrics reference.
#
# Every metric name registered anywhere under src/ (any string literal
# of the form "cloudsurv_<...>") must have a row in the reference table
# of docs/observability.md, and every table row must correspond to a
# registration in src/ — so the table cannot silently rot in either
# direction. CI runs this; run it locally from the repo root:
#
#   sh tools/check_docs.sh
set -eu

REPO_ROOT=$(dirname "$0")/..
DOC="$REPO_ROOT/docs/observability.md"
SRC="$REPO_ROOT/src"

if [ ! -f "$DOC" ]; then
  echo "check_docs: $DOC not found" >&2
  exit 1
fi

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Names registered in code: string literals "cloudsurv_..." in src/.
# Metric names are the only such literals by convention (library
# targets are cloudsurv_* but never appear quoted in sources).
grep -rhoE '"cloudsurv_[a-z0-9_]+"' "$SRC" | tr -d '"' | sort -u \
  > "$WORK/code_names"

# Names documented in the reference table: rows beginning `| \`cloudsurv_`.
grep -hoE '^\| `cloudsurv_[a-z0-9_]+`' "$DOC" | tr -d '|` ' | sort -u \
  > "$WORK/doc_names"

STATUS=0
UNDOCUMENTED=$(comm -23 "$WORK/code_names" "$WORK/doc_names")
if [ -n "$UNDOCUMENTED" ]; then
  echo "check_docs: metrics registered in src/ but missing from the" >&2
  echo "docs/observability.md reference table:" >&2
  echo "$UNDOCUMENTED" | sed 's/^/  /' >&2
  STATUS=1
fi

STALE=$(comm -13 "$WORK/code_names" "$WORK/doc_names")
if [ -n "$STALE" ]; then
  echo "check_docs: table rows in docs/observability.md with no" >&2
  echo "matching registration in src/:" >&2
  echo "$STALE" | sed 's/^/  /' >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "check_docs: $(wc -l < "$WORK/code_names" | tr -d ' ') metric" \
       "names consistent between src/ and docs/observability.md"
fi
exit $STATUS
