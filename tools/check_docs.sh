#!/bin/sh
# Docs <-> code consistency checks, bidirectional so neither side can
# silently rot:
#
#   1. Every metric name registered anywhere under src/ (any string
#      literal of the form "cloudsurv_<...>") must have a row in the
#      reference table of docs/observability.md, and vice versa.
#   2. Every field of ScoringEngine::Options must have a knob row
#      (`| \`name\` |`) in docs/operations.md, and vice versa.
#   3. Every relative markdown link in docs/*.md and README.md must
#      point at a file or directory that exists.
#   4. Every CLI verb dispatched in tools/cloudsurv_main.cpp must be
#      listed in the Usage() text and shown as `cloudsurv <verb>` in
#      README.md or docs/, and vice versa (no phantom verbs in docs).
#   5. Every flag in the Usage() `plan` block must have a row in the
#      docs/provisioning.md flag table (between the plan-flag-table
#      markers), and vice versa.
#   6. Every catalog spec key accepted by src/core/architecture.cc
#      (the catalog-key-registry block) must have a row in the
#      docs/provisioning.md key table, and vice versa.
#
# CI runs this; run it locally from the repo root:
#
#   sh tools/check_docs.sh
set -eu

REPO_ROOT=$(dirname "$0")/..
DOC="$REPO_ROOT/docs/observability.md"
OPS_DOC="$REPO_ROOT/docs/operations.md"
OPTIONS_HDR="$REPO_ROOT/src/serving/scoring_engine.h"
SRC="$REPO_ROOT/src"

for f in "$DOC" "$OPS_DOC" "$OPTIONS_HDR"; do
  if [ ! -f "$f" ]; then
    echo "check_docs: $f not found" >&2
    exit 1
  fi
done

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

# Names registered in code: string literals "cloudsurv_..." in src/.
# Metric names are the only such literals by convention (library
# targets are cloudsurv_* but never appear quoted in sources).
grep -rhoE '"cloudsurv_[a-z0-9_]+"' "$SRC" | tr -d '"' | sort -u \
  > "$WORK/code_names"

# Names documented in the reference table: rows beginning `| \`cloudsurv_`.
grep -hoE '^\| `cloudsurv_[a-z0-9_]+`' "$DOC" | tr -d '|` ' | sort -u \
  > "$WORK/doc_names"

STATUS=0
UNDOCUMENTED=$(comm -23 "$WORK/code_names" "$WORK/doc_names")
if [ -n "$UNDOCUMENTED" ]; then
  echo "check_docs: metrics registered in src/ but missing from the" >&2
  echo "docs/observability.md reference table:" >&2
  echo "$UNDOCUMENTED" | sed 's/^/  /' >&2
  STATUS=1
fi

STALE=$(comm -13 "$WORK/code_names" "$WORK/doc_names")
if [ -n "$STALE" ]; then
  echo "check_docs: table rows in docs/observability.md with no" >&2
  echo "matching registration in src/:" >&2
  echo "$STALE" | sed 's/^/  /' >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "check_docs: $(wc -l < "$WORK/code_names" | tr -d ' ') metric" \
       "names consistent between src/ and docs/observability.md"
fi

# --- ScoringEngine::Options knobs <-> docs/operations.md ------------
# Field names declared inside `struct Options { ... };`.
sed -n '/struct Options {/,/^  };/p' "$OPTIONS_HDR" \
  | grep -oE '[a-z_][a-z0-9_]* =' | sed 's/ =$//' | sort -u \
  > "$WORK/knob_code"

# Knob rows in the runbook table: `| \`name\` |` with a plain
# identifier (metric rows in the triage table carry cloudsurv_ names
# and are checked against src/ above, not against Options).
grep -hoE '^\| `[a-z_][a-z0-9_]*`' "$OPS_DOC" | tr -d '|` ' \
  | grep -v '^cloudsurv_' | sort -u > "$WORK/knob_doc"

UNDOCUMENTED_KNOBS=$(comm -23 "$WORK/knob_code" "$WORK/knob_doc")
if [ -n "$UNDOCUMENTED_KNOBS" ]; then
  echo "check_docs: ScoringEngine::Options fields missing from the" >&2
  echo "docs/operations.md knob table:" >&2
  echo "$UNDOCUMENTED_KNOBS" | sed 's/^/  /' >&2
  STATUS=1
fi

STALE_KNOBS=$(comm -13 "$WORK/knob_code" "$WORK/knob_doc")
if [ -n "$STALE_KNOBS" ]; then
  echo "check_docs: knob rows in docs/operations.md with no matching" >&2
  echo "field in ScoringEngine::Options:" >&2
  echo "$STALE_KNOBS" | sed 's/^/  /' >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "check_docs: $(wc -l < "$WORK/knob_code" | tr -d ' ') Options" \
       "knobs consistent between scoring_engine.h and docs/operations.md"
fi

# --- Markdown link targets exist ------------------------------------
LINKS_CHECKED=0
for md in "$REPO_ROOT"/docs/*.md "$REPO_ROOT/README.md"; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Inline links: ](target). Skip absolute URLs, anchors and mailto;
  # strip any trailing #anchor before testing existence.
  for target in $(grep -oE '\]\([^)]+\)' "$md" \
                    | sed 's/^](//; s/)$//' \
                    | grep -vE '^(https?:|mailto:|#)' \
                    | sed 's/#.*$//' | grep -v '^$' | sort -u); do
    LINKS_CHECKED=$((LINKS_CHECKED + 1))
    if [ ! -e "$dir/$target" ]; then
      echo "check_docs: broken link in $(basename "$md"): $target" >&2
      STATUS=1
    fi
  done
done

if [ "$STATUS" -eq 0 ]; then
  echo "check_docs: $LINKS_CHECKED relative doc links resolve"
fi

# --- CLI verbs <-> Usage() and docs ---------------------------------
CLI_MAIN="$REPO_ROOT/tools/cloudsurv_main.cpp"
if [ ! -f "$CLI_MAIN" ]; then
  echo "check_docs: $CLI_MAIN not found" >&2
  exit 1
fi
# Verbs the binary actually dispatches.
grep -oE 'command == "[a-z-]+"' "$CLI_MAIN" \
  | sed 's/.*"\(.*\)"/\1/' | sort -u > "$WORK/verbs"
sed -n '/^int Usage/,/^}/p' "$CLI_MAIN" > "$WORK/usage"
VERB_COUNT=0
while read -r verb; do
  VERB_COUNT=$((VERB_COUNT + 1))
  if ! grep -q "$verb" "$WORK/usage"; then
    echo "check_docs: CLI verb '$verb' is dispatched but missing from" >&2
    echo "the Usage() text in tools/cloudsurv_main.cpp" >&2
    STATUS=1
  fi
  if ! grep -qE "cloudsurv +$verb\b" "$REPO_ROOT/README.md" \
       "$REPO_ROOT"/docs/*.md; then
    echo "check_docs: CLI verb '$verb' has no 'cloudsurv $verb' usage" >&2
    echo "example in README.md or docs/" >&2
    STATUS=1
  fi
done < "$WORK/verbs"

# The reverse direction: every `cloudsurv <verb>` shown in docs must be
# a real dispatched verb (catches docs referencing removed commands).
grep -hoE 'cloudsurv +[a-z][a-z-]+\b' "$REPO_ROOT/README.md" \
    "$REPO_ROOT"/docs/*.md \
  | sed 's/cloudsurv *//' | sort -u > "$WORK/doc_verbs"
PHANTOM=$(comm -13 "$WORK/verbs" "$WORK/doc_verbs")
if [ -n "$PHANTOM" ]; then
  echo "check_docs: docs show 'cloudsurv <verb>' invocations the binary" >&2
  echo "does not dispatch:" >&2
  echo "$PHANTOM" | sed 's/^/  /' >&2
  STATUS=1
fi

if [ "$STATUS" -eq 0 ]; then
  echo "check_docs: $VERB_COUNT CLI verbs consistent between" \
       "cloudsurv_main.cpp, Usage(), and docs"
fi

# --- `plan` flags <-> docs/provisioning.md flag table ---------------
# The Usage() plan block is the source of truth for the verb's flags;
# docs/provisioning.md documents each one in a marker-delimited table.
PROV_DOC="$REPO_ROOT/docs/provisioning.md"
if [ ! -f "$PROV_DOC" ]; then
  echo "check_docs: $PROV_DOC not found" >&2
  exit 1
fi
sed -n '/"  plan      /,/"  serve-sim /p' "$WORK/usage" \
  | grep -v '"  serve-sim ' \
  | grep -oE '\-\-[a-z-]+' | sort -u > "$WORK/plan_flags_code"
sed -n '/<!-- plan-flag-table-begin -->/,/<!-- plan-flag-table-end -->/p' \
    "$PROV_DOC" \
  | grep -oE '^\| `--[a-z-]+`' | tr -d '|` ' | sort -u \
  > "$WORK/plan_flags_doc"

UNDOCUMENTED_FLAGS=$(comm -23 "$WORK/plan_flags_code" "$WORK/plan_flags_doc")
if [ -n "$UNDOCUMENTED_FLAGS" ]; then
  echo "check_docs: plan flags in Usage() missing from the" >&2
  echo "docs/provisioning.md flag table:" >&2
  echo "$UNDOCUMENTED_FLAGS" | sed 's/^/  /' >&2
  STATUS=1
fi
STALE_FLAGS=$(comm -13 "$WORK/plan_flags_code" "$WORK/plan_flags_doc")
if [ -n "$STALE_FLAGS" ]; then
  echo "check_docs: flag rows in docs/provisioning.md with no matching" >&2
  echo "flag in the Usage() plan block:" >&2
  echo "$STALE_FLAGS" | sed 's/^/  /' >&2
  STATUS=1
fi
if [ "$STATUS" -eq 0 ]; then
  echo "check_docs: $(wc -l < "$WORK/plan_flags_code" | tr -d ' ') plan" \
       "flags consistent between Usage() and docs/provisioning.md"
fi

# --- Catalog spec keys <-> docs/provisioning.md key table -----------
# The parser's key registry in src/core/architecture.cc (between the
# catalog-key-registry markers) must match the documented key table.
ARCH_CC="$REPO_ROOT/src/core/architecture.cc"
if [ ! -f "$ARCH_CC" ]; then
  echo "check_docs: $ARCH_CC not found" >&2
  exit 1
fi
sed -n '/catalog-key-registry-begin/,/catalog-key-registry-end/p' \
    "$ARCH_CC" \
  | grep -oE '"[a-z_]+"' | tr -d '"' | sort -u > "$WORK/catalog_keys_code"
sed -n '/<!-- catalog-key-table-begin -->/,/<!-- catalog-key-table-end -->/p' \
    "$PROV_DOC" \
  | grep -oE '^\| `[a-z_]+`' | tr -d '|` ' | sort -u \
  > "$WORK/catalog_keys_doc"

UNDOCUMENTED_KEYS=$(comm -23 "$WORK/catalog_keys_code" \
                             "$WORK/catalog_keys_doc")
if [ -n "$UNDOCUMENTED_KEYS" ]; then
  echo "check_docs: catalog keys accepted by architecture.cc missing" >&2
  echo "from the docs/provisioning.md key table:" >&2
  echo "$UNDOCUMENTED_KEYS" | sed 's/^/  /' >&2
  STATUS=1
fi
STALE_KEYS=$(comm -13 "$WORK/catalog_keys_code" "$WORK/catalog_keys_doc")
if [ -n "$STALE_KEYS" ]; then
  echo "check_docs: key rows in docs/provisioning.md with no matching" >&2
  echo "entry in the architecture.cc key registry:" >&2
  echo "$STALE_KEYS" | sed 's/^/  /' >&2
  STATUS=1
fi
if [ "$STATUS" -eq 0 ]; then
  echo "check_docs: $(wc -l < "$WORK/catalog_keys_code" | tr -d ' ')" \
       "catalog keys consistent between architecture.cc and" \
       "docs/provisioning.md"
fi
exit $STATUS
