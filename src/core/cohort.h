#ifndef CLOUDSURV_CORE_COHORT_H_
#define CLOUDSURV_CORE_COHORT_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "survival/survival_data.h"
#include "telemetry/store.h"

namespace cloudsurv::core {

/// The paper's lifespan taxonomy (section 3.3): ephemeral T <= 2 days,
/// short-lived 2 < T <= 30 days, long-lived T > 30 days. A censored
/// database whose observed span has not yet crossed a class boundary is
/// kUnknown for classification purposes (it still contributes to KM
/// estimates as a censored observation).
enum class LifespanClass {
  kEphemeral = 0,
  kShortLived = 1,
  kLongLived = 2,
  kUnknown = 3,
};

inline constexpr double kEphemeralMaxDays = 2.0;
inline constexpr double kShortLivedMaxDays = 30.0;

const char* LifespanClassToString(LifespanClass c);

/// Classifies one database given everything visible up to the store's
/// window end. Dropped databases classify exactly; censored databases
/// classify as long-lived once their observed span exceeds
/// `long_threshold_days`, and as kUnknown otherwise.
LifespanClass ClassifyLifespan(const telemetry::DatabaseRecord& record,
                               telemetry::Timestamp window_end,
                               double ephemeral_threshold_days =
                                   kEphemeralMaxDays,
                               double long_threshold_days =
                                   kShortLivedMaxDays);

/// Filters for assembling survival-study populations.
struct CohortFilter {
  /// Keep only databases that survived at least this many days ("2 day
  /// survival minimum" of Figure 1). 0 disables.
  double min_survival_days = kEphemeralMaxDays;
  /// Keep only databases created under this edition (creation edition,
  /// so subgroups stay mutually exclusive — section 5.1).
  std::optional<telemetry::Edition> edition;
  /// If set, keep only databases that did / did not change edition
  /// during their observed lifetime (the "changed"/"always" split of
  /// Figure 3).
  std::optional<bool> changed_edition;
};

/// Ids of databases passing the filter, ordered by id.
std::vector<telemetry::DatabaseId> SelectCohort(
    const telemetry::TelemetryStore& store, const CohortFilter& filter);

/// Builds right-censored survival data for the filtered cohort:
/// duration = observed lifespan (days), event = dropped inside the
/// window.
Result<survival::SurvivalData> CohortSurvivalData(
    const telemetry::TelemetryStore& store, const CohortFilter& filter);

/// Survival data for an explicit id list (e.g. test-set databases split
/// by predicted class).
Result<survival::SurvivalData> SurvivalDataForIds(
    const telemetry::TelemetryStore& store,
    const std::vector<telemetry::DatabaseId>& ids);

/// The supervised task population for "after x days, will the database
/// live more than y days?" (section 4.1): databases alive at x days
/// whose label is determined (dropped, or censored with > y days
/// observed). Parallel arrays.
struct PredictionCohort {
  std::vector<telemetry::DatabaseId> ids;
  std::vector<int> labels;  ///< 1 = long-lived (> y days), 0 otherwise.
  /// Observed lifespan (days) and drop indicator, for KM curves of
  /// classified groups.
  std::vector<double> durations;
  std::vector<bool> observed;
  /// Databases excluded because their label is still unknown
  /// (censored before y days).
  size_t num_unknown_excluded = 0;
};

/// Builds the prediction cohort for the given x/y and optional creation
/// edition restriction.
Result<PredictionCohort> BuildPredictionCohort(
    const telemetry::TelemetryStore& store, double observe_days,
    double long_threshold_days,
    std::optional<telemetry::Edition> edition = std::nullopt);

/// Subscription-level usage statistics backing Observation 3.1.
struct SubscriptionUsageStats {
  size_t num_subscriptions = 0;
  /// Subscriptions all of whose databases are ephemeral.
  size_t num_ephemeral_only = 0;
  /// Subscriptions owning both ephemeral and non-ephemeral databases.
  size_t num_mixed = 0;
  size_t num_databases = 0;
  size_t num_ephemeral_databases = 0;

  double ephemeral_only_subscription_fraction() const {
    return num_subscriptions == 0
               ? 0.0
               : static_cast<double>(num_ephemeral_only) /
                     static_cast<double>(num_subscriptions);
  }
  double ephemeral_database_fraction() const {
    return num_databases == 0
               ? 0.0
               : static_cast<double>(num_ephemeral_databases) /
                     static_cast<double>(num_databases);
  }
};

/// Computes Observation 3.1-style statistics over the whole store.
/// Censored databases with < 2 observed days count as ephemeral here
/// (conservative; they are a tiny sliver of the window).
SubscriptionUsageStats ComputeSubscriptionUsageStats(
    const telemetry::TelemetryStore& store);

/// Identifies subscriptions exhibiting Observation 3.1's frequent-
/// cycling pattern, using only telemetry visible at `as_of`: at least
/// `min_databases` databases already dropped within the ephemeral
/// threshold, and no database ever observed past it. The paper's
/// actionable takeaway: "by simply looking at historical data, we can
/// identify customers that follow this pattern, and keep their
/// databases separately".
std::vector<telemetry::SubscriptionId> IdentifyEphemeralCyclers(
    const telemetry::TelemetryStore& store, telemetry::Timestamp as_of,
    size_t min_databases = 3,
    double ephemeral_threshold_days = kEphemeralMaxDays);

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_COHORT_H_
