#include "core/cohort.h"

namespace cloudsurv::core {

using telemetry::DatabaseId;
using telemetry::DatabaseRecord;
using telemetry::TelemetryStore;

const char* LifespanClassToString(LifespanClass c) {
  switch (c) {
    case LifespanClass::kEphemeral:
      return "ephemeral";
    case LifespanClass::kShortLived:
      return "short-lived";
    case LifespanClass::kLongLived:
      return "long-lived";
    case LifespanClass::kUnknown:
      return "unknown";
  }
  return "unknown";
}

LifespanClass ClassifyLifespan(const DatabaseRecord& record,
                               telemetry::Timestamp window_end,
                               double ephemeral_threshold_days,
                               double long_threshold_days) {
  const double observed = record.ObservedLifespanDays(window_end);
  const bool dropped =
      record.dropped_at.has_value() && *record.dropped_at <= window_end;
  if (dropped) {
    if (observed <= ephemeral_threshold_days) return LifespanClass::kEphemeral;
    if (observed <= long_threshold_days) return LifespanClass::kShortLived;
    return LifespanClass::kLongLived;
  }
  // Censored: only a lower bound on T is known.
  if (observed > long_threshold_days) return LifespanClass::kLongLived;
  return LifespanClass::kUnknown;
}

std::vector<DatabaseId> SelectCohort(const TelemetryStore& store,
                                     const CohortFilter& filter) {
  std::vector<DatabaseId> out;
  for (const DatabaseRecord& record : store.databases()) {
    const double observed =
        record.ObservedLifespanDays(store.window_end());
    if (observed < filter.min_survival_days) continue;
    if (filter.edition.has_value() &&
        record.initial_edition() != *filter.edition) {
      continue;
    }
    if (filter.changed_edition.has_value() &&
        record.ChangedEditionDuringLifetime() != *filter.changed_edition) {
      continue;
    }
    out.push_back(record.id);
  }
  return out;
}

Result<survival::SurvivalData> CohortSurvivalData(
    const TelemetryStore& store, const CohortFilter& filter) {
  return SurvivalDataForIds(store, SelectCohort(store, filter));
}

Result<survival::SurvivalData> SurvivalDataForIds(
    const TelemetryStore& store, const std::vector<DatabaseId>& ids) {
  std::vector<survival::Observation> obs;
  obs.reserve(ids.size());
  for (DatabaseId id : ids) {
    CLOUDSURV_ASSIGN_OR_RETURN(const DatabaseRecord record,
                               store.FindDatabase(id));
    survival::Observation o;
    o.duration = record.ObservedLifespanDays(store.window_end());
    o.observed = record.dropped_at.has_value() &&
                 *record.dropped_at <= store.window_end();
    obs.push_back(o);
  }
  return survival::SurvivalData::Make(std::move(obs));
}

Result<PredictionCohort> BuildPredictionCohort(
    const TelemetryStore& store, double observe_days,
    double long_threshold_days, std::optional<telemetry::Edition> edition) {
  if (observe_days <= 0.0 || long_threshold_days <= observe_days) {
    return Status::InvalidArgument(
        "need 0 < observe_days < long_threshold_days");
  }
  PredictionCohort cohort;
  for (const DatabaseRecord& record : store.databases()) {
    if (edition.has_value() && record.initial_edition() != *edition) {
      continue;
    }
    const double observed =
        record.ObservedLifespanDays(store.window_end());
    // Prediction is made observe_days after creation; the database must
    // be alive then (section 4.1).
    if (observed < observe_days) continue;
    const bool dropped = record.dropped_at.has_value() &&
                         *record.dropped_at <= store.window_end();
    int label;
    if (observed > long_threshold_days) {
      label = 1;  // survived past y days (drop later or censored later)
    } else if (dropped) {
      label = 0;  // dropped within (x, y]
    } else {
      // Censored before the y-day boundary: outcome unknown.
      ++cohort.num_unknown_excluded;
      continue;
    }
    cohort.ids.push_back(record.id);
    cohort.labels.push_back(label);
    cohort.durations.push_back(observed);
    cohort.observed.push_back(dropped);
  }
  return cohort;
}

std::vector<telemetry::SubscriptionId> IdentifyEphemeralCyclers(
    const TelemetryStore& store, telemetry::Timestamp as_of,
    size_t min_databases, double ephemeral_threshold_days) {
  std::vector<telemetry::SubscriptionId> cyclers;
  for (telemetry::SubscriptionId sub : store.AllSubscriptions()) {
    size_t resolved_ephemeral = 0;
    bool disqualified = false;
    for (DatabaseId id : store.DatabasesOfSubscription(sub)) {
      auto record = store.FindDatabase(id);
      if (!record.ok()) continue;
      const DatabaseRecord& r = *record;
      if (r.created_at > as_of) continue;  // not visible yet
      const double observed = r.ObservedLifespanDays(as_of);
      const bool dropped = r.IsDroppedBy(as_of);
      if (observed > ephemeral_threshold_days) {
        disqualified = true;  // outlived the ephemeral window
        break;
      }
      if (dropped) ++resolved_ephemeral;
    }
    if (!disqualified && resolved_ephemeral >= min_databases) {
      cyclers.push_back(sub);
    }
  }
  return cyclers;
}

SubscriptionUsageStats ComputeSubscriptionUsageStats(
    const TelemetryStore& store) {
  SubscriptionUsageStats stats;
  for (telemetry::SubscriptionId sub : store.AllSubscriptions()) {
    const auto& dbs = store.DatabasesOfSubscription(sub);
    if (dbs.empty()) continue;
    ++stats.num_subscriptions;
    size_t ephemeral = 0;
    for (DatabaseId id : dbs) {
      auto record = store.FindDatabase(id);
      if (!record.ok()) continue;
      ++stats.num_databases;
      const double observed =
          (*record).ObservedLifespanDays(store.window_end());
      if (observed <= kEphemeralMaxDays) {
        ++ephemeral;
        ++stats.num_ephemeral_databases;
      }
    }
    if (ephemeral == dbs.size()) {
      ++stats.num_ephemeral_only;
    } else if (ephemeral > 0) {
      ++stats.num_mixed;
    }
  }
  return stats;
}

}  // namespace cloudsurv::core
