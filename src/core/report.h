#ifndef CLOUDSURV_CORE_REPORT_H_
#define CLOUDSURV_CORE_REPORT_H_

#include <string>
#include <vector>

#include "core/prediction.h"
#include "survival/kaplan_meier.h"

namespace cloudsurv::core {

/// Renders a KM curve as "day<TAB>S(day)" rows on an integer day grid
/// [0, max_day], one row per `stride` days — the data behind the
/// paper's figures, ready to paste into a plotting tool.
std::string KmCurveSeries(const survival::KaplanMeierCurve& curve,
                          int max_day, int stride = 5);

/// Renders several labelled curves side by side:
/// "day<TAB>label1<TAB>label2..." on a shared grid.
std::string KmCurveSeriesMulti(
    const std::vector<std::pair<std::string, survival::KaplanMeierCurve>>&
        curves,
    int max_day, int stride = 5);

/// Renders one KM curve as an ASCII plot (survival on the y axis).
std::string KmCurveAsciiPlot(const survival::KaplanMeierCurve& curve,
                             int max_day, int height = 12, int width = 60);

/// "accuracy precision recall" row pair for forest vs baseline,
/// matching one Figure 5 panel.
std::string ScoreComparisonRow(const std::string& label,
                               const ml::ClassificationScores& forest,
                               const ml::ClassificationScores& baseline);

/// Four-way row (all/confident/uncertain/baseline) matching one
/// Figure 7 panel.
std::string ConfidenceComparisonRow(const SubgroupExperimentResult& result);

/// Formats a p-value the way the paper reports them ("< 0.0000001" for
/// tiny values, fixed decimals otherwise).
std::string FormatPValue(double p);

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_REPORT_H_
