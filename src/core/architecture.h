#ifndef CLOUDSURV_CORE_ARCHITECTURE_H_
#define CLOUDSURV_CORE_ARCHITECTURE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace cloudsurv::core {

/// Backend node architectures for longevity-guided provisioning
/// (paper section 3.1; the design-space idiom follows the OLTP
/// cloud-architecture line of work, where deployments are pluggable
/// architecture classes built over a resource/price catalog).
///
/// Each kind encodes an operational contract, not just a price point:
///
/// - `kDense`   — dense-cheap churn nodes: DTUs are overcommitted so the
///   per-DTU price is the lowest in the catalog, and non-critical
///   maintenance is *deferred* (a short-lived tenant simply dies before
///   the rollout reaches it; its successor is created on updated
///   software). The natural home for predicted-short databases.
/// - `kStandard` — general-purpose nodes: the default placement. Every
///   maintenance rollout disrupts every alive tenant.
/// - `kReplicated` — replicated durable nodes: each logical node is
///   `replicas` commodity nodes, so the node price multiplies but
///   maintenance is *transparent* (rolling upgrade behind a failover,
///   no tenant-visible disruption). The home for confident-long
///   placements whose disruption cost justifies the premium.
/// - `kPremium` — a premium low-disruption tier: expensive smaller
///   nodes with transparent maintenance, for tenants whose SLA credits
///   dwarf the hardware bill.
enum class ArchitectureKind {
  kDense = 0,
  kStandard = 1,
  kReplicated = 2,
  kPremium = 3,
};

const char* ArchitectureKindToString(ArchitectureKind kind);
bool ArchitectureKindFromString(std::string_view name,
                                ArchitectureKind* out);

/// Per-unit-day resource prices parsed from `resource` lines of a
/// catalog spec. All three resources must be priced before any
/// architecture can be built.
struct ResourceCatalog {
  double vcpu_price_per_day = 0.0;
  double memory_gb_price_per_day = 0.0;
  double storage_gb_price_per_day = 0.0;
};

/// One parsed `architecture` line: the node shape, capacity, and the
/// optional per-architecture cost/behaviour overrides. Keys absent from
/// the spec fall back to the kind's defaults (see docs/provisioning.md
/// for the key table).
struct ArchitectureSpec {
  std::string name;
  ArchitectureKind kind = ArchitectureKind::kStandard;
  double vcpus = 0.0;
  double memory_gb = 0.0;
  double storage_gb = 0.0;
  int capacity_dtus = 0;
  int replicas = 1;
  /// Dollar cost of binding a tenant to a node (spec key `attach_cost`).
  std::optional<double> attach_cost;
  /// Dollar cost of unbinding a tenant (spec key `detach_cost`).
  std::optional<double> detach_cost;
  /// Dollars per maintenance hit per 100 tenant DTUs (`disruption_cost`).
  std::optional<double> disruption_cost;
  /// Behaviour overrides (`defer_maintenance`, `transparent_maintenance`).
  std::optional<bool> defer_maintenance;
  std::optional<bool> transparent_maintenance;
};

/// A backend architecture: capacity, per-node price derived from the
/// resource catalog, attach/detach costs, and the maintenance contract.
/// Immutable once built; concrete subclasses supply the kind defaults.
class Architecture {
 public:
  virtual ~Architecture() = default;

  const std::string& name() const { return spec_.name; }
  ArchitectureKind kind() const { return spec_.kind; }
  /// DTUs one node can host.
  int node_capacity_dtus() const { return spec_.capacity_dtus; }
  int replicas() const { return spec_.replicas; }
  /// Dollars per node per day, `replicas` included:
  /// replicas * (vcpus*P_vcpu + memory_gb*P_mem + storage_gb*P_disk).
  double node_price_per_day() const { return node_price_per_day_; }
  /// Dollars to place a tenant on a node of this architecture.
  double attach_cost() const {
    return spec_.attach_cost.value_or(DefaultAttachCost());
  }
  /// Dollars to release a tenant from a node of this architecture.
  double detach_cost() const {
    return spec_.detach_cost.value_or(DefaultDetachCost());
  }
  /// Dollar cost of one maintenance hit on a tenant holding `dtus`
  /// (models SLA credits proportional to the tenant's bill):
  /// disruption_cost * dtus / 100.
  double DisruptionCost(int dtus) const {
    return spec_.disruption_cost.value_or(DefaultDisruptionCost()) *
           static_cast<double>(dtus) / 100.0;
  }
  /// True when non-critical rollouts are deferred on this tier (the
  /// churn contract, section 3.1): a tenant is only force-updated once
  /// it outlives the grace period.
  bool defers_maintenance() const {
    return spec_.defer_maintenance.value_or(DefaultDefersMaintenance());
  }
  /// True when maintenance is tenant-invisible (rolling upgrade behind
  /// replicas): the hit costs money but is not an SLA violation.
  bool transparent_maintenance() const {
    return spec_.transparent_maintenance.value_or(
        DefaultTransparentMaintenance());
  }

  /// Dollars per DTU-day at full occupancy — the figure of merit the
  /// catalog is tuned around (dense < standard < replicated < premium).
  double PricePerDtuDay() const {
    return node_price_per_day_ / static_cast<double>(spec_.capacity_dtus);
  }

 protected:
  Architecture(ArchitectureSpec spec, double node_price_per_day)
      : spec_(std::move(spec)), node_price_per_day_(node_price_per_day) {}

  virtual bool DefaultDefersMaintenance() const { return false; }
  virtual bool DefaultTransparentMaintenance() const { return false; }
  virtual double DefaultAttachCost() const { return 0.05; }
  virtual double DefaultDetachCost() const { return 0.02; }
  /// ~Three days of bill credit per hit: a 100-DTU general-tier tenant
  /// bills ~$0.84/day, so $2.50 approximates a 10%-of-monthly-bill
  /// SLA credit.
  virtual double DefaultDisruptionCost() const { return 2.5; }

 private:
  ArchitectureSpec spec_;
  double node_price_per_day_;
};

/// Builds concrete `Architecture` instances from parsed specs, pricing
/// nodes against a resource catalog. One builder per catalog.
class ArchitectureBuilder {
 public:
  explicit ArchitectureBuilder(const ResourceCatalog& resources)
      : resources_(resources) {}

  /// Validates `spec` and returns the concrete backend for its kind.
  Result<std::unique_ptr<Architecture>> Build(
      const ArchitectureSpec& spec) const;

 private:
  ResourceCatalog resources_;
};

/// An ordered set of architectures parsed from a text spec — the
/// design space a placement policy maps databases onto. See
/// docs/provisioning.md for the spec grammar; `DefaultCatalogSpec()`
/// is the built-in four-tier catalog used when no spec is given.
class ArchitectureCatalog {
 public:
  /// Parses a catalog spec. Errors name the offending line:
  /// "catalog line 3: unknown key 'vcpuz'". Requires all three
  /// resource prices and at least one `kind=standard` architecture
  /// (the default placement target).
  static Result<ArchitectureCatalog> Parse(const std::string& spec_text);

  /// The built-in spec: churn-dense / general / durable / premium
  /// (mirrored by examples/catalog.txt and docs/provisioning.md).
  static const char* DefaultSpec();
  static ArchitectureCatalog Default();

  size_t size() const { return architectures_.size(); }
  const Architecture& at(size_t index) const { return *architectures_[index]; }
  /// Index of the first architecture of `kind`, if any.
  std::optional<size_t> IndexOfKind(ArchitectureKind kind) const;
  std::optional<size_t> IndexOfName(std::string_view name) const;
  /// The default placement target: the first `kind=standard` entry.
  size_t default_index() const { return default_index_; }
  const ResourceCatalog& resources() const { return resources_; }

 private:
  ArchitectureCatalog() = default;

  ResourceCatalog resources_;
  std::vector<std::unique_ptr<Architecture>> architectures_;
  size_t default_index_ = 0;
};

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_ARCHITECTURE_H_
