#include "core/prediction.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <thread>

#include "common/thread_pool.h"
#include "features/feature_plan.h"
#include "ml/flat_forest.h"

namespace cloudsurv::core {

namespace {

using ml::ClassificationScores;

// Scores a subset of outcomes selected by `keep`; returns zeroed scores
// (support 0) when the subset is empty.
ClassificationScores ScoreSubset(const std::vector<PredictionOutcome>& all,
                                 const std::vector<bool>& keep) {
  std::vector<int> y_true, y_pred;
  for (size_t i = 0; i < all.size(); ++i) {
    if (!keep[i]) continue;
    y_true.push_back(all[i].true_label);
    y_pred.push_back(all[i].predicted_label);
  }
  if (y_true.empty()) return ClassificationScores{};
  auto scores = ml::ComputeScores(y_true, y_pred);
  return scores.ok() ? *scores : ClassificationScores{};
}

}  // namespace

Result<SubgroupExperimentResult> RunPredictionExperiment(
    const telemetry::TelemetryStore& store,
    std::optional<telemetry::Edition> edition,
    const ExperimentConfig& config) {
  if (config.num_repetitions <= 0) {
    return Status::InvalidArgument("num_repetitions must be positive");
  }
  features::FeatureConfig feature_config = config.feature_config;
  feature_config.observation_days = config.observe_days;

  CLOUDSURV_ASSIGN_OR_RETURN(
      PredictionCohort cohort,
      BuildPredictionCohort(store, config.observe_days,
                            config.long_threshold_days, edition));
  if (cohort.ids.size() < 50) {
    return Status::FailedPrecondition(
        "prediction cohort too small (" + std::to_string(cohort.ids.size()) +
        " databases); simulate a larger region");
  }
  CLOUDSURV_ASSIGN_OR_RETURN(features::FeaturePlan plan,
                             features::FeaturePlan::Compile(feature_config));
  // Fan the extraction sweep out for cohorts large enough to amortize
  // the pool; small cohorts extract serially on this thread.
  const int pool_threads =
      config.num_threads > 0
          ? config.num_threads
          : static_cast<int>(
                std::max(1u, std::thread::hardware_concurrency()));
  std::optional<ThreadPool> pool;
  if (cohort.ids.size() >= 2048 && pool_threads > 1) {
    pool.emplace(static_cast<size_t>(pool_threads),
                 /*queue_capacity=*/static_cast<size_t>(pool_threads) * 8);
  }
  CLOUDSURV_ASSIGN_OR_RETURN(
      ml::Dataset dataset,
      features::BuildDataset(store, cohort.ids, cohort.labels, plan,
                             /*num_classes=*/2,
                             pool.has_value() ? &*pool : nullptr));
  return RunPredictionExperimentOnDataset(dataset, cohort,
                                          store.region_name(), edition,
                                          config);
}

Result<SubgroupExperimentResult> RunPredictionExperimentOnDataset(
    const ml::Dataset& dataset, const PredictionCohort& cohort,
    const std::string& region_name,
    std::optional<telemetry::Edition> edition,
    const ExperimentConfig& config) {
  if (config.num_repetitions <= 0) {
    return Status::InvalidArgument("num_repetitions must be positive");
  }
  if (dataset.num_rows() != cohort.ids.size()) {
    return Status::InvalidArgument("dataset and cohort must be parallel");
  }
  const double positive_rate = dataset.ClassFraction(1);
  if (positive_rate == 0.0 || positive_rate == 1.0) {
    return Status::FailedPrecondition(
        "prediction cohort contains a single class");
  }

  SubgroupExperimentResult result;
  result.region_name = region_name;
  result.subgroup_name =
      edition.has_value() ? telemetry::EditionToString(*edition) : "All";
  result.cohort_size = cohort.ids.size();
  result.num_unknown_excluded = cohort.num_unknown_excluded;
  result.positive_rate = positive_rate;
  result.feature_names = dataset.feature_names();

  // Hyper-parameter tuning on the first repetition's training split.
  // The experiment-level thread / split-algorithm knobs reach every
  // forest trained here: tuning cells and per-repetition fits alike.
  ml::ForestParams params = config.default_params;
  params.num_threads = config.num_threads;
  params.split_algorithm = config.split_algorithm;
  if (config.tune_with_grid_search) {
    CLOUDSURV_ASSIGN_OR_RETURN(
        ml::TrainTestIndices tune_split,
        ml::TrainTestSplit(dataset, config.test_fraction, config.seed));
    CLOUDSURV_ASSIGN_OR_RETURN(ml::Dataset tune_train,
                               dataset.Subset(tune_split.train));
    std::vector<ml::ForestParams> grid = config.grid;
    for (ml::ForestParams& cell : grid) {
      cell.num_threads = config.num_threads;
      cell.split_algorithm = config.split_algorithm;
    }
    const int pool_threads =
        config.num_threads > 0
            ? config.num_threads
            : static_cast<int>(
                  std::max(1u, std::thread::hardware_concurrency()));
    CLOUDSURV_ASSIGN_OR_RETURN(
        ml::GridSearchResult grid_result,
        ml::GridSearchForest(tune_train, grid, config.cv_folds,
                             config.seed, pool_threads));
    params = grid_result.best_params;
    result.tuning_cv_score = grid_result.best_score;
  }
  result.tuned_params = params;

  std::vector<ClassificationScores> forest_all, baseline_all, confident_all,
      uncertain_all;
  double confident_fraction_sum = 0.0;
  std::vector<double> importances_sum;

  for (int rep = 0; rep < config.num_repetitions; ++rep) {
    const uint64_t rep_seed = config.seed + 1000003ULL * (rep + 1);
    CLOUDSURV_ASSIGN_OR_RETURN(
        ml::TrainTestIndices split,
        ml::TrainTestSplit(dataset, config.test_fraction, rep_seed));
    CLOUDSURV_ASSIGN_OR_RETURN(ml::Dataset train, dataset.Subset(split.train));
    CLOUDSURV_ASSIGN_OR_RETURN(ml::Dataset test, dataset.Subset(split.test));

    ml::RandomForestClassifier forest;
    CLOUDSURV_RETURN_NOT_OK(forest.Fit(train, params, rep_seed));
    // Scoring the held-out fold goes through the compiled flat layout —
    // bit-identical to forest.PredictPositiveProba(test), just blocked.
    CLOUDSURV_ASSIGN_OR_RETURN(ml::FlatForest flat,
                               ml::FlatForest::Compile(forest));
    CLOUDSURV_ASSIGN_OR_RETURN(std::vector<double> probs,
                               flat.PredictPositiveProbaBatch(test));

    // Confidence threshold from the training class distribution
    // (section 5.3): t = max(q, 1 - q).
    const double q = train.ClassFraction(1);
    const double threshold = std::max(q, 1.0 - q);

    RunResult run;
    run.confidence_threshold = threshold;
    run.feature_importances = forest.feature_importances();
    run.outcomes.reserve(test.num_rows());
    size_t num_confident = 0;
    for (size_t i = 0; i < test.num_rows(); ++i) {
      const size_t cohort_index = split.test[i];
      PredictionOutcome outcome;
      outcome.id = cohort.ids[cohort_index];
      outcome.true_label = test.label(i);
      outcome.positive_probability = probs[i];
      outcome.predicted_label = probs[i] > 0.5 ? 1 : 0;
      outcome.confident =
          probs[i] >= threshold || probs[i] <= 1.0 - threshold;
      outcome.duration_days = cohort.durations[cohort_index];
      outcome.observed = cohort.observed[cohort_index];
      num_confident += outcome.confident ? 1 : 0;
      run.outcomes.push_back(outcome);
    }
    run.confident_fraction =
        static_cast<double>(num_confident) /
        static_cast<double>(run.outcomes.size());

    // Baseline.
    ml::WeightedRandomClassifier baseline;
    CLOUDSURV_RETURN_NOT_OK(baseline.Fit(train));
    CLOUDSURV_ASSIGN_OR_RETURN(run.baseline_predictions,
                               baseline.PredictBatch(test, rep_seed ^ 0xBA5E));

    // Scores.
    std::vector<bool> all_mask(run.outcomes.size(), true);
    std::vector<bool> confident_mask(run.outcomes.size());
    std::vector<bool> uncertain_mask(run.outcomes.size());
    for (size_t i = 0; i < run.outcomes.size(); ++i) {
      confident_mask[i] = run.outcomes[i].confident;
      uncertain_mask[i] = !run.outcomes[i].confident;
    }
    run.forest_scores = ScoreSubset(run.outcomes, all_mask);
    run.confident_scores = ScoreSubset(run.outcomes, confident_mask);
    run.uncertain_scores = ScoreSubset(run.outcomes, uncertain_mask);
    {
      std::vector<int> y_true;
      y_true.reserve(run.outcomes.size());
      for (const auto& o : run.outcomes) y_true.push_back(o.true_label);
      auto scores = ml::ComputeScores(y_true, run.baseline_predictions);
      run.baseline_scores = scores.ok() ? *scores : ClassificationScores{};
    }

    forest_all.push_back(run.forest_scores);
    baseline_all.push_back(run.baseline_scores);
    if (run.confident_scores.support > 0) {
      confident_all.push_back(run.confident_scores);
    }
    if (run.uncertain_scores.support > 0) {
      uncertain_all.push_back(run.uncertain_scores);
    }
    confident_fraction_sum += run.confident_fraction;
    if (importances_sum.empty()) {
      importances_sum = run.feature_importances;
    } else {
      for (size_t f = 0; f < importances_sum.size(); ++f) {
        importances_sum[f] += run.feature_importances[f];
      }
    }
    result.runs.push_back(std::move(run));
  }

  result.forest_avg = ml::AverageScores(forest_all);
  result.baseline_avg = ml::AverageScores(baseline_all);
  result.confident_avg = ml::AverageScores(confident_all);
  result.uncertain_avg = ml::AverageScores(uncertain_all);
  result.confident_fraction_avg =
      confident_fraction_sum / static_cast<double>(config.num_repetitions);
  result.feature_importances_avg = importances_sum;
  for (double& v : result.feature_importances_avg) {
    v /= static_cast<double>(config.num_repetitions);
  }
  return result;
}

ClassifiedSurvivalGroups SplitOutcomesByPrediction(
    const std::vector<PredictionOutcome>& outcomes,
    PredictionBucket bucket) {
  ClassifiedSurvivalGroups groups;
  for (const PredictionOutcome& o : outcomes) {
    if (bucket == PredictionBucket::kConfident && !o.confident) continue;
    if (bucket == PredictionBucket::kUncertain && o.confident) continue;
    survival::Observation obs{o.duration_days, o.observed};
    if (o.predicted_label == 1) {
      groups.predicted_long.push_back(obs);
    } else {
      groups.predicted_short.push_back(obs);
    }
  }
  return groups;
}

Result<survival::LogRankResult> LogRankOfClassifiedGroups(
    const std::vector<PredictionOutcome>& outcomes,
    PredictionBucket bucket) {
  ClassifiedSurvivalGroups groups =
      SplitOutcomesByPrediction(outcomes, bucket);
  CLOUDSURV_ASSIGN_OR_RETURN(
      survival::SurvivalData short_data,
      survival::SurvivalData::Make(std::move(groups.predicted_short)));
  CLOUDSURV_ASSIGN_OR_RETURN(
      survival::SurvivalData long_data,
      survival::SurvivalData::Make(std::move(groups.predicted_long)));
  if (short_data.empty() || long_data.empty()) {
    return Status::FailedPrecondition(
        "one classified group is empty; log-rank undefined");
  }
  return survival::LogRankTest(short_data, long_data);
}

Result<survival::LogRankResult> LogRankOfBaselineGroups(
    const std::vector<PredictionOutcome>& outcomes,
    const std::vector<int>& baseline_predictions) {
  if (outcomes.size() != baseline_predictions.size()) {
    return Status::InvalidArgument(
        "outcomes and baseline predictions must be parallel");
  }
  std::vector<survival::Observation> short_obs, long_obs;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    survival::Observation obs{outcomes[i].duration_days,
                              outcomes[i].observed};
    if (baseline_predictions[i] == 1) {
      long_obs.push_back(obs);
    } else {
      short_obs.push_back(obs);
    }
  }
  CLOUDSURV_ASSIGN_OR_RETURN(survival::SurvivalData short_data,
                             survival::SurvivalData::Make(std::move(short_obs)));
  CLOUDSURV_ASSIGN_OR_RETURN(survival::SurvivalData long_data,
                             survival::SurvivalData::Make(std::move(long_obs)));
  if (short_data.empty() || long_data.empty()) {
    return Status::FailedPrecondition(
        "one baseline group is empty; log-rank undefined");
  }
  return survival::LogRankTest(short_data, long_data);
}

std::vector<std::pair<std::string, double>> RankFeatureImportances(
    const SubgroupExperimentResult& result) {
  std::vector<std::pair<std::string, double>> ranked;
  for (size_t f = 0; f < result.feature_names.size(); ++f) {
    ranked.emplace_back(result.feature_names[f],
                        result.feature_importances_avg[f]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

namespace {

std::string FamilyOfFeature(const std::string& name) {
  if (name.rfind("create_", 0) == 0) return "creation_time";
  if (name.rfind("server_name_", 0) == 0 || name.rfind("db_name_", 0) == 0) {
    return "names";
  }
  if (name.rfind("size_", 0) == 0) return "size";
  if (name.rfind("slo_", 0) == 0) return "slo";
  if (name.rfind("sub_type_", 0) == 0) return "subscription_type";
  if (name.rfind("hist_", 0) == 0) return "subscription_history";
  return "other";
}

}  // namespace

std::vector<std::pair<std::string, double>> RankFeatureFamilies(
    const SubgroupExperimentResult& result) {
  std::vector<std::pair<std::string, double>> families;
  auto add = [&families](const std::string& family, double value) {
    for (auto& [name, total] : families) {
      if (name == family) {
        total += value;
        return;
      }
    }
    families.emplace_back(family, value);
  };
  for (size_t f = 0; f < result.feature_names.size(); ++f) {
    add(FamilyOfFeature(result.feature_names[f]),
        result.feature_importances_avg[f]);
  }
  std::sort(families.begin(), families.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return families;
}

}  // namespace cloudsurv::core
