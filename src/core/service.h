#ifndef CLOUDSURV_CORE_SERVICE_H_
#define CLOUDSURV_CORE_SERVICE_H_

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "artifact/reader.h"
#include "core/provisioning.h"
#include "features/features.h"
#include "ml/flat_forest.h"
#include "ml/random_forest.h"
#include "telemetry/store.h"

namespace cloudsurv::core {

/// End-to-end lifespan service — the deployable form of the paper's
/// pipeline. Train() learns one random forest per creation edition from
/// historical telemetry (plus a pooled fallback model); Assess() then
/// scores any database that has completed its observation window and
/// recommends a resource pool, acting only on confident predictions
/// (sections 4, 5.3, 3.1).
class LongevityService {
 public:
  struct Options {
    double observe_days = 2.0;
    double long_threshold_days = 30.0;
    ml::ForestParams forest_params;
    features::FeatureConfig feature_config;
    /// Minimum labeled cohort size to train a per-edition model;
    /// smaller editions fall back to the pooled model.
    size_t min_cohort_size = 200;
    uint64_t seed = 1;

    Options() {
      forest_params.num_trees = 80;
      forest_params.max_depth = 14;
    }
  };

  /// One scored database.
  struct Assessment {
    int predicted_label = 0;            ///< 1 = long-lived.
    double positive_probability = 0.0;
    bool confident = false;
    double confidence_threshold = 0.5;  ///< t = max(q, 1-q) of the model.
    Pool recommended_pool = Pool::kGeneral;
    /// Which model scored it ("Basic", "Standard", "Premium", "pooled").
    std::string model_name;
  };

  /// Trains the per-edition and pooled models on `history`. Fails if
  /// even the pooled cohort is too small or single-class.
  static Result<LongevityService> Train(
      const telemetry::TelemetryStore& history, const Options& options =
          Options());

  /// Scores one database of `store` (typically live telemetry). The
  /// database must have survived the observation window; features are
  /// computed only from telemetry up to created_at + observe_days.
  Result<Assessment> Assess(const telemetry::TelemetryStore& store,
                            telemetry::DatabaseId id) const;

  /// Scores many databases of `store` in one pass: feature rows are
  /// grouped per resolved model slot and pushed through the compiled
  /// `ml::FlatForest` with `batch` (block size, traversal kernel;
  /// legacy per-row scoring when CompileForInference has not run).
  /// `out[i]` is nullopt exactly
  /// when per-id Assess(ids[i]) would fail (unknown id, too little
  /// telemetry); every produced Assessment is bit-identical to the
  /// per-id call.
  Result<std::vector<std::optional<Assessment>>> AssessMany(
      const telemetry::TelemetryStore& store,
      const std::vector<telemetry::DatabaseId>& ids,
      const ml::FlatForest::BatchOptions& batch = {}) const;

  /// Convenience overload pinning only the block size (0 = the
  /// compiled forest's autotuned size); traversal kind stays kAuto.
  Result<std::vector<std::optional<Assessment>>> AssessMany(
      const telemetry::TelemetryStore& store,
      const std::vector<telemetry::DatabaseId>& ids,
      size_t block_rows) const;

  /// Compiles every trained forest into its flat inference form
  /// (ml::FlatForest). Call once after Train()/Load(); Assess and
  /// AssessMany then route through the flat representation.
  /// `ModelRegistry::Publish` does this at publish time.
  Status CompileForInference();

  /// True iff CompileForInference has run.
  bool inference_compiled() const {
    return pooled_model_.present && pooled_model_.flat.compiled();
  }

  /// Scores every eligible database of `store` and returns a placement
  /// plan over the confident ones.
  Result<PoolAssignmentPlan> PlanPlacements(
      const telemetry::TelemetryStore& store) const;

  /// True iff a dedicated model exists for `edition` (otherwise the
  /// pooled model serves it).
  bool HasEditionModel(telemetry::Edition edition) const;

  const Options& options() const { return options_; }

  /// Persists all trained models and thresholds to text; exact
  /// round trip via Load().
  std::string Save() const;

  /// Restores a service from Save() output.
  static Result<LongevityService> Load(const std::string& text);

  /// Persists the full service — options, per-slot thresholds, the
  /// trainable forests, and their compiled `ml::FlatForest` form — as
  /// one CSRV binary artifact at `path` (atomic tmp-file + rename).
  /// Slots that are not yet compiled are compiled on the fly; the
  /// service itself is not mutated.
  Status SaveArtifact(const std::string& path) const;

  /// Restores a service from a SaveArtifact() file. The compiled
  /// forests are bound directly to the (typically mmap'ed) file bytes —
  /// zero per-array copies — so the returned service is immediately
  /// inference_compiled(). Corrupt, truncated, or version-mismatched
  /// files are rejected with a precise error.
  static Result<LongevityService> LoadArtifact(
      const std::string& path,
      const artifact::ArtifactReader::Options& reader_options);
  static Result<LongevityService> LoadArtifact(const std::string& path) {
    return LoadArtifact(path, artifact::ArtifactReader::Options());
  }

 private:
  LongevityService() = default;

  struct ModelSlot {
    bool present = false;
    ml::RandomForestClassifier forest;
    /// Compiled inference form; empty until CompileForInference().
    ml::FlatForest flat;
    double threshold = 0.5;  ///< max(q, 1-q) from the training cohort.
  };

  const ModelSlot& SlotFor(telemetry::Edition edition) const;

  Options options_;
  std::array<ModelSlot, telemetry::kNumEditions> edition_models_;
  ModelSlot pooled_model_;
};

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_SERVICE_H_
