#ifndef CLOUDSURV_CORE_PROVISIONING_H_
#define CLOUDSURV_CORE_PROVISIONING_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/architecture.h"
#include "core/prediction.h"
#include "telemetry/store.h"

namespace cloudsurv::core {

/// Back-end resource pools for longevity-guided placement (paper
/// section 3.1): a default pool, a churn pool for predicted-short-lived
/// databases (non-critical updates deferred; the database simply picks
/// up new software when its successor is created), and a stable pool
/// for predicted-long-lived databases.
enum class Pool {
  kGeneral = 0,
  kChurn = 1,
  kStable = 2,
};

const char* PoolToString(Pool pool);

/// Placement decisions per database; databases absent from the map stay
/// in the general pool.
struct PoolAssignmentPlan {
  std::unordered_map<telemetry::DatabaseId, Pool> pools;

  Pool PoolOf(telemetry::DatabaseId id) const {
    auto it = pools.find(id);
    return it == pools.end() ? Pool::kGeneral : it->second;
  }
};

/// Derives a plan from classifier outcomes, following the paper's
/// policy recommendation: act only on confident predictions
/// (section 5.3) — confident-short goes to the churn pool,
/// confident-long to the stable pool, uncertain stays in the general
/// pool.
PoolAssignmentPlan PlanFromPredictions(
    const std::vector<PredictionOutcome>& outcomes);

/// Placement decisions against an `ArchitectureCatalog`: each database
/// maps to an index into the catalog; databases absent from the map go
/// to `default_index` (normally the catalog's first standard tier).
/// This generalizes `PoolAssignmentPlan` — pools named *roles*, the
/// architecture plan names the *hardware* behind them — and is what
/// `SimulateDeployment` (placement.h) prices out.
struct ArchitectureAssignmentPlan {
  size_t default_index = 0;
  std::unordered_map<telemetry::DatabaseId, size_t> assignments;

  size_t ArchitectureOf(telemetry::DatabaseId id) const {
    auto it = assignments.find(id);
    return it == assignments.end() ? default_index : it->second;
  }
};

/// A placement policy maps lifespan predictions (with confidence, the
/// paper's section 5.3 partition) onto catalog architectures. Policies
/// are stateless and deterministic: the same (store, outcomes, catalog)
/// always yields the same plan.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Stable identifier used by the `plan` CLI and bench JSON.
  virtual const char* name() const = 0;

  /// Builds an assignment plan for every database in `outcomes`.
  /// Databases not mentioned in `outcomes` fall to the catalog default.
  virtual Result<ArchitectureAssignmentPlan> Assign(
      const telemetry::TelemetryStore& store,
      const std::vector<PredictionOutcome>& outcomes,
      const ArchitectureCatalog& catalog) const = 0;
};

/// Policy factory for the CLI / bench: "naive" (everything on the
/// default standard tier), "longevity" (prediction-driven: confident
/// short-lived to the dense churn tier; confident long-lived
/// Premium-edition tenants to the replicated durable tier; everything
/// uncertain stays on the default — acting only on confident
/// predictions per section 5.3), or "oracle" (the same mapping driven
/// by true lifespans: dropped within `oracle_threshold_days` counts as
/// short). Returns nullptr for unknown names.
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(
    std::string_view name, double oracle_threshold_days = 30.0);

/// Operational cost model for the what-if replay.
struct ProvisioningPolicyConfig {
  /// Non-critical service rollouts happen this often; each one disrupts
  /// every alive database in the general and stable pools.
  double maintenance_interval_days = 30.0;
  /// Churn-pool databases skip rollouts; one that outlives this grace
  /// period must be force-updated (one disruption + a forced update).
  double stale_grace_days = 45.0;
  /// Load-balancer move rate per database per 30 days (general and
  /// stable pools; the churn pool is never rebalanced).
  double move_rate_per_30_days = 0.2;
  /// A move is wasted work when the database drops within this window
  /// after it ("dropping a database after a load-balancer has moved it
  /// lowers operational efficiency", section 3.1).
  double waste_window_days = 7.0;
  uint64_t seed = 7;
};

/// Operational outcome of replaying the window under one placement
/// plan. Lower disruptions / wasted moves / contention are better.
struct ProvisioningReport {
  size_t num_databases = 0;
  /// Maintenance hits on alive databases (incl. forced updates).
  size_t disruptions = 0;
  /// Rollout hits a churn-pool database would have taken but deferred.
  size_t avoided_disruptions = 0;
  /// Churn-pool databases that outlived the grace period.
  size_t forced_updates = 0;
  size_t moves = 0;
  size_t wasted_moves = 0;
  /// Same-pool interference between lifecycle churn (creates+drops) and
  /// SLO-change traffic: sum over pools and days of
  /// lifecycle_ops(day) * slo_ops(day). Partitioning churners away from
  /// SLO-changing long-lived tenants lowers it (section 3.1's
  /// allocation-contention argument).
  double contention_score = 0.0;

  std::string ToString() const;
};

/// Replays the observation window under `plan` and tallies operational
/// costs. Deterministic in (store, plan, config).
Result<ProvisioningReport> SimulateProvisioning(
    const telemetry::TelemetryStore& store, const PoolAssignmentPlan& plan,
    const ProvisioningPolicyConfig& config);

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_PROVISIONING_H_
