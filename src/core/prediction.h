#ifndef CLOUDSURV_CORE_PREDICTION_H_
#define CLOUDSURV_CORE_PREDICTION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cohort.h"
#include "features/features.h"
#include "ml/baseline.h"
#include "ml/cross_validation.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "survival/logrank.h"
#include "survival/survival_data.h"
#include "telemetry/store.h"

namespace cloudsurv::core {

/// Configuration of one lifespan-prediction experiment, mirroring the
/// paper's protocol (section 5.1): observe x days, predict whether the
/// database lives more than y days; 80/20 split; grid search with
/// 5-fold CV over the training set; repeat 5 times and average.
struct ExperimentConfig {
  double observe_days = 2.0;          ///< x.
  double long_threshold_days = 30.0;  ///< y.
  double test_fraction = 0.2;
  int num_repetitions = 5;
  int cv_folds = 5;
  /// When true, hyper-parameters are tuned by grid search on the first
  /// repetition's training set and reused for the remaining repetitions
  /// (a documented economy over per-run tuning; the winning cell is
  /// stable in practice).
  bool tune_with_grid_search = true;
  std::vector<ml::ForestParams> grid = ml::DefaultForestGrid();
  /// Used directly when tune_with_grid_search is false.
  ml::ForestParams default_params;
  features::FeatureConfig feature_config;
  uint64_t seed = 42;
  /// Worker threads for grid-search tuning AND per-repetition forest
  /// fits (0 = hardware concurrency). Results are seed-deterministic
  /// for any value.
  int num_threads = 0;
  /// Node-split search used by every forest this experiment trains
  /// (tuning cells and per-repetition fits alike).
  ml::SplitAlgorithm split_algorithm = ml::SplitAlgorithm::kHistogram;
};

/// Partition of predictions by the paper's confidence rule
/// (section 5.3).
enum class PredictionBucket {
  kAll,
  kConfident,
  kUncertain,
};

/// One scored test-set example from one repetition.
struct PredictionOutcome {
  telemetry::DatabaseId id = 0;
  int true_label = 0;
  int predicted_label = 0;
  double positive_probability = 0.0;
  bool confident = false;
  /// Survival fields for KM curves of the classified groups.
  double duration_days = 0.0;
  bool observed = false;  ///< True = dropped inside the window.
};

/// Scores and artifacts of one repetition.
struct RunResult {
  ml::ClassificationScores forest_scores;
  ml::ClassificationScores baseline_scores;
  ml::ClassificationScores confident_scores;   ///< support 0 if none.
  ml::ClassificationScores uncertain_scores;   ///< support 0 if none.
  double confidence_threshold = 0.5;  ///< t = max(q, 1 - q).
  double confident_fraction = 0.0;
  std::vector<PredictionOutcome> outcomes;
  /// Baseline predictions, parallel to `outcomes`.
  std::vector<int> baseline_predictions;
  std::vector<double> feature_importances;
};

/// Aggregated result over all repetitions for one (region, edition)
/// subgroup.
struct SubgroupExperimentResult {
  std::string region_name;
  std::string subgroup_name;
  size_t cohort_size = 0;
  size_t num_unknown_excluded = 0;
  double positive_rate = 0.0;  ///< Long-lived fraction of the cohort.
  ml::ForestParams tuned_params;
  double tuning_cv_score = 0.0;
  ml::ClassificationScores forest_avg;
  ml::ClassificationScores baseline_avg;
  ml::ClassificationScores confident_avg;
  ml::ClassificationScores uncertain_avg;
  double confident_fraction_avg = 0.0;
  std::vector<RunResult> runs;
  std::vector<double> feature_importances_avg;
  std::vector<std::string> feature_names;
};

/// Runs the full protocol for one subgroup (optionally restricted to a
/// creation edition). Requires a cohort with both classes present.
/// Feature extraction goes through a compiled FeaturePlan (fanned over
/// a thread pool for large cohorts) — bit-identical to per-row
/// extraction.
Result<SubgroupExperimentResult> RunPredictionExperiment(
    const telemetry::TelemetryStore& store,
    std::optional<telemetry::Edition> edition,
    const ExperimentConfig& config);

/// The protocol from the dataset boundary down: split / tune / repeat
/// on an already-extracted dataset whose rows parallel `cohort`.
/// Callers that evaluate many configurations of the same cohort (e.g.
/// the feature-ablation bench via ml::Dataset::DropFeatures) extract
/// once and reuse the matrix across calls. `region_name` and `edition`
/// only label the result.
Result<SubgroupExperimentResult> RunPredictionExperimentOnDataset(
    const ml::Dataset& dataset, const PredictionCohort& cohort,
    const std::string& region_name,
    std::optional<telemetry::Edition> edition,
    const ExperimentConfig& config);

/// Splits one run's outcomes into predicted-short and predicted-long
/// survival samples, optionally restricted to a confidence bucket.
/// Either output may be empty.
struct ClassifiedSurvivalGroups {
  std::vector<survival::Observation> predicted_short;
  std::vector<survival::Observation> predicted_long;
};
ClassifiedSurvivalGroups SplitOutcomesByPrediction(
    const std::vector<PredictionOutcome>& outcomes, PredictionBucket bucket);

/// Log-rank test between the predicted-short and predicted-long groups
/// of one run. Errors if either group is empty.
Result<survival::LogRankResult> LogRankOfClassifiedGroups(
    const std::vector<PredictionOutcome>& outcomes, PredictionBucket bucket);

/// Log-rank test of the *baseline's* classified grouping (the paper
/// reports these are not significant).
Result<survival::LogRankResult> LogRankOfBaselineGroups(
    const std::vector<PredictionOutcome>& outcomes,
    const std::vector<int>& baseline_predictions);

/// Ranks features by averaged gini importance, descending.
/// Returns (feature name, importance) pairs.
std::vector<std::pair<std::string, double>> RankFeatureImportances(
    const SubgroupExperimentResult& result);

/// Sums importances by feature family prefix and ranks families,
/// reproducing the section 5.4 analysis.
std::vector<std::pair<std::string, double>> RankFeatureFamilies(
    const SubgroupExperimentResult& result);

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_PREDICTION_H_
