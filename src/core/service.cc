#include "core/service.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <sstream>

#include "artifact/format.h"
#include "artifact/writer.h"
#include "common/string_util.h"
#include "core/cohort.h"
#include "features/feature_plan.h"

namespace cloudsurv::core {

namespace {

using telemetry::Edition;
using telemetry::TelemetryStore;

Result<std::pair<ml::RandomForestClassifier, double>> TrainOne(
    const TelemetryStore& history, std::optional<Edition> edition,
    const LongevityService::Options& options) {
  CLOUDSURV_ASSIGN_OR_RETURN(
      PredictionCohort cohort,
      BuildPredictionCohort(history, options.observe_days,
                            options.long_threshold_days, edition));
  if (cohort.ids.size() < options.min_cohort_size) {
    return Status::FailedPrecondition("cohort too small");
  }
  features::FeatureConfig feature_config = options.feature_config;
  feature_config.observation_days = options.observe_days;
  CLOUDSURV_ASSIGN_OR_RETURN(
      ml::Dataset dataset,
      features::BuildDataset(history, cohort.ids, cohort.labels,
                             feature_config));
  const double q = dataset.ClassFraction(1);
  if (q == 0.0 || q == 1.0) {
    return Status::FailedPrecondition("single-class cohort");
  }
  ml::RandomForestClassifier forest;
  CLOUDSURV_RETURN_NOT_OK(
      forest.Fit(dataset, options.forest_params, options.seed));
  return std::make_pair(std::move(forest), std::max(q, 1.0 - q));
}

}  // namespace

Result<LongevityService> LongevityService::Train(
    const TelemetryStore& history, const Options& options) {
  if (!history.readable()) {
    return Status::FailedPrecondition("history store is not readable");
  }
  LongevityService service;
  service.options_ = options;

  // Pooled fallback first; it must exist.
  auto pooled = TrainOne(history, std::nullopt, options);
  if (!pooled.ok()) {
    return Status::FailedPrecondition(
        "cannot train pooled model: " + pooled.status().message());
  }
  service.pooled_model_.present = true;
  service.pooled_model_.forest = std::move(pooled->first);
  service.pooled_model_.threshold = pooled->second;

  for (int e = 0; e < telemetry::kNumEditions; ++e) {
    auto slot = TrainOne(history, static_cast<Edition>(e), options);
    if (!slot.ok()) continue;  // fall back to pooled for this edition
    auto& model = service.edition_models_[static_cast<size_t>(e)];
    model.present = true;
    model.forest = std::move(slot->first);
    model.threshold = slot->second;
  }
  return service;
}

const LongevityService::ModelSlot& LongevityService::SlotFor(
    Edition edition) const {
  const ModelSlot& slot =
      edition_models_[static_cast<size_t>(edition)];
  return slot.present ? slot : pooled_model_;
}

bool LongevityService::HasEditionModel(Edition edition) const {
  return edition_models_[static_cast<size_t>(edition)].present;
}

Result<LongevityService::Assessment> LongevityService::Assess(
    const TelemetryStore& store, telemetry::DatabaseId id) const {
  if (!pooled_model_.present) {
    return Status::FailedPrecondition("service is not trained");
  }
  CLOUDSURV_ASSIGN_OR_RETURN(const telemetry::DatabaseRecord record,
                             store.FindDatabase(id));
  features::FeatureConfig feature_config = options_.feature_config;
  feature_config.observation_days = options_.observe_days;
  CLOUDSURV_ASSIGN_OR_RETURN(
      std::vector<double> row,
      features::ExtractFeatures(store, record, feature_config));

  const Edition edition = record.initial_edition();
  const ModelSlot& slot = SlotFor(edition);
  Assessment assessment;
  assessment.model_name =
      &slot == &pooled_model_ ? "pooled"
                              : telemetry::EditionToString(edition);
  // The flat path accumulates the same doubles in the same order as
  // PredictProba(row)[1] — routing through it changes nothing but speed.
  assessment.positive_probability =
      slot.flat.compiled() ? slot.flat.PredictPositive(row)
                           : slot.forest.PredictProba(row)[1];
  assessment.predicted_label =
      assessment.positive_probability > 0.5 ? 1 : 0;
  assessment.confidence_threshold = slot.threshold;
  assessment.confident =
      assessment.positive_probability >= slot.threshold ||
      assessment.positive_probability <= 1.0 - slot.threshold;
  if (assessment.confident) {
    assessment.recommended_pool =
        assessment.predicted_label == 1 ? Pool::kStable : Pool::kChurn;
  } else {
    assessment.recommended_pool = Pool::kGeneral;
  }
  return assessment;
}

Status LongevityService::CompileForInference() {
  if (!pooled_model_.present) {
    return Status::FailedPrecondition("service is not trained");
  }
  CLOUDSURV_ASSIGN_OR_RETURN(pooled_model_.flat,
                             ml::FlatForest::Compile(pooled_model_.forest));
  for (auto& slot : edition_models_) {
    if (!slot.present) continue;
    CLOUDSURV_ASSIGN_OR_RETURN(slot.flat,
                               ml::FlatForest::Compile(slot.forest));
  }
  return Status::OK();
}

Result<std::vector<std::optional<LongevityService::Assessment>>>
LongevityService::AssessMany(const TelemetryStore& store,
                             const std::vector<telemetry::DatabaseId>& ids,
                             size_t block_rows) const {
  ml::FlatForest::BatchOptions batch;
  batch.block_rows = block_rows;
  return AssessMany(store, ids, batch);
}

Result<std::vector<std::optional<LongevityService::Assessment>>>
LongevityService::AssessMany(const TelemetryStore& store,
                             const std::vector<telemetry::DatabaseId>& ids,
                             const ml::FlatForest::BatchOptions& batch) const {
  if (!pooled_model_.present) {
    return Status::FailedPrecondition("service is not trained");
  }
  std::vector<std::optional<Assessment>> out(ids.size());
  features::FeatureConfig feature_config = options_.feature_config;
  feature_config.observation_days = options_.observe_days;
  auto plan_or = features::FeaturePlan::Compile(feature_config);
  if (!plan_or.ok()) {
    // A config the plan rejects is one every per-id extraction would
    // reject too, and per-id Assess maps that to nullopt.
    return out;
  }
  const features::FeaturePlan& plan = *plan_or;
  const size_t width = plan.num_features();

  // Group ids by resolved model slot so every group is extracted and
  // scored in one fused batch (at most kNumEditions + 1 groups): one
  // pass fills a reused row-major matrix, which feeds the compiled
  // forest directly — no per-row vectors, no intermediate Dataset.
  struct Group {
    const ModelSlot* slot = nullptr;
    std::string model_name;
    std::vector<telemetry::DatabaseId> group_ids;
    std::vector<size_t> positions;  ///< Index into ids/out.
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < ids.size(); ++i) {
    auto record = store.FindDatabase(ids[i]);
    if (!record.ok()) continue;  // nullopt, as per-id Assess would fail
    const Edition edition = (*record).initial_edition();
    const ModelSlot& slot = SlotFor(edition);
    Group* group = nullptr;
    for (auto& g : groups) {
      if (g.slot == &slot) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
      group->slot = &slot;
      group->model_name = &slot == &pooled_model_
                              ? "pooled"
                              : telemetry::EditionToString(edition);
    }
    group->group_ids.push_back(ids[i]);
    group->positions.push_back(i);
  }

  std::vector<double> matrix;
  std::vector<uint8_t> row_ok;
  std::vector<double> dense;
  std::vector<double> probs;
  std::vector<double> row_copy;
  std::vector<size_t> scored_positions;
  for (auto& group : groups) {
    const size_t group_size = group.group_ids.size();
    matrix.assign(group_size * width, 0.0);
    // No pool here: AssessMany runs inside the serving engine's own
    // pool workers, and nested submission into a bounded queue could
    // deadlock. The caller parallelizes across shard batches instead.
    CLOUDSURV_RETURN_NOT_OK(plan.ExtractBatchPartial(
        store, group.group_ids, matrix.data(), &row_ok, /*pool=*/nullptr));
    scored_positions.clear();
    size_t num_rows = 0;
    for (size_t k = 0; k < group_size; ++k) {
      if (!row_ok[k]) continue;  // nullopt, as per-id Assess would fail
      if (num_rows != k) {
        std::memcpy(matrix.data() + num_rows * width,
                    matrix.data() + k * width, width * sizeof(double));
      }
      scored_positions.push_back(group.positions[k]);
      ++num_rows;
    }
    if (num_rows == 0) continue;
    probs.clear();
    if (group.slot->flat.compiled()) {
      const ml::FlatForest& flat = group.slot->flat;
      if (flat.num_classes() != 0 && flat.num_classes() != 2) {
        return Status::FailedPrecondition(
            "positive-class probabilities require a binary problem");
      }
      if (width != flat.num_features()) {
        return Status::InvalidArgument("feature count mismatch");
      }
      dense.assign(num_rows * flat.out_dim(), 0.0);
      CLOUDSURV_RETURN_NOT_OK(
          flat.PredictProbaBatch(matrix.data(), num_rows, dense.data(),
                                 batch));
      probs.resize(num_rows);
      if (flat.out_dim() == 1) {
        std::copy(dense.begin(), dense.end(), probs.begin());
      } else {
        for (size_t k = 0; k < num_rows; ++k) {
          probs[k] = dense[k * flat.out_dim() + 1];
        }
      }
    } else {
      probs.reserve(num_rows);
      for (size_t k = 0; k < num_rows; ++k) {
        row_copy.assign(matrix.begin() + static_cast<ptrdiff_t>(k * width),
                        matrix.begin() +
                            static_cast<ptrdiff_t>((k + 1) * width));
        probs.push_back(group.slot->forest.PredictProba(row_copy)[1]);
      }
    }
    for (size_t k = 0; k < scored_positions.size(); ++k) {
      Assessment assessment;
      assessment.model_name = group.model_name;
      assessment.positive_probability = probs[k];
      assessment.predicted_label =
          assessment.positive_probability > 0.5 ? 1 : 0;
      assessment.confidence_threshold = group.slot->threshold;
      assessment.confident =
          assessment.positive_probability >= group.slot->threshold ||
          assessment.positive_probability <= 1.0 - group.slot->threshold;
      if (assessment.confident) {
        assessment.recommended_pool =
            assessment.predicted_label == 1 ? Pool::kStable : Pool::kChurn;
      } else {
        assessment.recommended_pool = Pool::kGeneral;
      }
      out[scored_positions[k]] = std::move(assessment);
    }
  }
  return out;
}

Result<PoolAssignmentPlan> LongevityService::PlanPlacements(
    const TelemetryStore& store) const {
  std::vector<telemetry::DatabaseId> eligible;
  for (const telemetry::DatabaseRecord& record : store.databases()) {
    const double observed =
        record.ObservedLifespanDays(store.window_end());
    if (observed < options_.observe_days) continue;
    eligible.push_back(record.id);
  }
  CLOUDSURV_ASSIGN_OR_RETURN(auto assessments, AssessMany(store, eligible));
  PoolAssignmentPlan plan;
  for (size_t i = 0; i < eligible.size(); ++i) {
    if (!assessments[i].has_value()) continue;
    if (assessments[i]->recommended_pool != Pool::kGeneral) {
      plan.pools[eligible[i]] = assessments[i]->recommended_pool;
    }
  }
  return plan;
}

std::string LongevityService::Save() const {
  std::string out = "longevity_service v1\n";
  out += "observe_days " + FormatDouble(options_.observe_days, 6) + "\n";
  out += "long_threshold_days " +
         FormatDouble(options_.long_threshold_days, 6) + "\n";
  auto save_slot = [&out](const std::string& name, const ModelSlot& slot) {
    if (!slot.present) return;
    out += "model " + name + " " + FormatDouble(slot.threshold, 17) + "\n";
    const std::string blob = slot.forest.Serialize();
    out += "blob_bytes " + std::to_string(blob.size()) + "\n";
    out += blob;
  };
  save_slot("pooled", pooled_model_);
  for (int e = 0; e < telemetry::kNumEditions; ++e) {
    save_slot(telemetry::EditionToString(static_cast<Edition>(e)),
              edition_models_[static_cast<size_t>(e)]);
  }
  return out;
}

Result<LongevityService> LongevityService::Load(const std::string& text) {
  LongevityService service;
  size_t pos = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    if (pos >= text.size()) return std::nullopt;
    const size_t end = text.find('\n', pos);
    std::string line = text.substr(
        pos, end == std::string::npos ? std::string::npos : end - pos);
    pos = end == std::string::npos ? text.size() : end + 1;
    return line;
  };

  auto header = next_line();
  if (!header || *header != "longevity_service v1") {
    return Status::InvalidArgument("unrecognized service format");
  }
  // A key's value must parse cleanly AND consume the whole line;
  // "observe_days 2.0 surprise" is rejected, not silently truncated.
  auto parse_double_line = [](std::istringstream& is, const std::string& line,
                              double* out) -> Status {
    std::string extra;
    if (!(is >> *out) || (is >> extra)) {
      return Status::InvalidArgument("malformed service line: '" + line +
                                     "'");
    }
    return Status::OK();
  };
  while (auto line = next_line()) {
    std::istringstream is(*line);
    std::string key;
    is >> key;
    if (key == "observe_days") {
      CLOUDSURV_RETURN_NOT_OK(
          parse_double_line(is, *line, &service.options_.observe_days));
    } else if (key == "long_threshold_days") {
      CLOUDSURV_RETURN_NOT_OK(parse_double_line(
          is, *line, &service.options_.long_threshold_days));
    } else if (key == "model") {
      std::string name;
      double threshold = 0.5;
      std::string extra;
      if (!(is >> name >> threshold) || (is >> extra)) {
        return Status::InvalidArgument("malformed model line: '" + *line +
                                       "'");
      }
      if (!(threshold >= 0.0 && threshold <= 1.0)) {
        return Status::InvalidArgument(
            "model " + name + " has confidence threshold " +
            FormatDouble(threshold, 6) + " outside [0, 1]");
      }
      auto size_line = next_line();
      if (!size_line) {
        return Status::InvalidArgument("missing blob size for model " +
                                       name);
      }
      // Strict "blob_bytes <decimal>" — std::from_chars on an unsigned
      // target rejects a leading '-', reports overflow, and lets us
      // require that the digits span the rest of the line.
      constexpr const char kSizePrefix[] = "blob_bytes ";
      constexpr size_t kSizePrefixLen = sizeof(kSizePrefix) - 1;
      if (size_line->rfind(kSizePrefix, 0) != 0) {
        return Status::InvalidArgument("malformed blob size line: '" +
                                       *size_line + "'");
      }
      const char* digits = size_line->data() + kSizePrefixLen;
      const char* digits_end = size_line->data() + size_line->size();
      size_t blob_size = 0;
      const auto parsed = std::from_chars(digits, digits_end, blob_size);
      if (digits == digits_end || parsed.ec != std::errc() ||
          parsed.ptr != digits_end) {
        return Status::InvalidArgument(
            "bad blob size '" + size_line->substr(kSizePrefixLen) +
            "' for model " + name +
            " (expected a non-negative byte count)");
      }
      if (blob_size > text.size() - pos) {
        return Status::InvalidArgument(
            "truncated model blob: " + name + " declares " +
            std::to_string(blob_size) + " bytes, only " +
            std::to_string(text.size() - pos) + " remain");
      }
      const std::string blob = text.substr(pos, blob_size);
      pos += blob_size;
      CLOUDSURV_ASSIGN_OR_RETURN(
          ml::RandomForestClassifier forest,
          ml::RandomForestClassifier::Deserialize(blob));
      ModelSlot* slot = nullptr;
      if (name == "pooled") {
        slot = &service.pooled_model_;
      } else {
        Edition edition;
        if (!telemetry::EditionFromString(name, &edition)) {
          return Status::InvalidArgument("unknown model name: " + name);
        }
        slot = &service.edition_models_[static_cast<size_t>(edition)];
      }
      if (slot->present) {
        return Status::InvalidArgument("duplicate model '" + name +
                                       "' in saved service");
      }
      slot->present = true;
      slot->forest = std::move(forest);
      slot->threshold = threshold;
    } else if (key.empty()) {
      continue;
    } else {
      return Status::InvalidArgument("unknown service key: " + key);
    }
  }
  if (!service.pooled_model_.present) {
    return Status::InvalidArgument("saved service lacks a pooled model");
  }
  return service;
}

namespace {

/// Slot layout inside a service artifact: 0 is the pooled fallback,
/// 1 + e the dedicated model for edition e.
std::string SlotName(uint32_t slot) {
  return slot == 0 ? "pooled"
                   : telemetry::EditionToString(
                         static_cast<Edition>(slot - 1));
}

}  // namespace

Status LongevityService::SaveArtifact(const std::string& path) const {
  if (!pooled_model_.present) {
    return Status::FailedPrecondition("service is not trained");
  }
  artifact::ArtifactWriter writer(artifact::PayloadKind::kService);

  artifact::ServiceMeta meta{};
  meta.observe_days = options_.observe_days;
  meta.long_threshold_days = options_.long_threshold_days;
  meta.num_models = 1;
  for (const auto& slot : edition_models_) {
    if (slot.present) ++meta.num_models;
  }
  writer.AddStruct(artifact::SectionId::kServiceMeta, 0, meta);

  auto add_slot = [&writer](uint32_t slot_index,
                            const ModelSlot& slot) -> Status {
    const std::string name = SlotName(slot_index);
    if (name.size() > artifact::kMaxModelNameLen) {
      return Status::InvalidArgument("model name too long: " + name);
    }
    artifact::ModelEntry entry{};
    entry.slot = slot_index;
    entry.name_len = static_cast<uint32_t>(name.size());
    entry.threshold = slot.threshold;
    std::memcpy(entry.name, name.data(), name.size());
    writer.AddStruct(artifact::SectionId::kModelEntry, slot_index, entry);
    // Trainable form (exact %.17g text blob) so a loaded artifact can
    // still be re-saved as text or re-compiled by a future build.
    writer.AddBytes(artifact::SectionId::kForestBlob, slot_index,
                    slot.forest.Serialize());
    // Compiled form: the SoA arrays a reader binds zero-copy.
    if (slot.flat.compiled()) {
      return slot.flat.WriteTo(writer, slot_index);
    }
    CLOUDSURV_ASSIGN_OR_RETURN(ml::FlatForest flat,
                               ml::FlatForest::Compile(slot.forest));
    return flat.WriteTo(writer, slot_index);
  };
  CLOUDSURV_RETURN_NOT_OK(add_slot(0, pooled_model_));
  for (int e = 0; e < telemetry::kNumEditions; ++e) {
    const auto& slot = edition_models_[static_cast<size_t>(e)];
    if (!slot.present) continue;
    CLOUDSURV_RETURN_NOT_OK(
        add_slot(static_cast<uint32_t>(e) + 1, slot));
  }
  return writer.WriteFile(path);
}

Result<LongevityService> LongevityService::LoadArtifact(
    const std::string& path,
    const artifact::ArtifactReader::Options& reader_options) {
  CLOUDSURV_ASSIGN_OR_RETURN(
      artifact::ArtifactReader reader,
      artifact::ArtifactReader::Open(path, reader_options));
  if (reader.payload() != artifact::PayloadKind::kService) {
    return Status::InvalidArgument(
        path + ": artifact holds payload kind " +
        std::to_string(static_cast<uint32_t>(reader.payload())) +
        ", not a service snapshot (pack one with 'cloudsurv pack')");
  }
  CLOUDSURV_ASSIGN_OR_RETURN(
      artifact::ServiceMeta meta,
      reader.Struct<artifact::ServiceMeta>(
          artifact::SectionId::kServiceMeta, 0));

  LongevityService service;
  service.options_.observe_days = meta.observe_days;
  service.options_.long_threshold_days = meta.long_threshold_days;

  uint32_t loaded = 0;
  for (const artifact::SectionEntry& section : reader.sections()) {
    if (section.id !=
        static_cast<uint32_t>(artifact::SectionId::kModelEntry)) {
      continue;
    }
    CLOUDSURV_ASSIGN_OR_RETURN(
        artifact::ModelEntry entry,
        reader.Struct<artifact::ModelEntry>(
            artifact::SectionId::kModelEntry, section.index));
    if (entry.slot != section.index ||
        entry.slot > static_cast<uint32_t>(telemetry::kNumEditions)) {
      return Status::InvalidArgument(
          path + ": model entry has out-of-range slot " +
          std::to_string(entry.slot));
    }
    if (entry.name_len > artifact::kMaxModelNameLen) {
      return Status::InvalidArgument(
          path + ": model entry has oversized name length " +
          std::to_string(entry.name_len));
    }
    const std::string name(entry.name, entry.name_len);
    if (name != SlotName(entry.slot)) {
      return Status::InvalidArgument(
          path + ": slot " + std::to_string(entry.slot) +
          " is named '" + name + "', expected '" +
          SlotName(entry.slot) + "'");
    }
    ModelSlot* slot =
        entry.slot == 0
            ? &service.pooled_model_
            : &service.edition_models_[entry.slot - 1];
    if (slot->present) {
      return Status::InvalidArgument(path + ": duplicate model slot " +
                                     std::to_string(entry.slot));
    }

    const artifact::SectionEntry* blob =
        reader.Find(artifact::SectionId::kForestBlob, entry.slot);
    if (blob == nullptr) {
      return Status::InvalidArgument(path + ": model '" + name +
                                     "' lacks a forest blob section");
    }
    const std::string blob_text(
        reinterpret_cast<const char*>(reader.SectionBytes(*blob)),
        static_cast<size_t>(blob->size));
    CLOUDSURV_ASSIGN_OR_RETURN(
        slot->forest, ml::RandomForestClassifier::Deserialize(blob_text));
    // Bind the compiled form straight to the artifact bytes; the slot's
    // FlatForest pins the mapping via its backing reference.
    CLOUDSURV_ASSIGN_OR_RETURN(slot->flat,
                               ml::FlatForest::FromView(reader, entry.slot));
    slot->threshold = entry.threshold;
    slot->present = true;
    ++loaded;
  }
  if (loaded != meta.num_models) {
    return Status::InvalidArgument(
        path + ": service meta declares " +
        std::to_string(meta.num_models) + " models, found " +
        std::to_string(loaded));
  }
  if (!service.pooled_model_.present) {
    return Status::InvalidArgument(path +
                                   ": artifact lacks a pooled model");
  }
  return service;
}

}  // namespace cloudsurv::core
