#ifndef CLOUDSURV_CORE_PLACEMENT_H_
#define CLOUDSURV_CORE_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/provisioning.h"
#include "telemetry/store.h"

namespace cloudsurv::core {

/// Cluster model for tenant placement: identical servers with a fixed
/// DTU capacity each. Databases occupy their SLO's DTUs from creation
/// to drop. Section 3.1's fragmentation argument: churn interleaved
/// with long-lived tenants leaves servers pocked with holes, so
/// creations need more servers than the load justifies.
struct ClusterConfig {
  int server_capacity_dtus = 2000;
  /// Longevity-aware policies place churn-pool tenants on a dedicated
  /// sub-cluster; tenants in the general/stable pools share the rest.
  bool segregate_churn_pool = false;
};

/// Outcome of replaying a region's create/drop stream against a
/// placement policy.
struct PlacementReport {
  size_t placements = 0;          ///< Databases placed.
  size_t rejected = 0;            ///< Never placeable (SLO > capacity).
  size_t servers_used = 0;        ///< Distinct servers ever opened.
  /// Peak number of simultaneously non-empty servers.
  size_t peak_active_servers = 0;
  /// Peak total occupied DTUs (lower bound on needed servers =
  /// ceil(peak_dtus / capacity)).
  int64_t peak_occupied_dtus = 0;
  /// Packing overhead measured at the peak-fleet instant:
  /// peak_active_servers / bin-packing lower bound for the occupancy at
  /// that moment (1.0 = perfect packing; grows with fragmentation).
  double packing_overhead = 0.0;
  /// Time-weighted mean fraction of capacity wasted on active
  /// (non-empty) servers: the waste fraction is integrated between
  /// consecutive replay events and divided by the total time any
  /// server was active (0.0 if none ever was).
  double mean_fragmentation = 0.0;

  std::string ToString() const;
};

/// Replays every database of `store` chronologically: on creation,
/// place it on the first server (of its pool's sub-cluster, when
/// segregation is on) with enough free DTUs, opening a new server if
/// none fits; on drop (or SLO change), release/adjust the occupancy.
/// First-fit with this arrival/departure pattern is the classic
/// fragmentation victim; segregating churn tenants (per `plan`)
/// consolidates the holes.
Result<PlacementReport> SimulatePlacement(
    const telemetry::TelemetryStore& store, const PoolAssignmentPlan& plan,
    const ClusterConfig& config);

/// Maintenance knobs for the cost-accounting deployment replay (the
/// architecture-catalog generalization of `ProvisioningPolicyConfig`;
/// see docs/provisioning.md for the cost-model equations).
struct DeploymentConfig {
  /// Non-critical service rollouts happen this often; each one hits
  /// every alive tenant, with the consequence decided by the tenant's
  /// architecture (disrupt / defer / transparent).
  double maintenance_interval_days = 14.0;
  /// On maintenance-deferring (dense) tiers a tenant skips rollouts
  /// until it outlives this grace period; after that every rollout
  /// force-updates it (section 3.1's stale-software bound).
  double stale_grace_days = 45.0;
};

/// Per-architecture slice of a deployment replay.
struct ArchitectureUsage {
  std::string name;
  size_t placements = 0;         ///< Initial placements landing here.
  size_t nodes_used = 0;         ///< Distinct nodes ever opened.
  size_t peak_active_nodes = 0;  ///< Peak simultaneously non-empty nodes.
  /// Integrated active-node time in days (a node accrues only while it
  /// hosts at least one tenant — idle nodes scale to zero).
  double node_days = 0.0;
  double infra_cost = 0.0;  ///< node_days * node_price_per_day.
  double ops_cost = 0.0;    ///< Attach + detach + disruption dollars here.
  /// Time-weighted mean wasted-capacity fraction on this tier's active
  /// nodes (same definition as PlacementReport::mean_fragmentation).
  double mean_fragmentation = 0.0;
};

/// Dollar-and-disruption outcome of replaying a region against an
/// architecture assignment plan. `total_cost = infra_cost + ops_cost`;
/// `sla_violations` counts tenant-visible incidents: non-transparent
/// maintenance disruptions (forced updates included) + resize-forced
/// moves + rejections.
struct DeploymentReport {
  size_t num_databases = 0;
  size_t placements = 0;  ///< Databases placed at creation.
  size_t rejected = 0;    ///< No architecture could ever host the SLO.
  size_t moves = 0;       ///< Resize-forced relocations (tenant-visible).
  /// Placements that could not go on the plan's preferred architecture
  /// (SLO exceeds its node capacity) and cascaded to another tier.
  size_t spillovers = 0;
  /// Tenant-visible maintenance hits (standard tiers, and dense tiers
  /// past the grace period).
  size_t disruptions = 0;
  /// Rollout hits a maintenance-deferring tier absorbed inside grace.
  size_t avoided_disruptions = 0;
  /// Rollout hits hidden behind replica failover: they cost money
  /// (ops_cost) but are not SLA violations.
  size_t transparent_disruptions = 0;
  size_t sla_violations = 0;
  double node_days = 0.0;
  double infra_cost = 0.0;
  double ops_cost = 0.0;
  double total_cost = 0.0;
  /// Fleet-wide time-weighted mean wasted-capacity fraction.
  double mean_fragmentation = 0.0;
  /// One entry per catalog architecture, in catalog order.
  std::vector<ArchitectureUsage> per_architecture;

  std::string ToString() const;
  /// Single-line JSON object (bench/CLI machine output).
  std::string ToJson() const;
};

/// Replays the region chronologically against `plan` over `catalog`:
/// first-fit packing onto per-architecture node fleets (a tenant whose
/// SLO exceeds its preferred tier's node spills preferred -> default ->
/// first fitting tier -> rejected), resize overflows relocate the
/// tenant (detach + attach + one SLA violation), and maintenance
/// rollouts every `maintenance_interval_days` hit every alive tenant
/// with its architecture's contract. Deterministic in
/// (store, plan, catalog, config) — the replay draws no randomness.
Result<DeploymentReport> SimulateDeployment(
    const telemetry::TelemetryStore& store,
    const ArchitectureAssignmentPlan& plan,
    const ArchitectureCatalog& catalog, const DeploymentConfig& config);

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_PLACEMENT_H_
