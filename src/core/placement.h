#ifndef CLOUDSURV_CORE_PLACEMENT_H_
#define CLOUDSURV_CORE_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/provisioning.h"
#include "telemetry/store.h"

namespace cloudsurv::core {

/// Cluster model for tenant placement: identical servers with a fixed
/// DTU capacity each. Databases occupy their SLO's DTUs from creation
/// to drop. Section 3.1's fragmentation argument: churn interleaved
/// with long-lived tenants leaves servers pocked with holes, so
/// creations need more servers than the load justifies.
struct ClusterConfig {
  int server_capacity_dtus = 2000;
  /// Longevity-aware policies place churn-pool tenants on a dedicated
  /// sub-cluster; tenants in the general/stable pools share the rest.
  bool segregate_churn_pool = false;
};

/// Outcome of replaying a region's create/drop stream against a
/// placement policy.
struct PlacementReport {
  size_t placements = 0;          ///< Databases placed.
  size_t rejected = 0;            ///< Never placeable (SLO > capacity).
  size_t servers_used = 0;        ///< Distinct servers ever opened.
  /// Peak number of simultaneously non-empty servers.
  size_t peak_active_servers = 0;
  /// Peak total occupied DTUs (lower bound on needed servers =
  /// ceil(peak_dtus / capacity)).
  int64_t peak_occupied_dtus = 0;
  /// Packing overhead measured at the peak-fleet instant:
  /// peak_active_servers / bin-packing lower bound for the occupancy at
  /// that moment (1.0 = perfect packing; grows with fragmentation).
  double packing_overhead = 0.0;
  /// Mean fraction of capacity wasted on active (non-empty) servers,
  /// sampled daily.
  double mean_fragmentation = 0.0;

  std::string ToString() const;
};

/// Replays every database of `store` chronologically: on creation,
/// place it on the first server (of its pool's sub-cluster, when
/// segregation is on) with enough free DTUs, opening a new server if
/// none fits; on drop (or SLO change), release/adjust the occupancy.
/// First-fit with this arrival/departure pattern is the classic
/// fragmentation victim; segregating churn tenants (per `plan`)
/// consolidates the holes.
Result<PlacementReport> SimulatePlacement(
    const telemetry::TelemetryStore& store, const PoolAssignmentPlan& plan,
    const ClusterConfig& config);

}  // namespace cloudsurv::core

#endif  // CLOUDSURV_CORE_PLACEMENT_H_
