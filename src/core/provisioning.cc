#include "core/provisioning.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>

#include "common/rng.h"
#include "common/string_util.h"
#include "telemetry/civil_time.h"

namespace cloudsurv::core {

using telemetry::DatabaseRecord;
using telemetry::kSecondsPerDay;
using telemetry::Timestamp;

const char* PoolToString(Pool pool) {
  switch (pool) {
    case Pool::kGeneral:
      return "general";
    case Pool::kChurn:
      return "churn";
    case Pool::kStable:
      return "stable";
  }
  return "unknown";
}

PoolAssignmentPlan PlanFromPredictions(
    const std::vector<PredictionOutcome>& outcomes) {
  PoolAssignmentPlan plan;
  for (const PredictionOutcome& o : outcomes) {
    if (!o.confident) continue;
    plan.pools[o.id] = o.predicted_label == 1 ? Pool::kStable : Pool::kChurn;
  }
  return plan;
}

namespace {

// Shared tier mapping for the prediction-driven and oracle policies:
// short-lived tenants go to the dense churn tier; long-lived tenants
// pay the durable premium only when they are Premium edition (where
// the SLA-credit exposure justifies it). Missing tiers degrade
// gracefully to the catalog default.
class TieredPolicy : public PlacementPolicy {
 public:
  Result<ArchitectureAssignmentPlan> Assign(
      const telemetry::TelemetryStore& store,
      const std::vector<PredictionOutcome>& outcomes,
      const ArchitectureCatalog& catalog) const final {
    if (!store.finalized()) {
      return Status::FailedPrecondition("store is not finalized");
    }
    ArchitectureAssignmentPlan plan;
    plan.default_index = catalog.default_index();
    const std::optional<size_t> dense =
        catalog.IndexOfKind(ArchitectureKind::kDense);
    const std::optional<size_t> durable =
        catalog.IndexOfKind(ArchitectureKind::kReplicated);
    for (const PredictionOutcome& outcome : outcomes) {
      if (IsShort(outcome)) {
        if (dense.has_value()) plan.assignments[outcome.id] = *dense;
      } else if (IsLong(outcome) && durable.has_value()) {
        CLOUDSURV_ASSIGN_OR_RETURN(const telemetry::DatabaseRecord record,
                                   store.FindDatabase(outcome.id));
        if (record.initial_edition() == telemetry::Edition::kPremium) {
          plan.assignments[outcome.id] = *durable;
        }
      }
    }
    return plan;
  }

 protected:
  virtual bool IsShort(const PredictionOutcome& outcome) const = 0;
  virtual bool IsLong(const PredictionOutcome& outcome) const = 0;
};

class NaivePlacementPolicy : public PlacementPolicy {
 public:
  const char* name() const override { return "naive"; }

  Result<ArchitectureAssignmentPlan> Assign(
      const telemetry::TelemetryStore& store,
      const std::vector<PredictionOutcome>& /*outcomes*/,
      const ArchitectureCatalog& catalog) const override {
    if (!store.finalized()) {
      return Status::FailedPrecondition("store is not finalized");
    }
    ArchitectureAssignmentPlan plan;
    plan.default_index = catalog.default_index();
    return plan;
  }
};

class LongevityPlacementPolicy : public TieredPolicy {
 public:
  const char* name() const override { return "longevity"; }

 protected:
  // Act only on confident predictions (section 5.3 partition).
  bool IsShort(const PredictionOutcome& o) const override {
    return o.confident && o.predicted_label == 0;
  }
  bool IsLong(const PredictionOutcome& o) const override {
    return o.confident && o.predicted_label == 1;
  }
};

class OraclePlacementPolicy : public TieredPolicy {
 public:
  explicit OraclePlacementPolicy(double threshold_days)
      : threshold_days_(threshold_days) {}

  const char* name() const override { return "oracle"; }

 protected:
  bool IsShort(const PredictionOutcome& o) const override {
    return o.observed && o.duration_days <= threshold_days_;
  }
  bool IsLong(const PredictionOutcome& o) const override {
    return o.duration_days > threshold_days_;
  }

 private:
  double threshold_days_;
};

}  // namespace

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(
    std::string_view name, double oracle_threshold_days) {
  if (name == "naive") return std::make_unique<NaivePlacementPolicy>();
  if (name == "longevity") return std::make_unique<LongevityPlacementPolicy>();
  if (name == "oracle") {
    return std::make_unique<OraclePlacementPolicy>(oracle_threshold_days);
  }
  return nullptr;
}

std::string ProvisioningReport::ToString() const {
  return "databases=" + std::to_string(num_databases) +
         " disruptions=" + std::to_string(disruptions) +
         " avoided=" + std::to_string(avoided_disruptions) +
         " forced_updates=" + std::to_string(forced_updates) +
         " moves=" + std::to_string(moves) +
         " wasted_moves=" + std::to_string(wasted_moves) +
         " contention=" + FormatDouble(contention_score, 0);
}

Result<ProvisioningReport> SimulateProvisioning(
    const telemetry::TelemetryStore& store, const PoolAssignmentPlan& plan,
    const ProvisioningPolicyConfig& config) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("store is not finalized");
  }
  if (config.maintenance_interval_days <= 0.0 ||
      config.stale_grace_days <= 0.0) {
    return Status::InvalidArgument("intervals must be positive");
  }
  ProvisioningReport report;
  report.num_databases = store.num_databases();

  const Timestamp window_start = store.window_start();
  const Timestamp window_end = store.window_end();
  const int64_t window_days = (window_end - window_start) / kSecondsPerDay;

  // Maintenance rollout instants.
  std::vector<Timestamp> rollouts;
  const int64_t interval_s = static_cast<int64_t>(
      config.maintenance_interval_days * static_cast<double>(kSecondsPerDay));
  for (Timestamp t = window_start + interval_s; t < window_end;
       t += interval_s) {
    rollouts.push_back(t);
  }

  // Daily lifecycle / SLO-change op counts per pool for contention.
  std::vector<std::array<double, 2>> general_ops(
      static_cast<size_t>(window_days) + 1, {0.0, 0.0});
  auto churn_ops = general_ops;
  auto stable_ops = general_ops;
  auto ops_of = [&](Pool pool) -> std::vector<std::array<double, 2>>& {
    switch (pool) {
      case Pool::kChurn:
        return churn_ops;
      case Pool::kStable:
        return stable_ops;
      case Pool::kGeneral:
      default:
        return general_ops;
    }
  };
  auto day_index = [&](Timestamp ts) {
    return static_cast<size_t>(
        std::clamp<int64_t>((ts - window_start) / kSecondsPerDay, 0,
                            window_days));
  };

  Rng rng(config.seed);
  for (const DatabaseRecord& record : store.databases()) {
    const Pool pool = plan.PoolOf(record.id);
    const Timestamp created = record.created_at;
    const Timestamp end = record.dropped_at.has_value()
                              ? std::min(*record.dropped_at, window_end)
                              : window_end;
    const bool dropped_in_window =
        record.dropped_at.has_value() && *record.dropped_at <= window_end;

    // Maintenance accounting.
    if (pool == Pool::kChurn) {
      const Timestamp grace_deadline =
          created + static_cast<int64_t>(config.stale_grace_days *
                                         static_cast<double>(kSecondsPerDay));
      for (Timestamp rollout : rollouts) {
        if (rollout <= created || rollout >= end) continue;
        if (rollout < grace_deadline) {
          ++report.avoided_disruptions;
        } else {
          // Past the grace period the rollout can no longer be
          // deferred.
          ++report.disruptions;
        }
      }
      if (end > grace_deadline) ++report.forced_updates;
    } else {
      for (Timestamp rollout : rollouts) {
        if (rollout > created && rollout < end) ++report.disruptions;
      }
    }

    // Load-balancer moves (general and stable pools only).
    if (pool != Pool::kChurn) {
      const double life_days = static_cast<double>(end - created) /
                               static_cast<double>(kSecondsPerDay);
      const double expected_moves =
          life_days / 30.0 * config.move_rate_per_30_days;
      const int64_t num_moves = rng.Poisson(expected_moves);
      for (int64_t m = 0; m < num_moves; ++m) {
        const Timestamp move_ts =
            created + static_cast<int64_t>(rng.Uniform() *
                                           static_cast<double>(end - created));
        ++report.moves;
        if (dropped_in_window &&
            static_cast<double>(end - move_ts) /
                    static_cast<double>(kSecondsPerDay) <
                config.waste_window_days) {
          ++report.wasted_moves;
        }
      }
    }

    // Contention inputs.
    auto& ops = ops_of(pool);
    ops[day_index(created)][0] += 1.0;
    if (dropped_in_window) ops[day_index(end)][0] += 1.0;
    for (const telemetry::SloChange& c : record.slo_changes) {
      if (c.timestamp >= window_end) continue;
      ops[day_index(c.timestamp)][1] += 1.0;
    }
  }

  for (const auto* ops : {&general_ops, &churn_ops, &stable_ops}) {
    for (const auto& day : *ops) {
      report.contention_score += day[0] * day[1];
    }
  }
  return report;
}

}  // namespace cloudsurv::core
