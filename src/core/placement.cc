#include "core/placement.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/string_util.h"
#include "telemetry/types.h"

namespace cloudsurv::core {

namespace {

using telemetry::SloLadder;
using telemetry::Timestamp;

enum class ReplayEventKind { kRelease = 0, kResize = 1, kPlace = 2 };

struct ReplayEvent {
  Timestamp ts;
  ReplayEventKind kind;
  telemetry::DatabaseId db;
  int dtus = 0;       ///< For kPlace: initial DTUs. For kResize: new DTUs.
  Pool pool = Pool::kGeneral;
};

struct Server {
  int free_dtus = 0;
  int tenants = 0;
  bool churn_cluster = false;
};

}  // namespace

std::string PlacementReport::ToString() const {
  return "placements=" + std::to_string(placements) +
         " rejected=" + std::to_string(rejected) +
         " servers_used=" + std::to_string(servers_used) +
         " peak_active=" + std::to_string(peak_active_servers) +
         " peak_dtus=" + std::to_string(peak_occupied_dtus) +
         " packing_overhead=" + FormatDouble(packing_overhead, 3) +
         " mean_fragmentation=" + FormatDouble(mean_fragmentation, 3);
}

Result<PlacementReport> SimulatePlacement(
    const telemetry::TelemetryStore& store, const PoolAssignmentPlan& plan,
    const ClusterConfig& config) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("store is not finalized");
  }
  if (config.server_capacity_dtus <= 0) {
    return Status::InvalidArgument("server capacity must be positive");
  }

  // Build the replay stream.
  std::vector<ReplayEvent> events;
  for (const auto& record : store.databases()) {
    const Pool pool = plan.PoolOf(record.id);
    ReplayEvent place;
    place.ts = record.created_at;
    place.kind = ReplayEventKind::kPlace;
    place.db = record.id;
    place.dtus = SloLadder()[record.initial_slo_index].dtus;
    place.pool = pool;
    events.push_back(place);
    for (const auto& change : record.slo_changes) {
      if (change.timestamp >= store.window_end()) continue;
      ReplayEvent resize;
      resize.ts = change.timestamp;
      resize.kind = ReplayEventKind::kResize;
      resize.db = record.id;
      resize.dtus = SloLadder()[change.new_slo_index].dtus;
      events.push_back(resize);
    }
    const Timestamp end = record.dropped_at.has_value()
                              ? std::min(*record.dropped_at,
                                         store.window_end())
                              : store.window_end();
    ReplayEvent release;
    release.ts = end;
    release.kind = ReplayEventKind::kRelease;
    release.db = record.id;
    events.push_back(release);
  }
  std::sort(events.begin(), events.end(),
            [](const ReplayEvent& a, const ReplayEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.db == b.db) {
                // One database's own lifecycle stays in causal order:
                // place, then resize, then release (zero-lifetime
                // databases drop in the second they are created).
                return static_cast<int>(a.kind) >
                       static_cast<int>(b.kind);
              }
              // Across databases, free capacity before placing.
              if (a.kind != b.kind) {
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              }
              return a.db < b.db;
            });

  std::vector<Server> servers;
  // db -> (server index, occupied dtus); flat map keyed by database id.
  std::unordered_map<telemetry::DatabaseId, std::pair<size_t, int>> placed;

  PlacementReport report;
  int64_t occupied = 0;
  size_t active_servers = 0;
  double frag_weighted_sum = 0.0;
  int64_t frag_time = 0;
  Timestamp prev_ts = store.window_start();

  auto ideal_servers = [&](int64_t dtus) {
    return static_cast<size_t>(
        (dtus + config.server_capacity_dtus - 1) /
        config.server_capacity_dtus);
  };

  for (const ReplayEvent& event : events) {
    // Accumulate time-weighted fragmentation over [prev_ts, event.ts).
    if (event.ts > prev_ts && active_servers > 0) {
      const double capacity_total =
          static_cast<double>(active_servers) *
          static_cast<double>(config.server_capacity_dtus);
      const double frag =
          (capacity_total - static_cast<double>(occupied)) / capacity_total;
      frag_weighted_sum += frag * static_cast<double>(event.ts - prev_ts);
      frag_time += event.ts - prev_ts;
    }
    prev_ts = std::max(prev_ts, event.ts);

    switch (event.kind) {
      case ReplayEventKind::kPlace: {
        if (event.dtus > config.server_capacity_dtus) {
          ++report.rejected;
          break;
        }
        const bool want_churn_cluster =
            config.segregate_churn_pool && event.pool == Pool::kChurn;
        size_t chosen = servers.size();
        for (size_t s = 0; s < servers.size(); ++s) {
          if (servers[s].churn_cluster != want_churn_cluster) continue;
          if (servers[s].free_dtus >= event.dtus) {
            chosen = s;
            break;
          }
        }
        if (chosen == servers.size()) {
          Server fresh;
          fresh.free_dtus = config.server_capacity_dtus;
          fresh.churn_cluster = want_churn_cluster;
          servers.push_back(fresh);
          ++report.servers_used;
        }
        Server& server = servers[chosen];
        if (server.tenants == 0) ++active_servers;
        server.free_dtus -= event.dtus;
        server.tenants += 1;
        occupied += event.dtus;
        placed[event.db] = {chosen, event.dtus};
        ++report.placements;
        break;
      }
      case ReplayEventKind::kResize: {
        auto it = placed.find(event.db);
        if (it == placed.end()) break;
        auto& [server_index, dtus] = it->second;
        Server& server = servers[server_index];
        const int delta = event.dtus - dtus;
        // A grow that no longer fits forces a move to another server.
        if (delta > 0 && server.free_dtus < delta) {
          server.free_dtus += dtus;
          server.tenants -= 1;
          if (server.tenants == 0) --active_servers;
          occupied -= dtus;
          placed.erase(it);
          if (event.dtus > config.server_capacity_dtus) {
            // The tenant outgrew any server; it can no longer be
            // hosted on this cluster tier.
            ++report.rejected;
            break;
          }
          ReplayEvent replace = event;
          replace.kind = ReplayEventKind::kPlace;
          replace.pool = plan.PoolOf(event.db);
          // Re-run the placement logic inline.
          const bool want_churn_cluster =
              config.segregate_churn_pool && replace.pool == Pool::kChurn;
          size_t chosen = servers.size();
          for (size_t s = 0; s < servers.size(); ++s) {
            if (servers[s].churn_cluster != want_churn_cluster) continue;
            if (servers[s].free_dtus >= replace.dtus) {
              chosen = s;
              break;
            }
          }
          if (chosen == servers.size()) {
            Server fresh;
            fresh.free_dtus = config.server_capacity_dtus;
            fresh.churn_cluster = want_churn_cluster;
            servers.push_back(fresh);
            ++report.servers_used;
          }
          Server& target = servers[chosen];
          if (target.tenants == 0) ++active_servers;
          target.free_dtus -= replace.dtus;
          target.tenants += 1;
          occupied += replace.dtus;
          placed[event.db] = {chosen, replace.dtus};
        } else {
          server.free_dtus -= delta;
          occupied += delta;
          dtus = event.dtus;
        }
        break;
      }
      case ReplayEventKind::kRelease: {
        auto it = placed.find(event.db);
        if (it == placed.end()) break;
        Server& server = servers[it->second.first];
        server.free_dtus += it->second.second;
        server.tenants -= 1;
        if (server.tenants == 0) --active_servers;
        occupied -= it->second.second;
        placed.erase(it);
        break;
      }
    }

    if (active_servers > report.peak_active_servers) {
      report.peak_active_servers = active_servers;
      // Packing quality at the moment the fleet is largest: how many
      // servers are open vs the bin-packing lower bound for the same
      // occupancy.
      report.packing_overhead =
          occupied > 0 ? static_cast<double>(active_servers) /
                             static_cast<double>(ideal_servers(occupied))
                       : 1.0;
    }
    report.peak_occupied_dtus =
        std::max(report.peak_occupied_dtus, occupied);
  }
  report.mean_fragmentation =
      frag_time > 0 ? frag_weighted_sum / static_cast<double>(frag_time)
                    : 0.0;
  return report;
}

}  // namespace cloudsurv::core
