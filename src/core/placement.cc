#include "core/placement.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "telemetry/types.h"

namespace cloudsurv::core {

namespace {

using telemetry::kSecondsPerDay;
using telemetry::SloLadder;
using telemetry::Timestamp;

enum class ReplayEventKind { kRelease = 0, kResize = 1, kPlace = 2 };

struct ReplayEvent {
  Timestamp ts;
  ReplayEventKind kind;
  telemetry::DatabaseId db;
  int dtus = 0;       ///< For kPlace: initial DTUs. For kResize: new DTUs.
  Pool pool = Pool::kGeneral;
  /// For kRelease: true when the tenant really dropped inside the
  /// window (vs the synthetic end-of-window release of a survivor).
  bool observed_drop = false;
};

struct Server {
  int free_dtus = 0;
  int tenants = 0;
  bool churn_cluster = false;
};

/// Builds the chronologically sorted create/resize/release stream both
/// replays share. Ordering at equal timestamps: one database's own
/// lifecycle stays causal (place, resize, release — zero-lifetime
/// databases drop in the second they are created); across databases,
/// capacity is freed before new placements consume it.
std::vector<ReplayEvent> BuildReplayEvents(
    const telemetry::TelemetryStore& store) {
  std::vector<ReplayEvent> events;
  for (const auto& record : store.databases()) {
    ReplayEvent place;
    place.ts = record.created_at;
    place.kind = ReplayEventKind::kPlace;
    place.db = record.id;
    place.dtus = SloLadder()[record.initial_slo_index].dtus;
    events.push_back(place);
    for (const auto& change : record.slo_changes) {
      if (change.timestamp >= store.window_end()) continue;
      ReplayEvent resize;
      resize.ts = change.timestamp;
      resize.kind = ReplayEventKind::kResize;
      resize.db = record.id;
      resize.dtus = SloLadder()[change.new_slo_index].dtus;
      events.push_back(resize);
    }
    ReplayEvent release;
    release.ts = record.dropped_at.has_value()
                     ? std::min(*record.dropped_at, store.window_end())
                     : store.window_end();
    release.kind = ReplayEventKind::kRelease;
    release.db = record.id;
    release.observed_drop =
        record.dropped_at.has_value() && *record.dropped_at <= store.window_end();
    events.push_back(release);
  }
  std::sort(events.begin(), events.end(),
            [](const ReplayEvent& a, const ReplayEvent& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (a.db == b.db) {
                return static_cast<int>(a.kind) > static_cast<int>(b.kind);
              }
              if (a.kind != b.kind) {
                return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              }
              return a.db < b.db;
            });
  return events;
}

}  // namespace

std::string PlacementReport::ToString() const {
  return "placements=" + std::to_string(placements) +
         " rejected=" + std::to_string(rejected) +
         " servers_used=" + std::to_string(servers_used) +
         " peak_active=" + std::to_string(peak_active_servers) +
         " peak_dtus=" + std::to_string(peak_occupied_dtus) +
         " packing_overhead=" + FormatDouble(packing_overhead, 3) +
         " mean_fragmentation=" + FormatDouble(mean_fragmentation, 3);
}

Result<PlacementReport> SimulatePlacement(
    const telemetry::TelemetryStore& store, const PoolAssignmentPlan& plan,
    const ClusterConfig& config) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("store is not finalized");
  }
  if (config.server_capacity_dtus <= 0) {
    return Status::InvalidArgument("server capacity must be positive");
  }

  std::vector<ReplayEvent> events = BuildReplayEvents(store);
  for (ReplayEvent& event : events) {
    if (event.kind == ReplayEventKind::kPlace) {
      event.pool = plan.PoolOf(event.db);
    }
  }

  std::vector<Server> servers;
  // db -> (server index, occupied dtus); flat map keyed by database id.
  std::unordered_map<telemetry::DatabaseId, std::pair<size_t, int>> placed;

  PlacementReport report;
  int64_t occupied = 0;
  size_t active_servers = 0;
  double frag_weighted_sum = 0.0;
  int64_t frag_time = 0;
  Timestamp prev_ts = store.window_start();

  auto ideal_servers = [&](int64_t dtus) {
    return static_cast<size_t>(
        (dtus + config.server_capacity_dtus - 1) /
        config.server_capacity_dtus);
  };

  for (const ReplayEvent& event : events) {
    // Accumulate time-weighted fragmentation over [prev_ts, event.ts).
    if (event.ts > prev_ts && active_servers > 0) {
      const double capacity_total =
          static_cast<double>(active_servers) *
          static_cast<double>(config.server_capacity_dtus);
      const double frag =
          (capacity_total - static_cast<double>(occupied)) / capacity_total;
      frag_weighted_sum += frag * static_cast<double>(event.ts - prev_ts);
      frag_time += event.ts - prev_ts;
    }
    prev_ts = std::max(prev_ts, event.ts);

    switch (event.kind) {
      case ReplayEventKind::kPlace: {
        if (event.dtus > config.server_capacity_dtus) {
          ++report.rejected;
          break;
        }
        const bool want_churn_cluster =
            config.segregate_churn_pool && event.pool == Pool::kChurn;
        size_t chosen = servers.size();
        for (size_t s = 0; s < servers.size(); ++s) {
          if (servers[s].churn_cluster != want_churn_cluster) continue;
          if (servers[s].free_dtus >= event.dtus) {
            chosen = s;
            break;
          }
        }
        if (chosen == servers.size()) {
          Server fresh;
          fresh.free_dtus = config.server_capacity_dtus;
          fresh.churn_cluster = want_churn_cluster;
          servers.push_back(fresh);
          ++report.servers_used;
        }
        Server& server = servers[chosen];
        if (server.tenants == 0) ++active_servers;
        server.free_dtus -= event.dtus;
        server.tenants += 1;
        occupied += event.dtus;
        placed[event.db] = {chosen, event.dtus};
        ++report.placements;
        break;
      }
      case ReplayEventKind::kResize: {
        auto it = placed.find(event.db);
        if (it == placed.end()) break;
        auto& [server_index, dtus] = it->second;
        Server& server = servers[server_index];
        const int delta = event.dtus - dtus;
        // A grow that no longer fits forces a move to another server.
        if (delta > 0 && server.free_dtus < delta) {
          server.free_dtus += dtus;
          server.tenants -= 1;
          if (server.tenants == 0) --active_servers;
          occupied -= dtus;
          placed.erase(it);
          if (event.dtus > config.server_capacity_dtus) {
            // The tenant outgrew any server; it can no longer be
            // hosted on this cluster tier.
            ++report.rejected;
            break;
          }
          ReplayEvent replace = event;
          replace.kind = ReplayEventKind::kPlace;
          replace.pool = plan.PoolOf(event.db);
          // Re-run the placement logic inline.
          const bool want_churn_cluster =
              config.segregate_churn_pool && replace.pool == Pool::kChurn;
          size_t chosen = servers.size();
          for (size_t s = 0; s < servers.size(); ++s) {
            if (servers[s].churn_cluster != want_churn_cluster) continue;
            if (servers[s].free_dtus >= replace.dtus) {
              chosen = s;
              break;
            }
          }
          if (chosen == servers.size()) {
            Server fresh;
            fresh.free_dtus = config.server_capacity_dtus;
            fresh.churn_cluster = want_churn_cluster;
            servers.push_back(fresh);
            ++report.servers_used;
          }
          Server& target = servers[chosen];
          if (target.tenants == 0) ++active_servers;
          target.free_dtus -= replace.dtus;
          target.tenants += 1;
          occupied += replace.dtus;
          placed[event.db] = {chosen, replace.dtus};
        } else {
          server.free_dtus -= delta;
          occupied += delta;
          dtus = event.dtus;
        }
        break;
      }
      case ReplayEventKind::kRelease: {
        auto it = placed.find(event.db);
        if (it == placed.end()) break;
        Server& server = servers[it->second.first];
        server.free_dtus += it->second.second;
        server.tenants -= 1;
        if (server.tenants == 0) --active_servers;
        occupied -= it->second.second;
        placed.erase(it);
        break;
      }
    }

    if (active_servers > report.peak_active_servers) {
      report.peak_active_servers = active_servers;
      // Packing quality at the moment the fleet is largest: how many
      // servers are open vs the bin-packing lower bound for the same
      // occupancy.
      report.packing_overhead =
          occupied > 0 ? static_cast<double>(active_servers) /
                             static_cast<double>(ideal_servers(occupied))
                       : 1.0;
    }
    report.peak_occupied_dtus =
        std::max(report.peak_occupied_dtus, occupied);
  }
  report.mean_fragmentation =
      frag_time > 0 ? frag_weighted_sum / static_cast<double>(frag_time)
                    : 0.0;
  return report;
}

std::string DeploymentReport::ToString() const {
  std::string out =
      "databases=" + std::to_string(num_databases) +
      " placements=" + std::to_string(placements) +
      " rejected=" + std::to_string(rejected) +
      " moves=" + std::to_string(moves) +
      " spillovers=" + std::to_string(spillovers) +
      " disruptions=" + std::to_string(disruptions) +
      " avoided=" + std::to_string(avoided_disruptions) +
      " transparent=" + std::to_string(transparent_disruptions) +
      " sla_violations=" + std::to_string(sla_violations) +
      " node_days=" + FormatDouble(node_days, 1) +
      " infra_cost=" + FormatDouble(infra_cost, 2) +
      " ops_cost=" + FormatDouble(ops_cost, 2) +
      " total_cost=" + FormatDouble(total_cost, 2) +
      " mean_fragmentation=" + FormatDouble(mean_fragmentation, 3);
  return out;
}

std::string DeploymentReport::ToJson() const {
  std::string out = "{";
  out += "\"num_databases\": " + std::to_string(num_databases);
  out += ", \"placements\": " + std::to_string(placements);
  out += ", \"rejected\": " + std::to_string(rejected);
  out += ", \"moves\": " + std::to_string(moves);
  out += ", \"spillovers\": " + std::to_string(spillovers);
  out += ", \"disruptions\": " + std::to_string(disruptions);
  out += ", \"avoided_disruptions\": " + std::to_string(avoided_disruptions);
  out += ", \"transparent_disruptions\": " +
         std::to_string(transparent_disruptions);
  out += ", \"sla_violations\": " + std::to_string(sla_violations);
  out += ", \"node_days\": " + FormatDouble(node_days, 3);
  out += ", \"infra_cost\": " + FormatDouble(infra_cost, 2);
  out += ", \"ops_cost\": " + FormatDouble(ops_cost, 2);
  out += ", \"total_cost\": " + FormatDouble(total_cost, 2);
  out += ", \"mean_fragmentation\": " + FormatDouble(mean_fragmentation, 4);
  out += ", \"per_architecture\": [";
  for (size_t i = 0; i < per_architecture.size(); ++i) {
    const ArchitectureUsage& u = per_architecture[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + u.name + "\"";
    out += ", \"placements\": " + std::to_string(u.placements);
    out += ", \"nodes_used\": " + std::to_string(u.nodes_used);
    out += ", \"peak_active_nodes\": " + std::to_string(u.peak_active_nodes);
    out += ", \"node_days\": " + FormatDouble(u.node_days, 3);
    out += ", \"infra_cost\": " + FormatDouble(u.infra_cost, 2);
    out += ", \"ops_cost\": " + FormatDouble(u.ops_cost, 2);
    out += ", \"mean_fragmentation\": " + FormatDouble(u.mean_fragmentation, 4);
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

struct DeployNode {
  int free_dtus = 0;
  int tenants = 0;
};

struct ArchFleet {
  std::vector<DeployNode> nodes;
  size_t active = 0;       ///< Non-empty nodes right now.
  int64_t occupied = 0;    ///< Occupied DTUs right now.
  double node_seconds = 0.0;
  double frag_weighted = 0.0;
  double active_seconds = 0.0;
};

struct DeployedTenant {
  size_t arch = 0;
  size_t node = 0;
  int dtus = 0;
  Timestamp created = 0;
};

}  // namespace

Result<DeploymentReport> SimulateDeployment(
    const telemetry::TelemetryStore& store,
    const ArchitectureAssignmentPlan& plan,
    const ArchitectureCatalog& catalog, const DeploymentConfig& config) {
  if (!store.finalized()) {
    return Status::FailedPrecondition("store is not finalized");
  }
  if (config.maintenance_interval_days <= 0.0 ||
      config.stale_grace_days <= 0.0) {
    return Status::InvalidArgument("intervals must be positive");
  }
  if (catalog.size() == 0) {
    return Status::InvalidArgument("catalog is empty");
  }
  if (plan.default_index >= catalog.size()) {
    return Status::InvalidArgument("plan default_index out of range");
  }
  for (const auto& [db, arch] : plan.assignments) {
    if (arch >= catalog.size()) {
      return Status::InvalidArgument(
          "plan assigns database " + std::to_string(db) +
          " to architecture index " + std::to_string(arch) +
          ", catalog has " + std::to_string(catalog.size()));
    }
  }

  DeploymentReport report;
  report.num_databases = store.num_databases();
  report.per_architecture.resize(catalog.size());
  for (size_t a = 0; a < catalog.size(); ++a) {
    report.per_architecture[a].name = catalog.at(a).name();
  }

  const Timestamp window_start = store.window_start();
  const Timestamp window_end = store.window_end();
  std::vector<Timestamp> rollouts;
  const int64_t interval_s = static_cast<int64_t>(
      config.maintenance_interval_days * static_cast<double>(kSecondsPerDay));
  for (Timestamp t = window_start + interval_s; t < window_end;
       t += interval_s) {
    rollouts.push_back(t);
  }
  const int64_t grace_s = static_cast<int64_t>(
      config.stale_grace_days * static_cast<double>(kSecondsPerDay));

  std::vector<ArchFleet> fleets(catalog.size());
  // Ordered map so rollout sweeps (and their floating-point cost sums)
  // visit tenants in a platform-independent order.
  std::map<telemetry::DatabaseId, DeployedTenant> tenants;
  double global_frag_weighted = 0.0;
  double global_active_seconds = 0.0;
  Timestamp prev_ts = window_start;

  auto advance_time = [&](Timestamp to) {
    if (to <= prev_ts) return;
    const double dt = static_cast<double>(to - prev_ts);
    double total_capacity = 0.0;
    double total_occupied = 0.0;
    for (size_t a = 0; a < fleets.size(); ++a) {
      ArchFleet& fleet = fleets[a];
      if (fleet.active == 0) continue;
      const double capacity =
          static_cast<double>(fleet.active) *
          static_cast<double>(catalog.at(a).node_capacity_dtus());
      fleet.node_seconds += static_cast<double>(fleet.active) * dt;
      fleet.frag_weighted +=
          (capacity - static_cast<double>(fleet.occupied)) / capacity * dt;
      fleet.active_seconds += dt;
      total_capacity += capacity;
      total_occupied += static_cast<double>(fleet.occupied);
    }
    if (total_capacity > 0.0) {
      global_frag_weighted +=
          (total_capacity - total_occupied) / total_capacity * dt;
      global_active_seconds += dt;
    }
    prev_ts = to;
  };

  // Places `dtus` for `db`, cascading preferred -> default -> first
  // fitting tier. Returns false when no architecture's node can ever
  // host the SLO.
  auto place_tenant = [&](telemetry::DatabaseId db, int dtus,
                          Timestamp created, size_t preferred) {
    size_t arch = catalog.size();
    for (size_t candidate :
         {preferred, plan.default_index}) {
      if (catalog.at(candidate).node_capacity_dtus() >= dtus) {
        arch = candidate;
        break;
      }
    }
    if (arch == catalog.size()) {
      for (size_t a = 0; a < catalog.size(); ++a) {
        if (catalog.at(a).node_capacity_dtus() >= dtus) {
          arch = a;
          break;
        }
      }
    }
    if (arch == catalog.size()) return false;
    if (arch != preferred) ++report.spillovers;
    ArchFleet& fleet = fleets[arch];
    size_t chosen = fleet.nodes.size();
    for (size_t n = 0; n < fleet.nodes.size(); ++n) {
      if (fleet.nodes[n].free_dtus >= dtus) {
        chosen = n;
        break;
      }
    }
    if (chosen == fleet.nodes.size()) {
      DeployNode fresh;
      fresh.free_dtus = catalog.at(arch).node_capacity_dtus();
      fleet.nodes.push_back(fresh);
      ++report.per_architecture[arch].nodes_used;
    }
    DeployNode& node = fleet.nodes[chosen];
    if (node.tenants == 0) {
      ++fleet.active;
      report.per_architecture[arch].peak_active_nodes = std::max(
          report.per_architecture[arch].peak_active_nodes, fleet.active);
    }
    node.free_dtus -= dtus;
    node.tenants += 1;
    fleet.occupied += dtus;
    report.per_architecture[arch].ops_cost += catalog.at(arch).attach_cost();
    tenants[db] = DeployedTenant{arch, chosen, dtus, created};
    return true;
  };

  auto detach_tenant = [&](std::map<telemetry::DatabaseId,
                                    DeployedTenant>::iterator it) {
    const DeployedTenant& tenant = it->second;
    ArchFleet& fleet = fleets[tenant.arch];
    DeployNode& node = fleet.nodes[tenant.node];
    node.free_dtus += tenant.dtus;
    node.tenants -= 1;
    if (node.tenants == 0) --fleet.active;
    fleet.occupied -= tenant.dtus;
    tenants.erase(it);
  };

  auto do_rollout = [&](Timestamp ts) {
    for (const auto& [db, tenant] : tenants) {
      const Architecture& arch = catalog.at(tenant.arch);
      if (arch.defers_maintenance()) {
        if (ts < tenant.created + grace_s) {
          ++report.avoided_disruptions;
          continue;
        }
        // Past the grace period the rollout force-updates the tenant.
        ++report.disruptions;
        ++report.sla_violations;
      } else if (arch.transparent_maintenance()) {
        ++report.transparent_disruptions;
      } else {
        ++report.disruptions;
        ++report.sla_violations;
      }
      report.per_architecture[tenant.arch].ops_cost +=
          arch.DisruptionCost(tenant.dtus);
    }
  };

  const std::vector<ReplayEvent> events = BuildReplayEvents(store);
  size_t next_rollout = 0;
  for (const ReplayEvent& event : events) {
    while (next_rollout < rollouts.size() &&
           rollouts[next_rollout] < event.ts) {
      advance_time(rollouts[next_rollout]);
      do_rollout(rollouts[next_rollout]);
      ++next_rollout;
    }
    advance_time(event.ts);

    switch (event.kind) {
      case ReplayEventKind::kPlace: {
        const size_t preferred = plan.ArchitectureOf(event.db);
        if (place_tenant(event.db, event.dtus, event.ts, preferred)) {
          ++report.placements;
          ++report.per_architecture[tenants[event.db].arch].placements;
        } else {
          ++report.rejected;
          ++report.sla_violations;
        }
        break;
      }
      case ReplayEventKind::kResize: {
        auto it = tenants.find(event.db);
        if (it == tenants.end()) break;
        DeployedTenant& tenant = it->second;
        ArchFleet& fleet = fleets[tenant.arch];
        DeployNode& node = fleet.nodes[tenant.node];
        const int delta = event.dtus - tenant.dtus;
        if (delta <= node.free_dtus) {
          node.free_dtus -= delta;
          fleet.occupied += delta;
          tenant.dtus = event.dtus;
          break;
        }
        // The grow no longer fits: relocate (tenant-visible).
        const Timestamp created = tenant.created;
        const size_t old_arch = tenant.arch;
        report.per_architecture[old_arch].ops_cost +=
            catalog.at(old_arch).detach_cost();
        detach_tenant(it);
        if (place_tenant(event.db, event.dtus, created,
                         plan.ArchitectureOf(event.db))) {
          ++report.moves;
          ++report.sla_violations;
        } else {
          ++report.rejected;
          ++report.sla_violations;
        }
        break;
      }
      case ReplayEventKind::kRelease: {
        auto it = tenants.find(event.db);
        if (it == tenants.end()) break;
        // Survivors released at window end are an accounting artifact,
        // not a real departure — no detach work is charged for them.
        if (event.observed_drop) {
          report.per_architecture[it->second.arch].ops_cost +=
              catalog.at(it->second.arch).detach_cost();
        }
        detach_tenant(it);
        break;
      }
    }
  }
  while (next_rollout < rollouts.size()) {
    advance_time(rollouts[next_rollout]);
    do_rollout(rollouts[next_rollout]);
    ++next_rollout;
  }

  for (size_t a = 0; a < catalog.size(); ++a) {
    ArchitectureUsage& usage = report.per_architecture[a];
    usage.node_days =
        fleets[a].node_seconds / static_cast<double>(kSecondsPerDay);
    usage.infra_cost = usage.node_days * catalog.at(a).node_price_per_day();
    usage.mean_fragmentation =
        fleets[a].active_seconds > 0.0
            ? fleets[a].frag_weighted / fleets[a].active_seconds
            : 0.0;
    report.node_days += usage.node_days;
    report.infra_cost += usage.infra_cost;
    report.ops_cost += usage.ops_cost;
  }
  report.total_cost = report.infra_cost + report.ops_cost;
  report.mean_fragmentation =
      global_active_seconds > 0.0
          ? global_frag_weighted / global_active_seconds
          : 0.0;
  return report;
}

}  // namespace cloudsurv::core
