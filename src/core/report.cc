#include "core/report.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace cloudsurv::core {

std::string KmCurveSeries(const survival::KaplanMeierCurve& curve,
                          int max_day, int stride) {
  std::string out = "day\tS(t)\n";
  for (int day = 0; day <= max_day; day += std::max(1, stride)) {
    out += std::to_string(day) + "\t" +
           FormatDouble(curve.SurvivalAt(static_cast<double>(day)), 4) + "\n";
  }
  return out;
}

std::string KmCurveSeriesMulti(
    const std::vector<std::pair<std::string, survival::KaplanMeierCurve>>&
        curves,
    int max_day, int stride) {
  std::string out = "day";
  for (const auto& [label, curve] : curves) out += "\t" + label;
  out += "\n";
  for (int day = 0; day <= max_day; day += std::max(1, stride)) {
    out += std::to_string(day);
    for (const auto& [label, curve] : curves) {
      out += "\t" +
             FormatDouble(curve.SurvivalAt(static_cast<double>(day)), 4);
    }
    out += "\n";
  }
  return out;
}

std::string KmCurveAsciiPlot(const survival::KaplanMeierCurve& curve,
                             int max_day, int height, int width) {
  height = std::max(4, height);
  width = std::max(10, width);
  std::vector<std::string> rows(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (int x = 0; x < width; ++x) {
    const double day = static_cast<double>(max_day) * x / (width - 1);
    const double s = curve.SurvivalAt(day);
    int y = static_cast<int>(std::round((1.0 - s) * (height - 1)));
    y = std::clamp(y, 0, height - 1);
    rows[static_cast<size_t>(y)][static_cast<size_t>(x)] = '*';
  }
  std::string out;
  for (int y = 0; y < height; ++y) {
    const double level =
        1.0 - static_cast<double>(y) / static_cast<double>(height - 1);
    out += FormatDouble(level, 2) + " |" + rows[static_cast<size_t>(y)] +
           "\n";
  }
  out += "     +" + std::string(static_cast<size_t>(width), '-') + "\n";
  out += "      0 .. " + std::to_string(max_day) + " days\n";
  return out;
}

std::string ScoreComparisonRow(const std::string& label,
                               const ml::ClassificationScores& forest,
                               const ml::ClassificationScores& baseline) {
  return label + "\tforest: acc=" + FormatDouble(forest.accuracy, 2) +
         " prec=" + FormatDouble(forest.precision, 2) +
         " rec=" + FormatDouble(forest.recall, 2) +
         "\tbaseline: acc=" + FormatDouble(baseline.accuracy, 2) +
         " prec=" + FormatDouble(baseline.precision, 2) +
         " rec=" + FormatDouble(baseline.recall, 2);
}

std::string ConfidenceComparisonRow(const SubgroupExperimentResult& result) {
  auto fmt = [](const ml::ClassificationScores& s) {
    return "acc=" + FormatDouble(s.accuracy, 2) +
           " prec=" + FormatDouble(s.precision, 2) +
           " rec=" + FormatDouble(s.recall, 2);
  };
  return result.region_name + "/" + result.subgroup_name +
         "\tall: " + fmt(result.forest_avg) +
         "\tconfident: " + fmt(result.confident_avg) +
         "\tuncertain: " + fmt(result.uncertain_avg) +
         "\tbaseline: " + fmt(result.baseline_avg) + "\tconfident_share=" +
         FormatDouble(result.confident_fraction_avg * 100.0, 0) + "%";
}

std::string FormatPValue(double p) {
  if (p < 0.0000001) return "< 0.0000001";
  return FormatDouble(p, 6);
}

}  // namespace cloudsurv::core
