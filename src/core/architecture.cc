#include "core/architecture.h"

#include <cstdlib>

#include "common/string_util.h"

namespace cloudsurv::core {

namespace {

// The single registry of keys an `architecture` line accepts; the
// parser rejects anything else, and tools/check_docs.sh scrapes this
// block to keep docs/provisioning.md's key table in lockstep.
// catalog-key-registry-begin
constexpr const char* kCatalogKeys[] = {
    "kind",
    "vcpus",
    "memory_gb",
    "storage_gb",
    "capacity_dtus",
    "replicas",
    "attach_cost",
    "detach_cost",
    "disruption_cost",
    "defer_maintenance",
    "transparent_maintenance",
};
// catalog-key-registry-end

bool IsKnownKey(std::string_view key) {
  for (const char* known : kCatalogKeys) {
    if (key == known) return true;
  }
  return false;
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseInt(std::string_view text, int* out) {
  const std::string buf(text);
  char* end = nullptr;
  const long value = std::strtol(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') return false;
  *out = static_cast<int>(value);
  return true;
}

bool ParseBool(std::string_view text, bool* out) {
  if (text == "true" || text == "1") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

Status LineError(size_t line, const std::string& message) {
  return Status::InvalidArgument("catalog line " + std::to_string(line) +
                                 ": " + message);
}

class DenseArchitecture : public Architecture {
 public:
  DenseArchitecture(ArchitectureSpec spec, double price)
      : Architecture(std::move(spec), price) {}

 protected:
  // The churn contract: non-critical rollouts wait for the tenant to
  // die; attach/detach are cheap because nothing is seeded or drained.
  bool DefaultDefersMaintenance() const override { return true; }
  double DefaultAttachCost() const override { return 0.02; }
  double DefaultDetachCost() const override { return 0.01; }
};

class StandardArchitecture : public Architecture {
 public:
  StandardArchitecture(ArchitectureSpec spec, double price)
      : Architecture(std::move(spec), price) {}
};

class ReplicatedArchitecture : public Architecture {
 public:
  ReplicatedArchitecture(ArchitectureSpec spec, double price)
      : Architecture(std::move(spec), price) {}

 protected:
  // Rolling upgrades hide behind the replica failover; attach pays for
  // seeding the replica, and the residual disruption cost models the
  // brief failover blip rather than an outage.
  bool DefaultTransparentMaintenance() const override { return true; }
  double DefaultAttachCost() const override { return 0.30; }
  double DefaultDetachCost() const override { return 0.05; }
  double DefaultDisruptionCost() const override { return 0.50; }
};

class PremiumArchitecture : public Architecture {
 public:
  PremiumArchitecture(ArchitectureSpec spec, double price)
      : Architecture(std::move(spec), price) {}

 protected:
  bool DefaultTransparentMaintenance() const override { return true; }
  double DefaultAttachCost() const override { return 0.50; }
  double DefaultDetachCost() const override { return 0.10; }
  double DefaultDisruptionCost() const override { return 0.20; }
};

}  // namespace

const char* ArchitectureKindToString(ArchitectureKind kind) {
  switch (kind) {
    case ArchitectureKind::kDense:
      return "dense";
    case ArchitectureKind::kStandard:
      return "standard";
    case ArchitectureKind::kReplicated:
      return "replicated";
    case ArchitectureKind::kPremium:
      return "premium";
  }
  return "unknown";
}

bool ArchitectureKindFromString(std::string_view name,
                                ArchitectureKind* out) {
  if (name == "dense") {
    *out = ArchitectureKind::kDense;
  } else if (name == "standard") {
    *out = ArchitectureKind::kStandard;
  } else if (name == "replicated") {
    *out = ArchitectureKind::kReplicated;
  } else if (name == "premium") {
    *out = ArchitectureKind::kPremium;
  } else {
    return false;
  }
  return true;
}

Result<std::unique_ptr<Architecture>> ArchitectureBuilder::Build(
    const ArchitectureSpec& spec) const {
  if (spec.name.empty()) {
    return Status::InvalidArgument("architecture name must be non-empty");
  }
  if (spec.capacity_dtus <= 0) {
    return Status::InvalidArgument("architecture '" + spec.name +
                                   "': capacity_dtus must be positive");
  }
  if (spec.replicas < 1) {
    return Status::InvalidArgument("architecture '" + spec.name +
                                   "': replicas must be >= 1");
  }
  if (spec.vcpus < 0.0 || spec.memory_gb < 0.0 || spec.storage_gb < 0.0) {
    return Status::InvalidArgument("architecture '" + spec.name +
                                   "': resource quantities must be >= 0");
  }
  for (const auto& cost :
       {spec.attach_cost, spec.detach_cost, spec.disruption_cost}) {
    if (cost.has_value() && *cost < 0.0) {
      return Status::InvalidArgument("architecture '" + spec.name +
                                     "': costs must be >= 0");
    }
  }
  const double per_replica = spec.vcpus * resources_.vcpu_price_per_day +
                             spec.memory_gb * resources_.memory_gb_price_per_day +
                             spec.storage_gb * resources_.storage_gb_price_per_day;
  const double node_price = static_cast<double>(spec.replicas) * per_replica;
  if (node_price <= 0.0) {
    return Status::InvalidArgument(
        "architecture '" + spec.name +
        "': node price is zero; give it vcpus/memory_gb/storage_gb");
  }
  std::unique_ptr<Architecture> built;
  switch (spec.kind) {
    case ArchitectureKind::kDense:
      built = std::make_unique<DenseArchitecture>(spec, node_price);
      break;
    case ArchitectureKind::kStandard:
      built = std::make_unique<StandardArchitecture>(spec, node_price);
      break;
    case ArchitectureKind::kReplicated:
      built = std::make_unique<ReplicatedArchitecture>(spec, node_price);
      break;
    case ArchitectureKind::kPremium:
      built = std::make_unique<PremiumArchitecture>(spec, node_price);
      break;
  }
  return built;
}

Result<ArchitectureCatalog> ArchitectureCatalog::Parse(
    const std::string& spec_text) {
  ResourceCatalog resources;
  bool priced_vcpu = false;
  bool priced_memory = false;
  bool priced_storage = false;
  std::vector<ArchitectureSpec> specs;
  std::vector<size_t> spec_lines;

  const std::vector<std::string> lines = SplitString(spec_text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    const std::string_view line = TrimWhitespace(lines[i]);
    if (line.empty() || line.front() == '#') continue;

    std::vector<std::string> tokens;
    for (const std::string& raw : SplitString(std::string(line), ' ')) {
      const std::string_view token = TrimWhitespace(raw);
      if (!token.empty()) tokens.emplace_back(token);
    }

    if (tokens[0] == "resource") {
      if (tokens.size() != 3) {
        return LineError(line_no, "expected 'resource <name> <price>'");
      }
      double price = 0.0;
      if (!ParseDouble(tokens[2], &price) || price <= 0.0) {
        return LineError(line_no,
                         "resource price must be a positive number, got '" +
                             tokens[2] + "'");
      }
      if (tokens[1] == "vcpu") {
        resources.vcpu_price_per_day = price;
        priced_vcpu = true;
      } else if (tokens[1] == "memory_gb") {
        resources.memory_gb_price_per_day = price;
        priced_memory = true;
      } else if (tokens[1] == "storage_gb") {
        resources.storage_gb_price_per_day = price;
        priced_storage = true;
      } else {
        return LineError(line_no, "unknown resource '" + tokens[1] +
                                      "' (expected vcpu, memory_gb, or "
                                      "storage_gb)");
      }
    } else if (tokens[0] == "architecture") {
      if (tokens.size() < 3) {
        return LineError(line_no,
                         "expected 'architecture <name> key=value ...'");
      }
      ArchitectureSpec spec;
      spec.name = tokens[1];
      for (const ArchitectureSpec& existing : specs) {
        if (existing.name == spec.name) {
          return LineError(line_no,
                           "duplicate architecture '" + spec.name + "'");
        }
      }
      bool saw_kind = false;
      for (size_t t = 2; t < tokens.size(); ++t) {
        const size_t eq = tokens[t].find('=');
        if (eq == std::string::npos) {
          return LineError(line_no, "expected key=value, got '" + tokens[t] +
                                        "'");
        }
        const std::string key = tokens[t].substr(0, eq);
        const std::string value = tokens[t].substr(eq + 1);
        if (!IsKnownKey(key)) {
          return LineError(line_no, "unknown key '" + key + "'");
        }
        bool ok = true;
        if (key == "kind") {
          ok = ArchitectureKindFromString(value, &spec.kind);
          saw_kind = ok;
        } else if (key == "vcpus") {
          ok = ParseDouble(value, &spec.vcpus);
        } else if (key == "memory_gb") {
          ok = ParseDouble(value, &spec.memory_gb);
        } else if (key == "storage_gb") {
          ok = ParseDouble(value, &spec.storage_gb);
        } else if (key == "capacity_dtus") {
          ok = ParseInt(value, &spec.capacity_dtus);
        } else if (key == "replicas") {
          ok = ParseInt(value, &spec.replicas);
        } else if (key == "attach_cost") {
          double v = 0.0;
          ok = ParseDouble(value, &v);
          if (ok) spec.attach_cost = v;
        } else if (key == "detach_cost") {
          double v = 0.0;
          ok = ParseDouble(value, &v);
          if (ok) spec.detach_cost = v;
        } else if (key == "disruption_cost") {
          double v = 0.0;
          ok = ParseDouble(value, &v);
          if (ok) spec.disruption_cost = v;
        } else if (key == "defer_maintenance") {
          bool v = false;
          ok = ParseBool(value, &v);
          if (ok) spec.defer_maintenance = v;
        } else if (key == "transparent_maintenance") {
          bool v = false;
          ok = ParseBool(value, &v);
          if (ok) spec.transparent_maintenance = v;
        }
        if (!ok) {
          return LineError(line_no, "bad value '" + value + "' for key '" +
                                        key + "'");
        }
      }
      if (!saw_kind) {
        return LineError(line_no, "architecture '" + spec.name +
                                      "' is missing kind=...");
      }
      specs.push_back(std::move(spec));
      spec_lines.push_back(line_no);
    } else {
      return LineError(line_no, "unknown directive '" + tokens[0] +
                                    "' (expected resource or architecture)");
    }
  }

  if (!priced_vcpu || !priced_memory || !priced_storage) {
    return Status::InvalidArgument(
        "catalog: all three resource prices (vcpu, memory_gb, storage_gb) "
        "are required");
  }
  if (specs.empty()) {
    return Status::InvalidArgument(
        "catalog: at least one architecture is required");
  }

  ArchitectureCatalog catalog;
  catalog.resources_ = resources;
  ArchitectureBuilder builder(resources);
  std::optional<size_t> default_index;
  for (size_t i = 0; i < specs.size(); ++i) {
    Result<std::unique_ptr<Architecture>> built = builder.Build(specs[i]);
    if (!built.ok()) {
      return LineError(spec_lines[i], built.status().message());
    }
    if (!default_index.has_value() &&
        specs[i].kind == ArchitectureKind::kStandard) {
      default_index = i;
    }
    catalog.architectures_.push_back(std::move(*built));
  }
  if (!default_index.has_value()) {
    return Status::InvalidArgument(
        "catalog: at least one kind=standard architecture is required (the "
        "default placement target)");
  }
  catalog.default_index_ = *default_index;
  return catalog;
}

const char* ArchitectureCatalog::DefaultSpec() {
  return R"(# CloudSurv built-in architecture catalog.
# Resource prices are dollars per unit-day; see docs/provisioning.md.
resource vcpu 1.60
resource memory_gb 0.20
resource storage_gb 0.004

# Dense churn tier: half-size commodity boxes with DTUs overcommitted
# 1.5x, so the per-DTU-day price is 2/3 of general. Small node quantum
# (churn demand is bursty) and deferred maintenance.
architecture churn-dense kind=dense vcpus=4 memory_gb=32 storage_gb=1000 capacity_dtus=3000

# General-purpose default tier. Capacity covers the biggest SLO on the
# ladder (P15, 4000 DTUs) so the default tier never rejects.
architecture general kind=standard vcpus=8 memory_gb=64 storage_gb=2000 capacity_dtus=4000

# Replicated durable tier: two lean compute replicas per logical node
# over a shared storage fabric (each replica carries half the local
# storage of a general node), so per-DTU-day lands ~12% below general
# while maintenance disruptions become transparent. The catch is the
# attach cost (replica seeding) and the small node quantum — churning
# tenants through this tier wastes money.
architecture durable kind=replicated vcpus=4 memory_gb=32 storage_gb=500 capacity_dtus=4000 replicas=2

# Premium low-disruption tier: small replicated nodes, ~3.5x the
# per-DTU price of general, for tenants whose SLA credits dwarf it.
architecture premium kind=premium vcpus=4 memory_gb=32 storage_gb=500 capacity_dtus=1000 replicas=2
)";
}

ArchitectureCatalog ArchitectureCatalog::Default() {
  Result<ArchitectureCatalog> parsed = Parse(DefaultSpec());
  // The built-in spec is a compile-time constant covered by tests; a
  // parse failure here is a programming error, not an input error.
  if (!parsed.ok()) std::abort();
  return std::move(*parsed);
}

std::optional<size_t> ArchitectureCatalog::IndexOfKind(
    ArchitectureKind kind) const {
  for (size_t i = 0; i < architectures_.size(); ++i) {
    if (architectures_[i]->kind() == kind) return i;
  }
  return std::nullopt;
}

std::optional<size_t> ArchitectureCatalog::IndexOfName(
    std::string_view name) const {
  for (size_t i = 0; i < architectures_.size(); ++i) {
    if (architectures_[i]->name() == name) return i;
  }
  return std::nullopt;
}

}  // namespace cloudsurv::core
