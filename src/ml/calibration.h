#ifndef CLOUDSURV_ML_CALIBRATION_H_
#define CLOUDSURV_ML_CALIBRATION_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace cloudsurv::ml {

/// One bin of a reliability diagram.
struct ReliabilityBin {
  double lower = 0.0;           ///< Inclusive probability-bin lower edge.
  double upper = 0.0;           ///< Exclusive upper edge (last bin incl.).
  size_t count = 0;             ///< Predictions falling in the bin.
  double mean_predicted = 0.0;  ///< Average predicted probability.
  double observed_rate = 0.0;   ///< Empirical positive rate.
};

/// Calibration diagnostics of probabilistic predictions. The paper
/// relies on random-forest class probabilities as confidence levels
/// (section 5.3, citing Zadrozny & Elkan); these metrics quantify how
/// trustworthy those probabilities are.
struct CalibrationReport {
  std::vector<ReliabilityBin> bins;
  /// Brier score: mean squared error of the probabilities (lower is
  /// better; 0.25 is an uninformative 0.5-always predictor on balanced
  /// data).
  double brier_score = 0.0;
  /// Expected calibration error: count-weighted mean |predicted -
  /// observed| over bins.
  double expected_calibration_error = 0.0;
  /// Maximum calibration error over non-empty bins.
  double max_calibration_error = 0.0;

  /// Fixed-width text rendering of the reliability diagram.
  std::string ToText() const;
};

/// Computes a reliability diagram with `num_bins` equal-width bins over
/// [0, 1]. Requires parallel arrays, 0/1 labels and probabilities in
/// [0, 1].
Result<CalibrationReport> ComputeCalibration(
    const std::vector<int>& y_true,
    const std::vector<double>& positive_probability, int num_bins = 10);

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_CALIBRATION_H_
