#include "ml/random_forest.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <numeric>
#include <sstream>
#include <thread>

#include "common/rng.h"

namespace cloudsurv::ml {

std::string ForestParams::ToString() const {
  std::string mf;
  switch (max_features) {
    case MaxFeaturesRule::kSqrt:
      mf = "sqrt";
      break;
    case MaxFeaturesRule::kLog2:
      mf = "log2";
      break;
    case MaxFeaturesRule::kAll:
      mf = "all";
      break;
  }
  return "trees=" + std::to_string(num_trees) +
         " depth=" + std::to_string(max_depth) +
         " min_split=" + std::to_string(min_samples_split) +
         " min_leaf=" + std::to_string(min_samples_leaf) +
         " max_features=" + mf;
}

Status RandomForestClassifier::Fit(const Dataset& data,
                                   const ForestParams& params,
                                   uint64_t seed) {
  std::vector<size_t> all(data.num_rows());
  std::iota(all.begin(), all.end(), 0);
  return FitOnRows(data, all, params, seed);
}

Status RandomForestClassifier::FitOnRows(const Dataset& data,
                                         const std::vector<size_t>& rows,
                                         const ForestParams& params,
                                         uint64_t seed) {
  if (data.empty() || rows.empty()) {
    return Status::InvalidArgument("cannot fit a forest on empty data");
  }
  if (params.num_trees <= 0) {
    return Status::InvalidArgument("num_trees must be positive");
  }
  for (size_t r : rows) {
    if (r >= data.num_rows()) {
      return Status::OutOfRange("training row index out of range");
    }
  }
  const size_t n = rows.size();
  const int d = static_cast<int>(data.num_features());
  if (d == 0) {
    return Status::InvalidArgument("dataset has no features");
  }

  TreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_split = params.min_samples_split;
  tree_params.min_samples_leaf = params.min_samples_leaf;
  tree_params.class_weights = params.class_weights;
  tree_params.split_algorithm = params.split_algorithm;
  switch (params.max_features) {
    case MaxFeaturesRule::kSqrt:
      tree_params.max_features =
          std::max(1, static_cast<int>(std::ceil(std::sqrt(d))));
      break;
    case MaxFeaturesRule::kLog2:
      tree_params.max_features = std::max(
          1, static_cast<int>(std::ceil(std::log2(std::max(2, d)))));
      break;
    case MaxFeaturesRule::kAll:
      tree_params.max_features = -1;
      break;
  }

  num_classes_ = data.num_classes();
  num_features_ = data.num_features();
  const size_t t = static_cast<size_t>(params.num_trees);
  trees_.assign(t, DecisionTreeClassifier());

  // One shared binned view of the training rows: bin edges come from the
  // view's distribution (what training on a materialized subset would
  // see), and every tree reads the same codes.
  BinnedDataset binned;
  std::vector<int> binned_labels;
  if (params.split_algorithm == SplitAlgorithm::kHistogram) {
    CLOUDSURV_ASSIGN_OR_RETURN(binned,
                               BinnedDataset::FromDatasetRows(data, rows));
    binned_labels.resize(n);
    for (size_t i = 0; i < n; ++i) binned_labels[i] = data.label(rows[i]);
  }

  // Derive all per-tree randomness up front so the result is independent
  // of the thread schedule. Samples are POSITIONS into `rows` (the
  // binned view's row space); the exact path maps them to dataset rows.
  Rng seeder(seed);
  std::vector<uint64_t> tree_seeds(t);
  std::vector<std::vector<size_t>> samples(t);
  std::vector<std::vector<char>> in_bag(t);
  for (size_t ti = 0; ti < t; ++ti) {
    tree_seeds[ti] = static_cast<uint64_t>(
        seeder.UniformInt(0, std::numeric_limits<int64_t>::max()));
    samples[ti].resize(n);
    in_bag[ti].assign(n, 0);
    if (params.bootstrap) {
      for (size_t i = 0; i < n; ++i) {
        const size_t pick = static_cast<size_t>(
            seeder.UniformInt(0, static_cast<int64_t>(n) - 1));
        samples[ti][i] = pick;
        in_bag[ti][pick] = 1;
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        samples[ti][i] = i;
        in_bag[ti][i] = 1;
      }
    }
  }

  std::atomic<size_t> next_tree{0};
  std::atomic<bool> failed{false};
  Status first_error;
  std::mutex error_mutex;
  unsigned hw = params.num_threads > 0
                    ? static_cast<unsigned>(params.num_threads)
                    : std::max(1u, std::thread::hardware_concurrency());
  hw = std::min<unsigned>(hw, static_cast<unsigned>(t));

  auto fit_one = [&](size_t ti) -> Status {
    if (params.split_algorithm == SplitAlgorithm::kHistogram) {
      return trees_[ti].FitBinned(binned, binned_labels, num_classes_,
                                  samples[ti], tree_params, tree_seeds[ti]);
    }
    std::vector<size_t> sample_rows(n);
    for (size_t i = 0; i < n; ++i) sample_rows[i] = rows[samples[ti][i]];
    return trees_[ti].FitSubset(data, sample_rows, tree_params,
                                tree_seeds[ti]);
  };
  auto worker = [&]() {
    while (true) {
      const size_t ti = next_tree.fetch_add(1);
      if (ti >= t || failed.load()) return;
      Status s = fit_one(ti);
      if (!s.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = s;
        return;
      }
    }
  };
  if (hw <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(hw);
    for (unsigned i = 0; i < hw; ++i) threads.emplace_back(worker);
    for (auto& th : threads) th.join();
  }
  if (failed.load()) {
    trees_.clear();
    return first_error;
  }

  // Aggregate importances.
  importances_.assign(num_features_, 0.0);
  for (const auto& tree : trees_) {
    const auto& imp = tree.feature_importances();
    for (size_t f = 0; f < num_features_; ++f) importances_[f] += imp[f];
  }
  for (double& v : importances_) v /= static_cast<double>(t);

  // Out-of-bag accuracy.
  if (params.bootstrap) {
    size_t evaluated = 0;
    size_t correct = 0;
    std::vector<double> acc(static_cast<size_t>(num_classes_));
    for (size_t i = 0; i < n; ++i) {
      std::fill(acc.begin(), acc.end(), 0.0);
      size_t votes = 0;
      for (size_t ti = 0; ti < t; ++ti) {
        if (in_bag[ti][i]) continue;
        const auto& probs = trees_[ti].LeafDistribution(data.row(rows[i]));
        for (size_t c = 0; c < acc.size(); ++c) acc[c] += probs[c];
        ++votes;
      }
      if (votes == 0) continue;
      const int pred = static_cast<int>(
          std::max_element(acc.begin(), acc.end()) - acc.begin());
      ++evaluated;
      if (pred == data.label(rows[i])) ++correct;
    }
    oob_accuracy_ = evaluated == 0 ? 0.0
                                   : static_cast<double>(correct) /
                                         static_cast<double>(evaluated);
  } else {
    oob_accuracy_ = 0.0;
  }
  return Status::OK();
}

void RandomForestClassifier::AccumulateProbaInto(
    const std::vector<double>& row, std::vector<double>& acc) const {
  acc.assign(static_cast<size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const auto& probs = tree.LeafDistribution(row);
    for (size_t c = 0; c < acc.size(); ++c) acc[c] += probs[c];
  }
  const double t = static_cast<double>(trees_.size());
  for (double& v : acc) v /= t;
}

std::vector<double> RandomForestClassifier::PredictProba(
    const std::vector<double>& row) const {
  std::vector<double> acc;
  AccumulateProbaInto(row, acc);
  return acc;
}

int RandomForestClassifier::Predict(const std::vector<double>& row) const {
  std::vector<double> acc;
  AccumulateProbaInto(row, acc);
  return static_cast<int>(std::max_element(acc.begin(), acc.end()) -
                          acc.begin());
}

Result<std::vector<int>> RandomForestClassifier::PredictBatch(
    const Dataset& data) const {
  if (!fitted()) {
    return Status::FailedPrecondition("forest is not fitted");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<int> out;
  out.reserve(data.num_rows());
  std::vector<double> scratch;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    AccumulateProbaInto(data.row(i), scratch);
    out.push_back(static_cast<int>(
        std::max_element(scratch.begin(), scratch.end()) - scratch.begin()));
  }
  return out;
}

Result<std::vector<int>> RandomForestClassifier::PredictRows(
    const Dataset& data, const std::vector<size_t>& rows) const {
  if (!fitted()) {
    return Status::FailedPrecondition("forest is not fitted");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<int> out;
  out.reserve(rows.size());
  std::vector<double> scratch;
  for (size_t r : rows) {
    if (r >= data.num_rows()) {
      return Status::OutOfRange("prediction row index out of range");
    }
    AccumulateProbaInto(data.row(r), scratch);
    out.push_back(static_cast<int>(
        std::max_element(scratch.begin(), scratch.end()) - scratch.begin()));
  }
  return out;
}

Result<std::vector<double>> RandomForestClassifier::PredictPositiveProba(
    const Dataset& data) const {
  if (!fitted()) {
    return Status::FailedPrecondition("forest is not fitted");
  }
  if (num_classes_ != 2) {
    return Status::FailedPrecondition(
        "positive-class probabilities require a binary problem");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<double> out;
  out.reserve(data.num_rows());
  std::vector<double> scratch;
  for (size_t i = 0; i < data.num_rows(); ++i) {
    AccumulateProbaInto(data.row(i), scratch);
    out.push_back(scratch[1]);
  }
  return out;
}

std::string RandomForestClassifier::Serialize() const {
  char header[128];
  std::snprintf(header, sizeof(header), "forest %zu %d %zu %.17g\n",
                trees_.size(), num_classes_, num_features_, oob_accuracy_);
  std::string out = header;
  out += "importances";
  for (double v : importances_) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %.17g", v);
    out += buf;
  }
  out += "\n";
  for (const auto& tree : trees_) {
    out += tree.Serialize();
  }
  return out;
}

Result<RandomForestClassifier> RandomForestClassifier::Deserialize(
    const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  RandomForestClassifier forest;
  size_t num_trees = 0;
  if (!(is >> tag >> num_trees >> forest.num_classes_ >>
        forest.num_features_ >> forest.oob_accuracy_) ||
      tag != "forest") {
    return Status::InvalidArgument("malformed forest header");
  }
  if (!(is >> tag) || tag != "importances") {
    return Status::InvalidArgument("missing forest importances");
  }
  forest.importances_.resize(forest.num_features_);
  for (double& v : forest.importances_) {
    if (!(is >> v)) {
      return Status::InvalidArgument("malformed forest importances");
    }
  }
  // The remainder is the concatenation of tree blocks; split on the
  // "tree " header lines.
  std::string rest;
  std::getline(is, rest);  // consume end of importances line
  std::string line;
  std::vector<std::string> blocks;
  while (std::getline(is, line)) {
    if (line.rfind("tree ", 0) == 0) {
      blocks.emplace_back();
    }
    if (blocks.empty()) {
      return Status::InvalidArgument("unexpected content before trees");
    }
    blocks.back() += line;
    blocks.back() += "\n";
  }
  if (blocks.size() != num_trees) {
    return Status::InvalidArgument("forest tree count mismatch");
  }
  forest.trees_.reserve(num_trees);
  for (const std::string& block : blocks) {
    CLOUDSURV_ASSIGN_OR_RETURN(DecisionTreeClassifier tree,
                               DecisionTreeClassifier::Deserialize(block));
    if (tree.num_classes() != forest.num_classes_ ||
        tree.num_features() != forest.num_features_) {
      return Status::InvalidArgument("tree shape mismatches forest header");
    }
    forest.trees_.push_back(std::move(tree));
  }
  if (forest.trees_.empty()) {
    return Status::InvalidArgument("serialized forest has no trees");
  }
  return forest;
}

}  // namespace cloudsurv::ml
