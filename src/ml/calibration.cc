#include "ml/calibration.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace cloudsurv::ml {

Result<CalibrationReport> ComputeCalibration(
    const std::vector<int>& y_true,
    const std::vector<double>& positive_probability, int num_bins) {
  if (y_true.size() != positive_probability.size() || y_true.empty()) {
    return Status::InvalidArgument("calibration: invalid input sizes");
  }
  if (num_bins < 1) {
    return Status::InvalidArgument("calibration: num_bins must be >= 1");
  }
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] != 0 && y_true[i] != 1) {
      return Status::InvalidArgument("calibration requires 0/1 labels");
    }
    if (!(positive_probability[i] >= 0.0 && positive_probability[i] <= 1.0)) {
      return Status::InvalidArgument(
          "calibration requires probabilities in [0, 1]");
    }
  }

  CalibrationReport report;
  report.bins.resize(static_cast<size_t>(num_bins));
  std::vector<double> sum_pred(static_cast<size_t>(num_bins), 0.0);
  std::vector<double> sum_pos(static_cast<size_t>(num_bins), 0.0);
  const double width = 1.0 / static_cast<double>(num_bins);
  for (int b = 0; b < num_bins; ++b) {
    report.bins[static_cast<size_t>(b)].lower = width * b;
    report.bins[static_cast<size_t>(b)].upper = width * (b + 1);
  }

  double brier = 0.0;
  for (size_t i = 0; i < y_true.size(); ++i) {
    const double p = positive_probability[i];
    const double err = p - static_cast<double>(y_true[i]);
    brier += err * err;
    size_t b = static_cast<size_t>(p / width);
    b = std::min(b, static_cast<size_t>(num_bins) - 1);
    ++report.bins[b].count;
    sum_pred[b] += p;
    sum_pos[b] += static_cast<double>(y_true[i]);
  }
  report.brier_score = brier / static_cast<double>(y_true.size());

  double ece = 0.0;
  for (size_t b = 0; b < report.bins.size(); ++b) {
    ReliabilityBin& bin = report.bins[b];
    if (bin.count == 0) continue;
    bin.mean_predicted = sum_pred[b] / static_cast<double>(bin.count);
    bin.observed_rate = sum_pos[b] / static_cast<double>(bin.count);
    const double gap = std::fabs(bin.mean_predicted - bin.observed_rate);
    ece += gap * static_cast<double>(bin.count) /
           static_cast<double>(y_true.size());
    report.max_calibration_error =
        std::max(report.max_calibration_error, gap);
  }
  report.expected_calibration_error = ece;
  return report;
}

std::string CalibrationReport::ToText() const {
  std::string out = "bin\tcount\tmean_pred\tobserved\n";
  for (const ReliabilityBin& bin : bins) {
    out += "[" + FormatDouble(bin.lower, 1) + ", " +
           FormatDouble(bin.upper, 1) + ")\t" + std::to_string(bin.count) +
           "\t" + FormatDouble(bin.mean_predicted, 3) + "\t" +
           FormatDouble(bin.observed_rate, 3) + "\n";
  }
  out += "brier=" + FormatDouble(brier_score, 4) +
         " ece=" + FormatDouble(expected_calibration_error, 4) +
         " max_ce=" + FormatDouble(max_calibration_error, 4) + "\n";
  return out;
}

}  // namespace cloudsurv::ml
