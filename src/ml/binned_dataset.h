#ifndef CLOUDSURV_ML_BINNED_DATASET_H_
#define CLOUDSURV_ML_BINNED_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace cloudsurv::ml {

/// Which node-split search the tree trainers run.
enum class SplitAlgorithm {
  /// Re-sort every candidate feature at every node (O(n log n) per
  /// feature per node). Exhaustive over all distinct thresholds.
  kExact,
  /// LightGBM-style histogram search over pre-binned feature codes
  /// (O(n + bins) per feature per node, with the parent-minus-sibling
  /// histogram subtraction trick). The default.
  kHistogram,
};

/// A quantile-binned, column-major view of a training matrix, built once
/// per training set and shared read-only by every tree of an ensemble.
///
/// Each feature is discretized into at most `max_bins` (<= 256) bins so
/// a row's feature value is a single `uint8_t` code. Bin boundaries are
/// midpoints between adjacent distinct values: when a feature has fewer
/// distinct values than bins, every distinct value gets its own bin and
/// the histogram split search sees exactly the candidate thresholds the
/// exact search would. With more distinct values, boundaries are placed
/// at (approximately) evenly spaced ranks, so every bin is non-empty on
/// the rows it was built from.
///
/// Codes satisfy: value <= threshold(f, b)  <=>  code(row, f) <= b,
/// so a split chosen on codes converts to a real-valued threshold that
/// routes the training rows identically at predict time.
class BinnedDataset {
 public:
  static constexpr int kMaxBins = 256;

  BinnedDataset() = default;

  /// Bins every row of `data`.
  static Result<BinnedDataset> FromDataset(const Dataset& data,
                                           int max_bins = kMaxBins);

  /// Bins only the given rows of `data` (row i of the binned view is
  /// data row `rows[i]`); bin edges come from the subset's distribution,
  /// matching what training on a materialized subset would see.
  static Result<BinnedDataset> FromDatasetRows(const Dataset& data,
                                               const std::vector<size_t>& rows,
                                               int max_bins = kMaxBins);

  /// Bins an arbitrary matrix exposed through an accessor; used by the
  /// survival forest whose covariates are not ml::Dataset rows.
  static Result<BinnedDataset> FromMatrix(
      size_t num_rows, size_t num_features,
      const std::function<double(size_t row, size_t col)>& value_at,
      int max_bins = kMaxBins);

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return boundaries_.size(); }
  bool empty() const { return num_rows_ == 0; }

  /// Number of bins for feature `f` (boundaries(f).size() + 1).
  int num_bins(size_t f) const {
    return static_cast<int>(boundaries_[f].size()) + 1;
  }

  /// True when feature `f` is constant on the binned rows.
  bool constant(size_t f) const { return boundaries_[f].empty(); }

  /// Column-major code access: column(f)[row].
  const uint8_t* column(size_t f) const {
    return codes_.data() + f * num_rows_;
  }
  uint8_t code(size_t row, size_t f) const { return column(f)[row]; }

  /// Real-valued split threshold of the boundary after bin `b`
  /// (valid for b in [0, num_bins(f) - 2]): going left iff
  /// value <= threshold(f, b) is equivalent to code <= b.
  double threshold(size_t f, int b) const {
    return boundaries_[f][static_cast<size_t>(b)];
  }

  /// Threshold for a cut after bin `b` when the next bin holding node
  /// rows is `next_b` (> b): the midpoint of the empty-bin gap, which
  /// is closer to the exact search's node-local midpoint than the raw
  /// boundary after `b`. Values in bins <= b still satisfy
  /// value <= result and values in bins >= next_b still exceed it, so
  /// training rows route identically; only unseen rows landing inside
  /// the gap are affected.
  double refined_threshold(size_t f, int b, int next_b) const {
    const double lo = threshold(f, b);
    if (next_b <= b + 1) return lo;
    const double hi = threshold(f, next_b - 1);
    return lo + 0.5 * (hi - lo);
  }

  /// Total bytes held by codes and edge tables (for the benchmark).
  size_t memory_bytes() const;

 private:
  static Result<BinnedDataset> Build(
      size_t num_rows, size_t num_features,
      const std::function<double(size_t row, size_t col)>& value_at,
      int max_bins);

  size_t num_rows_ = 0;
  /// Per feature: ascending upper-inclusive bin edges (size num_bins-1).
  std::vector<std::vector<double>> boundaries_;
  /// Column-major bin codes: codes_[f * num_rows_ + row].
  std::vector<uint8_t> codes_;
};

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_BINNED_DATASET_H_
