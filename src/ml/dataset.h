#ifndef CLOUDSURV_ML_DATASET_H_
#define CLOUDSURV_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace cloudsurv::ml {

/// A supervised-learning table: a dense numeric feature matrix with named
/// columns and one integer class label per row (0-based, contiguous).
/// Categorical inputs are expected to be pre-encoded (one-hot or ordinal)
/// by the feature layer.
class Dataset {
 public:
  Dataset() = default;

  /// Validates shape consistency (every row has one value per feature,
  /// labels in [0, num_classes), finite features) and builds the dataset.
  /// `num_classes` <= 0 means "infer as max label + 1".
  static Result<Dataset> Make(std::vector<std::string> feature_names,
                              std::vector<std::vector<double>> rows,
                              std::vector<int> labels, int num_classes = -1);

  size_t num_rows() const { return rows_.size(); }
  size_t num_features() const { return feature_names_.size(); }
  int num_classes() const { return num_classes_; }
  bool empty() const { return rows_.empty(); }

  const std::vector<std::string>& feature_names() const {
    return feature_names_;
  }
  const std::vector<std::vector<double>>& rows() const { return rows_; }
  const std::vector<int>& labels() const { return labels_; }

  const std::vector<double>& row(size_t i) const { return rows_[i]; }
  int label(size_t i) const { return labels_[i]; }
  double feature(size_t row, size_t col) const { return rows_[row][col]; }

  /// Index of a feature by name, or -1 when absent.
  int FeatureIndex(const std::string& name) const;

  /// Returns a new dataset containing the given rows (duplicates allowed,
  /// order preserved). Out-of-range indices yield OutOfRange.
  Result<Dataset> Subset(const std::vector<size_t>& indices) const;

  /// Per-class row counts.
  std::vector<size_t> ClassCounts() const;

  /// Fraction of rows labelled `cls`.
  double ClassFraction(int cls) const;

  /// Returns a copy with the named feature columns removed (for feature-
  /// family ablation experiments). Unknown names are errors.
  Result<Dataset> DropFeatures(const std::vector<std::string>& names) const;

 private:
  Dataset(std::vector<std::string> feature_names,
          std::vector<std::vector<double>> rows, std::vector<int> labels,
          int num_classes);

  std::vector<std::string> feature_names_;
  std::vector<std::vector<double>> rows_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_DATASET_H_
