#ifndef CLOUDSURV_ML_DECISION_TREE_H_
#define CLOUDSURV_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/binned_dataset.h"
#include "ml/dataset.h"

namespace cloudsurv::ml {

/// Growth controls for a CART tree.
struct TreeParams {
  int max_depth = 16;            ///< Maximum node depth (root = 0).
  size_t min_samples_split = 2;  ///< Need >= this many samples to split.
  size_t min_samples_leaf = 1;   ///< Each child keeps >= this many.
  /// Features examined per node: -1 = all, otherwise a random subset of
  /// this size (this is what makes a forest "random").
  int max_features = -1;
  /// Minimum gini decrease (weighted by node fraction) to accept a split.
  double min_impurity_decrease = 0.0;
  /// Optional per-class weights (empty = all 1.0). Weights scale class
  /// counts in impurity computations and leaf distributions — the
  /// standard lever for imbalanced cohorts such as the paper's Premium
  /// subgroup (section 5.2 attributes its low recall to imbalance).
  std::vector<double> class_weights;
  /// Node-split search. kHistogram scans pre-binned codes in
  /// O(n + bins) per feature; kExact re-sorts values (O(n log n)).
  SplitAlgorithm split_algorithm = SplitAlgorithm::kHistogram;
};

/// CART decision-tree classifier with gini impurity, the base learner of
/// the paper's random forest (section 2, ref [10]). Leaves store class
/// frequencies, so PredictProba yields the per-leaf class distribution
/// the paper uses as its prediction confidence (section 5.3).
class DecisionTreeClassifier {
 public:
  DecisionTreeClassifier() = default;

  /// Learns a tree on all rows of `data`.
  Status Fit(const Dataset& data, const TreeParams& params, uint64_t seed);

  /// Learns a tree on the multiset of rows given by `sample_indices`
  /// (duplicates allowed — this is how the forest passes bootstrap
  /// samples without materializing them).
  Status FitSubset(const Dataset& data,
                   const std::vector<size_t>& sample_indices,
                   const TreeParams& params, uint64_t seed);

  /// Learns a tree from a pre-binned dataset over the multiset of binned
  /// row positions `sample_positions` (positions index binned rows, not
  /// original dataset rows). `labels[i]` is the class of binned row i.
  /// Ensembles use this to share one BinnedDataset across all trees
  /// instead of re-binning per tree. Ignores params.split_algorithm
  /// (this IS the histogram path).
  Status FitBinned(const BinnedDataset& binned, const std::vector<int>& labels,
                   int num_classes,
                   const std::vector<size_t>& sample_positions,
                   const TreeParams& params, uint64_t seed);

  bool fitted() const { return !nodes_.empty(); }

  /// Class-probability vector for one feature row.
  std::vector<double> PredictProba(const std::vector<double>& row) const;

  /// Most probable class for one feature row.
  int Predict(const std::vector<double>& row) const;

  /// Predicted classes for every row of `data` (feature count must match
  /// the training data).
  Result<std::vector<int>> PredictBatch(const Dataset& data) const;

  /// Gini feature importances: total impurity decrease contributed by
  /// each feature, weighted by node size and normalized to sum to 1
  /// (all-zero if the tree is a single leaf).
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  size_t num_nodes() const { return nodes_.size(); }
  int depth() const { return depth_; }
  int num_classes() const { return num_classes_; }
  size_t num_features() const { return num_features_; }

  /// Read-only view of one stored node, for compilers of alternative
  /// inference layouts (`ml::FlatForest`). Index space matches
  /// num_nodes(); node 0 is the root; `feature < 0` marks a leaf whose
  /// class distribution is `*probabilities`.
  struct NodeView {
    int feature;
    double threshold;
    int left;
    int right;
    const std::vector<double>* probabilities;
  };
  NodeView node_view(size_t i) const {
    const Node& n = nodes_[i];
    return {n.feature, n.threshold, n.left, n.right, &n.probabilities};
  }

  /// Leaf class distribution for one feature row, by reference — the
  /// allocation-free core of PredictProba (valid as long as the tree).
  const std::vector<double>& LeafDistribution(
      const std::vector<double>& row) const;

  /// Serializes the fitted tree to a compact line-oriented text form
  /// that round-trips exactly (doubles printed with full precision).
  std::string Serialize() const;

  /// Reconstructs a tree from Serialize() output.
  static Result<DecisionTreeClassifier> Deserialize(const std::string& text);

 private:
  struct Node {
    int feature = -1;        ///< Split feature; -1 for leaves.
    double threshold = 0.0;  ///< Go left iff x[feature] <= threshold.
    int left = -1;
    int right = -1;
    std::vector<double> probabilities;  ///< Leaf class distribution.
  };

  int BuildNode(const Dataset& data, std::vector<size_t>& indices,
                size_t begin, size_t end, int depth, Rng& rng,
                const TreeParams& params, size_t total_samples);

  struct BinnedBuildContext;  // defined in decision_tree.cc
  int BuildNodeBinned(BinnedBuildContext& ctx, std::vector<size_t>& positions,
                      size_t begin, size_t end, int depth, Rng& rng,
                      std::vector<double> node_hist);

  std::vector<Node> nodes_;
  std::vector<double> importances_;
  int num_classes_ = 0;
  size_t num_features_ = 0;
  int depth_ = 0;
};

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_DECISION_TREE_H_
