#include "ml/metrics.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace cloudsurv::ml {

Result<ConfusionMatrix> ComputeConfusionMatrix(
    const std::vector<int>& y_true, const std::vector<int>& y_pred) {
  if (y_true.size() != y_pred.size()) {
    return Status::InvalidArgument("y_true and y_pred length mismatch");
  }
  if (y_true.empty()) {
    return Status::InvalidArgument("cannot score empty predictions");
  }
  ConfusionMatrix cm;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if ((y_true[i] != 0 && y_true[i] != 1) ||
        (y_pred[i] != 0 && y_pred[i] != 1)) {
      return Status::InvalidArgument("binary metrics require 0/1 labels");
    }
    if (y_true[i] == 1 && y_pred[i] == 1) {
      ++cm.true_positive;
    } else if (y_true[i] == 0 && y_pred[i] == 1) {
      ++cm.false_positive;
    } else if (y_true[i] == 0 && y_pred[i] == 0) {
      ++cm.true_negative;
    } else {
      ++cm.false_negative;
    }
  }
  return cm;
}

ClassificationScores ScoresFromConfusion(const ConfusionMatrix& cm) {
  ClassificationScores s;
  s.support = cm.total();
  if (s.support == 0) return s;
  s.accuracy = static_cast<double>(cm.true_positive + cm.true_negative) /
               static_cast<double>(s.support);
  const size_t predicted_positive = cm.true_positive + cm.false_positive;
  s.precision = predicted_positive == 0
                    ? 0.0
                    : static_cast<double>(cm.true_positive) /
                          static_cast<double>(predicted_positive);
  const size_t actual_positive = cm.true_positive + cm.false_negative;
  s.recall = actual_positive == 0
                 ? 0.0
                 : static_cast<double>(cm.true_positive) /
                       static_cast<double>(actual_positive);
  s.f1 = (s.precision + s.recall) == 0.0
             ? 0.0
             : 2.0 * s.precision * s.recall / (s.precision + s.recall);
  return s;
}

Result<ClassificationScores> ComputeScores(const std::vector<int>& y_true,
                                           const std::vector<int>& y_pred) {
  CLOUDSURV_ASSIGN_OR_RETURN(ConfusionMatrix cm,
                             ComputeConfusionMatrix(y_true, y_pred));
  return ScoresFromConfusion(cm);
}

ClassificationScores AverageScores(
    const std::vector<ClassificationScores>& runs) {
  ClassificationScores avg;
  if (runs.empty()) return avg;
  for (const auto& s : runs) {
    avg.accuracy += s.accuracy;
    avg.precision += s.precision;
    avg.recall += s.recall;
    avg.f1 += s.f1;
    avg.support += s.support;
  }
  const double n = static_cast<double>(runs.size());
  avg.accuracy /= n;
  avg.precision /= n;
  avg.recall /= n;
  avg.f1 /= n;
  avg.support = static_cast<size_t>(
      static_cast<double>(avg.support) / n + 0.5);
  return avg;
}

Result<double> RocAuc(const std::vector<int>& y_true,
                      const std::vector<double>& positive_probability) {
  if (y_true.size() != positive_probability.size() || y_true.empty()) {
    return Status::InvalidArgument("RocAuc: invalid input sizes");
  }
  size_t num_pos = 0;
  for (int y : y_true) {
    if (y != 0 && y != 1) {
      return Status::InvalidArgument("RocAuc requires 0/1 labels");
    }
    num_pos += static_cast<size_t>(y);
  }
  const size_t num_neg = y_true.size() - num_pos;
  if (num_pos == 0 || num_neg == 0) {
    return Status::InvalidArgument("RocAuc needs both classes present");
  }
  // Midrank-based Mann-Whitney U.
  std::vector<size_t> order(y_true.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return positive_probability[a] < positive_probability[b];
  });
  std::vector<double> ranks(y_true.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() &&
           positive_probability[order[j + 1]] ==
               positive_probability[order[i]]) {
      ++j;
    }
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) /
                               2.0 +
                           1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = midrank;
    i = j + 1;
  }
  double rank_sum_pos = 0.0;
  for (size_t k = 0; k < y_true.size(); ++k) {
    if (y_true[k] == 1) rank_sum_pos += ranks[k];
  }
  const double u = rank_sum_pos - static_cast<double>(num_pos) *
                                      (static_cast<double>(num_pos) + 1.0) /
                                      2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

double MulticlassConfusion::accuracy() const {
  if (total == 0) return 0.0;
  size_t correct = 0;
  for (size_t c = 0; c < counts.size(); ++c) correct += counts[c][c];
  return static_cast<double>(correct) / static_cast<double>(total);
}

Result<MulticlassConfusion> ComputeMulticlassConfusion(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    int num_classes) {
  if (y_true.size() != y_pred.size() || y_true.empty()) {
    return Status::InvalidArgument("confusion: invalid input sizes");
  }
  int max_label = -1;
  for (size_t i = 0; i < y_true.size(); ++i) {
    if (y_true[i] < 0 || y_pred[i] < 0) {
      return Status::InvalidArgument("labels must be non-negative");
    }
    max_label = std::max({max_label, y_true[i], y_pred[i]});
  }
  if (num_classes <= 0) {
    num_classes = max_label + 1;
  } else if (max_label >= num_classes) {
    return Status::InvalidArgument("label exceeds num_classes");
  }
  MulticlassConfusion confusion;
  confusion.counts.assign(static_cast<size_t>(num_classes),
                          std::vector<size_t>(
                              static_cast<size_t>(num_classes), 0));
  confusion.total = y_true.size();
  for (size_t i = 0; i < y_true.size(); ++i) {
    ++confusion.counts[static_cast<size_t>(y_true[i])]
                      [static_cast<size_t>(y_pred[i])];
  }
  return confusion;
}

Result<ClassificationScores> OneVsRestScores(
    const MulticlassConfusion& confusion, int cls) {
  if (cls < 0 || static_cast<size_t>(cls) >= confusion.num_classes()) {
    return Status::OutOfRange("class index out of range");
  }
  const size_t k = confusion.num_classes();
  const size_t c = static_cast<size_t>(cls);
  ConfusionMatrix cm;
  for (size_t t = 0; t < k; ++t) {
    for (size_t p = 0; p < k; ++p) {
      const size_t n = confusion.counts[t][p];
      if (t == c && p == c) {
        cm.true_positive += n;
      } else if (t == c) {
        cm.false_negative += n;
      } else if (p == c) {
        cm.false_positive += n;
      } else {
        cm.true_negative += n;
      }
    }
  }
  return ScoresFromConfusion(cm);
}

std::string MulticlassConfusionToText(
    const MulticlassConfusion& confusion,
    const std::vector<std::string>& class_names) {
  std::string out = "truth \\ pred";
  const size_t k = confusion.num_classes();
  for (size_t p = 0; p < k; ++p) {
    out += "\t" + (p < class_names.size() ? class_names[p]
                                           : std::to_string(p));
  }
  out += "\n";
  for (size_t t = 0; t < k; ++t) {
    out += (t < class_names.size() ? class_names[t] : std::to_string(t));
    for (size_t p = 0; p < k; ++p) {
      out += "\t" + std::to_string(confusion.counts[t][p]);
    }
    out += "\n";
  }
  return out;
}

std::string ScoresToString(const ClassificationScores& s) {
  return "accuracy=" + FormatDouble(s.accuracy, 3) +
         " precision=" + FormatDouble(s.precision, 3) +
         " recall=" + FormatDouble(s.recall, 3) +
         " f1=" + FormatDouble(s.f1, 3) +
         " n=" + std::to_string(s.support);
}

}  // namespace cloudsurv::ml
