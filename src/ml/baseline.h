#ifndef CLOUDSURV_ML_BASELINE_H_
#define CLOUDSURV_ML_BASELINE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/dataset.h"

namespace cloudsurv::ml {

/// The paper's baseline (section 5.1): a weighted random classifier.
/// Training estimates p = P[label = 1] from the class distribution; each
/// prediction draws r ~ U(0,1) and answers positive iff r < p. Binary
/// problems only.
class WeightedRandomClassifier {
 public:
  WeightedRandomClassifier() = default;

  /// Estimates the positive-class rate from `data` (binary labels).
  Status Fit(const Dataset& data);

  /// Builds a fitted classifier directly from a known positive-class
  /// rate (clamped to [0, 1]) — lets the serving layer run the paper's
  /// baseline as a degraded-mode fallback without a training dataset.
  static WeightedRandomClassifier FromPositiveRate(double rate);

  bool fitted() const { return fitted_; }

  /// Estimated P[label = 1] from training.
  double positive_rate() const { return positive_rate_; }

  /// Draws one prediction; stateless w.r.t. the input row by design.
  int Predict(Rng& rng) const;

  /// Draws one prediction per row of `data`.
  Result<std::vector<int>> PredictBatch(const Dataset& data,
                                        uint64_t seed) const;

 private:
  double positive_rate_ = 0.0;
  bool fitted_ = false;
};

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_BASELINE_H_
