#include "ml/flat_forest.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <limits>
#include <string>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "artifact/reader.h"
#include "artifact/writer.h"
#include "obs/metrics.h"

namespace cloudsurv::ml {

namespace {

/// Vector staging area for the SoA node arrays while a forest is being
/// compiled; adopted into the FlatForest columns once complete.
struct NodeArrays {
  std::vector<int32_t> feature;
  std::vector<double> threshold;
  std::vector<int32_t> left;
  std::vector<int32_t> right;
  std::vector<int32_t> leaf_index;
  std::vector<double> leaf_values;
  std::vector<int32_t> tree_offsets;

  void Reserve(size_t total_nodes, size_t trees) {
    feature.reserve(total_nodes);
    threshold.reserve(total_nodes);
    left.reserve(total_nodes);
    right.reserve(total_nodes);
    leaf_index.reserve(total_nodes);
    tree_offsets.reserve(trees + 1);
    tree_offsets.push_back(0);
  }
};

// Must match the expression in gbdt.cc exactly — bit-identity of the
// regressor path depends on computing the same double.
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

/// Breadth-first visit order of one tree's local node ids: root first,
/// then each level left to right, so the hot top levels land on
/// adjacent cache lines after packing. `children(i)` returns the local
/// {left, right} ids of a split node, {-1, -1} for a leaf. Falls back
/// to the identity order if the links do not reach every node exactly
/// once (a malformed tree — Compile()'s per-node validation rejects it
/// anyway, but the reorder must never drop nodes).
template <typename Children>
std::vector<int32_t> BreadthFirstOrder(size_t nodes, Children&& children) {
  std::vector<int32_t> order;
  order.reserve(nodes);
  std::vector<char> seen(nodes, 0);
  order.push_back(0);
  seen[0] = 1;
  for (size_t head = 0; head < order.size(); ++head) {
    const auto [left, right] = children(static_cast<size_t>(order[head]));
    for (const int32_t c : {left, right}) {
      if (c >= 0 && static_cast<size_t>(c) < nodes && !seen[c]) {
        seen[static_cast<size_t>(c)] = 1;
        order.push_back(c);
      }
    }
  }
  if (order.size() != nodes) {
    order.resize(nodes);
    for (size_t i = 0; i < nodes; ++i) order[i] = static_cast<int32_t>(i);
  }
  return order;
}

obs::Histogram* CompileHistogram() {
  static obs::Histogram* h = obs::Registry::Default().GetHistogram(
      "cloudsurv_inference_compile_ms",
      "FlatForest compilation time (SoA layout + quantized tables)", "ms");
  return h;
}

obs::Counter* RowsTotal() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "cloudsurv_inference_rows_total",
      "Rows scored through the flat inference engine", "rows");
  return c;
}

obs::Histogram* BatchLatency() {
  static obs::Histogram* h = obs::Registry::Default().GetHistogram(
      "cloudsurv_inference_batch_latency_us",
      "Wall time of one FlatForest batch-predict call", "us");
  return h;
}

/// One `cloudsurv_inference_kernel_rows_total` series per traversal
/// kernel, so dashboards can see which kernel actually served the
/// rows (dispatch is per-batch, not per-process).
obs::Counter* MakeKernelRows(const char* kernel) {
  return obs::Registry::Default().GetCounter(
      "cloudsurv_inference_kernel_rows_total",
      "Rows scored, labelled by the traversal kernel that ran them",
      "rows", {{"kernel", kernel}});
}

obs::Counter* KernelRows(simd::TraversalKind resolved, bool quantized) {
  static obs::Counter* scalar = MakeKernelRows("scalar");
  static obs::Counter* avx2 = MakeKernelRows("avx2");
  static obs::Counter* quant = MakeKernelRows("quantized");
  if (quantized) return quant;
  return resolved == simd::TraversalKind::kAvx2 ? avx2 : scalar;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<FlatForest> FlatForest::Compile(const RandomForestClassifier& forest) {
  const auto start = std::chrono::steady_clock::now();
  if (!forest.fitted()) {
    return Status::FailedPrecondition("cannot compile an unfitted forest");
  }
  FlatForest flat;
  flat.num_classes_ = forest.num_classes();
  if (flat.num_classes_ <= 0) {
    return Status::Internal("fitted forest reports no classes");
  }
  flat.leaf_dim_ = static_cast<size_t>(flat.num_classes_);
  flat.out_dim_ = flat.leaf_dim_;

  const auto& trees = forest.trees();
  size_t total_nodes = 0;
  for (const auto& tree : trees) total_nodes += tree.num_nodes();
  if (total_nodes >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    return Status::OutOfRange("forest too large for int32 node ids");
  }
  NodeArrays arrays;
  arrays.Reserve(total_nodes, trees.size());

  flat.num_features_ = trees.empty() ? 0 : trees.front().num_features();
  for (size_t t = 0; t < trees.size(); ++t) {
    const auto& tree = trees[t];
    if (tree.num_nodes() == 0) {
      return Status::Internal("fitted forest contains an empty tree");
    }
    if (tree.num_features() != flat.num_features_) {
      return Status::Internal("trees disagree on feature count");
    }
    const int32_t offset = static_cast<int32_t>(arrays.feature.size());
    // Emit the tree's nodes in breadth-first order (root first, levels
    // left to right): the first few levels — the ones every row
    // touches — pack onto adjacent cache lines. `pos` maps a training
    // node id to its packed local slot for child rewriting.
    const auto order =
        BreadthFirstOrder(tree.num_nodes(), [&tree](size_t i) {
          const auto node = tree.node_view(i);
          return node.feature < 0 ? std::pair<int32_t, int32_t>(-1, -1)
                                  : std::pair<int32_t, int32_t>(node.left,
                                                                node.right);
        });
    std::vector<int32_t> pos(tree.num_nodes());
    for (size_t k = 0; k < order.size(); ++k) {
      pos[static_cast<size_t>(order[k])] = static_cast<int32_t>(k);
    }
    for (size_t k = 0; k < tree.num_nodes(); ++k) {
      const auto node = tree.node_view(static_cast<size_t>(order[k]));
      arrays.feature.push_back(node.feature < 0 ? -1 : node.feature);
      arrays.threshold.push_back(node.threshold);
      if (node.feature < 0) {
        // Leaf: stash the class distribution densely.
        if (node.probabilities->size() != flat.leaf_dim_) {
          return Status::Internal("leaf distribution size mismatch");
        }
        arrays.left.push_back(-1);
        arrays.right.push_back(-1);
        arrays.leaf_index.push_back(
            static_cast<int32_t>(arrays.leaf_values.size() / flat.leaf_dim_));
        arrays.leaf_values.insert(arrays.leaf_values.end(),
                                  node.probabilities->begin(),
                                  node.probabilities->end());
      } else {
        if (node.left < 0 || node.right < 0 ||
            static_cast<size_t>(node.left) >= tree.num_nodes() ||
            static_cast<size_t>(node.right) >= tree.num_nodes()) {
          return Status::Internal("split node with invalid children");
        }
        arrays.left.push_back(offset + pos[static_cast<size_t>(node.left)]);
        arrays.right.push_back(offset + pos[static_cast<size_t>(node.right)]);
        arrays.leaf_index.push_back(-1);
      }
    }
    arrays.tree_offsets.push_back(static_cast<int32_t>(arrays.feature.size()));
  }
  flat.feature_.Adopt(std::move(arrays.feature));
  flat.threshold_.Adopt(std::move(arrays.threshold));
  flat.left_.Adopt(std::move(arrays.left));
  flat.right_.Adopt(std::move(arrays.right));
  flat.leaf_index_.Adopt(std::move(arrays.leaf_index));
  flat.leaf_values_.Adopt(std::move(arrays.leaf_values));
  flat.tree_offsets_.Adopt(std::move(arrays.tree_offsets));
  flat.BuildQuantizedTables();
  flat.AutotuneBlockRows();
  CompileHistogram()->Observe(ElapsedMs(start));
  return flat;
}

Result<FlatForest> FlatForest::Compile(
    const GradientBoostedTreesClassifier& gbdt) {
  const auto start = std::chrono::steady_clock::now();
  if (!gbdt.fitted()) {
    return Status::FailedPrecondition("cannot compile an unfitted ensemble");
  }
  FlatForest flat;
  flat.num_classes_ = 0;  // Regressor: scalar logit leaves.
  flat.leaf_dim_ = 1;
  flat.out_dim_ = 1;
  flat.base_score_ = gbdt.base_score();
  flat.num_features_ = gbdt.num_features();

  size_t total_nodes = 0;
  for (size_t t = 0; t < gbdt.num_trees(); ++t) {
    total_nodes += gbdt.tree_nodes(t);
  }
  if (total_nodes >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    return Status::OutOfRange("ensemble too large for int32 node ids");
  }
  NodeArrays arrays;
  arrays.Reserve(total_nodes, gbdt.num_trees());

  for (size_t t = 0; t < gbdt.num_trees(); ++t) {
    const size_t nodes = gbdt.tree_nodes(t);
    if (nodes == 0) {
      return Status::Internal("fitted ensemble contains an empty tree");
    }
    const int32_t offset = static_cast<int32_t>(arrays.feature.size());
    // Breadth-first packing, as in the forest overload above.
    const auto order = BreadthFirstOrder(nodes, [&gbdt, t](size_t i) {
      const auto node = gbdt.node_view(t, i);
      return node.feature < 0
                 ? std::pair<int32_t, int32_t>(-1, -1)
                 : std::pair<int32_t, int32_t>(node.left, node.right);
    });
    std::vector<int32_t> pos(nodes);
    for (size_t k = 0; k < order.size(); ++k) {
      pos[static_cast<size_t>(order[k])] = static_cast<int32_t>(k);
    }
    for (size_t k = 0; k < nodes; ++k) {
      const auto node = gbdt.node_view(t, static_cast<size_t>(order[k]));
      arrays.feature.push_back(node.feature < 0 ? -1 : node.feature);
      arrays.threshold.push_back(node.threshold);
      if (node.feature < 0) {
        arrays.left.push_back(-1);
        arrays.right.push_back(-1);
        arrays.leaf_index.push_back(
            static_cast<int32_t>(arrays.leaf_values.size()));
        arrays.leaf_values.push_back(node.value);
      } else {
        if (node.left < 0 || node.right < 0 ||
            static_cast<size_t>(node.left) >= nodes ||
            static_cast<size_t>(node.right) >= nodes) {
          return Status::Internal("split node with invalid children");
        }
        arrays.left.push_back(offset + pos[static_cast<size_t>(node.left)]);
        arrays.right.push_back(offset + pos[static_cast<size_t>(node.right)]);
        arrays.leaf_index.push_back(-1);
      }
    }
    arrays.tree_offsets.push_back(static_cast<int32_t>(arrays.feature.size()));
  }
  flat.feature_.Adopt(std::move(arrays.feature));
  flat.threshold_.Adopt(std::move(arrays.threshold));
  flat.left_.Adopt(std::move(arrays.left));
  flat.right_.Adopt(std::move(arrays.right));
  flat.leaf_index_.Adopt(std::move(arrays.leaf_index));
  flat.leaf_values_.Adopt(std::move(arrays.leaf_values));
  flat.tree_offsets_.Adopt(std::move(arrays.tree_offsets));
  flat.BuildQuantizedTables();
  flat.AutotuneBlockRows();
  CompileHistogram()->Observe(ElapsedMs(start));
  return flat;
}

void FlatForest::BuildQuantizedTables() {
  quantized_ = false;
  narrow_codes_ = false;
  qthreshold_.Adopt({});
  cut_offsets_.Adopt({});
  cut_values_.Adopt({});
  if (num_features_ == 0) return;

  // Per feature: the sorted distinct thresholds the forest splits on.
  // With cuts c_0 < ... < c_{m-1} and code(v) = #{cuts < v}, routing is
  // exact for EVERY input value: v <= c_k  <=>  code(v) <= k. Codes run
  // 0..m, so uint8 works iff every feature has m <= 255 cuts; deep
  // histogram forests can exceed that (node-local gap-midpoint
  // refinement mints fresh thresholds), so a uint16 tier covers up to
  // 65535 cuts before falling back to the double comparison.
  std::vector<std::vector<double>> cuts(num_features_);
  for (size_t i = 0; i < feature_.size(); ++i) {
    if (feature_[i] >= 0) {
      cuts[static_cast<size_t>(feature_[i])].push_back(threshold_[i]);
    }
  }
  size_t max_cuts = 0;
  for (auto& c : cuts) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    max_cuts = std::max(max_cuts, c.size());
  }
  if (max_cuts > 65535) return;  // Codes would not fit in uint16.
  narrow_codes_ = max_cuts <= 255;

  std::vector<int32_t> cut_offsets;
  std::vector<double> cut_values;
  cut_offsets.reserve(num_features_ + 1);
  cut_offsets.push_back(0);
  for (const auto& c : cuts) {
    cut_values.insert(cut_values.end(), c.begin(), c.end());
    cut_offsets.push_back(static_cast<int32_t>(cut_values.size()));
  }
  std::vector<uint16_t> qthreshold(feature_.size(), 0);
  for (size_t i = 0; i < feature_.size(); ++i) {
    if (feature_[i] < 0) continue;
    const auto& c = cuts[static_cast<size_t>(feature_[i])];
    const auto it = std::lower_bound(c.begin(), c.end(), threshold_[i]);
    qthreshold[i] = static_cast<uint16_t>(it - c.begin());
  }
  cut_offsets_.Adopt(std::move(cut_offsets));
  cut_values_.Adopt(std::move(cut_values));
  qthreshold_.Adopt(std::move(qthreshold));
  quantized_ = true;
  BuildUsedFeatures();
}

void FlatForest::BuildUsedFeatures() {
  // Quantizing a batch costs one binary search per (row, feature); a
  // feature with zero cuts is never tested by any split node, so its
  // code can never be read — skip it. This is the per-compile table
  // that keeps per-batch quantization proportional to the features the
  // forest actually uses, not the dataset width.
  used_features_.clear();
  if (!quantized_) return;
  used_features_.reserve(num_features_);
  for (size_t f = 0; f < num_features_; ++f) {
    if (cut_offsets_[f + 1] > cut_offsets_[f]) {
      used_features_.push_back(static_cast<int32_t>(f));
    }
  }
}

void FlatForest::AutotuneBlockRows() {
  // One traversal block wants (a) the hot top levels of every tree and
  // (b) the block's double rows + accumulators co-resident in L2; the
  // node arrays below the top levels stream regardless. Budget the
  // rows at L2 minus the hot-node footprint (first 6 levels = 63 nodes
  // per tree across the five SoA arrays), clamped to [64, 8192] and
  // rounded to a multiple of 8 so SIMD groups tile evenly. Callers
  // override via BatchOptions::block_rows != 0.
  long l2 = -1;
#if defined(_SC_LEVEL2_CACHE_SIZE)
  l2 = sysconf(_SC_LEVEL2_CACHE_SIZE);
#endif
  const size_t l2_bytes = l2 > 0 ? static_cast<size_t>(l2) : (1u << 20);
  constexpr size_t kNodeStride =
      4 * sizeof(int32_t) + sizeof(double);  // feature/left/right/leafidx/thr
  constexpr size_t kHotNodesPerTree = 63;
  size_t hot_bytes = 0;
  for (size_t t = 0; t + 1 < tree_offsets_.size(); ++t) {
    const size_t tree_nodes =
        static_cast<size_t>(tree_offsets_[t + 1] - tree_offsets_[t]);
    hot_bytes += std::min(tree_nodes, kHotNodesPerTree) * kNodeStride;
  }
  const size_t row_bytes = (num_features_ + out_dim_) * sizeof(double);
  const size_t budget =
      l2_bytes > hot_bytes ? l2_bytes - hot_bytes : l2_bytes / 2;
  size_t rows = row_bytes == 0 ? 8192 : budget / row_bytes;
  rows = std::clamp<size_t>(rows, 64, 8192);
  rows -= rows % 8;
  tuned_block_rows_ = rows;
}

simd::ForestView FlatForest::View() const {
  simd::ForestView v;
  v.feature = feature_.data();
  v.threshold = threshold_.data();
  v.left = left_.data();
  v.right = right_.data();
  v.leaf_index = leaf_index_.data();
  v.leaf_values = leaf_values_.data();
  v.tree_offsets = tree_offsets_.data();
  v.num_trees = num_trees();
  v.num_features = num_features_;
  v.leaf_dim = leaf_dim_;
  v.out_dim = out_dim_;
  return v;
}

bool FlatForest::nodes_breadth_first() const {
  // A tree is in BFS order iff replaying a breadth-first walk from its
  // root visits exactly the sequential ids lo, lo+1, ..., hi-1.
  if (!compiled()) return false;
  for (size_t t = 0; t + 1 < tree_offsets_.size(); ++t) {
    const int32_t lo = tree_offsets_[t];
    const size_t nodes = static_cast<size_t>(tree_offsets_[t + 1] - lo);
    const auto order = BreadthFirstOrder(nodes, [this, lo](size_t i) {
      const size_t u = static_cast<size_t>(lo) + i;
      return feature_[u] < 0
                 ? std::pair<int32_t, int32_t>(-1, -1)
                 : std::pair<int32_t, int32_t>(left_[u] - lo, right_[u] - lo);
    });
    for (size_t k = 0; k < nodes; ++k) {
      if (order[k] != static_cast<int32_t>(k)) return false;
    }
  }
  return true;
}

size_t FlatForest::memory_bytes() const {
  return feature_.size() * sizeof(int32_t) +
         threshold_.size() * sizeof(double) +
         left_.size() * sizeof(int32_t) + right_.size() * sizeof(int32_t) +
         leaf_index_.size() * sizeof(int32_t) +
         leaf_values_.size() * sizeof(double) +
         tree_offsets_.size() * sizeof(int32_t) +
         qthreshold_.size() * sizeof(uint16_t) +
         cut_offsets_.size() * sizeof(int32_t) +
         cut_values_.size() * sizeof(double);
}

Status FlatForest::SelfCheck() const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  const size_t nodes = feature_.size();
  if (threshold_.size() != nodes || left_.size() != nodes ||
      right_.size() != nodes || leaf_index_.size() != nodes) {
    return Status::Internal("SoA arrays disagree on node count");
  }
  if (tree_offsets_.front() != 0 ||
      static_cast<size_t>(tree_offsets_.back()) != nodes) {
    return Status::Internal("tree offsets do not span the node arrays");
  }
  if (leaf_dim_ == 0 || leaf_values_.size() % leaf_dim_ != 0) {
    return Status::Internal("leaf matrix not a multiple of leaf_dim");
  }
  const int32_t leaves = static_cast<int32_t>(num_leaves());
  for (size_t t = 0; t + 1 < tree_offsets_.size(); ++t) {
    const int32_t lo = tree_offsets_[t];
    const int32_t hi = tree_offsets_[t + 1];
    if (lo >= hi) return Status::Internal("empty or non-monotone tree range");
    for (int32_t i = lo; i < hi; ++i) {
      const size_t u = static_cast<size_t>(i);
      if (feature_[u] < 0) {
        if (leaf_index_[u] < 0 || leaf_index_[u] >= leaves) {
          return Status::Internal("leaf references an out-of-range row");
        }
        if (left_[u] != -1 || right_[u] != -1) {
          return Status::Internal("leaf with children");
        }
      } else {
        if (static_cast<size_t>(feature_[u]) >= num_features_) {
          return Status::Internal("split feature out of range");
        }
        if (left_[u] <= i || left_[u] >= hi || right_[u] <= i ||
            right_[u] >= hi) {
          return Status::Internal("child id escapes its tree range");
        }
        if (leaf_index_[u] != -1) {
          return Status::Internal("split node with a leaf row");
        }
        if (quantized_) {
          const int32_t f = feature_[u];
          const int32_t cut =
              cut_offsets_[static_cast<size_t>(f)] + qthreshold_[u];
          if (cut >= cut_offsets_[static_cast<size_t>(f) + 1] ||
              cut_values_[static_cast<size_t>(cut)] != threshold_[u]) {
            return Status::Internal(
                "quantized threshold does not map back to its cut");
          }
        }
      }
    }
  }
  return Status::OK();
}

Status FlatForest::WriteTo(artifact::ArtifactWriter& writer,
                           uint32_t slot) const {
  if (!compiled()) {
    return Status::FailedPrecondition(
        "cannot persist an uncompiled forest");
  }
  using artifact::SectionId;
  artifact::ForestMeta meta;
  std::memset(&meta, 0, sizeof(meta));
  meta.num_classes = num_classes_;
  meta.flags = (quantized_ ? artifact::kForestQuantized : 0u) |
               (narrow_codes_ ? artifact::kForestNarrowCodes : 0u);
  meta.num_features = num_features_;
  meta.leaf_dim = leaf_dim_;
  meta.out_dim = out_dim_;
  meta.base_score = base_score_;
  writer.AddStruct(SectionId::kForestMeta, slot, meta);
  writer.AddArray(SectionId::kNodeFeature, slot, feature_.data(),
                  feature_.size());
  writer.AddArray(SectionId::kNodeThreshold, slot, threshold_.data(),
                  threshold_.size());
  writer.AddArray(SectionId::kNodeLeft, slot, left_.data(), left_.size());
  writer.AddArray(SectionId::kNodeRight, slot, right_.data(), right_.size());
  writer.AddArray(SectionId::kNodeLeafIndex, slot, leaf_index_.data(),
                  leaf_index_.size());
  writer.AddArray(SectionId::kLeafValues, slot, leaf_values_.data(),
                  leaf_values_.size());
  writer.AddArray(SectionId::kTreeOffsets, slot, tree_offsets_.data(),
                  tree_offsets_.size());
  if (quantized_) {
    writer.AddArray(SectionId::kQuantThreshold, slot, qthreshold_.data(),
                    qthreshold_.size());
    writer.AddArray(SectionId::kCutOffsets, slot, cut_offsets_.data(),
                    cut_offsets_.size());
    writer.AddArray(SectionId::kCutValues, slot, cut_values_.data(),
                    cut_values_.size());
  }
  return Status::OK();
}

Result<FlatForest> FlatForest::FromView(
    const artifact::ArtifactReader& reader, uint32_t slot) {
  using artifact::SectionId;
  CLOUDSURV_ASSIGN_OR_RETURN(
      const artifact::ForestMeta meta,
      reader.Struct<artifact::ForestMeta>(SectionId::kForestMeta, slot));

  FlatForest flat;
  flat.num_classes_ = meta.num_classes;
  flat.num_features_ = static_cast<size_t>(meta.num_features);
  flat.leaf_dim_ = static_cast<size_t>(meta.leaf_dim);
  flat.out_dim_ = static_cast<size_t>(meta.out_dim);
  flat.base_score_ = meta.base_score;
  const size_t expect_dim =
      flat.num_classes_ > 0 ? static_cast<size_t>(flat.num_classes_) : 1;
  if (meta.num_classes < 0 || flat.leaf_dim_ != expect_dim ||
      flat.out_dim_ != expect_dim) {
    return Status::InvalidArgument(
        "artifact forest metadata is inconsistent (classes/leaf_dim/"
        "out_dim)");
  }

  // Bind every column as an in-place view of the artifact bytes — the
  // zero-copy path. The reader validated bounds, alignment, and
  // checksums; structural validation below covers the rest.
  auto bind = [&](SectionId id, auto& column) -> Status {
    using T = std::decay_t<decltype(column[0])>;
    auto span = reader.Array<T>(id, slot);
    if (!span.ok()) return span.status();
    column.BindView(span->data, span->size);
    return Status::OK();
  };
  CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kNodeFeature, flat.feature_));
  CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kNodeThreshold, flat.threshold_));
  CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kNodeLeft, flat.left_));
  CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kNodeRight, flat.right_));
  CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kNodeLeafIndex, flat.leaf_index_));
  CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kLeafValues, flat.leaf_values_));
  CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kTreeOffsets, flat.tree_offsets_));

  flat.quantized_ = (meta.flags & artifact::kForestQuantized) != 0;
  flat.narrow_codes_ = (meta.flags & artifact::kForestNarrowCodes) != 0;
  if (flat.quantized_) {
    CLOUDSURV_RETURN_NOT_OK(
        bind(SectionId::kQuantThreshold, flat.qthreshold_));
    CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kCutOffsets, flat.cut_offsets_));
    CLOUDSURV_RETURN_NOT_OK(bind(SectionId::kCutValues, flat.cut_values_));
    // SelfCheck indexes these tables by feature id, so their shape must
    // be validated first.
    if (flat.qthreshold_.size() != flat.feature_.size()) {
      return Status::InvalidArgument(
          "quantized threshold table does not match the node count");
    }
    if (flat.cut_offsets_.size() != flat.num_features_ + 1 ||
        flat.cut_offsets_.front() != 0 ||
        static_cast<size_t>(flat.cut_offsets_.back()) !=
            flat.cut_values_.size()) {
      return Status::InvalidArgument(
          "cut offset table does not span the cut values");
    }
    for (size_t f = 0; f < flat.num_features_; ++f) {
      if (flat.cut_offsets_[f] > flat.cut_offsets_[f + 1]) {
        return Status::InvalidArgument("cut offset table is non-monotone");
      }
    }
  }

  if (flat.tree_offsets_.empty()) {
    return Status::InvalidArgument("artifact forest has no trees");
  }
  flat.backing_ = reader.backing();
  CLOUDSURV_RETURN_NOT_OK(flat.SelfCheck());
  // Derived (non-serialized) state: the used-feature skip list for
  // quantization and the autotuned block size for this machine.
  flat.BuildUsedFeatures();
  flat.AutotuneBlockRows();
  return flat;
}

template <typename Code>
void FlatForest::TraverseQuantized(const double* const* rows, size_t n,
                                   double* out,
                                   std::vector<uint8_t>& scratch) const {
  const size_t trees = num_trees();
  const size_t od = out_dim_;
  // Quantize the block once: one integer code per (row, used feature)
  // — a much smaller working set than the double rows while all trees
  // stream through. Only features with at least one cut are coded
  // (`used_features_`, built at compile time): a cut-less feature is
  // never tested by any split node, so its slot is never read. The
  // byte buffer is reused across a task's blocks; vector storage is
  // max-aligned, so the uint16 view is safe.
  scratch.resize(n * num_features_ * sizeof(Code));
  Code* block_codes = reinterpret_cast<Code*>(scratch.data());
  for (size_t i = 0; i < n; ++i) {
    const double* row = rows[i];
    Code* codes = block_codes + i * num_features_;
    for (const int32_t f : used_features_) {
      const size_t uf = static_cast<size_t>(f);
      const double* cb = cut_values_.data() + cut_offsets_[uf];
      const double* ce = cut_values_.data() + cut_offsets_[uf + 1];
      codes[uf] = static_cast<Code>(std::lower_bound(cb, ce, row[uf]) - cb);
    }
  }
  for (size_t t = 0; t < trees; ++t) {
    const int32_t root = tree_offsets_[t];
    for (size_t i = 0; i < n; ++i) {
      const Code* codes = block_codes + i * num_features_;
      int32_t node = root;
      int32_t f = feature_[static_cast<size_t>(node)];
      while (f >= 0) {
        node = codes[static_cast<size_t>(f)] <=
                       qthreshold_[static_cast<size_t>(node)]
                   ? left_[static_cast<size_t>(node)]
                   : right_[static_cast<size_t>(node)];
        f = feature_[static_cast<size_t>(node)];
      }
      const double* leaf =
          leaf_values_.data() +
          static_cast<size_t>(leaf_index_[static_cast<size_t>(node)]) *
              leaf_dim_;
      double* acc = out + i * od;
      for (size_t c = 0; c < leaf_dim_; ++c) acc[c] += leaf[c];
    }
  }
}

void FlatForest::ScoreBlock(const double* const* rows, size_t n, double* out,
                            bool use_quantized, simd::TraversalFn kernel,
                            BlockScratch& scratch) const {
  const size_t trees = num_trees();
  const size_t od = out_dim_;
  if (num_classes_ > 0) {
    std::fill(out, out + n * od, 0.0);
  } else {
    std::fill(out, out + n, base_score_);
  }

  if (use_quantized && quantized_) {
    if (narrow_codes_) {
      TraverseQuantized<uint8_t>(rows, n, out, scratch.qcodes);
    } else {
      TraverseQuantized<uint16_t>(rows, n, out, scratch.qcodes);
    }
  } else {
    // The traversal kernels consume a packed row-major block. The
    // dense-matrix entry points hand over rows that are already
    // contiguous — alias them; otherwise (Dataset rows, the serving
    // path's per-slot row vectors) pack once into reusable scratch.
    // Packing copies row bytes verbatim, so it cannot perturb results.
    const double* packed = rows[0];
    bool contiguous = true;
    for (size_t i = 1; i < n; ++i) {
      if (rows[i] != rows[0] + i * num_features_) {
        contiguous = false;
        break;
      }
    }
    if (!contiguous) {
      scratch.packed.resize(n * num_features_);
      for (size_t i = 0; i < n; ++i) {
        std::memcpy(scratch.packed.data() + i * num_features_, rows[i],
                    num_features_ * sizeof(double));
      }
      packed = scratch.packed.data();
    }
    kernel(View(), packed, n, out);
  }

  // Finalization mirrors the legacy per-row arithmetic exactly: divide
  // the class sums by the tree count, or squash the logit. Per row the
  // accumulation above ran in tree order 0..T-1 — the same double
  // summation sequence the per-row path performs — so results are
  // bit-identical at any block size or thread count.
  if (num_classes_ > 0) {
    const double t = static_cast<double>(trees);
    for (size_t i = 0; i < n * od; ++i) out[i] /= t;
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = Sigmoid(out[i]);
  }
}

Status FlatForest::ScorePtrs(const double* const* row_ptrs, size_t n,
                             double* out, const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  // Resolve the traversal kernel once per call. An explicit kind the
  // build/CPU cannot serve is a caller error — surfaced as a Status,
  // never silently downgraded (and checked even for n == 0, so a
  // misconfigured pipeline fails on its first call).
  const bool quant = options.use_quantized && quantized_;
  const simd::TraversalKind resolved = simd::Resolve(options.traversal);
  simd::TraversalFn kernel = nullptr;
  if (!quant) {
    kernel = simd::Kernel(resolved);
    if (kernel == nullptr) {
      return Status::InvalidArgument(
          std::string("traversal kernel '") + simd::KindName(resolved) +
          "' is not available on this build/CPU");
    }
  }
  if (n == 0) return Status::OK();
  obs::ScopedTimer timer(BatchLatency());
  size_t block =
      options.block_rows == 0 ? tuned_block_rows_ : options.block_rows;
  if (block == 0) block = 1;
  // The AVX2 kernel addresses the packed block with int32 gather
  // indices (row offset in doubles); cap the block so they cannot
  // overflow. Blocking never changes results, so the cap is safe.
  if (!quant && num_features_ > 0) {
    const size_t cap =
        static_cast<size_t>(std::numeric_limits<int32_t>::max()) /
        num_features_;
    if (cap > 0 && block > cap) block = cap;
  }
  const size_t num_blocks = (n + block - 1) / block;

  if (options.pool == nullptr || num_blocks <= 1) {
    BlockScratch scratch;
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t lo = b * block;
      const size_t hi = std::min(n, lo + block);
      ScoreBlock(row_ptrs + lo, hi - lo, out + lo * out_dim_, quant, kernel,
                 scratch);
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(num_blocks);
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t lo = b * block;
      const size_t hi = std::min(n, lo + block);
      futures.push_back(options.pool->Submit(
          [this, row_ptrs, lo, hi, out, quant, kernel]() {
            BlockScratch scratch;
            ScoreBlock(row_ptrs + lo, hi - lo, out + lo * out_dim_, quant,
                       kernel, scratch);
          }));
    }
    try {
      for (auto& f : futures) f.get();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("batch scoring task failed: ") +
                              e.what());
    }
  }
  RowsTotal()->Increment(n);
  KernelRows(resolved, quant)->Increment(n);
  return Status::OK();
}

void FlatForest::PredictProbaInto(const std::vector<double>& row,
                                  std::vector<double>& out) const {
  out.assign(out_dim_, num_classes_ > 0 ? 0.0 : base_score_);
  const size_t trees = num_trees();
  for (size_t t = 0; t < trees; ++t) {
    int32_t node = tree_offsets_[t];
    int32_t f = feature_[static_cast<size_t>(node)];
    while (f >= 0) {
      node = row[static_cast<size_t>(f)] <=
                     threshold_[static_cast<size_t>(node)]
                 ? left_[static_cast<size_t>(node)]
                 : right_[static_cast<size_t>(node)];
      f = feature_[static_cast<size_t>(node)];
    }
    const double* leaf =
        leaf_values_.data() +
        static_cast<size_t>(leaf_index_[static_cast<size_t>(node)]) *
            leaf_dim_;
    for (size_t c = 0; c < leaf_dim_; ++c) out[c] += leaf[c];
  }
  if (num_classes_ > 0) {
    const double t = static_cast<double>(trees);
    for (double& v : out) v /= t;
  } else {
    out[0] = Sigmoid(out[0]);
  }
  RowsTotal()->Increment(1);
}

std::vector<double> FlatForest::PredictProba(
    const std::vector<double>& row) const {
  std::vector<double> out;
  PredictProbaInto(row, out);
  return out;
}

double FlatForest::PredictPositive(const std::vector<double>& row) const {
  // Accumulating only the positive component reproduces the legacy
  // doubles: acc[1]'s summation sequence is independent of acc[0].
  const size_t trees = num_trees();
  const size_t component = num_classes_ > 0 ? 1 : 0;
  double acc = num_classes_ > 0 ? 0.0 : base_score_;
  for (size_t t = 0; t < trees; ++t) {
    int32_t node = tree_offsets_[t];
    int32_t f = feature_[static_cast<size_t>(node)];
    while (f >= 0) {
      node = row[static_cast<size_t>(f)] <=
                     threshold_[static_cast<size_t>(node)]
                 ? left_[static_cast<size_t>(node)]
                 : right_[static_cast<size_t>(node)];
      f = feature_[static_cast<size_t>(node)];
    }
    acc += leaf_values_[static_cast<size_t>(
                            leaf_index_[static_cast<size_t>(node)]) *
                            leaf_dim_ +
                        component];
  }
  RowsTotal()->Increment(1);
  if (num_classes_ > 0) return acc / static_cast<double>(trees);
  return Sigmoid(acc);
}

Status FlatForest::PredictProbaBatch(const double* rows, size_t n,
                                     double* out,
                                     const BatchOptions& options) const {
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) ptrs[i] = rows + i * num_features_;
  return ScorePtrs(ptrs.data(), n, out, options);
}

Result<std::vector<double>> FlatForest::PredictPositiveProbaBatch(
    const Dataset& data, const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  if (num_classes_ != 0 && num_classes_ != 2) {
    return Status::FailedPrecondition(
        "positive-class probabilities require a binary problem");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const size_t n = data.num_rows();
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) ptrs[i] = data.row(i).data();
  std::vector<double> dense(n * out_dim_);
  CLOUDSURV_RETURN_NOT_OK(ScorePtrs(ptrs.data(), n, dense.data(), options));
  if (out_dim_ == 1) return dense;
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = dense[i * out_dim_ + 1];
  return out;
}

Result<std::vector<double>> FlatForest::PredictPositiveProbaRows(
    const std::vector<std::vector<double>>& rows,
    const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  if (num_classes_ != 0 && num_classes_ != 2) {
    return Status::FailedPrecondition(
        "positive-class probabilities require a binary problem");
  }
  const size_t n = rows.size();
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) {
    if (rows[i].size() != num_features_) {
      return Status::InvalidArgument("feature count mismatch");
    }
    ptrs[i] = rows[i].data();
  }
  std::vector<double> dense(n * out_dim_);
  CLOUDSURV_RETURN_NOT_OK(ScorePtrs(ptrs.data(), n, dense.data(), options));
  if (out_dim_ == 1) return dense;
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = dense[i * out_dim_ + 1];
  return out;
}

Result<std::vector<int>> FlatForest::PredictBatch(
    const Dataset& data, const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const size_t n = data.num_rows();
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) ptrs[i] = data.row(i).data();
  std::vector<double> dense(n * out_dim_);
  CLOUDSURV_RETURN_NOT_OK(ScorePtrs(ptrs.data(), n, dense.data(), options));
  std::vector<int> out(n);
  if (num_classes_ > 0) {
    for (size_t i = 0; i < n; ++i) {
      const double* p = dense.data() + i * out_dim_;
      out[i] = static_cast<int>(std::max_element(p, p + out_dim_) - p);
    }
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = dense[i] > 0.5 ? 1 : 0;
  }
  return out;
}

}  // namespace cloudsurv::ml
