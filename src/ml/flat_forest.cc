#include "ml/flat_forest.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace cloudsurv::ml {

namespace {

// Must match the expression in gbdt.cc exactly — bit-identity of the
// regressor path depends on computing the same double.
double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

obs::Histogram* CompileHistogram() {
  static obs::Histogram* h = obs::Registry::Default().GetHistogram(
      "cloudsurv_inference_compile_ms",
      "FlatForest compilation time (SoA layout + quantized tables)", "ms");
  return h;
}

obs::Counter* RowsTotal() {
  static obs::Counter* c = obs::Registry::Default().GetCounter(
      "cloudsurv_inference_rows_total",
      "Rows scored through the flat inference engine", "rows");
  return c;
}

obs::Histogram* BatchLatency() {
  static obs::Histogram* h = obs::Registry::Default().GetHistogram(
      "cloudsurv_inference_batch_latency_us",
      "Wall time of one FlatForest batch-predict call", "us");
  return h;
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Result<FlatForest> FlatForest::Compile(const RandomForestClassifier& forest) {
  const auto start = std::chrono::steady_clock::now();
  if (!forest.fitted()) {
    return Status::FailedPrecondition("cannot compile an unfitted forest");
  }
  FlatForest flat;
  flat.num_classes_ = forest.num_classes();
  if (flat.num_classes_ <= 0) {
    return Status::Internal("fitted forest reports no classes");
  }
  flat.leaf_dim_ = static_cast<size_t>(flat.num_classes_);
  flat.out_dim_ = flat.leaf_dim_;

  const auto& trees = forest.trees();
  size_t total_nodes = 0;
  for (const auto& tree : trees) total_nodes += tree.num_nodes();
  if (total_nodes >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    return Status::OutOfRange("forest too large for int32 node ids");
  }
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.left_.reserve(total_nodes);
  flat.right_.reserve(total_nodes);
  flat.leaf_index_.reserve(total_nodes);
  flat.tree_offsets_.reserve(trees.size() + 1);
  flat.tree_offsets_.push_back(0);

  flat.num_features_ = trees.empty() ? 0 : trees.front().num_features();
  for (size_t t = 0; t < trees.size(); ++t) {
    const auto& tree = trees[t];
    if (tree.num_nodes() == 0) {
      return Status::Internal("fitted forest contains an empty tree");
    }
    if (tree.num_features() != flat.num_features_) {
      return Status::Internal("trees disagree on feature count");
    }
    const int32_t offset = static_cast<int32_t>(flat.feature_.size());
    for (size_t i = 0; i < tree.num_nodes(); ++i) {
      const auto node = tree.node_view(i);
      flat.feature_.push_back(node.feature < 0 ? -1 : node.feature);
      flat.threshold_.push_back(node.threshold);
      if (node.feature < 0) {
        // Leaf: stash the class distribution densely.
        if (node.probabilities->size() != flat.leaf_dim_) {
          return Status::Internal("leaf distribution size mismatch");
        }
        flat.left_.push_back(-1);
        flat.right_.push_back(-1);
        flat.leaf_index_.push_back(
            static_cast<int32_t>(flat.leaf_values_.size() / flat.leaf_dim_));
        flat.leaf_values_.insert(flat.leaf_values_.end(),
                                 node.probabilities->begin(),
                                 node.probabilities->end());
      } else {
        if (node.left < 0 || node.right < 0 ||
            static_cast<size_t>(node.left) >= tree.num_nodes() ||
            static_cast<size_t>(node.right) >= tree.num_nodes()) {
          return Status::Internal("split node with invalid children");
        }
        flat.left_.push_back(offset + node.left);
        flat.right_.push_back(offset + node.right);
        flat.leaf_index_.push_back(-1);
      }
    }
    flat.tree_offsets_.push_back(static_cast<int32_t>(flat.feature_.size()));
  }
  flat.BuildQuantizedTables();
  CompileHistogram()->Observe(ElapsedMs(start));
  return flat;
}

Result<FlatForest> FlatForest::Compile(
    const GradientBoostedTreesClassifier& gbdt) {
  const auto start = std::chrono::steady_clock::now();
  if (!gbdt.fitted()) {
    return Status::FailedPrecondition("cannot compile an unfitted ensemble");
  }
  FlatForest flat;
  flat.num_classes_ = 0;  // Regressor: scalar logit leaves.
  flat.leaf_dim_ = 1;
  flat.out_dim_ = 1;
  flat.base_score_ = gbdt.base_score();
  flat.num_features_ = gbdt.num_features();

  size_t total_nodes = 0;
  for (size_t t = 0; t < gbdt.num_trees(); ++t) {
    total_nodes += gbdt.tree_nodes(t);
  }
  if (total_nodes >
      static_cast<size_t>(std::numeric_limits<int32_t>::max())) {
    return Status::OutOfRange("ensemble too large for int32 node ids");
  }
  flat.feature_.reserve(total_nodes);
  flat.threshold_.reserve(total_nodes);
  flat.left_.reserve(total_nodes);
  flat.right_.reserve(total_nodes);
  flat.leaf_index_.reserve(total_nodes);
  flat.tree_offsets_.reserve(gbdt.num_trees() + 1);
  flat.tree_offsets_.push_back(0);

  for (size_t t = 0; t < gbdt.num_trees(); ++t) {
    const size_t nodes = gbdt.tree_nodes(t);
    if (nodes == 0) {
      return Status::Internal("fitted ensemble contains an empty tree");
    }
    const int32_t offset = static_cast<int32_t>(flat.feature_.size());
    for (size_t i = 0; i < nodes; ++i) {
      const auto node = gbdt.node_view(t, i);
      flat.feature_.push_back(node.feature < 0 ? -1 : node.feature);
      flat.threshold_.push_back(node.threshold);
      if (node.feature < 0) {
        flat.left_.push_back(-1);
        flat.right_.push_back(-1);
        flat.leaf_index_.push_back(
            static_cast<int32_t>(flat.leaf_values_.size()));
        flat.leaf_values_.push_back(node.value);
      } else {
        if (node.left < 0 || node.right < 0 ||
            static_cast<size_t>(node.left) >= nodes ||
            static_cast<size_t>(node.right) >= nodes) {
          return Status::Internal("split node with invalid children");
        }
        flat.left_.push_back(offset + node.left);
        flat.right_.push_back(offset + node.right);
        flat.leaf_index_.push_back(-1);
      }
    }
    flat.tree_offsets_.push_back(static_cast<int32_t>(flat.feature_.size()));
  }
  flat.BuildQuantizedTables();
  CompileHistogram()->Observe(ElapsedMs(start));
  return flat;
}

void FlatForest::BuildQuantizedTables() {
  quantized_ = false;
  narrow_codes_ = false;
  qthreshold_.clear();
  cut_offsets_.clear();
  cut_values_.clear();
  if (num_features_ == 0) return;

  // Per feature: the sorted distinct thresholds the forest splits on.
  // With cuts c_0 < ... < c_{m-1} and code(v) = #{cuts < v}, routing is
  // exact for EVERY input value: v <= c_k  <=>  code(v) <= k. Codes run
  // 0..m, so uint8 works iff every feature has m <= 255 cuts; deep
  // histogram forests can exceed that (node-local gap-midpoint
  // refinement mints fresh thresholds), so a uint16 tier covers up to
  // 65535 cuts before falling back to the double comparison.
  std::vector<std::vector<double>> cuts(num_features_);
  for (size_t i = 0; i < feature_.size(); ++i) {
    if (feature_[i] >= 0) {
      cuts[static_cast<size_t>(feature_[i])].push_back(threshold_[i]);
    }
  }
  size_t max_cuts = 0;
  for (auto& c : cuts) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    max_cuts = std::max(max_cuts, c.size());
  }
  if (max_cuts > 65535) return;  // Codes would not fit in uint16.
  narrow_codes_ = max_cuts <= 255;

  cut_offsets_.reserve(num_features_ + 1);
  cut_offsets_.push_back(0);
  for (const auto& c : cuts) {
    cut_values_.insert(cut_values_.end(), c.begin(), c.end());
    cut_offsets_.push_back(static_cast<int32_t>(cut_values_.size()));
  }
  qthreshold_.resize(feature_.size(), 0);
  for (size_t i = 0; i < feature_.size(); ++i) {
    if (feature_[i] < 0) continue;
    const auto& c = cuts[static_cast<size_t>(feature_[i])];
    const auto it = std::lower_bound(c.begin(), c.end(), threshold_[i]);
    qthreshold_[i] = static_cast<uint16_t>(it - c.begin());
  }
  quantized_ = true;
}

size_t FlatForest::memory_bytes() const {
  return feature_.size() * sizeof(int32_t) +
         threshold_.size() * sizeof(double) +
         left_.size() * sizeof(int32_t) + right_.size() * sizeof(int32_t) +
         leaf_index_.size() * sizeof(int32_t) +
         leaf_values_.size() * sizeof(double) +
         tree_offsets_.size() * sizeof(int32_t) +
         qthreshold_.size() * sizeof(uint16_t) +
         cut_offsets_.size() * sizeof(int32_t) +
         cut_values_.size() * sizeof(double);
}

Status FlatForest::SelfCheck() const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  const size_t nodes = feature_.size();
  if (threshold_.size() != nodes || left_.size() != nodes ||
      right_.size() != nodes || leaf_index_.size() != nodes) {
    return Status::Internal("SoA arrays disagree on node count");
  }
  if (tree_offsets_.front() != 0 ||
      static_cast<size_t>(tree_offsets_.back()) != nodes) {
    return Status::Internal("tree offsets do not span the node arrays");
  }
  if (leaf_dim_ == 0 || leaf_values_.size() % leaf_dim_ != 0) {
    return Status::Internal("leaf matrix not a multiple of leaf_dim");
  }
  const int32_t leaves = static_cast<int32_t>(num_leaves());
  for (size_t t = 0; t + 1 < tree_offsets_.size(); ++t) {
    const int32_t lo = tree_offsets_[t];
    const int32_t hi = tree_offsets_[t + 1];
    if (lo >= hi) return Status::Internal("empty or non-monotone tree range");
    for (int32_t i = lo; i < hi; ++i) {
      const size_t u = static_cast<size_t>(i);
      if (feature_[u] < 0) {
        if (leaf_index_[u] < 0 || leaf_index_[u] >= leaves) {
          return Status::Internal("leaf references an out-of-range row");
        }
        if (left_[u] != -1 || right_[u] != -1) {
          return Status::Internal("leaf with children");
        }
      } else {
        if (static_cast<size_t>(feature_[u]) >= num_features_) {
          return Status::Internal("split feature out of range");
        }
        if (left_[u] <= i || left_[u] >= hi || right_[u] <= i ||
            right_[u] >= hi) {
          return Status::Internal("child id escapes its tree range");
        }
        if (leaf_index_[u] != -1) {
          return Status::Internal("split node with a leaf row");
        }
        if (quantized_) {
          const int32_t f = feature_[u];
          const int32_t cut =
              cut_offsets_[static_cast<size_t>(f)] + qthreshold_[u];
          if (cut >= cut_offsets_[static_cast<size_t>(f) + 1] ||
              cut_values_[static_cast<size_t>(cut)] != threshold_[u]) {
            return Status::Internal(
                "quantized threshold does not map back to its cut");
          }
        }
      }
    }
  }
  return Status::OK();
}

template <typename Code>
void FlatForest::TraverseQuantized(const double* const* rows, size_t n,
                                   double* out,
                                   std::vector<uint8_t>& scratch) const {
  const size_t trees = num_trees();
  const size_t od = out_dim_;
  // Quantize the block once: one integer code per (row, feature) — a
  // much smaller working set than the double rows while all trees
  // stream through. The byte buffer is reused across a task's blocks;
  // vector storage is max-aligned, so the uint16 view is safe.
  scratch.resize(n * num_features_ * sizeof(Code));
  Code* block_codes = reinterpret_cast<Code*>(scratch.data());
  for (size_t i = 0; i < n; ++i) {
    const double* row = rows[i];
    Code* codes = block_codes + i * num_features_;
    for (size_t f = 0; f < num_features_; ++f) {
      const double* cb = cut_values_.data() + cut_offsets_[f];
      const double* ce = cut_values_.data() + cut_offsets_[f + 1];
      codes[f] = static_cast<Code>(std::lower_bound(cb, ce, row[f]) - cb);
    }
  }
  for (size_t t = 0; t < trees; ++t) {
    const int32_t root = tree_offsets_[t];
    for (size_t i = 0; i < n; ++i) {
      const Code* codes = block_codes + i * num_features_;
      int32_t node = root;
      int32_t f = feature_[static_cast<size_t>(node)];
      while (f >= 0) {
        node = codes[static_cast<size_t>(f)] <=
                       qthreshold_[static_cast<size_t>(node)]
                   ? left_[static_cast<size_t>(node)]
                   : right_[static_cast<size_t>(node)];
        f = feature_[static_cast<size_t>(node)];
      }
      const double* leaf =
          leaf_values_.data() +
          static_cast<size_t>(leaf_index_[static_cast<size_t>(node)]) *
              leaf_dim_;
      double* acc = out + i * od;
      for (size_t c = 0; c < leaf_dim_; ++c) acc[c] += leaf[c];
    }
  }
}

void FlatForest::ScoreBlock(const double* const* rows, size_t n, double* out,
                            bool use_quantized,
                            std::vector<uint8_t>& scratch) const {
  const size_t trees = num_trees();
  const size_t od = out_dim_;
  if (num_classes_ > 0) {
    std::fill(out, out + n * od, 0.0);
  } else {
    std::fill(out, out + n, base_score_);
  }

  if (use_quantized && quantized_) {
    if (narrow_codes_) {
      TraverseQuantized<uint8_t>(rows, n, out, scratch);
    } else {
      TraverseQuantized<uint16_t>(rows, n, out, scratch);
    }
  } else {
    for (size_t t = 0; t < trees; ++t) {
      const int32_t root = tree_offsets_[t];
      for (size_t i = 0; i < n; ++i) {
        const double* row = rows[i];
        int32_t node = root;
        int32_t f = feature_[static_cast<size_t>(node)];
        while (f >= 0) {
          node = row[static_cast<size_t>(f)] <=
                         threshold_[static_cast<size_t>(node)]
                     ? left_[static_cast<size_t>(node)]
                     : right_[static_cast<size_t>(node)];
          f = feature_[static_cast<size_t>(node)];
        }
        const double* leaf =
            leaf_values_.data() +
            static_cast<size_t>(leaf_index_[static_cast<size_t>(node)]) *
                leaf_dim_;
        double* acc = out + i * od;
        for (size_t c = 0; c < leaf_dim_; ++c) acc[c] += leaf[c];
      }
    }
  }

  // Finalization mirrors the legacy per-row arithmetic exactly: divide
  // the class sums by the tree count, or squash the logit. Per row the
  // accumulation above ran in tree order 0..T-1 — the same double
  // summation sequence the per-row path performs — so results are
  // bit-identical at any block size or thread count.
  if (num_classes_ > 0) {
    const double t = static_cast<double>(trees);
    for (size_t i = 0; i < n * od; ++i) out[i] /= t;
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = Sigmoid(out[i]);
  }
}

Status FlatForest::ScorePtrs(const double* const* row_ptrs, size_t n,
                             double* out, const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  if (n == 0) return Status::OK();
  obs::ScopedTimer timer(BatchLatency());
  const size_t block = options.block_rows == 0 ? 1 : options.block_rows;
  const size_t num_blocks = (n + block - 1) / block;

  if (options.pool == nullptr || num_blocks <= 1) {
    std::vector<uint8_t> scratch;
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t lo = b * block;
      const size_t hi = std::min(n, lo + block);
      ScoreBlock(row_ptrs + lo, hi - lo, out + lo * out_dim_,
                 options.use_quantized, scratch);
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(num_blocks);
    for (size_t b = 0; b < num_blocks; ++b) {
      const size_t lo = b * block;
      const size_t hi = std::min(n, lo + block);
      futures.push_back(options.pool->Submit(
          [this, row_ptrs, lo, hi, out, &options]() {
            std::vector<uint8_t> scratch;
            ScoreBlock(row_ptrs + lo, hi - lo, out + lo * out_dim_,
                       options.use_quantized, scratch);
          }));
    }
    try {
      for (auto& f : futures) f.get();
    } catch (const std::exception& e) {
      return Status::Internal(std::string("batch scoring task failed: ") +
                              e.what());
    }
  }
  RowsTotal()->Increment(n);
  return Status::OK();
}

void FlatForest::PredictProbaInto(const std::vector<double>& row,
                                  std::vector<double>& out) const {
  out.assign(out_dim_, num_classes_ > 0 ? 0.0 : base_score_);
  const size_t trees = num_trees();
  for (size_t t = 0; t < trees; ++t) {
    int32_t node = tree_offsets_[t];
    int32_t f = feature_[static_cast<size_t>(node)];
    while (f >= 0) {
      node = row[static_cast<size_t>(f)] <=
                     threshold_[static_cast<size_t>(node)]
                 ? left_[static_cast<size_t>(node)]
                 : right_[static_cast<size_t>(node)];
      f = feature_[static_cast<size_t>(node)];
    }
    const double* leaf =
        leaf_values_.data() +
        static_cast<size_t>(leaf_index_[static_cast<size_t>(node)]) *
            leaf_dim_;
    for (size_t c = 0; c < leaf_dim_; ++c) out[c] += leaf[c];
  }
  if (num_classes_ > 0) {
    const double t = static_cast<double>(trees);
    for (double& v : out) v /= t;
  } else {
    out[0] = Sigmoid(out[0]);
  }
  RowsTotal()->Increment(1);
}

std::vector<double> FlatForest::PredictProba(
    const std::vector<double>& row) const {
  std::vector<double> out;
  PredictProbaInto(row, out);
  return out;
}

double FlatForest::PredictPositive(const std::vector<double>& row) const {
  // Accumulating only the positive component reproduces the legacy
  // doubles: acc[1]'s summation sequence is independent of acc[0].
  const size_t trees = num_trees();
  const size_t component = num_classes_ > 0 ? 1 : 0;
  double acc = num_classes_ > 0 ? 0.0 : base_score_;
  for (size_t t = 0; t < trees; ++t) {
    int32_t node = tree_offsets_[t];
    int32_t f = feature_[static_cast<size_t>(node)];
    while (f >= 0) {
      node = row[static_cast<size_t>(f)] <=
                     threshold_[static_cast<size_t>(node)]
                 ? left_[static_cast<size_t>(node)]
                 : right_[static_cast<size_t>(node)];
      f = feature_[static_cast<size_t>(node)];
    }
    acc += leaf_values_[static_cast<size_t>(
                            leaf_index_[static_cast<size_t>(node)]) *
                            leaf_dim_ +
                        component];
  }
  RowsTotal()->Increment(1);
  if (num_classes_ > 0) return acc / static_cast<double>(trees);
  return Sigmoid(acc);
}

Status FlatForest::PredictProbaBatch(const double* rows, size_t n,
                                     double* out,
                                     const BatchOptions& options) const {
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) ptrs[i] = rows + i * num_features_;
  return ScorePtrs(ptrs.data(), n, out, options);
}

Result<std::vector<double>> FlatForest::PredictPositiveProbaBatch(
    const Dataset& data, const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  if (num_classes_ != 0 && num_classes_ != 2) {
    return Status::FailedPrecondition(
        "positive-class probabilities require a binary problem");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const size_t n = data.num_rows();
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) ptrs[i] = data.row(i).data();
  std::vector<double> dense(n * out_dim_);
  CLOUDSURV_RETURN_NOT_OK(ScorePtrs(ptrs.data(), n, dense.data(), options));
  if (out_dim_ == 1) return dense;
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = dense[i * out_dim_ + 1];
  return out;
}

Result<std::vector<double>> FlatForest::PredictPositiveProbaRows(
    const std::vector<std::vector<double>>& rows,
    const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  if (num_classes_ != 0 && num_classes_ != 2) {
    return Status::FailedPrecondition(
        "positive-class probabilities require a binary problem");
  }
  const size_t n = rows.size();
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) {
    if (rows[i].size() != num_features_) {
      return Status::InvalidArgument("feature count mismatch");
    }
    ptrs[i] = rows[i].data();
  }
  std::vector<double> dense(n * out_dim_);
  CLOUDSURV_RETURN_NOT_OK(ScorePtrs(ptrs.data(), n, dense.data(), options));
  if (out_dim_ == 1) return dense;
  std::vector<double> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = dense[i * out_dim_ + 1];
  return out;
}

Result<std::vector<int>> FlatForest::PredictBatch(
    const Dataset& data, const BatchOptions& options) const {
  if (!compiled()) {
    return Status::FailedPrecondition("forest is not compiled");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const size_t n = data.num_rows();
  std::vector<const double*> ptrs(n);
  for (size_t i = 0; i < n; ++i) ptrs[i] = data.row(i).data();
  std::vector<double> dense(n * out_dim_);
  CLOUDSURV_RETURN_NOT_OK(ScorePtrs(ptrs.data(), n, dense.data(), options));
  std::vector<int> out(n);
  if (num_classes_ > 0) {
    for (size_t i = 0; i < n; ++i) {
      const double* p = dense.data() + i * out_dim_;
      out[i] = static_cast<int>(std::max_element(p, p + out_dim_) - p);
    }
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = dense[i] > 0.5 ? 1 : 0;
  }
  return out;
}

}  // namespace cloudsurv::ml
