#include "ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace cloudsurv::ml {

Result<Dataset> Dataset::Make(std::vector<std::string> feature_names,
                              std::vector<std::vector<double>> rows,
                              std::vector<int> labels, int num_classes) {
  if (rows.size() != labels.size()) {
    return Status::InvalidArgument("rows and labels must have equal length");
  }
  const size_t d = feature_names.size();
  for (const auto& r : rows) {
    if (r.size() != d) {
      return Status::InvalidArgument(
          "every row must have one value per feature");
    }
    for (double v : r) {
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("feature values must be finite");
      }
    }
  }
  int max_label = -1;
  for (int l : labels) {
    if (l < 0) {
      return Status::InvalidArgument("labels must be non-negative");
    }
    max_label = std::max(max_label, l);
  }
  if (num_classes <= 0) {
    num_classes = max_label + 1;
  } else if (max_label >= num_classes) {
    return Status::InvalidArgument("label exceeds num_classes");
  }
  if (num_classes <= 0) num_classes = 2;  // empty dataset default
  std::unordered_set<std::string> seen;
  for (const auto& n : feature_names) {
    if (!seen.insert(n).second) {
      return Status::InvalidArgument("duplicate feature name: " + n);
    }
  }
  return Dataset(std::move(feature_names), std::move(rows), std::move(labels),
                 num_classes);
}

Dataset::Dataset(std::vector<std::string> feature_names,
                 std::vector<std::vector<double>> rows,
                 std::vector<int> labels, int num_classes)
    : feature_names_(std::move(feature_names)),
      rows_(std::move(rows)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {}

int Dataset::FeatureIndex(const std::string& name) const {
  for (size_t i = 0; i < feature_names_.size(); ++i) {
    if (feature_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Result<Dataset> Dataset::Subset(const std::vector<size_t>& indices) const {
  std::vector<std::vector<double>> rows;
  std::vector<int> labels;
  rows.reserve(indices.size());
  labels.reserve(indices.size());
  for (size_t i : indices) {
    if (i >= rows_.size()) {
      return Status::OutOfRange("subset index out of range");
    }
    rows.push_back(rows_[i]);
    labels.push_back(labels_[i]);
  }
  return Dataset(feature_names_, std::move(rows), std::move(labels),
                 num_classes_);
}

std::vector<size_t> Dataset::ClassCounts() const {
  std::vector<size_t> counts(static_cast<size_t>(num_classes_), 0);
  for (int l : labels_) ++counts[static_cast<size_t>(l)];
  return counts;
}

double Dataset::ClassFraction(int cls) const {
  if (rows_.empty() || cls < 0 || cls >= num_classes_) return 0.0;
  const auto counts = ClassCounts();
  return static_cast<double>(counts[static_cast<size_t>(cls)]) /
         static_cast<double>(rows_.size());
}

Result<Dataset> Dataset::DropFeatures(
    const std::vector<std::string>& names) const {
  std::vector<bool> drop(feature_names_.size(), false);
  for (const auto& n : names) {
    const int idx = FeatureIndex(n);
    if (idx < 0) {
      return Status::NotFound("no feature named " + n);
    }
    drop[static_cast<size_t>(idx)] = true;
  }
  std::vector<std::string> kept_names;
  for (size_t i = 0; i < feature_names_.size(); ++i) {
    if (!drop[i]) kept_names.push_back(feature_names_[i]);
  }
  std::vector<std::vector<double>> kept_rows;
  kept_rows.reserve(rows_.size());
  for (const auto& r : rows_) {
    std::vector<double> kr;
    kr.reserve(kept_names.size());
    for (size_t i = 0; i < r.size(); ++i) {
      if (!drop[i]) kr.push_back(r[i]);
    }
    kept_rows.push_back(std::move(kr));
  }
  return Dataset(std::move(kept_names), std::move(kept_rows), labels_,
                 num_classes_);
}

}  // namespace cloudsurv::ml
