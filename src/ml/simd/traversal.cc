#include "ml/simd/traversal.h"

#include <cstdlib>
#include <cstring>

namespace cloudsurv::ml::simd {

void ScalarTraverse(const ForestView& f, const double* rows, size_t n,
                    double* out) {
  // Trees outer, rows inner: the node arrays stream once per block
  // while the block's rows and accumulators stay cache-resident. Per
  // row the leaf sums accumulate in tree order 0..T-1 with plain double
  // adds — the exact summation sequence of the legacy per-row path.
  for (size_t t = 0; t < f.num_trees; ++t) {
    const int32_t root = f.tree_offsets[t];
    for (size_t i = 0; i < n; ++i) {
      const double* row = rows + i * f.num_features;
      int32_t node = root;
      int32_t feat = f.feature[static_cast<size_t>(node)];
      while (feat >= 0) {
        node = row[static_cast<size_t>(feat)] <=
                       f.threshold[static_cast<size_t>(node)]
                   ? f.left[static_cast<size_t>(node)]
                   : f.right[static_cast<size_t>(node)];
        feat = f.feature[static_cast<size_t>(node)];
      }
      const double* leaf =
          f.leaf_values +
          static_cast<size_t>(f.leaf_index[static_cast<size_t>(node)]) *
              f.leaf_dim;
      double* acc = out + i * f.out_dim;
      for (size_t c = 0; c < f.leaf_dim; ++c) acc[c] += leaf[c];
    }
  }
}

bool Avx2CompiledIn() {
#if defined(CLOUDSURV_HAVE_AVX2)
  return true;
#else
  return false;
#endif
}

bool Avx2Supported() {
#if defined(CLOUDSURV_HAVE_AVX2) && \
    (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool ForceScalar() {
  const char* env = std::getenv("CLOUDSURV_FORCE_SCALAR");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

TraversalKind Resolve(TraversalKind requested) {
  if (requested != TraversalKind::kAuto) return requested;
  if (!ForceScalar() && Avx2Supported()) return TraversalKind::kAvx2;
  return TraversalKind::kScalar;
}

TraversalFn Kernel(TraversalKind resolved) {
  switch (resolved) {
    case TraversalKind::kScalar:
      return &ScalarTraverse;
    case TraversalKind::kAvx2:
#if defined(CLOUDSURV_HAVE_AVX2)
      if (Avx2Supported()) return &Avx2Traverse;
#endif
      return nullptr;
    case TraversalKind::kAuto:
      return Kernel(Resolve(resolved));
  }
  return nullptr;
}

const char* KindName(TraversalKind kind) {
  switch (kind) {
    case TraversalKind::kAuto:
      return "auto";
    case TraversalKind::kScalar:
      return "scalar";
    case TraversalKind::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseKind(std::string_view text, TraversalKind* out) {
  if (text == "auto") {
    *out = TraversalKind::kAuto;
  } else if (text == "scalar") {
    *out = TraversalKind::kScalar;
  } else if (text == "avx2") {
    *out = TraversalKind::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace cloudsurv::ml::simd
