// AVX2 multi-row traversal: four rows advance through a tree per node
// step. This translation unit is compiled with -mavx2 (see
// src/ml/CMakeLists.txt) and linked only when the toolchain targets
// x86-64 with AVX2 support; callers reach it through the runtime
// dispatch in traversal.cc, never directly.
//
// Bit-identity argument: lanes are rows. Every lane routes on the same
// `row[f] <= threshold[node]` comparison as the scalar walk
// (_CMP_LE_OQ matches `<=` exactly, including the NaN-goes-right
// behaviour), and each row's leaf payload is accumulated in tree order
// 0..T-1 with plain double adds — lane-wise vertical adds carry no
// cross-lane arithmetic, so the summation sequence per row is the
// scalar one and the results are the same doubles.

#include "ml/simd/traversal.h"

#if defined(CLOUDSURV_HAVE_AVX2)

#include <immintrin.h>

namespace cloudsurv::ml::simd {

namespace {

/// Narrows a 4x64-bit compare mask to a 4x32-bit lane mask (each lane
/// all-ones or all-zero) so it can steer 32-bit node-id blends.
inline __m128i MaskPdToEpi32(__m256d mask) {
  const __m256i lanes = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  return _mm256_castsi256_si128(
      _mm256_permutevar8x32_epi32(_mm256_castpd_si256(mask), lanes));
}

}  // namespace

void Avx2Traverse(const ForestView& f, const double* rows, size_t n,
                  double* out) {
  const size_t lanes = 4;
  const size_t n_vec = n - n % lanes;
  const int features = static_cast<int>(f.num_features);
  const __m128i minus_one = _mm_set1_epi32(-1);

  // Trees outer, 4-row groups inner: the node arrays stream once per
  // block while the packed rows and the n x out_dim accumulators stay
  // cache-resident (mirrors the scalar kernel's blocking).
  for (size_t t = 0; t < f.num_trees; ++t) {
    const __m128i root = _mm_set1_epi32(f.tree_offsets[t]);
    for (size_t i = 0; i < n_vec; i += lanes) {
      const int base = static_cast<int>(i) * features;
      // Row start offsets (in doubles) of the four lanes inside the
      // packed block; adding a lane's feature id yields its gather
      // index.
      const __m128i row_base = _mm_setr_epi32(
          base, base + features, base + 2 * features, base + 3 * features);

      __m128i node = root;
      __m128i feat = _mm_i32gather_epi32(f.feature, node, 4);
      // A lane stays active until it lands on a leaf (feature == -1);
      // finished lanes keep their node id via the blend below, and the
      // gathers they still issue read valid leaf entries.
      __m128i active = _mm_cmpgt_epi32(feat, minus_one);
      while (_mm_movemask_epi8(active) != 0) {
        // Finished lanes have feat == -1; masking with `active` clamps
        // them to feature 0 so their (discarded) row gather stays in
        // bounds.
        const __m128i feat_safe = _mm_and_si128(feat, active);
        const __m128i value_idx = _mm_add_epi32(row_base, feat_safe);
        const __m256d values = _mm256_i32gather_pd(rows, value_idx, 8);
        const __m256d thresholds = _mm256_i32gather_pd(f.threshold, node, 8);
        const __m256d go_left =
            _mm256_cmp_pd(values, thresholds, _CMP_LE_OQ);
        const __m128i lefts = _mm_i32gather_epi32(f.left, node, 4);
        const __m128i rights = _mm_i32gather_epi32(f.right, node, 4);
        const __m128i next =
            _mm_blendv_epi8(rights, lefts, MaskPdToEpi32(go_left));
        node = _mm_blendv_epi8(node, next, active);
        feat = _mm_i32gather_epi32(f.feature, node, 4);
        active = _mm_cmpgt_epi32(feat, minus_one);
      }

      const __m128i leaf = _mm_i32gather_epi32(f.leaf_index, node, 4);
      if (f.out_dim == 1 && f.leaf_dim == 1) {
        // Regressor: scalar leaves, contiguous accumulators — one
        // vertical (per-lane, bit-exact) add.
        const __m256d leaf_vals = _mm256_i32gather_pd(f.leaf_values, leaf, 8);
        double* acc = out + i;
        _mm256_storeu_pd(acc, _mm256_add_pd(_mm256_loadu_pd(acc), leaf_vals));
      } else {
        // Classifier: out_dim-strided accumulators; AVX2 has no
        // scatter, and leaf_dim is tiny (the class count), so finish
        // the group with per-lane scalar adds.
        alignas(16) int32_t leaf_ids[4];
        _mm_store_si128(reinterpret_cast<__m128i*>(leaf_ids), leaf);
        for (size_t k = 0; k < lanes; ++k) {
          const double* payload =
              f.leaf_values + static_cast<size_t>(leaf_ids[k]) * f.leaf_dim;
          double* acc = out + (i + k) * f.out_dim;
          for (size_t c = 0; c < f.leaf_dim; ++c) acc[c] += payload[c];
        }
      }
    }
  }

  // Ragged tail (n % 4 rows): the scalar kernel finishes them with the
  // same per-row arithmetic; cross-row ordering is irrelevant because
  // rows accumulate independently.
  if (n_vec < n) {
    ScalarTraverse(f, rows + n_vec * f.num_features, n - n_vec,
                   out + n_vec * f.out_dim);
  }
}

}  // namespace cloudsurv::ml::simd

#endif  // CLOUDSURV_HAVE_AVX2
