#ifndef CLOUDSURV_ML_SIMD_TRAVERSAL_H_
#define CLOUDSURV_ML_SIMD_TRAVERSAL_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// Runtime-dispatched forest-traversal kernels.
///
/// `FlatForest` keeps the layout and the bit-identity contract; this
/// directory keeps the raw per-block traversal loops. Every kernel
/// consumes the same `ForestView` (raw pointers into the SoA arrays)
/// and a packed row-major block, and accumulates leaf payloads into a
/// pre-seeded output buffer using the exact per-row tree-order double
/// summation of the legacy predictors — so all kernels produce
/// bit-identical results and the harness in tests/ml_flat_forest_test
/// can EXPECT_EQ doubles across them.
///
/// Two kernels exist:
///   - scalar: portable one-row-at-a-time walk, always built.
///   - avx2:   4 rows per node step (gathered feature/threshold loads,
///             `_mm256_cmp_pd` masks, blended child-index advance),
///             compiled into its own -mavx2 translation unit and only
///             linked when the toolchain and target support it.
///
/// Selection is a pure function of (requested kind, build flags, CPUID,
/// CLOUDSURV_FORCE_SCALAR): `Resolve` maps kAuto onto the best
/// available kernel; explicit kinds are honoured verbatim and `Kernel`
/// returns nullptr when an explicit kind is not available, which the
/// caller surfaces as a Status instead of silently downgrading.

namespace cloudsurv::ml::simd {

/// Which traversal kernel a batch request wants.
enum class TraversalKind : uint8_t {
  kAuto = 0,    ///< Best available: avx2 when compiled in + CPU support.
  kScalar = 1,  ///< Portable one-row-at-a-time kernel.
  kAvx2 = 2,    ///< 4-rows-per-step AVX2 kernel; explicit requests fail
                ///< with a Status when the build or CPU lacks it.
};

/// Raw pointers into a compiled forest's SoA arrays. Non-owning; valid
/// only while the FlatForest that produced it is alive.
struct ForestView {
  const int32_t* feature = nullptr;    ///< -1 marks a leaf.
  const double* threshold = nullptr;
  const int32_t* left = nullptr;       ///< Absolute node ids.
  const int32_t* right = nullptr;
  const int32_t* leaf_index = nullptr; ///< Row into leaf_values.
  const double* leaf_values = nullptr; ///< num_leaves x leaf_dim.
  const int32_t* tree_offsets = nullptr;
  size_t num_trees = 0;
  size_t num_features = 0;
  size_t leaf_dim = 0;
  size_t out_dim = 0;
};

/// Kernel signature: accumulate raw leaf sums for `n` packed rows
/// (`rows[i * num_features + f]`, finite values) into `out`
/// (`n * out_dim` doubles, pre-seeded by the caller with 0 or the
/// regressor base score). No finalization (divide/sigmoid) happens
/// here — the caller owns it so every kernel shares one epilogue.
using TraversalFn = void (*)(const ForestView& forest, const double* rows,
                             size_t n, double* out);

/// Portable kernel; the arithmetic reference all others must match.
void ScalarTraverse(const ForestView& forest, const double* rows, size_t n,
                    double* out);

#if defined(CLOUDSURV_HAVE_AVX2)
/// AVX2 kernel (traversal_avx2.cc, built with -mavx2). Rows are walked
/// four at a time; the ragged tail reuses ScalarTraverse. Only declared
/// when the translation unit is part of the build.
void Avx2Traverse(const ForestView& forest, const double* rows, size_t n,
                  double* out);
#endif

/// True when the AVX2 translation unit was compiled into this binary.
bool Avx2CompiledIn();

/// True when Avx2CompiledIn() and the running CPU reports AVX2.
bool Avx2Supported();

/// True when the CLOUDSURV_FORCE_SCALAR environment variable is set to
/// anything but "0" — kAuto then resolves to the scalar kernel (CI uses
/// this to drive both kernels through the same sanitizer jobs).
bool ForceScalar();

/// Maps kAuto onto the best available kernel (honouring ForceScalar);
/// explicit kinds are returned unchanged, even when unavailable.
TraversalKind Resolve(TraversalKind requested);

/// Kernel for a *resolved* kind; nullptr when that kind is not
/// available in this build/CPU (never nullptr for kScalar).
TraversalFn Kernel(TraversalKind resolved);

/// Stable lowercase name: "auto", "scalar", "avx2".
const char* KindName(TraversalKind kind);

/// Parses "auto" / "scalar" / "avx2"; false on anything else.
bool ParseKind(std::string_view text, TraversalKind* out);

}  // namespace cloudsurv::ml::simd

#endif  // CLOUDSURV_ML_SIMD_TRAVERSAL_H_
