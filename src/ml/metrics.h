#ifndef CLOUDSURV_ML_METRICS_H_
#define CLOUDSURV_ML_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace cloudsurv::ml {

/// Binary confusion counts with the paper's convention: class 1
/// ("long-lived", survives > y days) is positive.
struct ConfusionMatrix {
  size_t true_positive = 0;
  size_t false_positive = 0;
  size_t true_negative = 0;
  size_t false_negative = 0;

  size_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
};

/// The three scores the paper reports (section 5.1), plus F1.
struct ClassificationScores {
  double accuracy = 0.0;   ///< Correct / total.
  double precision = 0.0;  ///< TP / (TP + FP); 0 when nothing predicted +.
  double recall = 0.0;     ///< TP / (TP + FN); 0 when no actual positives.
  double f1 = 0.0;         ///< Harmonic mean of precision and recall.
  size_t support = 0;      ///< Number of evaluated examples.
};

/// Tallies a binary confusion matrix. Labels must be 0/1 and arrays must
/// have equal non-zero length.
Result<ConfusionMatrix> ComputeConfusionMatrix(
    const std::vector<int>& y_true, const std::vector<int>& y_pred);

/// Derives accuracy/precision/recall/F1 from a confusion matrix.
ClassificationScores ScoresFromConfusion(const ConfusionMatrix& cm);

/// One-call convenience: confusion then scores.
Result<ClassificationScores> ComputeScores(const std::vector<int>& y_true,
                                           const std::vector<int>& y_pred);

/// Averages a set of score structs element-wise (used for the paper's
/// "average over 5 runs" protocol). Empty input yields zeros.
ClassificationScores AverageScores(
    const std::vector<ClassificationScores>& runs);

/// Area under the ROC curve computed from positive-class probabilities
/// by the rank statistic (ties handled by midranks).
Result<double> RocAuc(const std::vector<int>& y_true,
                      const std::vector<double>& positive_probability);

/// Renders "accuracy=.. precision=.. recall=.." for logs/reports.
std::string ScoresToString(const ClassificationScores& s);

/// K-class confusion counts; counts[truth][predicted].
struct MulticlassConfusion {
  std::vector<std::vector<size_t>> counts;
  size_t total = 0;

  size_t num_classes() const { return counts.size(); }
  double accuracy() const;
};

/// Tallies a K-class confusion matrix. `num_classes` <= 0 infers
/// max(label)+1 across both arrays.
Result<MulticlassConfusion> ComputeMulticlassConfusion(
    const std::vector<int>& y_true, const std::vector<int>& y_pred,
    int num_classes = -1);

/// One-vs-rest scores for class `cls` derived from a K-class confusion.
Result<ClassificationScores> OneVsRestScores(
    const MulticlassConfusion& confusion, int cls);

/// Fixed-width text rendering of a K-class confusion matrix with
/// per-class labels.
std::string MulticlassConfusionToText(
    const MulticlassConfusion& confusion,
    const std::vector<std::string>& class_names);

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_METRICS_H_
