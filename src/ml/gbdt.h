#ifndef CLOUDSURV_ML_GBDT_H_
#define CLOUDSURV_ML_GBDT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ml/binned_dataset.h"
#include "ml/dataset.h"

namespace cloudsurv::ml {

/// Hyper-parameters of the boosted ensemble.
struct GbdtParams {
  int num_rounds = 100;          ///< Trees in the ensemble.
  double learning_rate = 0.1;    ///< Shrinkage per tree.
  int max_depth = 4;             ///< Depth of each regression tree.
  size_t min_samples_leaf = 10;  ///< Minimum rows per leaf.
  double lambda = 1.0;           ///< L2 regularization on leaf values.
  double subsample = 1.0;        ///< Row-sampling fraction per round.
  /// Node-split search. kHistogram bins the matrix once before round 0
  /// and scans (gradient, hessian, count) histograms per node.
  SplitAlgorithm split_algorithm = SplitAlgorithm::kHistogram;
};

/// Gradient-boosted decision trees for binary classification with
/// logistic loss and second-order (Newton) leaf values — the other
/// dominant tree-ensemble family the paper's related work mentions
/// (refs [1, 2]: ensembles of decision trees dominate data-science
/// competitions). Provided as an alternative model to the random
/// forest; `bench/model_comparison` pits them against each other on the
/// paper's task.
///
/// Each round fits a regression tree to the loss gradients: split gain
/// and leaf weights follow the standard second-order formulation
/// (gain = G_L^2/(H_L+lambda) + G_R^2/(H_R+lambda) - G^2/(H+lambda),
/// leaf w = -G/(H+lambda)).
class GradientBoostedTreesClassifier {
 public:
  GradientBoostedTreesClassifier() = default;

  /// Fits the ensemble; binary labels only. Deterministic per seed.
  Status Fit(const Dataset& data, const GbdtParams& params, uint64_t seed);

  bool fitted() const { return !trees_.empty(); }

  /// Raw additive score f(x) (log-odds).
  double PredictLogit(const std::vector<double>& row) const;

  /// P[y = 1 | x] = sigmoid(f(x)).
  double PredictProbability(const std::vector<double>& row) const;

  /// Hard prediction at the 0.5 probability threshold.
  int Predict(const std::vector<double>& row) const;

  Result<std::vector<int>> PredictBatch(const Dataset& data) const;
  Result<std::vector<double>> PredictPositiveProba(
      const Dataset& data) const;

  /// Total split gain attributed to each feature, normalized to sum 1.
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  /// Training log-loss after each round (length = fitted rounds).
  const std::vector<double>& training_loss() const { return train_loss_; }

  size_t num_trees() const { return trees_.size(); }
  size_t num_features() const { return num_features_; }
  /// Initial log-odds the additive score starts from.
  double base_score() const { return base_score_; }

  /// Nodes stored in tree `t` (node 0 is that tree's root).
  size_t tree_nodes(size_t t) const { return trees_[t].nodes.size(); }

  /// Read-only view of node `i` of tree `t`, for compilers of
  /// alternative inference layouts (`ml::FlatForest`). `feature < 0`
  /// marks a leaf carrying the (already shrunk) weight `value`.
  struct NodeView {
    int feature;
    double threshold;
    int left;
    int right;
    double value;
  };
  NodeView node_view(size_t t, size_t i) const {
    const Node& n = trees_[t].nodes[i];
    return {n.feature, n.threshold, n.left, n.right, n.value};
  }

  /// Serializes the fitted ensemble to text; exact round trip.
  std::string Serialize() const;

  /// Reconstructs an ensemble from Serialize() output.
  static Result<GradientBoostedTreesClassifier> Deserialize(
      const std::string& text);

 private:
  struct Node {
    int feature = -1;         ///< -1 for leaves.
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    double value = 0.0;       ///< Leaf weight (already shrunk).
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(const std::vector<double>& row) const;
  };

  int BuildNode(const Dataset& data, const std::vector<double>& gradients,
                const std::vector<double>& hessians,
                std::vector<size_t>& indices, size_t begin, size_t end,
                int depth, const GbdtParams& params, Tree* tree);

  struct BinnedGbdtContext;  // defined in gbdt.cc
  int BuildNodeBinned(BinnedGbdtContext& ctx, std::vector<size_t>& indices,
                      size_t begin, size_t end, int depth, Tree* tree,
                      std::vector<double> node_hist);

  std::vector<Tree> trees_;
  std::vector<double> importances_;
  std::vector<double> train_loss_;
  double base_score_ = 0.0;  ///< Initial log-odds (class prior).
  size_t num_features_ = 0;
};

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_GBDT_H_
