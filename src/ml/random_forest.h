#ifndef CLOUDSURV_ML_RANDOM_FOREST_H_
#define CLOUDSURV_ML_RANDOM_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/decision_tree.h"

namespace cloudsurv::ml {

/// How many features each node examines.
enum class MaxFeaturesRule {
  kSqrt,   ///< ceil(sqrt(d)) — the standard forest default.
  kLog2,   ///< ceil(log2(d)).
  kAll,    ///< All features (bagged trees, no feature randomness).
};

/// Forest hyper-parameters; the grid search in core/ tunes a subset.
struct ForestParams {
  int num_trees = 100;
  int max_depth = 16;
  size_t min_samples_split = 2;
  size_t min_samples_leaf = 1;
  MaxFeaturesRule max_features = MaxFeaturesRule::kSqrt;
  bool bootstrap = true;  ///< Sample n rows with replacement per tree.
  int num_threads = 0;    ///< 0 = hardware concurrency.
  /// Node-split search passed to every tree. With kHistogram the forest
  /// bins the training rows once and all trees share the codes.
  SplitAlgorithm split_algorithm = SplitAlgorithm::kHistogram;
  /// Optional per-class weights passed to every tree (empty = all 1.0).
  /// Use {1/q0, 1/q1}-style weights to trade precision for recall on
  /// imbalanced subgroups (the paper's Premium edition).
  std::vector<double> class_weights;

  std::string ToString() const;
};

/// Random forest classifier (Breiman 2001, the paper's model of choice).
/// An ensemble of CART trees, each fit on a bootstrap sample with
/// per-node random feature subsets. Class probabilities are the average
/// of per-tree leaf distributions — exactly the quantity the paper uses
/// as its prediction "confidence level" (section 5.3).
class RandomForestClassifier {
 public:
  RandomForestClassifier() = default;

  /// Fits `params.num_trees` trees. Deterministic for a fixed seed
  /// regardless of thread count (per-tree seeds are derived up front).
  Status Fit(const Dataset& data, const ForestParams& params, uint64_t seed);

  /// Fits on the view `data[rows]` without materializing a subset copy —
  /// bootstrap samples, bin edges, and OOB are all computed over the
  /// view, so this trains the same forest `Fit(data.Subset(rows))` would.
  /// Cross-validation trains each fold this way.
  Status FitOnRows(const Dataset& data, const std::vector<size_t>& rows,
                   const ForestParams& params, uint64_t seed);

  bool fitted() const { return !trees_.empty(); }

  /// Averaged class-probability vector for one feature row.
  std::vector<double> PredictProba(const std::vector<double>& row) const;

  /// argmax of PredictProba.
  int Predict(const std::vector<double>& row) const;

  /// Predictions for every row of `data`.
  Result<std::vector<int>> PredictBatch(const Dataset& data) const;

  /// Predictions for the view `data[rows]` (no subset copy).
  Result<std::vector<int>> PredictRows(const Dataset& data,
                                       const std::vector<size_t>& rows) const;

  /// Positive-class (class 1) probability for every row of `data`;
  /// requires a binary problem.
  Result<std::vector<double>> PredictPositiveProba(const Dataset& data) const;

  /// Gini importances averaged over trees; sums to ~1.
  const std::vector<double>& feature_importances() const {
    return importances_;
  }

  /// Out-of-bag accuracy estimate: each row is scored only by trees
  /// whose bootstrap sample missed it. Requires bootstrap=true at fit
  /// time; rows never out-of-bag are skipped.
  double oob_accuracy() const { return oob_accuracy_; }

  size_t num_trees() const { return trees_.size(); }
  int num_classes() const { return num_classes_; }
  const std::vector<DecisionTreeClassifier>& trees() const { return trees_; }

  /// Serializes the fitted forest (trees, importances, OOB score) to a
  /// text form suitable for storing a trained model; exact round trip.
  std::string Serialize() const;

  /// Reconstructs a forest from Serialize() output.
  static Result<RandomForestClassifier> Deserialize(const std::string& text);

 private:
  /// Sums the per-tree leaf distributions for `row` into `acc`
  /// (assigned/zeroed here) and divides by the tree count — the
  /// allocation-free core of PredictProba. Batch predictors reuse one
  /// scratch buffer across rows instead of constructing a fresh vector
  /// per row and per tree.
  void AccumulateProbaInto(const std::vector<double>& row,
                           std::vector<double>& acc) const;

  std::vector<DecisionTreeClassifier> trees_;
  std::vector<double> importances_;
  double oob_accuracy_ = 0.0;
  int num_classes_ = 0;
  size_t num_features_ = 0;
};

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_RANDOM_FOREST_H_
