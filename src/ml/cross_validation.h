#ifndef CLOUDSURV_ML_CROSS_VALIDATION_H_
#define CLOUDSURV_ML_CROSS_VALIDATION_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/random_forest.h"

namespace cloudsurv::ml {

/// Row-index split of one dataset into train and test parts.
struct TrainTestIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Random shuffled split with `test_fraction` of rows in the test part.
/// When `stratified`, class proportions are preserved in both parts
/// (per-class shuffles), matching scikit-learn's default protocol in the
/// paper's experiments.
Result<TrainTestIndices> TrainTestSplit(const Dataset& data,
                                        double test_fraction, uint64_t seed,
                                        bool stratified = true);

/// One train/validation fold.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> validation;
};

/// K-fold partition of row indices (shuffled). With `stratified`, each
/// fold keeps approximate class balance.
Result<std::vector<Fold>> KFoldSplit(const Dataset& data, int k,
                                     uint64_t seed, bool stratified = true);

/// Mean validation accuracy of a forest configuration over k folds.
/// Folds are trained on index views of `data` (no subset copies).
/// `num_threads` > 1 evaluates folds on a thread pool; per-fold seeds
/// are pre-derived, so the result is bit-identical for any thread
/// count (inner forest fits run single-threaded when the pool is on).
Result<double> CrossValidateForest(const Dataset& data,
                                   const ForestParams& params, int k,
                                   uint64_t seed, int num_threads = 1);

/// Exhaustive grid search over forest configurations by k-fold CV
/// accuracy (the paper's protocol: grid search with 5-fold CV over the
/// training set). Returns the winning configuration and its score.
struct GridSearchResult {
  ForestParams best_params;
  double best_score = 0.0;
  /// (params, score) for every evaluated cell, in evaluation order.
  std::vector<std::pair<ForestParams, double>> all_scores;
};

/// `num_threads` > 1 fans the (grid-point × fold) work items out over a
/// thread pool. Every item's seed is derived up front from (seed, grid
/// index, fold index) alone, and per-item results are aggregated in a
/// fixed order, so scores and best_params are bit-identical regardless
/// of thread count.
Result<GridSearchResult> GridSearchForest(
    const Dataset& data, const std::vector<ForestParams>& grid, int k,
    uint64_t seed, int num_threads = 1);

/// The compact default grid used by the paper-reproduction pipeline.
std::vector<ForestParams> DefaultForestGrid();

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_CROSS_VALIDATION_H_
