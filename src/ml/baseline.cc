#include "ml/baseline.h"

namespace cloudsurv::ml {

Status WeightedRandomClassifier::Fit(const Dataset& data) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot fit baseline on empty data");
  }
  if (data.num_classes() != 2) {
    return Status::InvalidArgument("baseline requires a binary problem");
  }
  positive_rate_ = data.ClassFraction(1);
  fitted_ = true;
  return Status::OK();
}

WeightedRandomClassifier WeightedRandomClassifier::FromPositiveRate(
    double rate) {
  WeightedRandomClassifier clf;
  clf.positive_rate_ = rate < 0.0 ? 0.0 : (rate > 1.0 ? 1.0 : rate);
  clf.fitted_ = true;
  return clf;
}

int WeightedRandomClassifier::Predict(Rng& rng) const {
  return rng.Uniform() < positive_rate_ ? 1 : 0;
}

Result<std::vector<int>> WeightedRandomClassifier::PredictBatch(
    const Dataset& data, uint64_t seed) const {
  if (!fitted_) {
    return Status::FailedPrecondition("baseline is not fitted");
  }
  Rng rng(seed);
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(Predict(rng));
  }
  return out;
}

}  // namespace cloudsurv::ml
