#ifndef CLOUDSURV_ML_PERMUTATION_IMPORTANCE_H_
#define CLOUDSURV_ML_PERMUTATION_IMPORTANCE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "ml/dataset.h"

namespace cloudsurv::ml {

/// A fitted model's batch scorer: returns the accuracy (or any
/// higher-is-better score) of the model on `data`.
using ModelScorer = std::function<Result<double>(const Dataset& data)>;

/// Model-agnostic permutation importance: for each feature, shuffle its
/// column (breaking its relationship with the label), re-score, and
/// report the mean score drop over `repeats` shuffles. Unlike gini
/// importance it measures *necessity* on held-out data and is not
/// diluted by correlated features sharing credit — the nuance behind
/// the feature-ablation findings in EXPERIMENTS.md.
struct PermutationImportanceResult {
  double baseline_score = 0.0;
  /// Mean score drop per feature (positive = feature matters).
  std::vector<double> importances;
};

Result<PermutationImportanceResult> ComputePermutationImportance(
    const Dataset& data, const ModelScorer& scorer, int repeats,
    uint64_t seed);

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_PERMUTATION_IMPORTANCE_H_
