#include "ml/binned_dataset.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace cloudsurv::ml {

namespace {

// Midpoint boundary between adjacent distinct values `lo` < `hi`,
// guarded so that lo <= boundary < hi even when the floating midpoint
// rounds onto hi (adjacent representable values).
double BoundaryBetween(double lo, double hi) {
  const double mid = lo + 0.5 * (hi - lo);
  return mid < hi ? mid : lo;
}

}  // namespace

Result<BinnedDataset> BinnedDataset::Build(
    size_t num_rows, size_t num_features,
    const std::function<double(size_t, size_t)>& value_at, int max_bins) {
  if (num_rows == 0 || num_features == 0) {
    return Status::InvalidArgument("cannot bin an empty matrix");
  }
  if (max_bins < 2 || max_bins > kMaxBins) {
    return Status::InvalidArgument("max_bins must be in [2, 256]");
  }
  static obs::Histogram* const build_us =
      obs::Registry::Default().GetHistogram(
          "cloudsurv_ml_binning_build_us",
          "Time to quantile-bin one training matrix into uint8 codes");
  obs::ScopedTimer timer(build_us);
  BinnedDataset binned;
  binned.num_rows_ = num_rows;
  binned.boundaries_.resize(num_features);
  binned.codes_.assign(num_features * num_rows, 0);

  std::vector<double> values(num_rows);
  for (size_t f = 0; f < num_features; ++f) {
    for (size_t i = 0; i < num_rows; ++i) {
      const double v = value_at(i, f);
      if (!std::isfinite(v)) {
        return Status::InvalidArgument("non-finite feature value");
      }
      values[i] = v;
    }
    std::vector<double> sorted = values;
    std::sort(sorted.begin(), sorted.end());

    // Distinct runs of the sorted column.
    std::vector<std::pair<double, size_t>> runs;  // (value, count)
    for (size_t i = 0; i < num_rows;) {
      size_t j = i;
      while (j < num_rows && sorted[j] == sorted[i]) ++j;
      runs.emplace_back(sorted[i], j - i);
      i = j;
    }

    std::vector<double>& bounds = binned.boundaries_[f];
    if (runs.size() <= static_cast<size_t>(max_bins)) {
      // One bin per distinct value: the histogram search then evaluates
      // exactly the candidate cuts the exact search would.
      bounds.reserve(runs.size() - 1);
      for (size_t r = 0; r + 1 < runs.size(); ++r) {
        bounds.push_back(BoundaryBetween(runs[r].first, runs[r + 1].first));
      }
    } else {
      // Quantile binning: close a bin whenever the cumulative row count
      // passes the next evenly spaced rank target. Every bin keeps at
      // least one row; at most max_bins bins result.
      bounds.reserve(static_cast<size_t>(max_bins) - 1);
      size_t cumulative = 0;
      size_t emitted = 0;
      for (size_t r = 0; r + 1 < runs.size(); ++r) {
        cumulative += runs[r].second;
        if (emitted + 1 >= static_cast<size_t>(max_bins)) break;
        // Close the bin once it holds its even share of the rows.
        if (cumulative * static_cast<size_t>(max_bins) >=
            num_rows * (emitted + 1)) {
          bounds.push_back(
              BoundaryBetween(runs[r].first, runs[r + 1].first));
          ++emitted;
        }
      }
    }

    // Codes: index of the first boundary >= value (values above the last
    // boundary land in the final bin).
    uint8_t* column = binned.codes_.data() + f * num_rows;
    for (size_t i = 0; i < num_rows; ++i) {
      const size_t c = static_cast<size_t>(
          std::lower_bound(bounds.begin(), bounds.end(), values[i]) -
          bounds.begin());
      column[i] = static_cast<uint8_t>(c);
    }
  }
  return binned;
}

Result<BinnedDataset> BinnedDataset::FromDataset(const Dataset& data,
                                                 int max_bins) {
  return Build(
      data.num_rows(), data.num_features(),
      [&data](size_t row, size_t col) { return data.feature(row, col); },
      max_bins);
}

Result<BinnedDataset> BinnedDataset::FromDatasetRows(
    const Dataset& data, const std::vector<size_t>& rows, int max_bins) {
  for (size_t r : rows) {
    if (r >= data.num_rows()) {
      return Status::OutOfRange("binned row index out of range");
    }
  }
  return Build(
      rows.size(), data.num_features(),
      [&data, &rows](size_t row, size_t col) {
        return data.feature(rows[row], col);
      },
      max_bins);
}

Result<BinnedDataset> BinnedDataset::FromMatrix(
    size_t num_rows, size_t num_features,
    const std::function<double(size_t, size_t)>& value_at, int max_bins) {
  return Build(num_rows, num_features, value_at, max_bins);
}

size_t BinnedDataset::memory_bytes() const {
  size_t bytes = codes_.capacity() * sizeof(uint8_t);
  for (const auto& b : boundaries_) bytes += b.capacity() * sizeof(double);
  return bytes;
}

}  // namespace cloudsurv::ml
