#include "ml/permutation_importance.h"

#include <algorithm>

#include "common/rng.h"

namespace cloudsurv::ml {

Result<PermutationImportanceResult> ComputePermutationImportance(
    const Dataset& data, const ModelScorer& scorer, int repeats,
    uint64_t seed) {
  if (data.empty()) {
    return Status::InvalidArgument("cannot permute an empty dataset");
  }
  if (repeats < 1) {
    return Status::InvalidArgument("repeats must be >= 1");
  }
  PermutationImportanceResult result;
  CLOUDSURV_ASSIGN_OR_RETURN(result.baseline_score, scorer(data));
  result.importances.assign(data.num_features(), 0.0);

  Rng rng(seed);
  const size_t n = data.num_rows();
  for (size_t f = 0; f < data.num_features(); ++f) {
    double drop_sum = 0.0;
    for (int r = 0; r < repeats; ++r) {
      // Copy rows, shuffle column f.
      std::vector<std::vector<double>> rows = data.rows();
      std::vector<double> column(n);
      for (size_t i = 0; i < n; ++i) column[i] = rows[i][f];
      std::shuffle(column.begin(), column.end(), rng.engine());
      for (size_t i = 0; i < n; ++i) rows[i][f] = column[i];
      CLOUDSURV_ASSIGN_OR_RETURN(
          Dataset permuted,
          Dataset::Make(data.feature_names(), std::move(rows),
                        data.labels(), data.num_classes()));
      CLOUDSURV_ASSIGN_OR_RETURN(double score, scorer(permuted));
      drop_sum += result.baseline_score - score;
    }
    result.importances[f] = drop_sum / static_cast<double>(repeats);
  }
  return result;
}

}  // namespace cloudsurv::ml
