#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "obs/metrics.h"

namespace cloudsurv::ml {

namespace {

double GiniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) {
    const double p = c / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

// Per-tree split-search time (one sample per fitted tree, exact or
// histogram path alike; ensembles contribute one sample per member).
obs::Histogram* TreeFitHistogram() {
  static obs::Histogram* const tree_fit_us =
      obs::Registry::Default().GetHistogram(
          "cloudsurv_ml_tree_fit_us",
          "Split search + node construction time of one decision tree");
  return tree_fit_us;
}

}  // namespace

Status DecisionTreeClassifier::Fit(const Dataset& data,
                                   const TreeParams& params, uint64_t seed) {
  std::vector<size_t> all(data.num_rows());
  std::iota(all.begin(), all.end(), 0);
  return FitSubset(data, all, params, seed);
}

Status DecisionTreeClassifier::FitSubset(
    const Dataset& data, const std::vector<size_t>& sample_indices,
    const TreeParams& params, uint64_t seed) {
  if (data.empty() || sample_indices.empty()) {
    return Status::InvalidArgument("cannot fit a tree on empty data");
  }
  if (params.max_depth < 0 || params.min_samples_leaf == 0) {
    return Status::InvalidArgument("invalid tree params");
  }
  for (size_t i : sample_indices) {
    if (i >= data.num_rows()) {
      return Status::OutOfRange("sample index out of range");
    }
  }
  if (!params.class_weights.empty() &&
      params.class_weights.size() !=
          static_cast<size_t>(data.num_classes())) {
    return Status::InvalidArgument(
        "class_weights size must match num_classes");
  }
  for (double w : params.class_weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument("class weights must be positive");
    }
  }
  if (params.split_algorithm == SplitAlgorithm::kHistogram) {
    // Standalone binned fit: bin the full dataset once (ensembles skip
    // this by sharing a BinnedDataset through FitBinned directly).
    CLOUDSURV_ASSIGN_OR_RETURN(BinnedDataset binned,
                               BinnedDataset::FromDataset(data));
    return FitBinned(binned, data.labels(), data.num_classes(),
                     sample_indices, params, seed);
  }
  obs::ScopedTimer timer(TreeFitHistogram());
  nodes_.clear();
  depth_ = 0;
  num_classes_ = data.num_classes();
  num_features_ = data.num_features();
  importances_.assign(num_features_, 0.0);

  std::vector<size_t> indices = sample_indices;
  Rng rng(seed);
  BuildNode(data, indices, 0, indices.size(), 0, rng, params,
            indices.size());

  // Normalize importances.
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  return Status::OK();
}

int DecisionTreeClassifier::BuildNode(const Dataset& data,
                                      std::vector<size_t>& indices,
                                      size_t begin, size_t end, int depth,
                                      Rng& rng, const TreeParams& params,
                                      size_t total_samples) {
  const size_t n = end - begin;
  auto class_weight = [&](int cls) {
    return params.class_weights.empty()
               ? 1.0
               : params.class_weights[static_cast<size_t>(cls)];
  };
  std::vector<double> counts(static_cast<size_t>(num_classes_), 0.0);
  double weight_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const int label = data.label(indices[i]);
    counts[static_cast<size_t>(label)] += class_weight(label);
    weight_total += class_weight(label);
  }
  const double n_d = weight_total;
  const double node_gini = GiniFromCounts(counts, n_d);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.probabilities.resize(counts.size());
    for (size_t c = 0; c < counts.size(); ++c) {
      leaf.probabilities[c] = counts[c] / n_d;
    }
    nodes_.push_back(std::move(leaf));
    depth_ = std::max(depth_, depth);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth || n < params.min_samples_split ||
      node_gini == 0.0 || n < 2 * params.min_samples_leaf) {
    return make_leaf();
  }

  // Choose candidate features (without replacement).
  const int d = static_cast<int>(num_features_);
  int k = params.max_features <= 0 ? d : std::min(params.max_features, d);
  std::vector<int> features(static_cast<size_t>(d));
  std::iota(features.begin(), features.end(), 0);
  for (int i = 0; i < k; ++i) {
    const int j =
        static_cast<int>(rng.UniformInt(i, static_cast<int64_t>(d) - 1));
    std::swap(features[static_cast<size_t>(i)],
              features[static_cast<size_t>(j)]);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_decrease = params.min_impurity_decrease;

  // Scratch: (value, label) pairs sorted per candidate feature.
  std::vector<std::pair<double, int>> sorted(n);
  std::vector<double> left_counts(counts.size());
  for (int fi = 0; fi < k; ++fi) {
    const int f = features[static_cast<size_t>(fi)];
    for (size_t i = 0; i < n; ++i) {
      const size_t row = indices[begin + i];
      sorted[i] = {data.feature(row, static_cast<size_t>(f)),
                   data.label(row)};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_weight = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      const double w = class_weight(sorted[i].second);
      left_counts[static_cast<size_t>(sorted[i].second)] += w;
      left_weight += w;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t n_left = i + 1;
      const size_t n_right = n - n_left;
      if (n_left < params.min_samples_leaf ||
          n_right < params.min_samples_leaf) {
        continue;
      }
      const double right_weight = n_d - left_weight;
      const double gini_left = GiniFromCounts(left_counts, left_weight);
      double gini_right;
      {
        double sum_sq = 0.0;
        for (size_t c = 0; c < counts.size(); ++c) {
          const double rc = counts[c] - left_counts[c];
          const double p = rc / right_weight;
          sum_sq += p * p;
        }
        gini_right = 1.0 - sum_sq;
      }
      const double weighted =
          (left_weight * gini_left + right_weight * gini_right) / n_d;
      const double decrease = node_gini - weighted;
      if (decrease > best_decrease) {
        best_decrease = decrease;
        best_feature = f;
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    return make_leaf();
  }

  // Partition indices in place around the chosen split.
  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](size_t row) {
        return data.feature(row, static_cast<size_t>(best_feature)) <=
               best_threshold;
      });
  const size_t mid =
      static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    // Numerically degenerate split; bail out to a leaf.
    return make_leaf();
  }

  importances_[static_cast<size_t>(best_feature)] +=
      (static_cast<double>(n) / static_cast<double>(total_samples)) *
      best_decrease;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].feature = best_feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best_threshold;
  const int left = BuildNode(data, indices, begin, mid, depth + 1, rng,
                             params, total_samples);
  const int right =
      BuildNode(data, indices, mid, end, depth + 1, rng, params,
                total_samples);
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

// Shared state of one FitBinned call. Histograms store RAW (unweighted)
// per-class counts — integer-valued doubles — so the parent-minus-sibling
// subtraction is floating-point-exact; class weights are applied by
// multiplication only when a gini is evaluated.
struct DecisionTreeClassifier::BinnedBuildContext {
  const BinnedDataset* binned = nullptr;
  const std::vector<int>* labels = nullptr;
  const TreeParams* params = nullptr;
  size_t total_samples = 0;
  size_t num_classes = 0;
  /// Flat histogram layout: feature f's counts start at offset[f] and
  /// hold num_bins(f) * num_classes doubles (bin-major, class-minor).
  std::vector<size_t> offset;
  size_t hist_size = 0;

  /// Accumulates the flat raw-count histogram of positions [begin, end).
  void ComputeHistogram(const std::vector<size_t>& positions, size_t begin,
                        size_t end, std::vector<double>& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    const size_t num_features = binned->num_features();
    const size_t C = num_classes;
    const std::vector<int>& label = *labels;
    for (size_t f = 0; f < num_features; ++f) {
      if (binned->constant(f)) continue;  // single bin, never split on
      const uint8_t* column = binned->column(f);
      double* h = out.data() + offset[f];
      for (size_t i = begin; i < end; ++i) {
        const size_t row = positions[i];
        h[static_cast<size_t>(column[row]) * C +
          static_cast<size_t>(label[row])] += 1.0;
      }
    }
  }
};

Status DecisionTreeClassifier::FitBinned(
    const BinnedDataset& binned, const std::vector<int>& labels,
    int num_classes, const std::vector<size_t>& sample_positions,
    const TreeParams& params, uint64_t seed) {
  if (binned.empty() || sample_positions.empty()) {
    return Status::InvalidArgument("cannot fit a tree on empty data");
  }
  if (params.max_depth < 0 || params.min_samples_leaf == 0) {
    return Status::InvalidArgument("invalid tree params");
  }
  if (num_classes <= 0) {
    return Status::InvalidArgument("num_classes must be positive");
  }
  if (labels.size() != binned.num_rows()) {
    return Status::InvalidArgument("labels must cover every binned row");
  }
  for (size_t p : sample_positions) {
    if (p >= binned.num_rows()) {
      return Status::OutOfRange("sample index out of range");
    }
  }
  if (!params.class_weights.empty() &&
      params.class_weights.size() != static_cast<size_t>(num_classes)) {
    return Status::InvalidArgument(
        "class_weights size must match num_classes");
  }
  for (double w : params.class_weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument("class weights must be positive");
    }
  }
  obs::ScopedTimer timer(TreeFitHistogram());
  nodes_.clear();
  depth_ = 0;
  num_classes_ = num_classes;
  num_features_ = binned.num_features();
  importances_.assign(num_features_, 0.0);

  BinnedBuildContext ctx;
  ctx.binned = &binned;
  ctx.labels = &labels;
  ctx.params = &params;
  ctx.total_samples = sample_positions.size();
  ctx.num_classes = static_cast<size_t>(num_classes);
  ctx.offset.resize(num_features_);
  size_t off = 0;
  for (size_t f = 0; f < num_features_; ++f) {
    ctx.offset[f] = off;
    off += static_cast<size_t>(binned.num_bins(f)) * ctx.num_classes;
  }
  ctx.hist_size = off;

  std::vector<size_t> positions = sample_positions;
  Rng rng(seed);
  BuildNodeBinned(ctx, positions, 0, positions.size(), 0, rng, {});

  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  return Status::OK();
}

int DecisionTreeClassifier::BuildNodeBinned(BinnedBuildContext& ctx,
                                            std::vector<size_t>& positions,
                                            size_t begin, size_t end,
                                            int depth, Rng& rng,
                                            std::vector<double> node_hist) {
  const TreeParams& params = *ctx.params;
  const size_t n = end - begin;
  const size_t C = ctx.num_classes;
  auto class_weight = [&](size_t cls) {
    return params.class_weights.empty() ? 1.0 : params.class_weights[cls];
  };
  std::vector<double> raw(C, 0.0);  // unweighted per-class counts
  for (size_t i = begin; i < end; ++i) {
    raw[static_cast<size_t>((*ctx.labels)[positions[i]])] += 1.0;
  }
  std::vector<double> counts(C);  // weighted, as the exact path sees them
  double n_d = 0.0;
  for (size_t c = 0; c < C; ++c) {
    counts[c] = class_weight(c) * raw[c];
    n_d += counts[c];
  }
  const double node_gini = GiniFromCounts(counts, n_d);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.probabilities.resize(C);
    for (size_t c = 0; c < C; ++c) {
      leaf.probabilities[c] = counts[c] / n_d;
    }
    nodes_.push_back(std::move(leaf));
    depth_ = std::max(depth_, depth);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth || n < params.min_samples_split ||
      node_gini == 0.0 || n < 2 * params.min_samples_leaf) {
    return make_leaf();
  }

  // Identical feature-subset draw as the exact path — same rng stream,
  // same partial Fisher-Yates — so a fixed seed yields the same sequence
  // of candidate features at every node.
  const int d = static_cast<int>(num_features_);
  int k = params.max_features <= 0 ? d : std::min(params.max_features, d);
  std::vector<int> features(static_cast<size_t>(d));
  std::iota(features.begin(), features.end(), 0);
  for (int i = 0; i < k; ++i) {
    const int j =
        static_cast<int>(rng.UniformInt(i, static_cast<int64_t>(d) - 1));
    std::swap(features[static_cast<size_t>(i)],
              features[static_cast<size_t>(j)]);
  }

  if (node_hist.empty()) {
    node_hist.assign(ctx.hist_size, 0.0);
    ctx.ComputeHistogram(positions, begin, end, node_hist);
  }

  int best_feature = -1;
  int best_bin = -1;
  double best_decrease = params.min_impurity_decrease;

  std::vector<double> left_raw(C);
  for (int fi = 0; fi < k; ++fi) {
    const int f = features[static_cast<size_t>(fi)];
    const int num_bins = ctx.binned->num_bins(static_cast<size_t>(f));
    if (num_bins < 2) continue;  // globally constant feature
    const double* h = node_hist.data() + ctx.offset[static_cast<size_t>(f)];
    std::fill(left_raw.begin(), left_raw.end(), 0.0);
    size_t n_left = 0;
    // A cut is evaluated at the boundary after every bin that holds node
    // rows (an empty bin would duplicate the previous partition — the
    // histogram analogue of the exact path's equal-adjacent-values skip).
    for (int b = 0; b + 1 < num_bins; ++b) {
      double bin_total = 0.0;
      for (size_t c = 0; c < C; ++c) {
        const double rc = h[static_cast<size_t>(b) * C + c];
        left_raw[c] += rc;
        bin_total += rc;
      }
      if (bin_total == 0.0) continue;
      n_left += static_cast<size_t>(bin_total);
      const size_t n_right = n - n_left;
      if (n_right == 0) break;  // all remaining bins are empty
      if (n_left < params.min_samples_leaf ||
          n_right < params.min_samples_leaf) {
        continue;
      }
      double left_weight = 0.0;
      for (size_t c = 0; c < C; ++c) {
        left_weight += class_weight(c) * left_raw[c];
      }
      const double right_weight = n_d - left_weight;
      double sum_sq_left = 0.0;
      double sum_sq_right = 0.0;
      for (size_t c = 0; c < C; ++c) {
        const double lc = class_weight(c) * left_raw[c];
        const double pl = lc / left_weight;
        sum_sq_left += pl * pl;
        const double pr = (counts[c] - lc) / right_weight;
        sum_sq_right += pr * pr;
      }
      const double gini_left = 1.0 - sum_sq_left;
      const double gini_right = 1.0 - sum_sq_right;
      const double weighted =
          (left_weight * gini_left + right_weight * gini_right) / n_d;
      const double decrease = node_gini - weighted;
      if (decrease > best_decrease) {
        best_decrease = decrease;
        best_feature = f;
        best_bin = b;
      }
    }
  }

  if (best_feature < 0) {
    return make_leaf();
  }

  const uint8_t* best_column =
      ctx.binned->column(static_cast<size_t>(best_feature));
  auto mid_it = std::partition(
      positions.begin() + static_cast<std::ptrdiff_t>(begin),
      positions.begin() + static_cast<std::ptrdiff_t>(end),
      [&](size_t row) {
        return static_cast<int>(best_column[row]) <= best_bin;
      });
  const size_t mid = static_cast<size_t>(mid_it - positions.begin());
  if (mid == begin || mid == end) {
    return make_leaf();  // cannot happen when histogram counts are exact
  }

  importances_[static_cast<size_t>(best_feature)] +=
      (static_cast<double>(n) / static_cast<double>(ctx.total_samples)) *
      best_decrease;

  // Refine the stored threshold toward the node-local gap midpoint: the
  // next in-node non-empty bin bounds the gap the exact search would
  // cut in the middle of.
  int next_bin = best_bin + 1;
  {
    const double* h =
        node_hist.data() + ctx.offset[static_cast<size_t>(best_feature)];
    const int num_bins = ctx.binned->num_bins(static_cast<size_t>(best_feature));
    while (next_bin + 1 < num_bins) {
      double bin_total = 0.0;
      for (size_t c = 0; c < C; ++c) {
        bin_total += h[static_cast<size_t>(next_bin) * C + c];
      }
      if (bin_total > 0.0) break;
      ++next_bin;
    }
  }

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].feature = best_feature;
  nodes_[static_cast<size_t>(node_index)].threshold =
      ctx.binned->refined_threshold(static_cast<size_t>(best_feature),
                                    best_bin, next_bin);

  // Subtraction trick: scan only the smaller child; the sibling is the
  // parent histogram minus it. Skip the work entirely when neither child
  // can split again.
  const size_t n_left_child = mid - begin;
  const size_t n_right_child = end - mid;
  auto child_may_split = [&](size_t child_n) {
    return depth + 1 < params.max_depth &&
           child_n >= params.min_samples_split &&
           child_n >= 2 * params.min_samples_leaf;
  };
  std::vector<double> left_hist;
  std::vector<double> right_hist;
  if (child_may_split(n_left_child) || child_may_split(n_right_child)) {
    std::vector<double> small(ctx.hist_size, 0.0);
    if (n_left_child <= n_right_child) {
      ctx.ComputeHistogram(positions, begin, mid, small);
      for (size_t i = 0; i < ctx.hist_size; ++i) node_hist[i] -= small[i];
      left_hist = std::move(small);
      right_hist = std::move(node_hist);
    } else {
      ctx.ComputeHistogram(positions, mid, end, small);
      for (size_t i = 0; i < ctx.hist_size; ++i) node_hist[i] -= small[i];
      right_hist = std::move(small);
      left_hist = std::move(node_hist);
    }
  }

  const int left = BuildNodeBinned(ctx, positions, begin, mid, depth + 1,
                                   rng, std::move(left_hist));
  const int right = BuildNodeBinned(ctx, positions, mid, end, depth + 1,
                                    rng, std::move(right_hist));
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

const std::vector<double>& DecisionTreeClassifier::LeafDistribution(
    const std::vector<double>& row) const {
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    const double v = row[static_cast<size_t>(node->feature)];
    node = v <= node->threshold
               ? &nodes_[static_cast<size_t>(node->left)]
               : &nodes_[static_cast<size_t>(node->right)];
  }
  return node->probabilities;
}

std::vector<double> DecisionTreeClassifier::PredictProba(
    const std::vector<double>& row) const {
  return LeafDistribution(row);
}

int DecisionTreeClassifier::Predict(const std::vector<double>& row) const {
  const auto probs = PredictProba(row);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

Result<std::vector<int>> DecisionTreeClassifier::PredictBatch(
    const Dataset& data) const {
  if (!fitted()) {
    return Status::FailedPrecondition("tree is not fitted");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(Predict(data.row(i)));
  }
  return out;
}


namespace {

std::string FullPrecision(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

}  // namespace

std::string DecisionTreeClassifier::Serialize() const {
  std::string out = "tree " + std::to_string(num_classes_) + " " +
                    std::to_string(num_features_) + " " +
                    std::to_string(depth_) + " " +
                    std::to_string(nodes_.size()) + "\n";
  for (const Node& node : nodes_) {
    out += std::to_string(node.feature) + " " +
           FullPrecision(node.threshold) + " " + std::to_string(node.left) +
           " " + std::to_string(node.right);
    out += " " + std::to_string(node.probabilities.size());
    for (double p : node.probabilities) out += " " + FullPrecision(p);
    out += "\n";
  }
  out += "importances";
  for (double v : importances_) out += " " + FullPrecision(v);
  out += "\n";
  return out;
}

Result<DecisionTreeClassifier> DecisionTreeClassifier::Deserialize(
    const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  DecisionTreeClassifier tree;
  size_t num_features = 0;
  size_t num_nodes = 0;
  if (!(is >> tag >> tree.num_classes_ >> num_features >> tree.depth_ >>
        num_nodes) ||
      tag != "tree") {
    return Status::InvalidArgument("malformed tree header");
  }
  tree.num_features_ = num_features;
  tree.nodes_.resize(num_nodes);
  for (Node& node : tree.nodes_) {
    size_t num_probs = 0;
    if (!(is >> node.feature >> node.threshold >> node.left >> node.right >>
          num_probs)) {
      return Status::InvalidArgument("malformed tree node");
    }
    node.probabilities.resize(num_probs);
    for (double& p : node.probabilities) {
      if (!(is >> p)) {
        return Status::InvalidArgument("malformed node probabilities");
      }
    }
    if (node.feature >= static_cast<int>(num_features) ||
        node.left >= static_cast<int>(num_nodes) ||
        node.right >= static_cast<int>(num_nodes)) {
      return Status::InvalidArgument("tree node references out of range");
    }
  }
  if (!(is >> tag) || tag != "importances") {
    return Status::InvalidArgument("missing importances");
  }
  tree.importances_.resize(num_features);
  for (double& v : tree.importances_) {
    if (!(is >> v)) {
      return Status::InvalidArgument("malformed importances");
    }
  }
  if (tree.nodes_.empty()) {
    return Status::InvalidArgument("serialized tree has no nodes");
  }
  return tree;
}

}  // namespace cloudsurv::ml
