#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace cloudsurv::ml {

namespace {

double GiniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : counts) {
    const double p = c / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

Status DecisionTreeClassifier::Fit(const Dataset& data,
                                   const TreeParams& params, uint64_t seed) {
  std::vector<size_t> all(data.num_rows());
  std::iota(all.begin(), all.end(), 0);
  return FitSubset(data, all, params, seed);
}

Status DecisionTreeClassifier::FitSubset(
    const Dataset& data, const std::vector<size_t>& sample_indices,
    const TreeParams& params, uint64_t seed) {
  if (data.empty() || sample_indices.empty()) {
    return Status::InvalidArgument("cannot fit a tree on empty data");
  }
  if (params.max_depth < 0 || params.min_samples_leaf == 0) {
    return Status::InvalidArgument("invalid tree params");
  }
  for (size_t i : sample_indices) {
    if (i >= data.num_rows()) {
      return Status::OutOfRange("sample index out of range");
    }
  }
  if (!params.class_weights.empty() &&
      params.class_weights.size() !=
          static_cast<size_t>(data.num_classes())) {
    return Status::InvalidArgument(
        "class_weights size must match num_classes");
  }
  for (double w : params.class_weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument("class weights must be positive");
    }
  }
  nodes_.clear();
  depth_ = 0;
  num_classes_ = data.num_classes();
  num_features_ = data.num_features();
  importances_.assign(num_features_, 0.0);

  std::vector<size_t> indices = sample_indices;
  Rng rng(seed);
  BuildNode(data, indices, 0, indices.size(), 0, rng, params,
            indices.size());

  // Normalize importances.
  const double total =
      std::accumulate(importances_.begin(), importances_.end(), 0.0);
  if (total > 0.0) {
    for (double& v : importances_) v /= total;
  }
  return Status::OK();
}

int DecisionTreeClassifier::BuildNode(const Dataset& data,
                                      std::vector<size_t>& indices,
                                      size_t begin, size_t end, int depth,
                                      Rng& rng, const TreeParams& params,
                                      size_t total_samples) {
  const size_t n = end - begin;
  auto class_weight = [&](int cls) {
    return params.class_weights.empty()
               ? 1.0
               : params.class_weights[static_cast<size_t>(cls)];
  };
  std::vector<double> counts(static_cast<size_t>(num_classes_), 0.0);
  double weight_total = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const int label = data.label(indices[i]);
    counts[static_cast<size_t>(label)] += class_weight(label);
    weight_total += class_weight(label);
  }
  const double n_d = weight_total;
  const double node_gini = GiniFromCounts(counts, n_d);

  auto make_leaf = [&]() {
    Node leaf;
    leaf.probabilities.resize(counts.size());
    for (size_t c = 0; c < counts.size(); ++c) {
      leaf.probabilities[c] = counts[c] / n_d;
    }
    nodes_.push_back(std::move(leaf));
    depth_ = std::max(depth_, depth);
    return static_cast<int>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth || n < params.min_samples_split ||
      node_gini == 0.0 || n < 2 * params.min_samples_leaf) {
    return make_leaf();
  }

  // Choose candidate features (without replacement).
  const int d = static_cast<int>(num_features_);
  int k = params.max_features <= 0 ? d : std::min(params.max_features, d);
  std::vector<int> features(static_cast<size_t>(d));
  std::iota(features.begin(), features.end(), 0);
  for (int i = 0; i < k; ++i) {
    const int j =
        static_cast<int>(rng.UniformInt(i, static_cast<int64_t>(d) - 1));
    std::swap(features[static_cast<size_t>(i)],
              features[static_cast<size_t>(j)]);
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_decrease = params.min_impurity_decrease;

  // Scratch: (value, label) pairs sorted per candidate feature.
  std::vector<std::pair<double, int>> sorted(n);
  std::vector<double> left_counts(counts.size());
  for (int fi = 0; fi < k; ++fi) {
    const int f = features[static_cast<size_t>(fi)];
    for (size_t i = 0; i < n; ++i) {
      const size_t row = indices[begin + i];
      sorted[i] = {data.feature(row, static_cast<size_t>(f)),
                   data.label(row)};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    std::fill(left_counts.begin(), left_counts.end(), 0.0);
    double left_weight = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      const double w = class_weight(sorted[i].second);
      left_counts[static_cast<size_t>(sorted[i].second)] += w;
      left_weight += w;
      if (sorted[i].first == sorted[i + 1].first) continue;
      const size_t n_left = i + 1;
      const size_t n_right = n - n_left;
      if (n_left < params.min_samples_leaf ||
          n_right < params.min_samples_leaf) {
        continue;
      }
      const double right_weight = n_d - left_weight;
      const double gini_left = GiniFromCounts(left_counts, left_weight);
      double gini_right;
      {
        double sum_sq = 0.0;
        for (size_t c = 0; c < counts.size(); ++c) {
          const double rc = counts[c] - left_counts[c];
          const double p = rc / right_weight;
          sum_sq += p * p;
        }
        gini_right = 1.0 - sum_sq;
      }
      const double weighted =
          (left_weight * gini_left + right_weight * gini_right) / n_d;
      const double decrease = node_gini - weighted;
      if (decrease > best_decrease) {
        best_decrease = decrease;
        best_feature = f;
        best_threshold = 0.5 * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }

  if (best_feature < 0) {
    return make_leaf();
  }

  // Partition indices in place around the chosen split.
  auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end), [&](size_t row) {
        return data.feature(row, static_cast<size_t>(best_feature)) <=
               best_threshold;
      });
  const size_t mid =
      static_cast<size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    // Numerically degenerate split; bail out to a leaf.
    return make_leaf();
  }

  importances_[static_cast<size_t>(best_feature)] +=
      (static_cast<double>(n) / static_cast<double>(total_samples)) *
      best_decrease;

  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[static_cast<size_t>(node_index)].feature = best_feature;
  nodes_[static_cast<size_t>(node_index)].threshold = best_threshold;
  const int left = BuildNode(data, indices, begin, mid, depth + 1, rng,
                             params, total_samples);
  const int right =
      BuildNode(data, indices, mid, end, depth + 1, rng, params,
                total_samples);
  nodes_[static_cast<size_t>(node_index)].left = left;
  nodes_[static_cast<size_t>(node_index)].right = right;
  return node_index;
}

std::vector<double> DecisionTreeClassifier::PredictProba(
    const std::vector<double>& row) const {
  const Node* node = &nodes_[0];
  while (node->feature >= 0) {
    const double v = row[static_cast<size_t>(node->feature)];
    node = v <= node->threshold
               ? &nodes_[static_cast<size_t>(node->left)]
               : &nodes_[static_cast<size_t>(node->right)];
  }
  return node->probabilities;
}

int DecisionTreeClassifier::Predict(const std::vector<double>& row) const {
  const auto probs = PredictProba(row);
  return static_cast<int>(std::max_element(probs.begin(), probs.end()) -
                          probs.begin());
}

Result<std::vector<int>> DecisionTreeClassifier::PredictBatch(
    const Dataset& data) const {
  if (!fitted()) {
    return Status::FailedPrecondition("tree is not fitted");
  }
  if (data.num_features() != num_features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<int> out;
  out.reserve(data.num_rows());
  for (size_t i = 0; i < data.num_rows(); ++i) {
    out.push_back(Predict(data.row(i)));
  }
  return out;
}


namespace {

std::string FullPrecision(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

}  // namespace

std::string DecisionTreeClassifier::Serialize() const {
  std::string out = "tree " + std::to_string(num_classes_) + " " +
                    std::to_string(num_features_) + " " +
                    std::to_string(depth_) + " " +
                    std::to_string(nodes_.size()) + "\n";
  for (const Node& node : nodes_) {
    out += std::to_string(node.feature) + " " +
           FullPrecision(node.threshold) + " " + std::to_string(node.left) +
           " " + std::to_string(node.right);
    out += " " + std::to_string(node.probabilities.size());
    for (double p : node.probabilities) out += " " + FullPrecision(p);
    out += "\n";
  }
  out += "importances";
  for (double v : importances_) out += " " + FullPrecision(v);
  out += "\n";
  return out;
}

Result<DecisionTreeClassifier> DecisionTreeClassifier::Deserialize(
    const std::string& text) {
  std::istringstream is(text);
  std::string tag;
  DecisionTreeClassifier tree;
  size_t num_features = 0;
  size_t num_nodes = 0;
  if (!(is >> tag >> tree.num_classes_ >> num_features >> tree.depth_ >>
        num_nodes) ||
      tag != "tree") {
    return Status::InvalidArgument("malformed tree header");
  }
  tree.num_features_ = num_features;
  tree.nodes_.resize(num_nodes);
  for (Node& node : tree.nodes_) {
    size_t num_probs = 0;
    if (!(is >> node.feature >> node.threshold >> node.left >> node.right >>
          num_probs)) {
      return Status::InvalidArgument("malformed tree node");
    }
    node.probabilities.resize(num_probs);
    for (double& p : node.probabilities) {
      if (!(is >> p)) {
        return Status::InvalidArgument("malformed node probabilities");
      }
    }
    if (node.feature >= static_cast<int>(num_features) ||
        node.left >= static_cast<int>(num_nodes) ||
        node.right >= static_cast<int>(num_nodes)) {
      return Status::InvalidArgument("tree node references out of range");
    }
  }
  if (!(is >> tag) || tag != "importances") {
    return Status::InvalidArgument("missing importances");
  }
  tree.importances_.resize(num_features);
  for (double& v : tree.importances_) {
    if (!(is >> v)) {
      return Status::InvalidArgument("malformed importances");
    }
  }
  if (tree.nodes_.empty()) {
    return Status::InvalidArgument("serialized tree has no nodes");
  }
  return tree;
}

}  // namespace cloudsurv::ml
