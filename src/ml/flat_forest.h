#ifndef CLOUDSURV_ML_FLAT_FOREST_H_
#define CLOUDSURV_ML_FLAT_FOREST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "ml/dataset.h"
#include "ml/gbdt.h"
#include "ml/random_forest.h"
#include "ml/simd/traversal.h"

namespace cloudsurv::artifact {
class ArtifactBuffer;
class ArtifactReader;
class ArtifactWriter;
}  // namespace cloudsurv::artifact

namespace cloudsurv::ml {

namespace flat_internal {

/// Contiguous, read-mostly storage that either owns its elements
/// (vector-backed — the Compile() path) or aliases external memory
/// without copying (the artifact mmap path — FlatForest::FromView).
/// Copying an owning column deep-copies; copying a view copies the
/// alias, which is safe because FlatForest carries a shared handle to
/// the backing bytes alongside its view columns.
template <typename T>
class Column {
 public:
  Column() = default;
  Column(const Column& other) { CopyFrom(other); }
  Column& operator=(const Column& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Column(Column&& other) noexcept { MoveFrom(std::move(other)); }
  Column& operator=(Column&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  /// Takes ownership of `values`.
  void Adopt(std::vector<T> values) {
    owned_ = std::move(values);
    data_ = owned_.data();
    size_ = owned_.size();
    owns_ = true;
  }

  /// Aliases `[data, data + size)`; the caller guarantees the bytes
  /// outlive every copy of this column.
  void BindView(const T* data, size_t size) {
    owned_.clear();
    owned_.shrink_to_fit();
    data_ = data;
    size_ = size;
    owns_ = false;
  }

  const T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// False when this column aliases artifact-backed memory.
  bool owns() const { return owns_; }
  const T& operator[](size_t i) const { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

 private:
  void CopyFrom(const Column& other) {
    owns_ = other.owns_;
    if (other.owns_) {
      owned_ = other.owned_;
      data_ = owned_.data();
      size_ = owned_.size();
    } else {
      owned_.clear();
      owned_.shrink_to_fit();
      data_ = other.data_;
      size_ = other.size_;
    }
  }
  void MoveFrom(Column&& other) {
    owns_ = other.owns_;
    if (other.owns_) {
      // A vector move transfers the heap buffer, so the element
      // address is stable across the move.
      owned_ = std::move(other.owned_);
      data_ = owned_.data();
      size_ = owned_.size();
    } else {
      owned_.clear();
      owned_.shrink_to_fit();
      data_ = other.data_;
      size_ = other.size_;
    }
    other.owned_.clear();
    other.data_ = nullptr;
    other.size_ = 0;
    other.owns_ = true;
  }

  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
  bool owns_ = true;  ///< True (vacuously) in the default empty state.
};

}  // namespace flat_internal

/// Compiled, immutable inference representation of a trained tree
/// ensemble — the serving-path counterpart of the training-oriented
/// `DecisionTreeClassifier`/`GradientBoostedTreesClassifier` node
/// structs (which keep a heap-allocated probability vector per node and
/// therefore pay a cache miss per node hop).
///
/// Layout: struct-of-arrays node storage. All trees are packed
/// back-to-back into contiguous `feature`/`threshold`/`left`/`right`
/// arrays (children are absolute node ids, `feature == -1` marks a
/// leaf) with `tree_offsets` giving each tree's root; leaf payloads
/// (class distributions, or scalar leaf weights for boosted trees)
/// live in one dense `leaf_values` matrix indexed by a per-leaf id.
///
/// Quantized traversal: at compile time the per-feature set of distinct
/// split thresholds is collected; each node threshold is replaced by
/// its index into the sorted per-feature cut table and incoming rows
/// are quantized once per batch to one small integer code per feature
/// (`code(v) = #{cuts < v}`). Because `v <= cut[k]  <=>  code(v) <= k`
/// for every cut, the quantized traversal routes every row exactly as
/// the double comparison would — the smaller row working set costs no
/// accuracy at all, and the bit-identity tests pin that. Codes are
/// `uint8_t` (~8x smaller rows) when every feature has <= 255 cuts and
/// `uint16_t` (~4x) up to 65535; histogram training draws thresholds
/// from <= 256 bins per feature, but its node-local gap-midpoint
/// refinement (BinnedDataset::refined_threshold) can push the distinct
/// count of a deep forest past the uint8 budget, hence the wide tier.
/// Quantized traversal is opt-in (BatchOptions::use_quantized): rows
/// are scored exactly once here, so the per-batch quantization cost is
/// never amortized, and bench/inference_throughput shows the plain SoA
/// double traversal ahead whenever a block of double rows is
/// cache-resident.
///
/// Batch scoring iterates rows x trees in cache-sized row blocks (all
/// trees stay hot while a block's rows stream through) and can fan
/// independent blocks out over a `common::ThreadPool`. The per-block
/// double traversal dispatches to the kernels in `ml/simd/` — an
/// always-built scalar walk and, when the build and CPU allow it, an
/// AVX2 kernel advancing four rows per node step (gathered loads,
/// vector compares, blended child-index advance); kAuto picks the best
/// available. Compile() additionally stores each tree's nodes in
/// breadth-first order so a tree's hot first levels occupy adjacent
/// cache lines, and autotunes the default block size from the forest
/// shape and the L2 size. Per-row accumulation order is tree 0..T-1
/// with the same summation the legacy path uses, so results are
/// bit-identical at any block size, thread count, and traversal kind.
///
/// A FlatForest is immutable after Compile() returns; concurrent reads
/// from any number of threads are safe.
class FlatForest {
 public:
  /// Batch traversal knobs. Defaults favour an L1/L2-resident block of
  /// rows sized per compiled forest; see docs/inference.md.
  struct BatchOptions {
    /// Rows per traversal block. 0 (default) picks the per-forest
    /// autotuned size (`tuned_block_rows()`, derived from the forest's
    /// hot-node footprint vs. the L2 cache); any explicit value >= 1
    /// overrides it.
    size_t block_rows = 0;
    /// When set, independent blocks are scored as pool tasks. The
    /// caller must not be running *inside* a task of the same bounded
    /// pool (nested submission can deadlock on the queue bound).
    ThreadPool* pool = nullptr;
    /// Which traversal kernel walks the double rows. kAuto resolves to
    /// the AVX2 multi-row kernel when the build and CPU support it
    /// (honouring CLOUDSURV_FORCE_SCALAR), else the portable scalar
    /// kernel. An *explicit* kAvx2 on a build/CPU without it fails the
    /// batch call with InvalidArgument — never a silent downgrade. All
    /// kernels are bit-identical. Ignored when the quantized traversal
    /// runs (that path is scalar integer-code routing).
    simd::TraversalKind traversal = simd::TraversalKind::kAuto;
    /// Use the integer code traversal when the forest is quantizable.
    /// Both paths are bit-identical. Off by default: each batch pays
    /// one binary search per (row, used feature) to quantize, and
    /// bench/inference_throughput measures that as a net loss against
    /// the SIMD double traversal when the double rows already fit in
    /// cache — enable it for very wide rows or feature-heavy models
    /// where the 4-8x row shrink matters.
    bool use_quantized = false;
  };

  FlatForest() = default;

  /// Compiles a fitted random forest. Fails on an unfitted forest.
  static Result<FlatForest> Compile(const RandomForestClassifier& forest);

  /// Compiles a fitted gradient-boosted ensemble (scalar leaves,
  /// logit accumulation seeded with the base score).
  static Result<FlatForest> Compile(
      const GradientBoostedTreesClassifier& gbdt);

  // --- Binary model artifacts (src/artifact/, CSRV container) --------

  /// Serializes the compiled arrays into `writer` as one CSRV section
  /// per SoA array, tagged with `slot` as the section index (0 for a
  /// standalone forest; a LongevityService snapshot writes one forest
  /// per model slot). Byte-exact: FromView on the written artifact
  /// reproduces this forest's predictions bit for bit.
  Status WriteTo(artifact::ArtifactWriter& writer, uint32_t slot = 0) const;

  /// Binds a FlatForest directly onto the arrays inside a validated
  /// artifact — the zero-copy startup path. No array is copied: every
  /// column aliases the reader's (typically mmap'ed) backing bytes,
  /// and the forest retains shared ownership of that backing, so the
  /// mapping stays alive for as long as any copy of the forest does.
  /// Runs SelfCheck() before returning, so a structurally corrupt
  /// artifact that slipped past the checksums is still rejected.
  static Result<FlatForest> FromView(const artifact::ArtifactReader& reader,
                                     uint32_t slot = 0);

  /// True when the node arrays alias artifact backing bytes rather
  /// than owned vectors (i.e. this forest came from FromView).
  bool zero_copy() const { return backing_ != nullptr; }

  bool compiled() const { return !tree_offsets_.empty(); }
  /// True for a classifier ensemble (leaf class distributions); false
  /// for a boosted regressor (scalar logit leaves).
  bool is_classifier() const { return num_classes_ > 0; }
  /// True when the integer code traversal is available.
  bool quantized() const { return quantized_; }
  /// Bits per stored row code: 8 (every feature <= 255 cuts), 16
  /// (<= 65535 cuts), or 0 when the forest is not quantizable.
  int code_bits() const {
    return quantized_ ? (narrow_codes_ ? 8 : 16) : 0;
  }

  /// Rows-per-block the compiler picked for this forest (used whenever
  /// BatchOptions::block_rows is 0): sized so one block of double rows
  /// plus accumulators shares the L2 cache with the forest's hot top
  /// levels. Always in [64, 8192] and a multiple of 8.
  size_t tuned_block_rows() const { return tuned_block_rows_; }

  /// True when every tree's nodes are stored root-first in
  /// breadth-first order (Compile() emits this layout so the hot first
  /// levels of a tree occupy adjacent cache lines). Artifacts written
  /// before the BFS layout load fine — node order is plain data — so
  /// FromView forests may legitimately return false here.
  bool nodes_breadth_first() const;

  size_t num_trees() const {
    return tree_offsets_.empty() ? 0 : tree_offsets_.size() - 1;
  }
  size_t num_nodes() const { return feature_.size(); }
  size_t num_leaves() const {
    return leaf_dim_ == 0 ? 0 : leaf_values_.size() / leaf_dim_;
  }
  int num_classes() const { return num_classes_; }
  size_t num_features() const { return num_features_; }

  /// Total bytes of the compiled arrays (layout cost accounting).
  size_t memory_bytes() const;

  /// Verifies structural invariants (offset monotonicity, child and
  /// leaf references in range, quantized cuts consistent with the
  /// double thresholds). Cheap; tests and Compile() debug paths use it.
  Status SelfCheck() const;

  // --- Single-row scoring (bit-identical to the legacy per-row path) -

  /// Classifier: averaged class distribution into `out` (resized to
  /// num_classes). Regressor: out = {sigmoid(logit)}.
  void PredictProbaInto(const std::vector<double>& row,
                        std::vector<double>& out) const;

  /// Convenience copy of PredictProbaInto.
  std::vector<double> PredictProba(const std::vector<double>& row) const;

  /// Positive-class probability: classifier -> averaged P[class 1]
  /// (requires a binary ensemble), regressor -> sigmoid(logit). This is
  /// the quantity `LongevityService::Assess` serves.
  double PredictPositive(const std::vector<double>& row) const;

  // --- Blocked batch scoring -----------------------------------------

  /// Scores `n` rows given as a contiguous row-major matrix
  /// (`rows[i * num_features + f]`, finite values). `out` must hold
  /// `n * out_dim()` doubles: per row the averaged class distribution
  /// (classifier) or the single sigmoid probability (regressor).
  Status PredictProbaBatch(const double* rows, size_t n, double* out,
                           const BatchOptions& options) const;
  Status PredictProbaBatch(const double* rows, size_t n, double* out) const {
    return PredictProbaBatch(rows, n, out, BatchOptions());
  }

  /// Positive-class probability per dataset row; bit-identical to
  /// `RandomForestClassifier::PredictPositiveProba` /
  /// `GradientBoostedTreesClassifier::PredictPositiveProba`.
  Result<std::vector<double>> PredictPositiveProbaBatch(
      const Dataset& data, const BatchOptions& options) const;
  Result<std::vector<double>> PredictPositiveProbaBatch(
      const Dataset& data) const {
    return PredictPositiveProbaBatch(data, BatchOptions());
  }

  /// Positive-class probability for externally assembled rows (the
  /// serving path groups feature rows per model slot and scores them
  /// here). Every row must have num_features values.
  Result<std::vector<double>> PredictPositiveProbaRows(
      const std::vector<std::vector<double>>& rows,
      const BatchOptions& options) const;
  Result<std::vector<double>> PredictPositiveProbaRows(
      const std::vector<std::vector<double>>& rows) const {
    return PredictPositiveProbaRows(rows, BatchOptions());
  }

  /// argmax class per dataset row (classifier; probability > 0.5 for a
  /// regressor); bit-identical to the legacy PredictBatch.
  Result<std::vector<int>> PredictBatch(const Dataset& data,
                                        const BatchOptions& options) const;
  Result<std::vector<int>> PredictBatch(const Dataset& data) const {
    return PredictBatch(data, BatchOptions());
  }

  /// Doubles per row that PredictProbaBatch writes (num_classes for a
  /// classifier, 1 for a regressor).
  size_t out_dim() const { return leaf_dim_ == 0 ? 0 : out_dim_; }

 private:
  /// Reusable per-task buffers: the packed double row block handed to
  /// the traversal kernels, and the quantized code block.
  struct BlockScratch {
    std::vector<double> packed;
    std::vector<uint8_t> qcodes;
  };

  /// Raw-pointer view of the SoA arrays for the traversal kernels.
  simd::ForestView View() const;

  /// Scores one block of rows addressed through per-row pointers.
  /// `kernel` walks the double rows (already resolved and validated by
  /// ScorePtrs; ignored when `use_quantized` selects the code
  /// traversal). Scratch buffers are resized as needed and reusable
  /// across the blocks of one task.
  void ScoreBlock(const double* const* rows, size_t n, double* out,
                  bool use_quantized, simd::TraversalFn kernel,
                  BlockScratch& scratch) const;

  /// Shared driver: resolves the traversal kernel, blocks `row_ptrs`
  /// and fans the blocks out.
  Status ScorePtrs(const double* const* row_ptrs, size_t n, double* out,
                   const BatchOptions& options) const;

  /// Quantized-code kernel of ScoreBlock, instantiated for uint8_t and
  /// uint16_t codes; `scratch` is a reusable raw byte buffer.
  template <typename Code>
  void TraverseQuantized(const double* const* rows, size_t n, double* out,
                         std::vector<uint8_t>& scratch) const;

  /// Collects per-feature distinct thresholds and fills the quantized
  /// tables when every feature fits in uint8 codes.
  void BuildQuantizedTables();

  /// Rebuilds `used_features_` (features with >= 1 cut) from the cut
  /// offset table; quantization skips the rest, since a feature no
  /// split node tests can never route a row.
  void BuildUsedFeatures();

  /// Derives `tuned_block_rows_` from the forest shape and the machine
  /// L2 size. Runs at the end of Compile() and FromView().
  void AutotuneBlockRows();

  template <typename T>
  using Column = flat_internal::Column<T>;

  int num_classes_ = 0;     ///< 0 for a boosted regressor.
  size_t num_features_ = 0;
  size_t leaf_dim_ = 0;     ///< num_classes, or 1 for a regressor.
  size_t out_dim_ = 0;      ///< num_classes, or 1 for a regressor.
  double base_score_ = 0.0; ///< Regressor accumulator seed.

  // SoA node storage; index = absolute node id. Owned after Compile(),
  // views into an artifact's bytes after FromView().
  Column<int32_t> feature_;    ///< -1 marks a leaf.
  Column<double> threshold_;
  Column<int32_t> left_;
  Column<int32_t> right_;
  Column<int32_t> leaf_index_; ///< Leaves: row into leaf_values_.
  Column<double> leaf_values_; ///< num_leaves x leaf_dim_, dense.
  Column<int32_t> tree_offsets_; ///< Tree t = [offsets[t], offsets[t+1]).

  /// Rows per block when BatchOptions::block_rows is 0 (autotuned).
  size_t tuned_block_rows_ = 512;

  // Quantized traversal tables (valid iff quantized_).
  bool quantized_ = false;
  bool narrow_codes_ = false;        ///< Row codes fit in uint8_t.
  /// Features with at least one cut — the only ones quantization needs
  /// to code. Derived (never serialized); rebuilt by FromView.
  std::vector<int32_t> used_features_;
  Column<uint16_t> qthreshold_; ///< Per node: cut index (0 for leaves).
  Column<int32_t> cut_offsets_; ///< Per feature f: cuts in
                                ///< cut_values_[off[f], off[f+1]).
  Column<double> cut_values_;   ///< Ascending distinct thresholds.

  /// Pins the mapped/loaded artifact bytes the view columns alias;
  /// nullptr for a Compile()d forest.
  std::shared_ptr<const artifact::ArtifactBuffer> backing_;
};

}  // namespace cloudsurv::ml

#endif  // CLOUDSURV_ML_FLAT_FOREST_H_
